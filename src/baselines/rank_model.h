#ifndef PIPERISK_BASELINES_RANK_MODEL_H_
#define PIPERISK_BASELINES_RANK_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/model.h"

namespace piperisk {
namespace baselines {

/// The ranking-based data-mining method of the title paper (Wang, Dong,
/// Wang, Tang & Yao, ICDE 2013), as also summarised by the chapter
/// (Sect. 18.2.1 / Eq. 18.10): failure prediction is cast as *ranking*, not
/// probability estimation. A real-valued linear scoring function
/// H(z) = w' z is learned to maximise
///   sum_{z in P, z' in N} I(H(z) > H(z')) / (|P| |N|),
/// i.e. the AUC between training-window failing pipes (P) and healthy
/// pipes (N).
///
/// Two trainers are provided:
///  * kPairwiseHinge — RankSVM-style convex surrogate: stochastic descent
///    on hinge(1 - (H(z) - H(z'))) over sampled pos/neg pairs with L2
///    regularisation. This matches the chapter's "SVM-based ranking
///    approach ... linear kernel".
///  * kDirectAucEs — derivative-free (1+1) evolution strategy with 1/5th
///    success-rule step adaptation, maximising the empirical AUC itself
///    (the title paper's authors are an evolutionary-computation group; the
///    discrete objective of Eq. 18.10 is exactly what an ES optimises
///    without a surrogate).
enum class RankTrainer : int {
  kPairwiseHinge = 0,
  kDirectAucEs = 1,
};
std::string_view ToString(RankTrainer trainer);

struct RankModelConfig {
  RankTrainer trainer = RankTrainer::kPairwiseHinge;
  // Pairwise hinge (SGD).
  int epochs = 40;
  int pairs_per_epoch = 20000;
  double learning_rate = 0.05;
  double l2 = 1e-4;
  // Direct AUC (1+1)-ES.
  int es_iterations = 1500;
  double es_initial_sigma = 0.5;
  std::uint64_t seed = 7;
};

class RankModel : public core::FailureModel {
 public:
  explicit RankModel(RankModelConfig config = RankModelConfig());

  std::string name() const override;
  Status Fit(const core::ModelInput& input) override;
  Result<std::vector<double>> ScorePipes(const core::ModelInput& input) override;
  /// Blocked parallel scoring over the flat feature matrix.
  Result<std::vector<double>> ScorePipes(
      const core::ModelInput& input,
      const core::ScoreOptions& options) override;

  const std::vector<double>& weights() const { return weights_; }
  /// Training AUC of the final weights (diagnostic).
  double training_auc() const { return training_auc_; }

 private:
  RankModelConfig config_;
  bool fitted_ = false;
  std::vector<double> weights_;
  double training_auc_ = 0.0;
};

/// Empirical AUC of scores against binary labels (probability that a
/// uniformly random positive outranks a uniformly random negative; ties
/// count 1/2). Exposed for the trainers and tests.
double PairwiseAuc(const std::vector<double>& scores,
                   const std::vector<int>& labels);

}  // namespace baselines
}  // namespace piperisk

#endif  // PIPERISK_BASELINES_RANK_MODEL_H_
