#include "baselines/cox.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "stats/linalg.h"

namespace piperisk {
namespace baselines {

double CoxPartialLogLik(const std::vector<SurvivalObservation>& obs,
                        const std::vector<std::vector<double>>& z,
                        const std::vector<double>& beta, CoxTies ties) {
  const size_t n = obs.size();
  std::vector<double> eta(n), w(n);
  for (size_t i = 0; i < n; ++i) {
    eta[i] = stats::Dot(beta, z[i]);
    w[i] = std::exp(eta[i]);
  }
  std::map<double, std::vector<size_t>> events_at;
  for (size_t i = 0; i < n; ++i) {
    if (obs[i].event) events_at[obs[i].exit].push_back(i);
  }
  double ll = 0.0;
  for (const auto& [t, event_idx] : events_at) {
    double s0 = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (obs[i].entry < t && t <= obs[i].exit) s0 += w[i];
    }
    double d_s0 = 0.0;
    for (size_t idx : event_idx) {
      ll += eta[idx];
      d_s0 += w[idx];
    }
    double dcount = static_cast<double>(event_idx.size());
    for (size_t l = 0; l < event_idx.size(); ++l) {
      double f = ties == CoxTies::kEfron ? static_cast<double>(l) / dcount
                                         : 0.0;
      ll -= std::log(s0 - f * d_s0);
    }
  }
  return ll;
}

CoxModel::CoxModel(CoxConfig config) : config_(config) {}

Status CoxModel::Fit(const core::ModelInput& input) {
  const size_t n = input.num_pipes();
  if (n == 0) return Status::InvalidArgument("no pipes to fit");
  const size_t d = input.feature_dim();
  if (input.pipe_features.size() != n) {
    return Status::InvalidArgument("input feature table mismatch");
  }
  std::vector<SurvivalObservation> rows = BuildPipeSurvival(input);

  // Distinct event ages, ascending, with their event sets.
  std::map<double, std::vector<size_t>> events_at;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].event) events_at[rows[i].exit].push_back(i);
  }
  if (events_at.empty()) {
    return Status::FailedPrecondition("no failure events in training window");
  }

  beta_.assign(d, 0.0);

  // Pre-sorted index lists for the incremental risk-set sweep: as the event
  // age t decreases, a pipe joins the risk set when exit >= t and leaves it
  // again when entry >= t, so the per-event sums S0/S1/S2 are maintained in
  // O(n d^2) total per evaluation instead of O(E n d^2).
  std::vector<size_t> by_exit(n), by_entry(n);
  for (size_t i = 0; i < n; ++i) by_exit[i] = by_entry[i] = i;
  std::sort(by_exit.begin(), by_exit.end(), [&](size_t a2, size_t b2) {
    return rows[a2].exit > rows[b2].exit;
  });
  std::sort(by_entry.begin(), by_entry.end(), [&](size_t a2, size_t b2) {
    return rows[a2].entry > rows[b2].entry;
  });

  // Partial log likelihood, gradient and Hessian. Efron's correction
  // subtracts the expected already-failed mass from the risk-set sums for
  // each of the d tied events at a time: for l = 0..d-1 the effective sums
  // are S_k - (l/d) * D_k, where D_k are the sums over the event set alone.
  // Breslow is the f = 0 special case.
  const bool efron = config_.ties == CoxTies::kEfron;
  auto evaluate = [&](const std::vector<double>& beta, std::vector<double>* grad,
                      stats::SymmetricMatrix* hess) {
    double ll = 0.0;
    if (grad != nullptr) grad->assign(d, 0.0);
    std::vector<double> eta(n), w(n);
    for (size_t i = 0; i < n; ++i) {
      eta[i] = stats::Dot(beta, input.pipe_features[i]);
      eta[i] = std::clamp(eta[i], -30.0, 30.0);
      w[i] = std::exp(eta[i]);
    }
    double s0 = 0.0;
    std::vector<double> s1(d, 0.0);
    stats::SymmetricMatrix s2(hess != nullptr ? d : 1);
    double d_s0 = 0.0;
    std::vector<double> d_s1(d, 0.0);
    stats::SymmetricMatrix d_s2(hess != nullptr ? d : 1);
    std::vector<double> zbar(d);
    auto include = [&](size_t i, double sign) {
      const std::vector<double>& z = input.pipe_features[i];
      double ws = sign * w[i];
      s0 += ws;
      for (size_t c = 0; c < d; ++c) s1[c] += ws * z[c];
      if (hess != nullptr) {
        for (size_t r = 0; r < d; ++r) {
          for (size_t c2 = r; c2 < d; ++c2) {
            s2.AddSymmetric(r, c2, ws * z[r] * z[c2]);
          }
        }
      }
    };
    size_t next_add = 0, next_remove = 0;
    // Walk event ages in decreasing order.
    for (auto it = events_at.rbegin(); it != events_at.rend(); ++it) {
      double t = it->first;
      const auto& event_idx = it->second;
      while (next_add < n && rows[by_exit[next_add]].exit >= t) {
        include(by_exit[next_add], +1.0);
        ++next_add;
      }
      while (next_remove < n && rows[by_entry[next_remove]].entry >= t) {
        include(by_entry[next_remove], -1.0);
        ++next_remove;
      }
      if (s0 <= 0.0) continue;
      double dcount = static_cast<double>(event_idx.size());
      if (efron && event_idx.size() > 1) {
        d_s0 = 0.0;
        std::fill(d_s1.begin(), d_s1.end(), 0.0);
        if (hess != nullptr) d_s2 = stats::SymmetricMatrix(d);
        for (size_t idx : event_idx) {
          const std::vector<double>& z = input.pipe_features[idx];
          d_s0 += w[idx];
          for (size_t c = 0; c < d; ++c) d_s1[c] += w[idx] * z[c];
          if (hess != nullptr) {
            for (size_t r = 0; r < d; ++r) {
              for (size_t c2 = r; c2 < d; ++c2) {
                d_s2.AddSymmetric(r, c2, w[idx] * z[r] * z[c2]);
              }
            }
          }
        }
      }
      for (size_t idx : event_idx) {
        ll += eta[idx];
        if (grad != nullptr) {
          for (size_t c = 0; c < d; ++c) {
            (*grad)[c] += input.pipe_features[idx][c];
          }
        }
      }
      if (!efron || event_idx.size() == 1) {
        ll -= dcount * std::log(s0);
        if (grad != nullptr) {
          for (size_t c = 0; c < d; ++c) (*grad)[c] -= dcount * s1[c] / s0;
        }
        if (hess != nullptr) {
          for (size_t c = 0; c < d; ++c) zbar[c] = s1[c] / s0;
          for (size_t r = 0; r < d; ++r) {
            for (size_t c2 = r; c2 < d; ++c2) {
              hess->AddSymmetric(r, c2, dcount * (s2.at(r, c2) / s0 -
                                                  zbar[r] * zbar[c2]));
            }
          }
        }
      } else {
        for (size_t l = 0; l < event_idx.size(); ++l) {
          double f = static_cast<double>(l) / dcount;
          double a0 = s0 - f * d_s0;
          if (a0 <= 0.0) continue;
          ll -= std::log(a0);
          if (grad != nullptr) {
            for (size_t c = 0; c < d; ++c) {
              (*grad)[c] -= (s1[c] - f * d_s1[c]) / a0;
            }
          }
          if (hess != nullptr) {
            for (size_t c = 0; c < d; ++c) zbar[c] = (s1[c] - f * d_s1[c]) / a0;
            for (size_t r = 0; r < d; ++r) {
              for (size_t c2 = r; c2 < d; ++c2) {
                hess->AddSymmetric(
                    r, c2,
                    (s2.at(r, c2) - f * d_s2.at(r, c2)) / a0 -
                        zbar[r] * zbar[c2]);
              }
            }
          }
        }
      }
    }
    // Ridge penalty.
    for (size_t c = 0; c < d; ++c) {
      ll -= 0.5 * config_.ridge * beta[c] * beta[c];
      if (grad != nullptr) (*grad)[c] -= config_.ridge * beta[c];
      if (hess != nullptr) hess->at(c, c) += config_.ridge;
    }
    return ll;
  };

  double current_ll = evaluate(beta_, nullptr, nullptr);
  int iter = 0;
  for (; iter < config_.max_iterations; ++iter) {
    std::vector<double> grad;
    stats::SymmetricMatrix hess(d);
    current_ll = evaluate(beta_, &grad, &hess);
    if (stats::Norm2(grad) < config_.tolerance * (1.0 + std::fabs(current_ll))) {
      break;
    }
    hess.AddDiagonal(1e-9);
    auto step = stats::CholeskySolve(hess, grad);
    if (!step.ok()) return step.status();
    double scale = 1.0;
    bool improved = false;
    for (int half = 0; half < 30; ++half) {
      std::vector<double> beta_try = beta_;
      stats::Axpy(scale, *step, &beta_try);
      double ll_try = evaluate(beta_try, nullptr, nullptr);
      if (ll_try > current_ll - 1e-12) {
        beta_ = std::move(beta_try);
        current_ll = ll_try;
        improved = true;
        break;
      }
      scale *= 0.5;
    }
    if (!improved) break;
  }
  iterations_used_ = iter;

  // Baseline hazard increments at the event ages (Breslow estimator d/S0,
  // or its Efron analogue sum_l 1/(S0 - (l/d) D0)), via the same
  // decreasing-age risk-set sweep as the likelihood.
  event_ages_.clear();
  hazard_increments_.clear();
  std::vector<double> w(n);
  for (size_t i = 0; i < n; ++i) {
    w[i] = std::exp(
        std::clamp(stats::Dot(beta_, input.pipe_features[i]), -30.0, 30.0));
  }
  {
    double s0 = 0.0;
    size_t next_add = 0, next_remove = 0;
    for (auto it = events_at.rbegin(); it != events_at.rend(); ++it) {
      double t = it->first;
      const auto& event_idx = it->second;
      while (next_add < n && rows[by_exit[next_add]].exit >= t) {
        s0 += w[by_exit[next_add]];
        ++next_add;
      }
      while (next_remove < n && rows[by_entry[next_remove]].entry >= t) {
        s0 -= w[by_entry[next_remove]];
        ++next_remove;
      }
      if (s0 <= 0.0) continue;
      double dcount = static_cast<double>(event_idx.size());
      double increment = 0.0;
      if (efron && event_idx.size() > 1) {
        double d_s0 = 0.0;
        for (size_t idx : event_idx) d_s0 += w[idx];
        for (size_t l = 0; l < event_idx.size(); ++l) {
          double a0 = s0 - (static_cast<double>(l) / dcount) * d_s0;
          if (a0 > 0.0) increment += 1.0 / a0;
        }
      } else {
        increment = dcount / s0;
      }
      event_ages_.push_back(t);
      hazard_increments_.push_back(increment);
    }
    std::reverse(event_ages_.begin(), event_ages_.end());
    std::reverse(hazard_increments_.begin(), hazard_increments_.end());
  }
  fitted_ = true;
  return Status::OK();
}

double CoxModel::BaselineCumulativeHazard(double age) const {
  if (event_ages_.empty()) return 0.0;
  // Piecewise linear between event ages (continuity gives every age a
  // positive hazard slope for ranking); linear extrapolation outside.
  double cum = 0.0;
  double prev_age = 0.0;
  for (size_t e = 0; e < event_ages_.size(); ++e) {
    double seg = event_ages_[e] - prev_age;
    if (age <= event_ages_[e]) {
      double frac = seg > 0.0 ? (age - prev_age) / seg : 0.0;
      return cum + std::clamp(frac, 0.0, 1.0) * hazard_increments_[e];
    }
    cum += hazard_increments_[e];
    prev_age = event_ages_[e];
  }
  // Beyond the last event age: continue at the mean tail slope.
  double tail_slope =
      hazard_increments_.back() /
      std::max(event_ages_.back() -
                   (event_ages_.size() > 1 ? event_ages_[event_ages_.size() - 2]
                                           : 0.0),
               1.0);
  return cum + (age - event_ages_.back()) * tail_slope;
}

Result<std::vector<double>> CoxModel::ScorePipes(const core::ModelInput& input) {
  if (!fitted_) return Status::FailedPrecondition("CoxModel not fitted");
  if (input.pipe_features.size() != input.num_pipes()) {
    return Status::InvalidArgument("input feature table mismatch");
  }
  std::vector<double> scores(input.num_pipes(), 0.0);
  for (size_t i = 0; i < input.num_pipes(); ++i) {
    const net::Pipe& p = *input.pipes[i];
    double age = std::max(0, input.split.test_year - p.laid_year);
    double mass = BaselineCumulativeHazard(age + 1.0) -
                  BaselineCumulativeHazard(age);
    mass = std::max(mass, 1e-12);
    double eta = std::clamp(stats::Dot(beta_, input.pipe_features[i]), -30.0,
                            30.0);
    scores[i] = mass * std::exp(eta);
  }
  return scores;
}

Result<std::vector<double>> CoxModel::ScorePipes(
    const core::ModelInput& input, const core::ScoreOptions& options) {
  if (!fitted_) return Status::FailedPrecondition("CoxModel not fitted");
  const core::FeatureMatrix& fm = input.pipe_feature_matrix;
  if (fm.num_rows() != input.num_pipes() || fm.dim != beta_.size()) {
    return ScorePipes(input);  // input without flat views: serial path
  }
  return core::ScoreBlocked(
      input.num_pipes(), options,
      [&](size_t begin, size_t end, double* out) {
        for (size_t i = begin; i < end; ++i) {
          const net::Pipe& p = *input.pipes[i];
          double age = std::max(0, input.split.test_year - p.laid_year);
          double mass = BaselineCumulativeHazard(age + 1.0) -
                        BaselineCumulativeHazard(age);
          mass = std::max(mass, 1e-12);
          const double* z = fm.row(i);
          double eta = 0.0;
          for (size_t c = 0; c < beta_.size(); ++c) eta += beta_[c] * z[c];
          eta = std::clamp(eta, -30.0, 30.0);
          out[i - begin] = mass * std::exp(eta);
        }
      });
}

}  // namespace baselines
}  // namespace piperisk
