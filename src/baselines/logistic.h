#ifndef PIPERISK_BASELINES_LOGISTIC_H_
#define PIPERISK_BASELINES_LOGISTIC_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/model.h"

namespace piperisk {
namespace baselines {

/// Ridge-regularised logistic regression, fitted by Newton (IRLS). Included
/// as the standard machine-learning reference point: it predicts the
/// probability that a pipe fails in a single year given its features, with
/// no survival structure and no hierarchy.
struct LogisticConfig {
  double ridge = 1e-2;
  int max_iterations = 60;
  double tolerance = 1e-8;
};

/// Standalone solver, reusable outside the FailureModel interface.
class LogisticRegression {
 public:
  static Result<LogisticRegression> Fit(
      const std::vector<std::vector<double>>& features,
      const std::vector<int>& labels, const LogisticConfig& config);

  /// P(label = 1 | z).
  double Probability(const std::vector<double>& features) const;
  /// Linear predictor including intercept.
  double Score(const std::vector<double>& features) const;
  /// Linear predictor over a raw feature row (batch scoring path; identical
  /// arithmetic to the vector overload).
  double Score(const double* features, std::size_t n) const;

  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }

 private:
  std::vector<double> weights_;
  double intercept_ = 0.0;
};

/// FailureModel adapter: label = pipe failed during training window.
class LogisticModel : public core::FailureModel {
 public:
  explicit LogisticModel(LogisticConfig config = LogisticConfig());

  std::string name() const override { return "Logistic"; }
  Status Fit(const core::ModelInput& input) override;
  Result<std::vector<double>> ScorePipes(const core::ModelInput& input) override;
  /// Blocked parallel scoring over the flat feature matrix.
  Result<std::vector<double>> ScorePipes(
      const core::ModelInput& input,
      const core::ScoreOptions& options) override;

  const LogisticRegression* fitted() const {
    return fitted_ ? &model_ : nullptr;
  }

 private:
  LogisticConfig config_;
  bool fitted_ = false;
  LogisticRegression model_;
};

}  // namespace baselines
}  // namespace piperisk

#endif  // PIPERISK_BASELINES_LOGISTIC_H_
