#ifndef PIPERISK_BASELINES_RSF_H_
#define PIPERISK_BASELINES_RSF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/survival.h"
#include "core/model.h"

namespace piperisk {
namespace baselines {

/// Random survival forest over pipe lifetimes (Ishwaran et al. 2008, in the
/// spirit of the nonparametric follow-up work to the paper): bootstrap trees
/// grown on the BuildPipeSurvival rows, splits chosen by the log-rank
/// statistic (delayed entry respected), each leaf carrying a Nelson–Aalen
/// cumulative hazard over its members. A pipe's risk score is the ensemble
/// mean cumulative hazard evaluated just past its age in the test year —
/// the standard "mortality" ranking.
struct RsfConfig {
  int num_trees = 60;
  int max_depth = 8;
  /// Nodes with fewer observations (or no events) become leaves.
  int min_node_obs = 30;
  /// A split is admissible only when both children keep this many rows.
  int min_leaf_obs = 10;
  /// Candidate features per split (<= 0: ceil(sqrt(feature_dim))).
  int num_split_features = 0;
  /// Candidate thresholds per feature (evenly spaced member quantiles).
  int num_thresholds = 8;
  std::uint64_t seed = 1849;
  /// Worker threads for growing trees. Wall clock only: every tree owns a
  /// pre-forked RNG stream and writes its own slot, so the forest is
  /// bit-identical for every thread count.
  int num_fit_threads = 1;
  /// Trees grown on the new data when warm-starting from a previous fit.
  int warm_top_up_trees = 12;
};

/// One binary tree node; leaf < 0 means internal (descend by
/// z[feature] <= threshold), otherwise `leaf` indexes the tree's leaf_chf.
struct RsfNode {
  int feature = -1;
  double threshold = 0.0;
  int left = -1;
  int right = -1;
  int leaf = -1;
};

struct RsfTree {
  std::vector<RsfNode> nodes;
  std::vector<StepFunction> leaf_chf;
};

/// Portable snapshot of a fitted forest for warm-started rolling re-fits:
/// the trees carry raw (unstandardised-agnostic) thresholds, so they can
/// score a later year's input directly; `streams_used` records how many RNG
/// streams this model lineage has consumed so top-up trees continue the
/// fork sequence instead of re-using streams.
struct RsfWarmState {
  std::vector<RsfTree> trees;
  std::uint64_t streams_used = 0;
  std::size_t feature_dim = 0;
};

class RsfModel : public core::FailureModel {
 public:
  explicit RsfModel(RsfConfig config = RsfConfig());

  std::string name() const override { return "RSF"; }
  Status Fit(const core::ModelInput& input) override;
  Result<std::vector<double>> ScorePipes(const core::ModelInput& input) override;
  /// Blocked parallel scoring over the flat feature matrix.
  Result<std::vector<double>> ScorePipes(
      const core::ModelInput& input,
      const core::ScoreOptions& options) override;

  /// Snapshot of the fitted forest (valid after a successful Fit).
  RsfWarmState warm_state() const;
  /// Arms the next Fit to carry over `state`'s trees (oldest dropped to
  /// respect num_trees) and grow only warm_top_up_trees new ones. A state
  /// whose feature_dim disagrees with the input is ignored (cold fit).
  void SetWarmStart(RsfWarmState state);

  std::size_t num_trees() const { return trees_.size(); }

 private:
  double ScoreOne(const double* z, double age) const;

  RsfConfig config_;
  bool fitted_ = false;
  std::size_t feature_dim_ = 0;
  std::vector<RsfTree> trees_;
  std::uint64_t streams_used_ = 0;
  bool has_warm_ = false;
  RsfWarmState warm_;
};

}  // namespace baselines
}  // namespace piperisk

#endif  // PIPERISK_BASELINES_RSF_H_
