#include "baselines/logistic.h"

#include <algorithm>
#include <cmath>

#include "stats/linalg.h"
#include "stats/special.h"

namespace piperisk {
namespace baselines {

Result<LogisticRegression> LogisticRegression::Fit(
    const std::vector<std::vector<double>>& features,
    const std::vector<int>& labels, const LogisticConfig& config) {
  const size_t n = features.size();
  if (labels.size() != n) {
    return Status::InvalidArgument("features/labels length mismatch");
  }
  if (n == 0) return Status::InvalidArgument("empty training set");
  const size_t d = features[0].size();
  for (const auto& row : features) {
    if (row.size() != d) return Status::InvalidArgument("ragged rows");
  }

  LogisticRegression model;
  model.weights_.assign(d, 0.0);
  double pos = 0.0;
  for (int l : labels) pos += l != 0 ? 1.0 : 0.0;
  double base = std::clamp(pos / static_cast<double>(n), 1e-6, 1.0 - 1e-6);
  model.intercept_ = stats::Logit(base);

  const size_t dim = d + 1;
  auto loglik = [&](double b0, const std::vector<double>& w) {
    double ll = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double eta = b0;
      for (size_t c = 0; c < d; ++c) eta += w[c] * features[i][c];
      // log sigmoid forms, stable.
      if (labels[i] != 0) {
        ll += -std::log1p(std::exp(-eta));
      } else {
        ll += -std::log1p(std::exp(eta));
      }
    }
    for (double wc : w) ll -= 0.5 * config.ridge * wc * wc;
    return ll;
  };

  double current_ll = loglik(model.intercept_, model.weights_);
  for (int iter = 0; iter < config.max_iterations; ++iter) {
    std::vector<double> grad(dim, 0.0);
    stats::SymmetricMatrix hess(dim);
    for (size_t i = 0; i < n; ++i) {
      double eta = model.intercept_;
      for (size_t c = 0; c < d; ++c) eta += model.weights_[c] * features[i][c];
      double p = stats::Sigmoid(eta);
      double resid = (labels[i] != 0 ? 1.0 : 0.0) - p;
      double wgt = std::max(p * (1.0 - p), 1e-9);
      for (size_t c = 0; c < d; ++c) grad[c] += resid * features[i][c];
      grad[d] += resid;
      for (size_t r = 0; r < d; ++r) {
        for (size_t c2 = r; c2 < d; ++c2) {
          hess.AddSymmetric(r, c2, wgt * features[i][r] * features[i][c2]);
        }
        hess.AddSymmetric(r, d, wgt * features[i][r]);
      }
      hess.at(d, d) += wgt;
    }
    for (size_t c = 0; c < d; ++c) {
      grad[c] -= config.ridge * model.weights_[c];
      hess.at(c, c) += config.ridge;
    }
    hess.AddDiagonal(1e-9);
    if (stats::Norm2(grad) < config.tolerance * (1.0 + std::fabs(current_ll))) {
      break;
    }
    auto step = stats::CholeskySolve(hess, grad);
    if (!step.ok()) return step.status();
    double scale = 1.0;
    bool improved = false;
    for (int half = 0; half < 30; ++half) {
      std::vector<double> w_try = model.weights_;
      for (size_t c = 0; c < d; ++c) w_try[c] += scale * (*step)[c];
      double b0_try = model.intercept_ + scale * (*step)[d];
      double ll_try = loglik(b0_try, w_try);
      if (ll_try > current_ll - 1e-12) {
        model.weights_ = std::move(w_try);
        model.intercept_ = b0_try;
        current_ll = ll_try;
        improved = true;
        break;
      }
      scale *= 0.5;
    }
    if (!improved) break;
  }
  return model;
}

double LogisticRegression::Score(const std::vector<double>& features) const {
  return Score(features.data(), features.size());
}

double LogisticRegression::Score(const double* features, std::size_t n) const {
  double eta = intercept_;
  for (size_t c = 0; c < weights_.size() && c < n; ++c) {
    eta += weights_[c] * features[c];
  }
  return eta;
}

double LogisticRegression::Probability(
    const std::vector<double>& features) const {
  return stats::Sigmoid(Score(features));
}

LogisticModel::LogisticModel(LogisticConfig config) : config_(config) {}

Status LogisticModel::Fit(const core::ModelInput& input) {
  std::vector<int> labels(input.num_pipes(), 0);
  for (size_t i = 0; i < input.num_pipes(); ++i) {
    labels[i] = input.outcomes[i].train_failures > 0 ? 1 : 0;
  }
  auto fit = LogisticRegression::Fit(input.pipe_features, labels, config_);
  if (!fit.ok()) return fit.status();
  model_ = std::move(*fit);
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> LogisticModel::ScorePipes(
    const core::ModelInput& input) {
  if (!fitted_) return Status::FailedPrecondition("LogisticModel not fitted");
  std::vector<double> scores(input.num_pipes());
  for (size_t i = 0; i < input.num_pipes(); ++i) {
    scores[i] = model_.Score(input.pipe_features[i]);
  }
  return scores;
}

Result<std::vector<double>> LogisticModel::ScorePipes(
    const core::ModelInput& input, const core::ScoreOptions& options) {
  if (!fitted_) return Status::FailedPrecondition("LogisticModel not fitted");
  const core::FeatureMatrix& fm = input.pipe_feature_matrix;
  if (fm.num_rows() != input.num_pipes()) {
    return ScorePipes(input);  // input without flat views: serial path
  }
  return core::ScoreBlocked(
      input.num_pipes(), options,
      [&](size_t begin, size_t end, double* out) {
        for (size_t i = begin; i < end; ++i) {
          out[i - begin] = model_.Score(fm.row(i), fm.dim);
        }
      });
}

}  // namespace baselines
}  // namespace piperisk
