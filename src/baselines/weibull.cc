#include "baselines/weibull.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/covariates.h"
#include "stats/linalg.h"

namespace piperisk {
namespace baselines {

namespace {

/// Observed age interval [a, b] of a pipe over the training window; returns
/// false when the pipe did not exist during training.
bool AgeInterval(const net::Pipe& pipe, const data::TemporalSplit& split,
                 double* a, double* b) {
  int entry = std::max(0, split.train_first - pipe.laid_year);
  int exit = split.train_last + 1 - pipe.laid_year;
  if (exit <= 0) return false;
  *a = static_cast<double>(entry);
  *b = static_cast<double>(exit);
  return *b > *a;
}

}  // namespace

WeibullModel::WeibullModel(WeibullConfig config) : config_(config) {}

Status WeibullModel::Fit(const core::ModelInput& input) {
  const size_t n = input.num_pipes();
  if (n == 0) return Status::InvalidArgument("no pipes to fit");

  // Assemble counts and age intervals once.
  std::vector<double> counts;
  std::vector<double> lo, hi;
  std::vector<const std::vector<double>*> feats;
  counts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double a = 0.0, b = 0.0;
    if (!AgeInterval(*input.pipes[i], input.split, &a, &b)) continue;
    counts.push_back(static_cast<double>(input.outcomes[i].train_failures));
    lo.push_back(a);
    hi.push_back(b);
    feats.push_back(&input.pipe_features[i]);
  }
  if (counts.empty()) {
    return Status::FailedPrecondition("no pipes observed in training window");
  }

  // Profile fit: for a fixed beta, mu_i = exp(b0 + w'z_i) * (b^beta - a^beta)
  // is a Poisson regression with exposure (b^beta - a^beta); reuse the
  // Newton solver from core::PoissonRegression.
  std::vector<std::vector<double>> rows(feats.size());
  for (size_t i = 0; i < feats.size(); ++i) rows[i] = *feats[i];

  auto profile = [&](double beta, core::PoissonRegression* out_model) {
    std::vector<double> exposure(counts.size());
    for (size_t i = 0; i < counts.size(); ++i) {
      exposure[i] =
          std::max(std::pow(hi[i], beta) - std::pow(lo[i], beta), 1e-9);
    }
    core::PoissonRegressionConfig prc;
    prc.ridge = config_.ridge;
    prc.max_iterations = config_.newton_iterations;
    auto fit = core::PoissonRegression::Fit(rows, counts, exposure, prc);
    if (!fit.ok()) return -1e300;
    // Profile log likelihood at the fitted (intercept, w).
    double ll = 0.0;
    for (size_t i = 0; i < counts.size(); ++i) {
      double mu = exposure[i] * fit->Rate(rows[i]);
      mu = std::max(mu, 1e-12);
      ll += counts[i] * std::log(mu) - mu;
    }
    for (double w : fit->weights()) ll -= 0.5 * config_.ridge * w * w;
    if (out_model != nullptr) *out_model = std::move(*fit);
    return ll;
  };

  // Golden-section search on beta.
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = config_.beta_min, b = config_.beta_max;
  double x1 = b - phi * (b - a);
  double x2 = a + phi * (b - a);
  double f1 = profile(x1, nullptr);
  double f2 = profile(x2, nullptr);
  for (int iter = 0; iter < config_.outer_iterations; ++iter) {
    if (f1 < f2) {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + phi * (b - a);
      f2 = profile(x2, nullptr);
    } else {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - phi * (b - a);
      f1 = profile(x1, nullptr);
    }
    if (b - a < 1e-4) break;
  }
  beta_ = 0.5 * (a + b);
  core::PoissonRegression final_fit;
  double ll = profile(beta_, &final_fit);
  if (ll <= -1e299) {
    return Status::NotConverged("Weibull profile fit failed");
  }
  alpha_ = std::exp(final_fit.intercept());
  weights_ = final_fit.weights();
  fitted_ = true;
  return Status::OK();
}

double WeibullModel::ExpectedFailures(const std::vector<double>& z, double a,
                                      double b) const {
  return ExpectedFailures(z.data(), z.size(), a, b);
}

double WeibullModel::ExpectedFailures(const double* z, std::size_t n, double a,
                                      double b) const {
  // A feature vector that disagrees with the fitted weights means the
  // fit/score schemas drifted; truncating the dot product would hide that,
  // so surface it as NaN (ScorePipes validates up front and returns
  // InvalidArgument before reaching here).
  if (n != weights_.size()) return std::numeric_limits<double>::quiet_NaN();
  double eta = 0.0;
  for (size_t c = 0; c < weights_.size(); ++c) {
    eta += weights_[c] * z[c];
  }
  eta = std::clamp(eta, -30.0, 30.0);
  double mass = std::pow(std::max(b, 0.0), beta_) -
                std::pow(std::max(a, 0.0), beta_);
  return alpha_ * std::max(mass, 0.0) * std::exp(eta);
}

Result<std::vector<double>> WeibullModel::ScorePipes(
    const core::ModelInput& input) {
  if (!fitted_) return Status::FailedPrecondition("WeibullModel not fitted");
  if (input.feature_dim() != weights_.size()) {
    return Status::InvalidArgument(
        "feature dimension mismatch between fit and score inputs");
  }
  std::vector<double> scores(input.num_pipes(), 0.0);
  for (size_t i = 0; i < input.num_pipes(); ++i) {
    double age =
        std::max(0, input.split.test_year - input.pipes[i]->laid_year);
    scores[i] =
        ExpectedFailures(input.pipe_features[i], age, age + 1.0);
  }
  return scores;
}

Result<std::vector<double>> WeibullModel::ScorePipes(
    const core::ModelInput& input, const core::ScoreOptions& options) {
  if (!fitted_) return Status::FailedPrecondition("WeibullModel not fitted");
  if (input.feature_dim() != weights_.size()) {
    return Status::InvalidArgument(
        "feature dimension mismatch between fit and score inputs");
  }
  const core::FeatureMatrix& fm = input.pipe_feature_matrix;
  if (fm.num_rows() != input.num_pipes() || fm.dim != weights_.size()) {
    return ScorePipes(input);  // input without flat views: serial path
  }
  return core::ScoreBlocked(
      input.num_pipes(), options,
      [&](size_t begin, size_t end, double* out) {
        for (size_t i = begin; i < end; ++i) {
          double age =
              std::max(0, input.split.test_year - input.pipes[i]->laid_year);
          out[i - begin] = ExpectedFailures(fm.row(i), fm.dim, age, age + 1.0);
        }
      });
}

}  // namespace baselines
}  // namespace piperisk
