#include "baselines/survival.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace piperisk {
namespace baselines {

double StepFunction::At(double t) const {
  if (times.empty() || t < times.front()) return initial;
  // Last index with times[i] <= t.
  auto it = std::upper_bound(times.begin(), times.end(), t);
  size_t idx = static_cast<size_t>(it - times.begin()) - 1;
  return values[idx];
}

namespace {

struct EventTable {
  // event time -> (events d_t, at-risk n_t)
  std::map<double, std::pair<int, int>> rows;
};

Result<EventTable> BuildTable(const std::vector<SurvivalObservation>& data) {
  EventTable table;
  int events = 0;
  std::vector<double> entries, exits;
  entries.reserve(data.size());
  exits.reserve(data.size());
  for (const auto& obs : data) {
    if (!(obs.exit > obs.entry)) continue;
    entries.push_back(obs.entry);
    exits.push_back(obs.exit);
    if (obs.event) {
      table.rows[obs.exit].first += 1;
      ++events;
    }
  }
  if (events == 0) {
    return Status::FailedPrecondition("no events in survival data");
  }
  // At-risk counts: subjects with entry < t <= exit. Because exit > entry
  // for every retained subject, that count is #{entry < t} - #{exit < t},
  // so one pass over the sorted entry/exit arrays serves every event time
  // ascending — O((N + E) log N) instead of the former O(E * N) rescan,
  // with bit-identical integer counts.
  std::sort(entries.begin(), entries.end());
  std::sort(exits.begin(), exits.end());
  size_t entered = 0, exited = 0;
  for (auto& [t, row] : table.rows) {
    while (entered < entries.size() && entries[entered] < t) ++entered;
    while (exited < exits.size() && exits[exited] < t) ++exited;
    row.second = static_cast<int>(entered - exited);
  }
  return table;
}

}  // namespace

Result<StepFunction> KaplanMeier(const std::vector<SurvivalObservation>& data) {
  auto table = BuildTable(data);
  if (!table.ok()) return table.status();
  StepFunction s;
  s.initial = 1.0;
  double survival = 1.0;
  for (const auto& [t, row] : table->rows) {
    auto [d, n] = row;
    if (n <= 0) continue;
    survival *= 1.0 - static_cast<double>(d) / n;
    s.times.push_back(t);
    s.values.push_back(survival);
  }
  return s;
}

Result<StepFunction> NelsonAalen(const std::vector<SurvivalObservation>& data) {
  auto table = BuildTable(data);
  if (!table.ok()) return table.status();
  StepFunction h;
  h.initial = 0.0;
  double cum = 0.0;
  for (const auto& [t, row] : table->rows) {
    auto [d, n] = row;
    if (n <= 0) continue;
    cum += static_cast<double>(d) / n;
    h.times.push_back(t);
    h.values.push_back(cum);
  }
  return h;
}

std::vector<SurvivalObservation> BuildPipeSurvival(
    const core::ModelInput& input) {
  std::vector<SurvivalObservation> rows;
  rows.reserve(input.num_pipes());
  const auto& split = input.split;
  for (size_t i = 0; i < input.num_pipes(); ++i) {
    const net::Pipe& p = *input.pipes[i];
    SurvivalObservation r;
    r.entry = std::max(0, split.train_first - p.laid_year);
    int censor_age = std::max(0, split.train_last - p.laid_year);
    // First failure year within the window, if any.
    int first_fail_year = -1;
    for (net::Year y = split.train_first; y <= split.train_last; ++y) {
      if (input.dataset->failures.CountForPipe(p.id, y, y) > 0) {
        first_fail_year = y;
        break;
      }
    }
    if (first_fail_year >= 0) {
      r.event = true;
      r.exit = std::max(0, first_fail_year - p.laid_year);
    } else {
      r.event = false;
      r.exit = censor_age;
    }
    // Degenerate rows (exit <= entry) carry no lifetime information; nudge
    // the exit so the pipe still appears in risk sets.
    if (r.exit <= r.entry) r.exit = r.entry + 0.5;
    rows.push_back(r);
  }
  return rows;
}

Result<std::vector<double>> GreenwoodVariance(
    const std::vector<SurvivalObservation>& data) {
  auto km = KaplanMeier(data);
  if (!km.ok()) return km.status();
  auto table = BuildTable(data);
  if (!table.ok()) return table.status();
  std::vector<double> variance;
  double acc = 0.0;
  size_t i = 0;
  for (const auto& [t, row] : table->rows) {
    auto [d, n] = row;
    if (n <= 0) continue;
    double denom = static_cast<double>(n) * (n - d);
    if (denom > 0.0) acc += static_cast<double>(d) / denom;
    double s = km->values[i];
    variance.push_back(s * s * acc);
    ++i;
  }
  return variance;
}

}  // namespace baselines
}  // namespace piperisk
