#include "baselines/survival.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace piperisk {
namespace baselines {

double StepFunction::At(double t) const {
  if (times.empty() || t < times.front()) return initial;
  // Last index with times[i] <= t.
  auto it = std::upper_bound(times.begin(), times.end(), t);
  size_t idx = static_cast<size_t>(it - times.begin()) - 1;
  return values[idx];
}

namespace {

struct EventTable {
  // event time -> (events d_t, at-risk n_t)
  std::map<double, std::pair<int, int>> rows;
};

Result<EventTable> BuildTable(const std::vector<SurvivalObservation>& data) {
  EventTable table;
  int events = 0;
  for (const auto& obs : data) {
    if (!(obs.exit > obs.entry)) continue;
    if (obs.event) {
      table.rows[obs.exit].first += 1;
      ++events;
    }
  }
  if (events == 0) {
    return Status::FailedPrecondition("no events in survival data");
  }
  // At-risk counts: subjects with entry < t <= exit.
  for (auto& [t, row] : table.rows) {
    int at_risk = 0;
    for (const auto& obs : data) {
      if (obs.entry < t && t <= obs.exit) ++at_risk;
    }
    row.second = at_risk;
  }
  return table;
}

}  // namespace

Result<StepFunction> KaplanMeier(const std::vector<SurvivalObservation>& data) {
  auto table = BuildTable(data);
  if (!table.ok()) return table.status();
  StepFunction s;
  s.initial = 1.0;
  double survival = 1.0;
  for (const auto& [t, row] : table->rows) {
    auto [d, n] = row;
    if (n <= 0) continue;
    survival *= 1.0 - static_cast<double>(d) / n;
    s.times.push_back(t);
    s.values.push_back(survival);
  }
  return s;
}

Result<StepFunction> NelsonAalen(const std::vector<SurvivalObservation>& data) {
  auto table = BuildTable(data);
  if (!table.ok()) return table.status();
  StepFunction h;
  h.initial = 0.0;
  double cum = 0.0;
  for (const auto& [t, row] : table->rows) {
    auto [d, n] = row;
    if (n <= 0) continue;
    cum += static_cast<double>(d) / n;
    h.times.push_back(t);
    h.values.push_back(cum);
  }
  return h;
}

Result<std::vector<double>> GreenwoodVariance(
    const std::vector<SurvivalObservation>& data) {
  auto km = KaplanMeier(data);
  if (!km.ok()) return km.status();
  auto table = BuildTable(data);
  if (!table.ok()) return table.status();
  std::vector<double> variance;
  double acc = 0.0;
  size_t i = 0;
  for (const auto& [t, row] : table->rows) {
    auto [d, n] = row;
    if (n <= 0) continue;
    double denom = static_cast<double>(n) * (n - d);
    if (denom > 0.0) acc += static_cast<double>(d) / denom;
    double s = km->values[i];
    variance.push_back(s * s * acc);
    ++i;
  }
  return variance;
}

}  // namespace baselines
}  // namespace piperisk
