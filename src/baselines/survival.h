#ifndef PIPERISK_BASELINES_SURVIVAL_H_
#define PIPERISK_BASELINES_SURVIVAL_H_

#include <vector>

#include "common/result.h"
#include "core/model.h"

namespace piperisk {
namespace baselines {

/// Nonparametric survival estimators used to audit the parametric and
/// semi-parametric baselines (the Cox model's Breslow baseline should track
/// Nelson–Aalen; a Weibull fit should roughly linearise the log cumulative
/// hazard). Supports left truncation (delayed entry), which the pipe data
/// needs: a pipe laid in 1950 is only observed from age 48 when the record
/// window opens in 1998.

/// One subject: observed on (entry, exit], event at exit when `event`.
struct SurvivalObservation {
  double entry = 0.0;
  double exit = 0.0;
  bool event = false;
};

/// A right-continuous step function over time, returned by the estimators:
/// value(t) = values[i] for times[i] <= t < times[i+1], and `initial`
/// before times[0].
struct StepFunction {
  double initial = 0.0;
  std::vector<double> times;
  std::vector<double> values;

  double At(double t) const;
};

/// Kaplan–Meier survival estimate S(t) with delayed entry. Fails when no
/// observation is valid (exit > entry) or no event exists.
Result<StepFunction> KaplanMeier(const std::vector<SurvivalObservation>& data);

/// Nelson–Aalen cumulative hazard estimate H(t) with delayed entry.
Result<StepFunction> NelsonAalen(const std::vector<SurvivalObservation>& data);

/// Greenwood variance of the KM estimate at each event time, aligned with
/// the KM step function's `times` (useful for confidence bands).
Result<std::vector<double>> GreenwoodVariance(
    const std::vector<SurvivalObservation>& data);

/// The survival-row view of a ModelInput shared by the semi- and
/// non-parametric lifetime models (Cox, RSF): one observation per pipe,
/// aligned with input.pipes. Time is pipe age; a pipe enters at its age at
/// the start of the training window (left truncation) and either fails
/// (first in-window failure, event at that age) or is censored at its age
/// at the end of training. Degenerate rows (exit <= entry) get the exit
/// nudged by half a year so the pipe still appears in risk sets.
std::vector<SurvivalObservation> BuildPipeSurvival(
    const core::ModelInput& input);

}  // namespace baselines
}  // namespace piperisk

#endif  // PIPERISK_BASELINES_SURVIVAL_H_
