#include "baselines/rank_model.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "stats/descriptive.h"
#include "stats/distributions.h"
#include "stats/linalg.h"
#include "stats/rng.h"

namespace piperisk {
namespace baselines {

std::string_view ToString(RankTrainer trainer) {
  switch (trainer) {
    case RankTrainer::kPairwiseHinge:
      return "hinge";
    case RankTrainer::kDirectAucEs:
      return "auc-es";
  }
  return "?";
}

double PairwiseAuc(const std::vector<double>& scores,
                   const std::vector<int>& labels) {
  // Rank-statistic form: AUC = (R_pos - n_pos(n_pos+1)/2) / (n_pos n_neg),
  // with average ranks for ties.
  size_t n = scores.size();
  if (labels.size() != n || n == 0) return 0.5;
  std::vector<double> ranks = stats::AverageRanks(scores);
  double rank_sum = 0.0;
  double n_pos = 0.0, n_neg = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (labels[i] != 0) {
      rank_sum += ranks[i];
      n_pos += 1.0;
    } else {
      n_neg += 1.0;
    }
  }
  if (n_pos == 0.0 || n_neg == 0.0) return 0.5;
  return (rank_sum - n_pos * (n_pos + 1.0) / 2.0) / (n_pos * n_neg);
}

RankModel::RankModel(RankModelConfig config) : config_(config) {}

std::string RankModel::name() const {
  return config_.trainer == RankTrainer::kPairwiseHinge ? "SVMrank"
                                                        : "AUCrank(ES)";
}

Status RankModel::Fit(const core::ModelInput& input) {
  const size_t n = input.num_pipes();
  if (n == 0) return Status::InvalidArgument("no pipes to fit");
  const size_t d = input.feature_dim();

  // Labels: pipe failed at least once during the training window.
  std::vector<int> labels(n, 0);
  std::vector<size_t> pos, neg;
  for (size_t i = 0; i < n; ++i) {
    labels[i] = input.outcomes[i].train_failures > 0 ? 1 : 0;
    (labels[i] != 0 ? pos : neg).push_back(i);
  }
  if (pos.empty() || neg.empty()) {
    return Status::FailedPrecondition(
        "need at least one failing and one healthy pipe to rank");
  }

  stats::Rng rng(config_.seed, 0x4A4E4B);
  weights_.assign(d, 0.0);

  auto scores_for = [&](const std::vector<double>& w) {
    std::vector<double> s(n);
    for (size_t i = 0; i < n; ++i) s[i] = stats::Dot(w, input.pipe_features[i]);
    return s;
  };

  if (config_.trainer == RankTrainer::kPairwiseHinge) {
    double lr = config_.learning_rate;
    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
      for (int t = 0; t < config_.pairs_per_epoch; ++t) {
        size_t ip = pos[rng.NextBounded(pos.size())];
        size_t in = neg[rng.NextBounded(neg.size())];
        const std::vector<double>& zp = input.pipe_features[ip];
        const std::vector<double>& zn = input.pipe_features[in];
        double margin = stats::Dot(weights_, zp) - stats::Dot(weights_, zn);
        // L2 shrinkage applied every step (leaky to keep cost O(d)).
        double shrink = 1.0 - lr * config_.l2;
        for (size_t c = 0; c < d; ++c) weights_[c] *= shrink;
        if (margin < 1.0) {
          for (size_t c = 0; c < d; ++c) {
            weights_[c] += lr * (zp[c] - zn[c]);
          }
        }
      }
      lr *= 0.92;  // simple schedule
    }
  } else {
    // (1+1)-ES with 1/5th-success-rule sigma adaptation, maximising the
    // empirical AUC directly. Start from the pairwise-difference-of-means
    // direction, a cheap informative initial point.
    std::vector<double> mean_pos(d, 0.0), mean_neg(d, 0.0);
    for (size_t i : pos) stats::Axpy(1.0 / pos.size(), input.pipe_features[i], &mean_pos);
    for (size_t i : neg) stats::Axpy(1.0 / neg.size(), input.pipe_features[i], &mean_neg);
    for (size_t c = 0; c < d; ++c) weights_[c] = mean_pos[c] - mean_neg[c];

    double sigma = config_.es_initial_sigma;
    double best_auc = PairwiseAuc(scores_for(weights_), labels);
    int successes = 0, window = 0;
    for (int iter = 0; iter < config_.es_iterations; ++iter) {
      std::vector<double> candidate = weights_;
      for (size_t c = 0; c < d; ++c) {
        candidate[c] += sigma * stats::SampleNormal(&rng);
      }
      double auc = PairwiseAuc(scores_for(candidate), labels);
      if (auc >= best_auc) {
        weights_ = std::move(candidate);
        best_auc = auc;
        ++successes;
      }
      ++window;
      if (window == 20) {
        // 1/5th rule: expand on frequent success, contract otherwise.
        sigma *= successes > 4 ? 1.4 : 0.7;
        sigma = std::clamp(sigma, 1e-4, 10.0);
        successes = 0;
        window = 0;
      }
    }
  }

  training_auc_ = PairwiseAuc(scores_for(weights_), labels);
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> RankModel::ScorePipes(
    const core::ModelInput& input) {
  if (!fitted_) return Status::FailedPrecondition("RankModel not fitted");
  std::vector<double> scores(input.num_pipes());
  for (size_t i = 0; i < input.num_pipes(); ++i) {
    scores[i] = stats::Dot(weights_, input.pipe_features[i]);
  }
  return scores;
}

Result<std::vector<double>> RankModel::ScorePipes(
    const core::ModelInput& input, const core::ScoreOptions& options) {
  if (!fitted_) return Status::FailedPrecondition("RankModel not fitted");
  const core::FeatureMatrix& fm = input.pipe_feature_matrix;
  if (fm.num_rows() != input.num_pipes() || fm.dim != weights_.size()) {
    return ScorePipes(input);  // input without flat views: serial path
  }
  return core::ScoreBlocked(
      input.num_pipes(), options,
      [&](size_t begin, size_t end, double* out) {
        for (size_t i = begin; i < end; ++i) {
          const double* z = fm.row(i);
          double s = 0.0;
          for (size_t c = 0; c < weights_.size(); ++c) s += weights_[c] * z[c];
          out[i - begin] = s;
        }
      });
}

}  // namespace baselines
}  // namespace piperisk
