#include "baselines/rsf.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/thread_pool.h"
#include "stats/rng.h"

namespace piperisk {
namespace baselines {

namespace {

// Stream tag for the forest's master RNG (one fork per tree, ever, across
// the warm-start lineage).
constexpr std::uint64_t kRsfStream = 0xF0153;

/// Two-sample log-rank statistic (O - E)^2 / V over the member rows of a
/// candidate split, with delayed entry: at each distinct event time t the
/// at-risk set of a group is #{entry < t} - #{exit < t} (exit > entry holds
/// for every BuildPipeSurvival row). Returns 0 when the split carries no
/// information (V == 0).
double LogRankStat(const std::vector<SurvivalObservation>& rows,
                   const std::vector<std::size_t>& members,
                   const std::vector<std::vector<double>>& z, int feature,
                   double threshold) {
  std::vector<double> entry[2], exit[2];
  // event time -> (events left, events total)
  std::map<double, std::pair<int, int>> events;
  for (std::size_t i : members) {
    const auto& r = rows[i];
    int g = z[i][feature] <= threshold ? 0 : 1;
    entry[g].push_back(r.entry);
    exit[g].push_back(r.exit);
    if (r.event) {
      auto& d = events[r.exit];
      if (g == 0) d.first += 1;
      d.second += 1;
    }
  }
  for (int g = 0; g < 2; ++g) {
    std::sort(entry[g].begin(), entry[g].end());
    std::sort(exit[g].begin(), exit[g].end());
  }
  double o = 0.0, e = 0.0, v = 0.0;
  std::size_t ein[2] = {0, 0}, eout[2] = {0, 0};
  for (const auto& [t, d] : events) {
    double n_g[2];
    for (int g = 0; g < 2; ++g) {
      while (ein[g] < entry[g].size() && entry[g][ein[g]] < t) ++ein[g];
      while (eout[g] < exit[g].size() && exit[g][eout[g]] < t) ++eout[g];
      n_g[g] = static_cast<double>(ein[g] - eout[g]);
    }
    double n = n_g[0] + n_g[1];
    if (n <= 1.0) continue;
    double dt = static_cast<double>(d.second);
    double frac = n_g[0] / n;
    o += static_cast<double>(d.first);
    e += dt * frac;
    v += dt * frac * (1.0 - frac) * (n - dt) / (n - 1.0);
  }
  if (v <= 0.0) return 0.0;
  double diff = o - e;
  return diff * diff / v;
}

struct TreeBuilder {
  const std::vector<SurvivalObservation>& rows;
  const std::vector<std::vector<double>>& z;
  const RsfConfig& cfg;
  int mtry;
  stats::Rng* rng;
  RsfTree* tree;

  int MakeLeaf(const std::vector<std::size_t>& members) {
    std::vector<SurvivalObservation> obs;
    obs.reserve(members.size());
    for (std::size_t i : members) obs.push_back(rows[i]);
    StepFunction chf;  // H == 0 when the leaf holds no events
    auto na = NelsonAalen(obs);
    if (na.ok()) chf = std::move(*na);
    int node = static_cast<int>(tree->nodes.size());
    tree->nodes.emplace_back();
    tree->nodes[node].leaf = static_cast<int>(tree->leaf_chf.size());
    tree->leaf_chf.push_back(std::move(chf));
    return node;
  }

  int Build(const std::vector<std::size_t>& members, int depth) {
    int node_events = 0;
    for (std::size_t i : members) node_events += rows[i].event ? 1 : 0;
    if (depth >= cfg.max_depth || node_events == 0 ||
        members.size() < static_cast<std::size_t>(cfg.min_node_obs)) {
      return MakeLeaf(members);
    }

    // mtry candidate features (deterministic partial selection from the
    // tree's own RNG), thresholds at evenly spaced member quantiles.
    std::vector<int> features(z[members[0]].size());
    for (std::size_t f = 0; f < features.size(); ++f) {
      features[f] = static_cast<int>(f);
    }
    rng->Shuffle(&features);
    features.resize(std::min<std::size_t>(features.size(),
                                          static_cast<std::size_t>(mtry)));

    double best_stat = 0.0;
    int best_feature = -1;
    double best_threshold = 0.0;
    std::vector<double> vals;
    for (int f : features) {
      vals.clear();
      for (std::size_t i : members) vals.push_back(z[i][f]);
      std::sort(vals.begin(), vals.end());
      if (vals.front() == vals.back()) continue;  // constant in this node
      for (int k = 1; k <= cfg.num_thresholds; ++k) {
        std::size_t pos = members.size() * static_cast<std::size_t>(k) /
                          (static_cast<std::size_t>(cfg.num_thresholds) + 1);
        pos = std::min(pos, members.size() - 1);
        double thr = vals[pos];
        if (thr >= vals.back()) continue;  // right child would be empty
        std::size_t left_count = 0;
        for (std::size_t i : members) {
          if (z[i][f] <= thr) ++left_count;
        }
        if (left_count < static_cast<std::size_t>(cfg.min_leaf_obs) ||
            members.size() - left_count <
                static_cast<std::size_t>(cfg.min_leaf_obs)) {
          continue;
        }
        double stat = LogRankStat(rows, members, z, f, thr);
        if (stat > best_stat) {
          best_stat = stat;
          best_feature = f;
          best_threshold = thr;
        }
      }
    }
    if (best_feature < 0) return MakeLeaf(members);

    std::vector<std::size_t> left, right;
    for (std::size_t i : members) {
      (z[i][best_feature] <= best_threshold ? left : right).push_back(i);
    }
    int node = static_cast<int>(tree->nodes.size());
    tree->nodes.emplace_back();
    tree->nodes[node].feature = best_feature;
    tree->nodes[node].threshold = best_threshold;
    int l = Build(left, depth + 1);
    int r = Build(right, depth + 1);
    tree->nodes[node].left = l;
    tree->nodes[node].right = r;
    return node;
  }
};

}  // namespace

RsfModel::RsfModel(RsfConfig config) : config_(config) {}

void RsfModel::SetWarmStart(RsfWarmState state) {
  warm_ = std::move(state);
  has_warm_ = true;
}

RsfWarmState RsfModel::warm_state() const {
  return RsfWarmState{trees_, streams_used_, feature_dim_};
}

Status RsfModel::Fit(const core::ModelInput& input) {
  const std::size_t n = input.num_pipes();
  if (n == 0) return Status::InvalidArgument("no pipes to fit");
  const std::size_t d = input.feature_dim();
  if (d == 0) return Status::InvalidArgument("no features to split on");
  if (input.pipe_features.size() != n) {
    return Status::InvalidArgument("input feature table mismatch");
  }
  std::vector<SurvivalObservation> rows = BuildPipeSurvival(input);
  int total_events = 0;
  for (const auto& r : rows) total_events += r.event ? 1 : 0;
  if (total_events == 0) {
    return Status::FailedPrecondition("no failure events in training window");
  }

  // Warm start: carry the previous forest (newest-first retention under the
  // num_trees cap) and grow only the top-up trees on the new data. The RNG
  // fork sequence continues from the lineage's stream counter, so a warm
  // fit never re-uses a stream an earlier year consumed.
  std::vector<RsfTree> carried;
  std::uint64_t stream_base = 0;
  int new_trees = std::max(config_.num_trees, 1);
  if (has_warm_ && !warm_.trees.empty() && warm_.feature_dim == d) {
    new_trees = std::min(std::max(config_.warm_top_up_trees, 1),
                         std::max(config_.num_trees, 1));
    std::size_t keep = static_cast<std::size_t>(
        std::max(config_.num_trees, 1) - new_trees);
    std::size_t drop =
        warm_.trees.size() > keep ? warm_.trees.size() - keep : 0;
    carried.assign(warm_.trees.begin() + static_cast<std::ptrdiff_t>(drop),
                   warm_.trees.end());
    stream_base = warm_.streams_used;
  }
  has_warm_ = false;
  warm_ = RsfWarmState{};

  int mtry = config_.num_split_features > 0
                 ? std::min<int>(config_.num_split_features,
                                 static_cast<int>(d))
                 : std::max(1, static_cast<int>(std::ceil(
                                   std::sqrt(static_cast<double>(d)))));

  // Pre-fork one stream per tree, indexed by lifetime tree number, before
  // any parallel work starts — the determinism contract from thread_pool.h.
  stats::Rng master(config_.seed, kRsfStream);
  for (std::uint64_t s = 0; s < stream_base; ++s) master.Fork();
  std::vector<stats::Rng> tree_rngs;
  tree_rngs.reserve(static_cast<std::size_t>(new_trees));
  for (int t = 0; t < new_trees; ++t) tree_rngs.push_back(master.Fork());

  std::vector<RsfTree> grown(static_cast<std::size_t>(new_trees));
  ThreadPool::Shared().ParallelFor(
      new_trees, config_.num_fit_threads, [&](int t) {
        stats::Rng rng = tree_rngs[static_cast<std::size_t>(t)];
        std::vector<std::size_t> members(n);
        for (std::size_t i = 0; i < n; ++i) {
          members[i] = static_cast<std::size_t>(rng.NextBounded(n));
        }
        TreeBuilder builder{rows,  input.pipe_features,
                            config_, mtry,
                            &rng,   &grown[static_cast<std::size_t>(t)]};
        builder.Build(members, 0);
      });

  trees_ = std::move(carried);
  for (auto& t : grown) trees_.push_back(std::move(t));
  streams_used_ = stream_base + static_cast<std::uint64_t>(new_trees);
  feature_dim_ = d;
  fitted_ = true;
  return Status::OK();
}

double RsfModel::ScoreOne(const double* z, double age) const {
  double sum = 0.0;
  for (const auto& tree : trees_) {
    int node = 0;
    while (tree.nodes[static_cast<std::size_t>(node)].leaf < 0) {
      const RsfNode& nd = tree.nodes[static_cast<std::size_t>(node)];
      node = z[nd.feature] <= nd.threshold ? nd.left : nd.right;
    }
    sum += tree.leaf_chf[static_cast<std::size_t>(
                             tree.nodes[static_cast<std::size_t>(node)].leaf)]
               .At(age + 1.0);
  }
  return sum / static_cast<double>(trees_.size());
}

Result<std::vector<double>> RsfModel::ScorePipes(const core::ModelInput& input) {
  if (!fitted_) return Status::FailedPrecondition("RsfModel not fitted");
  if (input.feature_dim() != feature_dim_) {
    return Status::InvalidArgument(
        "feature dimension mismatch between fit and score inputs");
  }
  std::vector<double> scores(input.num_pipes(), 0.0);
  for (std::size_t i = 0; i < input.num_pipes(); ++i) {
    double age =
        std::max(0, input.split.test_year - input.pipes[i]->laid_year);
    scores[i] = ScoreOne(input.pipe_features[i].data(), age);
  }
  return scores;
}

Result<std::vector<double>> RsfModel::ScorePipes(
    const core::ModelInput& input, const core::ScoreOptions& options) {
  if (!fitted_) return Status::FailedPrecondition("RsfModel not fitted");
  if (input.feature_dim() != feature_dim_) {
    return Status::InvalidArgument(
        "feature dimension mismatch between fit and score inputs");
  }
  const core::FeatureMatrix& fm = input.pipe_feature_matrix;
  if (fm.num_rows() != input.num_pipes() || fm.dim != feature_dim_) {
    return ScorePipes(input);  // input without flat views: serial path
  }
  return core::ScoreBlocked(
      input.num_pipes(), options, [&](std::size_t begin, std::size_t end,
                                      double* out) {
        for (std::size_t i = begin; i < end; ++i) {
          double age =
              std::max(0, input.split.test_year - input.pipes[i]->laid_year);
          out[i - begin] = ScoreOne(fm.row(i), age);
        }
      });
}

}  // namespace baselines
}  // namespace piperisk
