#include "baselines/age_models.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace piperisk {
namespace baselines {

std::string_view ToString(AgeCurve curve) {
  switch (curve) {
    case AgeCurve::kTimeExponential:
      return "time-exponential";
    case AgeCurve::kTimePower:
      return "time-power";
    case AgeCurve::kTimeLinear:
      return "time-linear";
  }
  return "?";
}

std::string AgeOnlyModel::name() const { return std::string(ToString(curve_)); }

Status AgeOnlyModel::Fit(const core::ModelInput& input) {
  if (input.num_pipes() == 0) {
    return Status::InvalidArgument("no pipes to fit");
  }
  // Aggregate exposure (km-years) and failures by integer age.
  std::map<int, double> exposure_km_years;
  std::map<int, double> failures;
  const auto& split = input.split;
  for (size_t i = 0; i < input.num_pipes(); ++i) {
    const net::Pipe& p = *input.pipes[i];
    double len_km = input.outcomes[i].length_m / 1000.0;
    for (net::Year y = split.train_first; y <= split.train_last; ++y) {
      int age = y - p.laid_year;
      if (age < 0) continue;
      exposure_km_years[age] += len_km;
      failures[age] +=
          input.dataset->failures.CountForPipe(p.id, y, y);
    }
  }
  // Weighted least squares on the transform linear in (a', b):
  //   exponential: log r = log A + b t      (weights = exposure)
  //   power:       log r = log A + b log t
  //   linear:      r = A + b t
  double sw = 0.0, sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  int used = 0;
  for (const auto& [age, expo] : exposure_km_years) {
    if (expo <= 0.0) continue;
    double rate = failures.count(age) != 0 ? failures.at(age) / expo : 0.0;
    double x, y;
    switch (curve_) {
      case AgeCurve::kTimeExponential:
        x = static_cast<double>(age);
        y = std::log(std::max(rate, 1e-4));
        break;
      case AgeCurve::kTimePower:
        x = std::log(std::max(static_cast<double>(age), 0.5));
        y = std::log(std::max(rate, 1e-4));
        break;
      case AgeCurve::kTimeLinear:
        x = static_cast<double>(age);
        y = rate;
        break;
      default:
        return Status::Internal("unknown age curve");
    }
    double w = expo;
    sw += w;
    sx += w * x;
    sy += w * y;
    sxx += w * x * x;
    sxy += w * x * y;
    ++used;
  }
  if (used < 2) {
    return Status::FailedPrecondition("not enough distinct ages to fit");
  }
  double denom = sw * sxx - sx * sx;
  if (std::fabs(denom) < 1e-12) {
    return Status::NumericalError("degenerate age design");
  }
  double slope = (sw * sxy - sx * sy) / denom;
  double inter = (sy - slope * sx) / sw;
  switch (curve_) {
    case AgeCurve::kTimeExponential:
    case AgeCurve::kTimePower:
      a_ = std::exp(inter);
      b_ = slope;
      break;
    case AgeCurve::kTimeLinear:
      a_ = inter;
      b_ = slope;
      break;
  }
  fitted_ = true;
  return Status::OK();
}

double AgeOnlyModel::RateAt(double age) const {
  switch (curve_) {
    case AgeCurve::kTimeExponential:
      return a_ * std::exp(b_ * age);
    case AgeCurve::kTimePower:
      return a_ * std::pow(std::max(age, 0.5), b_);
    case AgeCurve::kTimeLinear:
      return std::max(a_ + b_ * age, 0.0);
  }
  return 0.0;
}

Result<std::vector<double>> AgeOnlyModel::ScorePipes(
    const core::ModelInput& input) {
  if (!fitted_) return Status::FailedPrecondition("AgeOnlyModel not fitted");
  std::vector<double> scores(input.num_pipes(), 0.0);
  for (size_t i = 0; i < input.num_pipes(); ++i) {
    double age =
        std::max(0, input.split.test_year - input.pipes[i]->laid_year);
    scores[i] = RateAt(age) * input.outcomes[i].length_m / 1000.0;
  }
  return scores;
}

}  // namespace baselines
}  // namespace piperisk
