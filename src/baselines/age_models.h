#ifndef PIPERISK_BASELINES_AGE_MODELS_H_
#define PIPERISK_BASELINES_AGE_MODELS_H_

#include <string>
#include <vector>

#include "core/model.h"

namespace piperisk {
namespace baselines {

/// The classic single-factor age models from the related work
/// (Sect. 18.2.1): failures per km-year as a function of pipe age only.
///   kTimeExponential  r(t) = A exp(b t)        (Shamir & Howard 1979)
///   kTimePower        r(t) = A t^b             (Mavin 1996)
///   kTimeLinear       r(t) = A + b t           (Kettler & Goulter 1985)
/// Fitted on aggregate per-age failure rates (weighted least squares on the
/// appropriate transform); pipes are scored by predicted test-year rate
/// times pipe length. These are reference baselines and sanity probes: any
/// multivariate model should beat them.
enum class AgeCurve : int {
  kTimeExponential = 0,
  kTimePower = 1,
  kTimeLinear = 2,
};
std::string_view ToString(AgeCurve curve);

class AgeOnlyModel : public core::FailureModel {
 public:
  explicit AgeOnlyModel(AgeCurve curve) : curve_(curve) {}

  std::string name() const override;
  Status Fit(const core::ModelInput& input) override;
  Result<std::vector<double>> ScorePipes(const core::ModelInput& input) override;

  /// Predicted failures per km-year at age t.
  double RateAt(double age) const;

  double param_a() const { return a_; }
  double param_b() const { return b_; }

 private:
  AgeCurve curve_;
  bool fitted_ = false;
  double a_ = 0.0;
  double b_ = 0.0;
};

}  // namespace baselines
}  // namespace piperisk

#endif  // PIPERISK_BASELINES_AGE_MODELS_H_
