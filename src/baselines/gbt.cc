#include "baselines/gbt.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "common/thread_pool.h"
#include "stats/rng.h"

namespace piperisk {
namespace baselines {

namespace {

// Stream tag for the ensemble's master RNG (one fork per boosting round,
// ever, across the warm-start lineage).
constexpr std::uint64_t kGbtStream = 0x6B7;

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

double TreePredict(const GbtTree& tree, const double* z) {
  int node = 0;
  while (!tree.nodes[static_cast<std::size_t>(node)].is_leaf) {
    const GbtNode& nd = tree.nodes[static_cast<std::size_t>(node)];
    node = z[nd.feature] <= nd.threshold ? nd.left : nd.right;
  }
  return tree.nodes[static_cast<std::size_t>(node)].value;
}

/// A node being grown at the current level: its sampled-row list and
/// gradient/Hessian totals.
struct GrowNode {
  int id = -1;
  std::vector<std::uint32_t> rows;
  double g = 0.0;
  double h = 0.0;
  int depth = 0;
};

}  // namespace

GbtModel::GbtModel(GbtConfig config) : config_(config) {}

void GbtModel::SetWarmStart(GbtWarmState state) {
  warm_ = std::move(state);
  has_warm_ = true;
}

GbtWarmState GbtModel::warm_state() const {
  return GbtWarmState{trees_, base_score_, streams_used_, feature_dim_};
}

double GbtModel::PredictMargin(const double* z) const {
  double f = base_score_;
  for (const auto& tree : trees_) f += TreePredict(tree, z);
  return std::clamp(f, -30.0, 30.0);
}

Status GbtModel::Fit(const core::ModelInput& input) {
  const std::size_t n = input.num_pipes();
  if (n == 0) return Status::InvalidArgument("no pipes to fit");
  const std::size_t d = input.feature_dim();
  if (d == 0) return Status::InvalidArgument("no features to split on");
  if (input.pipe_features.size() != n || input.outcomes.size() != n) {
    return Status::InvalidArgument("input feature/outcome table mismatch");
  }
  const bool logistic = config_.loss == GbtLoss::kLogistic;

  std::vector<double> y(n);
  double y_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double cnt = static_cast<double>(input.outcomes[i].train_failures);
    y[i] = logistic ? (cnt > 0.0 ? 1.0 : 0.0) : cnt;
    y_sum += y[i];
  }
  if (y_sum <= 0.0) {
    return Status::FailedPrecondition("no failure events in training window");
  }

  // Quantile bin boundaries per feature (at most num_bins - 1, deduplicated);
  // bin index of value v is #{boundaries < v} via upper_bound, stored as one
  // uint8 per (row, feature).
  const int num_bins = std::clamp(config_.num_bins, 2, 256);
  std::vector<std::vector<double>> boundaries(d);
  {
    std::vector<double> col(n);
    for (std::size_t f = 0; f < d; ++f) {
      for (std::size_t i = 0; i < n; ++i) col[i] = input.pipe_features[i][f];
      std::sort(col.begin(), col.end());
      auto& b = boundaries[f];
      for (int k = 1; k < num_bins; ++k) {
        std::size_t pos = n * static_cast<std::size_t>(k) /
                          static_cast<std::size_t>(num_bins);
        pos = std::min(pos, n - 1);
        double v = col[pos];
        if (b.empty() || v > b.back()) b.push_back(v);
      }
      // A boundary equal to the column maximum would leave the top bin
      // empty and admit an empty right child; drop it.
      while (!b.empty() && b.back() >= col.back()) b.pop_back();
    }
  }
  std::vector<std::uint8_t> bins(n * d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t f = 0; f < d; ++f) {
      const auto& b = boundaries[f];
      std::size_t idx = static_cast<std::size_t>(
          std::upper_bound(b.begin(), b.end(), input.pipe_features[i][f]) -
          b.begin());
      bins[i * d + f] = static_cast<std::uint8_t>(idx);
    }
  }

  // Warm start: keep the carried trees and base score, run only the top-up
  // rounds; RNG streams continue from the lineage counter.
  std::vector<GbtTree> carried;
  std::uint64_t stream_base = 0;
  int rounds = std::max(config_.num_rounds, 1);
  if (has_warm_ && !warm_.trees.empty() && warm_.feature_dim == d) {
    carried = std::move(warm_.trees);
    base_score_ = warm_.base_score;
    stream_base = warm_.streams_used;
    rounds = std::max(config_.warm_top_up_rounds, 1);
  } else {
    double mean = y_sum / static_cast<double>(n);
    base_score_ = logistic
                      ? std::log(std::clamp(mean, 1e-6, 1.0 - 1e-6) /
                                 (1.0 - std::clamp(mean, 1e-6, 1.0 - 1e-6)))
                      : std::log(std::max(mean, 1e-6));
  }
  has_warm_ = false;
  warm_ = GbtWarmState{};

  stats::Rng master(config_.seed, kGbtStream);
  for (std::uint64_t s = 0; s < stream_base; ++s) master.Fork();
  std::vector<stats::Rng> round_rngs;
  round_rngs.reserve(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) round_rngs.push_back(master.Fork());

  // Current margin per row (carried trees included).
  std::vector<double> margin(n, base_score_);
  for (const auto& tree : carried) {
    for (std::size_t i = 0; i < n; ++i) {
      margin[i] += TreePredict(tree, input.pipe_features[i].data());
    }
  }

  std::vector<GbtTree> grown;
  grown.reserve(static_cast<std::size_t>(rounds));
  std::vector<double> grad(n), hess(n);
  const int hist_width = num_bins;
  for (int round = 0; round < rounds; ++round) {
    stats::Rng rng = round_rngs[static_cast<std::size_t>(round)];
    // Subsample rows (row order fixed, so the mask is independent of any
    // parallel decomposition), then second-order loss derivatives.
    std::vector<std::uint32_t> sampled;
    sampled.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (config_.subsample >= 1.0 || rng.NextDouble() < config_.subsample) {
        sampled.push_back(static_cast<std::uint32_t>(i));
      }
    }
    if (sampled.empty()) continue;
    for (std::uint32_t i : sampled) {
      double f = std::clamp(margin[i], -30.0, 30.0);
      if (logistic) {
        double p = Sigmoid(f);
        grad[i] = p - y[i];
        hess[i] = std::max(p * (1.0 - p), 1e-12);
      } else {
        double mu = std::exp(f);
        grad[i] = mu - y[i];
        hess[i] = std::max(mu, 1e-12);
      }
    }

    GbtTree tree;
    GrowNode root;
    root.id = 0;
    root.rows = sampled;
    for (std::uint32_t i : root.rows) {
      root.g += grad[i];
      root.h += hess[i];
    }
    tree.nodes.emplace_back();
    std::vector<GrowNode> level;
    level.push_back(std::move(root));

    while (!level.empty()) {
      // Per-node, per-feature gradient/Hessian histograms. Parallel over
      // features: each feature owns a disjoint histogram column across all
      // nodes and walks rows in list order, so the sums are bit-identical
      // for every thread count.
      const std::size_t num_nodes = level.size();
      std::vector<double> hist_g(num_nodes * d * hist_width, 0.0);
      std::vector<double> hist_h(num_nodes * d * hist_width, 0.0);
      ThreadPool::Shared().ParallelFor(
          static_cast<int>(d), config_.num_fit_threads, [&](int fi) {
            std::size_t f = static_cast<std::size_t>(fi);
            for (std::size_t nn = 0; nn < num_nodes; ++nn) {
              double* hg = hist_g.data() + (nn * d + f) * hist_width;
              double* hh = hist_h.data() + (nn * d + f) * hist_width;
              for (std::uint32_t i : level[nn].rows) {
                std::uint8_t b = bins[i * d + f];
                hg[b] += grad[i];
                hh[b] += hess[i];
              }
            }
          });

      std::vector<GrowNode> next;
      for (std::size_t nn = 0; nn < num_nodes; ++nn) {
        GrowNode& node = level[nn];
        double best_gain = 0.0;
        int best_f = -1;
        int best_b = -1;
        double parent_term =
            node.g * node.g / (node.h + config_.lambda);
        if (node.depth < config_.max_depth) {
          for (std::size_t f = 0; f < d; ++f) {
            const double* hg = hist_g.data() + (nn * d + f) * hist_width;
            const double* hh = hist_h.data() + (nn * d + f) * hist_width;
            double gl = 0.0, hl = 0.0;
            int usable = static_cast<int>(boundaries[f].size());
            for (int b = 0; b < usable; ++b) {
              gl += hg[b];
              hl += hh[b];
              double gr = node.g - gl;
              double hr = node.h - hl;
              if (hl < config_.min_child_weight ||
                  hr < config_.min_child_weight) {
                continue;
              }
              double gain = 0.5 * (gl * gl / (hl + config_.lambda) +
                                   gr * gr / (hr + config_.lambda) -
                                   parent_term);
              if (gain > best_gain + 1e-12) {
                best_gain = gain;
                best_f = static_cast<int>(f);
                best_b = b;
              }
            }
          }
        }
        GbtNode& out = tree.nodes[static_cast<std::size_t>(node.id)];
        if (best_f < 0) {
          out.is_leaf = true;
          out.value = -config_.learning_rate * node.g /
                      (node.h + config_.lambda);
          continue;
        }
        out.is_leaf = false;
        out.feature = best_f;
        out.threshold =
            boundaries[static_cast<std::size_t>(best_f)]
                      [static_cast<std::size_t>(best_b)];
        GrowNode left, right;
        left.depth = right.depth = node.depth + 1;
        for (std::uint32_t i : node.rows) {
          if (bins[i * d + static_cast<std::size_t>(best_f)] <=
              static_cast<std::uint8_t>(best_b)) {
            left.rows.push_back(i);
            left.g += grad[i];
            left.h += hess[i];
          } else {
            right.rows.push_back(i);
            right.g += grad[i];
            right.h += hess[i];
          }
        }
        left.id = static_cast<int>(tree.nodes.size());
        tree.nodes.emplace_back();
        right.id = static_cast<int>(tree.nodes.size());
        tree.nodes.emplace_back();
        // emplace_back may have moved the node storage; re-index.
        tree.nodes[static_cast<std::size_t>(node.id)].left = left.id;
        tree.nodes[static_cast<std::size_t>(node.id)].right = right.id;
        next.push_back(std::move(left));
        next.push_back(std::move(right));
      }
      level = std::move(next);
    }

    // Margins advance for every row (not just the sampled ones).
    for (std::size_t i = 0; i < n; ++i) {
      margin[i] += TreePredict(tree, input.pipe_features[i].data());
    }
    grown.push_back(std::move(tree));
  }

  trees_ = std::move(carried);
  for (auto& t : grown) trees_.push_back(std::move(t));
  streams_used_ = stream_base + static_cast<std::uint64_t>(rounds);
  feature_dim_ = d;
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> GbtModel::ScorePipes(const core::ModelInput& input) {
  if (!fitted_) return Status::FailedPrecondition("GbtModel not fitted");
  if (input.feature_dim() != feature_dim_) {
    return Status::InvalidArgument(
        "feature dimension mismatch between fit and score inputs");
  }
  const bool logistic = config_.loss == GbtLoss::kLogistic;
  std::vector<double> scores(input.num_pipes(), 0.0);
  for (std::size_t i = 0; i < input.num_pipes(); ++i) {
    double f = PredictMargin(input.pipe_features[i].data());
    scores[i] = logistic ? Sigmoid(f) : std::exp(f);
  }
  return scores;
}

Result<std::vector<double>> GbtModel::ScorePipes(
    const core::ModelInput& input, const core::ScoreOptions& options) {
  if (!fitted_) return Status::FailedPrecondition("GbtModel not fitted");
  if (input.feature_dim() != feature_dim_) {
    return Status::InvalidArgument(
        "feature dimension mismatch between fit and score inputs");
  }
  const core::FeatureMatrix& fm = input.pipe_feature_matrix;
  if (fm.num_rows() != input.num_pipes() || fm.dim != feature_dim_) {
    return ScorePipes(input);  // input without flat views: serial path
  }
  const bool logistic = config_.loss == GbtLoss::kLogistic;
  return core::ScoreBlocked(
      input.num_pipes(), options, [&](std::size_t begin, std::size_t end,
                                      double* out) {
        for (std::size_t i = begin; i < end; ++i) {
          double f = PredictMargin(fm.row(i));
          out[i - begin] = logistic ? Sigmoid(f) : std::exp(f);
        }
      });
}

}  // namespace baselines
}  // namespace piperisk
