#ifndef PIPERISK_BASELINES_COX_H_
#define PIPERISK_BASELINES_COX_H_

#include <string>
#include <vector>

#include "baselines/survival.h"
#include "core/model.h"

namespace piperisk {
namespace baselines {

/// Tie handling for the Cox partial likelihood. Pipe ages are integers, so
/// ties are pervasive; Breslow treats a tied event set as if each member
/// faced the full risk set (biasing coefficients toward zero), while Efron
/// removes the already-failed mass in expectation and is the accurate
/// default for heavily tied data.
enum class CoxTies {
  kEfron = 0,
  kBreslow = 1,
};

/// Cox proportional hazards baseline (Sect. 18.4.3, Eq. 18.8):
///   h(t, z) = h0(t) exp(b' z),
/// fitted by partial likelihood (Efron tie correction by default; Breslow
/// selectable) with Newton's method.
///
/// Survival framing of the pipe problem: time is pipe age; a pipe "enters"
/// at the age it has at the start of the training window (left truncation)
/// and either fails (first in-window failure, event at that age) or is
/// censored at its age at the end of training. Risk scores for the test
/// year are the expected hazard mass over the test year,
///   [H0(age_test + 1) - H0(age_test)] * exp(b' z),
/// with H0 the baseline cumulative hazard (extrapolated linearly beyond the
/// last observed event age).
struct CoxConfig {
  double ridge = 1e-3;
  int max_iterations = 50;
  double tolerance = 1e-8;
  CoxTies ties = CoxTies::kEfron;
};

/// Naive reference implementation of the Cox partial log likelihood
/// (no ridge penalty, no linear-predictor clamping): for every distinct
/// event time it rebuilds the risk set {entry < t <= exit} from scratch.
/// O(E * N * d) — a test/audit hook for the incremental sweep inside
/// CoxModel::Fit, not a production path. `z[i]` is the covariate vector of
/// observation `obs[i]`.
double CoxPartialLogLik(const std::vector<SurvivalObservation>& obs,
                        const std::vector<std::vector<double>>& z,
                        const std::vector<double>& beta, CoxTies ties);

class CoxModel : public core::FailureModel {
 public:
  explicit CoxModel(CoxConfig config = CoxConfig());

  std::string name() const override { return "Cox"; }
  Status Fit(const core::ModelInput& input) override;
  Result<std::vector<double>> ScorePipes(const core::ModelInput& input) override;
  /// Blocked parallel scoring over the flat feature matrix.
  Result<std::vector<double>> ScorePipes(
      const core::ModelInput& input,
      const core::ScoreOptions& options) override;

  const std::vector<double>& coefficients() const { return beta_; }
  int iterations_used() const { return iterations_used_; }

  /// Breslow baseline cumulative hazard H0 evaluated at age t (piecewise
  /// constant between event ages, linear extrapolation beyond).
  double BaselineCumulativeHazard(double age) const;

 private:
  CoxConfig config_;
  bool fitted_ = false;
  std::vector<double> beta_;
  int iterations_used_ = 0;
  // Breslow estimator support: sorted event ages and hazard increments.
  std::vector<double> event_ages_;
  std::vector<double> hazard_increments_;
};

}  // namespace baselines
}  // namespace piperisk

#endif  // PIPERISK_BASELINES_COX_H_
