#ifndef PIPERISK_BASELINES_GBT_H_
#define PIPERISK_BASELINES_GBT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/model.h"

namespace piperisk {
namespace baselines {

/// Loss for the boosted ensemble: Poisson deviance on per-pipe training
/// failure counts (the natural choice for count data) or logistic deviance
/// on the any-failure indicator.
enum class GbtLoss {
  kPoisson = 0,
  kLogistic = 1,
};

/// Gradient-boosted regression trees over the pipe feature matrix
/// (histogram-based, second-order splits in the XGBoost style): trees are
/// grown level-wise on quantile-binned features, each round fitting the
/// gradient/Hessian of the chosen deviance at the current prediction.
/// Scores are the predicted failure intensity exp(F(z)) (Poisson) or
/// probability sigmoid(F(z)) (logistic).
struct GbtConfig {
  int num_rounds = 60;
  double learning_rate = 0.1;
  int max_depth = 3;
  int num_bins = 32;
  /// Minimum Hessian mass on each side of a split.
  double min_child_weight = 1.0;
  /// L2 regularisation on leaf values.
  double lambda = 1.0;
  /// Row subsampling fraction per round (1.0 disables).
  double subsample = 0.8;
  std::uint64_t seed = 77;
  /// Worker threads for histogram building / prediction updates. Wall clock
  /// only: per-round subsampling draws from a pre-forked stream and every
  /// parallel unit writes disjoint slots, so the ensemble is bit-identical
  /// for every thread count.
  int num_fit_threads = 1;
  /// Boosting rounds run on the new data when warm-starting.
  int warm_top_up_rounds = 15;
  GbtLoss loss = GbtLoss::kPoisson;
};

/// One node of a boosted tree; leaf nodes carry the (learning-rate-scaled)
/// additive value, internal nodes descend by z[feature] <= threshold.
struct GbtNode {
  int feature = -1;
  double threshold = 0.0;
  int left = -1;
  int right = -1;
  bool is_leaf = true;
  double value = 0.0;
};

struct GbtTree {
  std::vector<GbtNode> nodes;
};

/// Snapshot of a fitted ensemble for warm-started rolling re-fits: the
/// carried trees keep their raw thresholds (valid on a later year's feature
/// encoding of the same schema), and `streams_used` continues the RNG fork
/// sequence across the lineage.
struct GbtWarmState {
  std::vector<GbtTree> trees;
  double base_score = 0.0;
  std::uint64_t streams_used = 0;
  std::size_t feature_dim = 0;
};

class GbtModel : public core::FailureModel {
 public:
  explicit GbtModel(GbtConfig config = GbtConfig());

  std::string name() const override { return "GBT"; }
  Status Fit(const core::ModelInput& input) override;
  Result<std::vector<double>> ScorePipes(const core::ModelInput& input) override;
  /// Blocked parallel scoring over the flat feature matrix.
  Result<std::vector<double>> ScorePipes(
      const core::ModelInput& input,
      const core::ScoreOptions& options) override;

  /// Snapshot of the fitted ensemble (valid after a successful Fit).
  GbtWarmState warm_state() const;
  /// Arms the next Fit to keep `state`'s trees and base score and run only
  /// warm_top_up_rounds additional boosting rounds on the new data. A state
  /// whose feature_dim disagrees with the input is ignored (cold fit).
  void SetWarmStart(GbtWarmState state);

  std::size_t num_trees() const { return trees_.size(); }

 private:
  double PredictMargin(const double* z) const;

  GbtConfig config_;
  bool fitted_ = false;
  std::size_t feature_dim_ = 0;
  double base_score_ = 0.0;
  std::vector<GbtTree> trees_;
  std::uint64_t streams_used_ = 0;
  bool has_warm_ = false;
  GbtWarmState warm_;
};

}  // namespace baselines
}  // namespace piperisk

#endif  // PIPERISK_BASELINES_GBT_H_
