#ifndef PIPERISK_BASELINES_WEIBULL_H_
#define PIPERISK_BASELINES_WEIBULL_H_

#include <string>
#include <vector>

#include "core/model.h"

namespace piperisk {
namespace baselines {

/// Weibull-process baseline (Sect. 18.4.3, Eq. 18.9): failures follow a
/// nonhomogeneous Poisson process with power-law intensity
///   lambda(t) = alpha beta t^(beta - 1) * exp(w' z)
/// (covariates multiplicative, as in the paper). With year-resolution data
/// the likelihood is Poisson on per-pipe training counts with mean
///   mu_i = exp(w' z_i) * alpha * (b_i^beta - a_i^beta),
/// where [a_i, b_i] is the pipe's observed age interval. Fitting
/// alternates a profile step on beta (golden-section on the 1-D profile
/// likelihood) with a Newton step on (log alpha, w).
struct WeibullConfig {
  double ridge = 1e-3;
  int outer_iterations = 25;
  int newton_iterations = 40;
  double beta_min = 0.2;
  double beta_max = 6.0;
  double tolerance = 1e-7;
};

class WeibullModel : public core::FailureModel {
 public:
  explicit WeibullModel(WeibullConfig config = WeibullConfig());

  std::string name() const override { return "Weibull"; }
  Status Fit(const core::ModelInput& input) override;
  Result<std::vector<double>> ScorePipes(const core::ModelInput& input) override;
  /// Blocked parallel scoring over the flat feature matrix.
  Result<std::vector<double>> ScorePipes(
      const core::ModelInput& input,
      const core::ScoreOptions& options) override;

  double alpha() const { return alpha_; }
  double beta() const { return beta_; }
  const std::vector<double>& coefficients() const { return weights_; }

  /// Expected failures of a pipe with features z between ages [a, b].
  double ExpectedFailures(const std::vector<double>& z, double a,
                          double b) const;
  /// Raw-row variant (batch scoring path; identical arithmetic).
  double ExpectedFailures(const double* z, std::size_t n, double a,
                          double b) const;

 private:
  WeibullConfig config_;
  bool fitted_ = false;
  double alpha_ = 1e-3;
  double beta_ = 1.0;
  std::vector<double> weights_;
};

}  // namespace baselines
}  // namespace piperisk

#endif  // PIPERISK_BASELINES_WEIBULL_H_
