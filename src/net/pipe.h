#ifndef PIPERISK_NET_PIPE_H_
#define PIPERISK_NET_PIPE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "net/geometry.h"
#include "net/soil.h"
#include "net/units.h"

namespace piperisk {
namespace net {

/// Network category of a pipe (Fig. 18.2 / Sect. 18.4.1): critical water
/// mains (CWM, >= 300 mm), reticulation water mains (RWM, < 300 mm), and
/// waste-water (sewer) pipes for the blockage experiments.
enum class PipeCategory : int {
  kCriticalMain = 0,
  kReticulationMain = 1,
  kWasteWater = 2,
};
inline constexpr int kNumPipeCategories = 3;

/// Pipe wall material (Table 18.2: "categorical value indicating the type of
/// pipe material"). CICL and PVC are called out in the text; the rest are
/// the standard utility stock.
enum class Material : int {
  kCicl = 0,       ///< cast iron cement lined
  kPvc = 1,        ///< polyvinyl chloride
  kDicl = 2,       ///< ductile iron cement lined
  kAc = 3,         ///< asbestos cement
  kSteel = 4,      ///< mild steel
  kVc = 5,         ///< vitrified clay (waste water)
  kConcrete = 6,   ///< reinforced concrete (large waste water)
};
inline constexpr int kNumMaterials = 7;

/// Protective coating (Table 18.2); "typical protective coatings are a
/// polyethylene sleeve and tar coating".
enum class Coating : int {
  kNone = 0,
  kPolyethyleneSleeve = 1,
  kTar = 2,
  kBitumen = 3,
};
inline constexpr int kNumCoatings = 4;

std::string_view ToString(PipeCategory v);
std::string_view ToString(Material v);
std::string_view ToString(Coating v);

Result<PipeCategory> ParsePipeCategory(std::string_view s);
Result<Material> ParseMaterial(std::string_view s);
Result<Coating> ParseCoating(std::string_view s);

/// One pipe segment: a single digitised edge of a pipe centreline. Failure
/// records are matched to segments, and the DPMHBP models failure behaviour
/// at segment granularity ("each water pipe is composed of a set of pipe
/// segments connected in series").
struct PipeSegment {
  SegmentId id = kInvalidId;
  PipeId pipe_id = kInvalidId;
  int index_in_pipe = 0;  ///< 0-based position along the pipe
  Point start;
  Point end;

  // Environmental features sampled at the segment midpoint.
  SoilProfile soil;
  double distance_to_intersection_m = 0.0;
  /// Waste-water-only factors (0 for drinking water pipes).
  double tree_canopy_fraction = 0.0;  ///< canopy cover over the segment, [0,1]
  double soil_moisture = 0.0;         ///< volumetric moisture index, [0,1]

  Point Midpoint() const {
    return Point{0.5 * (start.x + end.x), 0.5 * (start.y + end.y)};
  }
  double LengthM() const { return Distance(start, end); }
};

/// One pipe asset: intrinsic attributes (Table 18.2) plus the ordered list
/// of its segment ids.
struct Pipe {
  PipeId id = kInvalidId;
  PipeCategory category = PipeCategory::kReticulationMain;
  Material material = Material::kCicl;
  Coating coating = Coating::kNone;
  double diameter_mm = 100.0;
  Year laid_year = 1950;
  std::vector<SegmentId> segments;  ///< in series, upstream to downstream

  /// True when the pipe counts as a critical water main for the CWM-only
  /// experiments.
  bool IsCritical() const { return category == PipeCategory::kCriticalMain; }

  /// Age in (whole) years at the start of `year`; clamped at 0 for pipes
  /// laid in the future relative to `year`.
  int AgeAt(Year year) const {
    int age = static_cast<int>(year) - static_cast<int>(laid_year);
    return age < 0 ? 0 : age;
  }
};

}  // namespace net
}  // namespace piperisk

#endif  // PIPERISK_NET_PIPE_H_
