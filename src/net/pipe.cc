#include "net/pipe.h"

namespace piperisk {
namespace net {

std::string_view ToString(PipeCategory v) {
  switch (v) {
    case PipeCategory::kCriticalMain:
      return "CWM";
    case PipeCategory::kReticulationMain:
      return "RWM";
    case PipeCategory::kWasteWater:
      return "WW";
  }
  return "?";
}

std::string_view ToString(Material v) {
  switch (v) {
    case Material::kCicl:
      return "CICL";
    case Material::kPvc:
      return "PVC";
    case Material::kDicl:
      return "DICL";
    case Material::kAc:
      return "AC";
    case Material::kSteel:
      return "STEEL";
    case Material::kVc:
      return "VC";
    case Material::kConcrete:
      return "CONCRETE";
  }
  return "?";
}

std::string_view ToString(Coating v) {
  switch (v) {
    case Coating::kNone:
      return "none";
    case Coating::kPolyethyleneSleeve:
      return "pe_sleeve";
    case Coating::kTar:
      return "tar";
    case Coating::kBitumen:
      return "bitumen";
  }
  return "?";
}

namespace {
template <typename Enum>
Result<Enum> ParseEnum(std::string_view s, int count, const char* what) {
  for (int i = 0; i < count; ++i) {
    if (ToString(static_cast<Enum>(i)) == s) return static_cast<Enum>(i);
  }
  return Status::ParseError(std::string("unknown ") + what + ": '" +
                            std::string(s) + "'");
}
}  // namespace

Result<PipeCategory> ParsePipeCategory(std::string_view s) {
  return ParseEnum<PipeCategory>(s, kNumPipeCategories, "pipe category");
}
Result<Material> ParseMaterial(std::string_view s) {
  return ParseEnum<Material>(s, kNumMaterials, "material");
}
Result<Coating> ParseCoating(std::string_view s) {
  return ParseEnum<Coating>(s, kNumCoatings, "coating");
}

}  // namespace net
}  // namespace piperisk
