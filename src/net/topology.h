#ifndef PIPERISK_NET_TOPOLOGY_H_
#define PIPERISK_NET_TOPOLOGY_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "net/network.h"

namespace piperisk {
namespace net {

/// Connectivity analysis of a pipe network. The paper's risk-management
/// strategy needs, beyond failure probability, the *consequence* of a
/// failure ("the estimated failure cost ... can be readily obtained"); the
/// topology layer supplies its structural ingredients: which pipes are
/// single points of supply (bridges), how much of the network hangs off
/// each pipe, and connected components.
///
/// The graph is built by snapping segment endpoints within `snap_radius_m`
/// of each other to shared junction nodes; each *pipe* becomes one edge (or
/// a chain of edges through its internal junctions - internal chain nodes
/// are contracted, so the public view is junction-to-junction).
class NetworkGraph {
 public:
  /// A junction (snapped endpoint cluster).
  struct Node {
    Point position;
    std::vector<size_t> edges;  ///< incident edge indices
  };

  /// One pipe as a graph edge.
  struct Edge {
    PipeId pipe_id = kInvalidId;
    size_t node_a = 0;
    size_t node_b = 0;
    double length_m = 0.0;
    double diameter_mm = 0.0;
  };

  /// Builds the graph from a network. `snap_radius_m` controls endpoint
  /// clustering (digitised endpoints rarely coincide exactly).
  static Result<NetworkGraph> Build(const Network& network,
                                    double snap_radius_m = 1.0);

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Connected-component label per node, dense in [0, num_components).
  const std::vector<int>& node_components() const { return components_; }
  int num_components() const { return num_components_; }

  /// Bridge edges (cut edges): removing such a pipe disconnects its
  /// component. These are the pipes with no supply redundancy - the
  /// highest-consequence failures. Returns edge indices.
  std::vector<size_t> BridgeEdges() const;

  /// Demand (here: pipe length in metres, a proxy for customers served)
  /// that would lose supply if `edge` failed. For non-bridge edges this is
  /// 0 (the loop reroutes supply during the repair); for bridges it is the
  /// failed pipe's own length plus the smaller side of the cut (the larger
  /// side is assumed to hold the source).
  double IsolatedLengthOnFailure(size_t edge) const;

  /// Degree distribution summary, for tests and reports.
  double MeanDegree() const;

 private:
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<int> components_;
  int num_components_ = 0;

  void ComputeComponents();
  /// Tarjan bridge finding; fills bridge flags and side lengths.
  void ComputeBridges() const;
  mutable bool bridges_computed_ = false;
  mutable std::vector<bool> is_bridge_;
  mutable std::vector<double> isolated_length_;
};

/// Combines failure probability with structural consequence into the
/// expected-cost prioritisation of the paper's introduction:
///   expected cost_i = P(fail)_i * (repair_cost + consequence_i),
/// where consequence is isolated length x unit interruption cost.
struct CostModel {
  double repair_cost = 10000.0;             ///< per failure, currency units
  double interruption_cost_per_m = 50.0;    ///< per metre of isolated main
};

/// Expected-cost scores aligned with `pipes` (probabilities aligned too).
/// Pipes absent from the graph get consequence 0 (repair cost only).
Result<std::vector<double>> ExpectedFailureCost(
    const NetworkGraph& graph, const std::vector<const Pipe*>& pipes,
    const std::vector<double>& failure_probabilities, const CostModel& cost);

}  // namespace net
}  // namespace piperisk

#endif  // PIPERISK_NET_TOPOLOGY_H_
