#include "net/network.h"

#include <algorithm>
#include <limits>

namespace piperisk {
namespace net {

Status Network::AddPipe(Pipe pipe) {
  if (pipe.id == kInvalidId) {
    return Status::InvalidArgument("pipe id is invalid");
  }
  if (pipe_index_.count(pipe.id) != 0) {
    return Status::AlreadyExists("duplicate pipe id " +
                                 std::to_string(pipe.id));
  }
  pipe_index_[pipe.id] = pipes_.size();
  pipes_.push_back(std::move(pipe));
  return Status::OK();
}

Status Network::AddSegment(PipeSegment segment) {
  if (segment.id == kInvalidId) {
    return Status::InvalidArgument("segment id is invalid");
  }
  if (segment_index_.count(segment.id) != 0) {
    return Status::AlreadyExists("duplicate segment id " +
                                 std::to_string(segment.id));
  }
  auto it = pipe_index_.find(segment.pipe_id);
  if (it == pipe_index_.end()) {
    return Status::NotFound("segment " + std::to_string(segment.id) +
                            " references unknown pipe " +
                            std::to_string(segment.pipe_id));
  }
  segment_index_[segment.id] = segments_.size();
  pipes_[it->second].segments.push_back(segment.id);
  segments_.push_back(segment);
  return Status::OK();
}

void Network::RefreshEnvironmentalFeatures() {
  for (PipeSegment& s : segments_) {
    Point mid = s.Midpoint();
    if (soil_.size() > 0) {
      auto profile = soil_.ProfileAt(mid);
      if (profile.ok()) s.soil = *profile;
    }
    if (intersections_.size() > 0) {
      s.distance_to_intersection_m = intersections_.NearestDistance(mid);
    }
  }
}

Status Network::Validate() const {
  for (const PipeSegment& s : segments_) {
    if (pipe_index_.count(s.pipe_id) == 0) {
      return Status::Internal("segment " + std::to_string(s.id) +
                              " references missing pipe " +
                              std::to_string(s.pipe_id));
    }
  }
  for (const Pipe& p : pipes_) {
    for (SegmentId sid : p.segments) {
      auto it = segment_index_.find(sid);
      if (it == segment_index_.end()) {
        return Status::Internal("pipe " + std::to_string(p.id) +
                                " lists missing segment " +
                                std::to_string(sid));
      }
      if (segments_[it->second].pipe_id != p.id) {
        return Status::Internal("segment " + std::to_string(sid) +
                                " back-reference mismatch");
      }
    }
  }
  return Status::OK();
}

Result<const Pipe*> Network::FindPipe(PipeId id) const {
  auto it = pipe_index_.find(id);
  if (it == pipe_index_.end()) {
    return Status::NotFound("no pipe with id " + std::to_string(id));
  }
  return &pipes_[it->second];
}

Result<const PipeSegment*> Network::FindSegment(SegmentId id) const {
  auto it = segment_index_.find(id);
  if (it == segment_index_.end()) {
    return Status::NotFound("no segment with id " + std::to_string(id));
  }
  return &segments_[it->second];
}

std::vector<const Pipe*> Network::PipesOfCategory(PipeCategory category) const {
  std::vector<const Pipe*> out;
  for (const Pipe& p : pipes_) {
    if (p.category == category) out.push_back(&p);
  }
  return out;
}

Result<double> Network::PipeLengthM(PipeId id) const {
  auto pipe = FindPipe(id);
  if (!pipe.ok()) return pipe.status();
  double total = 0.0;
  for (SegmentId sid : (*pipe)->segments) {
    auto seg = FindSegment(sid);
    if (!seg.ok()) return seg.status();
    total += (*seg)->LengthM();
  }
  return total;
}

double Network::TotalLengthM() const {
  double total = 0.0;
  for (const PipeSegment& s : segments_) total += s.LengthM();
  return total;
}

double Network::TotalLengthM(PipeCategory category) const {
  double total = 0.0;
  for (const PipeSegment& s : segments_) {
    auto it = pipe_index_.find(s.pipe_id);
    if (it != pipe_index_.end() && pipes_[it->second].category == category) {
      total += s.LengthM();
    }
  }
  return total;
}

Network::MatchStats Network::MatchFailuresToSegments(
    std::vector<FailureRecord>* records) const {
  MatchStats stats;
  std::vector<FailureRecord> kept;
  kept.reserve(records->size());
  for (FailureRecord& r : *records) {
    const Pipe* pipe = nullptr;
    if (r.pipe_id != kInvalidId) {
      auto found = FindPipe(r.pipe_id);
      if (!found.ok()) {
        ++stats.dropped_unknown_pipe;
        continue;
      }
      pipe = *found;
    }
    double best = std::numeric_limits<double>::infinity();
    SegmentId best_id = kInvalidId;
    PipeId best_pipe = kInvalidId;
    auto consider = [&](const PipeSegment& s) {
      double d = PointSegmentDistance(r.location, s.start, s.end);
      if (d < best) {
        best = d;
        best_id = s.id;
        best_pipe = s.pipe_id;
      }
    };
    if (pipe != nullptr) {
      for (SegmentId sid : pipe->segments) {
        auto seg = FindSegment(sid);
        if (seg.ok()) consider(**seg);
      }
    } else {
      // Fall back to a whole-network nearest-segment match.
      for (const PipeSegment& s : segments_) consider(s);
      ++stats.matched_by_location_only;
    }
    if (best_id == kInvalidId) {
      ++stats.dropped_unknown_pipe;
      continue;
    }
    r.segment_id = best_id;
    if (r.pipe_id == kInvalidId) r.pipe_id = best_pipe;
    ++stats.matched;
    kept.push_back(r);
  }
  *records = std::move(kept);
  return stats;
}

}  // namespace net
}  // namespace piperisk
