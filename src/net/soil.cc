#include "net/soil.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace piperisk {
namespace net {

std::string_view ToString(SoilCorrosiveness v) {
  switch (v) {
    case SoilCorrosiveness::kLow:
      return "low";
    case SoilCorrosiveness::kModerate:
      return "moderate";
    case SoilCorrosiveness::kHigh:
      return "high";
    case SoilCorrosiveness::kSevere:
      return "severe";
  }
  return "?";
}

std::string_view ToString(SoilExpansiveness v) {
  switch (v) {
    case SoilExpansiveness::kStable:
      return "stable";
    case SoilExpansiveness::kSlightly:
      return "slightly";
    case SoilExpansiveness::kModerately:
      return "moderately";
    case SoilExpansiveness::kHighly:
      return "highly";
  }
  return "?";
}

std::string_view ToString(SoilGeology v) {
  switch (v) {
    case SoilGeology::kSandstone:
      return "sandstone";
    case SoilGeology::kShale:
      return "shale";
    case SoilGeology::kAlluvium:
      return "alluvium";
    case SoilGeology::kGranite:
      return "granite";
    case SoilGeology::kBasalt:
      return "basalt";
  }
  return "?";
}

std::string_view ToString(SoilLandscape v) {
  switch (v) {
    case SoilLandscape::kFluvial:
      return "fluvial";
    case SoilLandscape::kColluvial:
      return "colluvial";
    case SoilLandscape::kErosional:
      return "erosional";
    case SoilLandscape::kResidual:
      return "residual";
    case SoilLandscape::kAeolian:
      return "aeolian";
  }
  return "?";
}

namespace {
template <typename Enum>
Result<Enum> ParseEnum(std::string_view s, int count, const char* what) {
  for (int i = 0; i < count; ++i) {
    if (ToString(static_cast<Enum>(i)) == s) return static_cast<Enum>(i);
  }
  return Status::ParseError(std::string("unknown ") + what + ": '" +
                            std::string(s) + "'");
}
}  // namespace

Result<SoilCorrosiveness> ParseSoilCorrosiveness(std::string_view s) {
  return ParseEnum<SoilCorrosiveness>(s, kNumCorrosiveness,
                                      "soil corrosiveness");
}
Result<SoilExpansiveness> ParseSoilExpansiveness(std::string_view s) {
  return ParseEnum<SoilExpansiveness>(s, kNumExpansiveness,
                                      "soil expansiveness");
}
Result<SoilGeology> ParseSoilGeology(std::string_view s) {
  return ParseEnum<SoilGeology>(s, kNumGeology, "soil geology");
}
Result<SoilLandscape> ParseSoilLandscape(std::string_view s) {
  return ParseEnum<SoilLandscape>(s, kNumLandscape, "soil landscape");
}

SoilZoneIndex::SoilZoneIndex(std::vector<Zone> zones)
    : zones_(std::move(zones)) {}

Result<ZoneId> SoilZoneIndex::ZoneAt(const Point& p) const {
  if (zones_.empty()) return Status::FailedPrecondition("empty soil index");
  double best = std::numeric_limits<double>::infinity();
  ZoneId best_id = zones_[0].id;
  for (const Zone& z : zones_) {
    double d = Distance(z.site, p);
    if (d < best) {
      best = d;
      best_id = z.id;
    }
  }
  return best_id;
}

Result<SoilProfile> SoilZoneIndex::ProfileAt(const Point& p) const {
  if (zones_.empty()) return Status::FailedPrecondition("empty soil index");
  double best = std::numeric_limits<double>::infinity();
  const Zone* best_zone = &zones_[0];
  for (const Zone& z : zones_) {
    double d = Distance(z.site, p);
    if (d < best) {
      best = d;
      best_zone = &z;
    }
  }
  return best_zone->profile;
}

IntersectionIndex::IntersectionIndex(std::vector<Point> intersections)
    : intersections_(std::move(intersections)) {
  BuildGrid();
}

void IntersectionIndex::BuildGrid() {
  if (intersections_.empty()) return;
  double min_x = intersections_[0].x, max_x = intersections_[0].x;
  double min_y = intersections_[0].y, max_y = intersections_[0].y;
  for (const Point& p : intersections_) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  min_x_ = min_x;
  min_y_ = min_y;
  // Aim for ~1 point per cell on average.
  double span_x = std::max(max_x - min_x, 1.0);
  double span_y = std::max(max_y - min_y, 1.0);
  double target_cells = static_cast<double>(intersections_.size());
  cell_ = std::sqrt(span_x * span_y / target_cells);
  nx_ = static_cast<int>(span_x / cell_) + 1;
  ny_ = static_cast<int>(span_y / cell_) + 1;
  buckets_.assign(static_cast<size_t>(nx_) * ny_, {});
  for (size_t i = 0; i < intersections_.size(); ++i) {
    int cx = static_cast<int>((intersections_[i].x - min_x_) / cell_);
    int cy = static_cast<int>((intersections_[i].y - min_y_) / cell_);
    cx = std::clamp(cx, 0, nx_ - 1);
    cy = std::clamp(cy, 0, ny_ - 1);
    buckets_[static_cast<size_t>(cy) * nx_ + cx].push_back(
        static_cast<int>(i));
  }
}

double IntersectionIndex::NearestDistance(const Point& p) const {
  if (intersections_.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  int cx = std::clamp(static_cast<int>((p.x - min_x_) / cell_), 0, nx_ - 1);
  int cy = std::clamp(static_cast<int>((p.y - min_y_) / cell_), 0, ny_ - 1);
  double best = std::numeric_limits<double>::infinity();
  // Expand rings of cells until the best distance cannot improve.
  for (int ring = 0; ring < std::max(nx_, ny_); ++ring) {
    bool any_cell = false;
    for (int dy = -ring; dy <= ring; ++dy) {
      for (int dx = -ring; dx <= ring; ++dx) {
        if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;  // ring only
        int gx = cx + dx;
        int gy = cy + dy;
        if (gx < 0 || gy < 0 || gx >= nx_ || gy >= ny_) continue;
        any_cell = true;
        for (int idx : buckets_[static_cast<size_t>(gy) * nx_ + gx]) {
          best = std::min(best, Distance(p, intersections_[idx]));
        }
      }
    }
    // Once a hit exists, one extra ring guarantees correctness (a nearer
    // point can live in the adjacent ring across a cell border).
    if (best < std::numeric_limits<double>::infinity() &&
        best <= (ring - 1) * cell_) {
      break;
    }
    if (!any_cell && ring > std::max(nx_, ny_)) break;
  }
  return best;
}

}  // namespace net
}  // namespace piperisk
