#include "net/geometry.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace piperisk {
namespace net {

double Distance(const Point& a, const Point& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

double Polyline::Length() const {
  double total = 0.0;
  for (size_t i = 0; i + 1 < points_.size(); ++i) {
    total += Distance(points_[i], points_[i + 1]);
  }
  return total;
}

double Polyline::EdgeLength(size_t i) const {
  PIPERISK_CHECK(i + 1 < points_.size()) << "edge index out of range";
  return Distance(points_[i], points_[i + 1]);
}

Point Polyline::Interpolate(double t) const {
  PIPERISK_CHECK(!points_.empty()) << "interpolate on empty polyline";
  if (points_.size() == 1) return points_[0];
  t = std::clamp(t, 0.0, 1.0);
  double target = t * Length();
  double walked = 0.0;
  for (size_t i = 0; i + 1 < points_.size(); ++i) {
    double el = Distance(points_[i], points_[i + 1]);
    if (walked + el >= target || i + 2 == points_.size()) {
      double frac = el > 0.0 ? (target - walked) / el : 0.0;
      frac = std::clamp(frac, 0.0, 1.0);
      return Point{points_[i].x + frac * (points_[i + 1].x - points_[i].x),
                   points_[i].y + frac * (points_[i + 1].y - points_[i].y)};
    }
    walked += el;
  }
  return points_.back();
}

double Polyline::DistanceTo(const Point& p) const {
  if (points_.empty()) return std::numeric_limits<double>::infinity();
  if (points_.size() == 1) return Distance(points_[0], p);
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i + 1 < points_.size(); ++i) {
    best = std::min(best, PointSegmentDistance(p, points_[i], points_[i + 1]));
  }
  return best;
}

std::pair<Point, Point> Polyline::BoundingBox() const {
  PIPERISK_CHECK(!points_.empty()) << "bounding box of empty polyline";
  Point lo = points_[0];
  Point hi = points_[0];
  for (const Point& p : points_) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }
  return {lo, hi};
}

double PointSegmentDistance(const Point& p, const Point& a, const Point& b) {
  double abx = b.x - a.x;
  double aby = b.y - a.y;
  double len2 = abx * abx + aby * aby;
  if (len2 == 0.0) return Distance(p, a);
  double t = ((p.x - a.x) * abx + (p.y - a.y) * aby) / len2;
  t = std::clamp(t, 0.0, 1.0);
  Point proj{a.x + t * abx, a.y + t * aby};
  return Distance(p, proj);
}

double ProjectArclength(const Polyline& line, const Point& p) {
  const auto& pts = line.points();
  if (pts.size() < 2) return 0.0;
  double best_dist = std::numeric_limits<double>::infinity();
  double best_arc = 0.0;
  double walked = 0.0;
  for (size_t i = 0; i + 1 < pts.size(); ++i) {
    double abx = pts[i + 1].x - pts[i].x;
    double aby = pts[i + 1].y - pts[i].y;
    double len2 = abx * abx + aby * aby;
    double el = std::sqrt(len2);
    double t = 0.0;
    if (len2 > 0.0) {
      t = std::clamp(
          ((p.x - pts[i].x) * abx + (p.y - pts[i].y) * aby) / len2, 0.0, 1.0);
    }
    Point proj{pts[i].x + t * abx, pts[i].y + t * aby};
    double d = Distance(p, proj);
    if (d < best_dist) {
      best_dist = d;
      best_arc = walked + t * el;
    }
    walked += el;
  }
  return best_arc;
}

}  // namespace net
}  // namespace piperisk
