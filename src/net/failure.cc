#include "net/failure.h"

#include <algorithm>
#include <set>

namespace piperisk {
namespace net {

std::string_view ToString(FailureMode v) {
  switch (v) {
    case FailureMode::kBreak:
      return "break";
    case FailureMode::kChoke:
      return "choke";
  }
  return "?";
}

Result<FailureMode> ParseFailureMode(std::string_view s) {
  if (s == "break") return FailureMode::kBreak;
  if (s == "choke") return FailureMode::kChoke;
  return Status::ParseError("unknown failure mode: '" + std::string(s) + "'");
}

FailureHistory::FailureHistory(std::vector<FailureRecord> records)
    : records_(std::move(records)) {
  for (size_t i = 0; i < records_.size(); ++i) Index(records_[i], i);
}

void FailureHistory::Add(FailureRecord record) {
  records_.push_back(record);
  Index(records_.back(), records_.size() - 1);
}

void FailureHistory::Index(const FailureRecord& r, size_t pos) {
  if (r.segment_id != kInvalidId) by_segment_[r.segment_id].push_back(pos);
  if (r.pipe_id != kInvalidId) by_pipe_[r.pipe_id].push_back(pos);
}

std::vector<FailureRecord> FailureHistory::InWindow(Year first_year,
                                                    Year last_year) const {
  std::vector<FailureRecord> out;
  for (const auto& r : records_) {
    if (r.year >= first_year && r.year <= last_year) out.push_back(r);
  }
  return out;
}

int FailureHistory::CountForSegment(SegmentId segment, Year first_year,
                                    Year last_year) const {
  auto it = by_segment_.find(segment);
  if (it == by_segment_.end()) return 0;
  int n = 0;
  for (size_t pos : it->second) {
    Year y = records_[pos].year;
    if (y >= first_year && y <= last_year) ++n;
  }
  return n;
}

int FailureHistory::CountForPipe(PipeId pipe, Year first_year,
                                 Year last_year) const {
  auto it = by_pipe_.find(pipe);
  if (it == by_pipe_.end()) return 0;
  int n = 0;
  for (size_t pos : it->second) {
    Year y = records_[pos].year;
    if (y >= first_year && y <= last_year) ++n;
  }
  return n;
}

int FailureHistory::BinaryForSegmentYear(SegmentId segment, Year year) const {
  return CountForSegment(segment, year, year) > 0 ? 1 : 0;
}

int FailureHistory::FailureYearsForSegment(SegmentId segment, Year first_year,
                                           Year last_year) const {
  auto it = by_segment_.find(segment);
  if (it == by_segment_.end()) return 0;
  std::set<Year> years;
  for (size_t pos : it->second) {
    Year y = records_[pos].year;
    if (y >= first_year && y <= last_year) years.insert(y);
  }
  return static_cast<int>(years.size());
}

std::vector<PipeId> FailureHistory::FailedPipes(Year first_year,
                                                Year last_year) const {
  std::set<PipeId> out;
  for (const auto& r : records_) {
    if (r.year >= first_year && r.year <= last_year &&
        r.pipe_id != kInvalidId) {
      out.insert(r.pipe_id);
    }
  }
  return std::vector<PipeId>(out.begin(), out.end());
}

}  // namespace net
}  // namespace piperisk
