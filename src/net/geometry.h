#ifndef PIPERISK_NET_GEOMETRY_H_
#define PIPERISK_NET_GEOMETRY_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace piperisk {
namespace net {

/// A point in the local projected frame (metres).
struct Point {
  double x = 0.0;
  double y = 0.0;

  bool operator==(const Point&) const = default;
};

/// Euclidean distance between two points.
double Distance(const Point& a, const Point& b);

/// A polyline (pipe centreline). Pipes are digitised as sequences of
/// connected straight segments; a pipe *segment* in the asset model is one
/// polyline edge.
class Polyline {
 public:
  Polyline() = default;
  explicit Polyline(std::vector<Point> points) : points_(std::move(points)) {}

  const std::vector<Point>& points() const { return points_; }
  void AddPoint(Point p) { points_.push_back(p); }

  /// Number of edges (= points - 1, or 0 when degenerate).
  size_t num_edges() const {
    return points_.size() < 2 ? 0 : points_.size() - 1;
  }

  /// Total length in metres.
  double Length() const;

  /// Length of edge `i` (0-based). Precondition: i < num_edges().
  double EdgeLength(size_t i) const;

  /// The point a fraction `t` in [0,1] along the polyline by arclength.
  Point Interpolate(double t) const;

  /// Minimum distance from `p` to the polyline (0 for empty polylines is
  /// not meaningful; returns +inf then).
  double DistanceTo(const Point& p) const;

  /// Axis-aligned bounding box as {min, max}; undefined for empty polylines.
  std::pair<Point, Point> BoundingBox() const;

 private:
  std::vector<Point> points_;
};

/// Distance from point `p` to the closed segment [a, b].
double PointSegmentDistance(const Point& p, const Point& a, const Point& b);

/// Arc-length position (in metres from the start of the polyline) of the
/// projection of `p` onto the polyline. Used to match a failure GPS point to
/// the pipe segment it occurred on.
double ProjectArclength(const Polyline& line, const Point& p);

}  // namespace net
}  // namespace piperisk

#endif  // PIPERISK_NET_GEOMETRY_H_
