#include "net/feature.h"

#include <cmath>

#include "common/logging.h"
#include "stats/descriptive.h"

namespace piperisk {
namespace net {

FeatureConfig FeatureConfig::DrinkingWater() { return FeatureConfig{}; }

FeatureConfig FeatureConfig::WasteWater() {
  FeatureConfig c;
  c.tree_canopy = true;
  c.soil_moisture = true;
  return c;
}

FeatureConfig FeatureConfig::AttributesOnly() {
  FeatureConfig c;
  c.soil_corrosiveness = false;
  c.soil_expansiveness = false;
  c.soil_geology = false;
  c.soil_landscape = false;
  c.distance_to_intersection = false;
  c.tree_canopy = false;
  c.soil_moisture = false;
  return c;
}

FeatureEncoder::FeatureEncoder(FeatureConfig config, Year reference_year)
    : config_(config), reference_year_(reference_year) {
  BuildNames();
}

void FeatureEncoder::BuildNames() {
  names_.clear();
  if (config_.coating) {
    for (int i = 0; i < kNumCoatings; ++i) {
      names_.push_back("coating=" +
                       std::string(ToString(static_cast<Coating>(i))));
    }
  }
  if (config_.diameter) names_.push_back("log_diameter_mm");
  if (config_.length) names_.push_back("log_length_m");
  if (config_.age) names_.push_back("age_years");
  if (config_.material) {
    for (int i = 0; i < kNumMaterials; ++i) {
      names_.push_back("material=" +
                       std::string(ToString(static_cast<Material>(i))));
    }
  }
  if (config_.soil_corrosiveness) {
    for (int i = 0; i < kNumCorrosiveness; ++i) {
      names_.push_back(
          "soil_corr=" +
          std::string(ToString(static_cast<SoilCorrosiveness>(i))));
    }
  }
  if (config_.soil_expansiveness) {
    for (int i = 0; i < kNumExpansiveness; ++i) {
      names_.push_back(
          "soil_expan=" +
          std::string(ToString(static_cast<SoilExpansiveness>(i))));
    }
  }
  if (config_.soil_geology) {
    for (int i = 0; i < kNumGeology; ++i) {
      names_.push_back("soil_geol=" +
                       std::string(ToString(static_cast<SoilGeology>(i))));
    }
  }
  if (config_.soil_landscape) {
    for (int i = 0; i < kNumLandscape; ++i) {
      names_.push_back("soil_map=" +
                       std::string(ToString(static_cast<SoilLandscape>(i))));
    }
  }
  if (config_.distance_to_intersection) {
    names_.push_back("log1p_dist_intersection_m");
  }
  if (config_.tree_canopy) names_.push_back("tree_canopy_fraction");
  if (config_.soil_moisture) names_.push_back("soil_moisture");
}

namespace {

void PushOneHot(std::vector<double>* row, int value, int cardinality) {
  for (int i = 0; i < cardinality; ++i) {
    row->push_back(i == value ? 1.0 : 0.0);
  }
}

}  // namespace

Result<std::vector<double>> FeatureEncoder::EncodeSegment(
    const Network& network, const PipeSegment& segment) const {
  auto pipe = network.FindPipe(segment.pipe_id);
  if (!pipe.ok()) return pipe.status();
  const Pipe& p = **pipe;

  std::vector<double> row;
  row.reserve(dimension());
  if (config_.coating) {
    PushOneHot(&row, static_cast<int>(p.coating), kNumCoatings);
  }
  if (config_.diameter) row.push_back(std::log(std::max(p.diameter_mm, 1.0)));
  if (config_.length) {
    row.push_back(std::log(std::max(segment.LengthM(), 0.1)));
  }
  if (config_.age) {
    row.push_back(static_cast<double>(p.AgeAt(reference_year_)));
  }
  if (config_.material) {
    PushOneHot(&row, static_cast<int>(p.material), kNumMaterials);
  }
  if (config_.soil_corrosiveness) {
    PushOneHot(&row, static_cast<int>(segment.soil.corrosiveness),
               kNumCorrosiveness);
  }
  if (config_.soil_expansiveness) {
    PushOneHot(&row, static_cast<int>(segment.soil.expansiveness),
               kNumExpansiveness);
  }
  if (config_.soil_geology) {
    PushOneHot(&row, static_cast<int>(segment.soil.geology), kNumGeology);
  }
  if (config_.soil_landscape) {
    PushOneHot(&row, static_cast<int>(segment.soil.landscape), kNumLandscape);
  }
  if (config_.distance_to_intersection) {
    row.push_back(std::log1p(std::max(segment.distance_to_intersection_m,
                                      0.0)));
  }
  if (config_.tree_canopy) row.push_back(segment.tree_canopy_fraction);
  if (config_.soil_moisture) row.push_back(segment.soil_moisture);
  PIPERISK_CHECK(row.size() == dimension()) << "encoder width drift";
  return row;
}

Result<std::vector<double>> FeatureEncoder::EncodePipe(const Network& network,
                                                       const Pipe& pipe) const {
  // Average the segment encodings; override the length column (if present)
  // with the log of the *total* pipe length.
  if (pipe.segments.empty()) {
    return Status::InvalidArgument("pipe " + std::to_string(pipe.id) +
                                   " has no segments");
  }
  std::vector<double> acc(dimension(), 0.0);
  double total_length = 0.0;
  for (SegmentId sid : pipe.segments) {
    auto seg = network.FindSegment(sid);
    if (!seg.ok()) return seg.status();
    auto row = EncodeSegment(network, **seg);
    if (!row.ok()) return row.status();
    for (size_t c = 0; c < acc.size(); ++c) acc[c] += (*row)[c];
    total_length += (*seg)->LengthM();
  }
  double inv = 1.0 / static_cast<double>(pipe.segments.size());
  for (double& v : acc) v *= inv;
  if (config_.length) {
    // Locate the length column: it follows the optional coating block and
    // diameter column.
    size_t idx = 0;
    if (config_.coating) idx += kNumCoatings;
    if (config_.diameter) idx += 1;
    acc[idx] = std::log(std::max(total_length, 0.1));
  }
  return acc;
}

std::vector<std::vector<double>> FeatureEncoder::FitStandardise(
    const std::vector<std::vector<double>>& rows) {
  means_.assign(dimension(), 0.0);
  sds_.assign(dimension(), 1.0);
  if (rows.empty()) {
    fitted_ = true;
    return {};
  }
  std::vector<stats::RunningStats> cols(dimension());
  for (const auto& row : rows) {
    PIPERISK_CHECK(row.size() == dimension()) << "row width mismatch";
    for (size_t c = 0; c < row.size(); ++c) cols[c].Add(row[c]);
  }
  for (size_t c = 0; c < dimension(); ++c) {
    means_[c] = cols[c].mean();
    double sd = cols[c].stddev();
    sds_[c] = sd > 1e-12 ? sd : 1.0;
  }
  fitted_ = true;
  std::vector<std::vector<double>> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(Standardise(row));
  return out;
}

std::vector<double> FeatureEncoder::Standardise(
    const std::vector<double>& row) const {
  PIPERISK_CHECK(fitted_) << "Standardise before FitStandardise";
  PIPERISK_CHECK(row.size() == dimension()) << "row width mismatch";
  std::vector<double> out(row.size());
  for (size_t c = 0; c < row.size(); ++c) {
    out[c] = (row[c] - means_[c]) / sds_[c];
  }
  return out;
}

}  // namespace net
}  // namespace piperisk
