#ifndef PIPERISK_NET_FEATURE_H_
#define PIPERISK_NET_FEATURE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "net/network.h"

namespace piperisk {
namespace net {

/// Which feature blocks to encode. The paper (Table 18.2) uses five pipe
/// attributes + soil factors + traffic distance for drinking water, and adds
/// tree canopy + soil moisture for waste water. Feature *selection* is the
/// domain-knowledge lever the chapter emphasises, so it is explicit here:
/// experiments toggle blocks on and off to quantify each factor's value.
struct FeatureConfig {
  bool coating = true;
  bool diameter = true;
  bool length = true;
  bool age = true;  ///< derived from laid date and the reference year
  bool material = true;
  bool soil_corrosiveness = true;
  bool soil_expansiveness = true;
  bool soil_geology = true;
  bool soil_landscape = true;
  bool distance_to_intersection = true;
  bool tree_canopy = false;   ///< waste water only
  bool soil_moisture = false; ///< waste water only

  /// The standard drinking-water configuration of Table 18.2.
  static FeatureConfig DrinkingWater();
  /// Waste-water configuration (adds canopy + moisture).
  static FeatureConfig WasteWater();
  /// Basic features only (attributes, no environmental factors) — the
  /// "without domain knowledge" ablation.
  static FeatureConfig AttributesOnly();
};

/// Encodes pipes/segments into dense double vectors: one-hot categorical
/// blocks, log-transformed positive continuous features, then (optionally)
/// per-column standardisation computed on a training set.
class FeatureEncoder {
 public:
  /// Creates an encoder for a network. `reference_year` anchors the age
  /// feature (age = reference_year - laid_year).
  FeatureEncoder(FeatureConfig config, Year reference_year);

  /// Column names, in encoding order.
  const std::vector<std::string>& names() const { return names_; }
  size_t dimension() const { return names_.size(); }

  /// Encodes one segment (its pipe supplies the intrinsic attributes).
  /// The `length` feature is the *segment* length — the modelling level the
  /// DPMHBP uses. Fails if the segment's pipe is missing.
  Result<std::vector<double>> EncodeSegment(const Network& network,
                                            const PipeSegment& segment) const;

  /// Encodes one pipe: intrinsic attributes + environmental features
  /// averaged over its segments; `length` is total pipe length. Used by the
  /// pipe-level baselines (Cox, Weibull, rankers).
  Result<std::vector<double>> EncodePipe(const Network& network,
                                         const Pipe& pipe) const;

  /// Fits standardisation statistics (mean/sd per column) on `rows` and
  /// returns the standardised copy. Columns with zero variance pass through
  /// centred only.
  std::vector<std::vector<double>> FitStandardise(
      const std::vector<std::vector<double>>& rows);

  /// Applies previously fitted statistics. Precondition: FitStandardise was
  /// called and row width matches.
  std::vector<double> Standardise(const std::vector<double>& row) const;

  bool standardiser_fitted() const { return fitted_; }
  const std::vector<double>& column_means() const { return means_; }
  const std::vector<double>& column_sds() const { return sds_; }

 private:
  void BuildNames();

  FeatureConfig config_;
  Year reference_year_;
  std::vector<std::string> names_;
  bool fitted_ = false;
  std::vector<double> means_;
  std::vector<double> sds_;
};

}  // namespace net
}  // namespace piperisk

#endif  // PIPERISK_NET_FEATURE_H_
