#ifndef PIPERISK_NET_FAILURE_H_
#define PIPERISK_NET_FAILURE_H_

#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "net/geometry.h"
#include "net/units.h"

namespace piperisk {
namespace net {

/// Failure mode: drinking-water pipes break, waste-water pipes block
/// ("choke" in the utility's terminology).
enum class FailureMode : int {
  kBreak = 0,
  kChoke = 1,
};
std::string_view ToString(FailureMode v);
Result<FailureMode> ParseFailureMode(std::string_view s);

/// One failure event, already matched to a pipe segment. The utility's raw
/// records carry (pipe id, date, location); `MatchFailuresToSegments` in
/// network.h resolves the segment from the location.
struct FailureRecord {
  PipeId pipe_id = kInvalidId;
  SegmentId segment_id = kInvalidId;
  Year year = 0;
  Point location;
  FailureMode mode = FailureMode::kBreak;
};

/// The failure log for a region: record storage plus the per-segment and
/// per-pipe year-indexed views every model trains on.
class FailureHistory {
 public:
  FailureHistory() = default;
  explicit FailureHistory(std::vector<FailureRecord> records);

  void Add(FailureRecord record);

  const std::vector<FailureRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }

  /// All records with first_year <= year <= last_year.
  std::vector<FailureRecord> InWindow(Year first_year, Year last_year) const;

  /// Number of failures of `segment` in [first_year, last_year].
  int CountForSegment(SegmentId segment, Year first_year,
                      Year last_year) const;

  /// Number of failures of `pipe` in [first_year, last_year].
  int CountForPipe(PipeId pipe, Year first_year, Year last_year) const;

  /// 1 if `segment` failed at least once in `year`, else 0. This is the
  /// Bernoulli observation y_{l,j} of the models: "it is very rare for a
  /// segment to fail twice in a year", so year-occupancy is the natural
  /// binarisation.
  int BinaryForSegmentYear(SegmentId segment, Year year) const;

  /// Distinct years within [first,last] in which `segment` failed.
  int FailureYearsForSegment(SegmentId segment, Year first_year,
                             Year last_year) const;

  /// Set of pipes with >= 1 failure in the window.
  std::vector<PipeId> FailedPipes(Year first_year, Year last_year) const;

 private:
  void Index(const FailureRecord& r, size_t pos);

  std::vector<FailureRecord> records_;
  std::unordered_map<SegmentId, std::vector<size_t>> by_segment_;
  std::unordered_map<PipeId, std::vector<size_t>> by_pipe_;
};

}  // namespace net
}  // namespace piperisk

#endif  // PIPERISK_NET_FAILURE_H_
