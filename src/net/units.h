#ifndef PIPERISK_NET_UNITS_H_
#define PIPERISK_NET_UNITS_H_

#include <cstdint>

namespace piperisk {
namespace net {

/// Strongly-suggestive aliases for the asset model's identifier and unit
/// conventions. Lengths are metres, diameters millimetres, coordinates
/// metres in a local projected (easting, northing) frame, dates are integer
/// calendar years (the utility's failure records are year-resolution).

using PipeId = std::int64_t;
using SegmentId = std::int64_t;
using ZoneId = std::int32_t;
using Year = int;

/// Diameter threshold separating critical water mains (CWM) from
/// reticulation water mains (RWM): the paper defines CWM as >= 300 mm.
inline constexpr double kCriticalMainMinDiameterMm = 300.0;

/// Sentinel for "no id".
inline constexpr std::int64_t kInvalidId = -1;

}  // namespace net
}  // namespace piperisk

#endif  // PIPERISK_NET_UNITS_H_
