#include "net/topology.h"

#include <algorithm>
#include <cmath>
#include <stack>

namespace piperisk {
namespace net {

namespace {

/// Spatial hash for endpoint snapping: bucket by cell, search neighbours.
struct SnapIndex {
  double cell;
  std::unordered_map<long long, std::vector<size_t>> buckets;

  explicit SnapIndex(double cell_size) : cell(cell_size) {}

  long long Key(double x, double y) const {
    long long gx = static_cast<long long>(std::floor(x / cell));
    long long gy = static_cast<long long>(std::floor(y / cell));
    return gx * 2654435761LL + gy;
  }

  void Add(const Point& p, size_t node) { buckets[Key(p.x, p.y)].push_back(node); }

  /// Finds an existing node within `radius` of p, else SIZE_MAX.
  size_t Find(const Point& p, const std::vector<NetworkGraph::Node>& nodes,
              double radius) const {
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        auto it = buckets.find(Key(p.x + dx * cell, p.y + dy * cell));
        if (it == buckets.end()) continue;
        for (size_t n : it->second) {
          if (Distance(nodes[n].position, p) <= radius) return n;
        }
      }
    }
    return static_cast<size_t>(-1);
  }
};

}  // namespace

Result<NetworkGraph> NetworkGraph::Build(const Network& network,
                                         double snap_radius_m) {
  if (snap_radius_m <= 0.0) {
    return Status::InvalidArgument("snap radius must be positive");
  }
  NetworkGraph graph;
  SnapIndex snap(std::max(snap_radius_m * 2.0, 1.0));

  auto node_for = [&](const Point& p) {
    size_t found = snap.Find(p, graph.nodes_, snap_radius_m);
    if (found != static_cast<size_t>(-1)) return found;
    Node node;
    node.position = p;
    graph.nodes_.push_back(node);
    snap.Add(p, graph.nodes_.size() - 1);
    return graph.nodes_.size() - 1;
  };

  for (const Pipe& pipe : network.pipes()) {
    if (pipe.segments.empty()) continue;
    auto first = network.FindSegment(pipe.segments.front());
    auto last = network.FindSegment(pipe.segments.back());
    if (!first.ok() || !last.ok()) continue;
    Edge edge;
    edge.pipe_id = pipe.id;
    edge.node_a = node_for((*first)->start);
    edge.node_b = node_for((*last)->end);
    auto length = network.PipeLengthM(pipe.id);
    edge.length_m = length.ok() ? *length : 0.0;
    edge.diameter_mm = pipe.diameter_mm;
    size_t idx = graph.edges_.size();
    graph.edges_.push_back(edge);
    graph.nodes_[edge.node_a].edges.push_back(idx);
    if (edge.node_b != edge.node_a) {
      graph.nodes_[edge.node_b].edges.push_back(idx);
    }
  }
  graph.ComputeComponents();
  return graph;
}

void NetworkGraph::ComputeComponents() {
  components_.assign(nodes_.size(), -1);
  num_components_ = 0;
  for (size_t start = 0; start < nodes_.size(); ++start) {
    if (components_[start] >= 0) continue;
    // Iterative DFS.
    std::stack<size_t> stack;
    stack.push(start);
    components_[start] = num_components_;
    while (!stack.empty()) {
      size_t u = stack.top();
      stack.pop();
      for (size_t e : nodes_[u].edges) {
        size_t v = edges_[e].node_a == u ? edges_[e].node_b : edges_[e].node_a;
        if (components_[v] < 0) {
          components_[v] = num_components_;
          stack.push(v);
        }
      }
    }
    ++num_components_;
  }
}

void NetworkGraph::ComputeBridges() const {
  if (bridges_computed_) return;
  bridges_computed_ = true;
  is_bridge_.assign(edges_.size(), false);
  isolated_length_.assign(edges_.size(), 0.0);

  const size_t n = nodes_.size();
  std::vector<int> disc(n, -1), low(n, 0);
  // Subtree pipe-length below each node (for the isolated-demand measure).
  std::vector<double> subtree_length(n, 0.0);
  int timer = 0;

  // Iterative Tarjan with an explicit frame stack (parent edge tracked to
  // skip the tree edge back; parallel edges still count as cycles because
  // we skip by edge index, not by endpoint).
  struct Frame {
    size_t node;
    size_t parent_edge;
    size_t next_edge_pos;
  };
  double total_length = 0.0;
  for (const Edge& e : edges_) total_length += e.length_m;

  for (size_t root = 0; root < n; ++root) {
    if (disc[root] >= 0) continue;
    std::vector<Frame> stack;
    stack.push_back({root, static_cast<size_t>(-1), 0});
    disc[root] = low[root] = timer++;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      size_t u = frame.node;
      if (frame.next_edge_pos < nodes_[u].edges.size()) {
        size_t e = nodes_[u].edges[frame.next_edge_pos++];
        if (e == frame.parent_edge) continue;
        const Edge& edge = edges_[e];
        size_t v = edge.node_a == u ? edge.node_b : edge.node_a;
        if (v == u) continue;  // self loop, never a bridge
        if (disc[v] < 0) {
          disc[v] = low[v] = timer++;
          stack.push_back({v, e, 0});
        } else {
          low[u] = std::min(low[u], disc[v]);
        }
      } else {
        stack.pop_back();
        if (!stack.empty()) {
          size_t parent = stack.back().node;
          size_t pe = frame.parent_edge;
          low[parent] = std::min(low[parent], low[u]);
          subtree_length[parent] += subtree_length[u] + edges_[pe].length_m;
          if (low[u] > disc[parent]) {
            is_bridge_[pe] = true;
            // Demand isolated: the failed pipe's own customers plus the
            // smaller side of the cut (supply is maintained from the
            // larger side).
            double below = subtree_length[u];  // child side, edge excluded
            double above = total_length - below - edges_[pe].length_m;
            isolated_length_[pe] =
                edges_[pe].length_m + std::min(below, std::max(above, 0.0));
          }
        }
      }
    }
  }
}

std::vector<size_t> NetworkGraph::BridgeEdges() const {
  ComputeBridges();
  std::vector<size_t> out;
  for (size_t e = 0; e < edges_.size(); ++e) {
    if (is_bridge_[e]) out.push_back(e);
  }
  return out;
}

double NetworkGraph::IsolatedLengthOnFailure(size_t edge) const {
  ComputeBridges();
  if (edge >= edges_.size()) return 0.0;
  return is_bridge_[edge] ? isolated_length_[edge] : 0.0;
}

double NetworkGraph::MeanDegree() const {
  if (nodes_.empty()) return 0.0;
  double total = 0.0;
  for (const Node& node : nodes_) total += node.edges.size();
  return total / static_cast<double>(nodes_.size());
}

Result<std::vector<double>> ExpectedFailureCost(
    const NetworkGraph& graph, const std::vector<const Pipe*>& pipes,
    const std::vector<double>& failure_probabilities, const CostModel& cost) {
  if (pipes.size() != failure_probabilities.size()) {
    return Status::InvalidArgument("pipes/probabilities length mismatch");
  }
  // Pipe id -> edge index.
  std::unordered_map<PipeId, size_t> edge_of;
  for (size_t e = 0; e < graph.edges().size(); ++e) {
    edge_of[graph.edges()[e].pipe_id] = e;
  }
  std::vector<double> out(pipes.size(), 0.0);
  for (size_t i = 0; i < pipes.size(); ++i) {
    double consequence = cost.repair_cost;
    auto it = edge_of.find(pipes[i]->id);
    if (it != edge_of.end()) {
      consequence += cost.interruption_cost_per_m *
                     graph.IsolatedLengthOnFailure(it->second);
    }
    out[i] = failure_probabilities[i] * consequence;
  }
  return out;
}

}  // namespace net
}  // namespace piperisk
