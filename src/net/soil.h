#ifndef PIPERISK_NET_SOIL_H_
#define PIPERISK_NET_SOIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "net/geometry.h"
#include "net/units.h"

namespace piperisk {
namespace net {

/// The four categorical soil factors of Table 18.2. Each partitions the
/// region into zones; a pipe segment inherits the values of the zone its
/// midpoint falls into ("pipe segments falling into the same region share
/// the same soil factor value").

/// Pitting/corrosion risk class (linear polarisation resistance test bands).
enum class SoilCorrosiveness : int {
  kLow = 0,
  kModerate = 1,
  kHigh = 2,
  kSevere = 3,
};
inline constexpr int kNumCorrosiveness = 4;

/// Shrink–swell reactivity class of the surrounding clays.
enum class SoilExpansiveness : int {
  kStable = 0,
  kSlightly = 1,
  kModerately = 2,
  kHighly = 3,
};
inline constexpr int kNumExpansiveness = 4;

/// Dominant rock type.
enum class SoilGeology : int {
  kSandstone = 0,
  kShale = 1,
  kAlluvium = 2,
  kGranite = 3,
  kBasalt = 4,
};
inline constexpr int kNumGeology = 5;

/// Landscape class from the soil map layer.
enum class SoilLandscape : int {
  kFluvial = 0,
  kColluvial = 1,
  kErosional = 2,
  kResidual = 3,
  kAeolian = 4,
};
inline constexpr int kNumLandscape = 5;

std::string_view ToString(SoilCorrosiveness v);
std::string_view ToString(SoilExpansiveness v);
std::string_view ToString(SoilGeology v);
std::string_view ToString(SoilLandscape v);

Result<SoilCorrosiveness> ParseSoilCorrosiveness(std::string_view s);
Result<SoilExpansiveness> ParseSoilExpansiveness(std::string_view s);
Result<SoilGeology> ParseSoilGeology(std::string_view s);
Result<SoilLandscape> ParseSoilLandscape(std::string_view s);

/// The full soil profile at one location.
struct SoilProfile {
  SoilCorrosiveness corrosiveness = SoilCorrosiveness::kLow;
  SoilExpansiveness expansiveness = SoilExpansiveness::kStable;
  SoilGeology geology = SoilGeology::kSandstone;
  SoilLandscape landscape = SoilLandscape::kFluvial;

  bool operator==(const SoilProfile&) const = default;
};

/// A spatial index mapping locations to soil profiles.
///
/// The utility's GIS layers partition each local-government area into
/// irregular polygons; we model the partition as a Voronoi diagram over
/// seeded sites, each carrying a full profile. Lookup is nearest-site. This
/// preserves the property the models rely on: spatially proximate segments
/// share soil values, and zone shapes are irregular.
class SoilZoneIndex {
 public:
  /// A Voronoi site with its profile.
  struct Zone {
    ZoneId id = 0;
    Point site;
    SoilProfile profile;
  };

  SoilZoneIndex() = default;
  explicit SoilZoneIndex(std::vector<Zone> zones);

  /// The zone whose site is nearest to `p`. Fails when the index is empty.
  Result<ZoneId> ZoneAt(const Point& p) const;

  /// Profile lookup at a point; fails when the index is empty.
  Result<SoilProfile> ProfileAt(const Point& p) const;

  const std::vector<Zone>& zones() const { return zones_; }
  size_t size() const { return zones_.size(); }

 private:
  std::vector<Zone> zones_;
};

/// A set of traffic intersections with a nearest-distance query; the
/// "distance to closest traffic intersection" feature of Table 18.2 measures
/// road-surface pressure-change exposure.
class IntersectionIndex {
 public:
  IntersectionIndex() = default;
  explicit IntersectionIndex(std::vector<Point> intersections);

  /// Distance from `p` to the nearest intersection; +inf when empty
  /// (callers treat that as "no road exposure").
  double NearestDistance(const Point& p) const;

  const std::vector<Point>& intersections() const { return intersections_; }
  size_t size() const { return intersections_.size(); }

 private:
  // Uniform grid buckets for sub-linear nearest queries on large regions.
  void BuildGrid();
  std::vector<Point> intersections_;
  double cell_ = 0.0;
  double min_x_ = 0.0, min_y_ = 0.0;
  int nx_ = 0, ny_ = 0;
  std::vector<std::vector<int>> buckets_;
};

}  // namespace net
}  // namespace piperisk

#endif  // PIPERISK_NET_SOIL_H_
