#ifndef PIPERISK_NET_NETWORK_H_
#define PIPERISK_NET_NETWORK_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "net/failure.h"
#include "net/pipe.h"
#include "net/soil.h"
#include "net/units.h"

namespace piperisk {
namespace net {

/// Region metadata (Sect. 18.4.1): the three study regions differ mainly in
/// population density, which drives network density and traffic exposure.
struct RegionInfo {
  std::string name;           ///< "A", "B", "C", or user-defined
  double population = 0.0;
  double area_km2 = 0.0;
  double DensityPerKm2() const {
    return area_km2 > 0.0 ? population / area_km2 : 0.0;
  }
};

/// A complete pipe network for one region: assets, environmental layers and
/// lookup structure. Owns its pipes and segments; ids are unique within a
/// network.
class Network {
 public:
  Network() = default;
  explicit Network(RegionInfo region) : region_(std::move(region)) {}

  // --- construction ---------------------------------------------------------

  /// Adds a pipe (attributes only; segments are added separately and
  /// registered on the pipe). Fails on duplicate id.
  Status AddPipe(Pipe pipe);

  /// Adds a segment and appends it to its pipe's segment list. Fails if the
  /// pipe does not exist or the segment id is a duplicate.
  Status AddSegment(PipeSegment segment);

  void SetSoilIndex(SoilZoneIndex index) { soil_ = std::move(index); }
  void SetIntersectionIndex(IntersectionIndex index) {
    intersections_ = std::move(index);
  }

  /// Re-derives each segment's environmental features (soil profile,
  /// distance to intersection) from the spatial layers. Call after the
  /// layers are set; a no-op for layers that are absent.
  void RefreshEnvironmentalFeatures();

  /// Structural validation: every segment's pipe exists, every pipe's
  /// segment list matches the segment table, ids are consistent.
  Status Validate() const;

  // --- access ---------------------------------------------------------------

  const RegionInfo& region() const { return region_; }
  const std::vector<Pipe>& pipes() const { return pipes_; }
  const std::vector<PipeSegment>& segments() const { return segments_; }
  const SoilZoneIndex& soil() const { return soil_; }
  const IntersectionIndex& intersections() const { return intersections_; }

  Result<const Pipe*> FindPipe(PipeId id) const;
  Result<const PipeSegment*> FindSegment(SegmentId id) const;

  /// Pipes of one category.
  std::vector<const Pipe*> PipesOfCategory(PipeCategory category) const;

  /// Total length of a pipe (sum of its segments), metres.
  Result<double> PipeLengthM(PipeId id) const;

  /// Total network length in metres (optionally one category only).
  double TotalLengthM() const;
  double TotalLengthM(PipeCategory category) const;

  size_t num_pipes() const { return pipes_.size(); }
  size_t num_segments() const { return segments_.size(); }

  // --- failure matching -------------------------------------------------------

  /// Resolves each record's segment id from its pipe id + location by
  /// nearest segment of that pipe (the paper: "failure locations are used
  /// for matching failures with pipe segments"). Records whose pipe id is
  /// unknown are dropped with a count reported via the return value.
  struct MatchStats {
    size_t matched = 0;
    size_t dropped_unknown_pipe = 0;
    size_t matched_by_location_only = 0;  ///< record had no pipe id
  };
  MatchStats MatchFailuresToSegments(std::vector<FailureRecord>* records) const;

 private:
  RegionInfo region_;
  std::vector<Pipe> pipes_;
  std::vector<PipeSegment> segments_;
  std::unordered_map<PipeId, size_t> pipe_index_;
  std::unordered_map<SegmentId, size_t> segment_index_;
  SoilZoneIndex soil_;
  IntersectionIndex intersections_;
};

}  // namespace net
}  // namespace piperisk

#endif  // PIPERISK_NET_NETWORK_H_
