#include "common/flags.h"

#include <algorithm>

#include "common/strings.h"

namespace piperisk {

Result<CommandLine> CommandLine::Parse(int argc, const char* const* argv) {
  CommandLine cl;
  int i = 0;
  while (i < argc) {
    std::string token = argv[i];
    if (StartsWith(token, "--")) {
      std::string body = token.substr(2);
      if (body.empty()) {
        return Status::InvalidArgument("bare '--' is not a valid flag");
      }
      size_t eq = body.find('=');
      if (eq != std::string::npos) {
        cl.values_[body.substr(0, eq)] = body.substr(eq + 1);
        ++i;
      } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
        cl.values_[body] = argv[i + 1];
        i += 2;
      } else {
        cl.values_[body] = "true";  // boolean switch
        ++i;
      }
    } else {
      if (cl.command_.empty()) {
        cl.command_ = token;
      } else {
        cl.positionals_.push_back(token);
      }
      ++i;
    }
  }
  return cl;
}

std::string CommandLine::GetString(const std::string& key,
                                   const std::string& fallback) const {
  auto it = values_.find(key);
  return it != values_.end() ? it->second : fallback;
}

Result<double> CommandLine::GetDouble(const std::string& key,
                                      double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  auto parsed = ParseDouble(it->second);
  if (!parsed.ok()) {
    return Status::InvalidArgument("flag --" + key + ": " +
                                   parsed.status().message());
  }
  return *parsed;
}

Result<long long> CommandLine::GetInt(const std::string& key,
                                      long long fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  auto parsed = ParseInt(it->second);
  if (!parsed.ok()) {
    return Status::InvalidArgument("flag --" + key + ": " +
                                   parsed.status().message());
  }
  return *parsed;
}

bool CommandLine::GetBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::string v = ToLowerAscii(it->second);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::vector<std::string> CommandLine::UnknownFlags(
    const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    (void)value;
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      out.push_back(key);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace piperisk
