#ifndef PIPERISK_COMMON_STRINGS_H_
#define PIPERISK_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace piperisk {

/// Splits `input` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> SplitString(std::string_view input, char delim);

/// Removes ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view input);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Parses a decimal double; fails on trailing garbage or empty input.
Result<double> ParseDouble(std::string_view input);

/// Parses a decimal signed 64-bit integer; fails on trailing garbage,
/// overflow, or empty input.
Result<long long> ParseInt(std::string_view input);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Lower-cases ASCII characters.
std::string ToLowerAscii(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace piperisk

#endif  // PIPERISK_COMMON_STRINGS_H_
