#include "common/trace.h"

#include <chrono>
#include <mutex>
#include <ostream>
#include <vector>

namespace piperisk {
namespace telemetry {

namespace internal {

std::atomic<bool> g_tracing_enabled{false};

namespace {

/// One recorded complete event. `name` is a caller-owned literal.
struct SpanEvent {
  const char* name;
  std::int64_t start_us;
  std::int64_t dur_us;
  int tid;
};

std::mutex g_span_mu;
std::vector<SpanEvent>& SpanBuffer() {
  static std::vector<SpanEvent>* buffer = new std::vector<SpanEvent>();
  return *buffer;
}

/// Small dense id per recording thread — chrome://tracing renders one row
/// per tid, and dense ids read better than opaque pthread handles.
int TraceTid() {
  static std::atomic<int> next{0};
  thread_local const int tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

std::int64_t TraceNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - TraceEpoch())
      .count();
}

void RecordSpan(const char* name, std::int64_t start_us, std::int64_t end_us) {
  SpanEvent event{name, start_us, end_us - start_us, TraceTid()};
  std::lock_guard<std::mutex> lock(g_span_mu);
  SpanBuffer().push_back(event);
}

}  // namespace internal

bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}

void StartTracing() {
  // Pin the epoch before any span so timestamps are monotone from here.
  internal::TraceNowUs();
  {
    std::lock_guard<std::mutex> lock(internal::g_span_mu);
    internal::SpanBuffer().clear();
  }
  internal::g_tracing_enabled.store(true, std::memory_order_relaxed);
}

void StopTracing() {
  internal::g_tracing_enabled.store(false, std::memory_order_relaxed);
}

std::size_t CollectedSpanCount() {
  std::lock_guard<std::mutex> lock(internal::g_span_mu);
  return internal::SpanBuffer().size();
}

void WriteTraceJson(std::ostream& out) {
  std::lock_guard<std::mutex> lock(internal::g_span_mu);
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const auto& e : internal::SpanBuffer()) {
    out << (first ? "\n" : ",\n");
    first = false;
    // Span names are compile-time literals (identifiers and dots), so no
    // JSON escaping is needed.
    out << "  {\"name\": \"" << e.name << "\", \"cat\": \"piperisk\", "
        << "\"ph\": \"X\", \"pid\": 1, \"tid\": " << e.tid
        << ", \"ts\": " << e.start_us << ", \"dur\": " << e.dur_us << "}";
  }
  out << (first ? "" : "\n") << "]}\n";
}

}  // namespace telemetry
}  // namespace piperisk
