#include "common/telemetry.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>

#include "common/logging.h"
#include "common/strings.h"

namespace piperisk {
namespace telemetry {

namespace internal {

int ThreadStripe() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned id =
      next.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int>(id % static_cast<unsigned>(kStripes));
}

void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>* target, double value) {
  double cur = target->load(std::memory_order_relaxed);
  while (value < cur && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>* target, double value) {
  double cur = target->load(std::memory_order_relaxed);
  while (value > cur && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace internal

std::int64_t Counter::Value() const {
  std::int64_t total = 0;
  for (const auto& s : stripes_) {
    total += s.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (auto& s : stripes_) s.value.store(0, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      cells_(static_cast<std::size_t>(kStripes) * (bounds_.size() + 1)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  PIPERISK_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be increasing";
}

void Histogram::Observe(double value) {
  // Linear scan: bucket lists are short (~20) and the loop is branch-cheap;
  // observation sites are block/sweep-granular, never per-row.
  std::size_t bucket = 0;
  while (bucket < bounds_.size() && value > bounds_[bucket]) ++bucket;
  const int stripe = internal::ThreadStripe();
  cells_[static_cast<std::size_t>(stripe) * (bounds_.size() + 1) + bucket]
      .value.fetch_add(1, std::memory_order_relaxed);
  count_[stripe].value.fetch_add(1, std::memory_order_relaxed);
  internal::AtomicAddDouble(&sum_, value);
  internal::AtomicMinDouble(&min_, value);
  internal::AtomicMaxDouble(&max_, value);
}

void Histogram::Reset() {
  for (auto& c : cells_) c.value.store(0, std::memory_order_relaxed);
  for (auto& c : count_) c.value.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::vector<double> DefaultTimeBucketsUs() {
  return {10.0,    25.0,    50.0,    100.0,   250.0,    500.0,
          1e3,     2.5e3,   5e3,     1e4,     2.5e4,    5e4,
          1e5,     2.5e5,   5e5,     1e6,     2.5e6,    1e7};
}

// --- windowed views ---------------------------------------------------------

double EstimateQuantile(const HistogramSample& sample, double q) {
  if (sample.count <= 0 || sample.counts.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(sample.count);
  std::int64_t cumulative = 0;
  for (std::size_t b = 0; b < sample.counts.size(); ++b) {
    const std::int64_t in_bucket = sample.counts[b];
    if (in_bucket == 0) continue;
    const std::int64_t next = cumulative + in_bucket;
    if (static_cast<double>(next) >= target) {
      if (b >= sample.bounds.size()) {
        // Overflow bucket: no upper bound to interpolate toward; report the
        // observed max when it is known to lie in this bucket, else the last
        // finite bound (best available lower bound on the quantile).
        if (sample.max > 0.0 &&
            (sample.bounds.empty() || sample.max > sample.bounds.back())) {
          return sample.max;
        }
        return sample.bounds.empty() ? sample.max : sample.bounds.back();
      }
      const double hi = sample.bounds[b];
      double lo = b == 0 ? 0.0 : sample.bounds[b - 1];
      if (b == 0 && sample.min > lo && sample.min <= hi) lo = sample.min;
      const double frac =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    }
    cumulative = next;
  }
  return sample.max;
}

MetricsWindow::MetricsWindow(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void MetricsWindow::Record(MetricsSnapshot snapshot,
                           std::chrono::steady_clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(Entry{now, std::move(snapshot)});
  while (ring_.size() > capacity_) ring_.pop_front();
}

void MetricsWindow::RecordNow() {
  Record(Registry::Global().Snapshot(), std::chrono::steady_clock::now());
}

std::size_t MetricsWindow::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

namespace {

/// newer - older for matching counter/histogram names (set difference on the
/// sorted-by-name samples; metrics registered after `older` keep their full
/// newer value). Gauges keep the newest value: a gauge delta is meaningless.
MetricsSnapshot DiffSnapshots(const MetricsSnapshot& newer,
                              const MetricsSnapshot& older) {
  MetricsSnapshot out;
  out.gauges = newer.gauges;
  out.counters.reserve(newer.counters.size());
  {
    std::size_t j = 0;
    for (const CounterSample& c : newer.counters) {
      while (j < older.counters.size() && older.counters[j].name < c.name) ++j;
      CounterSample d = c;
      if (j < older.counters.size() && older.counters[j].name == c.name) {
        d.value -= older.counters[j].value;
      }
      out.counters.push_back(std::move(d));
    }
  }
  out.histograms.reserve(newer.histograms.size());
  std::size_t j = 0;
  for (const HistogramSample& h : newer.histograms) {
    while (j < older.histograms.size() && older.histograms[j].name < h.name) {
      ++j;
    }
    HistogramSample d = h;
    if (j < older.histograms.size() && older.histograms[j].name == h.name &&
        older.histograms[j].counts.size() == h.counts.size()) {
      const HistogramSample& o = older.histograms[j];
      for (std::size_t b = 0; b < d.counts.size(); ++b) {
        d.counts[b] -= o.counts[b];
      }
      d.count -= o.count;
      d.sum -= o.sum;
      // min/max are lifetime extremes, not window extremes; leave them as the
      // cumulative values (EstimateQuantile only trusts them at the edges).
    }
    out.histograms.push_back(std::move(d));
  }
  return out;
}

}  // namespace

WindowDelta MetricsWindow::Over(double seconds) const {
  std::lock_guard<std::mutex> lock(mu_);
  WindowDelta out;
  if (ring_.empty()) return out;
  const Entry& newest = ring_.back();
  if (ring_.size() == 1) {
    out.delta = newest.snapshot;
    return out;
  }
  // Newest entry at least `seconds` older than the head (clamped to oldest).
  const auto cutoff =
      newest.at - std::chrono::duration<double>(std::max(0.0, seconds));
  const Entry* base = &ring_.front();
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if (it->at <= cutoff) {
      base = &*it;
      break;
    }
  }
  if (base == &newest) base = &ring_[ring_.size() - 2];
  out.seconds = std::chrono::duration<double>(newest.at - base->at).count();
  out.delta = DiffSnapshots(newest.snapshot, base->snapshot);
  return out;
}

// --- registry ---------------------------------------------------------------

struct Registry::Impl {
  mutable std::mutex mu;
  // std::map keeps snapshot iteration sorted by name; node-based storage
  // keeps metric addresses stable across later registrations.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry::Registry() : impl_(new Impl) {}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // leaked, like the thread pool
  return *registry;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  PIPERISK_CHECK(impl_->gauges.count(name) == 0 &&
                 impl_->histograms.count(name) == 0)
      << "metric '" << name << "' already registered with another kind";
  auto [it, inserted] = impl_->counters.try_emplace(name);
  if (inserted) it->second = std::make_unique<Counter>();
  return it->second.get();
}

Gauge* Registry::GetGauge(const std::string& name, GaugeMode mode) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  PIPERISK_CHECK(impl_->counters.count(name) == 0 &&
                 impl_->histograms.count(name) == 0)
      << "metric '" << name << "' already registered with another kind";
  auto [it, inserted] = impl_->gauges.try_emplace(name);
  if (inserted) {
    it->second = std::make_unique<Gauge>(mode);
  } else {
    PIPERISK_CHECK(it->second->mode() == mode)
        << "gauge '" << name << "' already registered with another mode";
  }
  return it->second.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  PIPERISK_CHECK(impl_->counters.count(name) == 0 &&
                 impl_->gauges.count(name) == 0)
      << "metric '" << name << "' already registered with another kind";
  auto [it, inserted] = impl_->histograms.try_emplace(name);
  if (inserted) it->second = std::make_unique<Histogram>(std::move(bounds));
  return it->second.get();
}

MetricsSnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  MetricsSnapshot snap;
  snap.counters.reserve(impl_->counters.size());
  for (const auto& [name, counter] : impl_->counters) {
    snap.counters.push_back({name, counter->Value()});
  }
  snap.gauges.reserve(impl_->gauges.size());
  for (const auto& [name, gauge] : impl_->gauges) {
    snap.gauges.push_back({name, gauge->Value()});
  }
  snap.histograms.reserve(impl_->histograms.size());
  for (const auto& [name, hist] : impl_->histograms) {
    HistogramSample sample;
    sample.name = name;
    sample.bounds = hist->bounds_;
    const std::size_t buckets = hist->bounds_.size() + 1;
    sample.counts.assign(buckets, 0);
    for (int stripe = 0; stripe < kStripes; ++stripe) {
      for (std::size_t b = 0; b < buckets; ++b) {
        sample.counts[b] +=
            hist->cells_[static_cast<std::size_t>(stripe) * buckets + b]
                .value.load(std::memory_order_relaxed);
      }
      sample.count += hist->count_[stripe].value.load(std::memory_order_relaxed);
    }
    sample.sum = hist->sum_.load(std::memory_order_relaxed);
    sample.min = hist->min_.load(std::memory_order_relaxed);
    sample.max = hist->max_.load(std::memory_order_relaxed);
    if (sample.count == 0) {
      sample.min = 0.0;
      sample.max = 0.0;
    }
    snap.histograms.push_back(std::move(sample));
  }
  return snap;
}

void Registry::ResetForTest() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, counter] : impl_->counters) counter->Reset();
  for (auto& [name, gauge] : impl_->gauges) gauge->Reset();
  for (auto& [name, hist] : impl_->histograms) hist->Reset();
}

// --- JSON export ------------------------------------------------------------

namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          out += StrFormat("\\u%04x", ch);
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// JSON has no Infinity/NaN; non-finite values become null.
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  return StrFormat("%.17g", v);
}

}  // namespace

void WriteMetricsJson(const MetricsSnapshot& snapshot,
                      const RunMetadata& metadata, std::ostream& out) {
  out << "{\n";
  out << "  \"schema_version\": 1,\n";
  out << "  \"run\": {\n";
  out << "    \"command\": \"" << EscapeJson(metadata.command) << "\",\n";
  out << "    \"seed\": " << metadata.seed << ",\n";
  out << "    \"chains\": " << metadata.chains << ",\n";
  out << "    \"threads\": " << metadata.threads << ",\n";
  out << "    \"git_describe\": \"" << EscapeJson(metadata.git_describe)
      << "\"\n";
  out << "  },\n";

  out << "  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    out << "    \"" << EscapeJson(snapshot.counters[i].name)
        << "\": " << snapshot.counters[i].value;
  }
  out << (snapshot.counters.empty() ? "" : "\n  ") << "},\n";

  out << "  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    out << "    \"" << EscapeJson(snapshot.gauges[i].name)
        << "\": " << JsonNumber(snapshot.gauges[i].value);
  }
  out << (snapshot.gauges.empty() ? "" : "\n  ") << "},\n";

  out << "  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& h = snapshot.histograms[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    \"" << EscapeJson(h.name) << "\": {\n";
    out << "      \"bounds\": [";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      out << (b ? ", " : "") << JsonNumber(h.bounds[b]);
    }
    out << "],\n      \"counts\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      out << (b ? ", " : "") << h.counts[b];
    }
    out << "],\n      \"count\": " << h.count;
    out << ",\n      \"sum\": " << JsonNumber(h.sum);
    out << ",\n      \"min\": " << JsonNumber(h.min);
    out << ",\n      \"max\": " << JsonNumber(h.max);
    out << "\n    }";
  }
  out << (snapshot.histograms.empty() ? "" : "\n  ") << "}\n";
  out << "}\n";
}

std::string RenderSnapshot(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& c : snapshot.counters) {
    out << StrFormat("%-40s %16lld\n", c.name.c_str(),
                     static_cast<long long>(c.value));
  }
  for (const auto& g : snapshot.gauges) {
    out << StrFormat("%-40s %16.6g\n", g.name.c_str(), g.value);
  }
  for (const auto& h : snapshot.histograms) {
    const double mean =
        h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0;
    out << StrFormat("%-40s count=%lld mean=%.4g min=%.4g max=%.4g\n",
                     h.name.c_str(), static_cast<long long>(h.count), mean,
                     h.min, h.max);
  }
  return out.str();
}

}  // namespace telemetry
}  // namespace piperisk
