#ifndef PIPERISK_COMMON_LOGGING_H_
#define PIPERISK_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace piperisk {

/// Severity levels for the library logger. `kFatal` aborts the process after
/// emitting the message; everything else is advisory.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Process-wide minimum level; messages below it are dropped. Defaults to
/// `kInfo`. The level is an atomic: it is safe to change it while other
/// threads are logging (each message observes either the old or the new
/// level), and line emission is serialised so concurrent chains never
/// interleave mid-line.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses a case-insensitive level name ("debug", "info", "warning"/"warn",
/// "error", "fatal") as used by the CLI `--log-level` flag. Returns false
/// (leaving `out` untouched) on anything else.
bool ParseLogLevel(const std::string& name, LogLevel* out);

namespace internal {

/// Stream-style log sink: accumulates a message and emits it on destruction.
/// Use through the PIPERISK_LOG macro rather than directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Emits a log line: `PIPERISK_LOG(kInfo) << "fitted " << n << " pipes";`
#define PIPERISK_LOG(severity)                                       \
  ::piperisk::internal::LogMessage(::piperisk::LogLevel::severity,   \
                                   __FILE__, __LINE__)

/// Checks an invariant in all build modes; logs and aborts on violation.
#define PIPERISK_CHECK(cond)                                          \
  if (!(cond))                                                        \
  PIPERISK_LOG(kFatal) << "Check failed: " #cond " "

}  // namespace piperisk

#endif  // PIPERISK_COMMON_LOGGING_H_
