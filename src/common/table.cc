#include "common/table.h"

#include <algorithm>

#include "common/logging.h"

namespace piperisk {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  alignment_.assign(header_.size(), Align::kRight);
  if (!alignment_.empty()) alignment_[0] = Align::kLeft;
}

void TextTable::SetAlignment(std::vector<Align> alignment) {
  if (alignment.size() != header_.size()) {
    PIPERISK_LOG(kWarning) << "alignment width mismatch; ignoring";
    return;
  }
  alignment_ = std::move(alignment);
}

void TextTable::AddRow(std::vector<std::string> row) {
  if (row.size() > header_.size()) {
    PIPERISK_LOG(kWarning) << "row wider than header; truncating";
    row.resize(header_.size());
  }
  row.resize(header_.size());  // pad short rows with empties
  rows_.push_back(std::move(row));
}

void TextTable::AddSeparator() { rows_.emplace_back(); }

std::string TextTable::ToString() const {
  std::vector<size_t> width(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto rule = [&]() {
    std::string s = "+";
    for (size_t c = 0; c < width.size(); ++c) {
      s += std::string(width[c] + 2, '-');
      s += '+';
    }
    s += '\n';
    return s;
  };
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      size_t pad = width[c] - cell.size();
      s += ' ';
      if (alignment_[c] == Align::kRight) s += std::string(pad, ' ');
      s += cell;
      if (alignment_[c] == Align::kLeft) s += std::string(pad, ' ');
      s += " |";
    }
    s += '\n';
    return s;
  };

  std::string out = rule();
  out += render_row(header_);
  out += rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      out += rule();
    } else {
      out += render_row(row);
    }
  }
  out += rule();
  return out;
}

std::string TextTable::ToMarkdown() const {
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (size_t c = 0; c < header_.size(); ++c) {
      s += ' ';
      s += c < row.size() ? row[c] : std::string();
      s += " |";
    }
    s += '\n';
    return s;
  };
  std::string out = render_row(header_);
  out += "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    out += alignment_[c] == Align::kRight ? " ---: |" : " --- |";
  }
  out += '\n';
  for (const auto& row : rows_) {
    if (!row.empty()) out += render_row(row);
  }
  return out;
}

}  // namespace piperisk
