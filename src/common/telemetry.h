#ifndef PIPERISK_COMMON_TELEMETRY_H_
#define PIPERISK_COMMON_TELEMETRY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace piperisk {
namespace telemetry {

/// Process-wide metric registry: counters, gauges, and fixed-bucket
/// histograms, recorded lock-free from any thread and aggregated only when a
/// snapshot is taken.
///
/// Recording contract:
///   - Counter::Add / Gauge::Set / Histogram::Observe are wait-free on the
///     fast path: one relaxed atomic RMW on a cache-line-padded stripe that
///     is effectively private to the calling thread (each thread is assigned
///     its own stripe round-robin; stripes are shared only beyond
///     kStripes concurrent threads, which stays exact — just contended).
///   - Metrics never touch RNG streams and never allocate after
///     registration, so instrumented samplers produce bit-identical draws.
///   - Registry::Snapshot() may run concurrently with recording; it reads
///     the stripes with relaxed loads, so a snapshot is a consistent "some
///     moment recently" view, and a quiesced registry reads exact totals.
///   - Metric objects live forever once registered (the registry is leaked,
///     like ThreadPool::Shared()); cached pointers never dangle, and
///     ResetForTest() zeroes values in place without invalidating them.
///
/// Usage: resolve the handle once, record many times.
///   static Counter* const accepts =
///       Registry::Global().GetCounter("mcmc.accepts");
///   accepts->Increment();

/// Number of per-metric stripes. Enough that every worker thread of the
/// shared pool gets its own cache line on typical hosts.
inline constexpr int kStripes = 32;

namespace internal {

/// One cache-line-padded atomic cell of a striped metric.
struct alignas(64) Stripe {
  std::atomic<std::int64_t> value{0};
};

/// Stripe index of the calling thread (assigned round-robin on first use).
int ThreadStripe();

/// Relaxed fetch_add for doubles via CAS (works pre-C++20 atomic<double>
/// fetch_add and under every sanitizer).
void AtomicAddDouble(std::atomic<double>* target, double delta);
void AtomicMinDouble(std::atomic<double>* target, double value);
void AtomicMaxDouble(std::atomic<double>* target, double value);

}  // namespace internal

/// Monotonically increasing integer metric.
class Counter {
 public:
  void Add(std::int64_t delta) {
    stripes_[internal::ThreadStripe()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Sum over all stripes (exact when recording is quiesced).
  std::int64_t Value() const;

  void Reset();

 private:
  internal::Stripe stripes_[kStripes];
};

/// How concurrent Gauge::Set calls combine.
enum class GaugeMode {
  /// Last writer wins. The gauge is one atomic cell — NOT striped — so
  /// concurrent Set calls from many threads resolve to exactly one of the
  /// written values at snapshot time (never a stripe-sum or a torn mix).
  /// Which writer "wins" under contention is unspecified; use this mode for
  /// values where any recent write is a correct answer (generation numbers,
  /// ratios recomputed by one owner).
  kLastWrite,
  /// Running maximum: Set(v) keeps max(current, v) via CAS. The right mode
  /// for peak-RSS-style high-water marks recorded from multiple threads,
  /// where last-write-wins would let a smaller late sample erase the peak.
  kMax,
};

/// Double metric; see GaugeMode for the concurrency semantics of Set.
class Gauge {
 public:
  explicit Gauge(GaugeMode mode = GaugeMode::kLastWrite) : mode_(mode) {}

  void Set(double value) {
    if (mode_ == GaugeMode::kMax) {
      internal::AtomicMaxDouble(&value_, value);
    } else {
      value_.store(value, std::memory_order_relaxed);
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  GaugeMode mode() const { return mode_; }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  const GaugeMode mode_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations <= bounds[i]; one
/// extra overflow bucket counts the rest. Also tracks count / sum / min /
/// max so snapshots can report means and tails without bucket math.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }

  void Reset();

 private:
  friend class Registry;

  std::vector<double> bounds_;
  /// Flat [stripe][bucket]; bucket count = bounds_.size() + 1.
  std::vector<internal::Stripe> cells_;
  internal::Stripe count_[kStripes];
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Exponential microsecond buckets (10us .. 10s), the default for every
/// latency histogram in the tree.
std::vector<double> DefaultTimeBucketsUs();

// --- snapshots --------------------------------------------------------------

struct CounterSample {
  std::string name;
  std::int64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::int64_t> counts;  ///< bounds.size() + 1 (overflow last)
  std::int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0
  double max = 0.0;  ///< 0 when count == 0
};

/// Point-in-time aggregation of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// Quantile estimate (q in [0,1]) from a histogram sample by linear
/// interpolation within the bucket containing the q-th observation. The first
/// bucket interpolates from 0 (or min when known); the overflow bucket is
/// pinned to max (or the last bound). Returns 0 for an empty sample. Error is
/// bounded by the width of the containing bucket.
double EstimateQuantile(const HistogramSample& sample, double q);

// --- windowed views ---------------------------------------------------------

/// Windowed view over a [older, newer] snapshot pair: counters and histogram
/// buckets as deltas, gauges as the newest value. `seconds` is the actual
/// covered span, which may be shorter than requested when the ring has not
/// been recording for long enough.
struct WindowDelta {
  double seconds = 0.0;
  MetricsSnapshot delta;
};

/// Ring buffer of timestamped *cumulative* snapshots, populated by a reader
/// (sampler or scrape handler) — never by recording threads, so the wait-free
/// recording contract is untouched. Windowed rates and rolling quantiles are
/// computed at read time by differencing the newest entry against the entry
/// just older than the requested span:
///   rate[10s]  = (counter_now - counter_10s_ago) / elapsed
///   p99[10s]   = EstimateQuantile(bucket-count deltas over the span)
/// Staleness is bounded by the sampling cadence (entries are only as fresh as
/// the last Record call); memory cost is capacity × snapshot size.
class MetricsWindow {
 public:
  /// `capacity` bounds the ring; with a 1 Hz sampler the default covers a
  /// little over two minutes of history.
  explicit MetricsWindow(std::size_t capacity = 128);

  /// Appends one cumulative snapshot (evicting the oldest at capacity).
  /// Thread-safe, but meant for a single sampler thread plus scrapers.
  void Record(MetricsSnapshot snapshot,
              std::chrono::steady_clock::time_point now);

  /// Convenience: Record(Registry::Global().Snapshot(), now).
  void RecordNow();

  /// Delta between the newest entry and the newest entry at least `seconds`
  /// older (clamped to the oldest available). Returns an empty WindowDelta
  /// (seconds == 0) with the newest absolute values when fewer than two
  /// entries exist.
  WindowDelta Over(double seconds) const;

  std::size_t size() const;

 private:
  struct Entry {
    std::chrono::steady_clock::time_point at;
    MetricsSnapshot snapshot;
  };

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<Entry> ring_;
};

/// Everything a metrics export needs to be auditable later: which command
/// produced it, with which reproducibility-relevant settings, from which
/// build.
struct RunMetadata {
  std::string command;
  std::uint64_t seed = 0;
  int chains = 0;
  int threads = 0;
  std::string git_describe;
};

class Registry {
 public:
  /// The process-wide registry (leaked; see file comment).
  static Registry& Global();

  /// Idempotent registration: the first call for a name creates the metric,
  /// later calls return the same pointer. Registering the same name as two
  /// different metric kinds aborts.
  Counter* GetCounter(const std::string& name);
  /// `mode` is ignored (the original wins) when the gauge already exists;
  /// re-registering an existing gauge with a different mode aborts.
  Gauge* GetGauge(const std::string& name,
                  GaugeMode mode = GaugeMode::kLastWrite);
  /// `bounds` must be strictly increasing; it is ignored (the original wins)
  /// when the histogram already exists.
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds);

  /// Aggregates every metric. Safe concurrently with recording.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric in place. Pointers stay valid. Test/bench only —
  /// racing this against recorders loses increments.
  void ResetForTest();

 private:
  Registry();
  ~Registry() = delete;

  struct Impl;
  Impl* impl_;
};

/// Serialises a snapshot plus run metadata as the stable piperisk metrics
/// JSON document (schema_version 1):
///   {"schema_version":1,
///    "run":{"command":...,"seed":...,"chains":...,"threads":...,
///           "git_describe":...},
///    "counters":{name:int,...},
///    "gauges":{name:number|null,...},
///    "histograms":{name:{"bounds":[...],"counts":[...],
///                        "count":n,"sum":s,"min":m,"max":M},...}}
/// Non-finite gauge values are emitted as null (JSON has no Infinity).
void WriteMetricsJson(const MetricsSnapshot& snapshot,
                      const RunMetadata& metadata, std::ostream& out);

/// Human-readable rendering of a snapshot (one metric per line), used by the
/// benches and the CLI instead of ad-hoc stderr timing prints.
std::string RenderSnapshot(const MetricsSnapshot& snapshot);

}  // namespace telemetry
}  // namespace piperisk

#endif  // PIPERISK_COMMON_TELEMETRY_H_
