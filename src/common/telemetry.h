#ifndef PIPERISK_COMMON_TELEMETRY_H_
#define PIPERISK_COMMON_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace piperisk {
namespace telemetry {

/// Process-wide metric registry: counters, gauges, and fixed-bucket
/// histograms, recorded lock-free from any thread and aggregated only when a
/// snapshot is taken.
///
/// Recording contract:
///   - Counter::Add / Gauge::Set / Histogram::Observe are wait-free on the
///     fast path: one relaxed atomic RMW on a cache-line-padded stripe that
///     is effectively private to the calling thread (each thread is assigned
///     its own stripe round-robin; stripes are shared only beyond
///     kStripes concurrent threads, which stays exact — just contended).
///   - Metrics never touch RNG streams and never allocate after
///     registration, so instrumented samplers produce bit-identical draws.
///   - Registry::Snapshot() may run concurrently with recording; it reads
///     the stripes with relaxed loads, so a snapshot is a consistent "some
///     moment recently" view, and a quiesced registry reads exact totals.
///   - Metric objects live forever once registered (the registry is leaked,
///     like ThreadPool::Shared()); cached pointers never dangle, and
///     ResetForTest() zeroes values in place without invalidating them.
///
/// Usage: resolve the handle once, record many times.
///   static Counter* const accepts =
///       Registry::Global().GetCounter("mcmc.accepts");
///   accepts->Increment();

/// Number of per-metric stripes. Enough that every worker thread of the
/// shared pool gets its own cache line on typical hosts.
inline constexpr int kStripes = 32;

namespace internal {

/// One cache-line-padded atomic cell of a striped metric.
struct alignas(64) Stripe {
  std::atomic<std::int64_t> value{0};
};

/// Stripe index of the calling thread (assigned round-robin on first use).
int ThreadStripe();

/// Relaxed fetch_add for doubles via CAS (works pre-C++20 atomic<double>
/// fetch_add and under every sanitizer).
void AtomicAddDouble(std::atomic<double>* target, double delta);
void AtomicMinDouble(std::atomic<double>* target, double value);
void AtomicMaxDouble(std::atomic<double>* target, double value);

}  // namespace internal

/// Monotonically increasing integer metric.
class Counter {
 public:
  void Add(std::int64_t delta) {
    stripes_[internal::ThreadStripe()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Sum over all stripes (exact when recording is quiesced).
  std::int64_t Value() const;

  void Reset();

 private:
  internal::Stripe stripes_[kStripes];
};

/// Last-write-wins double metric.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations <= bounds[i]; one
/// extra overflow bucket counts the rest. Also tracks count / sum / min /
/// max so snapshots can report means and tails without bucket math.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }

  void Reset();

 private:
  friend class Registry;

  std::vector<double> bounds_;
  /// Flat [stripe][bucket]; bucket count = bounds_.size() + 1.
  std::vector<internal::Stripe> cells_;
  internal::Stripe count_[kStripes];
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Exponential microsecond buckets (10us .. 10s), the default for every
/// latency histogram in the tree.
std::vector<double> DefaultTimeBucketsUs();

// --- snapshots --------------------------------------------------------------

struct CounterSample {
  std::string name;
  std::int64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::int64_t> counts;  ///< bounds.size() + 1 (overflow last)
  std::int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0
  double max = 0.0;  ///< 0 when count == 0
};

/// Point-in-time aggregation of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// Everything a metrics export needs to be auditable later: which command
/// produced it, with which reproducibility-relevant settings, from which
/// build.
struct RunMetadata {
  std::string command;
  std::uint64_t seed = 0;
  int chains = 0;
  int threads = 0;
  std::string git_describe;
};

class Registry {
 public:
  /// The process-wide registry (leaked; see file comment).
  static Registry& Global();

  /// Idempotent registration: the first call for a name creates the metric,
  /// later calls return the same pointer. Registering the same name as two
  /// different metric kinds aborts.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` must be strictly increasing; it is ignored (the original wins)
  /// when the histogram already exists.
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds);

  /// Aggregates every metric. Safe concurrently with recording.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric in place. Pointers stay valid. Test/bench only —
  /// racing this against recorders loses increments.
  void ResetForTest();

 private:
  Registry();
  ~Registry() = delete;

  struct Impl;
  Impl* impl_;
};

/// Serialises a snapshot plus run metadata as the stable piperisk metrics
/// JSON document (schema_version 1):
///   {"schema_version":1,
///    "run":{"command":...,"seed":...,"chains":...,"threads":...,
///           "git_describe":...},
///    "counters":{name:int,...},
///    "gauges":{name:number|null,...},
///    "histograms":{name:{"bounds":[...],"counts":[...],
///                        "count":n,"sum":s,"min":m,"max":M},...}}
/// Non-finite gauge values are emitted as null (JSON has no Infinity).
void WriteMetricsJson(const MetricsSnapshot& snapshot,
                      const RunMetadata& metadata, std::ostream& out);

/// Human-readable rendering of a snapshot (one metric per line), used by the
/// benches and the CLI instead of ad-hoc stderr timing prints.
std::string RenderSnapshot(const MetricsSnapshot& snapshot);

}  // namespace telemetry
}  // namespace piperisk

#endif  // PIPERISK_COMMON_TELEMETRY_H_
