#ifndef PIPERISK_COMMON_STATUS_H_
#define PIPERISK_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace piperisk {

/// Error categories used across the library. Mirrors the coarse-grained
/// code sets of Arrow/RocksDB-style status objects: a small, stable enum so
/// callers can dispatch on failure class without string matching.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kIoError = 6,
  kParseError = 7,
  kNumericalError = 8,
  kNotConverged = 9,
  kUnimplemented = 10,
  kInternal = 11,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// A lightweight success-or-error value used on every fallible path in the
/// library instead of exceptions.
///
/// The OK state carries no allocation; error states carry a code and a
/// message. Statuses are cheap to copy and move. Typical use:
///
///     Status s = model.Fit(dataset);
///     if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. `code` must not be
  /// `kOk`; use the default constructor for success.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff the status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code (`kOk` for success).
  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Propagates an error status from an expression to the caller.
#define PIPERISK_RETURN_IF_ERROR(expr)                  \
  do {                                                  \
    ::piperisk::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                          \
  } while (0)

}  // namespace piperisk

#endif  // PIPERISK_COMMON_STATUS_H_
