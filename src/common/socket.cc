#include "common/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace piperisk {

namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

Result<sockaddr_in> MakeAddress(const std::string& host, int port) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("port out of range: " +
                                   std::to_string(port));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Status Socket::WriteAll(const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  std::size_t remaining = size;
  while (remaining > 0) {
    ssize_t n = ::send(fd_, p, remaining, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    p += n;
    remaining -= static_cast<std::size_t>(n);
  }
  return Status::OK();
}

Result<bool> Socket::ReadExact(void* data, std::size_t size) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < size) {
    ssize_t n = ::recv(fd_, p + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF between messages
      return Status::IoError("connection closed mid-message (" +
                             std::to_string(got) + " of " +
                             std::to_string(size) + " bytes)");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

Result<Socket> ListenTcp(const std::string& host, int port, int backlog) {
  PIPERISK_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddress(host, port));
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket");
  int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind");
  }
  if (::listen(sock.fd(), backlog) != 0) return Errno("listen");
  return sock;
}

Result<int> BoundPort(const Socket& socket) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Errno("getsockname");
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

Result<Socket> AcceptConn(const Socket& listener) {
  for (;;) {
    int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket conn(fd);
      int one = 1;
      ::setsockopt(conn.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return conn;
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

Result<Socket> ConnectTcp(const std::string& host, int port) {
  PIPERISK_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddress(host, port));
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket");
  if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Errno("connect");
  }
  int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

}  // namespace piperisk
