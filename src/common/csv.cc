#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace piperisk {

namespace {

/// Parses all CSV records in `text` (header included) honouring RFC 4180
/// quoting. Returns rows of raw cells.
Result<std::vector<std::vector<std::string>>> ParseRecords(
    std::string_view text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool row_started = false;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          cell += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        cell += c;
        ++i;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_started = true;
        ++i;
        break;
      case ',':
        row.push_back(std::move(cell));
        cell.clear();
        row_started = true;
        ++i;
        break;
      case '\r':
        // CR is only valid as part of a CRLF line ending (RFC 4180). A bare
        // CR in an unquoted field used to be dropped silently — corrupting
        // "a\rb" into "ab" — so it is rejected instead; CRs inside quoted
        // fields are preserved by the in_quotes branch above.
        if (i + 1 < n && text[i + 1] == '\n') {
          ++i;  // consume the CR; the '\n' case closes the record
          break;
        }
        return Status::ParseError(
            "bare carriage return outside a quoted field (only CRLF line "
            "endings are accepted; quote the field to embed a CR)");
      case '\n':
        if (row_started || !cell.empty() || !row.empty()) {
          row.push_back(std::move(cell));
          cell.clear();
          records.push_back(std::move(row));
          row.clear();
          row_started = false;
        }
        ++i;
        break;
      default:
        cell += c;
        row_started = true;
        ++i;
        break;
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted field in CSV");
  }
  if (row_started || !cell.empty() || !row.empty()) {
    row.push_back(std::move(cell));
    records.push_back(std::move(row));
  }
  return records;
}

}  // namespace

std::string CsvEscape(std::string_view field) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

Result<CsvDocument> CsvDocument::Parse(std::string_view text) {
  auto records = ParseRecords(text);
  if (!records.ok()) return records.status();
  if (records->empty()) {
    return Status::ParseError("CSV has no header row");
  }
  CsvDocument doc;
  doc.header_ = std::move((*records)[0]);
  for (size_t r = 1; r < records->size(); ++r) {
    if ((*records)[r].size() != doc.header_.size()) {
      return Status::ParseError(
          "ragged CSV row " + std::to_string(r) + ": expected " +
          std::to_string(doc.header_.size()) + " cells, got " +
          std::to_string((*records)[r].size()));
    }
    doc.rows_.push_back(std::move((*records)[r]));
  }
  return doc;
}

Result<CsvDocument> CsvDocument::ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open file for reading: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parse(buf.str());
}

Status CsvDocument::AppendRow(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    return Status::InvalidArgument(
        "row width " + std::to_string(row.size()) +
        " does not match header width " + std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

std::string CsvDocument::ToString() const {
  std::string out;
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += CsvEscape(row[i]);
    }
    out += '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
  return out;
}

Status CsvDocument::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open file for writing: " + path);
  }
  out << ToString();
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::OK();
}

Result<size_t> CsvDocument::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  return Status::NotFound("no CSV column named '" + std::string(name) + "'");
}

}  // namespace piperisk
