#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <system_error>

namespace piperisk {

std::vector<std::string> SplitString(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

namespace {

// std::from_chars rejects an explicit leading '+', which strtod/strtoll
// historically accepted (and hand-edited CSVs contain). Strip exactly one,
// keeping "+-1" and a bare "+" invalid.
std::string_view StripLeadingPlus(std::string_view s) {
  if (s.size() >= 2 && s[0] == '+' && s[1] != '+' && s[1] != '-') {
    s.remove_prefix(1);
  }
  return s;
}

}  // namespace

Result<double> ParseDouble(std::string_view input) {
  std::string_view trimmed = StripWhitespace(input);
  if (trimmed.empty()) {
    return Status::ParseError("empty string is not a double");
  }
  trimmed = StripLeadingPlus(trimmed);
  double v = 0.0;
  const auto [end, ec] =
      std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), v);
  if (ec == std::errc::result_out_of_range) {
    return Status::ParseError("double out of range: '" + std::string(trimmed) +
                              "'");
  }
  if (ec != std::errc() || end != trimmed.data() + trimmed.size()) {
    return Status::ParseError("trailing characters in double: '" +
                              std::string(trimmed) + "'");
  }
  return v;
}

Result<long long> ParseInt(std::string_view input) {
  std::string_view trimmed = StripWhitespace(input);
  if (trimmed.empty()) {
    return Status::ParseError("empty string is not an integer");
  }
  trimmed = StripLeadingPlus(trimmed);
  long long v = 0;
  const auto [end, ec] =
      std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), v, 10);
  if (ec == std::errc::result_out_of_range) {
    return Status::ParseError("integer out of range: '" +
                              std::string(trimmed) + "'");
  }
  if (ec != std::errc() || end != trimmed.data() + trimmed.size()) {
    return Status::ParseError("trailing characters in integer: '" +
                              std::string(trimmed) + "'");
  }
  return v;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace piperisk
