#ifndef PIPERISK_COMMON_CSV_H_
#define PIPERISK_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace piperisk {

/// An in-memory CSV document: a header row plus data rows, all cells as
/// strings. Quoting follows RFC 4180 (double-quote delimited fields, embedded
/// quotes doubled, embedded commas/newlines allowed inside quotes).
class CsvDocument {
 public:
  CsvDocument() = default;

  /// Creates a document with the given column names.
  explicit CsvDocument(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Parses CSV text. Fails on ragged rows (row width != header width) and
  /// unterminated quotes.
  static Result<CsvDocument> Parse(std::string_view text);

  /// Reads and parses a CSV file.
  static Result<CsvDocument> ReadFile(const std::string& path);

  /// Appends a row; must match the header width.
  Status AppendRow(std::vector<std::string> row);

  /// Serialises to CSV text (always '\n' line endings, minimal quoting).
  std::string ToString() const;

  /// Writes the document to `path`, overwriting.
  Status WriteFile(const std::string& path) const;

  /// Index of column `name`, or error if absent.
  Result<size_t> ColumnIndex(std::string_view name) const;

  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }
  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return header_.size(); }

  /// Cell accessor with bounds checking left to the caller (asserts in
  /// debug builds via vector::at semantics are avoided for speed).
  const std::string& cell(size_t row, size_t col) const {
    return rows_[row][col];
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escapes a single CSV field (adds quotes only when needed).
std::string CsvEscape(std::string_view field);

}  // namespace piperisk

#endif  // PIPERISK_COMMON_CSV_H_
