#ifndef PIPERISK_COMMON_SOCKET_H_
#define PIPERISK_COMMON_SOCKET_H_

#include <cstddef>
#include <string>

#include "common/result.h"

namespace piperisk {

/// Thin RAII wrapper over a POSIX TCP socket plus the handful of blocking
/// helpers the serving layer needs. Deliberately minimal: no readiness
/// multiplexing, no TLS — the serve subsystem uses one blocking socket per
/// connection and relies on full-frame reads/writes.
///
/// All writes use MSG_NOSIGNAL, so a peer that disappears mid-write surfaces
/// as a Status instead of a process-killing SIGPIPE.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Closes the descriptor (idempotent).
  void Close();

  /// shutdown(SHUT_RDWR): unblocks any thread parked in a read/accept on
  /// this socket without racing the close of the descriptor itself.
  void ShutdownBoth();

  /// Writes exactly `size` bytes (retrying short writes / EINTR).
  Status WriteAll(const void* data, std::size_t size);

  /// Reads exactly `size` bytes. Returns false on a clean EOF before the
  /// first byte (the peer closed between messages); a connection that dies
  /// mid-buffer is an IoError.
  Result<bool> ReadExact(void* data, std::size_t size);

 private:
  int fd_ = -1;
};

/// Binds and listens on host:port. Port 0 picks an ephemeral port; read it
/// back with BoundPort.
Result<Socket> ListenTcp(const std::string& host, int port, int backlog);

/// The locally bound port of a listening (or connected) socket.
Result<int> BoundPort(const Socket& socket);

/// Blocking accept. Fails when the listener is shut down or closed.
Result<Socket> AcceptConn(const Socket& listener);

/// Blocking connect to host:port.
Result<Socket> ConnectTcp(const std::string& host, int port);

}  // namespace piperisk

#endif  // PIPERISK_COMMON_SOCKET_H_
