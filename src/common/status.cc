#include "common/status.h"

namespace piperisk {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNumericalError:
      return "NumericalError";
    case StatusCode::kNotConverged:
      return "NotConverged";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace piperisk
