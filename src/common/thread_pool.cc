#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/telemetry.h"
#include "common/trace.h"

namespace piperisk {

namespace {

int ResolveWorkerCount(int num_workers) {
  if (num_workers > 0) return num_workers;
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  return std::max(1, hw - 1);
}

/// Pool telemetry, registered at static-init time so every metrics export
/// has the keys even for runs that never construct the pool at all.
struct PoolMetrics {
  telemetry::Counter* tasks;
  telemetry::Counter* parallel_for_calls;
  telemetry::Counter* caller_blocks;
  telemetry::Counter* worker_blocks;
  telemetry::Histogram* queue_wait_us;

  static const PoolMetrics& Get() {
    static const PoolMetrics metrics = [] {
      auto& registry = telemetry::Registry::Global();
      PoolMetrics m;
      m.tasks = registry.GetCounter("threadpool.tasks");
      m.parallel_for_calls = registry.GetCounter("threadpool.parallel_for.calls");
      m.caller_blocks = registry.GetCounter("threadpool.blocks.caller");
      m.worker_blocks = registry.GetCounter("threadpool.blocks.worker");
      m.queue_wait_us = registry.GetHistogram(
          "threadpool.queue_wait_us", telemetry::DefaultTimeBucketsUs());
      return m;
    }();
    return metrics;
  }
};

/// Forces registration in any binary that links the pool (fully serial runs
/// included), so snapshot consumers can rely on the keys being present.
[[maybe_unused]] const PoolMetrics& g_eager_pool_metrics = PoolMetrics::Get();

}  // namespace

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::function<void()>> queue;
  bool stopping = false;
  std::vector<std::thread> workers;

  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return stopping || !queue.empty(); });
        if (queue.empty()) return;  // stopping with a drained queue
        task = std::move(queue.front());
        queue.pop_front();
      }
      task();
    }
  }
};

ThreadPool::ThreadPool(int num_workers)
    : impl_(new Impl), num_workers_(ResolveWorkerCount(num_workers)) {
  PoolMetrics::Get();  // ensure the pool metrics exist in every snapshot
  impl_->workers.reserve(static_cast<size_t>(num_workers_));
  for (int i = 0; i < num_workers_; ++i) {
    impl_->workers.emplace_back([this] { impl_->WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

void ThreadPool::Submit(std::function<void()> task) {
  const PoolMetrics& metrics = PoolMetrics::Get();
  // One clock read per task: tasks are block-granular (ms scale), so the
  // queue-wait histogram costs noise, not throughput.
  const std::int64_t enqueued_us = telemetry::internal::TraceNowUs();
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->queue.push_back(
        [task = std::move(task), enqueued_us, &metrics]() mutable {
          metrics.queue_wait_us->Observe(static_cast<double>(
              telemetry::internal::TraceNowUs() - enqueued_us));
          metrics.tasks->Increment();
          task();
        });
  }
  impl_->cv.notify_one();
}

namespace {

/// Shared state of one ParallelFor call. Helpers and the caller claim block
/// indices from `next`; `done` counts completed blocks so the caller can
/// wait for blocks claimed by other threads without spinning.
struct ForState {
  explicit ForState(int blocks, const std::function<void(int)>& f)
      : num_blocks(blocks), fn(f) {}
  const int num_blocks;
  const std::function<void(int)>& fn;
  std::atomic<int> next{0};
  std::atomic<int> done{0};
  std::mutex mu;
  std::condition_variable cv;

  /// Claims and runs blocks until none remain. Returns after this thread's
  /// last claimed block completed (other threads may still be running
  /// theirs). `participation` counts the blocks this thread claimed — the
  /// caller-vs-worker split of the pool telemetry.
  void Drain(telemetry::Counter* participation) {
    int claimed = 0;
    for (;;) {
      int b = next.fetch_add(1, std::memory_order_relaxed);
      if (b >= num_blocks) break;
      fn(b);
      ++claimed;
      int finished = done.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (finished == num_blocks) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
    if (claimed > 0) participation->Add(claimed);
  }
};

}  // namespace

void ThreadPool::ParallelFor(int num_blocks, int max_threads,
                             const std::function<void(int)>& block_fn) {
  if (num_blocks <= 0) return;
  const PoolMetrics& metrics = PoolMetrics::Get();
  metrics.parallel_for_calls->Increment();
  telemetry::ScopedSpan span("threadpool.parallel_for");
  int threads = max_threads <= 0 ? num_workers_ + 1 : max_threads;
  threads = std::clamp(threads, 1, num_blocks);
  if (threads == 1) {
    for (int b = 0; b < num_blocks; ++b) block_fn(b);
    metrics.caller_blocks->Add(num_blocks);
    return;
  }

  // Helpers hold the state via shared_ptr: a helper that only runs after the
  // call already finished (busy pool) must still find valid state to no-op
  // against.
  auto state = std::make_shared<ForState>(num_blocks, block_fn);
  for (int h = 0; h < threads - 1; ++h) {
    Submit([state, &metrics] { state->Drain(metrics.worker_blocks); });
  }
  state->Drain(metrics.caller_blocks);
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == num_blocks;
  });
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(/*num_workers=*/0);
  return *pool;
}

std::pair<std::size_t, std::size_t> BlockRange(std::size_t n, int num_blocks,
                                               int block) {
  const std::size_t blocks = static_cast<std::size_t>(std::max(num_blocks, 1));
  const std::size_t b = static_cast<std::size_t>(block);
  const std::size_t base = n / blocks;
  const std::size_t rem = n % blocks;
  const std::size_t begin = b * base + std::min(b, rem);
  const std::size_t end = begin + base + (b < rem ? 1 : 0);
  return {begin, end};
}

}  // namespace piperisk
