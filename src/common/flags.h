#ifndef PIPERISK_COMMON_FLAGS_H_
#define PIPERISK_COMMON_FLAGS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace piperisk {

/// Minimal command-line parser for the piperisk tool:
///   tool <command> [--key value]... [--switch]... [positional]...
/// Flags may use "--key value" or "--key=value". Unknown flags are kept and
/// can be rejected by the caller via `unknown_ok`.
class CommandLine {
 public:
  /// Parses argv (excluding argv[0]). The first non-flag token becomes the
  /// command; later non-flag tokens are positionals.
  static Result<CommandLine> Parse(int argc, const char* const* argv);

  const std::string& command() const { return command_; }
  const std::vector<std::string>& positionals() const { return positionals_; }

  bool Has(const std::string& key) const { return values_.count(key) != 0; }

  /// String flag with default.
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;

  /// Typed getters; fail on parse errors, return fallback when absent.
  Result<double> GetDouble(const std::string& key, double fallback) const;
  Result<long long> GetInt(const std::string& key, long long fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  /// All flags that were provided but are not in `known` (for strict
  /// commands that reject typos).
  std::vector<std::string> UnknownFlags(
      const std::vector<std::string>& known) const;

 private:
  std::string command_;
  std::vector<std::string> positionals_;
  std::unordered_map<std::string, std::string> values_;
};

}  // namespace piperisk

#endif  // PIPERISK_COMMON_FLAGS_H_
