#ifndef PIPERISK_COMMON_THREAD_POOL_H_
#define PIPERISK_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <utility>

namespace piperisk {

/// Work-sharing thread pool used by every parallel subsystem (multi-chain
/// MCMC, batch scoring, bootstrap significance, rolling evaluation).
///
/// Determinism contract: ParallelFor only distributes *which thread* runs a
/// block, never what a block computes. Callers give each block its own
/// pre-allocated inputs (RNG streams fixed up front, disjoint output slots),
/// so results depend on the block decomposition alone — never on the thread
/// count or OS scheduling. BlockRange provides the canonical deterministic
/// decomposition of a contiguous index range.
class ThreadPool {
 public:
  /// Creates a pool with `num_workers` background threads. Values <= 0
  /// resolve to the hardware concurrency minus one (the caller participates
  /// in ParallelFor), but at least one worker so concurrent paths stay
  /// exercised even on single-core hosts.
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return num_workers_; }

  /// Enqueues one fire-and-forget task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Runs `block_fn(b)` exactly once for every b in [0, num_blocks), using
  /// the calling thread plus at most `max_threads - 1` pool workers
  /// (max_threads <= 0 means "use everything"). Blocks until every block
  /// finished.
  ///
  /// Safe to call from inside a pool task (nested parallel-for): the caller
  /// always claims blocks itself, so progress never depends on idle workers
  /// being available — a fully busy pool degrades to serial execution
  /// instead of deadlocking.
  void ParallelFor(int num_blocks, int max_threads,
                   const std::function<void(int)>& block_fn);

  /// The process-wide shared pool, created on first use and sized for the
  /// hardware. Intentionally leaked so exit-time static destruction never
  /// races in-flight tasks.
  static ThreadPool& Shared();

 private:
  struct Impl;
  Impl* impl_;
  int num_workers_;
};

/// Canonical deterministic partition of [0, n) into `num_blocks` contiguous
/// near-equal blocks: returns the half-open [begin, end) range of `block`.
/// The leading n % num_blocks blocks are one element longer.
std::pair<std::size_t, std::size_t> BlockRange(std::size_t n, int num_blocks,
                                               int block);

}  // namespace piperisk

#endif  // PIPERISK_COMMON_THREAD_POOL_H_
