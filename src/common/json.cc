#include "common/json.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace piperisk {
namespace json {

bool Value::AsBool() const {
  PIPERISK_CHECK(is_bool()) << "json value is not a bool";
  return bool_;
}

double Value::AsNumber() const {
  PIPERISK_CHECK(is_number()) << "json value is not a number";
  return number_;
}

const std::string& Value::AsString() const {
  PIPERISK_CHECK(is_string()) << "json value is not a string";
  return string_;
}

const std::vector<Value>& Value::AsArray() const {
  PIPERISK_CHECK(is_array()) << "json value is not an array";
  return array_;
}

const Value* Value::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, Value>>& Value::Members() const {
  PIPERISK_CHECK(is_object()) << "json value is not an object";
  return object_;
}

double Value::NumberOr(const std::string& key, double fallback) const {
  const Value* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->AsNumber() : fallback;
}

std::string Value::StringOr(const std::string& key,
                            const std::string& fallback) const {
  const Value* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->AsString() : fallback;
}

Value Value::MakeNull() { return Value(); }

Value Value::MakeBool(bool v) {
  Value out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

Value Value::MakeNumber(double v) {
  Value out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

Value Value::MakeString(std::string v) {
  Value out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

Value Value::MakeArray(std::vector<Value> v) {
  Value out;
  out.kind_ = Kind::kArray;
  out.array_ = std::move(v);
  return out;
}

Value Value::MakeObject(std::vector<std::pair<std::string, Value>> v) {
  Value out;
  out.kind_ = Kind::kObject;
  out.object_ = std::move(v);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Value> Run() {
    SkipWhitespace();
    Value root;
    Status s = ParseValue(&root, /*depth=*/0);
    if (!s.ok()) return s;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after document");
    }
    return root;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Fail(const std::string& what) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return Status::ParseError(StrFormat("json: %s at line %zu col %zu",
                                        what.c_str(), line, col));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char ch) {
    if (pos_ < text_.size() && text_[pos_] == ch) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    std::size_t n = 0;
    while (literal[n] != '\0') ++n;
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  Status ParseValue(Value* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char ch = text_[pos_];
    switch (ch) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        Status st = ParseString(&s);
        if (!st.ok()) return st;
        *out = Value::MakeString(std::move(s));
        return Status::OK();
      }
      case 't':
        if (!ConsumeLiteral("true")) return Fail("invalid literal");
        *out = Value::MakeBool(true);
        return Status::OK();
      case 'f':
        if (!ConsumeLiteral("false")) return Fail("invalid literal");
        *out = Value::MakeBool(false);
        return Status::OK();
      case 'n':
        if (!ConsumeLiteral("null")) return Fail("invalid literal");
        *out = Value::MakeNull();
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(Value* out, int depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, Value>> members;
    SkipWhitespace();
    if (Consume('}')) {
      *out = Value::MakeObject(std::move(members));
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      Status s = ParseString(&key);
      if (!s.ok()) return s;
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':'");
      SkipWhitespace();
      Value value;
      s = ParseValue(&value, depth + 1);
      if (!s.ok()) return s;
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Fail("expected ',' or '}'");
    }
    *out = Value::MakeObject(std::move(members));
    return Status::OK();
  }

  Status ParseArray(Value* out, int depth) {
    ++pos_;  // '['
    std::vector<Value> items;
    SkipWhitespace();
    if (Consume(']')) {
      *out = Value::MakeArray(std::move(items));
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      Value value;
      Status s = ParseValue(&value, depth + 1);
      if (!s.ok()) return s;
      items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Fail("expected ',' or ']'");
    }
    *out = Value::MakeArray(std::move(items));
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char ch = text_[pos_++];
      if (ch == '"') return Status::OK();
      if (static_cast<unsigned char>(ch) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (ch != '\\') {
        out->push_back(ch);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("invalid \\u escape");
            }
          }
          // UTF-8 encode the BMP code point; surrogate pairs are passed
          // through as two 3-byte sequences (the repo's writers only escape
          // control characters, so this path is cold).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseNumber(Value* out) {
    const std::size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return Fail("invalid number");
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("invalid number");
    *out = Value::MakeNumber(v);
    return Status::OK();
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(const std::string& text) { return Parser(text).Run(); }

Result<Value> ParseFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("cannot read " + path);
  return Parse(buffer.str());
}

}  // namespace json
}  // namespace piperisk
