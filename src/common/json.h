#ifndef PIPERISK_COMMON_JSON_H_
#define PIPERISK_COMMON_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace piperisk {
namespace json {

/// Minimal recursive-descent JSON reader for the repo's own artefacts
/// (heartbeat files, metrics exports, BENCH_*.json) — strict RFC 8259 subset:
/// no comments, no trailing commas, no NaN/Infinity literals. Numbers are
/// held as double (the repo's JSON writers never emit integers that lose
/// precision at 2^53). Not a streaming parser; documents here are small.
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; aborting on a kind mismatch (callers gate on is_*()).
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;
  const std::vector<Value>& AsArray() const;

  /// Object lookup: null pointer when absent (or when this is not an object).
  const Value* Find(const std::string& key) const;
  /// Object member names in document order.
  const std::vector<std::pair<std::string, Value>>& Members() const;

  /// Convenience: Find(key) when it is a number/string, else the fallback.
  double NumberOr(const std::string& key, double fallback) const;
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const;

  static Value MakeNull();
  static Value MakeBool(bool v);
  static Value MakeNumber(double v);
  static Value MakeString(std::string v);
  static Value MakeArray(std::vector<Value> v);
  static Value MakeObject(std::vector<std::pair<std::string, Value>> v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// Parses one JSON document (surrounding whitespace allowed; trailing
/// non-whitespace is a parse error).
Result<Value> Parse(const std::string& text);

/// Reads and parses a JSON file.
Result<Value> ParseFile(const std::string& path);

}  // namespace json
}  // namespace piperisk

#endif  // PIPERISK_COMMON_JSON_H_
