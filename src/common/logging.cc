#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/strings.h"

namespace piperisk {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

/// Serialises line emission so messages from concurrent chains never
/// interleave mid-line. Never destructed: logging must stay safe during
/// exit-time teardown of other statics.
std::mutex& EmitMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

bool ParseLogLevel(const std::string& name, LogLevel* out) {
  const std::string v = ToLowerAscii(name);
  if (v == "debug") {
    *out = LogLevel::kDebug;
  } else if (v == "info") {
    *out = LogLevel::kInfo;
  } else if (v == "warning" || v == "warn") {
    *out = LogLevel::kWarning;
  } else if (v == "error") {
    *out = LogLevel::kError;
  } else if (v == "fatal") {
    *out = LogLevel::kFatal;
  } else {
    return false;
  }
  return true;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel() || level_ == LogLevel::kFatal) {
    const std::string line = stream_.str();
    std::lock_guard<std::mutex> lock(EmitMutex());
    std::fprintf(stderr, "%s\n", line.c_str());
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace piperisk
