#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace piperisk {

namespace {
LogLevel g_level = LogLevel::kInfo;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_level || level_ == LogLevel::kFatal) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace piperisk
