#ifndef PIPERISK_COMMON_TRACE_H_
#define PIPERISK_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "common/telemetry.h"

namespace piperisk {
namespace telemetry {

/// Span tracing: RAII scopes that record chrome://tracing-compatible
/// complete events ("ph":"X") with real thread ids.
///
/// Tracing is off by default and every ScopedSpan then costs a single
/// relaxed atomic load — no clock reads, no allocation — so instrumented
/// hot paths are free until an exporter is attached with StartTracing().
/// Span names must be string literals (or otherwise outlive the recorder):
/// the recorder stores the pointer, never a copy.

/// True while spans are being collected.
bool TracingEnabled();

/// Clears any previously collected spans and starts collecting.
void StartTracing();

/// Stops collecting. Collected spans stay available for WriteTraceJson.
void StopTracing();

/// Serialises the collected spans as a chrome://tracing "traceEvents"
/// document. Safe to call with tracing stopped or never started (emits an
/// empty event list).
void WriteTraceJson(std::ostream& out);

/// Number of spans collected so far (tests / sanity checks).
std::size_t CollectedSpanCount();

namespace internal {
extern std::atomic<bool> g_tracing_enabled;
std::int64_t TraceNowUs();
void RecordSpan(const char* name, std::int64_t start_us, std::int64_t end_us);
}  // namespace internal

/// Records one complete trace event covering the scope's lifetime (only
/// while tracing is enabled at both entry and exit).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : name_(name) {
    if (internal::g_tracing_enabled.load(std::memory_order_relaxed)) {
      start_us_ = internal::TraceNowUs();
    }
  }
  ~ScopedSpan() {
    if (start_us_ >= 0 &&
        internal::g_tracing_enabled.load(std::memory_order_relaxed)) {
      internal::RecordSpan(name_, start_us_, internal::TraceNowUs());
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  std::int64_t start_us_ = -1;
};

/// Times the scope and feeds the elapsed microseconds into `hist` (when
/// non-null) and, when tracing is enabled, records a span named `span_name`
/// (when non-null). The single clock-read pair serves both sinks.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist, const char* span_name = nullptr)
      : hist_(hist), span_name_(span_name) {
    const bool tracing =
        span_name_ != nullptr &&
        internal::g_tracing_enabled.load(std::memory_order_relaxed);
    if (hist_ != nullptr || tracing) start_us_ = internal::TraceNowUs();
  }
  ~ScopedTimer() {
    if (start_us_ < 0) return;
    const std::int64_t end_us = internal::TraceNowUs();
    if (hist_ != nullptr) {
      hist_->Observe(static_cast<double>(end_us - start_us_));
    }
    if (span_name_ != nullptr &&
        internal::g_tracing_enabled.load(std::memory_order_relaxed)) {
      internal::RecordSpan(span_name_, start_us_, end_us);
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  const char* span_name_;
  std::int64_t start_us_ = -1;
};

}  // namespace telemetry
}  // namespace piperisk

#endif  // PIPERISK_COMMON_TRACE_H_
