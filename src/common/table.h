#ifndef PIPERISK_COMMON_TABLE_H_
#define PIPERISK_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace piperisk {

/// Column alignment for TextTable rendering.
enum class Align { kLeft, kRight };

/// A fixed-schema text table used by the experiment binaries to print
/// paper-style tables (Table 18.1, 18.3, 18.4, ...). Cells are strings;
/// numeric formatting is the caller's job so the bench output matches the
/// paper's formatting (e.g. "82.67%", "8.09e-4").
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> header);

  /// Sets per-column alignment; default is left for the first column and
  /// right for the rest, which suits label+numbers tables.
  void SetAlignment(std::vector<Align> alignment);

  /// Appends a row; width must match the header. Extra cells are a
  /// programming error and are truncated with a warning.
  void AddRow(std::vector<std::string> row);

  /// Adds a horizontal separator row after the most recent row.
  void AddSeparator();

  /// Renders with box-drawing ASCII (+-|) and padded columns.
  std::string ToString() const;

  /// Renders as a GitHub-flavoured markdown table (no separators besides the
  /// header rule).
  std::string ToMarkdown() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<Align> alignment_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace piperisk

#endif  // PIPERISK_COMMON_TABLE_H_
