#ifndef PIPERISK_COMMON_RESULT_H_
#define PIPERISK_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace piperisk {

/// A value-or-Status holder, analogous to `arrow::Result<T>`.
///
/// Exactly one of {value, error status} is present. Accessing the value of an
/// errored result is a programming error and asserts in debug builds.
///
///     Result<Network> net = LoadNetworkCsv(path);
///     if (!net.ok()) return net.status();
///     Use(net.value());
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result from a non-OK status.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present, the error otherwise.
  const Status& status() const { return status_; }

  /// The held value. Precondition: `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present.
};

/// Unwraps a Result expression into `lhs`, returning the error to the caller
/// on failure.
#define PIPERISK_ASSIGN_OR_RETURN(lhs, expr)            \
  auto PIPERISK_CONCAT_(_res_, __LINE__) = (expr);      \
  if (!PIPERISK_CONCAT_(_res_, __LINE__).ok())          \
    return PIPERISK_CONCAT_(_res_, __LINE__).status();  \
  lhs = std::move(PIPERISK_CONCAT_(_res_, __LINE__)).value()

#define PIPERISK_CONCAT_(a, b) PIPERISK_CONCAT_IMPL_(a, b)
#define PIPERISK_CONCAT_IMPL_(a, b) a##b

}  // namespace piperisk

#endif  // PIPERISK_COMMON_RESULT_H_
