#ifndef PIPERISK_DATA_NETWORK_GENERATOR_H_
#define PIPERISK_DATA_NETWORK_GENERATOR_H_

#include "common/result.h"
#include "data/dataset.h"
#include "data/generator_config.h"

namespace piperisk {
namespace data {

/// Deterministic synthetic network builder (the data substitution for the
/// proprietary utility GIS described in DESIGN.md).
///
/// Given a RegionConfig, produces a drinking-water network whose marginals
/// match the published Table 18.1 row: exact pipe count and CWM share,
/// laid-year range, realistic material/coating/diameter mixes conditioned on
/// era, lognormal pipe lengths digitised into segments, a Voronoi soil
/// partition, and a street-intersection layer scaled by population density.
///
/// The same (config, seed) always produces the identical network.
class NetworkGenerator {
 public:
  explicit NetworkGenerator(RegionConfig config) : config_(std::move(config)) {}

  /// Builds the network (no failures; see FailureSimulator).
  Result<net::Network> Generate() const;

  const RegionConfig& config() const { return config_; }

 private:
  RegionConfig config_;
};

}  // namespace data
}  // namespace piperisk

#endif  // PIPERISK_DATA_NETWORK_GENERATOR_H_
