#include "data/split.h"

#include <optional>

namespace piperisk {
namespace data {

namespace {

std::vector<SegmentCounts> BuildSegmentCountsImpl(
    const RegionDataset& dataset, const TemporalSplit& split,
    std::optional<net::PipeCategory> category) {
  std::vector<SegmentCounts> out;
  for (const net::PipeSegment& s : dataset.network.segments()) {
    auto pipe = dataset.network.FindPipe(s.pipe_id);
    if (!pipe.ok()) continue;
    if (category.has_value() && (*pipe)->category != *category) continue;
    SegmentCounts c;
    c.segment_id = s.id;
    c.pipe_id = s.pipe_id;
    // Observed years: training years in which the pipe already existed.
    for (net::Year y = split.train_first; y <= split.train_last; ++y) {
      if ((*pipe)->laid_year > y) continue;
      ++c.n;
      c.k += dataset.failures.BinaryForSegmentYear(s.id, y);
    }
    out.push_back(c);
  }
  return out;
}

std::vector<PipeOutcome> BuildPipeOutcomesImpl(
    const RegionDataset& dataset, const TemporalSplit& split,
    std::optional<net::PipeCategory> category) {
  std::vector<PipeOutcome> out;
  for (const net::Pipe& p : dataset.network.pipes()) {
    if (category.has_value() && p.category != *category) continue;
    PipeOutcome o;
    o.pipe_id = p.id;
    o.test_failures =
        dataset.failures.CountForPipe(p.id, split.test_year, split.test_year);
    o.train_failures =
        dataset.failures.CountForPipe(p.id, split.train_first,
                                      split.train_last);
    auto len = dataset.network.PipeLengthM(p.id);
    o.length_m = len.ok() ? *len : 0.0;
    out.push_back(o);
  }
  return out;
}

}  // namespace

std::vector<SegmentCounts> BuildSegmentCounts(const RegionDataset& dataset,
                                              const TemporalSplit& split,
                                              net::PipeCategory category) {
  return BuildSegmentCountsImpl(dataset, split, category);
}

std::vector<SegmentCounts> BuildSegmentCounts(const RegionDataset& dataset,
                                              const TemporalSplit& split) {
  return BuildSegmentCountsImpl(dataset, split, std::nullopt);
}

std::vector<PipeOutcome> BuildPipeOutcomes(const RegionDataset& dataset,
                                           const TemporalSplit& split,
                                           net::PipeCategory category) {
  return BuildPipeOutcomesImpl(dataset, split, category);
}

std::vector<PipeOutcome> BuildPipeOutcomes(const RegionDataset& dataset,
                                           const TemporalSplit& split) {
  return BuildPipeOutcomesImpl(dataset, split, std::nullopt);
}

}  // namespace data
}  // namespace piperisk
