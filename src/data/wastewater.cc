#include "data/wastewater.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/distributions.h"
#include "stats/rng.h"

namespace piperisk {
namespace data {

namespace {

using net::Point;

struct Bump {
  Point centre;
  double amplitude;
  double radius_m;
};

/// Deterministic bump set for a (seed, stream, count, side) tuple.
std::vector<Bump> MakeBumps(std::uint64_t seed, std::uint64_t stream, int count,
                            double side, double amp_lo, double amp_hi,
                            double radius_lo, double radius_hi) {
  stats::Rng rng(seed, stream);
  std::vector<Bump> bumps;
  bumps.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    Bump b;
    b.centre = Point{rng.NextUniform(0.0, side), rng.NextUniform(0.0, side)};
    b.amplitude = rng.NextUniform(amp_lo, amp_hi);
    b.radius_m = rng.NextUniform(radius_lo, radius_hi);
    bumps.push_back(b);
  }
  return bumps;
}

double FieldAt(const std::vector<Bump>& bumps, const Point& p, double floor) {
  double v = floor;
  for (const Bump& b : bumps) {
    double d = net::Distance(b.centre, p);
    v += b.amplitude * std::exp(-0.5 * (d / b.radius_m) * (d / b.radius_m));
  }
  return std::clamp(v, 0.0, 1.0);
}

double SideM(const WastewaterConfig& c) { return std::sqrt(c.area_km2) * 1000.0; }

std::vector<Bump> CanopyBumps(const WastewaterConfig& c) {
  return MakeBumps(c.seed, 0xABCD0001, c.canopy_clumps, SideM(c), 0.25, 0.85,
                   150.0, 900.0);
}

std::vector<Bump> MoistureBumps(const WastewaterConfig& c) {
  return MakeBumps(c.seed, 0xABCD0002, c.moisture_bumps, SideM(c), 0.20, 0.65,
                   300.0, 1500.0);
}

}  // namespace

double CanopyFieldAt(const WastewaterConfig& config, const net::Point& p) {
  return FieldAt(CanopyBumps(config), p, 0.03);
}

double MoistureFieldAt(const WastewaterConfig& config, const net::Point& p) {
  return FieldAt(MoistureBumps(config), p, 0.12);
}

Result<RegionDataset> GenerateWastewaterRegion(const WastewaterConfig& config) {
  if (config.num_pipes <= 0) {
    return Status::InvalidArgument("num_pipes must be positive");
  }
  const double side = SideM(config);
  stats::Rng rng(config.seed, 0xAA00BB11CC22DD33ULL);

  net::RegionInfo info;
  info.name = "WW";
  info.population = 0.0;
  info.area_km2 = config.area_km2;
  net::Network network(info);

  // Soil zones (chokes also react to expansive soils cracking pipe joints).
  {
    std::vector<net::SoilZoneIndex::Zone> zones;
    for (int z = 0; z < config.num_soil_zones; ++z) {
      net::SoilZoneIndex::Zone zone;
      zone.id = z;
      zone.site = Point{rng.NextUniform(0.0, side), rng.NextUniform(0.0, side)};
      double u = rng.NextDouble();
      zone.profile.expansiveness = u < 0.4 ? net::SoilExpansiveness::kStable
                                   : u < 0.7
                                       ? net::SoilExpansiveness::kSlightly
                                   : u < 0.9
                                       ? net::SoilExpansiveness::kModerately
                                       : net::SoilExpansiveness::kHighly;
      zones.push_back(zone);
    }
    network.SetSoilIndex(net::SoilZoneIndex(std::move(zones)));
  }

  const auto canopy = CanopyBumps(config);
  const auto moisture = MoistureBumps(config);

  net::SegmentId next_segment_id = 0;
  for (int i = 0; i < config.num_pipes; ++i) {
    net::Pipe pipe;
    pipe.id = i;
    pipe.category = net::PipeCategory::kWasteWater;
    double span = static_cast<double>(config.laid_last - config.laid_first);
    pipe.laid_year =
        config.laid_first + static_cast<net::Year>(rng.NextDouble() * span);
    double um = rng.NextDouble();
    pipe.material = um < 0.62   ? net::Material::kVc
                    : um < 0.85 ? net::Material::kConcrete
                                : net::Material::kPvc;
    pipe.coating = net::Coating::kNone;
    pipe.diameter_mm = um < 0.85 ? 150.0 + 75.0 * rng.NextDouble() : 300.0;
    PIPERISK_RETURN_IF_ERROR(network.AddPipe(pipe));

    double length =
        std::clamp(std::exp(stats::SampleNormal(&rng, 4.5, 0.6)), 20.0, 1500.0);
    int num_segments = std::max(
        1,
        static_cast<int>(std::lround(length / config.mean_segment_length_m)));
    double seg_len = length / num_segments;
    Point cursor{rng.NextUniform(0.0, side), rng.NextUniform(0.0, side)};
    double heading = rng.NextUniform(0.0, 2.0 * M_PI);
    for (int s = 0; s < num_segments; ++s) {
      net::PipeSegment seg;
      seg.id = next_segment_id++;
      seg.pipe_id = pipe.id;
      seg.index_in_pipe = s;
      seg.start = cursor;
      heading += rng.NextUniform(-0.2, 0.2);
      Point next{cursor.x + seg_len * std::cos(heading),
                 cursor.y + seg_len * std::sin(heading)};
      if (next.x < 0.0 || next.x > side) {
        heading = M_PI - heading;
        next.x = std::clamp(next.x, 0.0, side);
      }
      if (next.y < 0.0 || next.y > side) {
        heading = -heading;
        next.y = std::clamp(next.y, 0.0, side);
      }
      seg.end = next;
      cursor = next;
      Point mid = seg.Midpoint();
      seg.tree_canopy_fraction = FieldAt(canopy, mid, 0.03);
      seg.soil_moisture = FieldAt(moisture, mid, 0.12);
      PIPERISK_RETURN_IF_ERROR(network.AddSegment(seg));
    }
  }
  network.RefreshEnvironmentalFeatures();
  PIPERISK_RETURN_IF_ERROR(network.Validate());

  // Choke intensity: root intrusion needs both canopy (root source) and
  // moisture (root growth), so the driver is their product; VC joints are
  // the classic entry point; a mild age effect adds displacement cracking.
  auto raw_intensity = [&](const net::PipeSegment& s,
                           const net::Pipe& p, net::Year y) {
    int age = y - p.laid_year;
    if (age < 0) return 0.0;
    double len_km = s.LengthM() / 1000.0;
    double root = 0.15 + 4.0 * s.tree_canopy_fraction * s.soil_moisture +
                  0.8 * s.tree_canopy_fraction;
    double joints = p.material == net::Material::kVc     ? 1.6
                    : p.material == net::Material::kConcrete ? 1.0
                                                             : 0.35;
    static const double kClay[] = {1.0, 1.15, 1.45, 1.9};
    double clay = kClay[static_cast<int>(s.soil.expansiveness)];
    double age_mult = 0.5 + 0.5 * std::min(age / 60.0, 1.5);
    return 0.9 * len_km * root * joints * clay * age_mult;
  };

  // Calibrate the global scale to the target choke count.
  double scale = 1.0;
  for (int iter = 0; iter < 8; ++iter) {
    double expected = 0.0;
    for (const net::PipeSegment& s : network.segments()) {
      auto p = network.FindPipe(s.pipe_id);
      if (!p.ok()) continue;
      for (net::Year y = config.observe_first; y <= config.observe_last; ++y) {
        expected += -std::expm1(-scale * raw_intensity(s, **p, y));
      }
    }
    if (expected <= 0.0) break;
    scale *= config.target_chokes / expected;
  }

  stats::Rng draw_rng(config.seed ^ 0x0F0F0F0F12345678ULL, 0x777);
  net::FailureHistory history;
  for (const net::PipeSegment& s : network.segments()) {
    auto p = network.FindPipe(s.pipe_id);
    if (!p.ok()) continue;
    for (net::Year y = config.observe_first; y <= config.observe_last; ++y) {
      double prob = -std::expm1(-scale * raw_intensity(s, **p, y));
      if (stats::SampleBernoulli(&draw_rng, prob)) {
        net::FailureRecord r;
        r.pipe_id = s.pipe_id;
        r.segment_id = s.id;
        r.year = y;
        double t = draw_rng.NextDouble();
        r.location = Point{s.start.x + t * (s.end.x - s.start.x),
                           s.start.y + t * (s.end.y - s.start.y)};
        r.mode = net::FailureMode::kChoke;
        history.Add(r);
      }
    }
  }

  RegionDataset dataset;
  dataset.config = RegionConfig();
  dataset.config.name = "WW";
  dataset.config.seed = config.seed;
  dataset.config.observe_first = config.observe_first;
  dataset.config.observe_last = config.observe_last;
  dataset.config.num_pipes = config.num_pipes;
  dataset.network = std::move(network);
  dataset.failures = std::move(history);
  return dataset;
}

}  // namespace data
}  // namespace piperisk
