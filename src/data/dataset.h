#ifndef PIPERISK_DATA_DATASET_H_
#define PIPERISK_DATA_DATASET_H_

#include "data/generator_config.h"
#include "net/failure.h"
#include "net/network.h"

namespace piperisk {
namespace data {

/// A region's complete study data: the asset network, its failure log, and
/// the generating configuration (which records the observation window the
/// experiments split on).
struct RegionDataset {
  RegionConfig config;
  net::Network network;
  net::FailureHistory failures;
};

}  // namespace data
}  // namespace piperisk

#endif  // PIPERISK_DATA_DATASET_H_
