#ifndef PIPERISK_DATA_GENERATOR_CONFIG_H_
#define PIPERISK_DATA_GENERATOR_CONFIG_H_

#include <cstdint>
#include <string>

#include "net/units.h"

namespace piperisk {
namespace data {

/// Calibration targets and knobs for one synthetic region.
///
/// The defaults for Regions A/B/C are calibrated to the published marginals
/// of Table 18.1 / Sect. 18.4.1 (pipe counts, CWM share, laid-year range,
/// failure totals over the 1998–2009 observation window, population and
/// density). The generator hits pipe counts exactly and failure totals in
/// expectation (the simulator rescales its global hazard so the expected
/// total matches `target_failures_all`).
struct RegionConfig {
  std::string name = "A";
  std::uint64_t seed = 1;

  // Demographics (Sect. 18.4.1).
  double population = 210000.0;
  double density_per_km2 = 629.0;

  // Network composition (Table 18.1).
  int num_pipes = 15189;
  double cwm_fraction = 0.2497;  ///< share of pipes that are critical mains
  net::Year laid_first = 1930;
  net::Year laid_last = 1997;

  // Observation window and failure calibration (Table 18.1).
  net::Year observe_first = 1998;
  net::Year observe_last = 2009;
  double target_failures_all = 4093.0;
  double target_failures_cwm = 520.0;

  // Environmental layer sizing.
  int num_soil_zones = 160;
  double intersections_per_km2 = 12.0;

  // Id namespacing for sharded multi-region datasets: the generator assigns
  // pipe ids from pipe_id_base and segment ids from segment_id_base, so
  // regions generated independently (one shard each) never collide when
  // their scores or rankings are merged. 0 for single-region datasets.
  net::PipeId pipe_id_base = 0;
  net::SegmentId segment_id_base = 0;

  // Pipe geometry.
  double mean_segment_length_m = 55.0;
  /// Probability that a new pipe starts at an existing pipe's endpoint
  /// (junction), producing a connected, tree-and-loop network for topology
  /// analyses. 0 scatters pipes independently (the default used by the
  /// calibrated paper experiments, where topology is irrelevant).
  double connect_fraction = 0.0;
  double cwm_log_length_mu = 5.6;   ///< lognormal(mu, sigma) of pipe length, m
  double cwm_log_length_sigma = 0.7;
  double rwm_log_length_mu = 4.4;
  double rwm_log_length_sigma = 0.6;

  double AreaKm2() const {
    return density_per_km2 > 0.0 ? population / density_per_km2 : 0.0;
  }
  /// Side of the square region footprint, metres.
  double SideM() const;

  /// Published configurations for the three study regions.
  static RegionConfig RegionA();
  static RegionConfig RegionB();
  static RegionConfig RegionC();

  /// A miniature region for unit tests (hundreds of pipes, same structure).
  static RegionConfig Tiny(std::uint64_t seed);
};

}  // namespace data
}  // namespace piperisk

#endif  // PIPERISK_DATA_GENERATOR_CONFIG_H_
