#include "data/generator_config.h"

#include <cmath>

namespace piperisk {
namespace data {

double RegionConfig::SideM() const { return std::sqrt(AreaKm2()) * 1000.0; }

RegionConfig RegionConfig::RegionA() {
  RegionConfig c;
  c.name = "A";
  c.seed = 1;
  c.population = 210000.0;
  c.density_per_km2 = 629.0;
  c.num_pipes = 15189;
  c.cwm_fraction = 3793.0 / 15189.0;
  c.laid_first = 1930;
  c.laid_last = 1997;
  c.target_failures_all = 4093.0;
  c.target_failures_cwm = 520.0;
  c.intersections_per_km2 = 10.0;
  return c;
}

RegionConfig RegionConfig::RegionB() {
  RegionConfig c;
  c.name = "B";
  c.seed = 99;
  c.population = 182000.0;
  c.density_per_km2 = 2374.0;
  c.num_pipes = 11836;
  c.cwm_fraction = 2457.0 / 11836.0;
  c.laid_first = 1888;
  c.laid_last = 1997;
  c.target_failures_all = 3694.0;
  c.target_failures_cwm = 432.0;
  // Dense inner-city area: many more intersections per km^2.
  c.intersections_per_km2 = 40.0;
  c.num_soil_zones = 90;
  return c;
}

RegionConfig RegionConfig::RegionC() {
  RegionConfig c;
  c.name = "C";
  c.seed = 7;
  c.population = 205000.0;
  c.density_per_km2 = 300.0;
  c.num_pipes = 18001;
  c.cwm_fraction = 5041.0 / 18001.0;
  c.laid_first = 1913;
  c.laid_last = 1997;
  c.target_failures_all = 4421.0;
  c.target_failures_cwm = 563.0;
  // Sprawling suburbia: sparse road grid, large soil diversity.
  c.intersections_per_km2 = 6.0;
  c.num_soil_zones = 220;
  return c;
}

RegionConfig RegionConfig::Tiny(std::uint64_t seed) {
  RegionConfig c;
  c.name = "tiny";
  c.seed = seed;
  c.population = 5000.0;
  c.density_per_km2 = 500.0;
  c.num_pipes = 400;
  c.cwm_fraction = 0.25;
  c.laid_first = 1940;
  c.laid_last = 1997;
  c.target_failures_all = 260.0;
  c.target_failures_cwm = 40.0;
  c.num_soil_zones = 12;
  c.intersections_per_km2 = 15.0;
  return c;
}

}  // namespace data
}  // namespace piperisk
