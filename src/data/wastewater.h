#ifndef PIPERISK_DATA_WASTEWATER_H_
#define PIPERISK_DATA_WASTEWATER_H_

#include <cstdint>

#include "common/result.h"
#include "data/dataset.h"

namespace piperisk {
namespace data {

/// Configuration for the waste-water (sewer) substrate used by the
/// Figs. 18.5/18.6 experiments: pipe blockages ("chokes") driven by tree
/// root intrusion, which the chapter models through tree-canopy coverage
/// (satellite proxy for root extent) and soil moisture.
struct WastewaterConfig {
  std::uint64_t seed = 7;
  int num_pipes = 6000;
  double area_km2 = 120.0;
  net::Year laid_first = 1920;
  net::Year laid_last = 1995;
  net::Year observe_first = 1998;
  net::Year observe_last = 2009;
  /// Calibration target for total chokes over the window.
  double target_chokes = 5200.0;
  /// Number of Gaussian canopy clumps (parks, tree-lined streets).
  int canopy_clumps = 60;
  /// Number of moisture field bumps (drainage lines, low ground).
  int moisture_bumps = 40;
  int num_soil_zones = 80;
  double mean_segment_length_m = 45.0;
};

/// Generates a waste-water network where each segment carries a tree-canopy
/// fraction and soil-moisture index sampled from smooth synthetic fields
/// (sums of Gaussian bumps), then simulates chokes whose intensity rises
/// with canopy x moisture (root growth needs both a root source and moist
/// soil, per the chapter's domain-knowledge discussion), plus a mild age
/// effect. Deterministic in the seed.
Result<RegionDataset> GenerateWastewaterRegion(const WastewaterConfig& config);

/// Field helpers exposed for tests: evaluates the synthetic canopy/moisture
/// fields at a point for a given config.
double CanopyFieldAt(const WastewaterConfig& config, const net::Point& p);
double MoistureFieldAt(const WastewaterConfig& config, const net::Point& p);

}  // namespace data
}  // namespace piperisk

#endif  // PIPERISK_DATA_WASTEWATER_H_
