#include "data/network_generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/distributions.h"
#include "stats/rng.h"

namespace piperisk {
namespace data {

namespace {

using net::Coating;
using net::Material;
using net::PipeCategory;
using net::Point;
using net::SoilProfile;

/// Era-conditioned material mix. Pre-war networks are cast iron; mid-century
/// brings asbestos cement; the modern stock is PVC/DICL. This mirrors the
/// real cohort structure the models exploit.
Material SampleMaterial(stats::Rng* rng, net::Year laid, bool critical) {
  double u = rng->NextDouble();
  if (laid < 1950) {
    if (critical) return u < 0.85 ? Material::kCicl : Material::kSteel;
    return u < 0.92 ? Material::kCicl : Material::kSteel;
  }
  if (laid < 1970) {
    if (u < 0.55) return Material::kCicl;
    if (u < 0.85) return Material::kAc;
    return critical ? Material::kSteel : Material::kPvc;
  }
  if (laid < 1985) {
    if (u < 0.30) return Material::kAc;
    if (u < 0.55) return Material::kDicl;
    if (u < 0.90) return Material::kPvc;
    return Material::kCicl;
  }
  if (u < 0.55) return Material::kPvc;
  if (u < 0.90) return Material::kDicl;
  return Material::kSteel;
}

Coating SampleCoating(stats::Rng* rng, Material material, net::Year laid) {
  double u = rng->NextDouble();
  switch (material) {
    case Material::kCicl:
    case Material::kSteel:
      if (laid < 1955) return u < 0.6 ? Coating::kTar : Coating::kNone;
      return u < 0.35 ? Coating::kBitumen : Coating::kNone;
    case Material::kDicl:
      return u < 0.7 ? Coating::kPolyethyleneSleeve : Coating::kNone;
    default:
      return Coating::kNone;
  }
}

double SampleDiameter(stats::Rng* rng, bool critical) {
  if (critical) {
    // CWM: 300 mm and above; discrete nominal sizes.
    static const double kSizes[] = {300, 375, 450, 500, 600, 750, 900};
    static const double kWeights[] = {0.34, 0.22, 0.16, 0.12, 0.09, 0.05,
                                      0.02};
    double u = rng->NextDouble();
    double acc = 0.0;
    for (size_t i = 0; i < 7; ++i) {
      acc += kWeights[i];
      if (u < acc) return kSizes[i];
    }
    return 900;
  }
  static const double kSizes[] = {100, 150, 200, 250};
  static const double kWeights[] = {0.45, 0.35, 0.14, 0.06};
  double u = rng->NextDouble();
  double acc = 0.0;
  for (size_t i = 0; i < 4; ++i) {
    acc += kWeights[i];
    if (u < acc) return kSizes[i];
  }
  return 250;
}

/// Laid-year sampler: a mixture of post-war construction booms inside the
/// configured range, so age cohorts are lumpy as in real networks.
net::Year SampleLaidYear(stats::Rng* rng, const RegionConfig& cfg) {
  double span = static_cast<double>(cfg.laid_last - cfg.laid_first);
  double u = rng->NextDouble();
  double frac;
  if (u < 0.25) {
    // Early stock, thinning toward the start of the range.
    frac = 0.30 * std::pow(rng->NextDouble(), 0.7);
  } else if (u < 0.70) {
    // Post-war boom: bulk of the network in the middle of the range.
    frac = 0.30 + 0.40 * rng->NextDouble();
  } else {
    // Modern growth.
    frac = 0.70 + 0.30 * std::pow(rng->NextDouble(), 1.3);
  }
  return cfg.laid_first + static_cast<net::Year>(std::lround(frac * span));
}

SoilProfile SampleSoilProfile(stats::Rng* rng) {
  SoilProfile p;
  // Marginals roughly matching published Sydney-basin soil statistics:
  // corrosive and reactive zones are a strong minority.
  double u = rng->NextDouble();
  p.corrosiveness = u < 0.40   ? net::SoilCorrosiveness::kLow
                    : u < 0.72 ? net::SoilCorrosiveness::kModerate
                    : u < 0.92 ? net::SoilCorrosiveness::kHigh
                               : net::SoilCorrosiveness::kSevere;
  u = rng->NextDouble();
  p.expansiveness = u < 0.45   ? net::SoilExpansiveness::kStable
                    : u < 0.75 ? net::SoilExpansiveness::kSlightly
                    : u < 0.93 ? net::SoilExpansiveness::kModerately
                               : net::SoilExpansiveness::kHighly;
  u = rng->NextDouble();
  p.geology = u < 0.42   ? net::SoilGeology::kSandstone
              : u < 0.72 ? net::SoilGeology::kShale
              : u < 0.88 ? net::SoilGeology::kAlluvium
              : u < 0.96 ? net::SoilGeology::kGranite
                         : net::SoilGeology::kBasalt;
  u = rng->NextDouble();
  p.landscape = u < 0.28   ? net::SoilLandscape::kFluvial
                : u < 0.52 ? net::SoilLandscape::kColluvial
                : u < 0.80 ? net::SoilLandscape::kErosional
                : u < 0.95 ? net::SoilLandscape::kResidual
                           : net::SoilLandscape::kAeolian;
  return p;
}

}  // namespace

Result<net::Network> NetworkGenerator::Generate() const {
  if (config_.num_pipes <= 0) {
    return Status::InvalidArgument("num_pipes must be positive");
  }
  if (config_.laid_last < config_.laid_first) {
    return Status::InvalidArgument("laid-year range is inverted");
  }
  stats::Rng rng(config_.seed, 0x9e3779b97f4a7c15ULL);
  const double side = config_.SideM();

  net::RegionInfo info;
  info.name = config_.name;
  info.population = config_.population;
  info.area_km2 = config_.AreaKm2();
  net::Network network(info);

  // Soil zones: Voronoi sites with independent profiles.
  {
    std::vector<net::SoilZoneIndex::Zone> zones;
    zones.reserve(static_cast<size_t>(config_.num_soil_zones));
    for (int z = 0; z < config_.num_soil_zones; ++z) {
      net::SoilZoneIndex::Zone zone;
      zone.id = z;
      zone.site = Point{rng.NextUniform(0.0, side), rng.NextUniform(0.0, side)};
      zone.profile = SampleSoilProfile(&rng);
      zones.push_back(zone);
    }
    network.SetSoilIndex(net::SoilZoneIndex(std::move(zones)));
  }

  // Traffic intersections on a jittered grid scaled by density.
  {
    double count = config_.intersections_per_km2 * config_.AreaKm2();
    int n = std::max(4, static_cast<int>(count));
    int per_side = std::max(2, static_cast<int>(std::sqrt(n)));
    double pitch = side / per_side;
    std::vector<Point> pts;
    pts.reserve(static_cast<size_t>(per_side) * per_side);
    for (int gx = 0; gx < per_side; ++gx) {
      for (int gy = 0; gy < per_side; ++gy) {
        pts.push_back(Point{(gx + 0.5) * pitch + rng.NextUniform(-0.3, 0.3) * pitch,
                            (gy + 0.5) * pitch + rng.NextUniform(-0.3, 0.3) * pitch});
      }
    }
    network.SetIntersectionIndex(net::IntersectionIndex(std::move(pts)));
  }

  // Pipes. Exactly round(num_pipes * cwm_fraction) critical mains.
  const int num_cwm =
      static_cast<int>(std::lround(config_.num_pipes * config_.cwm_fraction));
  net::SegmentId next_segment_id = config_.segment_id_base;
  std::vector<Point> junctions;  // existing endpoints for connected growth
  for (int i = 0; i < config_.num_pipes; ++i) {
    const bool critical = i < num_cwm;
    net::Pipe pipe;
    pipe.id = config_.pipe_id_base + i;
    pipe.category = critical ? PipeCategory::kCriticalMain
                             : PipeCategory::kReticulationMain;
    pipe.laid_year = SampleLaidYear(&rng, config_);
    pipe.material = SampleMaterial(&rng, pipe.laid_year, critical);
    pipe.coating = SampleCoating(&rng, pipe.material, pipe.laid_year);
    pipe.diameter_mm = SampleDiameter(&rng, critical);
    PIPERISK_RETURN_IF_ERROR(network.AddPipe(pipe));

    // Geometry: a direction-jittered polyline from a random start. Streets
    // run mostly axis-aligned; pipes follow them.
    double length = std::exp(stats::SampleNormal(
        &rng, critical ? config_.cwm_log_length_mu : config_.rwm_log_length_mu,
        critical ? config_.cwm_log_length_sigma
                 : config_.rwm_log_length_sigma));
    length = std::clamp(length, 20.0, 4000.0);
    int num_segments = std::max(
        1, static_cast<int>(std::lround(length / config_.mean_segment_length_m)));
    double seg_len = length / num_segments;

    Point cursor{rng.NextUniform(0.0, side), rng.NextUniform(0.0, side)};
    if (!junctions.empty() &&
        rng.NextDouble() < config_.connect_fraction) {
      cursor = junctions[rng.NextBounded(junctions.size())];
    }
    const Point pipe_start = cursor;
    // Axis-aligned base heading with jitter.
    double heading =
        (rng.NextBounded(2) == 0 ? 0.0 : M_PI_2) + rng.NextUniform(-0.15, 0.15);
    if (rng.NextBounded(2) == 0) heading += M_PI;
    for (int s = 0; s < num_segments; ++s) {
      net::PipeSegment seg;
      seg.id = next_segment_id++;
      seg.pipe_id = pipe.id;
      seg.index_in_pipe = s;
      seg.start = cursor;
      heading += rng.NextUniform(-0.12, 0.12);
      Point next{cursor.x + seg_len * std::cos(heading),
                 cursor.y + seg_len * std::sin(heading)};
      // Reflect at the region boundary so pipes stay inside the footprint.
      if (next.x < 0.0 || next.x > side) {
        heading = M_PI - heading;
        next.x = std::clamp(next.x, 0.0, side);
      }
      if (next.y < 0.0 || next.y > side) {
        heading = -heading;
        next.y = std::clamp(next.y, 0.0, side);
      }
      seg.end = next;
      cursor = next;
      PIPERISK_RETURN_IF_ERROR(network.AddSegment(seg));
    }
    if (config_.connect_fraction > 0.0) {
      // Register both ends as junctions for later pipes to attach to.
      junctions.push_back(pipe_start);
      junctions.push_back(cursor);
    }
  }

  network.RefreshEnvironmentalFeatures();
  PIPERISK_RETURN_IF_ERROR(network.Validate());
  return network;
}

}  // namespace data
}  // namespace piperisk
