#ifndef PIPERISK_DATA_SPLIT_H_
#define PIPERISK_DATA_SPLIT_H_

#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace piperisk {
namespace data {

/// Temporal train/test split. The paper's protocol: "the first 11 years'
/// failure records as training data and the last year's failure records as
/// testing data" — 1998–2008 train, 2009 test.
struct TemporalSplit {
  net::Year train_first = 1998;
  net::Year train_last = 2008;
  net::Year test_year = 2009;

  static TemporalSplit Paper() { return TemporalSplit{}; }

  int TrainYears() const { return train_last - train_first + 1; }
};

/// Per-segment Bernoulli training counts: the segment failed in `k` of the
/// `n` observed training years. This is the sufficient statistic for every
/// Beta–Bernoulli-based model.
struct SegmentCounts {
  net::SegmentId segment_id = net::kInvalidId;
  net::PipeId pipe_id = net::kInvalidId;
  int k = 0;  ///< distinct training years with >= 1 failure
  int n = 0;  ///< observed training years (pipe existed)
};

/// Builds segment counts for all segments whose pipe matches `category`
/// (pass std::nullopt logic via the overload without category to take all).
std::vector<SegmentCounts> BuildSegmentCounts(const RegionDataset& dataset,
                                              const TemporalSplit& split,
                                              net::PipeCategory category);
std::vector<SegmentCounts> BuildSegmentCounts(const RegionDataset& dataset,
                                              const TemporalSplit& split);

/// Per-pipe outcome in the test year, for evaluation.
struct PipeOutcome {
  net::PipeId pipe_id = net::kInvalidId;
  int test_failures = 0;   ///< failure records in the test year
  int train_failures = 0;  ///< failure records in the train window
  double length_m = 0.0;   ///< inspection cost proxy for Fig. 18.8
};

/// Builds test-year outcomes for pipes of `category` (or all pipes).
std::vector<PipeOutcome> BuildPipeOutcomes(const RegionDataset& dataset,
                                           const TemporalSplit& split,
                                           net::PipeCategory category);
std::vector<PipeOutcome> BuildPipeOutcomes(const RegionDataset& dataset,
                                           const TemporalSplit& split);

}  // namespace data
}  // namespace piperisk

#endif  // PIPERISK_DATA_SPLIT_H_
