#include "data/columnar.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string_view>
#include <type_traits>
#include <utility>

#include "common/strings.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace piperisk {
namespace data {

namespace {

// FNV-1a, identical constants to core/checkpoint.cc.
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t FnvHash(const char* data, size_t size,
                      std::uint64_t state = kFnvOffset) {
  for (size_t i = 0; i < size; ++i) {
    state ^= static_cast<unsigned char>(data[i]);
    state *= kFnvPrime;
  }
  return state;
}

// Section ids. Gaps between entity blocks leave room for format growth
// without renumbering (unknown ids are skipped by readers of this version).
enum SectionId : std::uint64_t {
  kMeta = 1,

  kPipeId = 10,
  kPipeCategory = 11,
  kPipeMaterial = 12,
  kPipeCoating = 13,
  kPipeDiameterMm = 14,
  kPipeLaidYear = 15,

  kSegId = 20,
  kSegPipeId = 21,
  kSegIndex = 22,
  kSegX0 = 23,
  kSegY0 = 24,
  kSegX1 = 25,
  kSegY1 = 26,
  kSegSoilCorrosiveness = 27,
  kSegSoilExpansiveness = 28,
  kSegSoilGeology = 29,
  kSegSoilLandscape = 30,
  kSegDistIntersectionM = 31,
  kSegTreeCanopy = 32,
  kSegSoilMoisture = 33,

  kFailPipeId = 40,
  kFailSegmentId = 41,
  kFailYear = 42,
  kFailX = 43,
  kFailY = 44,
  kFailMode = 45,
};

class ByteWriter {
 public:
  void PutU64(std::uint64_t v) {
    char bytes[8];
    for (int i = 0; i < 8; ++i) {
      bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
    buffer_.append(bytes, 8);
  }
  void PutI64(long long v) { PutU64(static_cast<std::uint64_t>(v)); }
  void PutDouble(double v) { PutU64(std::bit_cast<std::uint64_t>(v)); }
  /// Length-prefixed string, zero-padded to a whole number of words so the
  /// containing section stays 8-byte aligned end to end.
  void PutString(std::string_view s) {
    PutU64(s.size());
    buffer_.append(s.data(), s.size());
    buffer_.append((8 - s.size() % 8) % 8, '\0');
  }

  const std::string& buffer() const { return buffer_; }
  std::string Take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Result<std::uint64_t> U64() {
    if (pos_ + 8 > data_.size()) {
      return Status::ParseError("shard record truncated");
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + static_cast<size_t>(i)]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  Result<long long> I64() {
    PIPERISK_ASSIGN_OR_RETURN(std::uint64_t v, U64());
    return static_cast<long long>(v);
  }
  Result<double> Double() {
    PIPERISK_ASSIGN_OR_RETURN(std::uint64_t v, U64());
    return std::bit_cast<double>(v);
  }
  Result<std::string> String() {
    PIPERISK_ASSIGN_OR_RETURN(std::uint64_t n, U64());
    const std::uint64_t padded = n + (8 - n % 8) % 8;
    if (n > data_.size() || pos_ + padded > data_.size()) {
      return Status::ParseError("shard string length exceeds record");
    }
    std::string out(data_.substr(pos_, n));
    pos_ += padded;
    return out;
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

struct ShardMetrics {
  telemetry::Counter* loads;
  telemetry::Counter* load_failures;
  telemetry::Counter* checksum_failures;
  telemetry::Counter* bytes_mapped;
  telemetry::Counter* writes;
  telemetry::Counter* bytes_written;
  telemetry::Histogram* load_us;
  telemetry::Histogram* write_us;

  static const ShardMetrics& Get() {
    static const ShardMetrics metrics = [] {
      auto& registry = telemetry::Registry::Global();
      return ShardMetrics{
          registry.GetCounter("data.shard.loads"),
          registry.GetCounter("data.shard.load_failures"),
          registry.GetCounter("data.shard.checksum_failures"),
          registry.GetCounter("data.shard.bytes_mapped"),
          registry.GetCounter("data.shard.writes"),
          registry.GetCounter("data.shard.bytes_written"),
          registry.GetHistogram("data.shard.load_us",
                                telemetry::DefaultTimeBucketsUs()),
          registry.GetHistogram("data.shard.write_us",
                                telemetry::DefaultTimeBucketsUs())};
    }();
    return metrics;
  }
};

Status RequireLittleEndian() {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::Internal(
        "shard format requires a little-endian host (zero-copy contract)");
  }
  return Status::OK();
}

/// One section being assembled by the writer.
struct PendingSection {
  std::uint64_t id = 0;
  std::string bytes;
};

template <typename Container, typename Fn>
std::string EncodeColumn(const Container& items, Fn get) {
  ByteWriter w;
  for (const auto& item : items) {
    using V = decltype(get(item));
    if constexpr (std::is_same_v<V, double>) {
      w.PutDouble(get(item));
    } else {
      w.PutI64(static_cast<long long>(get(item)));
    }
  }
  return w.Take();
}

template <typename E>
Result<E> DecodeEnum(std::int64_t v, int count, const char* what) {
  if (v < 0 || v >= count) {
    return Status::ParseError(
        StrFormat("shard %s value %lld out of range [0, %d)", what,
                  static_cast<long long>(v), count));
  }
  return static_cast<E>(v);
}

}  // namespace

std::string ShardFileName(int shard_index) {
  return StrFormat("shard-%05d.prk", shard_index);
}

Status WriteShard(const RegionDataset& dataset, const std::string& path) {
  const ShardMetrics& metrics = ShardMetrics::Get();
  telemetry::ScopedTimer timer(metrics.write_us, "data.shard.write");
  PIPERISK_RETURN_IF_ERROR(RequireLittleEndian());

  const net::Network& network = dataset.network;
  const auto& pipes = network.pipes();
  const auto& segments = network.segments();
  const auto& failures = dataset.failures.records();

  std::vector<PendingSection> sections;
  sections.reserve(27);

  {
    ByteWriter meta;
    meta.PutString(network.region().name);
    meta.PutDouble(network.region().population);
    meta.PutDouble(network.region().area_km2);
    meta.PutI64(dataset.config.observe_first);
    meta.PutI64(dataset.config.observe_last);
    meta.PutU64(dataset.config.seed);
    meta.PutU64(pipes.size());
    meta.PutU64(segments.size());
    meta.PutU64(failures.size());
    sections.push_back({kMeta, meta.buffer()});
  }

  auto add = [&sections](std::uint64_t id, std::string bytes) {
    sections.push_back({id, std::move(bytes)});
  };
  using net::FailureRecord;
  using net::Pipe;
  using net::PipeSegment;
  add(kPipeId, EncodeColumn(pipes, [](const Pipe& p) { return p.id; }));
  add(kPipeCategory,
      EncodeColumn(pipes, [](const Pipe& p) { return static_cast<int>(p.category); }));
  add(kPipeMaterial,
      EncodeColumn(pipes, [](const Pipe& p) { return static_cast<int>(p.material); }));
  add(kPipeCoating,
      EncodeColumn(pipes, [](const Pipe& p) { return static_cast<int>(p.coating); }));
  add(kPipeDiameterMm,
      EncodeColumn(pipes, [](const Pipe& p) { return p.diameter_mm; }));
  add(kPipeLaidYear,
      EncodeColumn(pipes, [](const Pipe& p) { return static_cast<long long>(p.laid_year); }));

  add(kSegId, EncodeColumn(segments, [](const PipeSegment& s) { return s.id; }));
  add(kSegPipeId,
      EncodeColumn(segments, [](const PipeSegment& s) { return s.pipe_id; }));
  add(kSegIndex, EncodeColumn(segments, [](const PipeSegment& s) {
        return static_cast<long long>(s.index_in_pipe);
      }));
  add(kSegX0, EncodeColumn(segments, [](const PipeSegment& s) { return s.start.x; }));
  add(kSegY0, EncodeColumn(segments, [](const PipeSegment& s) { return s.start.y; }));
  add(kSegX1, EncodeColumn(segments, [](const PipeSegment& s) { return s.end.x; }));
  add(kSegY1, EncodeColumn(segments, [](const PipeSegment& s) { return s.end.y; }));
  add(kSegSoilCorrosiveness, EncodeColumn(segments, [](const PipeSegment& s) {
        return static_cast<int>(s.soil.corrosiveness);
      }));
  add(kSegSoilExpansiveness, EncodeColumn(segments, [](const PipeSegment& s) {
        return static_cast<int>(s.soil.expansiveness);
      }));
  add(kSegSoilGeology, EncodeColumn(segments, [](const PipeSegment& s) {
        return static_cast<int>(s.soil.geology);
      }));
  add(kSegSoilLandscape, EncodeColumn(segments, [](const PipeSegment& s) {
        return static_cast<int>(s.soil.landscape);
      }));
  add(kSegDistIntersectionM, EncodeColumn(segments, [](const PipeSegment& s) {
        return s.distance_to_intersection_m;
      }));
  add(kSegTreeCanopy, EncodeColumn(segments, [](const PipeSegment& s) {
        return s.tree_canopy_fraction;
      }));
  add(kSegSoilMoisture, EncodeColumn(segments, [](const PipeSegment& s) {
        return s.soil_moisture;
      }));

  add(kFailPipeId,
      EncodeColumn(failures, [](const FailureRecord& r) { return r.pipe_id; }));
  add(kFailSegmentId,
      EncodeColumn(failures, [](const FailureRecord& r) { return r.segment_id; }));
  add(kFailYear, EncodeColumn(failures, [](const FailureRecord& r) {
        return static_cast<long long>(r.year);
      }));
  add(kFailX,
      EncodeColumn(failures, [](const FailureRecord& r) { return r.location.x; }));
  add(kFailY,
      EncodeColumn(failures, [](const FailureRecord& r) { return r.location.y; }));
  add(kFailMode, EncodeColumn(failures, [](const FailureRecord& r) {
        return static_cast<int>(r.mode);
      }));

  // Lay out sections after the header + table; every section offset is a
  // multiple of 8 (all section bytes are whole words, so no padding is ever
  // actually needed — the alignment is still validated on load).
  const std::uint64_t table_offset = 4 * 8;
  const std::uint64_t data_offset = table_offset + sections.size() * 4 * 8;
  ByteWriter table;
  std::uint64_t cursor = data_offset;
  for (const PendingSection& s : sections) {
    table.PutU64(s.id);
    table.PutU64(cursor);
    table.PutU64(s.bytes.size());
    table.PutU64(FnvHash(s.bytes.data(), s.bytes.size()));
    cursor += s.bytes.size() + (8 - s.bytes.size() % 8) % 8;
  }

  ByteWriter header;
  header.PutU64(kShardMagic);
  header.PutU64(kShardFormatVersion);
  header.PutU64(sections.size());
  header.PutU64(FnvHash(table.buffer().data(), table.buffer().size()));

  // Atomic-rename protocol (same as checkpoints): a crash can abandon a
  // stale .tmp, but `path` only ever holds a complete shard.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open shard for writing: " + tmp);
    out.write(header.buffer().data(),
              static_cast<std::streamsize>(header.buffer().size()));
    out.write(table.buffer().data(),
              static_cast<std::streamsize>(table.buffer().size()));
    for (const PendingSection& s : sections) {
      out.write(s.bytes.data(), static_cast<std::streamsize>(s.bytes.size()));
      const size_t pad = (8 - s.bytes.size() % 8) % 8;
      if (pad > 0) out.write("\0\0\0\0\0\0\0", static_cast<std::streamsize>(pad));
    }
    out.flush();
    if (!out) return Status::IoError("shard write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("cannot rename shard into place: " + path);
  }
  metrics.writes->Increment();
  metrics.bytes_written->Add(static_cast<std::int64_t>(cursor));
  return Status::OK();
}

const ShardReader::Section* ShardReader::FindSection(
    std::uint64_t section_id) const {
  for (const auto& [id, section] : sections_) {
    if (id == section_id) return &section;
  }
  return nullptr;
}

Result<std::span<const std::int64_t>> ShardReader::I64Column(
    std::uint64_t section_id, std::uint64_t expect_rows) {
  const Section* s = FindSection(section_id);
  if (s == nullptr) {
    return Status::ParseError(
        StrFormat("shard is missing section %llu",
                  static_cast<unsigned long long>(section_id)));
  }
  if (s->size != expect_rows * 8) {
    return Status::ParseError(
        StrFormat("shard section %llu holds %llu bytes, expected %llu rows",
                  static_cast<unsigned long long>(section_id),
                  static_cast<unsigned long long>(s->size),
                  static_cast<unsigned long long>(expect_rows)));
  }
  return std::span<const std::int64_t>(
      reinterpret_cast<const std::int64_t*>(base_ + s->offset), expect_rows);
}

Result<std::span<const double>> ShardReader::F64Column(
    std::uint64_t section_id, std::uint64_t expect_rows) {
  PIPERISK_ASSIGN_OR_RETURN(std::span<const std::int64_t> raw,
                            I64Column(section_id, expect_rows));
  return std::span<const double>(reinterpret_cast<const double*>(raw.data()),
                                 raw.size());
}

Result<ShardReader> ShardReader::Open(const std::string& path) {
  const ShardMetrics& metrics = ShardMetrics::Get();
  telemetry::ScopedTimer timer(metrics.load_us, "data.shard.load");
  PIPERISK_RETURN_IF_ERROR(RequireLittleEndian());

  auto fail = [&path, &metrics](const std::string& what) {
    metrics.load_failures->Increment();
    return Status::ParseError("shard " + path + ": " + what);
  };

  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    metrics.load_failures->Increment();
    return Status::IoError("cannot open shard: " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    metrics.load_failures->Increment();
    return Status::IoError("cannot stat shard: " + path);
  }
  const std::uint64_t size = static_cast<std::uint64_t>(st.st_size);
  // mmap of length 0 is an error on POSIX, so an empty file must be
  // rejected before the map (it could not hold a header anyway).
  if (size < 4 * 8) {
    ::close(fd);
    return fail(size == 0 ? "file is empty"
                          : "file is smaller than the shard header");
  }
  void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (mapped == MAP_FAILED) {
    metrics.load_failures->Increment();
    return Status::IoError("cannot mmap shard: " + path);
  }

  ShardReader reader;
  reader.base_ = static_cast<const char*>(mapped);
  reader.size_ = size;

  ByteReader header(std::string_view(reader.base_, size));
  PIPERISK_ASSIGN_OR_RETURN(std::uint64_t magic, header.U64());
  if (magic != kShardMagic) return fail("not a piperisk shard (bad magic)");
  PIPERISK_ASSIGN_OR_RETURN(std::uint64_t version, header.U64());
  if (version != kShardFormatVersion) {
    return fail(StrFormat("unsupported format version %llu (expected %llu)",
                          static_cast<unsigned long long>(version),
                          static_cast<unsigned long long>(kShardFormatVersion)));
  }
  PIPERISK_ASSIGN_OR_RETURN(std::uint64_t section_count, header.U64());
  PIPERISK_ASSIGN_OR_RETURN(std::uint64_t table_checksum, header.U64());
  const std::uint64_t table_offset = 4 * 8;
  const std::uint64_t table_size = section_count * 4 * 8;
  if (section_count > size / (4 * 8) || table_offset + table_size > size) {
    return fail("section table exceeds the file (truncated or corrupt)");
  }
  if (FnvHash(reader.base_ + table_offset, table_size) != table_checksum) {
    metrics.checksum_failures->Increment();
    return fail("section table checksum mismatch (corrupt)");
  }

  ByteReader table(
      std::string_view(reader.base_ + table_offset, table_size));
  reader.sections_.reserve(section_count);
  for (std::uint64_t i = 0; i < section_count; ++i) {
    PIPERISK_ASSIGN_OR_RETURN(std::uint64_t id, table.U64());
    Section section;
    PIPERISK_ASSIGN_OR_RETURN(section.offset, table.U64());
    PIPERISK_ASSIGN_OR_RETURN(section.size, table.U64());
    PIPERISK_ASSIGN_OR_RETURN(std::uint64_t checksum, table.U64());
    if (section.offset % 8 != 0) {
      return fail(StrFormat("section %llu is not 8-byte aligned",
                            static_cast<unsigned long long>(id)));
    }
    if (section.offset > size || section.size > size - section.offset) {
      return fail(StrFormat("section %llu exceeds the file (truncated)",
                            static_cast<unsigned long long>(id)));
    }
    if (FnvHash(reader.base_ + section.offset, section.size) != checksum) {
      metrics.checksum_failures->Increment();
      return fail(StrFormat("section %llu checksum mismatch (corrupt)",
                            static_cast<unsigned long long>(id)));
    }
    reader.sections_.emplace_back(id, section);
  }

  const Section* meta_section = reader.FindSection(kMeta);
  if (meta_section == nullptr) return fail("missing meta section");
  ByteReader meta(std::string_view(reader.base_ + meta_section->offset,
                                   meta_section->size));
  PIPERISK_ASSIGN_OR_RETURN(reader.meta_.name, meta.String());
  PIPERISK_ASSIGN_OR_RETURN(reader.meta_.population, meta.Double());
  PIPERISK_ASSIGN_OR_RETURN(reader.meta_.area_km2, meta.Double());
  PIPERISK_ASSIGN_OR_RETURN(long long observe_first, meta.I64());
  PIPERISK_ASSIGN_OR_RETURN(long long observe_last, meta.I64());
  reader.meta_.observe_first = static_cast<int>(observe_first);
  reader.meta_.observe_last = static_cast<int>(observe_last);
  PIPERISK_ASSIGN_OR_RETURN(reader.meta_.seed, meta.U64());
  PIPERISK_ASSIGN_OR_RETURN(reader.meta_.num_pipes, meta.U64());
  PIPERISK_ASSIGN_OR_RETURN(reader.meta_.num_segments, meta.U64());
  PIPERISK_ASSIGN_OR_RETURN(reader.meta_.num_failures, meta.U64());

  auto i64 = [&reader](std::uint64_t id, std::uint64_t rows) {
    return reader.I64Column(id, rows);
  };
  auto f64 = [&reader](std::uint64_t id, std::uint64_t rows) {
    return reader.F64Column(id, rows);
  };
  const std::uint64_t np = reader.meta_.num_pipes;
  const std::uint64_t ns = reader.meta_.num_segments;
  const std::uint64_t nf = reader.meta_.num_failures;
  PipeColumns& pc = reader.pipe_columns_;
  PIPERISK_ASSIGN_OR_RETURN(pc.id, i64(kPipeId, np));
  PIPERISK_ASSIGN_OR_RETURN(pc.category, i64(kPipeCategory, np));
  PIPERISK_ASSIGN_OR_RETURN(pc.material, i64(kPipeMaterial, np));
  PIPERISK_ASSIGN_OR_RETURN(pc.coating, i64(kPipeCoating, np));
  PIPERISK_ASSIGN_OR_RETURN(pc.diameter_mm, f64(kPipeDiameterMm, np));
  PIPERISK_ASSIGN_OR_RETURN(pc.laid_year, i64(kPipeLaidYear, np));
  SegmentColumns& sc = reader.segment_columns_;
  PIPERISK_ASSIGN_OR_RETURN(sc.id, i64(kSegId, ns));
  PIPERISK_ASSIGN_OR_RETURN(sc.pipe_id, i64(kSegPipeId, ns));
  PIPERISK_ASSIGN_OR_RETURN(sc.index_in_pipe, i64(kSegIndex, ns));
  PIPERISK_ASSIGN_OR_RETURN(sc.x0, f64(kSegX0, ns));
  PIPERISK_ASSIGN_OR_RETURN(sc.y0, f64(kSegY0, ns));
  PIPERISK_ASSIGN_OR_RETURN(sc.x1, f64(kSegX1, ns));
  PIPERISK_ASSIGN_OR_RETURN(sc.y1, f64(kSegY1, ns));
  PIPERISK_ASSIGN_OR_RETURN(sc.soil_corrosiveness, i64(kSegSoilCorrosiveness, ns));
  PIPERISK_ASSIGN_OR_RETURN(sc.soil_expansiveness, i64(kSegSoilExpansiveness, ns));
  PIPERISK_ASSIGN_OR_RETURN(sc.soil_geology, i64(kSegSoilGeology, ns));
  PIPERISK_ASSIGN_OR_RETURN(sc.soil_landscape, i64(kSegSoilLandscape, ns));
  PIPERISK_ASSIGN_OR_RETURN(sc.distance_to_intersection_m,
                            f64(kSegDistIntersectionM, ns));
  PIPERISK_ASSIGN_OR_RETURN(sc.tree_canopy_fraction, f64(kSegTreeCanopy, ns));
  PIPERISK_ASSIGN_OR_RETURN(sc.soil_moisture, f64(kSegSoilMoisture, ns));
  FailureColumns& fc = reader.failure_columns_;
  PIPERISK_ASSIGN_OR_RETURN(fc.pipe_id, i64(kFailPipeId, nf));
  PIPERISK_ASSIGN_OR_RETURN(fc.segment_id, i64(kFailSegmentId, nf));
  PIPERISK_ASSIGN_OR_RETURN(fc.year, i64(kFailYear, nf));
  PIPERISK_ASSIGN_OR_RETURN(fc.x, f64(kFailX, nf));
  PIPERISK_ASSIGN_OR_RETURN(fc.y, f64(kFailY, nf));
  PIPERISK_ASSIGN_OR_RETURN(fc.mode, i64(kFailMode, nf));

  metrics.loads->Increment();
  metrics.bytes_mapped->Add(static_cast<std::int64_t>(size));
  return reader;
}

ShardReader::ShardReader(ShardReader&& other) noexcept { *this = std::move(other); }

ShardReader& ShardReader::operator=(ShardReader&& other) noexcept {
  if (this != &other) {
    if (base_ != nullptr) {
      ::munmap(const_cast<char*>(base_), static_cast<size_t>(size_));
    }
    base_ = std::exchange(other.base_, nullptr);
    size_ = std::exchange(other.size_, 0);
    sections_ = std::move(other.sections_);
    meta_ = std::move(other.meta_);
    pipe_columns_ = other.pipe_columns_;
    segment_columns_ = other.segment_columns_;
    failure_columns_ = other.failure_columns_;
  }
  return *this;
}

ShardReader::~ShardReader() {
  if (base_ != nullptr) {
    ::munmap(const_cast<char*>(base_), static_cast<size_t>(size_));
  }
}

Result<RegionDataset> ShardReader::ToDataset() const {
  RegionDataset out;
  out.config.name = meta_.name;
  out.config.seed = meta_.seed;
  out.config.observe_first = static_cast<net::Year>(meta_.observe_first);
  out.config.observe_last = static_cast<net::Year>(meta_.observe_last);
  net::RegionInfo info;
  info.name = meta_.name;
  info.population = meta_.population;
  info.area_km2 = meta_.area_km2;
  // Same derivation as the CSV loader, so both paths build the same config.
  if (info.area_km2 > 0.0) {
    out.config.population = info.population;
    out.config.density_per_km2 = info.population / info.area_km2;
  }
  out.network = net::Network(info);

  const PipeColumns& pc = pipe_columns_;
  for (std::uint64_t i = 0; i < meta_.num_pipes; ++i) {
    net::Pipe p;
    p.id = pc.id[i];
    PIPERISK_ASSIGN_OR_RETURN(
        p.category, DecodeEnum<net::PipeCategory>(
                        pc.category[i], net::kNumPipeCategories, "category"));
    PIPERISK_ASSIGN_OR_RETURN(
        p.material,
        DecodeEnum<net::Material>(pc.material[i], net::kNumMaterials, "material"));
    PIPERISK_ASSIGN_OR_RETURN(
        p.coating,
        DecodeEnum<net::Coating>(pc.coating[i], net::kNumCoatings, "coating"));
    p.diameter_mm = pc.diameter_mm[i];
    p.laid_year = static_cast<net::Year>(pc.laid_year[i]);
    PIPERISK_RETURN_IF_ERROR(out.network.AddPipe(std::move(p)));
  }

  const SegmentColumns& sc = segment_columns_;
  for (std::uint64_t i = 0; i < meta_.num_segments; ++i) {
    net::PipeSegment s;
    s.id = sc.id[i];
    s.pipe_id = sc.pipe_id[i];
    s.index_in_pipe = static_cast<int>(sc.index_in_pipe[i]);
    s.start = net::Point{sc.x0[i], sc.y0[i]};
    s.end = net::Point{sc.x1[i], sc.y1[i]};
    PIPERISK_ASSIGN_OR_RETURN(
        s.soil.corrosiveness,
        DecodeEnum<net::SoilCorrosiveness>(sc.soil_corrosiveness[i],
                                           net::kNumCorrosiveness, "soil_corr"));
    PIPERISK_ASSIGN_OR_RETURN(
        s.soil.expansiveness,
        DecodeEnum<net::SoilExpansiveness>(sc.soil_expansiveness[i],
                                           net::kNumExpansiveness, "soil_expan"));
    PIPERISK_ASSIGN_OR_RETURN(
        s.soil.geology, DecodeEnum<net::SoilGeology>(
                            sc.soil_geology[i], net::kNumGeology, "soil_geol"));
    PIPERISK_ASSIGN_OR_RETURN(
        s.soil.landscape,
        DecodeEnum<net::SoilLandscape>(sc.soil_landscape[i], net::kNumLandscape,
                                       "soil_map"));
    s.distance_to_intersection_m = sc.distance_to_intersection_m[i];
    s.tree_canopy_fraction = sc.tree_canopy_fraction[i];
    s.soil_moisture = sc.soil_moisture[i];
    PIPERISK_RETURN_IF_ERROR(out.network.AddSegment(std::move(s)));
  }

  const FailureColumns& fc = failure_columns_;
  for (std::uint64_t i = 0; i < meta_.num_failures; ++i) {
    net::FailureRecord r;
    r.pipe_id = fc.pipe_id[i];
    r.segment_id = fc.segment_id[i];
    r.year = static_cast<net::Year>(fc.year[i]);
    r.location = net::Point{fc.x[i], fc.y[i]};
    PIPERISK_ASSIGN_OR_RETURN(
        r.mode, DecodeEnum<net::FailureMode>(fc.mode[i], 2, "mode"));
    out.failures.Add(r);
  }

  PIPERISK_RETURN_IF_ERROR(out.network.Validate());
  return out;
}

Result<RegionDataset> LoadShard(const std::string& path) {
  PIPERISK_ASSIGN_OR_RETURN(ShardReader reader, ShardReader::Open(path));
  return reader.ToDataset();
}

}  // namespace data
}  // namespace piperisk
