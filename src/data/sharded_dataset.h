#ifndef PIPERISK_DATA_SHARDED_DATASET_H_
#define PIPERISK_DATA_SHARDED_DATASET_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/columnar.h"
#include "data/dataset.h"

namespace piperisk {
namespace data {

/// A sharded dataset is a directory of per-region shard files (see
/// columnar.h) plus a `manifest.csv` index. The manifest is written last,
/// after every shard, so an interrupted generation never looks like a
/// complete dataset. One shard is the unit of generation, storage, and
/// streaming parallelism — the whole network is never materialised at once.

inline constexpr char kManifestFileName[] = "manifest.csv";

/// One manifest row.
struct ShardInfo {
  int index = 0;
  std::string file;    ///< file name relative to the dataset directory
  std::string region;  ///< region name carried by the shard
  std::uint64_t pipes = 0;
  std::uint64_t segments = 0;
  std::uint64_t failures = 0;
};

/// Writes `manifest.csv` into `dir` (atomically: .tmp + rename).
Status WriteManifest(const std::string& dir,
                     const std::vector<ShardInfo>& shards);

/// A validated handle on a sharded dataset directory. Holds only the
/// manifest — shards are opened on demand, so the handle itself is tiny.
class ShardedDataset {
 public:
  static Result<ShardedDataset> Open(const std::string& dir);

  const std::string& dir() const { return dir_; }
  const std::vector<ShardInfo>& shards() const { return shards_; }
  std::uint64_t total_pipes() const { return total_pipes_; }
  std::uint64_t total_segments() const { return total_segments_; }
  std::uint64_t total_failures() const { return total_failures_; }

  /// mmaps + validates + materialises one shard.
  Result<RegionDataset> LoadShardDataset(size_t shard) const;

  /// Streams every shard through the shared thread pool in sequential
  /// windows of `window` shards: within a window, shards load and process
  /// concurrently; the next window starts only when the previous one is
  /// fully retired, so peak RSS is bounded by `window` concurrently
  /// materialised shards (plus whatever `process` retains).
  ///
  /// `process` runs once per shard — possibly concurrently, on pool
  /// threads — with the shard index and its dataset; the dataset is freed
  /// as soon as `process` returns. For deterministic results, `process`
  /// must write into a per-shard slot and the caller must merge slots in
  /// shard order afterwards (the ThreadPool determinism contract: the
  /// decomposition is per shard, never per thread). The first failing
  /// status, by shard order, is returned.
  Status ForEachShard(
      int window,
      const std::function<Status(size_t shard, const RegionDataset& dataset)>&
          process) const;

 private:
  std::string dir_;
  std::vector<ShardInfo> shards_;
  std::uint64_t total_pipes_ = 0;
  std::uint64_t total_segments_ = 0;
  std::uint64_t total_failures_ = 0;
};

/// Options for continental-scale deterministic generation.
struct ShardedGenerateOptions {
  int regions = 1;
  std::uint64_t seed = 1;
  /// Pipes per region; the default yields 10.05M pipes at --regions 200.
  int pipes_per_region = 50250;
  double connect_fraction = 0.0;
  /// Concurrently generated regions (<= 0: all hardware). Each in-flight
  /// region holds one region's network in memory, so this bounds peak RSS.
  int threads = 0;
  std::string out_dir;
};

struct ShardedGenerateSummary {
  int regions = 0;
  std::uint64_t pipes = 0;
  std::uint64_t segments = 0;
  std::uint64_t failures = 0;
};

/// The per-region configuration used by sharded generation: the RegionA
/// template rescaled to `num_pipes` (population and failure targets scale
/// with pipe count at fixed density, so every region is statistically a
/// RegionA-alike) and re-namespaced for shard `index`.
RegionConfig ShardRegionConfig(int index, std::uint64_t region_seed,
                               int num_pipes, double connect_fraction);

/// Generates `regions` regions and writes one shard each, streaming: no
/// more than `threads` regions exist in memory at any moment. Region seeds
/// are all drawn up front from a dedicated spawner stream (the chain_runner
/// fork discipline), so the dataset is a pure function of `seed` — the same
/// options produce byte-identical shards regardless of thread count.
Result<ShardedGenerateSummary> GenerateShardedDataset(
    const ShardedGenerateOptions& options);

}  // namespace data
}  // namespace piperisk

#endif  // PIPERISK_DATA_SHARDED_DATASET_H_
