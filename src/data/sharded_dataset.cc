#include "data/sharded_dataset.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/csv.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "data/failure_simulator.h"
#include "stats/rng.h"

namespace piperisk {
namespace data {

namespace {

// Id strides between consecutive regions. Far above any realistic per-region
// entity count (a region is tens of thousands of pipes), so ids never
// collide across shards while staying readable in decimal.
constexpr std::int64_t kPipeIdStride = 100000000LL;      // 1e8
constexpr std::int64_t kSegmentIdStride = 1000000000LL;  // 1e9

// Stream constant for the region-seed spawner ("shards" in ASCII).
constexpr std::uint64_t kSeedStream = 0x736861726473ULL;

}  // namespace

Status WriteManifest(const std::string& dir,
                     const std::vector<ShardInfo>& shards) {
  CsvDocument doc({"shard", "file", "region", "pipes", "segments", "failures"});
  for (const ShardInfo& s : shards) {
    PIPERISK_RETURN_IF_ERROR(
        doc.AppendRow({std::to_string(s.index), s.file, s.region,
                       std::to_string(s.pipes), std::to_string(s.segments),
                       std::to_string(s.failures)}));
  }
  const std::string path = dir + "/" + kManifestFileName;
  const std::string tmp = path + ".tmp";
  PIPERISK_RETURN_IF_ERROR(doc.WriteFile(tmp));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("cannot rename manifest into place: " + path);
  }
  return Status::OK();
}

Result<ShardedDataset> ShardedDataset::Open(const std::string& dir) {
  ShardedDataset out;
  out.dir_ = dir;
  const std::string path = dir + "/" + kManifestFileName;
  PIPERISK_ASSIGN_OR_RETURN(CsvDocument doc, CsvDocument::ReadFile(path));
  PIPERISK_ASSIGN_OR_RETURN(size_t c_shard, doc.ColumnIndex("shard"));
  PIPERISK_ASSIGN_OR_RETURN(size_t c_file, doc.ColumnIndex("file"));
  PIPERISK_ASSIGN_OR_RETURN(size_t c_region, doc.ColumnIndex("region"));
  PIPERISK_ASSIGN_OR_RETURN(size_t c_pipes, doc.ColumnIndex("pipes"));
  PIPERISK_ASSIGN_OR_RETURN(size_t c_segments, doc.ColumnIndex("segments"));
  PIPERISK_ASSIGN_OR_RETURN(size_t c_failures, doc.ColumnIndex("failures"));
  if (doc.num_rows() == 0) {
    return Status::InvalidArgument("sharded dataset has no shards: " + path);
  }
  out.shards_.reserve(doc.num_rows());
  for (size_t r = 0; r < doc.num_rows(); ++r) {
    ShardInfo info;
    PIPERISK_ASSIGN_OR_RETURN(long long index,
                              ParseInt(doc.cell(r, c_shard)));
    info.index = static_cast<int>(index);
    info.file = doc.cell(r, c_file);
    info.region = doc.cell(r, c_region);
    PIPERISK_ASSIGN_OR_RETURN(long long pipes, ParseInt(doc.cell(r, c_pipes)));
    PIPERISK_ASSIGN_OR_RETURN(long long segments,
                              ParseInt(doc.cell(r, c_segments)));
    PIPERISK_ASSIGN_OR_RETURN(long long failures,
                              ParseInt(doc.cell(r, c_failures)));
    if (index != static_cast<long long>(r)) {
      return Status::ParseError(
          StrFormat("manifest row %zu has shard index %lld (must be dense, "
                    "in order)",
                    r, index));
    }
    if (pipes < 0 || segments < 0 || failures < 0) {
      return Status::ParseError("manifest counts must be non-negative");
    }
    info.pipes = static_cast<std::uint64_t>(pipes);
    info.segments = static_cast<std::uint64_t>(segments);
    info.failures = static_cast<std::uint64_t>(failures);
    out.total_pipes_ += info.pipes;
    out.total_segments_ += info.segments;
    out.total_failures_ += info.failures;
    out.shards_.push_back(std::move(info));
  }
  return out;
}

Result<RegionDataset> ShardedDataset::LoadShardDataset(size_t shard) const {
  if (shard >= shards_.size()) {
    return Status::InvalidArgument(
        StrFormat("shard %zu out of range (have %zu)", shard, shards_.size()));
  }
  PIPERISK_ASSIGN_OR_RETURN(RegionDataset dataset,
                            LoadShard(dir_ + "/" + shards_[shard].file));
  // Manifest and shard must agree — a stale manifest over rewritten shards
  // would silently skew streamed statistics.
  const ShardInfo& info = shards_[shard];
  if (dataset.network.num_pipes() != info.pipes ||
      dataset.network.num_segments() != info.segments ||
      dataset.failures.size() != info.failures) {
    return Status::FailedPrecondition(
        StrFormat("shard %zu (%s) disagrees with the manifest counts", shard,
                  info.file.c_str()));
  }
  return dataset;
}

Status ShardedDataset::ForEachShard(
    int window,
    const std::function<Status(size_t, const RegionDataset&)>& process) const {
  if (window <= 0) window = 1;
  const size_t n = shards_.size();
  for (size_t begin = 0; begin < n; begin += static_cast<size_t>(window)) {
    const int count =
        static_cast<int>(std::min<size_t>(window, n - begin));
    std::vector<Status> statuses(static_cast<size_t>(count), Status::OK());
    ThreadPool::Shared().ParallelFor(count, count, [&](int block) {
      const size_t shard = begin + static_cast<size_t>(block);
      auto dataset = LoadShardDataset(shard);
      if (!dataset.ok()) {
        statuses[static_cast<size_t>(block)] = dataset.status();
        return;
      }
      statuses[static_cast<size_t>(block)] = process(shard, *dataset);
    });
    for (const Status& st : statuses) {
      PIPERISK_RETURN_IF_ERROR(st);
    }
  }
  return Status::OK();
}

RegionConfig ShardRegionConfig(int index, std::uint64_t region_seed,
                               int num_pipes, double connect_fraction) {
  RegionConfig cfg = RegionConfig::RegionA();
  const double scale =
      static_cast<double>(num_pipes) / static_cast<double>(cfg.num_pipes);
  cfg.name = StrFormat("R%05d", index);
  cfg.seed = region_seed;
  cfg.num_pipes = num_pipes;
  // Fixed density: population (and therefore area) scales with the network.
  cfg.population *= scale;
  cfg.target_failures_all *= scale;
  cfg.target_failures_cwm *= scale;
  cfg.num_soil_zones = std::max(
      16, static_cast<int>(std::lround(cfg.num_soil_zones * scale)));
  cfg.connect_fraction = connect_fraction;
  cfg.pipe_id_base = static_cast<net::PipeId>(index) * kPipeIdStride;
  cfg.segment_id_base = static_cast<net::SegmentId>(index) * kSegmentIdStride;
  return cfg;
}

Result<ShardedGenerateSummary> GenerateShardedDataset(
    const ShardedGenerateOptions& options) {
  if (options.regions <= 0) {
    return Status::InvalidArgument("--regions must be positive");
  }
  if (options.pipes_per_region <= 0) {
    return Status::InvalidArgument("pipes per region must be positive");
  }
  if (options.pipes_per_region > kPipeIdStride ||
      static_cast<std::int64_t>(options.pipes_per_region) * 64 >
          kSegmentIdStride) {
    return Status::InvalidArgument("pipes per region exceeds the id stride");
  }
  if (options.out_dir.empty()) {
    return Status::InvalidArgument("an output directory is required");
  }
  if (::mkdir(options.out_dir.c_str(), 0777) != 0 && errno != EEXIST) {
    return Status::IoError("cannot create directory: " + options.out_dir);
  }

  // All region seeds come from one spawner stream, drawn up front, so a
  // region's content depends only on (seed, index) — never on the order or
  // interleaving in which regions are actually generated.
  std::vector<std::uint64_t> seeds(static_cast<size_t>(options.regions));
  stats::Rng spawner(options.seed, kSeedStream);
  for (std::uint64_t& s : seeds) s = spawner.Fork().NextU64();

  const size_t n = seeds.size();
  std::vector<ShardInfo> shards(n);
  std::vector<Status> statuses(n, Status::OK());
  const int max_threads = options.threads <= 0
                              ? 0
                              : options.threads;
  ThreadPool::Shared().ParallelFor(
      static_cast<int>(n), max_threads, [&](int block) {
        const size_t i = static_cast<size_t>(block);
        const RegionConfig config =
            ShardRegionConfig(static_cast<int>(i), seeds[i],
                              options.pipes_per_region,
                              options.connect_fraction);
        auto dataset = GenerateRegion(config);
        if (!dataset.ok()) {
          statuses[i] = dataset.status();
          return;
        }
        ShardInfo& info = shards[i];
        info.index = static_cast<int>(i);
        info.file = ShardFileName(static_cast<int>(i));
        info.region = config.name;
        info.pipes = dataset->network.num_pipes();
        info.segments = dataset->network.num_segments();
        info.failures = dataset->failures.size();
        statuses[i] =
            WriteShard(*dataset, options.out_dir + "/" + info.file);
      });
  for (const Status& st : statuses) {
    PIPERISK_RETURN_IF_ERROR(st);
  }

  PIPERISK_RETURN_IF_ERROR(WriteManifest(options.out_dir, shards));
  ShardedGenerateSummary summary;
  summary.regions = options.regions;
  for (const ShardInfo& s : shards) {
    summary.pipes += s.pipes;
    summary.segments += s.segments;
    summary.failures += s.failures;
  }
  return summary;
}

}  // namespace data
}  // namespace piperisk
