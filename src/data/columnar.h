#ifndef PIPERISK_DATA_COLUMNAR_H_
#define PIPERISK_DATA_COLUMNAR_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace piperisk {
namespace data {

/// Binary columnar shard format — the continental-scale counterpart of the
/// CSV quartet in csv_io.h. One file holds one region's complete study data
/// (pipes, segments, failures, region metadata) as contiguous little-endian
/// column arrays, so a reader can mmap the file and hand out zero-copy
/// `std::span` views without parsing anything.
///
/// On-disk layout (every integer a fixed-width u64, little-endian; doubles
/// travel as their IEEE-754 bit pattern, never through text — the same
/// encoding discipline as core/checkpoint.cc):
///
///   header   : magic "prkshrd1" | format version | section count
///              | FNV-1a checksum of the section table
///   table    : per section { section id | byte offset | byte size
///                            | FNV-1a checksum of the section bytes }
///   sections : raw column bytes, each section starting 8-byte aligned
///
/// Column sections are arrays of u64 words (i64 columns store the value's
/// two's-complement pattern, f64 columns the IEEE-754 pattern); the meta
/// section is a small length-prefixed record. Like the CSV form, a shard
/// does NOT persist the spatial layers (soil-zone Voronoi sites,
/// intersection points) — segments carry their already-sampled
/// environmental features, which is all the models read.
///
/// Integrity: `ShardReader::Open` validates magic, version, table bounds,
/// section alignment, and every section checksum before returning, so a
/// truncated, bit-flipped, or version-skewed file yields a descriptive
/// Status instead of UB. Writes go through a `.tmp` + rename, so a crash
/// never leaves a half-written shard at the final path.

inline constexpr std::uint64_t kShardMagic = 0x70726b7368726431ULL;  // "prkshrd1"
inline constexpr std::uint64_t kShardFormatVersion = 1;

/// Canonical shard file name within a sharded dataset directory.
std::string ShardFileName(int shard_index);

/// Region metadata carried by a shard (superset of the `_meta.csv` keys, so
/// CSV -> shard -> CSV round-trips exactly).
struct ShardMeta {
  std::string name;
  double population = 0.0;
  double area_km2 = 0.0;
  int observe_first = 0;
  int observe_last = 0;
  std::uint64_t seed = 0;
  std::uint64_t num_pipes = 0;
  std::uint64_t num_segments = 0;
  std::uint64_t num_failures = 0;
};

/// Writes `dataset` as one shard file at `path` (atomically: .tmp + rename).
Status WriteShard(const RegionDataset& dataset, const std::string& path);

/// A memory-mapped, validated shard. Move-only; spans returned by the
/// column accessors point into the mapping and are valid for the reader's
/// lifetime. Requires a little-endian host (the zero-copy contract).
class ShardReader {
 public:
  static Result<ShardReader> Open(const std::string& path);

  ShardReader(ShardReader&& other) noexcept;
  ShardReader& operator=(ShardReader&& other) noexcept;
  ShardReader(const ShardReader&) = delete;
  ShardReader& operator=(const ShardReader&) = delete;
  ~ShardReader();

  const ShardMeta& meta() const { return meta_; }
  std::uint64_t mapped_bytes() const { return size_; }

  /// Zero-copy column views, aligned by index within each entity.
  struct PipeColumns {
    std::span<const std::int64_t> id, category, material, coating, laid_year;
    std::span<const double> diameter_mm;
  };
  struct SegmentColumns {
    std::span<const std::int64_t> id, pipe_id, index_in_pipe;
    std::span<const double> x0, y0, x1, y1;
    std::span<const std::int64_t> soil_corrosiveness, soil_expansiveness,
        soil_geology, soil_landscape;
    std::span<const double> distance_to_intersection_m, tree_canopy_fraction,
        soil_moisture;
  };
  struct FailureColumns {
    std::span<const std::int64_t> pipe_id, segment_id, year, mode;
    std::span<const double> x, y;
  };

  const PipeColumns& pipes() const { return pipe_columns_; }
  const SegmentColumns& segments() const { return segment_columns_; }
  const FailureColumns& failures() const { return failure_columns_; }

  /// Materialises the shard as a RegionDataset (the shape every existing
  /// model and evaluation entry point consumes). Validates enum ranges and
  /// referential structure via Network::Validate.
  Result<RegionDataset> ToDataset() const;

 private:
  ShardReader() = default;
  struct Section {
    std::uint64_t offset = 0;
    std::uint64_t size = 0;
  };
  Result<std::span<const std::int64_t>> I64Column(std::uint64_t section_id,
                                                  std::uint64_t expect_rows);
  Result<std::span<const double>> F64Column(std::uint64_t section_id,
                                            std::uint64_t expect_rows);
  const Section* FindSection(std::uint64_t section_id) const;

  const char* base_ = nullptr;  ///< mmap base (nullptr when moved-from)
  std::uint64_t size_ = 0;
  std::vector<std::pair<std::uint64_t, Section>> sections_;
  ShardMeta meta_;
  PipeColumns pipe_columns_;
  SegmentColumns segment_columns_;
  FailureColumns failure_columns_;
};

/// Convenience: Open + ToDataset in one call (what the streaming readers
/// use per shard).
Result<RegionDataset> LoadShard(const std::string& path);

}  // namespace data
}  // namespace piperisk

#endif  // PIPERISK_DATA_COLUMNAR_H_
