#include "data/csv_io.h"

#include <string>
#include <vector>

#include "common/csv.h"
#include "common/strings.h"

namespace piperisk {
namespace data {

namespace {

std::string F(double v) { return StrFormat("%.6f", v); }
std::string I(long long v) { return std::to_string(v); }

}  // namespace

Status SaveRegionDataset(const RegionDataset& dataset,
                         const std::string& prefix) {
  // --- meta -----------------------------------------------------------------
  {
    CsvDocument meta({"key", "value"});
    PIPERISK_RETURN_IF_ERROR(
        meta.AppendRow({"name", dataset.network.region().name}));
    PIPERISK_RETURN_IF_ERROR(
        meta.AppendRow({"population", F(dataset.network.region().population)}));
    PIPERISK_RETURN_IF_ERROR(
        meta.AppendRow({"area_km2", F(dataset.network.region().area_km2)}));
    PIPERISK_RETURN_IF_ERROR(
        meta.AppendRow({"observe_first", I(dataset.config.observe_first)}));
    PIPERISK_RETURN_IF_ERROR(
        meta.AppendRow({"observe_last", I(dataset.config.observe_last)}));
    PIPERISK_RETURN_IF_ERROR(meta.WriteFile(prefix + "_meta.csv"));
  }

  // --- pipes ----------------------------------------------------------------
  {
    CsvDocument pipes({"pipe_id", "category", "material", "coating",
                       "diameter_mm", "laid_year"});
    for (const net::Pipe& p : dataset.network.pipes()) {
      PIPERISK_RETURN_IF_ERROR(pipes.AppendRow(
          {I(p.id), std::string(ToString(p.category)),
           std::string(ToString(p.material)), std::string(ToString(p.coating)),
           F(p.diameter_mm), I(p.laid_year)}));
    }
    PIPERISK_RETURN_IF_ERROR(pipes.WriteFile(prefix + "_pipes.csv"));
  }

  // --- segments ---------------------------------------------------------------
  {
    CsvDocument segs({"segment_id", "pipe_id", "index", "x0", "y0", "x1", "y1",
                      "soil_corr", "soil_expan", "soil_geol", "soil_map",
                      "dist_intersection_m", "tree_canopy", "soil_moisture"});
    for (const net::PipeSegment& s : dataset.network.segments()) {
      PIPERISK_RETURN_IF_ERROR(segs.AppendRow(
          {I(s.id), I(s.pipe_id), I(s.index_in_pipe), F(s.start.x),
           F(s.start.y), F(s.end.x), F(s.end.y),
           std::string(ToString(s.soil.corrosiveness)),
           std::string(ToString(s.soil.expansiveness)),
           std::string(ToString(s.soil.geology)),
           std::string(ToString(s.soil.landscape)),
           F(s.distance_to_intersection_m), F(s.tree_canopy_fraction),
           F(s.soil_moisture)}));
    }
    PIPERISK_RETURN_IF_ERROR(segs.WriteFile(prefix + "_segments.csv"));
  }

  // --- failures ----------------------------------------------------------------
  {
    CsvDocument fails({"pipe_id", "segment_id", "year", "x", "y", "mode"});
    for (const net::FailureRecord& r : dataset.failures.records()) {
      PIPERISK_RETURN_IF_ERROR(
          fails.AppendRow({I(r.pipe_id), I(r.segment_id), I(r.year),
                           F(r.location.x), F(r.location.y),
                           std::string(ToString(r.mode))}));
    }
    PIPERISK_RETURN_IF_ERROR(fails.WriteFile(prefix + "_failures.csv"));
  }
  return Status::OK();
}

namespace {

/// Pulls a named column index or fails with a context message.
Result<size_t> Col(const CsvDocument& doc, const char* name) {
  return doc.ColumnIndex(name);
}

}  // namespace

Result<RegionDataset> LoadRegionDataset(const std::string& prefix) {
  RegionDataset out;

  // --- meta -----------------------------------------------------------------
  {
    PIPERISK_ASSIGN_OR_RETURN(CsvDocument meta,
                              CsvDocument::ReadFile(prefix + "_meta.csv"));
    net::RegionInfo info;
    for (size_t r = 0; r < meta.num_rows(); ++r) {
      const std::string& key = meta.cell(r, 0);
      const std::string& value = meta.cell(r, 1);
      if (key == "name") {
        info.name = value;
        out.config.name = value;
      } else if (key == "population") {
        PIPERISK_ASSIGN_OR_RETURN(info.population, ParseDouble(value));
      } else if (key == "area_km2") {
        PIPERISK_ASSIGN_OR_RETURN(info.area_km2, ParseDouble(value));
      } else if (key == "observe_first") {
        PIPERISK_ASSIGN_OR_RETURN(long long y, ParseInt(value));
        out.config.observe_first = static_cast<net::Year>(y);
      } else if (key == "observe_last") {
        PIPERISK_ASSIGN_OR_RETURN(long long y, ParseInt(value));
        out.config.observe_last = static_cast<net::Year>(y);
      }
    }
    if (info.area_km2 > 0.0) {
      out.config.population = info.population;
      out.config.density_per_km2 = info.population / info.area_km2;
    }
    out.network = net::Network(info);
  }

  // --- pipes ----------------------------------------------------------------
  {
    PIPERISK_ASSIGN_OR_RETURN(CsvDocument pipes,
                              CsvDocument::ReadFile(prefix + "_pipes.csv"));
    PIPERISK_ASSIGN_OR_RETURN(size_t c_id, Col(pipes, "pipe_id"));
    PIPERISK_ASSIGN_OR_RETURN(size_t c_cat, Col(pipes, "category"));
    PIPERISK_ASSIGN_OR_RETURN(size_t c_mat, Col(pipes, "material"));
    PIPERISK_ASSIGN_OR_RETURN(size_t c_coat, Col(pipes, "coating"));
    PIPERISK_ASSIGN_OR_RETURN(size_t c_diam, Col(pipes, "diameter_mm"));
    PIPERISK_ASSIGN_OR_RETURN(size_t c_laid, Col(pipes, "laid_year"));
    for (size_t r = 0; r < pipes.num_rows(); ++r) {
      net::Pipe p;
      PIPERISK_ASSIGN_OR_RETURN(long long id, ParseInt(pipes.cell(r, c_id)));
      p.id = id;
      PIPERISK_ASSIGN_OR_RETURN(p.category,
                                net::ParsePipeCategory(pipes.cell(r, c_cat)));
      PIPERISK_ASSIGN_OR_RETURN(p.material,
                                net::ParseMaterial(pipes.cell(r, c_mat)));
      PIPERISK_ASSIGN_OR_RETURN(p.coating,
                                net::ParseCoating(pipes.cell(r, c_coat)));
      PIPERISK_ASSIGN_OR_RETURN(p.diameter_mm,
                                ParseDouble(pipes.cell(r, c_diam)));
      PIPERISK_ASSIGN_OR_RETURN(long long laid,
                                ParseInt(pipes.cell(r, c_laid)));
      p.laid_year = static_cast<net::Year>(laid);
      PIPERISK_RETURN_IF_ERROR(out.network.AddPipe(std::move(p)));
    }
  }

  // --- segments ---------------------------------------------------------------
  {
    PIPERISK_ASSIGN_OR_RETURN(CsvDocument segs,
                              CsvDocument::ReadFile(prefix + "_segments.csv"));
    PIPERISK_ASSIGN_OR_RETURN(size_t c_id, Col(segs, "segment_id"));
    PIPERISK_ASSIGN_OR_RETURN(size_t c_pipe, Col(segs, "pipe_id"));
    PIPERISK_ASSIGN_OR_RETURN(size_t c_idx, Col(segs, "index"));
    PIPERISK_ASSIGN_OR_RETURN(size_t c_x0, Col(segs, "x0"));
    PIPERISK_ASSIGN_OR_RETURN(size_t c_y0, Col(segs, "y0"));
    PIPERISK_ASSIGN_OR_RETURN(size_t c_x1, Col(segs, "x1"));
    PIPERISK_ASSIGN_OR_RETURN(size_t c_y1, Col(segs, "y1"));
    PIPERISK_ASSIGN_OR_RETURN(size_t c_corr, Col(segs, "soil_corr"));
    PIPERISK_ASSIGN_OR_RETURN(size_t c_expan, Col(segs, "soil_expan"));
    PIPERISK_ASSIGN_OR_RETURN(size_t c_geol, Col(segs, "soil_geol"));
    PIPERISK_ASSIGN_OR_RETURN(size_t c_map, Col(segs, "soil_map"));
    PIPERISK_ASSIGN_OR_RETURN(size_t c_dist, Col(segs, "dist_intersection_m"));
    PIPERISK_ASSIGN_OR_RETURN(size_t c_canopy, Col(segs, "tree_canopy"));
    PIPERISK_ASSIGN_OR_RETURN(size_t c_moist, Col(segs, "soil_moisture"));
    for (size_t r = 0; r < segs.num_rows(); ++r) {
      net::PipeSegment s;
      PIPERISK_ASSIGN_OR_RETURN(long long id, ParseInt(segs.cell(r, c_id)));
      s.id = id;
      PIPERISK_ASSIGN_OR_RETURN(long long pid, ParseInt(segs.cell(r, c_pipe)));
      s.pipe_id = pid;
      PIPERISK_ASSIGN_OR_RETURN(long long idx, ParseInt(segs.cell(r, c_idx)));
      s.index_in_pipe = static_cast<int>(idx);
      PIPERISK_ASSIGN_OR_RETURN(s.start.x, ParseDouble(segs.cell(r, c_x0)));
      PIPERISK_ASSIGN_OR_RETURN(s.start.y, ParseDouble(segs.cell(r, c_y0)));
      PIPERISK_ASSIGN_OR_RETURN(s.end.x, ParseDouble(segs.cell(r, c_x1)));
      PIPERISK_ASSIGN_OR_RETURN(s.end.y, ParseDouble(segs.cell(r, c_y1)));
      PIPERISK_ASSIGN_OR_RETURN(
          s.soil.corrosiveness,
          net::ParseSoilCorrosiveness(segs.cell(r, c_corr)));
      PIPERISK_ASSIGN_OR_RETURN(
          s.soil.expansiveness,
          net::ParseSoilExpansiveness(segs.cell(r, c_expan)));
      PIPERISK_ASSIGN_OR_RETURN(s.soil.geology,
                                net::ParseSoilGeology(segs.cell(r, c_geol)));
      PIPERISK_ASSIGN_OR_RETURN(s.soil.landscape,
                                net::ParseSoilLandscape(segs.cell(r, c_map)));
      PIPERISK_ASSIGN_OR_RETURN(s.distance_to_intersection_m,
                                ParseDouble(segs.cell(r, c_dist)));
      PIPERISK_ASSIGN_OR_RETURN(s.tree_canopy_fraction,
                                ParseDouble(segs.cell(r, c_canopy)));
      PIPERISK_ASSIGN_OR_RETURN(s.soil_moisture,
                                ParseDouble(segs.cell(r, c_moist)));
      PIPERISK_RETURN_IF_ERROR(out.network.AddSegment(std::move(s)));
    }
  }

  // --- failures ----------------------------------------------------------------
  {
    PIPERISK_ASSIGN_OR_RETURN(CsvDocument fails,
                              CsvDocument::ReadFile(prefix + "_failures.csv"));
    PIPERISK_ASSIGN_OR_RETURN(size_t c_pipe, Col(fails, "pipe_id"));
    PIPERISK_ASSIGN_OR_RETURN(size_t c_seg, Col(fails, "segment_id"));
    PIPERISK_ASSIGN_OR_RETURN(size_t c_year, Col(fails, "year"));
    PIPERISK_ASSIGN_OR_RETURN(size_t c_x, Col(fails, "x"));
    PIPERISK_ASSIGN_OR_RETURN(size_t c_y, Col(fails, "y"));
    PIPERISK_ASSIGN_OR_RETURN(size_t c_mode, Col(fails, "mode"));
    for (size_t r = 0; r < fails.num_rows(); ++r) {
      net::FailureRecord rec;
      PIPERISK_ASSIGN_OR_RETURN(long long pid, ParseInt(fails.cell(r, c_pipe)));
      rec.pipe_id = pid;
      PIPERISK_ASSIGN_OR_RETURN(long long sid, ParseInt(fails.cell(r, c_seg)));
      rec.segment_id = sid;
      PIPERISK_ASSIGN_OR_RETURN(long long year,
                                ParseInt(fails.cell(r, c_year)));
      rec.year = static_cast<net::Year>(year);
      PIPERISK_ASSIGN_OR_RETURN(rec.location.x,
                                ParseDouble(fails.cell(r, c_x)));
      PIPERISK_ASSIGN_OR_RETURN(rec.location.y,
                                ParseDouble(fails.cell(r, c_y)));
      PIPERISK_ASSIGN_OR_RETURN(rec.mode,
                                net::ParseFailureMode(fails.cell(r, c_mode)));
      out.failures.Add(rec);
    }
  }

  PIPERISK_RETURN_IF_ERROR(out.network.Validate());
  return out;
}

}  // namespace data
}  // namespace piperisk
