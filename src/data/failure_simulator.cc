#include "data/failure_simulator.h"

#include <algorithm>
#include <cmath>

#include "data/network_generator.h"
#include "stats/distributions.h"
#include "stats/rng.h"

namespace piperisk {
namespace data {

namespace {

using net::Coating;
using net::Material;
using net::PipeCategory;

/// Wear-out exponent by material: AC embrittles sharply late in life, PVC is
/// young stock with an infant-mortality bump, ductile iron is benign.
double AgeMultiplier(const net::Pipe& pipe, int age) {
  double a = std::max(age, 1);
  double gamma;
  switch (pipe.material) {
    case Material::kAc:
      gamma = 1.8;
      break;
    case Material::kCicl:
      gamma = 1.4;
      break;
    case Material::kSteel:
      gamma = 1.2;
      break;
    case Material::kDicl:
      gamma = 0.8;
      break;
    case Material::kPvc:
      gamma = 0.5;
      break;
    default:
      gamma = 1.0;
      break;
  }
  double mult = std::pow(a / 50.0, gamma);
  if (pipe.material == Material::kPvc && age < 8) {
    mult += 0.6;  // joint/installation defects surface early
  }
  return std::max(mult, 0.02);
}

bool IsMetallic(Material m) {
  return m == Material::kCicl || m == Material::kSteel || m == Material::kDicl;
}

double CorrosionMultiplier(const net::Pipe& pipe,
                           const net::PipeSegment& segment) {
  if (!IsMetallic(pipe.material)) return 1.0;
  static const double kSoil[] = {1.0, 1.9, 3.4, 5.5};
  double mult = kSoil[static_cast<int>(segment.soil.corrosiveness)];
  switch (pipe.coating) {
    case Coating::kPolyethyleneSleeve:
      mult = 1.0 + (mult - 1.0) * 0.35;
      break;
    case Coating::kTar:
      mult = 1.0 + (mult - 1.0) * 0.70;
      break;
    case Coating::kBitumen:
      mult = 1.0 + (mult - 1.0) * 0.80;
      break;
    case Coating::kNone:
      break;
  }
  return mult;
}

double ExpansiveClayMultiplier(const net::Pipe& pipe,
                               const net::PipeSegment& segment) {
  static const double kClay[] = {1.0, 1.3, 2.0, 3.2};
  double base = kClay[static_cast<int>(segment.soil.expansiveness)];
  // Rigid, small-diameter mains suffer most from shrink–swell bending.
  bool rigid =
      pipe.material == Material::kCicl || pipe.material == Material::kAc;
  if (!rigid) base = 1.0 + (base - 1.0) * 0.3;
  double size = std::sqrt(std::clamp(150.0 / pipe.diameter_mm, 0.3, 1.5));
  return 1.0 + (base - 1.0) * size;
}

double TrafficMultiplier(const net::PipeSegment& segment, bool critical) {
  double d = segment.distance_to_intersection_m;
  if (!std::isfinite(d)) return 1.0;
  // Pressure cycling decays with distance from the intersection; critical
  // mains are buried deeper, so the effect is attenuated.
  double peak = critical ? 1.3 : 2.2;
  return 1.0 + peak * std::exp(-d / 120.0);
}

double GeologyMultiplier(const net::PipeSegment& segment) {
  double mult = 1.0;
  switch (segment.soil.geology) {
    case net::SoilGeology::kShale:
      mult *= 1.20;
      break;
    case net::SoilGeology::kAlluvium:
      mult *= 1.35;  // differential settlement
      break;
    default:
      break;
  }
  switch (segment.soil.landscape) {
    case net::SoilLandscape::kFluvial:
      mult *= 1.25;
      break;
    case net::SoilLandscape::kColluvial:
      mult *= 1.10;
      break;
    default:
      break;
  }
  return mult;
}

double DiameterMultiplier(const net::Pipe& pipe) {
  // Per-km break rates fall with diameter (thicker walls, better bedding).
  return std::pow(std::clamp(200.0 / pipe.diameter_mm, 0.2, 2.5), 0.8);
}

}  // namespace

double FailureSimulator::CohortMultiplier(net::PipeId pipe_id) const {
  // Deterministic in (seed, pipe id): hash both into a throwaway stream.
  stats::Rng rng(config_.seed * 0x9e3779b97f4a7c15ULL +
                     static_cast<std::uint64_t>(pipe_id) * 0xbf58476d1ce4e5b9ULL,
                 0x94d049bb133111ebULL);
  double u = rng.NextDouble();
  if (u < 0.30) return 0.40;  // well-installed cohort
  if (u < 0.85) return 1.0;   // nominal
  return 3.2;                 // bad batch / poor bedding
}

namespace {

/// Unobservable segment-level heterogeneity: unmapped bedding quality,
/// backfill, local water-table pockets. Lognormal with sigma ~ 0.35, mean 1.
/// Deterministic in (seed, segment id). This variance is invisible to every
/// covariate-only model; only failure history reveals it.
double HiddenSegmentFactor(std::uint64_t seed, net::SegmentId segment_id) {
  stats::Rng rng(seed * 0xd6e8feb86659fd93ULL +
                     static_cast<std::uint64_t>(segment_id) *
                         0xa3b195354a39b70dULL,
                 0x2545f4914f6cdd1dULL);
  double z = stats::SampleNormal(&rng);
  return std::exp(0.35 * z - 0.061);  // mean ~= 1
}

}  // namespace

double FailureSimulator::RawIntensity(const net::Network& network,
                                      const net::PipeSegment& segment,
                                      net::Year year) const {
  auto pipe_result = network.FindPipe(segment.pipe_id);
  if (!pipe_result.ok()) return 0.0;
  const net::Pipe& pipe = **pipe_result;
  int age = year - pipe.laid_year;
  if (age < 0) return 0.0;
  bool critical = pipe.IsCritical();
  double base_per_km = critical ? 0.040 : 0.32;
  double len_km = segment.LengthM() / 1000.0;
  return base_per_km * len_km * AgeMultiplier(pipe, age) *
         CorrosionMultiplier(pipe, segment) *
         ExpansiveClayMultiplier(pipe, segment) *
         TrafficMultiplier(segment, critical) * GeologyMultiplier(segment) *
         DiameterMultiplier(pipe) * CohortMultiplier(pipe.id) *
         HiddenSegmentFactor(config_.seed, segment.id);
}

net::FailureHistory FailureSimulator::SimulatePass(
    const net::Network& network, const Scales& scales, std::uint64_t salt,
    double* cwm_count, double* rwm_count) const {
  stats::Rng rng((config_.seed + salt) ^ 0x5851f42d4c957f2dULL,
                 0x14057b7ef767814fULL);
  *cwm_count = 0.0;
  *rwm_count = 0.0;
  net::FailureHistory history;
  for (const net::PipeSegment& s : network.segments()) {
    auto pipe = network.FindPipe(s.pipe_id);
    if (!pipe.ok()) continue;
    bool critical = (*pipe)->IsCritical();
    double scale = critical ? scales.cwm : scales.rwm;
    int prior_failures = 0;
    for (net::Year y = config_.observe_first; y <= config_.observe_last; ++y) {
      double h = RawIntensity(network, s, y);
      if (h <= 0.0) continue;
      // History escalation: disturbed bedding after each repair raises the
      // subsequent hazard.
      double esc = std::pow(dynamics_.escalation,
                            std::min(prior_failures, dynamics_.max_escalated));
      double p = -std::expm1(-scale * esc * h);
      if (stats::SampleBernoulli(&rng, p)) {
        net::FailureRecord r;
        r.pipe_id = s.pipe_id;
        r.segment_id = s.id;
        r.year = y;
        double t = rng.NextDouble();
        r.location = net::Point{s.start.x + t * (s.end.x - s.start.x),
                                s.start.y + t * (s.end.y - s.start.y)};
        r.mode = net::FailureMode::kBreak;
        history.Add(r);
        ++prior_failures;
        *(critical ? cwm_count : rwm_count) += 1.0;
      }
    }
  }
  return history;
}

FailureSimulator::Scales FailureSimulator::CalibrateScales(
    const net::Network& network) const {
  // Fixed point on simulated totals: the escalation dynamics make the
  // expectation history-dependent, so calibration runs the simulator
  // itself. A fixed calibration salt stream keeps this deterministic.
  const double target_cwm = config_.target_failures_cwm;
  const double target_rwm =
      std::max(config_.target_failures_all - config_.target_failures_cwm, 0.0);
  Scales scales;

  // Analytic warm start ignoring escalation.
  std::vector<double> raw_cwm, raw_rwm;
  for (const net::PipeSegment& s : network.segments()) {
    auto pipe = network.FindPipe(s.pipe_id);
    if (!pipe.ok()) continue;
    for (net::Year y = config_.observe_first; y <= config_.observe_last; ++y) {
      double h = RawIntensity(network, s, y);
      if (h <= 0.0) continue;
      ((*pipe)->IsCritical() ? raw_cwm : raw_rwm).push_back(h);
    }
  }
  auto warm = [](const std::vector<double>& raw, double target) {
    if (raw.empty() || target <= 0.0) return 1.0;
    double scale = 1.0;
    for (int iter = 0; iter < 8; ++iter) {
      double expected = 0.0;
      for (double h : raw) expected += -std::expm1(-scale * h);
      if (expected <= 0.0) break;
      scale *= target / expected;
    }
    return scale;
  };
  scales.cwm = warm(raw_cwm, target_cwm);
  scales.rwm = warm(raw_rwm, target_rwm);

  // Simulation-based refinement.
  for (int iter = 0; iter < 5; ++iter) {
    double cwm = 0.0, rwm = 0.0;
    SimulatePass(network, scales, /*salt=*/1000 + iter, &cwm, &rwm);
    if (cwm > 0.0 && target_cwm > 0.0) scales.cwm *= target_cwm / cwm;
    if (rwm > 0.0 && target_rwm > 0.0) scales.rwm *= target_rwm / rwm;
  }
  return scales;
}

Result<net::FailureHistory> FailureSimulator::Simulate(
    const net::Network& network) const {
  if (network.num_segments() == 0) {
    return Status::FailedPrecondition("network has no segments");
  }
  Scales scales = CalibrateScales(network);
  double cwm = 0.0, rwm = 0.0;
  return SimulatePass(network, scales, /*salt=*/0, &cwm, &rwm);
}

Result<RegionDataset> GenerateRegion(const RegionConfig& config) {
  NetworkGenerator generator(config);
  auto network = generator.Generate();
  if (!network.ok()) return network.status();
  FailureSimulator simulator(config);
  auto failures = simulator.Simulate(*network);
  if (!failures.ok()) return failures.status();
  RegionDataset dataset;
  dataset.config = config;
  dataset.network = std::move(*network);
  dataset.failures = std::move(*failures);
  return dataset;
}

}  // namespace data
}  // namespace piperisk
