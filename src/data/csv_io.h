#ifndef PIPERISK_DATA_CSV_IO_H_
#define PIPERISK_DATA_CSV_IO_H_

#include <string>

#include "common/result.h"
#include "data/dataset.h"

namespace piperisk {
namespace data {

/// Flat-file interchange for region datasets, so users can export the
/// synthetic data, edit it, or load their own utility extracts. Three files
/// per dataset:
///   <prefix>_pipes.csv     pipe id, category, material, coating, diameter,
///                          laid year
///   <prefix>_segments.csv  segment id, pipe id, index, endpoints, soil
///                          factors, env features
///   <prefix>_failures.csv  pipe id, segment id, year, x, y, mode
///
/// Region metadata (name, window) is carried in a fourth small file
/// <prefix>_meta.csv. Loads reconstruct a dataset that round-trips through
/// saves byte-identically (modulo float formatting, which uses %.6f).

Status SaveRegionDataset(const RegionDataset& dataset,
                         const std::string& prefix);

Result<RegionDataset> LoadRegionDataset(const std::string& prefix);

}  // namespace data
}  // namespace piperisk

#endif  // PIPERISK_DATA_CSV_IO_H_
