#ifndef PIPERISK_DATA_CSV_IO_H_
#define PIPERISK_DATA_CSV_IO_H_

#include <string>

#include "common/result.h"
#include "data/dataset.h"

namespace piperisk {
namespace data {

/// Flat-file interchange for region datasets, so users can export the
/// synthetic data, edit it, or load their own utility extracts. Three files
/// per dataset:
///   <prefix>_pipes.csv     pipe id, category, material, coating, diameter,
///                          laid year
///   <prefix>_segments.csv  segment id, pipe id, index, endpoints, soil
///                          factors, env features
///   <prefix>_failures.csv  pipe id, segment id, year, x, y, mode
///
/// Region metadata is carried in a fourth small key/value file
/// <prefix>_meta.csv with keys `name`, `population`, `area_km2`,
/// `observe_first` and `observe_last`; loads derive the region's
/// `density_per_km2` from population / area. Floats are written with %.6f,
/// and a load/save round trip reproduces the files byte-identically.
///
/// Parsing follows RFC 4180: records end in LF or CRLF, and a bare CR
/// outside a quoted field is rejected as a parse error rather than silently
/// dropped (quote the field to embed a CR). The CSV bundle does not persist
/// the generator's spatial side structures (soil-zone map, intersection
/// layer) — only what the models consume. `piperisk convert` translates a
/// bundle to and from the binary columnar shard format (data/columnar.h)
/// bit-exactly.

Status SaveRegionDataset(const RegionDataset& dataset,
                         const std::string& prefix);

Result<RegionDataset> LoadRegionDataset(const std::string& prefix);

}  // namespace data
}  // namespace piperisk

#endif  // PIPERISK_DATA_CSV_IO_H_
