#ifndef PIPERISK_DATA_FAILURE_SIMULATOR_H_
#define PIPERISK_DATA_FAILURE_SIMULATOR_H_

#include "common/result.h"
#include "data/dataset.h"
#include "data/generator_config.h"
#include "net/failure.h"
#include "net/network.h"

namespace piperisk {
namespace data {

/// Ground-truth failure process for the synthetic substrate.
///
/// Each segment-year carries a latent break intensity composed of
/// multiplicative factors (age-by-material wear-out, corrosion in aggressive
/// soils modulated by coating, expansive-clay stress on rigid small mains,
/// traffic loading near intersections, geology/landscape settlement) plus a
/// latent per-pipe quality cohort that is *not* observable through any
/// feature — the heterogeneity the nonparametric grouping must discover from
/// failure history alone. Failures are Bernoulli per segment-year on
/// p = 1 - exp(-intensity), matching the models' "at most one failure per
/// segment per year" observation model.
///
/// The simulator self-calibrates two global scales (CWM and RWM) so the
/// expected failure totals over the observation window match the
/// RegionConfig targets from Table 18.1.
class FailureSimulator {
 public:
  /// History-dependent hazard escalation: each past failure of a segment
  /// multiplies its subsequent intensity by `escalation` (capped at
  /// `max_escalated` prior failures). This models disturbed bedding and
  /// progressive joint damage — the empirical "previous breaks are the best
  /// predictor of future breaks" effect that makes failure-history models
  /// (HBP/DPMHBP) outperform covariate-only ones.
  struct Dynamics {
    double escalation = 3.2;
    int max_escalated = 4;
  };

  explicit FailureSimulator(RegionConfig config)
      : config_(std::move(config)) {}
  FailureSimulator(RegionConfig config, Dynamics dynamics)
      : config_(std::move(config)), dynamics_(dynamics) {}

  /// Calibrates scales against `network` and samples the failure log over
  /// the observation window. Deterministic in (config.seed, network).
  Result<net::FailureHistory> Simulate(const net::Network& network) const;

  /// The latent intensity of one segment in one year *excluding* the global
  /// calibration scale (exposed for tests and diagnostics).
  double RawIntensity(const net::Network& network,
                      const net::PipeSegment& segment, net::Year year) const;

  /// The calibrated scales used by the last Simulate call semantics: since
  /// Simulate is const and deterministic, CalibrateScales recomputes them.
  /// Calibration is by fixed-point on *simulated* totals (the escalation
  /// dynamics make the expectation history-dependent).
  struct Scales {
    double cwm = 1.0;
    double rwm = 1.0;
  };
  Scales CalibrateScales(const net::Network& network) const;

  /// Latent per-pipe quality-cohort multiplier (deterministic in
  /// (config.seed, pipe id)); exposed so tests can verify heterogeneity.
  double CohortMultiplier(net::PipeId pipe_id) const;

 private:
  /// One stochastic pass with the given scales; `counts` returns (cwm, rwm)
  /// failure totals. Used by both calibration and the final simulation.
  net::FailureHistory SimulatePass(const net::Network& network,
                                   const Scales& scales, std::uint64_t salt,
                                   double* cwm_count, double* rwm_count) const;

  RegionConfig config_;
  Dynamics dynamics_;
};

/// Convenience: generate a full region dataset (network + calibrated
/// failures) from a config.
Result<RegionDataset> GenerateRegion(const RegionConfig& config);

}  // namespace data
}  // namespace piperisk

#endif  // PIPERISK_DATA_FAILURE_SIMULATOR_H_
