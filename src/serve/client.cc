#include "serve/client.h"

namespace piperisk {
namespace serve {

Result<Client> Client::Connect(const std::string& host, int port) {
  PIPERISK_ASSIGN_OR_RETURN(Socket socket, ConnectTcp(host, port));
  return Client(std::move(socket));
}

Result<std::string> Client::RoundTrip(Verb verb, std::string_view payload) {
  if (Status st = WriteFrame(socket_, static_cast<std::uint8_t>(verb),
                             payload);
      !st.ok()) {
    return st;
  }
  PIPERISK_ASSIGN_OR_RETURN(ReadFrameResult read,
                            ReadFrame(socket_, kMaxResponseBody));
  if (read.eof) {
    return Status::IoError("server closed the connection without replying");
  }
  if (read.frame.tag != static_cast<std::uint8_t>(StatusByte::kOk)) {
    if (read.frame.tag > static_cast<std::uint8_t>(StatusByte::kInternal)) {
      return Status::ParseError("unknown response status byte " +
                                std::to_string(read.frame.tag));
    }
    PIPERISK_ASSIGN_OR_RETURN(std::string message,
                              DecodeErrorMessage(read.frame.payload));
    return ErrorToStatus(static_cast<StatusByte>(read.frame.tag), message);
  }
  return std::move(read.frame.payload);
}

Status Client::Ping() {
  return RoundTrip(Verb::kPing, std::string_view()).status();
}

Result<ScoreResponse> Client::Score(std::uint64_t pipe_id) {
  ScoreRequest request{pipe_id};
  PIPERISK_ASSIGN_OR_RETURN(
      std::string payload,
      RoundTrip(Verb::kScore, EncodeScoreRequest(request)));
  return DecodeScoreResponse(payload);
}

Result<TopKResponse> Client::TopK(std::uint32_t k,
                                  std::optional<double> budget_cost) {
  TopKRequest request;
  request.k = k;
  if (budget_cost.has_value()) {
    request.has_budget = true;
    request.budget_cost = *budget_cost;
  }
  PIPERISK_ASSIGN_OR_RETURN(std::string payload,
                            RoundTrip(Verb::kTopK, EncodeTopKRequest(request)));
  return DecodeTopKResponse(payload);
}

Result<WhatIfResponse> Client::WhatIf(std::uint64_t pipe_id, WhatIfMode mode,
                                      double value) {
  WhatIfRequest request{pipe_id, mode, value};
  PIPERISK_ASSIGN_OR_RETURN(
      std::string payload,
      RoundTrip(Verb::kWhatIf, EncodeWhatIfRequest(request)));
  return DecodeWhatIfResponse(payload);
}

Result<std::string> Client::Metrics() {
  return RoundTrip(Verb::kMetrics, std::string_view());
}

Result<ReloadResponse> Client::Reload() {
  PIPERISK_ASSIGN_OR_RETURN(std::string payload,
                            RoundTrip(Verb::kReload, std::string_view()));
  return DecodeReloadResponse(payload);
}

Result<DumpResponse> Client::Dump() {
  PIPERISK_ASSIGN_OR_RETURN(std::string payload,
                            RoundTrip(Verb::kDump, std::string_view()));
  return DecodeDumpResponse(payload);
}

Status Client::Shutdown() {
  return RoundTrip(Verb::kShutdown, std::string_view()).status();
}

}  // namespace serve
}  // namespace piperisk
