#ifndef PIPERISK_SERVE_PROTOCOL_H_
#define PIPERISK_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/socket.h"

namespace piperisk {
namespace serve {

/// Wire protocol of `piperisk serve`: length-prefixed binary frames over
/// TCP, little-endian fixed-width fields, doubles as IEEE-754 bit patterns
/// (the checkpoint subsystem's encoding conventions).
///
/// Frame layout (both directions):
///
///   u32  body_len     length of everything after this field
///   u8   tag          request: Verb; response: StatusByte
///   ...  payload      verb/status-specific, body_len - 1 bytes
///
/// A connection carries any number of request/response pairs in order. The
/// server answers a decodable-but-invalid request with a typed error frame
/// and keeps the connection; an unframeable byte stream (oversized length
/// prefix) or a mid-frame disconnect closes it.

/// Hard cap on request frames the server will read. Every real request is
/// tiny; anything larger is a corrupt or hostile length prefix.
inline constexpr std::uint32_t kMaxRequestBody = 1u << 20;  // 1 MiB

/// Hard cap on response frames the client will read. Sized for a full
/// per-pipe dump of a ~2M-pipe index.
inline constexpr std::uint32_t kMaxResponseBody = 1u << 26;  // 64 MiB

enum class Verb : std::uint8_t {
  kPing = 0,      ///< liveness probe, empty payload both ways
  kScore = 1,     ///< per-pipe score + percentile + rank
  kTopK = 2,      ///< top-K riskiest pipes, optionally budget-capped
  kWhatIf = 3,    ///< hypothetical re-rank of one pipe with a mutated score
  kMetrics = 4,   ///< telemetry snapshot as metrics JSON
  kReload = 5,    ///< rebuild + swap the snapshot from the serving artifact
  kShutdown = 6,  ///< acknowledge, then stop the server
  kDump = 7,      ///< full per-pipe table (id, score, rank, percentile)
};

/// First body byte of every response.
enum class StatusByte : std::uint8_t {
  kOk = 0,
  kUnknownVerb = 1,   ///< tag byte is not a Verb
  kMalformed = 2,     ///< payload failed to decode for the tagged verb
  kNotFound = 3,      ///< pipe id absent from the snapshot
  kInvalidArgument = 4,
  kUnavailable = 5,   ///< reload unsupported / failed; server still serving
  kInternal = 6,
};

// --- request payloads -------------------------------------------------------

struct ScoreRequest {
  std::uint64_t pipe_id = 0;
};

struct TopKRequest {
  std::uint32_t k = 0;
  /// When true, additionally cap the list at `budget_cost` cumulative
  /// inspection cost (unit_cost * length_m per pipe, the eval/planning cost
  /// model).
  bool has_budget = false;
  double budget_cost = 0.0;
};

enum class WhatIfMode : std::uint8_t {
  kAbsolute = 0,  ///< replace the pipe's score with `value`
  kScale = 1,     ///< multiply the pipe's score by `value`
};

struct WhatIfRequest {
  std::uint64_t pipe_id = 0;
  WhatIfMode mode = WhatIfMode::kAbsolute;
  double value = 0.0;
};

// --- response payloads ------------------------------------------------------

struct ScoreResponse {
  std::uint64_t generation = 0;
  double score = 0.0;
  double percentile = 0.0;
  std::uint64_t rank = 0;       ///< 0 = riskiest
  std::uint64_t num_pipes = 0;  ///< snapshot size the rank is relative to
};

struct TopKEntry {
  std::uint64_t pipe_id = 0;
  double score = 0.0;
};

struct TopKResponse {
  std::uint64_t generation = 0;
  std::vector<TopKEntry> entries;
};

struct WhatIfResponse {
  std::uint64_t generation = 0;
  double old_score = 0.0;
  double old_percentile = 0.0;
  std::uint64_t old_rank = 0;
  double new_score = 0.0;
  double new_percentile = 0.0;
  std::uint64_t new_rank = 0;
  std::uint64_t num_pipes = 0;
};

struct ReloadResponse {
  std::uint64_t generation = 0;
  std::uint64_t num_pipes = 0;
};

struct DumpEntry {
  std::uint64_t pipe_id = 0;
  double score = 0.0;
  std::uint64_t rank = 0;
  double percentile = 0.0;
};

struct DumpResponse {
  std::uint64_t generation = 0;
  std::vector<DumpEntry> entries;  ///< original (dataset) pipe order
};

struct ErrorResponse {
  StatusByte code = StatusByte::kInternal;
  std::string message;
};

// --- codec ------------------------------------------------------------------

std::string EncodeScoreRequest(const ScoreRequest& r);
std::string EncodeTopKRequest(const TopKRequest& r);
std::string EncodeWhatIfRequest(const WhatIfRequest& r);

Result<ScoreRequest> DecodeScoreRequest(std::string_view payload);
Result<TopKRequest> DecodeTopKRequest(std::string_view payload);
Result<WhatIfRequest> DecodeWhatIfRequest(std::string_view payload);

std::string EncodeScoreResponse(const ScoreResponse& r);
std::string EncodeTopKResponse(const TopKResponse& r);
std::string EncodeWhatIfResponse(const WhatIfResponse& r);
std::string EncodeReloadResponse(const ReloadResponse& r);
std::string EncodeDumpResponse(const DumpResponse& r);

Result<ScoreResponse> DecodeScoreResponse(std::string_view payload);
Result<TopKResponse> DecodeTopKResponse(std::string_view payload);
Result<WhatIfResponse> DecodeWhatIfResponse(std::string_view payload);
Result<ReloadResponse> DecodeReloadResponse(std::string_view payload);
Result<DumpResponse> DecodeDumpResponse(std::string_view payload);

std::string EncodeErrorResponse(const ErrorResponse& r);
/// Decodes the message text of an error body (everything after the status
/// byte, which the caller has already consumed).
Result<std::string> DecodeErrorMessage(std::string_view payload);

// --- frame IO ---------------------------------------------------------------

/// One decoded frame: the tag byte plus its raw payload.
struct Frame {
  std::uint8_t tag = 0;
  std::string payload;
};

/// Writes [len | tag | payload] in one buffered send.
Status WriteFrame(Socket& socket, std::uint8_t tag, std::string_view payload);

/// Reads one frame. Returns an empty optional-style result via
/// `eof = true` when the peer closed cleanly between frames; fails on a
/// mid-frame disconnect or a body length above `max_body`.
struct ReadFrameResult {
  bool eof = false;
  Frame frame;
};
Result<ReadFrameResult> ReadFrame(Socket& socket, std::uint32_t max_body);

/// Maps a typed error response to the local Status vocabulary.
Status ErrorToStatus(StatusByte code, const std::string& message);

/// Human-readable verb name for telemetry and logs.
const char* VerbName(Verb verb);

}  // namespace serve
}  // namespace piperisk

#endif  // PIPERISK_SERVE_PROTOCOL_H_
