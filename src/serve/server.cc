#include "serve/server.h"

#include <atomic>
#include <condition_variable>
#include <list>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/socket.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "serve/protocol.h"

namespace piperisk {
namespace serve {

namespace {

/// Telemetry handles resolved once; recording is wait-free per request.
struct ServeMetrics {
  telemetry::Counter* requests;
  telemetry::Counter* requests_by_verb[8];
  telemetry::Counter* protocol_errors;
  telemetry::Counter* request_errors;
  telemetry::Counter* reloads;
  telemetry::Counter* reload_failures;
  telemetry::Counter* connections_opened;
  telemetry::Counter* connections_closed;
  telemetry::Counter* bytes_out;
  telemetry::Gauge* active_connections;
  telemetry::Gauge* snapshot_generation;
  telemetry::Gauge* snapshot_pipes;
  telemetry::Histogram* request_us;
  telemetry::Histogram* reload_us;

  static const ServeMetrics& Get() {
    static const ServeMetrics metrics = [] {
      auto& r = telemetry::Registry::Global();
      ServeMetrics m;
      m.requests = r.GetCounter("serve.requests");
      for (int v = 0; v < 8; ++v) {
        m.requests_by_verb[v] = r.GetCounter(
            std::string("serve.requests.") + VerbName(static_cast<Verb>(v)));
      }
      m.protocol_errors = r.GetCounter("serve.protocol_errors");
      m.request_errors = r.GetCounter("serve.request_errors");
      m.reloads = r.GetCounter("serve.reloads");
      m.reload_failures = r.GetCounter("serve.reload_failures");
      m.connections_opened = r.GetCounter("serve.connections_opened");
      m.connections_closed = r.GetCounter("serve.connections_closed");
      m.bytes_out = r.GetCounter("serve.bytes_out");
      m.active_connections = r.GetGauge("serve.active_connections");
      m.snapshot_generation = r.GetGauge("serve.snapshot_generation");
      m.snapshot_pipes = r.GetGauge("serve.snapshot_pipes");
      m.request_us = r.GetHistogram("serve.request_us",
                                    telemetry::DefaultTimeBucketsUs());
      m.reload_us = r.GetHistogram("serve.reload_us",
                                   telemetry::DefaultTimeBucketsUs());
      return m;
    }();
    return metrics;
  }
};

StatusByte StatusToByte(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return StatusByte::kOk;
    case StatusCode::kNotFound:
      return StatusByte::kNotFound;
    case StatusCode::kInvalidArgument:
      return StatusByte::kInvalidArgument;
    case StatusCode::kParseError:
      return StatusByte::kMalformed;
    case StatusCode::kFailedPrecondition:
      return StatusByte::kUnavailable;
    default:
      return StatusByte::kInternal;
  }
}

}  // namespace

struct Server::Impl {
  ServerOptions options;
  Socket listener;
  int port = 0;
  std::unique_ptr<SnapshotStore> store;

  std::atomic<bool> stopping{false};

  std::mutex mu;
  std::condition_variable stop_cv;
  bool stop_requested = false;
  bool stopped = false;  // Stop() ran to completion

  /// One node per connection; the node (not the handler thread) owns the
  /// socket, so Stop() can shutdown() a blocked read without racing a
  /// close-and-reuse of the descriptor. Nodes are reaped (joined + erased)
  /// by the accept loop once `done`, and drained by Stop().
  struct Connection {
    Socket socket;
    std::thread thread;
    std::atomic<bool> done{false};
  };
  std::list<Connection> connections;  // guarded by mu

  std::mutex reload_mu;  // serialises reload_fn; readers never take this
  std::thread accept_thread;

  void PublishSnapshot(std::shared_ptr<const ScoreSnapshot> snapshot) {
    const ServeMetrics& m = ServeMetrics::Get();
    m.snapshot_generation->Set(static_cast<double>(snapshot->generation()));
    m.snapshot_pipes->Set(static_cast<double>(snapshot->num_pipes()));
    store->Publish(std::move(snapshot));
  }

  void RequestStop() {
    std::lock_guard<std::mutex> lock(mu);
    stop_requested = true;
    stop_cv.notify_all();
  }

  /// Handles one decoded request frame. Returns the response tag + payload.
  std::pair<StatusByte, std::string> Route(const Frame& frame) {
    const ServeMetrics& m = ServeMetrics::Get();
    if (frame.tag > static_cast<std::uint8_t>(Verb::kDump)) {
      m.protocol_errors->Increment();
      return {StatusByte::kUnknownVerb,
              EncodeErrorResponse(
                  {StatusByte::kUnknownVerb,
                   "unknown verb " + std::to_string(frame.tag)})};
    }
    const Verb verb = static_cast<Verb>(frame.tag);
    m.requests_by_verb[frame.tag]->Increment();

    // Exactly one snapshot acquire per request: every field of the response
    // comes from this one immutable index, so a concurrent reload can never
    // produce a torn (mixed-generation) answer.
    std::shared_ptr<const ScoreSnapshot> snapshot = store->Current();

    auto error = [&m](StatusByte code,
                      const std::string& text) -> std::pair<StatusByte,
                                                            std::string> {
      m.request_errors->Increment();
      if (code == StatusByte::kMalformed || code == StatusByte::kUnknownVerb) {
        m.protocol_errors->Increment();
      }
      return {code, EncodeErrorResponse({code, text})};
    };
    auto from_status = [&error](const Status& st) {
      return error(StatusToByte(st), st.message());
    };

    switch (verb) {
      case Verb::kPing:
        return {StatusByte::kOk, std::string()};
      case Verb::kScore: {
        auto request = DecodeScoreRequest(frame.payload);
        if (!request.ok()) {
          return error(StatusByte::kMalformed, request.status().message());
        }
        auto response = snapshot->Score(request->pipe_id);
        if (!response.ok()) return from_status(response.status());
        return {StatusByte::kOk, EncodeScoreResponse(*response)};
      }
      case Verb::kTopK: {
        auto request = DecodeTopKRequest(frame.payload);
        if (!request.ok()) {
          return error(StatusByte::kMalformed, request.status().message());
        }
        auto response = snapshot->TopK(*request);
        if (!response.ok()) return from_status(response.status());
        return {StatusByte::kOk, EncodeTopKResponse(*response)};
      }
      case Verb::kWhatIf: {
        auto request = DecodeWhatIfRequest(frame.payload);
        if (!request.ok()) {
          return error(StatusByte::kMalformed, request.status().message());
        }
        auto response = snapshot->WhatIf(*request);
        if (!response.ok()) return from_status(response.status());
        return {StatusByte::kOk, EncodeWhatIfResponse(*response)};
      }
      case Verb::kMetrics: {
        telemetry::RunMetadata meta;
        meta.command = "serve";
        meta.seed = options.seed;
        meta.git_describe = options.git_describe;
        std::ostringstream json;
        telemetry::WriteMetricsJson(telemetry::Registry::Global().Snapshot(),
                                    meta, json);
        return {StatusByte::kOk, json.str()};
      }
      case Verb::kReload: {
        if (!options.reload_fn) {
          return error(StatusByte::kUnavailable,
                       "server started without a reload source");
        }
        const ServeMetrics& metrics = ServeMetrics::Get();
        telemetry::ScopedTimer timer(metrics.reload_us, "serve.reload");
        // One reload at a time; the build runs here, off the read path —
        // concurrent queries keep answering from the old snapshot.
        std::lock_guard<std::mutex> lock(reload_mu);
        const std::uint64_t next = store->Current()->generation() + 1;
        auto rebuilt = options.reload_fn(next);
        if (!rebuilt.ok()) {
          metrics.reload_failures->Increment();
          return from_status(rebuilt.status());
        }
        PublishSnapshot(*rebuilt);
        metrics.reloads->Increment();
        ReloadResponse response;
        response.generation = (*rebuilt)->generation();
        response.num_pipes = (*rebuilt)->num_pipes();
        return {StatusByte::kOk, EncodeReloadResponse(response)};
      }
      case Verb::kShutdown:
        return {StatusByte::kOk, std::string()};
      case Verb::kDump: {
        auto response = snapshot->Dump();
        if (!response.ok()) return from_status(response.status());
        return {StatusByte::kOk, EncodeDumpResponse(*response)};
      }
    }
    return error(StatusByte::kInternal, "unroutable verb");
  }

  void HandleConnection(Connection* node) {
    const ServeMetrics& m = ServeMetrics::Get();
    m.connections_opened->Increment();
    m.active_connections->Set(
        static_cast<double>(m.connections_opened->Value() -
                            m.connections_closed->Value()));
    for (;;) {
      auto read = ReadFrame(node->socket, kMaxRequestBody);
      if (!read.ok()) {
        // Unframeable stream (oversized length prefix) or mid-frame
        // disconnect: answer if the peer still listens, then drop the
        // connection — there is no way back to a frame boundary.
        m.protocol_errors->Increment();
        ErrorResponse err{StatusByte::kMalformed, read.status().message()};
        (void)WriteFrame(node->socket,
                         static_cast<std::uint8_t>(StatusByte::kMalformed),
                         EncodeErrorResponse(err));
        break;
      }
      if (read->eof) break;
      bool shutdown_requested =
          read->frame.tag == static_cast<std::uint8_t>(Verb::kShutdown);
      std::pair<StatusByte, std::string> response;
      {
        telemetry::ScopedTimer timer(m.request_us, "serve.request");
        m.requests->Increment();
        response = Route(read->frame);
      }
      m.bytes_out->Add(static_cast<std::int64_t>(response.second.size() + 5));
      if (!WriteFrame(node->socket,
                      static_cast<std::uint8_t>(response.first),
                      response.second)
               .ok()) {
        break;
      }
      if (shutdown_requested) {
        PIPERISK_LOG(kInfo) << "serve: shutdown requested by client";
        RequestStop();
        break;
      }
    }
    // FIN the peer now so clients see a deterministic EOF; the descriptor
    // itself is closed later (reap / Stop) — never here, so Stop()'s
    // shutdown of a parked read can't hit a reused fd.
    node->socket.ShutdownBoth();
    m.connections_closed->Increment();
    m.active_connections->Set(
        static_cast<double>(m.connections_opened->Value() -
                            m.connections_closed->Value()));
    node->done.store(true, std::memory_order_release);
  }

  void AcceptLoop() {
    for (;;) {
      auto conn = AcceptConn(listener);
      if (!conn.ok()) {
        if (stopping.load(std::memory_order_acquire)) break;
        PIPERISK_LOG(kWarning) << "serve: accept failed: "
                              << conn.status().ToString();
        break;
      }
      std::lock_guard<std::mutex> lock(mu);
      if (stopping.load(std::memory_order_acquire)) break;
      // Reap finished connections so long-lived servers do not accumulate
      // dead worker threads.
      for (auto it = connections.begin(); it != connections.end();) {
        if (it->done.load(std::memory_order_acquire)) {
          it->thread.join();
          it = connections.erase(it);
        } else {
          ++it;
        }
      }
      connections.emplace_back();
      Connection* node = &connections.back();
      node->socket = std::move(*conn);
      node->thread = std::thread([this, node] { HandleConnection(node); });
    }
  }
};

Result<std::unique_ptr<Server>> Server::Start(
    const ServerOptions& options,
    std::shared_ptr<const ScoreSnapshot> initial) {
  if (initial == nullptr) {
    return Status::InvalidArgument("serve needs an initial snapshot");
  }
  std::unique_ptr<Server> server(new Server());
  server->impl_ = std::make_unique<Impl>();
  Impl& impl = *server->impl_;
  impl.options = options;
  PIPERISK_ASSIGN_OR_RETURN(
      impl.listener, ListenTcp(options.host, options.port, options.backlog));
  PIPERISK_ASSIGN_OR_RETURN(impl.port, BoundPort(impl.listener));
  impl.store = std::make_unique<SnapshotStore>(initial);
  impl.PublishSnapshot(std::move(initial));
  impl.accept_thread = std::thread([p = server->impl_.get()] {
    p->AcceptLoop();
  });
  return server;
}

Server::~Server() { Stop(); }

int Server::port() const { return impl_->port; }

void Server::Publish(std::shared_ptr<const ScoreSnapshot> snapshot) {
  impl_->PublishSnapshot(std::move(snapshot));
}

std::uint64_t Server::generation() const {
  return impl_->store->Current()->generation();
}

void Server::WaitUntilStopped() {
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->stop_cv.wait(lock, [this] { return impl_->stop_requested; });
}

void Server::Stop() {
  if (impl_ == nullptr) return;
  Impl& impl = *impl_;
  {
    std::lock_guard<std::mutex> lock(impl.mu);
    if (impl.stopped) return;
    impl.stopped = true;
    impl.stop_requested = true;
    impl.stop_cv.notify_all();
  }
  impl.stopping.store(true, std::memory_order_release);
  impl.listener.ShutdownBoth();
  if (impl.accept_thread.joinable()) impl.accept_thread.join();
  // The accept loop has exited, so `connections` is stable now: unblock
  // every parked read, then join and destroy each worker.
  for (auto& conn : impl.connections) {
    conn.socket.ShutdownBoth();
  }
  for (auto& conn : impl.connections) {
    if (conn.thread.joinable()) conn.thread.join();
  }
  impl.connections.clear();
  impl.listener.Close();
}

}  // namespace serve
}  // namespace piperisk
