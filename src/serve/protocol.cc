#include "serve/protocol.h"

#include <bit>
#include <cstring>

namespace piperisk {
namespace serve {

namespace {

/// Little-endian append/read helpers (the checkpoint codec's conventions,
/// restated here so the wire format never depends on another subsystem's
/// file format).
class Writer {
 public:
  void PutU8(std::uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void PutU32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  void PutU64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  void PutDouble(double v) { PutU64(std::bit_cast<std::uint64_t>(v)); }
  void PutBytes(std::string_view bytes) {
    buffer_.append(bytes.data(), bytes.size());
  }

  std::string Take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  Result<std::uint8_t> U8() {
    if (pos_ + 1 > data_.size()) return Truncated();
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  Result<std::uint32_t> U32() {
    if (pos_ + 4 > data_.size()) return Truncated();
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data_[pos_ + static_cast<size_t>(i)]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  Result<std::uint64_t> U64() {
    if (pos_ + 8 > data_.size()) return Truncated();
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + static_cast<size_t>(i)]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  Result<double> Double() {
    PIPERISK_ASSIGN_OR_RETURN(std::uint64_t v, U64());
    return std::bit_cast<double>(v);
  }
  /// Element count bounded by the remaining payload, so a corrupt count
  /// fails cleanly instead of triggering a huge allocation.
  Result<std::size_t> Count(std::size_t min_element_bytes) {
    PIPERISK_ASSIGN_OR_RETURN(std::uint32_t v, U32());
    if (static_cast<std::size_t>(v) * min_element_bytes >
        data_.size() - pos_) {
      return Status::ParseError("frame element count exceeds payload");
    }
    return static_cast<std::size_t>(v);
  }

  Status ExpectDone() const {
    if (pos_ != data_.size()) {
      return Status::ParseError("trailing bytes after frame payload");
    }
    return Status::OK();
  }

  std::string_view Rest() const { return data_.substr(pos_); }

 private:
  static Status Truncated() {
    return Status::ParseError("frame payload truncated");
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string EncodeScoreRequest(const ScoreRequest& r) {
  Writer w;
  w.PutU64(r.pipe_id);
  return w.Take();
}

std::string EncodeTopKRequest(const TopKRequest& r) {
  Writer w;
  w.PutU32(r.k);
  w.PutU8(r.has_budget ? 1 : 0);
  w.PutDouble(r.budget_cost);
  return w.Take();
}

std::string EncodeWhatIfRequest(const WhatIfRequest& r) {
  Writer w;
  w.PutU64(r.pipe_id);
  w.PutU8(static_cast<std::uint8_t>(r.mode));
  w.PutDouble(r.value);
  return w.Take();
}

Result<ScoreRequest> DecodeScoreRequest(std::string_view payload) {
  Reader reader(payload);
  ScoreRequest r;
  PIPERISK_ASSIGN_OR_RETURN(r.pipe_id, reader.U64());
  if (Status st = reader.ExpectDone(); !st.ok()) return st;
  return r;
}

Result<TopKRequest> DecodeTopKRequest(std::string_view payload) {
  Reader reader(payload);
  TopKRequest r;
  PIPERISK_ASSIGN_OR_RETURN(r.k, reader.U32());
  PIPERISK_ASSIGN_OR_RETURN(std::uint8_t has_budget, reader.U8());
  if (has_budget > 1) {
    return Status::ParseError("has_budget must be 0 or 1");
  }
  r.has_budget = has_budget == 1;
  PIPERISK_ASSIGN_OR_RETURN(r.budget_cost, reader.Double());
  if (Status st = reader.ExpectDone(); !st.ok()) return st;
  return r;
}

Result<WhatIfRequest> DecodeWhatIfRequest(std::string_view payload) {
  Reader reader(payload);
  WhatIfRequest r;
  PIPERISK_ASSIGN_OR_RETURN(r.pipe_id, reader.U64());
  PIPERISK_ASSIGN_OR_RETURN(std::uint8_t mode, reader.U8());
  if (mode > static_cast<std::uint8_t>(WhatIfMode::kScale)) {
    return Status::ParseError("unknown what-if mode " + std::to_string(mode));
  }
  r.mode = static_cast<WhatIfMode>(mode);
  PIPERISK_ASSIGN_OR_RETURN(r.value, reader.Double());
  if (Status st = reader.ExpectDone(); !st.ok()) return st;
  return r;
}

std::string EncodeScoreResponse(const ScoreResponse& r) {
  Writer w;
  w.PutU64(r.generation);
  w.PutDouble(r.score);
  w.PutDouble(r.percentile);
  w.PutU64(r.rank);
  w.PutU64(r.num_pipes);
  return w.Take();
}

std::string EncodeTopKResponse(const TopKResponse& r) {
  Writer w;
  w.PutU64(r.generation);
  w.PutU32(static_cast<std::uint32_t>(r.entries.size()));
  for (const TopKEntry& e : r.entries) {
    w.PutU64(e.pipe_id);
    w.PutDouble(e.score);
  }
  return w.Take();
}

std::string EncodeWhatIfResponse(const WhatIfResponse& r) {
  Writer w;
  w.PutU64(r.generation);
  w.PutDouble(r.old_score);
  w.PutDouble(r.old_percentile);
  w.PutU64(r.old_rank);
  w.PutDouble(r.new_score);
  w.PutDouble(r.new_percentile);
  w.PutU64(r.new_rank);
  w.PutU64(r.num_pipes);
  return w.Take();
}

std::string EncodeReloadResponse(const ReloadResponse& r) {
  Writer w;
  w.PutU64(r.generation);
  w.PutU64(r.num_pipes);
  return w.Take();
}

std::string EncodeDumpResponse(const DumpResponse& r) {
  Writer w;
  w.PutU64(r.generation);
  w.PutU32(static_cast<std::uint32_t>(r.entries.size()));
  for (const DumpEntry& e : r.entries) {
    w.PutU64(e.pipe_id);
    w.PutDouble(e.score);
    w.PutU64(e.rank);
    w.PutDouble(e.percentile);
  }
  return w.Take();
}

Result<ScoreResponse> DecodeScoreResponse(std::string_view payload) {
  Reader reader(payload);
  ScoreResponse r;
  PIPERISK_ASSIGN_OR_RETURN(r.generation, reader.U64());
  PIPERISK_ASSIGN_OR_RETURN(r.score, reader.Double());
  PIPERISK_ASSIGN_OR_RETURN(r.percentile, reader.Double());
  PIPERISK_ASSIGN_OR_RETURN(r.rank, reader.U64());
  PIPERISK_ASSIGN_OR_RETURN(r.num_pipes, reader.U64());
  if (Status st = reader.ExpectDone(); !st.ok()) return st;
  return r;
}

Result<TopKResponse> DecodeTopKResponse(std::string_view payload) {
  Reader reader(payload);
  TopKResponse r;
  PIPERISK_ASSIGN_OR_RETURN(r.generation, reader.U64());
  PIPERISK_ASSIGN_OR_RETURN(std::size_t count, reader.Count(16));
  r.entries.resize(count);
  for (TopKEntry& e : r.entries) {
    PIPERISK_ASSIGN_OR_RETURN(e.pipe_id, reader.U64());
    PIPERISK_ASSIGN_OR_RETURN(e.score, reader.Double());
  }
  if (Status st = reader.ExpectDone(); !st.ok()) return st;
  return r;
}

Result<WhatIfResponse> DecodeWhatIfResponse(std::string_view payload) {
  Reader reader(payload);
  WhatIfResponse r;
  PIPERISK_ASSIGN_OR_RETURN(r.generation, reader.U64());
  PIPERISK_ASSIGN_OR_RETURN(r.old_score, reader.Double());
  PIPERISK_ASSIGN_OR_RETURN(r.old_percentile, reader.Double());
  PIPERISK_ASSIGN_OR_RETURN(r.old_rank, reader.U64());
  PIPERISK_ASSIGN_OR_RETURN(r.new_score, reader.Double());
  PIPERISK_ASSIGN_OR_RETURN(r.new_percentile, reader.Double());
  PIPERISK_ASSIGN_OR_RETURN(r.new_rank, reader.U64());
  PIPERISK_ASSIGN_OR_RETURN(r.num_pipes, reader.U64());
  if (Status st = reader.ExpectDone(); !st.ok()) return st;
  return r;
}

Result<ReloadResponse> DecodeReloadResponse(std::string_view payload) {
  Reader reader(payload);
  ReloadResponse r;
  PIPERISK_ASSIGN_OR_RETURN(r.generation, reader.U64());
  PIPERISK_ASSIGN_OR_RETURN(r.num_pipes, reader.U64());
  if (Status st = reader.ExpectDone(); !st.ok()) return st;
  return r;
}

Result<DumpResponse> DecodeDumpResponse(std::string_view payload) {
  Reader reader(payload);
  DumpResponse r;
  PIPERISK_ASSIGN_OR_RETURN(r.generation, reader.U64());
  PIPERISK_ASSIGN_OR_RETURN(std::size_t count, reader.Count(32));
  r.entries.resize(count);
  for (DumpEntry& e : r.entries) {
    PIPERISK_ASSIGN_OR_RETURN(e.pipe_id, reader.U64());
    PIPERISK_ASSIGN_OR_RETURN(e.score, reader.Double());
    PIPERISK_ASSIGN_OR_RETURN(e.rank, reader.U64());
    PIPERISK_ASSIGN_OR_RETURN(e.percentile, reader.Double());
  }
  if (Status st = reader.ExpectDone(); !st.ok()) return st;
  return r;
}

std::string EncodeErrorResponse(const ErrorResponse& r) {
  Writer w;
  w.PutBytes(r.message);
  return w.Take();
}

Result<std::string> DecodeErrorMessage(std::string_view payload) {
  return std::string(payload);
}

Status WriteFrame(Socket& socket, std::uint8_t tag,
                  std::string_view payload) {
  Writer w;
  w.PutU32(static_cast<std::uint32_t>(payload.size() + 1));
  w.PutU8(tag);
  w.PutBytes(payload);
  const std::string frame = w.Take();
  return socket.WriteAll(frame.data(), frame.size());
}

Result<ReadFrameResult> ReadFrame(Socket& socket, std::uint32_t max_body) {
  unsigned char header[4];
  PIPERISK_ASSIGN_OR_RETURN(bool got, socket.ReadExact(header, 4));
  ReadFrameResult out;
  if (!got) {
    out.eof = true;
    return out;
  }
  std::uint32_t body_len = 0;
  for (int i = 0; i < 4; ++i) {
    body_len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  }
  if (body_len < 1) {
    return Status::ParseError("frame body must hold at least the tag byte");
  }
  if (body_len > max_body) {
    return Status::ParseError("frame body of " + std::to_string(body_len) +
                              " bytes exceeds the " +
                              std::to_string(max_body) + "-byte limit");
  }
  std::string body(body_len, '\0');
  PIPERISK_ASSIGN_OR_RETURN(bool got_body,
                            socket.ReadExact(body.data(), body.size()));
  if (!got_body) {
    return Status::IoError("connection closed mid-frame");
  }
  out.frame.tag = static_cast<std::uint8_t>(body[0]);
  out.frame.payload = body.substr(1);
  return out;
}

Status ErrorToStatus(StatusByte code, const std::string& message) {
  switch (code) {
    case StatusByte::kOk:
      return Status::OK();
    case StatusByte::kUnknownVerb:
    case StatusByte::kMalformed:
      return Status::ParseError(message);
    case StatusByte::kNotFound:
      return Status::NotFound(message);
    case StatusByte::kInvalidArgument:
      return Status::InvalidArgument(message);
    case StatusByte::kUnavailable:
      return Status::FailedPrecondition(message);
    case StatusByte::kInternal:
      break;
  }
  return Status::IoError(message.empty() ? "server internal error" : message);
}

const char* VerbName(Verb verb) {
  switch (verb) {
    case Verb::kPing:
      return "ping";
    case Verb::kScore:
      return "score";
    case Verb::kTopK:
      return "topk";
    case Verb::kWhatIf:
      return "whatif";
    case Verb::kMetrics:
      return "metrics";
    case Verb::kReload:
      return "reload";
    case Verb::kShutdown:
      return "shutdown";
    case Verb::kDump:
      return "dump";
  }
  return "unknown";
}

}  // namespace serve
}  // namespace piperisk
