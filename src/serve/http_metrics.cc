#include "serve/http_metrics.h"

#include <sys/socket.h>
#include <sys/time.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/socket.h"
#include "common/strings.h"

namespace piperisk {
namespace serve {

std::string PrometheusName(const std::string& name) {
  std::string out = "piperisk_";
  for (char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_' || ch == ':';
    out.push_back(ok ? ch : '_');
  }
  return out;
}

std::string PrometheusEscapeLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char ch : value) {
    switch (ch) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(ch);
    }
  }
  return out;
}

std::string PrometheusEscapeHelp(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char ch : value) {
    switch (ch) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(ch);
    }
  }
  return out;
}

std::string PrometheusValue(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  // Shortest form that round-trips: %g first, full precision as fallback.
  std::string s = StrFormat("%g", value);
  if (std::strtod(s.c_str(), nullptr) != value) {
    s = StrFormat("%.17g", value);
  }
  return s;
}

namespace {

/// Emits "# HELP"/"# TYPE" for a family, once; false when the sanitised name
/// collides with an already-emitted family (caller must skip the samples).
bool EmitFamilyHeader(const std::string& prom_name, const std::string& help,
                      const char* type, std::set<std::string>* emitted,
                      std::ostringstream* out) {
  if (!emitted->insert(prom_name).second) {
    *out << "# piperisk: dropped '" << PrometheusEscapeHelp(help)
         << "' (sanitised name collides with " << prom_name << ")\n";
    return false;
  }
  *out << "# HELP " << prom_name << " " << PrometheusEscapeHelp(help) << "\n";
  *out << "# TYPE " << prom_name << " " << type << "\n";
  return true;
}

/// Quantile family name: a trailing "_us" unit suffix folds into the
/// quantile marker so serve.request_us exposes piperisk_serve_request_p99_us
/// rather than ..._us_p99.
std::string QuantileFamily(const std::string& prom_name, const char* marker) {
  const std::string us = "_us";
  if (prom_name.size() > us.size() &&
      prom_name.compare(prom_name.size() - us.size(), us.size(), us) == 0) {
    return prom_name.substr(0, prom_name.size() - us.size()) + "_" + marker +
           us;
  }
  return prom_name + "_" + marker;
}

}  // namespace

std::string FormatPrometheusText(const telemetry::MetricsSnapshot& snapshot,
                                 const telemetry::RunMetadata& metadata,
                                 const std::vector<WindowedView>& windows) {
  std::ostringstream out;
  std::set<std::string> emitted;

  EmitFamilyHeader("piperisk_build", "Build and run metadata (value fixed 1).",
                   "gauge", &emitted, &out);
  out << "piperisk_build{version=\""
      << PrometheusEscapeLabel(metadata.git_describe) << "\",command=\""
      << PrometheusEscapeLabel(metadata.command) << "\"} 1\n";

  for (const telemetry::CounterSample& c : snapshot.counters) {
    const std::string prom = PrometheusName(c.name);
    if (!EmitFamilyHeader(prom, "piperisk counter " + c.name, "counter",
                          &emitted, &out)) {
      continue;
    }
    out << prom << " " << c.value << "\n";
  }

  for (const telemetry::GaugeSample& g : snapshot.gauges) {
    const std::string prom = PrometheusName(g.name);
    if (!EmitFamilyHeader(prom, "piperisk gauge " + g.name, "gauge", &emitted,
                          &out)) {
      continue;
    }
    out << prom << " " << PrometheusValue(g.value) << "\n";
  }

  for (const telemetry::HistogramSample& h : snapshot.histograms) {
    const std::string prom = PrometheusName(h.name);
    if (!EmitFamilyHeader(prom, "piperisk histogram " + h.name, "histogram",
                          &emitted, &out)) {
      continue;
    }
    std::int64_t cumulative = 0;
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      cumulative += b < h.counts.size() ? h.counts[b] : 0;
      out << prom << "_bucket{le=\"" << PrometheusValue(h.bounds[b]) << "\"} "
          << cumulative << "\n";
    }
    out << prom << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    out << prom << "_sum " << PrometheusValue(h.sum) << "\n";
    out << prom << "_count " << h.count << "\n";
  }

  // Windowed views: one family per counter rate / histogram quantile, one
  // labelled series per window.
  if (!windows.empty()) {
    const telemetry::WindowDelta& first = windows.front().window;
    for (std::size_t i = 0; i < first.delta.counters.size(); ++i) {
      const std::string& name = first.delta.counters[i].name;
      const std::string family = PrometheusName(name) + "_rate";
      if (!EmitFamilyHeader(family,
                            "piperisk windowed per-second rate of " + name,
                            "gauge", &emitted, &out)) {
        continue;
      }
      for (const WindowedView& view : windows) {
        if (i >= view.window.delta.counters.size()) continue;
        const telemetry::CounterSample& c = view.window.delta.counters[i];
        const double rate =
            view.window.seconds > 0.0
                ? static_cast<double>(c.value) / view.window.seconds
                : 0.0;
        out << family << "{window=\"" << PrometheusEscapeLabel(view.label)
            << "\"} " << PrometheusValue(rate) << "\n";
      }
    }
    for (std::size_t i = 0; i < first.delta.histograms.size(); ++i) {
      const std::string& name = first.delta.histograms[i].name;
      const std::string prom = PrometheusName(name);
      const struct {
        const char* marker;
        double q;
      } quantiles[] = {{"p50", 0.50}, {"p99", 0.99}};
      for (const auto& quantile : quantiles) {
        const std::string family = QuantileFamily(prom, quantile.marker);
        if (!EmitFamilyHeader(family,
                              StrFormat("piperisk windowed %s of %s",
                                        quantile.marker, name.c_str()),
                              "gauge", &emitted, &out)) {
          continue;
        }
        for (const WindowedView& view : windows) {
          if (i >= view.window.delta.histograms.size()) continue;
          const double value = telemetry::EstimateQuantile(
              view.window.delta.histograms[i], quantile.q);
          out << family << "{window=\"" << PrometheusEscapeLabel(view.label)
              << "\"} " << PrometheusValue(value) << "\n";
        }
      }
    }
  }

  return out.str();
}

// --- HTTP server ------------------------------------------------------------

struct MetricsHttpServer::Impl {
  MetricsHttpOptions options;
  Socket listener;
  int port = 0;

  std::atomic<bool> stopping{false};
  std::mutex mu;
  std::condition_variable cv;
  std::thread accept_thread;
  std::thread sampler_thread;

  telemetry::MetricsWindow window;

  telemetry::Counter* scrapes =
      telemetry::Registry::Global().GetCounter("serve.metrics_http.requests");

  void AcceptLoop();
  void SamplerLoop();
  void Handle(Socket conn);
  std::string RenderMetrics();
};

Result<std::unique_ptr<MetricsHttpServer>> MetricsHttpServer::Start(
    const MetricsHttpOptions& options) {
  auto server = std::unique_ptr<MetricsHttpServer>(new MetricsHttpServer());
  server->impl_ = std::make_unique<Impl>();
  Impl* impl = server->impl_.get();
  impl->options = options;

  PIPERISK_ASSIGN_OR_RETURN(impl->listener,
                            ListenTcp(options.host, options.port, 16));
  PIPERISK_ASSIGN_OR_RETURN(impl->port, BoundPort(impl->listener));

  // Seed the window so the first scrape has a baseline to diff against.
  impl->window.RecordNow();
  impl->accept_thread = std::thread([impl] { impl->AcceptLoop(); });
  if (options.sample_period_s > 0.0) {
    impl->sampler_thread = std::thread([impl] { impl->SamplerLoop(); });
  }
  return server;
}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

int MetricsHttpServer::port() const { return impl_->port; }

void MetricsHttpServer::Stop() {
  if (impl_ == nullptr || impl_->stopping.exchange(true)) return;
  impl_->cv.notify_all();
  impl_->listener.ShutdownBoth();
  if (impl_->accept_thread.joinable()) impl_->accept_thread.join();
  if (impl_->sampler_thread.joinable()) impl_->sampler_thread.join();
  impl_->listener.Close();
}

void MetricsHttpServer::Impl::SamplerLoop() {
  std::unique_lock<std::mutex> lock(mu);
  while (!stopping.load(std::memory_order_relaxed)) {
    cv.wait_for(lock, std::chrono::duration<double>(options.sample_period_s));
    if (stopping.load(std::memory_order_relaxed)) break;
    lock.unlock();
    window.RecordNow();
    lock.lock();
  }
}

void MetricsHttpServer::Impl::AcceptLoop() {
  while (!stopping.load(std::memory_order_relaxed)) {
    auto conn = AcceptConn(listener);
    if (!conn.ok()) {
      if (stopping.load(std::memory_order_relaxed)) break;
      continue;  // transient accept failure (e.g. client reset in backlog)
    }
    Handle(std::move(*conn));
  }
}

std::string MetricsHttpServer::Impl::RenderMetrics() {
  window.RecordNow();
  std::vector<WindowedView> views;
  views.reserve(options.windows_s.size());
  for (double seconds : options.windows_s) {
    WindowedView view;
    view.label = StrFormat("%gs", seconds);
    view.window = window.Over(seconds);
    views.push_back(std::move(view));
  }
  return FormatPrometheusText(telemetry::Registry::Global().Snapshot(),
                              options.metadata, views);
}

void MetricsHttpServer::Impl::Handle(Socket conn) {
  // One request per connection; a stalled or byte-dribbling scraper is cut
  // off by the receive timeout instead of wedging the accept loop.
  struct timeval timeout;
  timeout.tv_sec = 5;
  timeout.tv_usec = 0;
  ::setsockopt(conn.fd(), SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  std::string request;
  char buffer[1024];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < 8192) {
    const ssize_t n = ::recv(conn.fd(), buffer, sizeof(buffer), 0);
    if (n <= 0) return;  // timeout, reset, or EOF before a full request
    request.append(buffer, static_cast<std::size_t>(n));
  }

  std::string method, path;
  {
    std::istringstream line(request.substr(0, request.find("\r\n")));
    line >> method >> path;
  }

  scrapes->Increment();
  std::string status = "200 OK";
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  if (method != "GET") {
    status = "405 Method Not Allowed";
    body = "method not allowed\n";
  } else if (path == "/metrics") {
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    body = RenderMetrics();
  } else if (path == "/healthz") {
    body = "ok\n";
  } else {
    status = "404 Not Found";
    body = "not found\n";
  }

  const std::string response = StrFormat(
      "HTTP/1.1 %s\r\n"
      "Content-Type: %s\r\n"
      "Content-Length: %zu\r\n"
      "Connection: close\r\n"
      "\r\n",
      status.c_str(), content_type.c_str(), body.size());
  (void)conn.WriteAll(response.data(), response.size());
  (void)conn.WriteAll(body.data(), body.size());
}

}  // namespace serve
}  // namespace piperisk
