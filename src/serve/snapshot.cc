#include "serve/snapshot.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>

namespace piperisk {
namespace serve {

Result<std::shared_ptr<const ScoreSnapshot>> ScoreSnapshot::Build(
    std::vector<std::uint64_t> pipe_ids, std::vector<double> scores,
    std::vector<double> lengths_m, std::uint64_t generation,
    double unit_cost) {
  const std::size_t n = pipe_ids.size();
  if (n == 0) {
    return Status::InvalidArgument("snapshot needs at least one pipe");
  }
  if (scores.size() != n || lengths_m.size() != n) {
    return Status::InvalidArgument("snapshot array length mismatch");
  }
  if (!(unit_cost > 0.0) || !std::isfinite(unit_cost)) {
    return Status::InvalidArgument("unit cost must be finite and > 0");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (std::isnan(scores[i])) {
      return Status::InvalidArgument("NaN score for pipe id " +
                                     std::to_string(pipe_ids[i]));
    }
    if (!std::isfinite(lengths_m[i]) || lengths_m[i] < 0.0) {
      return Status::InvalidArgument("bad length for pipe id " +
                                     std::to_string(pipe_ids[i]));
    }
  }

  std::shared_ptr<ScoreSnapshot> snap(new ScoreSnapshot());
  snap->generation_ = generation;
  snap->unit_cost_ = unit_cost;
  snap->id_to_index_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto [it, inserted] =
        snap->id_to_index_.emplace(pipe_ids[i], static_cast<std::uint32_t>(i));
    (void)it;
    if (!inserted) {
      return Status::InvalidArgument("duplicate pipe id " +
                                     std::to_string(pipe_ids[i]));
    }
  }

  std::vector<eval::ScoredPipe> rows(n);
  for (std::size_t i = 0; i < n; ++i) {
    rows[i].score = scores[i];
    rows[i].failures = 0;  // serving needs ranks, not detection metrics
    rows[i].length_m = lengths_m[i];
  }
  eval::RankOptions rank_options;
  rank_options.num_threads = 0;  // build off the serving path; use the pool
  snap->ranked_ = eval::RankedScores::Build(rows, rank_options);
  snap->sorted_scores_.resize(n);
  for (std::size_t rank = 0; rank < n; ++rank) {
    snap->sorted_scores_[rank] = scores[snap->ranked_.order()[rank]];
  }
  snap->pipe_ids_ = std::move(pipe_ids);
  snap->scores_ = std::move(scores);
  return std::shared_ptr<const ScoreSnapshot>(std::move(snap));
}

Result<ScoreResponse> ScoreSnapshot::Score(std::uint64_t pipe_id) const {
  auto it = id_to_index_.find(pipe_id);
  if (it == id_to_index_.end()) {
    return Status::NotFound("pipe id " + std::to_string(pipe_id) +
                            " not in the score index");
  }
  ScoreResponse out;
  out.generation = generation_;
  out.score = scores_[it->second];
  PIPERISK_ASSIGN_OR_RETURN(std::uint32_t rank, ranked_.RankOf(it->second));
  out.rank = rank;
  PIPERISK_ASSIGN_OR_RETURN(out.percentile, ranked_.PercentileOf(it->second));
  out.num_pipes = num_pipes();
  return out;
}

Result<TopKResponse> ScoreSnapshot::TopK(const TopKRequest& request) const {
  std::vector<std::uint32_t> top;
  if (request.has_budget) {
    if (!std::isfinite(request.budget_cost) || request.budget_cost < 0.0) {
      return Status::InvalidArgument("budget must be finite and >= 0");
    }
    // The budget is money; the ranking meters length, so convert once.
    PIPERISK_ASSIGN_OR_RETURN(
        top, ranked_.TopKUnderCost(eval::BudgetMode::kLength,
                                   request.budget_cost / unit_cost_,
                                   request.k));
  } else {
    PIPERISK_ASSIGN_OR_RETURN(top, ranked_.TopK(request.k));
  }
  TopKResponse out;
  out.generation = generation_;
  out.entries.resize(top.size());
  for (std::size_t i = 0; i < top.size(); ++i) {
    out.entries[i].pipe_id = pipe_ids_[top[i]];
    out.entries[i].score = scores_[top[i]];
  }
  return out;
}

Result<WhatIfResponse> ScoreSnapshot::WhatIf(
    const WhatIfRequest& request) const {
  auto it = id_to_index_.find(request.pipe_id);
  if (it == id_to_index_.end()) {
    return Status::NotFound("pipe id " + std::to_string(request.pipe_id) +
                            " not in the score index");
  }
  const std::uint32_t index = it->second;
  const double old_score = scores_[index];
  const double new_score = request.mode == WhatIfMode::kAbsolute
                               ? request.value
                               : old_score * request.value;
  if (std::isnan(new_score)) {
    return Status::InvalidArgument("mutated score is NaN");
  }

  WhatIfResponse out;
  out.generation = generation_;
  out.num_pipes = num_pipes();
  out.old_score = old_score;
  PIPERISK_ASSIGN_OR_RETURN(std::uint32_t old_rank, ranked_.RankOf(index));
  out.old_rank = old_rank;
  PIPERISK_ASSIGN_OR_RETURN(out.old_percentile, ranked_.PercentileOf(index));

  // Hypothetical placement against the *other* pipes: sorted_scores_ holds
  // every score descending (including this pipe's old one), so subtract the
  // pipe itself out of whichever bucket its old score lands in.
  const double n = static_cast<double>(num_pipes());
  const auto greater_end =
      std::lower_bound(sorted_scores_.begin(), sorted_scores_.end(), new_score,
                       std::greater<double>());
  const auto geq_end =
      std::upper_bound(sorted_scores_.begin(), sorted_scores_.end(), new_score,
                       std::greater<double>());
  double greater_others =
      static_cast<double>(greater_end - sorted_scores_.begin());
  double ties_others = static_cast<double>(geq_end - greater_end);
  if (old_score > new_score) {
    greater_others -= 1.0;
  } else if (old_score == new_score) {
    ties_others -= 1.0;
  }
  const double less_others = (n - 1.0) - greater_others - ties_others;
  out.new_score = new_score;
  // The hypothetical pipe ranks ahead of its ties (the composite order's
  // index tie-break is meaningless for a mutated score).
  out.new_rank = static_cast<std::uint64_t>(greater_others);
  out.new_percentile = (less_others + 0.5 * (ties_others + 1.0)) / n;
  return out;
}

Result<DumpResponse> ScoreSnapshot::Dump() const {
  DumpResponse out;
  out.generation = generation_;
  out.entries.resize(num_pipes());
  for (std::size_t i = 0; i < num_pipes(); ++i) {
    DumpEntry& e = out.entries[i];
    e.pipe_id = pipe_ids_[i];
    e.score = scores_[i];
    PIPERISK_ASSIGN_OR_RETURN(
        std::uint32_t rank, ranked_.RankOf(static_cast<std::uint32_t>(i)));
    e.rank = rank;
    PIPERISK_ASSIGN_OR_RETURN(
        e.percentile, ranked_.PercentileOf(static_cast<std::uint32_t>(i)));
  }
  return out;
}

SnapshotStore::SnapshotStore(std::shared_ptr<const ScoreSnapshot> initial)
    : snapshot_(std::move(initial)) {}

void SnapshotStore::Publish(std::shared_ptr<const ScoreSnapshot> snapshot) {
  snapshot_.store(std::move(snapshot), std::memory_order_release);
}

std::shared_ptr<const ScoreSnapshot> SnapshotStore::Current() const {
  return snapshot_.load(std::memory_order_acquire);
}

}  // namespace serve
}  // namespace piperisk
