#ifndef PIPERISK_SERVE_SNAPSHOT_H_
#define PIPERISK_SERVE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "eval/ranking_metrics.h"
#include "serve/protocol.h"

namespace piperisk {
namespace serve {

/// An immutable, fully materialised score index: everything a query needs,
/// built once off the serving path and shared read-only by every worker.
/// Queries never mutate a snapshot, so readers need no synchronisation
/// beyond acquiring the shared_ptr.
class ScoreSnapshot {
 public:
  /// Builds a snapshot from parallel arrays (equal length, aligned by
  /// index). Rejects empty input, NaN scores, duplicate pipe ids, and
  /// non-finite or negative lengths. `unit_cost` is the inspection cost per
  /// metre used by budget-capped top-K (the eval/planning cost model).
  static Result<std::shared_ptr<const ScoreSnapshot>> Build(
      std::vector<std::uint64_t> pipe_ids, std::vector<double> scores,
      std::vector<double> lengths_m, std::uint64_t generation,
      double unit_cost);

  std::uint64_t generation() const { return generation_; }
  std::size_t num_pipes() const { return pipe_ids_.size(); }
  double unit_cost() const { return unit_cost_; }
  const std::vector<std::uint64_t>& pipe_ids() const { return pipe_ids_; }

  /// Per-pipe score + tie-aware percentile + rank for one pipe id.
  Result<ScoreResponse> Score(std::uint64_t pipe_id) const;

  /// Top-K riskiest pipes, optionally capped at a cumulative inspection
  /// budget (unit_cost * length_m per pipe, taken in rank order).
  Result<TopKResponse> TopK(const TopKRequest& request) const;

  /// Hypothetical re-rank of one pipe with a mutated score, against this
  /// snapshot (never mutates it): where would the pipe land if its score
  /// were `value` (kAbsolute) or score * value (kScale)?
  Result<WhatIfResponse> WhatIf(const WhatIfRequest& request) const;

  /// The full per-pipe table in original (dataset) order — the batch
  /// `evaluate --per-pipe` artefact served online, used by the golden
  /// equivalence test.
  Result<DumpResponse> Dump() const;

 private:
  ScoreSnapshot() = default;

  std::uint64_t generation_ = 0;
  double unit_cost_ = 0.0;
  std::vector<std::uint64_t> pipe_ids_;  ///< original order
  std::vector<double> scores_;           ///< original order
  std::vector<double> sorted_scores_;    ///< rank order (descending)
  eval::RankedScores ranked_;
  std::unordered_map<std::uint64_t, std::uint32_t> id_to_index_;
};

/// The server's single mutable cell: publishes immutable snapshots to
/// concurrently running readers.
///
/// Memory ordering: Publish is a release store of the shared_ptr, Current an
/// acquire load, so a reader that observes generation g also observes every
/// write that built snapshot g. Readers never take the builder's lock — a
/// reload builds the new index entirely off to the side and retires the old
/// snapshot only when the last in-flight request drops its reference.
class SnapshotStore {
 public:
  explicit SnapshotStore(std::shared_ptr<const ScoreSnapshot> initial);

  /// Swaps in a new snapshot (any thread; typically the reload path).
  void Publish(std::shared_ptr<const ScoreSnapshot> snapshot);

  /// The snapshot to answer the current request from. Each request acquires
  /// exactly once and answers entirely from that snapshot, so a response is
  /// always internally consistent with a single generation.
  std::shared_ptr<const ScoreSnapshot> Current() const;

 private:
  std::atomic<std::shared_ptr<const ScoreSnapshot>> snapshot_;
};

}  // namespace serve
}  // namespace piperisk

#endif  // PIPERISK_SERVE_SNAPSHOT_H_
