#ifndef PIPERISK_SERVE_SERVER_H_
#define PIPERISK_SERVE_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/result.h"
#include "serve/snapshot.h"

namespace piperisk {
namespace serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// Port to bind; 0 picks an ephemeral port (read it back with port()).
  int port = 0;
  int backlog = 128;
  /// Run metadata stamped into the `metrics` verb's JSON export.
  std::uint64_t seed = 0;
  std::string git_describe = "unknown";
  /// Rebuilds a snapshot from the serving artifact for the `reload` verb
  /// (e.g. re-reads the score file). Unset: reload answers kUnavailable.
  /// Runs on the requesting connection's thread; readers keep serving the
  /// old snapshot until Publish.
  std::function<Result<std::shared_ptr<const ScoreSnapshot>>(
      std::uint64_t next_generation)>
      reload_fn;
};

/// The `piperisk serve` engine: one accept thread, one blocking worker
/// thread per connection, all answering from the SnapshotStore's current
/// snapshot. Model reloads never block readers: the replacement index is
/// built off the serving path and swapped in with a single atomic publish
/// (see SnapshotStore).
class Server {
 public:
  /// Binds, starts the accept loop, and begins serving `initial`.
  static Result<std::unique_ptr<Server>> Start(
      const ServerOptions& options,
      std::shared_ptr<const ScoreSnapshot> initial);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (resolves port 0 at Start time).
  int port() const;

  /// Publishes a new snapshot (lock-free for readers; see SnapshotStore).
  void Publish(std::shared_ptr<const ScoreSnapshot> snapshot);

  /// Generation of the snapshot currently being served.
  std::uint64_t generation() const;

  /// Blocks until Stop() is called or a client sends the shutdown verb.
  void WaitUntilStopped();

  /// Stops accepting, unblocks and joins every connection thread, closes
  /// the listener. Idempotent; also run by the destructor.
  void Stop();

 private:
  Server() = default;

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace serve
}  // namespace piperisk

#endif  // PIPERISK_SERVE_SERVER_H_
