#ifndef PIPERISK_SERVE_HTTP_METRICS_H_
#define PIPERISK_SERVE_HTTP_METRICS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/telemetry.h"

namespace piperisk {
namespace serve {

// Prometheus text exposition (format v0.0.4) over a tiny HTTP/1.1 responder,
// the scrape-facing twin of the binary `metrics` verb. Both render from the
// same registry snapshot; this layer only changes the wire format.

/// Sanitises a piperisk metric name ("data.shard.bytes_mapped") to a
/// Prometheus metric name ("piperisk_data_shard_bytes_mapped"): every
/// character outside [a-zA-Z0-9_:] becomes '_', a leading digit gains a '_'
/// prefix, and the "piperisk_" namespace prefix is prepended.
std::string PrometheusName(const std::string& name);

/// Escapes a label value per the exposition format: backslash, double quote,
/// and newline.
std::string PrometheusEscapeLabel(const std::string& value);

/// Escapes a HELP text: backslash and newline.
std::string PrometheusEscapeHelp(const std::string& value);

/// Renders one sample value: finite numbers via %g-style shortest form,
/// non-finite as the exposition tokens +Inf / -Inf / NaN.
std::string PrometheusValue(double value);

/// One windowed view to append to the exposition: for every counter in
/// `delta` a `<name>_rate{window="10s"}` gauge (per-second), and for every
/// histogram `<base>_p50_us` / `<base>_p99_us` gauges where `<base>` is the
/// metric name with a trailing "_us" unit suffix folded into the quantile
/// name (serve.request_us -> piperisk_serve_request_p99_us).
struct WindowedView {
  std::string label;  ///< window label value, e.g. "10s"
  telemetry::WindowDelta window;
};

/// Renders the full exposition document: a `piperisk_build` info metric
/// (value 1, labelled with version/command), every counter, gauge, and
/// histogram of `snapshot` (cumulative `le` buckets, `+Inf`, `_sum`,
/// `_count`), then the windowed rate/quantile gauges. Names that collide
/// after sanitisation keep the first metric and drop later ones (a comment
/// records the drop) — duplicate metric names are invalid exposition.
std::string FormatPrometheusText(const telemetry::MetricsSnapshot& snapshot,
                                 const telemetry::RunMetadata& metadata,
                                 const std::vector<WindowedView>& windows);

struct MetricsHttpOptions {
  std::string host = "127.0.0.1";
  /// Port to bind; 0 picks an ephemeral port (read it back with port()).
  int port = 0;
  /// Stamped into the piperisk_build info metric.
  telemetry::RunMetadata metadata;
  /// Cadence of the background window sampler; also the staleness bound of
  /// the windowed views. <= 0 disables the sampler (windows then only grow
  /// on scrape).
  double sample_period_s = 1.0;
  /// Window spans rendered per scrape.
  std::vector<double> windows_s = {10.0, 60.0};
};

/// Standalone scrape endpoint: GET /metrics (exposition v0.0.4), GET
/// /healthz ("ok"). One accept thread handles connections sequentially —
/// scrapes are rare and small — with a per-connection receive timeout so a
/// stalled scraper cannot wedge the endpoint. A 1 Hz sampler thread feeds
/// the MetricsWindow ring; recording threads are never touched.
class MetricsHttpServer {
 public:
  static Result<std::unique_ptr<MetricsHttpServer>> Start(
      const MetricsHttpOptions& options);

  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// The bound port (resolves port 0 at Start time).
  int port() const;

  /// Stops the accept and sampler threads and closes the listener.
  /// Idempotent; also run by the destructor.
  void Stop();

 private:
  MetricsHttpServer() = default;

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace serve
}  // namespace piperisk

#endif  // PIPERISK_SERVE_HTTP_METRICS_H_
