#ifndef PIPERISK_SERVE_CLIENT_H_
#define PIPERISK_SERVE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/result.h"
#include "common/socket.h"
#include "serve/protocol.h"

namespace piperisk {
namespace serve {

/// Blocking client for the serve protocol: one TCP connection, one
/// outstanding request at a time. Used by the CLI `query` command, the
/// load generator, and the test batteries. Not thread-safe; give each
/// thread its own Client.
class Client {
 public:
  static Result<Client> Connect(const std::string& host, int port);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  Status Ping();
  Result<ScoreResponse> Score(std::uint64_t pipe_id);
  /// Top-K riskiest pipes; `budget_cost` additionally caps the list at a
  /// cumulative inspection budget in currency units.
  Result<TopKResponse> TopK(std::uint32_t k,
                            std::optional<double> budget_cost = std::nullopt);
  Result<WhatIfResponse> WhatIf(std::uint64_t pipe_id, WhatIfMode mode,
                                double value);
  /// The server's telemetry snapshot as metrics JSON.
  Result<std::string> Metrics();
  Result<ReloadResponse> Reload();
  Result<DumpResponse> Dump();
  /// Asks the server to stop; returns once the server acknowledged.
  Status Shutdown();

 private:
  explicit Client(Socket socket) : socket_(std::move(socket)) {}

  /// Writes one request frame and reads one response frame; a typed error
  /// response surfaces as the mapped Status.
  Result<std::string> RoundTrip(Verb verb, std::string_view payload);

  Socket socket_;
};

}  // namespace serve
}  // namespace piperisk

#endif  // PIPERISK_SERVE_CLIENT_H_
