#ifndef PIPERISK_EVAL_PLANNING_H_
#define PIPERISK_EVAL_PLANNING_H_

#include <vector>

#include "common/result.h"
#include "core/model.h"

namespace piperisk {
namespace eval {

/// Renewal planning: the paper's preventative strategy made executable.
/// Given per-pipe failure probabilities, an inspection/renewal programme is
/// selected each planning year under a budget, maximising the avoided
/// expected failure cost per dollar spent (greedy knapsack — near-optimal
/// here since item costs are small relative to the budget).
struct PlanningConfig {
  int horizon_years = 8;
  double annual_budget = 1e6;          ///< currency units per year
  double inspection_cost_per_m = 40.0; ///< cost to inspect/renew a pipe
  double failure_cost = 80000.0;       ///< expected cost of one CWM failure
  /// Hazard multiplier after renewal: a renewed pipe's failure probability
  /// drops to this fraction of its pre-renewal value.
  double renewal_effect = 0.15;
  /// Annual hazard growth for non-renewed pipes (ageing drift).
  double annual_growth = 1.04;
};

/// One selected pipe in one planning year.
struct PlannedAction {
  int year_offset = 0;  ///< 0-based year within the horizon
  net::PipeId pipe_id = net::kInvalidId;
  double cost = 0.0;
  double expected_failures_avoided = 0.0;
};

struct RenewalPlan {
  std::vector<PlannedAction> actions;
  double total_cost = 0.0;
  /// Expected failures over the horizon with / without the plan.
  double expected_failures_with = 0.0;
  double expected_failures_without = 0.0;
  /// Net benefit = avoided failure cost - programme cost.
  double net_benefit = 0.0;
  int ActionsInYear(int year_offset) const;
};

/// Builds the plan. `failure_probabilities` are yearly per-pipe
/// probabilities aligned with input.pipes (e.g. DPMHBP scores).
Result<RenewalPlan> PlanRenewals(const core::ModelInput& input,
                                 const std::vector<double>& failure_probabilities,
                                 const PlanningConfig& config);

}  // namespace eval
}  // namespace piperisk

#endif  // PIPERISK_EVAL_PLANNING_H_
