#ifndef PIPERISK_EVAL_RANKING_METRICS_H_
#define PIPERISK_EVAL_RANKING_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"

namespace piperisk {
namespace eval {

/// One evaluation unit: a pipe's risk score, its test-year failure count,
/// and its length (the inspection cost for length-budgeted curves).
struct ScoredPipe {
  double score = 0.0;
  int failures = 0;
  double length_m = 0.0;
};

/// How the inspection budget is metered: by number of pipes (Fig. 18.7 /
/// Table 18.3) or by network length (Fig. 18.8).
enum class BudgetMode {
  kPipeCount,
  kLength,
};

/// A detection curve: x = cumulative fraction of the network inspected
/// (pipes or length), y = cumulative fraction of test failures detected.
/// Points are one per *tie group* of the score ranking (distinct scores:
/// one per pipe), in rank order; (0,0) is implicit. Linear interpolation
/// across a tie group equals the average over all orderings of the tied
/// pipes, so curves are well defined under ties.
struct DetectionCurve {
  std::vector<double> inspected_fraction;
  std::vector<double> detected_fraction;

  /// Interpolated detection rate at an inspected fraction x in [0, 1].
  double DetectedAt(double x) const;
};

/// Area under the detection curve from 0 to `max_fraction`, by trapezoid,
/// *normalised by max_fraction* so a perfect early-detection model
/// approaches 1 and random inspection gives ~max_fraction/2 ... 0.5.
/// The paper's "AUC (100%)" is max_fraction = 1; "AUC (1%)" uses 0.01 and
/// reports the un-normalised area (tiny values in per-ten-thousand units) —
/// both are exposed.
struct AucResult {
  double normalised = 0.0;    ///< area / max_fraction, in [0, 1]
  double unnormalised = 0.0;  ///< raw area in [0, max_fraction]
};

/// Options for building the rank index.
struct RankOptions {
  /// Worker threads for the block sort (<= 0: use the hardware). Affects
  /// wall clock only, never the ranking: the composite order
  /// (score descending, original index ascending) is a strict total order,
  /// so the sorted permutation is unique.
  int num_threads = 1;
};

/// The compute-once rank index over a scored pipe set: the descending-score
/// permutation, tie-group boundaries, and prefix sums of failures / counts /
/// lengths in rank order. Every ranking metric (detection curves, truncated
/// AUCs, detection-at-budget, ROC AUC, bootstrap-resample AUCs) reads this
/// one index instead of re-sorting per metric call.
class RankedScores {
 public:
  /// Sorts once (blocked parallel merge sort on the shared pool) and builds
  /// the prefix structure. Accepts empty input; the degenerate-input errors
  /// surface from the metric calls, matching the historical free functions.
  static RankedScores Build(const std::vector<ScoredPipe>& pipes,
                            const RankOptions& options = RankOptions());

  std::size_t num_pipes() const { return failures_ranked_.size(); }
  std::size_t num_groups() const { return group_ends_.size(); }
  /// rank -> original pipe index (descending score, index tie-break).
  const std::vector<std::uint32_t>& order() const { return order_; }
  double total_failures() const { return total_failures_; }

  /// The tie-group detection curve (see DetectionCurve).
  Result<DetectionCurve> Curve(BudgetMode mode) const;

  /// Streaming single-pass truncated detection AUC; bit-identical to
  /// integrating Curve(mode) but with no curve materialisation.
  Result<AucResult> Auc(BudgetMode mode, double max_fraction) const;

  /// Detection rate at an inspected fraction, by binary search over the
  /// tie-group prefix (same interpolation arithmetic as
  /// DetectionCurve::DetectedAt).
  Result<double> DetectedAtBudget(BudgetMode mode,
                                  double budget_fraction) const;

  /// Tie-aware ROC AUC (Mann–Whitney): the probability that a uniformly
  /// random failing pipe (>= 1 test-year failure) outscores a uniformly
  /// random non-failing pipe, ties counting 1/2. Single pass over the tie
  /// groups. Fails unless both classes are present.
  Result<double> RocAuc() const;

  /// Truncated detection AUC of a bootstrap resample, given how many times
  /// each original pipe was drawn (`multiplicity`, indexed by original pipe
  /// index). O(num_pipes) walk of the prefix structure — no re-sort: a
  /// resample is a multiset of the originals, so the original tie groups
  /// are the resample's tie groups and tie-awareness makes within-group
  /// order irrelevant.
  Result<AucResult> ResampleAuc(
      BudgetMode mode, double max_fraction,
      const std::vector<std::uint32_t>& multiplicity) const;

  // --- point queries (the serving layer's read API) -------------------------

  /// Rank position (0 = riskiest) of an original pipe index: the inverse of
  /// order(). Fails on an out-of-range index (including any index against an
  /// empty ranking).
  Result<std::uint32_t> RankOf(std::uint32_t original_index) const;

  /// Tie-aware midrank percentile of an original pipe index in [0, 1):
  /// (pipes scored strictly lower + half of the pipe's tie group) / n.
  /// Higher score => higher percentile; a single-pipe ranking yields 0.5.
  Result<double> PercentileOf(std::uint32_t original_index) const;

  /// The first min(k, n) original pipe indices of the ranking, riskiest
  /// first. k = 0 yields an empty list; fails on an empty ranking (the
  /// degenerate-input contract of the other entry points).
  Result<std::vector<std::uint32_t>> TopK(std::size_t k) const;

  /// Top of the ranking under an absolute inspection budget: pipes are taken
  /// in rank order while the cumulative cost (1 per pipe for kPipeCount,
  /// length_m for kLength) stays <= max_cost, additionally capped at k
  /// entries. The cut is pipe-granular: the composite order (score
  /// descending, original index ascending) is a strict total order, so the
  /// prefix is unique even inside a tie group. Fails on an empty ranking or
  /// a non-finite / negative budget; a budget smaller than the first pipe's
  /// cost yields an empty list.
  Result<std::vector<std::uint32_t>> TopKUnderCost(BudgetMode mode,
                                                   double max_cost,
                                                   std::size_t k) const;

 private:
  /// Tie group containing `rank` (index into group_ends_).
  std::size_t GroupOfRank(std::uint32_t rank) const;

  std::vector<std::uint32_t> order_;       ///< rank -> original index
  std::vector<std::uint32_t> rank_of_;     ///< original index -> rank
  std::vector<double> failures_ranked_;    ///< failures in rank order
  std::vector<double> length_ranked_;      ///< lengths in rank order
  std::vector<double> failures_original_;  ///< failures in original order
  std::vector<double> length_original_;    ///< lengths in original order
  std::vector<std::uint32_t> group_ends_;  ///< one past each tie group
  std::vector<double> cum_failures_;       ///< per group, pipe-wise prefix
  std::vector<double> cum_length_;         ///< per group, pipe-wise prefix
  std::vector<double> cum_positives_;      ///< per group (failures > 0)
  double total_failures_ = 0.0;            ///< summed in original order
  double total_length_ = 0.0;              ///< summed in original order
  double total_positives_ = 0.0;
};

/// Builds the detection curve by ranking pipes by descending score.
/// Tie-break is deterministic (original index), so results are reproducible.
/// Fails on empty input or zero total failures.
Result<DetectionCurve> BuildDetectionCurve(const std::vector<ScoredPipe>& pipes,
                                           BudgetMode mode);

Result<AucResult> DetectionAuc(const std::vector<ScoredPipe>& pipes,
                               BudgetMode mode, double max_fraction);

/// Fraction of test failures detected when exactly `budget_fraction` of the
/// network (pipes or length) is inspected in rank order.
Result<double> DetectionAtBudget(const std::vector<ScoredPipe>& pipes,
                                 BudgetMode mode, double budget_fraction);

/// Truncated detection AUC via std::nth_element over only the top of the
/// ranking (the boundary tie group is always completed): for small budgets
/// this is O(n + K log K) instead of a full sort. Bit-identical to
/// DetectionAuc / RankedScores::Auc at the same arguments.
Result<AucResult> DetectionAucTopK(const std::vector<ScoredPipe>& pipes,
                                   BudgetMode mode, double max_fraction);

/// Detection-at-budget via the same top-K partial ranking. Bit-identical to
/// DetectionAtBudget at the same arguments.
Result<double> DetectionAtBudgetTopK(const std::vector<ScoredPipe>& pipes,
                                     BudgetMode mode, double budget_fraction);

/// Assembles ScoredPipe rows from parallel arrays (must be equal length).
Result<std::vector<ScoredPipe>> ZipScores(const std::vector<double>& scores,
                                          const std::vector<int>& failures,
                                          const std::vector<double>& lengths);

}  // namespace eval
}  // namespace piperisk

#endif  // PIPERISK_EVAL_RANKING_METRICS_H_
