#ifndef PIPERISK_EVAL_RANKING_METRICS_H_
#define PIPERISK_EVAL_RANKING_METRICS_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace piperisk {
namespace eval {

/// One evaluation unit: a pipe's risk score, its test-year failure count,
/// and its length (the inspection cost for length-budgeted curves).
struct ScoredPipe {
  double score = 0.0;
  int failures = 0;
  double length_m = 0.0;
};

/// How the inspection budget is metered: by number of pipes (Fig. 18.7 /
/// Table 18.3) or by network length (Fig. 18.8).
enum class BudgetMode {
  kPipeCount,
  kLength,
};

/// A detection curve: x = cumulative fraction of the network inspected
/// (pipes or length), y = cumulative fraction of test failures detected.
/// Points are one per inspected pipe, in rank order; (0,0) is implicit.
struct DetectionCurve {
  std::vector<double> inspected_fraction;
  std::vector<double> detected_fraction;

  /// Interpolated detection rate at an inspected fraction x in [0, 1].
  double DetectedAt(double x) const;
};

/// Builds the detection curve by ranking pipes by descending score.
/// Tie-break is deterministic (original index), so results are reproducible.
/// Fails on empty input or zero total failures.
Result<DetectionCurve> BuildDetectionCurve(const std::vector<ScoredPipe>& pipes,
                                           BudgetMode mode);

/// Area under the detection curve from 0 to `max_fraction`, by trapezoid,
/// *normalised by max_fraction* so a perfect early-detection model
/// approaches 1 and random inspection gives ~max_fraction/2 ... 0.5.
/// The paper's "AUC (100%)" is max_fraction = 1; "AUC (1%)" uses 0.01 and
/// reports the un-normalised area (tiny values in per-ten-thousand units) —
/// both are exposed.
struct AucResult {
  double normalised = 0.0;    ///< area / max_fraction, in [0, 1]
  double unnormalised = 0.0;  ///< raw area in [0, max_fraction]
};
Result<AucResult> DetectionAuc(const std::vector<ScoredPipe>& pipes,
                               BudgetMode mode, double max_fraction);

/// Fraction of test failures detected when exactly `budget_fraction` of the
/// network (pipes or length) is inspected in rank order.
Result<double> DetectionAtBudget(const std::vector<ScoredPipe>& pipes,
                                 BudgetMode mode, double budget_fraction);

/// Assembles ScoredPipe rows from parallel arrays (must be equal length).
Result<std::vector<ScoredPipe>> ZipScores(const std::vector<double>& scores,
                                          const std::vector<int>& failures,
                                          const std::vector<double>& lengths);

}  // namespace eval
}  // namespace piperisk

#endif  // PIPERISK_EVAL_RANKING_METRICS_H_
