#ifndef PIPERISK_EVAL_SIGNIFICANCE_H_
#define PIPERISK_EVAL_SIGNIFICANCE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "eval/ranking_metrics.h"
#include "stats/hypothesis.h"

namespace piperisk {
namespace eval {

/// Paired significance testing of two models' AUCs (Table 18.4): both
/// models' fitted scores are evaluated on B bootstrap resamples of the test
/// set; because the *same* resamples are used for both, the per-resample
/// AUC differences support a paired one-sided t test
/// (H1: model A's AUC > model B's).
struct PairedAucTestConfig {
  BudgetMode mode = BudgetMode::kPipeCount;
  double max_fraction = 1.0;  ///< AUC truncation (1.0 or 0.01 in the paper)
  int bootstrap_replicates = 40;
  std::uint64_t seed = 99;
  /// Worker threads for running replicates (<= 0: use the hardware). Every
  /// replicate's RNG stream is forked from the seed *before* any parallel
  /// work starts and replicates write disjoint result slots, so results
  /// depend only on (seed, bootstrap_replicates) — never on the thread
  /// count.
  int num_threads = 1;
  /// Redraw budget *per replicate* when a resample contains no failing
  /// pipe. A replicate that exhausts it fails the whole call with a clear
  /// Status (no silent short samples).
  int max_attempts_per_replicate = 10;
};

struct PairedAucTestResult {
  stats::TTestResult test;
  double mean_auc_a = 0.0;  ///< mean normalised AUC of model A over resamples
  double mean_auc_b = 0.0;
  int valid_replicates = 0;  ///< resamples where both AUCs were computable
};

/// Runs the paired bootstrap AUC test. `pipes_a` and `pipes_b` must be the
/// same pipes in the same order, differing only in score.
Result<PairedAucTestResult> PairedAucTest(const std::vector<ScoredPipe>& pipes_a,
                                          const std::vector<ScoredPipe>& pipes_b,
                                          const PairedAucTestConfig& config);

/// Bootstrap AUC samples for a single model (used by the test and by
/// uncertainty reporting). Resamples pipes with replacement; a replicate
/// whose resamples keep drawing no failures (max_attempts_per_replicate
/// redraws) fails the call with a clear Status.
Result<std::vector<double>> BootstrapAucSamples(
    const std::vector<ScoredPipe>& pipes, const PairedAucTestConfig& config);

/// Same, over an already-built rank index: callers that computed a
/// RankedScores for their point metrics reuse it here instead of paying a
/// second sort. Draws the same replicate streams as the vector overload, so
/// the samples are bit-identical to it.
Result<std::vector<double>> BootstrapAucSamples(
    const RankedScores& ranked, const PairedAucTestConfig& config);

}  // namespace eval
}  // namespace piperisk

#endif  // PIPERISK_EVAL_SIGNIFICANCE_H_
