#include "eval/streaming_eval.h"

#include <string_view>
#include <unordered_map>
#include <utility>

#include "common/strings.h"
#include "core/model.h"
#include "data/split.h"

namespace piperisk {
namespace eval {

namespace {

// Splits one unquoted CSV line in place. Returns the number of fields and
// writes each into `fields` (sized num_columns by the caller; extra fields
// make the count exceed the size, which the caller rejects).
size_t SplitRow(std::string_view line, std::string_view* fields,
                size_t max_fields) {
  size_t count = 0;
  while (true) {
    const size_t comma = line.find(',');
    const std::string_view field =
        comma == std::string_view::npos ? line : line.substr(0, comma);
    if (count < max_fields) fields[count] = field;
    ++count;
    if (comma == std::string_view::npos) return count;
    line.remove_prefix(comma + 1);
  }
}

std::string_view StripCr(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

}  // namespace

Result<ScoresReader> ScoresReader::Open(const std::string& path) {
  ScoresReader reader;
  reader.path_ = path;
  reader.in_ = std::make_unique<std::ifstream>(path);
  if (!reader.in_->is_open()) {
    return Status::NotFound("cannot open scores file: " + path);
  }
  if (!std::getline(*reader.in_, reader.line_)) {
    return Status::ParseError("scores file has no header: " + path);
  }
  const std::string_view header = StripCr(reader.line_);
  bool have_id = false, have_score = false;
  size_t column = 0;
  std::string_view rest = header;
  while (true) {
    const size_t comma = rest.find(',');
    const std::string_view name =
        comma == std::string_view::npos ? rest : rest.substr(0, comma);
    if (name == "pipe_id") {
      reader.id_column_ = column;
      have_id = true;
    } else if (name == "score") {
      reader.score_column_ = column;
      have_score = true;
    }
    ++column;
    if (comma == std::string_view::npos) break;
    rest.remove_prefix(comma + 1);
  }
  reader.num_columns_ = column;
  if (!have_id || !have_score) {
    return Status::ParseError(
        "scores file header must contain pipe_id and score columns: " + path);
  }
  return reader;
}

Result<bool> ScoresReader::Next(std::int64_t* id, double* score) {
  if (!std::getline(*in_, line_)) {
    if (in_->bad()) return Status::IoError("read error: " + path_);
    return false;
  }
  ++row_;
  const std::string_view line = StripCr(line_);
  if (line.empty()) return Next(id, score);  // tolerate a trailing blank line
  // A scores file has at most a handful of columns; 16 is far above any
  // artefact this tool writes.
  std::string_view fields[16];
  const size_t count = SplitRow(line, fields, 16);
  if (count != num_columns_) {
    return Status::ParseError(
        StrFormat("%s row %zu: %zu fields (header has %zu)", path_.c_str(),
                  row_, count, num_columns_));
  }
  PIPERISK_ASSIGN_OR_RETURN(const long long parsed_id,
                            ParseInt(std::string(fields[id_column_])));
  PIPERISK_ASSIGN_OR_RETURN(const double parsed_score,
                            ParseDouble(std::string(fields[score_column_])));
  *id = parsed_id;
  *score = parsed_score;
  return true;
}

Result<StreamedScoredPipes> BuildStreamedScoredPipes(
    const data::ShardedDataset& shards, net::PipeCategory category,
    const std::string& scores_path, int window) {
  const net::FeatureConfig features =
      category == net::PipeCategory::kWasteWater
          ? net::FeatureConfig::WasteWater()
          : net::FeatureConfig::DrinkingWater();

  // Pass over the shards: per-shard slots keep the concatenation in shard
  // order no matter how the window interleaves.
  struct ShardSlot {
    std::vector<std::uint64_t> ids;
    std::vector<int> test_failures;
    std::vector<double> lengths_m;
  };
  const size_t num_shards = shards.shards().size();
  std::vector<ShardSlot> slots(num_shards);
  int test_year = 0;
  PIPERISK_RETURN_IF_ERROR(shards.ForEachShard(
      window,
      [&](size_t shard, const data::RegionDataset& dataset) -> Status {
        PIPERISK_ASSIGN_OR_RETURN(
            core::ModelInput input,
            core::ModelInput::Build(dataset, data::TemporalSplit::Paper(),
                                    category, features));
        ShardSlot& slot = slots[shard];
        slot.ids.reserve(input.num_pipes());
        slot.test_failures.reserve(input.num_pipes());
        slot.lengths_m.reserve(input.num_pipes());
        for (size_t i = 0; i < input.num_pipes(); ++i) {
          slot.ids.push_back(
              static_cast<std::uint64_t>(input.pipes[i]->id));
          slot.test_failures.push_back(input.outcomes[i].test_failures);
          slot.lengths_m.push_back(input.outcomes[i].length_m);
        }
        // Every shard uses the same split; shard 0's value wins (all equal).
        if (shard == 0) test_year = input.split.test_year;
        return Status::OK();
      }));

  StreamedScoredPipes out;
  out.test_year = test_year;
  size_t total = 0;
  for (const ShardSlot& slot : slots) total += slot.ids.size();
  if (total == 0) {
    return Status::InvalidArgument(
        "no pipes of the requested category in any shard");
  }
  out.ids.reserve(total);
  out.test_failures.reserve(total);
  out.lengths_m.reserve(total);
  for (ShardSlot& slot : slots) {
    out.ids.insert(out.ids.end(), slot.ids.begin(), slot.ids.end());
    out.test_failures.insert(out.test_failures.end(),
                             slot.test_failures.begin(),
                             slot.test_failures.end());
    out.lengths_m.insert(out.lengths_m.end(), slot.lengths_m.begin(),
                         slot.lengths_m.end());
    slot = ShardSlot();  // release as we go
  }
  slots.clear();

  // Sequential join against the scores file. Fast path: the file lists
  // pipes in shard order (what `fit --data-dir` writes), so each row
  // matches the cursor and nothing is buffered. Rows that fall out of order
  // land in a hash map and are resolved afterwards — correct for arbitrary
  // files, at the legacy map's RSS cost, proportional only to the
  // out-of-order tail.
  out.scores.assign(total, 0.0);
  PIPERISK_ASSIGN_OR_RETURN(ScoresReader reader,
                            ScoresReader::Open(scores_path));
  std::unordered_map<std::uint64_t, double> overflow;
  size_t cursor = 0;
  std::int64_t id = 0;
  double score = 0.0;
  while (true) {
    PIPERISK_ASSIGN_OR_RETURN(const bool more, reader.Next(&id, &score));
    if (!more) break;
    const std::uint64_t uid = static_cast<std::uint64_t>(id);
    if (cursor < total && uid == out.ids[cursor]) {
      out.scores[cursor] = score;
      ++cursor;
      ++out.matched;
    } else {
      overflow[uid] = score;
    }
  }
  for (size_t i = cursor; i < total; ++i) {
    const auto it = overflow.find(out.ids[i]);
    if (it == overflow.end()) {
      ++out.missing;
    } else {
      out.scores[i] = it->second;
      ++out.fallback;
    }
  }
  if (out.matched + out.fallback == 0) {
    return Status::InvalidArgument("score file matches no pipes in the data");
  }
  return out;
}

}  // namespace eval
}  // namespace piperisk
