#include "eval/detection.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace piperisk {
namespace eval {

std::vector<double> SampleCurve(const DetectionCurve& curve,
                                const std::vector<double>& grid) {
  std::vector<double> ys;
  ys.reserve(grid.size());
  for (double x : grid) ys.push_back(curve.DetectedAt(x));
  return ys;
}

std::vector<double> LinearGrid(double max, int points) {
  std::vector<double> grid;
  grid.reserve(static_cast<size_t>(points));
  for (int i = 1; i <= points; ++i) {
    grid.push_back(max * static_cast<double>(i) / points);
  }
  return grid;
}

std::string RenderAsciiChart(const std::vector<double>& grid,
                             const std::vector<Series>& series, int width,
                             int height) {
  static const char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};
  width = std::max(width, 16);
  height = std::max(height, 6);
  std::vector<std::string> canvas(static_cast<size_t>(height),
                                  std::string(static_cast<size_t>(width), ' '));
  double x_max = grid.empty() ? 1.0 : grid.back();

  for (size_t s = 0; s < series.size(); ++s) {
    char glyph = kGlyphs[s % sizeof(kGlyphs)];
    const auto& ys = series[s].ys;
    for (size_t i = 0; i < grid.size() && i < ys.size(); ++i) {
      double xf = x_max > 0.0 ? grid[i] / x_max : 0.0;
      int col = std::clamp(static_cast<int>(xf * (width - 1)), 0, width - 1);
      double y = std::clamp(ys[i], 0.0, 1.0);
      int row = std::clamp(static_cast<int>((1.0 - y) * (height - 1)), 0,
                           height - 1);
      canvas[static_cast<size_t>(row)][static_cast<size_t>(col)] = glyph;
    }
  }

  std::string out;
  out += "  1.0 +" + std::string(static_cast<size_t>(width), '-') + "+\n";
  for (int r = 0; r < height; ++r) {
    double level = 1.0 - static_cast<double>(r) / (height - 1);
    if (r % 5 == 0 && r != 0) {
      out += StrFormat("  %.1f |", level);
    } else {
      out += "      |";
    }
    out += canvas[static_cast<size_t>(r)];
    out += "|\n";
  }
  out += "  0.0 +" + std::string(static_cast<size_t>(width), '-') + "+\n";
  out += StrFormat("       0%%%*s\n", width - 1,
                   StrFormat("%.3g%%", x_max * 100.0).c_str());
  out += "  legend:";
  for (size_t s = 0; s < series.size(); ++s) {
    out += StrFormat("  %c %s", kGlyphs[s % sizeof(kGlyphs)],
                     series[s].label.c_str());
  }
  out += '\n';
  return out;
}

std::string RenderBarChart(const std::vector<std::string>& bin_labels,
                           const std::vector<double>& values, int width) {
  double vmax = 0.0;
  for (double v : values) vmax = std::max(vmax, v);
  if (vmax <= 0.0) vmax = 1.0;
  size_t label_w = 0;
  for (const auto& l : bin_labels) label_w = std::max(label_w, l.size());
  std::string out;
  for (size_t i = 0; i < values.size() && i < bin_labels.size(); ++i) {
    int bars = static_cast<int>(std::lround(values[i] / vmax * width));
    out += StrFormat("  %-*s | %s %.4f\n", static_cast<int>(label_w),
                     bin_labels[i].c_str(),
                     std::string(static_cast<size_t>(bars), '#').c_str(),
                     values[i]);
  }
  return out;
}

}  // namespace eval
}  // namespace piperisk
