#ifndef PIPERISK_EVAL_EXPERIMENT_H_
#define PIPERISK_EVAL_EXPERIMENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/gbt.h"
#include "baselines/rsf.h"
#include "common/result.h"
#include "core/dpmhbp.h"
#include "core/hbp.h"
#include "core/model.h"
#include "data/dataset.h"
#include "eval/ranking_metrics.h"

namespace piperisk {
namespace eval {

/// Orchestration of the paper's comparison protocol: one call fits every
/// compared model on the same ModelInput and evaluates the shared metric
/// set, so each exp_* binary (one per table/figure) reproduces its artefact
/// from identical runs.
struct ExperimentConfig {
  data::TemporalSplit split = data::TemporalSplit::Paper();
  net::PipeCategory category = net::PipeCategory::kCriticalMain;
  net::FeatureConfig features = net::FeatureConfig::DrinkingWater();

  /// Shared MCMC scale for the Bayesian models; benches keep the defaults,
  /// tests shrink them.
  core::HierarchyConfig hierarchy;

  /// Also fit the extended suite (logistic, age-only curves, ES ranker).
  bool include_extended = false;

  /// HBP groupings to fit; the paper reports the best of
  /// material/diameter/laid-year.
  std::vector<core::GroupingScheme> hbp_groupings = {
      core::GroupingScheme::kMaterial, core::GroupingScheme::kDiameterBand,
      core::GroupingScheme::kLaidDecade};

  /// Machine-learning baselines joining the headline comparison. Their seeds
  /// and fit threads are derived from `seed` / hierarchy.num_threads at run
  /// time (like the SVMrank baseline), so the fields here carry only the
  /// structural knobs (tree counts, depths, ...).
  baselines::RsfConfig rsf;
  baselines::GbtConfig gbt;

  std::uint64_t seed = 2013;
};

/// Cross-fit warm-start cache for sequential re-fits (rolling --warm-start):
/// the end-of-fit state of every warm-startable model family, harvested
/// after one RunRegionExperiment call and injected into the next. Empty
/// members mean "no state yet" and leave that family cold.
struct ModelWarmStates {
  std::vector<core::ChainCheckpoint> dpmhbp;
  std::map<core::GroupingScheme, std::vector<core::ChainCheckpoint>> hbp;
  baselines::RsfWarmState rsf;
  baselines::GbtWarmState gbt;
};

/// One fitted model's evaluation record.
struct ModelRun {
  std::string name;
  std::vector<double> scores;  ///< aligned with input.pipes
  AucResult auc_full;          ///< AUC(100%), pipe-count budget
  AucResult auc_1pct;          ///< AUC(1%), pipe-count budget
  double detected_at_1pct_length = 0.0;  ///< Fig. 18.8 operating point
  bool is_hbp_grouping = false;
};

/// A full region comparison: the shared input, the per-model runs, and the
/// ready-to-score test set view.
struct RegionExperiment {
  std::string region_name;
  /// Keeps the dataset alive when the harness generated it itself
  /// (input.dataset points into it). Null when the caller owns the data.
  std::shared_ptr<const data::RegionDataset> owned_dataset;
  core::ModelInput input;
  std::vector<ScoredPipe> BaseScored() const;  ///< outcomes with zero scores
  std::vector<ModelRun> runs;

  /// ScoredPipe rows for one run (outcomes + that run's scores).
  std::vector<ScoredPipe> ScoredFor(const ModelRun& run) const;

  /// Index in `runs` of the best fixed-grouping HBP by full AUC (the
  /// paper's "only the results from the best groupings are shown"), or -1
  /// if no HBP runs exist.
  int BestHbpIndex() const;

  /// Finds a run by name; nullptr when absent.
  const ModelRun* FindRun(const std::string& name) const;

  /// The paper's headline rows: DPMHBP, HBP(best), Cox, SVMrank, Weibull,
  /// RSF, GBT — in that order, skipping any that failed to fit.
  std::vector<const ModelRun*> HeadlineRuns() const;
};

/// Fits and evaluates the full suite on one region dataset.
Result<RegionExperiment> RunRegionExperiment(const data::RegionDataset& dataset,
                                             const ExperimentConfig& config);

/// Warm-capable variant: when `warm` is non-null, every warm-startable model
/// (DPMHBP, the HBP groupings, RSF, GBT) is seeded from the cache's state
/// before fitting (models validate the shape and silently fall back to a
/// cold fit on mismatch) and the cache is refreshed with each model's
/// end-of-fit state afterwards. `warm == nullptr` is exactly the cold
/// overload above.
Result<RegionExperiment> RunRegionExperiment(const data::RegionDataset& dataset,
                                             const ExperimentConfig& config,
                                             ModelWarmStates* warm);

/// Generates the three paper regions (A, B, C) and runs the suite on each.
/// Any per-region failure aborts the batch with its status.
Result<std::vector<RegionExperiment>> RunPaperRegions(
    const ExperimentConfig& config);

}  // namespace eval
}  // namespace piperisk

#endif  // PIPERISK_EVAL_EXPERIMENT_H_
