#ifndef PIPERISK_EVAL_RISK_MAP_H_
#define PIPERISK_EVAL_RISK_MAP_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/model.h"

namespace piperisk {
namespace eval {

/// Risk-map export (Fig. 18.9): pipes coloured by predicted-risk decile and
/// the test-year failures overlaid as point features, serialised as GeoJSON
/// (a FeatureCollection of LineStrings + Points) so any GIS viewer renders
/// the same picture as the paper's figure.
struct RiskMapSummary {
  /// Test failures that fall on pipes in the top `top_fraction` of risk.
  int failures_on_top = 0;
  int total_test_failures = 0;
  double top_fraction = 0.1;
  double HitRate() const {
    return total_test_failures > 0
               ? static_cast<double>(failures_on_top) / total_test_failures
               : 0.0;
  }
};

/// Builds the GeoJSON risk map for the pipes in `input`, using `scores`
/// (aligned with input.pipes). Each pipe feature gets properties
/// {pipe_id, risk_decile (1 = highest risk), score}; each test-year failure
/// becomes a Point feature. Returns the GeoJSON text.
Result<std::string> BuildRiskMapGeoJson(const core::ModelInput& input,
                                        const std::vector<double>& scores);

/// Computes the top-decile hit summary the paper narrates ("many failures
/// could be prevented"): how many of the test-year failures lie on pipes
/// ranked in the top `top_fraction` by score.
Result<RiskMapSummary> SummariseRiskMap(const core::ModelInput& input,
                                        const std::vector<double>& scores,
                                        double top_fraction);

}  // namespace eval
}  // namespace piperisk

#endif  // PIPERISK_EVAL_RISK_MAP_H_
