#ifndef PIPERISK_EVAL_ROLLING_H_
#define PIPERISK_EVAL_ROLLING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "eval/experiment.h"
#include "stats/hypothesis.h"

namespace piperisk {
namespace eval {

/// Rolling-origin (expanding-window) evaluation: for each test year y in
/// [first_test_year, last_test_year], train every model on
/// [observe_first, y-1] and evaluate on y. This is the honest repeated-
/// split backing for paired t-tests when only one failure history exists —
/// each year contributes one paired AUC observation per model.
struct RollingConfig {
  net::Year first_test_year = 2004;
  net::Year last_test_year = 2009;
  ExperimentConfig experiment;
  /// Worker threads for running year windows (<= 0: use the hardware).
  /// Each year's experiment is seeded only by (experiment.seed, year index)
  /// and writes its own result slot; the per-year slots merge in year order
  /// afterwards, so results never depend on the thread count.
  int num_threads = 1;
  /// Sequential warm-started re-fits: year y's warm-startable models
  /// (DPMHBP, HBP, RSF, GBT) initialise from year y-1's end-of-fit state
  /// instead of fitting cold. Forces the year loop serial (each year
  /// depends on the previous one's state), trading the year-level
  /// parallelism for much cheaper per-year fits. Per-year seeds are
  /// unchanged, so warm and cold runs are comparable observation-for-
  /// observation.
  bool warm_start = false;
};

/// One model's metric series over the rolling test years.
struct RollingSeries {
  std::string model;
  std::vector<double> auc_full;       ///< one per test year
  std::vector<double> auc_1pct;
};

struct RollingResult {
  std::vector<net::Year> test_years;
  std::vector<RollingSeries> series;  ///< headline models only

  /// Finds a series by model name; nullptr when absent.
  const RollingSeries* Find(const std::string& model) const;
};

/// Records one year's observation in a series, keeping the series aligned
/// with `year_count` processed test years: missed earlier years are padded
/// with NaN, and when the series already holds a value for the current year
/// (two headline runs mapping to the same label, e.g. "HBP(best)") the last
/// write wins instead of double-pushing — a double push would desync the
/// series from the year axis for every later year.
void RecordRollingObservation(RollingSeries* series, size_t year_count,
                              double auc_full, double auc_1pct);

/// Derives one experiment seed per rolling year through independent
/// Rng::Fork streams of a dedicated spawner. The historical `seed + year`
/// arithmetic made adjacent base seeds share year streams (seed S, year y
/// and seed S+1, year y-1 collided); forked streams are pairwise
/// independent for any base seed while staying a pure function of
/// (seed, year index).
std::vector<std::uint64_t> RollingYearSeeds(std::uint64_t seed, int num_years);

/// Runs the rolling evaluation on one dataset. Models that fail to fit in
/// a given year contribute NaN for that year (and the paired tests skip
/// those years).
Result<RollingResult> RunRollingEvaluation(const data::RegionDataset& dataset,
                                           const RollingConfig& config);

/// Paired one-sided t-test over the rolling years: H1 model_a > model_b on
/// the chosen metric (true = full AUC, false = 1% AUC). Years where either
/// side is NaN are dropped.
Result<stats::TTestResult> RollingPairedTest(const RollingResult& result,
                                             const std::string& model_a,
                                             const std::string& model_b,
                                             bool use_full_auc);

}  // namespace eval
}  // namespace piperisk

#endif  // PIPERISK_EVAL_ROLLING_H_
