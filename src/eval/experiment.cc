#include "eval/experiment.h"

#include <memory>
#include <utility>

#include "baselines/age_models.h"
#include "baselines/cox.h"
#include "baselines/gbt.h"
#include "baselines/logistic.h"
#include "baselines/rank_model.h"
#include "baselines/rsf.h"
#include "baselines/weibull.h"
#include "common/logging.h"
#include "data/failure_simulator.h"

namespace piperisk {
namespace eval {

std::vector<ScoredPipe> RegionExperiment::BaseScored() const {
  std::vector<ScoredPipe> out(input.num_pipes());
  for (size_t i = 0; i < input.num_pipes(); ++i) {
    out[i].score = 0.0;
    out[i].failures = input.outcomes[i].test_failures;
    out[i].length_m = input.outcomes[i].length_m;
  }
  return out;
}

std::vector<ScoredPipe> RegionExperiment::ScoredFor(const ModelRun& run) const {
  std::vector<ScoredPipe> out = BaseScored();
  for (size_t i = 0; i < out.size() && i < run.scores.size(); ++i) {
    out[i].score = run.scores[i];
  }
  return out;
}

int RegionExperiment::BestHbpIndex() const {
  int best = -1;
  for (size_t i = 0; i < runs.size(); ++i) {
    if (!runs[i].is_hbp_grouping) continue;
    if (best < 0 ||
        runs[i].auc_full.normalised > runs[static_cast<size_t>(best)]
                                          .auc_full.normalised) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

const ModelRun* RegionExperiment::FindRun(const std::string& name) const {
  for (const ModelRun& run : runs) {
    if (run.name == name) return &run;
  }
  return nullptr;
}

std::vector<const ModelRun*> RegionExperiment::HeadlineRuns() const {
  std::vector<const ModelRun*> out;
  if (const ModelRun* r = FindRun("DPMHBP")) out.push_back(r);
  int hbp = BestHbpIndex();
  if (hbp >= 0) out.push_back(&runs[static_cast<size_t>(hbp)]);
  if (const ModelRun* r = FindRun("Cox")) out.push_back(r);
  if (const ModelRun* r = FindRun("SVMrank")) out.push_back(r);
  if (const ModelRun* r = FindRun("Weibull")) out.push_back(r);
  if (const ModelRun* r = FindRun("RSF")) out.push_back(r);
  if (const ModelRun* r = FindRun("GBT")) out.push_back(r);
  return out;
}

namespace {

/// Fits a model, scores it (blocked parallel path), and appends the
/// evaluated run. The rank index is built once per scored set and reused by
/// every metric — no per-metric re-sort. A model that fails to fit is
/// skipped with a warning (the comparison remains valid for the others).
void FitAndRecord(core::FailureModel* model, const core::ModelInput& input,
                  const core::ScoreOptions& score_options,
                  RegionExperiment* experiment, bool is_hbp) {
  Status st = model->Fit(input);
  if (!st.ok()) {
    PIPERISK_LOG(kWarning) << model->name() << " failed to fit: "
                           << st.ToString();
    return;
  }
  auto scores = model->ScorePipes(input, score_options);
  if (!scores.ok()) {
    PIPERISK_LOG(kWarning) << model->name() << " failed to score: "
                           << scores.status().ToString();
    return;
  }
  ModelRun run;
  run.name = model->name();
  run.scores = std::move(*scores);
  run.is_hbp_grouping = is_hbp;

  std::vector<ScoredPipe> scored = experiment->BaseScored();
  for (size_t i = 0; i < scored.size(); ++i) scored[i].score = run.scores[i];

  RankOptions rank_options;
  rank_options.num_threads = score_options.num_threads;
  const RankedScores ranked = RankedScores::Build(scored, rank_options);
  if (auto auc = ranked.Auc(BudgetMode::kPipeCount, 1.0); auc.ok()) {
    run.auc_full = *auc;
  }
  if (auto auc = ranked.Auc(BudgetMode::kPipeCount, 0.01); auc.ok()) {
    run.auc_1pct = *auc;
  }
  if (auto det = ranked.DetectedAtBudget(BudgetMode::kLength, 0.01);
      det.ok()) {
    run.detected_at_1pct_length = *det;
  }
  experiment->runs.push_back(std::move(run));
}

}  // namespace

Result<RegionExperiment> RunRegionExperiment(const data::RegionDataset& dataset,
                                             const ExperimentConfig& config) {
  return RunRegionExperiment(dataset, config, /*warm=*/nullptr);
}

Result<RegionExperiment> RunRegionExperiment(const data::RegionDataset& dataset,
                                             const ExperimentConfig& config,
                                             ModelWarmStates* warm) {
  auto input = core::ModelInput::Build(dataset, config.split, config.category,
                                       config.features);
  if (!input.ok()) return input.status();

  RegionExperiment experiment;
  experiment.region_name = dataset.network.region().name;
  experiment.input = std::move(*input);

  core::HierarchyConfig hierarchy = config.hierarchy;
  hierarchy.seed = config.seed;
  if (warm != nullptr) hierarchy.capture_warm_state = true;
  core::ScoreOptions score_options;
  score_options.num_threads = hierarchy.num_threads;

  // --- the paper's headline approaches ------------------------------------
  {
    core::DpmhbpConfig dc;
    dc.hierarchy = hierarchy;
    core::DpmhbpModel dpmhbp(dc);
    if (warm != nullptr && !warm->dpmhbp.empty()) {
      dpmhbp.SetWarmStart(warm->dpmhbp);
    }
    FitAndRecord(&dpmhbp, experiment.input, score_options, &experiment,
                 /*is_hbp=*/false);
    if (warm != nullptr && !dpmhbp.warm_state().empty()) {
      warm->dpmhbp = dpmhbp.warm_state();
    }
  }
  for (core::GroupingScheme scheme : config.hbp_groupings) {
    core::HbpModel hbp(scheme, hierarchy);
    if (warm != nullptr) {
      auto it = warm->hbp.find(scheme);
      if (it != warm->hbp.end() && !it->second.empty()) {
        hbp.SetWarmStart(it->second);
      }
    }
    FitAndRecord(&hbp, experiment.input, score_options, &experiment,
                 /*is_hbp=*/true);
    if (warm != nullptr && !hbp.warm_state().empty()) {
      warm->hbp[scheme] = hbp.warm_state();
    }
  }
  {
    baselines::CoxModel cox;
    FitAndRecord(&cox, experiment.input, score_options, &experiment, false);
  }
  {
    baselines::RankModelConfig rc;
    rc.seed = config.seed + 1;
    baselines::RankModel svm(rc);
    FitAndRecord(&svm, experiment.input, score_options, &experiment, false);
  }
  {
    baselines::WeibullModel weibull;
    FitAndRecord(&weibull, experiment.input, score_options, &experiment, false);
  }
  {
    baselines::RsfConfig rc = config.rsf;
    rc.seed = config.seed + 3;
    rc.num_fit_threads = hierarchy.num_threads;
    baselines::RsfModel rsf(rc);
    if (warm != nullptr && !warm->rsf.trees.empty()) {
      rsf.SetWarmStart(warm->rsf);
    }
    FitAndRecord(&rsf, experiment.input, score_options, &experiment, false);
    if (warm != nullptr && !rsf.warm_state().trees.empty()) {
      warm->rsf = rsf.warm_state();
    }
  }
  {
    baselines::GbtConfig gc = config.gbt;
    gc.seed = config.seed + 4;
    gc.num_fit_threads = hierarchy.num_threads;
    baselines::GbtModel gbt(gc);
    if (warm != nullptr && !warm->gbt.trees.empty()) {
      gbt.SetWarmStart(warm->gbt);
    }
    FitAndRecord(&gbt, experiment.input, score_options, &experiment, false);
    if (warm != nullptr && !gbt.warm_state().trees.empty()) {
      warm->gbt = gbt.warm_state();
    }
  }

  // --- extended suite -------------------------------------------------------
  if (config.include_extended) {
    {
      baselines::LogisticModel logistic;
      FitAndRecord(&logistic, experiment.input, score_options, &experiment,
                   false);
    }
    for (auto curve :
         {baselines::AgeCurve::kTimeExponential,
          baselines::AgeCurve::kTimePower, baselines::AgeCurve::kTimeLinear}) {
      baselines::AgeOnlyModel age(curve);
      FitAndRecord(&age, experiment.input, score_options, &experiment,
                   false);
    }
    {
      baselines::RankModelConfig rc;
      rc.trainer = baselines::RankTrainer::kDirectAucEs;
      rc.seed = config.seed + 2;
      baselines::RankModel es(rc);
      FitAndRecord(&es, experiment.input, score_options, &experiment, false);
    }
  }

  if (experiment.runs.empty()) {
    return Status::Internal("every model failed to fit");
  }
  return experiment;
}

Result<std::vector<RegionExperiment>> RunPaperRegions(
    const ExperimentConfig& config) {
  std::vector<RegionExperiment> out;
  for (const data::RegionConfig& rc :
       {data::RegionConfig::RegionA(), data::RegionConfig::RegionB(),
        data::RegionConfig::RegionC()}) {
    auto dataset = data::GenerateRegion(rc);
    if (!dataset.ok()) return dataset.status();
    auto owned =
        std::make_shared<const data::RegionDataset>(std::move(*dataset));
    auto experiment = RunRegionExperiment(*owned, config);
    if (!experiment.ok()) return experiment.status();
    experiment->owned_dataset = owned;
    out.push_back(std::move(*experiment));
  }
  return out;
}

}  // namespace eval
}  // namespace piperisk
