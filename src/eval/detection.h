#ifndef PIPERISK_EVAL_DETECTION_H_
#define PIPERISK_EVAL_DETECTION_H_

#include <string>
#include <vector>

#include "eval/ranking_metrics.h"

namespace piperisk {
namespace eval {

/// Figure-rendering helpers: the exp_fig* binaries print each paper figure
/// as (a) a data table sampled on a fixed grid and (b) an ASCII chart, so
/// the "figure" is regenerated without a plotting stack.

/// Samples a detection curve at each x in `grid` (fractions in [0, 1]).
std::vector<double> SampleCurve(const DetectionCurve& curve,
                                const std::vector<double>& grid);

/// An evenly spaced grid of `points` values over (0, max].
std::vector<double> LinearGrid(double max, int points);

/// One named series for charting.
struct Series {
  std::string label;
  std::vector<double> ys;  ///< aligned with the shared x grid
};

/// Renders a multi-series ASCII line chart (height x width characters) of
/// y in [0, 1] against the given x grid. Each series draws with its own
/// glyph; a legend line follows.
std::string RenderAsciiChart(const std::vector<double>& grid,
                             const std::vector<Series>& series, int width = 72,
                             int height = 20);

/// Renders a scatter/relationship bar chart for the Fig. 18.5/18.6 style
/// plots: bins of a driver variable vs mean failure rate per bin.
std::string RenderBarChart(const std::vector<std::string>& bin_labels,
                           const std::vector<double>& values, int width = 48);

}  // namespace eval
}  // namespace piperisk

#endif  // PIPERISK_EVAL_DETECTION_H_
