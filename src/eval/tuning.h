#ifndef PIPERISK_EVAL_TUNING_H_
#define PIPERISK_EVAL_TUNING_H_

#include <vector>

#include "common/result.h"
#include "core/dpmhbp.h"
#include "data/dataset.h"

namespace piperisk {
namespace eval {

/// Leakage-free hyper-parameter selection for the Bayesian hierarchy.
///
/// The chapter fixes (c0, c) heuristically; in production the concentration
/// c — the weight of the prior mean against observed failure history — is
/// the knob that matters. TuneHierarchy grid-searches it on an *internal*
/// split: train on [train_first, train_last - 1], validate on train_last
/// (the last training year), then returns the winning configuration for a
/// final refit on the full window. The test year is never touched.
struct TuningConfig {
  std::vector<double> c_grid = {6.0, 12.0, 24.0, 48.0};
  std::vector<double> c0_grid = {4.0};  ///< usually left alone
  /// Validation metric: detection AUC truncated at this budget (1.0 = full).
  double validation_budget = 1.0;
  core::HierarchyConfig base;  ///< everything not being tuned
};

struct TuningResult {
  core::HierarchyConfig best;       ///< base with the winning (c, c0)
  double best_validation_auc = 0.0;
  /// One row per grid point: (c, c0, validation AUC), in evaluation order.
  struct GridPoint {
    double c = 0.0;
    double c0 = 0.0;
    double auc = 0.0;
  };
  std::vector<GridPoint> grid;
};

/// Tunes the DPMHBP hierarchy on `dataset` for `category`. Fails when the
/// training window is too short to spare a validation year or the grid is
/// empty.
Result<TuningResult> TuneHierarchy(const data::RegionDataset& dataset,
                                   const data::TemporalSplit& split,
                                   net::PipeCategory category,
                                   const net::FeatureConfig& features,
                                   const TuningConfig& config);

}  // namespace eval
}  // namespace piperisk

#endif  // PIPERISK_EVAL_TUNING_H_
