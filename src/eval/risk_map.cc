#include "eval/risk_map.h"

#include <algorithm>
#include <numeric>

#include "common/strings.h"

namespace piperisk {
namespace eval {

namespace {

/// Risk decile (1 = riskiest 10%) per pipe index given scores.
std::vector<int> RiskDeciles(const std::vector<double>& scores) {
  const size_t n = scores.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return scores[a] > scores[b]; });
  std::vector<int> decile(n, 10);
  for (size_t rank = 0; rank < n; ++rank) {
    decile[order[rank]] = static_cast<int>(rank * 10 / std::max<size_t>(n, 1)) + 1;
  }
  return decile;
}

}  // namespace

Result<std::string> BuildRiskMapGeoJson(const core::ModelInput& input,
                                        const std::vector<double>& scores) {
  if (scores.size() != input.num_pipes()) {
    return Status::InvalidArgument("scores not aligned with pipes");
  }
  std::vector<int> decile = RiskDeciles(scores);

  std::string out;
  out += "{\"type\":\"FeatureCollection\",\"features\":[\n";
  bool first = true;
  for (size_t i = 0; i < input.num_pipes(); ++i) {
    const net::Pipe& p = *input.pipes[i];
    if (!first) out += ",\n";
    first = false;
    out += "{\"type\":\"Feature\",\"geometry\":{\"type\":\"LineString\","
           "\"coordinates\":[";
    bool first_pt = true;
    for (size_t row : input.pipe_segment_rows[i]) {
      auto seg = input.dataset->network.FindSegment(
          input.segment_counts[row].segment_id);
      if (!seg.ok()) return seg.status();
      if (first_pt) {
        out += StrFormat("[%.2f,%.2f]", (*seg)->start.x, (*seg)->start.y);
        first_pt = false;
      }
      out += StrFormat(",[%.2f,%.2f]", (*seg)->end.x, (*seg)->end.y);
    }
    out += StrFormat(
        "]},\"properties\":{\"pipe_id\":%lld,\"risk_decile\":%d,"
        "\"score\":%.6g}}",
        static_cast<long long>(p.id), decile[i], scores[i]);
  }
  // Test-year failures as point features ("black stars" in Fig. 18.9).
  for (const net::FailureRecord& r : input.dataset->failures.records()) {
    if (r.year != input.split.test_year) continue;
    if (input.pipe_position.find(r.pipe_id) == input.pipe_position.end()) {
      continue;  // other pipe category
    }
    if (!first) out += ",\n";
    first = false;
    out += StrFormat(
        "{\"type\":\"Feature\",\"geometry\":{\"type\":\"Point\","
        "\"coordinates\":[%.2f,%.2f]},\"properties\":{\"failure_year\":%d,"
        "\"pipe_id\":%lld}}",
        r.location.x, r.location.y, r.year,
        static_cast<long long>(r.pipe_id));
  }
  out += "\n]}\n";
  return out;
}

Result<RiskMapSummary> SummariseRiskMap(const core::ModelInput& input,
                                        const std::vector<double>& scores,
                                        double top_fraction) {
  if (scores.size() != input.num_pipes()) {
    return Status::InvalidArgument("scores not aligned with pipes");
  }
  if (!(top_fraction > 0.0 && top_fraction <= 1.0)) {
    return Status::InvalidArgument("top_fraction must be in (0, 1]");
  }
  const size_t n = scores.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return scores[a] > scores[b]; });
  size_t top_n = std::max<size_t>(1, static_cast<size_t>(n * top_fraction));
  std::vector<bool> in_top(n, false);
  for (size_t rank = 0; rank < top_n && rank < n; ++rank) {
    in_top[order[rank]] = true;
  }
  RiskMapSummary summary;
  summary.top_fraction = top_fraction;
  for (size_t i = 0; i < n; ++i) {
    int f = input.outcomes[i].test_failures;
    summary.total_test_failures += f;
    if (in_top[i]) summary.failures_on_top += f;
  }
  return summary;
}

}  // namespace eval
}  // namespace piperisk
