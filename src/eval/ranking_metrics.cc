#include "eval/ranking_metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace piperisk {
namespace eval {

double DetectionCurve::DetectedAt(double x) const {
  if (inspected_fraction.empty()) return 0.0;
  x = std::clamp(x, 0.0, 1.0);
  // Curve points ascend in x; linear interpolation from (0,0).
  double prev_x = 0.0, prev_y = 0.0;
  for (size_t i = 0; i < inspected_fraction.size(); ++i) {
    double cx = inspected_fraction[i];
    double cy = detected_fraction[i];
    if (x <= cx) {
      double span = cx - prev_x;
      double frac = span > 0.0 ? (x - prev_x) / span : 1.0;
      return prev_y + frac * (cy - prev_y);
    }
    prev_x = cx;
    prev_y = cy;
  }
  return detected_fraction.back();
}

namespace {

/// The ranking's composite order: descending score, ascending original
/// index. A strict total order (absent NaN scores), so the sorted
/// permutation is unique — independent of sort algorithm and thread count —
/// and reproduces the historical stable_sort-by-score ranking exactly.
struct CompositeLess {
  const ScoredPipe* pipes;
  bool operator()(std::uint32_t a, std::uint32_t b) const {
    if (pipes[a].score != pipes[b].score) {
      return pipes[a].score > pipes[b].score;
    }
    return a < b;
  }
};

double TotalCost(const std::vector<ScoredPipe>& pipes, BudgetMode mode) {
  if (mode == BudgetMode::kPipeCount) {
    return static_cast<double>(pipes.size());
  }
  double total = 0.0;
  for (const auto& p : pipes) total += p.length_m;
  return total;
}

double PipeCost(const ScoredPipe& pipe, BudgetMode mode) {
  return mode == BudgetMode::kPipeCount ? 1.0 : pipe.length_m;
}

/// Streaming truncated trapezoid integrator over curve points fed in rank
/// order. Every AUC path (full index, top-K partial ranking, bootstrap
/// resample walk) feeds this one accumulator, so they agree bit for bit.
struct TruncatedTrapezoid {
  explicit TruncatedTrapezoid(double max_fraction)
      : max_fraction(max_fraction) {}

  double max_fraction;
  double area = 0.0, prev_x = 0.0, prev_y = 0.0;
  bool done = false;

  void Feed(double x, double y) {
    if (done) return;
    if (x >= max_fraction) {
      // Partial last trapezoid up to max_fraction.
      double span = x - prev_x;
      double frac = span > 0.0 ? (max_fraction - prev_x) / span : 0.0;
      double y_cut = prev_y + frac * (y - prev_y);
      area += 0.5 * (prev_y + y_cut) * (max_fraction - prev_x);
      prev_x = max_fraction;
      prev_y = y_cut;
      done = true;
      return;
    }
    area += 0.5 * (prev_y + y) * (x - prev_x);
    prev_x = x;
    prev_y = y;
  }

  AucResult Finish() const {
    double total = area;
    if (!done && prev_x < max_fraction) {
      // Curve ended before the budget (cannot happen with full curves, but
      // be safe): extend flat.
      total += prev_y * (max_fraction - prev_x);
    }
    AucResult out;
    out.unnormalised = total;
    out.normalised = total / max_fraction;
    return out;
  }
};

/// Streaming counterpart of DetectionCurve::DetectedAt over points fed in
/// rank order (identical interpolation arithmetic).
struct BudgetInterpolator {
  explicit BudgetInterpolator(double budget)
      : x(std::clamp(budget, 0.0, 1.0)) {}

  double x;
  double prev_x = 0.0, prev_y = 0.0;
  double value = 0.0;
  bool done = false;

  void Feed(double cx, double cy) {
    if (done) return;
    if (x <= cx) {
      double span = cx - prev_x;
      double frac = span > 0.0 ? (x - prev_x) / span : 1.0;
      value = prev_y + frac * (cy - prev_y);
      done = true;
      return;
    }
    prev_x = cx;
    prev_y = cy;
  }

  double Finish() const { return done ? value : prev_y; }
};

Status ValidateFraction(double fraction, const char* what) {
  if (!(fraction > 0.0 && fraction <= 1.0)) {
    return Status::InvalidArgument(std::string(what) +
                                   " must be in (0, 1]");
  }
  return Status::OK();
}

/// Block size of the parallel merge sort. Fixed, so the merge tree — and
/// with it any intermediate state — never depends on the thread count.
constexpr std::size_t kSortBlock = 1 << 16;

void ParallelRankSort(std::vector<std::uint32_t>* order,
                      const CompositeLess& cmp, int num_threads) {
  const std::size_t n = order->size();
  if (n <= kSortBlock) {
    std::sort(order->begin(), order->end(), cmp);
    return;
  }
  const int num_blocks = static_cast<int>((n + kSortBlock - 1) / kSortBlock);
  ThreadPool::Shared().ParallelFor(num_blocks, num_threads, [&](int b) {
    auto [lo, hi] = std::pair<std::size_t, std::size_t>{
        static_cast<std::size_t>(b) * kSortBlock,
        std::min((static_cast<std::size_t>(b) + 1) * kSortBlock, n)};
    std::sort(order->begin() + static_cast<std::ptrdiff_t>(lo),
              order->begin() + static_cast<std::ptrdiff_t>(hi), cmp);
  });
  for (std::size_t width = kSortBlock; width < n; width *= 2) {
    const std::size_t span = 2 * width;
    const int pairs = static_cast<int>((n + span - 1) / span);
    ThreadPool::Shared().ParallelFor(pairs, num_threads, [&](int p) {
      std::size_t lo = static_cast<std::size_t>(p) * span;
      std::size_t mid = std::min(lo + width, n);
      std::size_t hi = std::min(lo + span, n);
      if (mid < hi) {
        std::inplace_merge(order->begin() + static_cast<std::ptrdiff_t>(lo),
                           order->begin() + static_cast<std::ptrdiff_t>(mid),
                           order->begin() + static_cast<std::ptrdiff_t>(hi),
                           cmp);
      }
    });
  }
}

}  // namespace

RankedScores RankedScores::Build(const std::vector<ScoredPipe>& pipes,
                                 const RankOptions& options) {
  auto& registry = telemetry::Registry::Global();
  static telemetry::Counter* const pipes_ranked =
      registry.GetCounter("eval.pipes_ranked");
  static telemetry::Histogram* const build_us = registry.GetHistogram(
      "eval.rank_build_us", telemetry::DefaultTimeBucketsUs());
  telemetry::ScopedTimer timer(build_us, "eval.rank_build");
  RankedScores r;
  const std::size_t n = pipes.size();
  pipes_ranked->Add(static_cast<std::int64_t>(n));
  r.order_.resize(n);
  std::iota(r.order_.begin(), r.order_.end(), std::uint32_t{0});
  CompositeLess cmp{pipes.data()};
  ParallelRankSort(&r.order_, cmp, options.num_threads);

  // Totals accumulate in *original* index order, exactly as the historical
  // metric functions did, so shared totals stay bit-identical.
  for (const auto& p : pipes) {
    r.total_failures_ += p.failures;
    r.total_length_ += p.length_m;
    if (p.failures > 0) r.total_positives_ += 1.0;
  }

  // Rank-order SoA arrays and per-tie-group prefix sums (accumulated
  // pipe-wise in rank order, matching the historical running sums); the
  // original-order copies feed ResampleAuc's totals.
  r.failures_ranked_.resize(n);
  r.length_ranked_.resize(n);
  r.failures_original_.resize(n);
  r.length_original_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    r.failures_original_[i] = static_cast<double>(pipes[i].failures);
    r.length_original_[i] = pipes[i].length_m;
  }
  double cum_failures = 0.0, cum_length = 0.0, cum_positives = 0.0;
  for (std::size_t rank = 0; rank < n; ++rank) {
    const ScoredPipe& p = pipes[r.order_[rank]];
    r.failures_ranked_[rank] = static_cast<double>(p.failures);
    r.length_ranked_[rank] = p.length_m;
    cum_failures += p.failures;
    cum_length += p.length_m;
    if (p.failures > 0) cum_positives += 1.0;
    const bool group_end =
        rank + 1 == n ||
        pipes[r.order_[rank + 1]].score != pipes[r.order_[rank]].score;
    if (group_end) {
      r.group_ends_.push_back(static_cast<std::uint32_t>(rank + 1));
      r.cum_failures_.push_back(cum_failures);
      r.cum_length_.push_back(cum_length);
      r.cum_positives_.push_back(cum_positives);
    }
  }
  // Inverse permutation for point queries (RankOf / PercentileOf): one O(n)
  // pass now saves a per-request search in the serving layer.
  r.rank_of_.resize(n);
  for (std::size_t rank = 0; rank < n; ++rank) {
    r.rank_of_[r.order_[rank]] = static_cast<std::uint32_t>(rank);
  }
  return r;
}

namespace {

Status CheckEvaluable(std::size_t num_pipes, double total_failures,
                      double total_cost) {
  if (num_pipes == 0) {
    return Status::InvalidArgument("no pipes to evaluate");
  }
  if (total_failures <= 0.0) {
    return Status::FailedPrecondition("no test-year failures to detect");
  }
  if (total_cost <= 0.0) {
    return Status::FailedPrecondition("zero total inspection cost");
  }
  return Status::OK();
}

}  // namespace

Result<DetectionCurve> RankedScores::Curve(BudgetMode mode) const {
  const double total_cost = mode == BudgetMode::kPipeCount
                                ? static_cast<double>(num_pipes())
                                : total_length_;
  Status st = CheckEvaluable(num_pipes(), total_failures_, total_cost);
  if (!st.ok()) return st;
  DetectionCurve curve;
  curve.inspected_fraction.reserve(num_groups());
  curve.detected_fraction.reserve(num_groups());
  for (std::size_t g = 0; g < num_groups(); ++g) {
    const double cost = mode == BudgetMode::kPipeCount
                            ? static_cast<double>(group_ends_[g])
                            : cum_length_[g];
    curve.inspected_fraction.push_back(cost / total_cost);
    curve.detected_fraction.push_back(cum_failures_[g] / total_failures_);
  }
  return curve;
}

Result<AucResult> RankedScores::Auc(BudgetMode mode,
                                    double max_fraction) const {
  Status st = ValidateFraction(max_fraction, "max_fraction");
  if (!st.ok()) return st;
  const double total_cost = mode == BudgetMode::kPipeCount
                                ? static_cast<double>(num_pipes())
                                : total_length_;
  st = CheckEvaluable(num_pipes(), total_failures_, total_cost);
  if (!st.ok()) return st;
  TruncatedTrapezoid trapezoid(max_fraction);
  for (std::size_t g = 0; g < num_groups() && !trapezoid.done; ++g) {
    const double cost = mode == BudgetMode::kPipeCount
                            ? static_cast<double>(group_ends_[g])
                            : cum_length_[g];
    trapezoid.Feed(cost / total_cost, cum_failures_[g] / total_failures_);
  }
  return trapezoid.Finish();
}

Result<double> RankedScores::DetectedAtBudget(BudgetMode mode,
                                              double budget_fraction) const {
  Status st = ValidateFraction(budget_fraction, "budget_fraction");
  if (!st.ok()) return st;
  const double total_cost = mode == BudgetMode::kPipeCount
                                ? static_cast<double>(num_pipes())
                                : total_length_;
  st = CheckEvaluable(num_pipes(), total_failures_, total_cost);
  if (!st.ok()) return st;
  const double x = std::clamp(budget_fraction, 0.0, 1.0);
  const auto group_x = [&](std::size_t g) {
    const double cost = mode == BudgetMode::kPipeCount
                            ? static_cast<double>(group_ends_[g])
                            : cum_length_[g];
    return cost / total_cost;
  };
  // First group point with x <= cx (the points ascend in x).
  std::size_t lo = 0, hi = num_groups();
  while (lo < hi) {
    std::size_t mid = lo + (hi - lo) / 2;
    if (group_x(mid) < x) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == num_groups()) {
    return cum_failures_.back() / total_failures_;
  }
  const double cx = group_x(lo);
  const double cy = cum_failures_[lo] / total_failures_;
  const double prev_x = lo == 0 ? 0.0 : group_x(lo - 1);
  const double prev_y =
      lo == 0 ? 0.0 : cum_failures_[lo - 1] / total_failures_;
  const double span = cx - prev_x;
  const double frac = span > 0.0 ? (x - prev_x) / span : 1.0;
  return prev_y + frac * (cy - prev_y);
}

Result<double> RankedScores::RocAuc() const {
  if (num_pipes() == 0) {
    return Status::InvalidArgument("no pipes to evaluate");
  }
  const double positives = total_positives_;
  const double negatives = static_cast<double>(num_pipes()) - positives;
  if (positives <= 0.0 || negatives <= 0.0) {
    return Status::FailedPrecondition(
        "ROC AUC needs both failing and non-failing pipes");
  }
  // Mann–Whitney over the descending ranking: a positive in tie group g
  // beats every negative ranked strictly below the group and half-beats the
  // group's own negatives.
  double sum = 0.0;
  double prev_pos = 0.0, prev_count = 0.0;
  for (std::size_t g = 0; g < num_groups(); ++g) {
    const double count = static_cast<double>(group_ends_[g]);
    const double pos_g = cum_positives_[g] - prev_pos;
    const double neg_g = (count - prev_count) - pos_g;
    const double neg_through = count - cum_positives_[g];
    const double neg_below = negatives - neg_through;
    sum += pos_g * (neg_below + 0.5 * neg_g);
    prev_pos = cum_positives_[g];
    prev_count = count;
  }
  return sum / (positives * negatives);
}

std::size_t RankedScores::GroupOfRank(std::uint32_t rank) const {
  // First group whose end exceeds `rank`; group_ends_ is strictly
  // increasing, so this is the unique containing group.
  return static_cast<std::size_t>(
      std::upper_bound(group_ends_.begin(), group_ends_.end(), rank) -
      group_ends_.begin());
}

Result<std::uint32_t> RankedScores::RankOf(
    std::uint32_t original_index) const {
  if (original_index >= num_pipes()) {
    return Status::InvalidArgument(
        "pipe index " + std::to_string(original_index) +
        " out of range (ranking holds " + std::to_string(num_pipes()) +
        " pipes)");
  }
  return rank_of_[original_index];
}

Result<double> RankedScores::PercentileOf(std::uint32_t original_index) const {
  PIPERISK_ASSIGN_OR_RETURN(std::uint32_t rank, RankOf(original_index));
  const std::size_t g = GroupOfRank(rank);
  const double n = static_cast<double>(num_pipes());
  const double group_begin =
      g == 0 ? 0.0 : static_cast<double>(group_ends_[g - 1]);
  const double strictly_below = n - static_cast<double>(group_ends_[g]);
  const double ties = static_cast<double>(group_ends_[g]) - group_begin;
  return (strictly_below + 0.5 * ties) / n;
}

Result<std::vector<std::uint32_t>> RankedScores::TopK(std::size_t k) const {
  if (num_pipes() == 0) {
    return Status::InvalidArgument("no pipes to evaluate");
  }
  const std::size_t take = std::min(k, num_pipes());
  return std::vector<std::uint32_t>(order_.begin(),
                                    order_.begin() +
                                        static_cast<std::ptrdiff_t>(take));
}

Result<std::vector<std::uint32_t>> RankedScores::TopKUnderCost(
    BudgetMode mode, double max_cost, std::size_t k) const {
  if (num_pipes() == 0) {
    return Status::InvalidArgument("no pipes to evaluate");
  }
  if (!std::isfinite(max_cost) || max_cost < 0.0) {
    return Status::InvalidArgument("budget must be finite and >= 0");
  }
  const bool by_count = mode == BudgetMode::kPipeCount;
  std::vector<std::uint32_t> out;
  double cum_cost = 0.0;
  const std::size_t cap = std::min(k, num_pipes());
  for (std::size_t rank = 0; rank < num_pipes() && out.size() < cap; ++rank) {
    cum_cost += by_count ? 1.0 : length_ranked_[rank];
    if (cum_cost > max_cost) break;
    out.push_back(order_[rank]);
  }
  return out;
}

Result<AucResult> RankedScores::ResampleAuc(
    BudgetMode mode, double max_fraction,
    const std::vector<std::uint32_t>& multiplicity) const {
  Status st = ValidateFraction(max_fraction, "max_fraction");
  if (!st.ok()) return st;
  if (multiplicity.size() != num_pipes()) {
    return Status::InvalidArgument("multiplicity length mismatch");
  }
  if (num_pipes() == 0) {
    return Status::InvalidArgument("no pipes to evaluate");
  }
  const std::size_t n = num_pipes();
  const bool by_count = mode == BudgetMode::kPipeCount;
  // Totals accumulate in original index order (as Build's totals do), so an
  // all-ones multiplicity reproduces Auc() bit for bit.
  double total_found = 0.0, total_cost = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double m = static_cast<double>(multiplicity[i]);
    total_found += m * failures_original_[i];
    total_cost += by_count ? m : m * length_original_[i];
  }
  st = CheckEvaluable(n, total_found, total_cost);
  if (!st.ok()) return st;
  // The resample is a multiset of the originals, so the original tie groups
  // are its tie groups: walk ranks once with multiplicity weights.
  TruncatedTrapezoid trapezoid(max_fraction);
  double cum_found = 0.0, cum_cost = 0.0;
  std::size_t rank = 0;
  for (std::size_t g = 0; g < num_groups() && !trapezoid.done; ++g) {
    for (; rank < group_ends_[g]; ++rank) {
      const double m = static_cast<double>(multiplicity[order_[rank]]);
      cum_found += m * failures_ranked_[rank];
      cum_cost += by_count ? m : m * length_ranked_[rank];
    }
    trapezoid.Feed(cum_cost / total_cost, cum_found / total_found);
  }
  return trapezoid.Finish();
}

Result<DetectionCurve> BuildDetectionCurve(const std::vector<ScoredPipe>& pipes,
                                           BudgetMode mode) {
  return RankedScores::Build(pipes).Curve(mode);
}

Result<AucResult> DetectionAuc(const std::vector<ScoredPipe>& pipes,
                               BudgetMode mode, double max_fraction) {
  return RankedScores::Build(pipes).Auc(mode, max_fraction);
}

Result<double> DetectionAtBudget(const std::vector<ScoredPipe>& pipes,
                                 BudgetMode mode, double budget_fraction) {
  return RankedScores::Build(pipes).DetectedAtBudget(mode, budget_fraction);
}

namespace {

/// Group points (x, y) of a top prefix of the composite ranking, computed by
/// nth_element partial selection instead of a full sort. The prefix always
/// ends on a completed tie group and is grown geometrically until its last
/// point reaches `needed_fraction` of the inspection cost (or the whole set
/// is ranked), which is exactly what the streaming consumers need: they stop
/// at the first point with x >= needed_fraction. The pipe-wise accumulation
/// runs in the full ranking's order, so every point matches it bit for bit.
void TopGroupPoints(const std::vector<ScoredPipe>& pipes, BudgetMode mode,
                    double total_failures, double total_cost,
                    double needed_fraction, std::vector<double>* xs,
                    std::vector<double>* ys) {
  const std::size_t n = pipes.size();
  CompositeLess cmp{pipes.data()};
  std::vector<std::uint32_t> idx(n);
  std::size_t k = mode == BudgetMode::kPipeCount
                      ? std::min(n, static_cast<std::size_t>(
                                        std::ceil(needed_fraction *
                                                  static_cast<double>(n))) +
                                        1)
                      : std::min(n, std::max<std::size_t>(
                                        1024, static_cast<std::size_t>(
                                                  needed_fraction *
                                                  static_cast<double>(n)) +
                                                  1));
  for (;;) {
    xs->clear();
    ys->clear();
    std::iota(idx.begin(), idx.end(), std::uint32_t{0});
    std::size_t prefix = k;
    if (k < n) {
      std::nth_element(idx.begin(),
                       idx.begin() + static_cast<std::ptrdiff_t>(k),
                       idx.end(), cmp);
      std::sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                cmp);
      // Complete the boundary tie group: tied tail members all rank after
      // the in-prefix members (larger original index under the composite
      // order), appended in index order to mirror the full ranking.
      const double boundary = pipes[idx[k - 1]].score;
      std::vector<std::uint32_t> tied;
      for (std::size_t t = k; t < n; ++t) {
        if (pipes[idx[t]].score == boundary) tied.push_back(idx[t]);
      }
      std::sort(tied.begin(), tied.end());
      for (std::uint32_t t : tied) idx[prefix++] = t;
    } else {
      std::sort(idx.begin(), idx.end(), cmp);
      prefix = n;
    }
    double cum_cost = 0.0, cum_found = 0.0;
    std::size_t r = 0;
    while (r < prefix) {
      const double group_score = pipes[idx[r]].score;
      while (r < prefix && pipes[idx[r]].score == group_score) {
        cum_cost += PipeCost(pipes[idx[r]], mode);
        cum_found += pipes[idx[r]].failures;
        ++r;
      }
      xs->push_back(cum_cost / total_cost);
      ys->push_back(cum_found / total_failures);
    }
    if (prefix >= n || (!xs->empty() && xs->back() >= needed_fraction)) {
      return;
    }
    k = std::min(n, k * 2);
  }
}

}  // namespace

Result<AucResult> DetectionAucTopK(const std::vector<ScoredPipe>& pipes,
                                   BudgetMode mode, double max_fraction) {
  Status st = ValidateFraction(max_fraction, "max_fraction");
  if (!st.ok()) return st;
  double total_failures = 0.0;
  for (const auto& p : pipes) total_failures += p.failures;
  st = CheckEvaluable(pipes.size(), total_failures, TotalCost(pipes, mode));
  if (!st.ok()) return st;
  std::vector<double> xs, ys;
  TopGroupPoints(pipes, mode, total_failures, TotalCost(pipes, mode),
                 max_fraction, &xs, &ys);
  TruncatedTrapezoid trapezoid(max_fraction);
  for (std::size_t i = 0; i < xs.size() && !trapezoid.done; ++i) {
    trapezoid.Feed(xs[i], ys[i]);
  }
  return trapezoid.Finish();
}

Result<double> DetectionAtBudgetTopK(const std::vector<ScoredPipe>& pipes,
                                     BudgetMode mode, double budget_fraction) {
  Status st = ValidateFraction(budget_fraction, "budget_fraction");
  if (!st.ok()) return st;
  double total_failures = 0.0;
  for (const auto& p : pipes) total_failures += p.failures;
  st = CheckEvaluable(pipes.size(), total_failures, TotalCost(pipes, mode));
  if (!st.ok()) return st;
  BudgetInterpolator interp(budget_fraction);
  std::vector<double> xs, ys;
  TopGroupPoints(pipes, mode, total_failures, TotalCost(pipes, mode), interp.x,
                 &xs, &ys);
  for (std::size_t i = 0; i < xs.size() && !interp.done; ++i) {
    interp.Feed(xs[i], ys[i]);
  }
  return interp.Finish();
}

Result<std::vector<ScoredPipe>> ZipScores(const std::vector<double>& scores,
                                          const std::vector<int>& failures,
                                          const std::vector<double>& lengths) {
  if (scores.size() != failures.size() || scores.size() != lengths.size()) {
    return Status::InvalidArgument("zip length mismatch");
  }
  std::vector<ScoredPipe> out(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    // A NaN score would break the strict weak ordering every ranking path
    // sorts by (CompositeLess), which is UB in std::sort / nth_element —
    // reject it at assembly time instead.
    if (std::isnan(scores[i])) {
      return Status::InvalidArgument("NaN score at pipe index " +
                                     std::to_string(i));
    }
    out[i].score = scores[i];
    out[i].failures = failures[i];
    out[i].length_m = lengths[i];
  }
  return out;
}

}  // namespace eval
}  // namespace piperisk
