#include "eval/ranking_metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace piperisk {
namespace eval {

double DetectionCurve::DetectedAt(double x) const {
  if (inspected_fraction.empty()) return 0.0;
  x = std::clamp(x, 0.0, 1.0);
  // Curve points ascend in x; linear interpolation from (0,0).
  double prev_x = 0.0, prev_y = 0.0;
  for (size_t i = 0; i < inspected_fraction.size(); ++i) {
    double cx = inspected_fraction[i];
    double cy = detected_fraction[i];
    if (x <= cx) {
      double span = cx - prev_x;
      double frac = span > 0.0 ? (x - prev_x) / span : 1.0;
      return prev_y + frac * (cy - prev_y);
    }
    prev_x = cx;
    prev_y = cy;
  }
  return detected_fraction.back();
}

namespace {

/// Rank order: descending score, deterministic index tie-break.
std::vector<size_t> RankOrder(const std::vector<ScoredPipe>& pipes) {
  std::vector<size_t> order(pipes.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return pipes[a].score > pipes[b].score;
  });
  return order;
}

double TotalCost(const std::vector<ScoredPipe>& pipes, BudgetMode mode) {
  if (mode == BudgetMode::kPipeCount) {
    return static_cast<double>(pipes.size());
  }
  double total = 0.0;
  for (const auto& p : pipes) total += p.length_m;
  return total;
}

double PipeCost(const ScoredPipe& pipe, BudgetMode mode) {
  return mode == BudgetMode::kPipeCount ? 1.0 : pipe.length_m;
}

}  // namespace

Result<DetectionCurve> BuildDetectionCurve(const std::vector<ScoredPipe>& pipes,
                                           BudgetMode mode) {
  if (pipes.empty()) {
    return Status::InvalidArgument("no pipes to evaluate");
  }
  double total_failures = 0.0;
  for (const auto& p : pipes) total_failures += p.failures;
  if (total_failures <= 0.0) {
    return Status::FailedPrecondition("no test-year failures to detect");
  }
  double total_cost = TotalCost(pipes, mode);
  if (total_cost <= 0.0) {
    return Status::FailedPrecondition("zero total inspection cost");
  }

  DetectionCurve curve;
  curve.inspected_fraction.reserve(pipes.size());
  curve.detected_fraction.reserve(pipes.size());
  double cost = 0.0, found = 0.0;
  for (size_t idx : RankOrder(pipes)) {
    cost += PipeCost(pipes[idx], mode);
    found += pipes[idx].failures;
    curve.inspected_fraction.push_back(cost / total_cost);
    curve.detected_fraction.push_back(found / total_failures);
  }
  return curve;
}

Result<AucResult> DetectionAuc(const std::vector<ScoredPipe>& pipes,
                               BudgetMode mode, double max_fraction) {
  if (!(max_fraction > 0.0 && max_fraction <= 1.0)) {
    return Status::InvalidArgument("max_fraction must be in (0, 1]");
  }
  auto curve = BuildDetectionCurve(pipes, mode);
  if (!curve.ok()) return curve.status();

  // Trapezoid over the piecewise-linear curve from (0,0), truncated at
  // max_fraction.
  double area = 0.0;
  double prev_x = 0.0, prev_y = 0.0;
  for (size_t i = 0; i < curve->inspected_fraction.size(); ++i) {
    double x = curve->inspected_fraction[i];
    double y = curve->detected_fraction[i];
    if (x >= max_fraction) {
      // Partial last trapezoid up to max_fraction.
      double span = x - prev_x;
      double frac = span > 0.0 ? (max_fraction - prev_x) / span : 0.0;
      double y_cut = prev_y + frac * (y - prev_y);
      area += 0.5 * (prev_y + y_cut) * (max_fraction - prev_x);
      prev_x = max_fraction;
      prev_y = y_cut;
      break;
    }
    area += 0.5 * (prev_y + y) * (x - prev_x);
    prev_x = x;
    prev_y = y;
  }
  if (prev_x < max_fraction) {
    // Curve ended before the budget (cannot happen with full curves, but be
    // safe): extend flat.
    area += prev_y * (max_fraction - prev_x);
  }
  AucResult out;
  out.unnormalised = area;
  out.normalised = area / max_fraction;
  return out;
}

Result<double> DetectionAtBudget(const std::vector<ScoredPipe>& pipes,
                                 BudgetMode mode, double budget_fraction) {
  if (!(budget_fraction > 0.0 && budget_fraction <= 1.0)) {
    return Status::InvalidArgument("budget_fraction must be in (0, 1]");
  }
  auto curve = BuildDetectionCurve(pipes, mode);
  if (!curve.ok()) return curve.status();
  return curve->DetectedAt(budget_fraction);
}

Result<std::vector<ScoredPipe>> ZipScores(const std::vector<double>& scores,
                                          const std::vector<int>& failures,
                                          const std::vector<double>& lengths) {
  if (scores.size() != failures.size() || scores.size() != lengths.size()) {
    return Status::InvalidArgument("zip length mismatch");
  }
  std::vector<ScoredPipe> out(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    out[i].score = scores[i];
    out[i].failures = failures[i];
    out[i].length_m = lengths[i];
  }
  return out;
}

}  // namespace eval
}  // namespace piperisk
