#include "eval/rolling.h"

#include <cmath>
#include <limits>
#include <memory>

#include "common/thread_pool.h"
#include "stats/rng.h"

namespace piperisk {
namespace eval {

namespace {
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
/// Dedicated RNG stream for spawning per-year experiment seeds, distinct
/// from every model stream so the seed derivation never aliases a sampler.
constexpr std::uint64_t kRollingSeedStream = 0x2011C;
}  // namespace

std::vector<std::uint64_t> RollingYearSeeds(std::uint64_t seed,
                                            int num_years) {
  std::vector<std::uint64_t> seeds;
  if (num_years <= 0) return seeds;
  seeds.reserve(static_cast<size_t>(num_years));
  stats::Rng spawner(seed, kRollingSeedStream);
  for (int i = 0; i < num_years; ++i) {
    stats::Rng fork = spawner.Fork();
    seeds.push_back(fork.NextU64());
  }
  return seeds;
}

const RollingSeries* RollingResult::Find(const std::string& model) const {
  for (const auto& s : series) {
    if (s.model == model) return &s;
  }
  return nullptr;
}

void RecordRollingObservation(RollingSeries* series, size_t year_count,
                              double auc_full, double auc_1pct) {
  if (year_count == 0) return;
  // Pad any missed years (model failed or was absent earlier) with NaN.
  while (series->auc_full.size() + 1 < year_count) {
    series->auc_full.push_back(kNan);
    series->auc_1pct.push_back(kNan);
  }
  if (series->auc_full.size() >= year_count) {
    // A value for this year is already recorded — two runs mapped to the
    // same label. Last write wins; pushing again would leave the series
    // longer than the year axis and misalign every later year.
    series->auc_full[year_count - 1] = auc_full;
    series->auc_1pct[year_count - 1] = auc_1pct;
    return;
  }
  series->auc_full.push_back(auc_full);
  series->auc_1pct.push_back(auc_1pct);
}

Result<RollingResult> RunRollingEvaluation(const data::RegionDataset& dataset,
                                           const RollingConfig& config) {
  if (config.last_test_year < config.first_test_year) {
    return Status::InvalidArgument("rolling year range inverted");
  }
  if (config.first_test_year <= dataset.config.observe_first) {
    return Status::InvalidArgument(
        "first test year leaves no training window");
  }
  const int num_years =
      config.last_test_year - config.first_test_year + 1;
  const std::vector<std::uint64_t> seeds =
      RollingYearSeeds(config.experiment.seed, num_years);
  const auto year_config = [&](int i) {
    const net::Year y = config.first_test_year + i;
    ExperimentConfig ec = config.experiment;
    ec.split.train_first = dataset.config.observe_first;
    ec.split.train_last = y - 1;
    ec.split.test_year = y;
    ec.seed = seeds[static_cast<size_t>(i)];
    return ec;
  };
  std::vector<std::unique_ptr<Result<RegionExperiment>>> slots(
      static_cast<size_t>(num_years));
  if (config.warm_start) {
    // Warm re-fits chain year y's sampler/ensemble state into year y+1, so
    // the year loop is inherently serial. Seeds are the same as the cold
    // path's, keeping the two modes comparable year-for-year.
    ModelWarmStates warm;
    for (int i = 0; i < num_years; ++i) {
      slots[static_cast<size_t>(i)] =
          std::make_unique<Result<RegionExperiment>>(
              RunRegionExperiment(dataset, year_config(i), &warm));
    }
  } else {
    // Each year window retrains every model independently (its seed is a
    // function of (experiment.seed, year index) alone), so the windows run
    // as blocks on the shared pool into per-year slots; the sequential
    // merge below then sees exactly what a serial loop would have produced.
    ThreadPool::Shared().ParallelFor(
        num_years, config.num_threads, [&](int i) {
          slots[static_cast<size_t>(i)] =
              std::make_unique<Result<RegionExperiment>>(
                  RunRegionExperiment(dataset, year_config(i)));
        });
  }

  RollingResult out;
  for (net::Year y = config.first_test_year; y <= config.last_test_year; ++y) {
    out.test_years.push_back(y);
    const auto& experiment =
        *slots[static_cast<size_t>(y - config.first_test_year)];
    if (!experiment.ok()) return experiment.status();

    for (const ModelRun* run : experiment->HeadlineRuns()) {
      // HBP(best) can change grouping across years; report it under the
      // stable label "HBP(best)".
      std::string label = run->is_hbp_grouping ? "HBP(best)" : run->name;
      RollingSeries* series = nullptr;
      for (auto& s : out.series) {
        if (s.model == label) series = &s;
      }
      if (series == nullptr) {
        out.series.push_back(RollingSeries{label, {}, {}});
        series = &out.series.back();
      }
      RecordRollingObservation(series, out.test_years.size(),
                               run->auc_full.normalised,
                               run->auc_1pct.normalised);
    }
    // Pad models that were absent this year.
    for (auto& s : out.series) {
      while (s.auc_full.size() < out.test_years.size()) {
        s.auc_full.push_back(kNan);
        s.auc_1pct.push_back(kNan);
      }
    }
  }
  if (out.series.empty()) {
    return Status::Internal("no models produced rolling results");
  }
  return out;
}

Result<stats::TTestResult> RollingPairedTest(const RollingResult& result,
                                             const std::string& model_a,
                                             const std::string& model_b,
                                             bool use_full_auc) {
  const RollingSeries* a = result.Find(model_a);
  const RollingSeries* b = result.Find(model_b);
  if (a == nullptr || b == nullptr) {
    return Status::NotFound("model series not found in rolling result");
  }
  std::vector<double> xs, ys;
  const auto& va = use_full_auc ? a->auc_full : a->auc_1pct;
  const auto& vb = use_full_auc ? b->auc_full : b->auc_1pct;
  for (size_t i = 0; i < va.size() && i < vb.size(); ++i) {
    if (std::isnan(va[i]) || std::isnan(vb[i])) continue;
    xs.push_back(va[i]);
    ys.push_back(vb[i]);
  }
  return stats::PairedTTest(xs, ys, stats::Alternative::kGreater);
}

}  // namespace eval
}  // namespace piperisk
