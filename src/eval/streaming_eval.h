#ifndef PIPERISK_EVAL_STREAMING_EVAL_H_
#define PIPERISK_EVAL_STREAMING_EVAL_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/sharded_dataset.h"
#include "net/pipe.h"

namespace piperisk {
namespace eval {

/// Sequential reader for the `pipe_id,score` artefact `piperisk fit`
/// writes: one row at a time, never the whole document in memory (the
/// scores file for a continental dataset is hundreds of MB). The format is
/// the plain unquoted numeric CSV the fit command emits; quoted fields are
/// not supported here.
class ScoresReader {
 public:
  ScoresReader(ScoresReader&&) = default;
  ScoresReader& operator=(ScoresReader&&) = default;

  /// Opens the file and consumes the header, which must contain `pipe_id`
  /// and `score` columns (any order; extra columns are ignored).
  static Result<ScoresReader> Open(const std::string& path);

  /// Reads the next row into (id, score). Returns false at end of file.
  Result<bool> Next(std::int64_t* id, double* score);

 private:
  ScoresReader() = default;

  std::unique_ptr<std::ifstream> in_;
  std::string line_;
  size_t id_column_ = 0;
  size_t score_column_ = 0;
  size_t num_columns_ = 0;
  size_t row_ = 0;
  std::string path_;
};

/// Everything streaming `evaluate` / `serve` need, in shard order (the
/// global dataset order): parallel arrays over every pipe of the selected
/// category. Peak RSS during the build is one shard window of networks plus
/// these O(tens of bytes per pipe) arrays — the full network and feature
/// matrices are never resident together.
struct StreamedScoredPipes {
  std::vector<std::uint64_t> ids;
  std::vector<double> scores;
  std::vector<int> test_failures;
  std::vector<double> lengths_m;
  int test_year = 0;
  /// Scores-file join accounting. `matched` rows hit the ordered fast path
  /// (the file lists pipes in shard order, as `fit --data-dir` writes
  /// them); `fallback` rows were out of order and resolved through a hash
  /// map (correct, but costs the map's RSS); `missing` pipes had no row and
  /// score 0.0 — the in-memory LoadScores rule.
  std::uint64_t matched = 0;
  std::uint64_t fallback = 0;
  std::uint64_t missing = 0;
};

/// Streams every shard once (ModelInput::Build per shard, `window` shards
/// in flight), concatenates ids/outcomes in shard order, then joins the
/// scores file sequentially against that order. Fails if the scores file
/// matches no pipe at all.
Result<StreamedScoredPipes> BuildStreamedScoredPipes(
    const data::ShardedDataset& shards, net::PipeCategory category,
    const std::string& scores_path, int window);

}  // namespace eval
}  // namespace piperisk

#endif  // PIPERISK_EVAL_STREAMING_EVAL_H_
