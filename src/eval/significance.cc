#include "eval/significance.h"

#include <cstdint>

#include "common/strings.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "stats/descriptive.h"
#include "stats/rng.h"

namespace piperisk {
namespace eval {

namespace {

/// Bootstrap telemetry: one replicate counter bump per replicate plus one
/// retry bump per failed attempt (a resample that drew no failing pipes and
/// had to redraw). Both sit far outside the resample walk's inner loop.
struct BootstrapMetrics {
  telemetry::Counter* replicates;
  telemetry::Counter* retries;

  static const BootstrapMetrics& Get() {
    static const BootstrapMetrics metrics = [] {
      auto& registry = telemetry::Registry::Global();
      return BootstrapMetrics{
          registry.GetCounter("eval.bootstrap.replicates"),
          registry.GetCounter("eval.bootstrap.retries")};
    }();
    return metrics;
  }
};

/// Draws one bootstrap resample as per-pipe multiplicities (how many times
/// each original pipe was drawn), which is all the rank-index resample walk
/// needs — no materialised pipe copies, no re-sort.
void ResampleMultiplicity(std::size_t n, stats::Rng* rng,
                          std::vector<std::uint32_t>* multiplicity) {
  multiplicity->assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    ++(*multiplicity)[static_cast<std::size_t>(rng->NextBounded(n))];
  }
}

/// One generator per replicate, forked sequentially from a spawner before
/// any parallel work starts: replicate r's draw sequence is a pure function
/// of (seed, stream, r), whatever thread runs it.
std::vector<stats::Rng> MakeReplicateRngs(std::uint64_t seed,
                                          std::uint64_t stream,
                                          int replicates) {
  stats::Rng spawner(seed, stream);
  std::vector<stats::Rng> rngs;
  rngs.reserve(static_cast<std::size_t>(replicates));
  for (int r = 0; r < replicates; ++r) rngs.push_back(spawner.Fork());
  return rngs;
}

Status ReplicateExhausted(int replicate, int attempts) {
  return Status::FailedPrecondition(StrFormat(
      "bootstrap replicate %d drew no failing pipes in %d attempts "
      "(test set nearly failure-free)",
      replicate, attempts));
}

}  // namespace

Result<PairedAucTestResult> PairedAucTest(const std::vector<ScoredPipe>& pipes_a,
                                          const std::vector<ScoredPipe>& pipes_b,
                                          const PairedAucTestConfig& config) {
  if (pipes_a.size() != pipes_b.size()) {
    return Status::InvalidArgument("paired test needs aligned pipe lists");
  }
  if (pipes_a.empty()) {
    return Status::InvalidArgument("empty pipe list");
  }
  if (config.bootstrap_replicates < 3) {
    return Status::InvalidArgument("need >= 3 bootstrap replicates");
  }
  if (config.max_attempts_per_replicate < 1) {
    return Status::InvalidArgument("need >= 1 attempt per replicate");
  }
  for (size_t i = 0; i < pipes_a.size(); ++i) {
    if (pipes_a[i].failures != pipes_b[i].failures) {
      return Status::InvalidArgument(
          "pipe lists disagree on outcomes; not the same test set");
    }
  }

  RankOptions rank_options;
  rank_options.num_threads = config.num_threads;
  const RankedScores ranked_a = RankedScores::Build(pipes_a, rank_options);
  const RankedScores ranked_b = RankedScores::Build(pipes_b, rank_options);

  const int replicates = config.bootstrap_replicates;
  std::vector<stats::Rng> rngs =
      MakeReplicateRngs(config.seed, 0x51619, replicates);
  std::vector<double> auc_a(static_cast<std::size_t>(replicates), 0.0);
  std::vector<double> auc_b(static_cast<std::size_t>(replicates), 0.0);
  std::vector<std::uint8_t> valid(static_cast<std::size_t>(replicates), 0);
  const BootstrapMetrics& metrics = BootstrapMetrics::Get();
  ThreadPool::Shared().ParallelFor(
      replicates, config.num_threads, [&](int r) {
        const auto slot = static_cast<std::size_t>(r);
        metrics.replicates->Increment();
        std::vector<std::uint32_t> multiplicity;
        for (int attempt = 0; attempt < config.max_attempts_per_replicate;
             ++attempt) {
          ResampleMultiplicity(pipes_a.size(), &rngs[slot], &multiplicity);
          auto a = ranked_a.ResampleAuc(config.mode, config.max_fraction,
                                        multiplicity);
          if (!a.ok()) {  // resample had no failures: redraw
            metrics.retries->Increment();
            continue;
          }
          auto b = ranked_b.ResampleAuc(config.mode, config.max_fraction,
                                        multiplicity);
          if (!b.ok()) {
            metrics.retries->Increment();
            continue;
          }
          auc_a[slot] = a->normalised;
          auc_b[slot] = b->normalised;
          valid[slot] = 1;
          return;
        }
      });
  for (int r = 0; r < replicates; ++r) {
    if (!valid[static_cast<std::size_t>(r)]) {
      return ReplicateExhausted(r, config.max_attempts_per_replicate);
    }
  }

  auto test = stats::PairedTTest(auc_a, auc_b, stats::Alternative::kGreater);
  if (!test.ok()) return test.status();
  PairedAucTestResult out;
  out.test = *test;
  out.mean_auc_a = stats::Mean(auc_a);
  out.mean_auc_b = stats::Mean(auc_b);
  out.valid_replicates = replicates;
  return out;
}

Result<std::vector<double>> BootstrapAucSamples(
    const std::vector<ScoredPipe>& pipes, const PairedAucTestConfig& config) {
  if (pipes.empty()) return Status::InvalidArgument("empty pipe list");
  RankOptions rank_options;
  rank_options.num_threads = config.num_threads;
  return BootstrapAucSamples(RankedScores::Build(pipes, rank_options), config);
}

Result<std::vector<double>> BootstrapAucSamples(
    const RankedScores& ranked, const PairedAucTestConfig& config) {
  if (ranked.num_pipes() == 0) {
    return Status::InvalidArgument("empty pipe list");
  }
  if (config.bootstrap_replicates < 1) {
    return Status::InvalidArgument("need >= 1 bootstrap replicate");
  }
  if (config.max_attempts_per_replicate < 1) {
    return Status::InvalidArgument("need >= 1 attempt per replicate");
  }
  const int replicates = config.bootstrap_replicates;
  std::vector<stats::Rng> rngs =
      MakeReplicateRngs(config.seed, 0x51620, replicates);
  std::vector<double> out(static_cast<std::size_t>(replicates), 0.0);
  std::vector<std::uint8_t> valid(static_cast<std::size_t>(replicates), 0);
  const BootstrapMetrics& metrics = BootstrapMetrics::Get();
  ThreadPool::Shared().ParallelFor(
      replicates, config.num_threads, [&](int r) {
        const auto slot = static_cast<std::size_t>(r);
        metrics.replicates->Increment();
        std::vector<std::uint32_t> multiplicity;
        for (int attempt = 0; attempt < config.max_attempts_per_replicate;
             ++attempt) {
          ResampleMultiplicity(ranked.num_pipes(), &rngs[slot], &multiplicity);
          auto auc = ranked.ResampleAuc(config.mode, config.max_fraction,
                                        multiplicity);
          if (!auc.ok()) {
            metrics.retries->Increment();
            continue;
          }
          out[slot] = auc->normalised;
          valid[slot] = 1;
          return;
        }
      });
  for (int r = 0; r < replicates; ++r) {
    if (!valid[static_cast<std::size_t>(r)]) {
      return ReplicateExhausted(r, config.max_attempts_per_replicate);
    }
  }
  return out;
}

}  // namespace eval
}  // namespace piperisk
