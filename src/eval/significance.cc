#include "eval/significance.h"

#include "stats/descriptive.h"
#include "stats/rng.h"

namespace piperisk {
namespace eval {

namespace {

/// Draws one bootstrap index resample.
std::vector<size_t> Resample(size_t n, stats::Rng* rng) {
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) {
    idx[i] = static_cast<size_t>(rng->NextBounded(n));
  }
  return idx;
}

std::vector<ScoredPipe> Select(const std::vector<ScoredPipe>& pipes,
                               const std::vector<size_t>& idx) {
  std::vector<ScoredPipe> out;
  out.reserve(idx.size());
  for (size_t i : idx) out.push_back(pipes[i]);
  return out;
}

}  // namespace

Result<PairedAucTestResult> PairedAucTest(const std::vector<ScoredPipe>& pipes_a,
                                          const std::vector<ScoredPipe>& pipes_b,
                                          const PairedAucTestConfig& config) {
  if (pipes_a.size() != pipes_b.size()) {
    return Status::InvalidArgument("paired test needs aligned pipe lists");
  }
  if (pipes_a.empty()) {
    return Status::InvalidArgument("empty pipe list");
  }
  if (config.bootstrap_replicates < 3) {
    return Status::InvalidArgument("need >= 3 bootstrap replicates");
  }
  for (size_t i = 0; i < pipes_a.size(); ++i) {
    if (pipes_a[i].failures != pipes_b[i].failures) {
      return Status::InvalidArgument(
          "pipe lists disagree on outcomes; not the same test set");
    }
  }

  stats::Rng rng(config.seed, 0x51619);
  std::vector<double> auc_a, auc_b;
  auc_a.reserve(static_cast<size_t>(config.bootstrap_replicates));
  auc_b.reserve(static_cast<size_t>(config.bootstrap_replicates));
  int attempts = 0;
  const int max_attempts = config.bootstrap_replicates * 10;
  while (static_cast<int>(auc_a.size()) < config.bootstrap_replicates &&
         attempts < max_attempts) {
    ++attempts;
    std::vector<size_t> idx = Resample(pipes_a.size(), &rng);
    auto a = DetectionAuc(Select(pipes_a, idx), config.mode,
                          config.max_fraction);
    auto b = DetectionAuc(Select(pipes_b, idx), config.mode,
                          config.max_fraction);
    if (!a.ok() || !b.ok()) continue;  // resample had no failures
    auc_a.push_back(a->normalised);
    auc_b.push_back(b->normalised);
  }
  if (auc_a.size() < 3) {
    return Status::FailedPrecondition(
        "too few valid bootstrap replicates (test set nearly failure-free)");
  }
  auto test = stats::PairedTTest(auc_a, auc_b, stats::Alternative::kGreater);
  if (!test.ok()) return test.status();
  PairedAucTestResult out;
  out.test = *test;
  out.mean_auc_a = stats::Mean(auc_a);
  out.mean_auc_b = stats::Mean(auc_b);
  out.valid_replicates = static_cast<int>(auc_a.size());
  return out;
}

Result<std::vector<double>> BootstrapAucSamples(
    const std::vector<ScoredPipe>& pipes, const PairedAucTestConfig& config) {
  if (pipes.empty()) return Status::InvalidArgument("empty pipe list");
  stats::Rng rng(config.seed, 0x51620);
  std::vector<double> out;
  int attempts = 0;
  const int max_attempts = config.bootstrap_replicates * 10;
  while (static_cast<int>(out.size()) < config.bootstrap_replicates &&
         attempts < max_attempts) {
    ++attempts;
    auto auc = DetectionAuc(Select(pipes, Resample(pipes.size(), &rng)),
                            config.mode, config.max_fraction);
    if (!auc.ok()) continue;
    out.push_back(auc->normalised);
  }
  if (out.empty()) {
    return Status::FailedPrecondition("no valid bootstrap replicates");
  }
  return out;
}

}  // namespace eval
}  // namespace piperisk
