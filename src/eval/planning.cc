#include "eval/planning.h"

#include <algorithm>
#include <numeric>

namespace piperisk {
namespace eval {

int RenewalPlan::ActionsInYear(int year_offset) const {
  int n = 0;
  for (const auto& a : actions) {
    if (a.year_offset == year_offset) ++n;
  }
  return n;
}

Result<RenewalPlan> PlanRenewals(
    const core::ModelInput& input,
    const std::vector<double>& failure_probabilities,
    const PlanningConfig& config) {
  const size_t n = input.num_pipes();
  if (failure_probabilities.size() != n) {
    return Status::InvalidArgument("probabilities not aligned with pipes");
  }
  if (config.horizon_years <= 0 || config.annual_budget <= 0.0) {
    return Status::InvalidArgument("horizon and budget must be positive");
  }
  if (!(config.renewal_effect >= 0.0 && config.renewal_effect <= 1.0)) {
    return Status::InvalidArgument("renewal_effect must be in [0, 1]");
  }
  // A zero (or negative/NaN) unit cost would make every pipe's cost 0 and
  // turn the greedy comparator's benefit/cost ratios into inf/NaN — a
  // broken strict weak ordering, i.e. undefined behaviour in std::sort.
  // The negated comparisons also reject NaN.
  if (!(config.inspection_cost_per_m > 0.0)) {
    return Status::InvalidArgument("inspection_cost_per_m must be > 0");
  }
  if (!(config.failure_cost > 0.0)) {
    return Status::InvalidArgument("failure_cost must be > 0");
  }

  // Mutable per-pipe hazard state over the horizon.
  std::vector<double> hazard(n);
  for (size_t i = 0; i < n; ++i) {
    hazard[i] = std::clamp(failure_probabilities[i], 0.0, 1.0);
  }
  std::vector<bool> renewed(n, false);

  RenewalPlan plan;
  // Baseline expectation without any intervention.
  {
    std::vector<double> h = hazard;
    for (int y = 0; y < config.horizon_years; ++y) {
      for (size_t i = 0; i < n; ++i) {
        plan.expected_failures_without += h[i];
        h[i] = std::min(h[i] * config.annual_growth, 1.0);
      }
    }
  }

  for (int year = 0; year < config.horizon_years; ++year) {
    // Benefit of renewing pipe i now: avoided expected failures over the
    // remaining horizon (hazard drops to renewal_effect fraction, both
    // paths keep growing).
    int remaining = config.horizon_years - year;
    std::vector<double> benefit(n, 0.0);
    std::vector<double> cost(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      if (renewed[i]) continue;
      double keep = 0.0, renew = 0.0;
      double hk = hazard[i];
      double hr = hazard[i] * config.renewal_effect;
      for (int y = 0; y < remaining; ++y) {
        keep += hk;
        renew += hr;
        hk = std::min(hk * config.annual_growth, 1.0);
        hr = std::min(hr * config.annual_growth, 1.0);
      }
      benefit[i] = (keep - renew) * config.failure_cost;
      cost[i] = std::max(input.outcomes[i].length_m, 1.0) *
                config.inspection_cost_per_m;
    }

    // Greedy by benefit per cost under the annual budget.
    std::vector<size_t> order;
    for (size_t i = 0; i < n; ++i) {
      if (!renewed[i] && benefit[i] > 0.0) order.push_back(i);
    }
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return benefit[a] / cost[a] > benefit[b] / cost[b];
    });
    double spent = 0.0;
    for (size_t i : order) {
      if (spent + cost[i] > config.annual_budget) continue;
      // Only renew when it pays for itself.
      if (benefit[i] <= cost[i]) break;
      spent += cost[i];
      renewed[i] = true;
      PlannedAction action;
      action.year_offset = year;
      action.pipe_id = input.pipes[i]->id;
      action.cost = cost[i];
      action.expected_failures_avoided = benefit[i] / config.failure_cost;
      plan.actions.push_back(action);
      hazard[i] *= config.renewal_effect;
    }
    plan.total_cost += spent;

    // Advance one year: accumulate expected failures with the plan, age
    // every pipe.
    for (size_t i = 0; i < n; ++i) {
      plan.expected_failures_with += hazard[i];
      hazard[i] = std::min(hazard[i] * config.annual_growth, 1.0);
    }
  }

  plan.net_benefit =
      (plan.expected_failures_without - plan.expected_failures_with) *
          config.failure_cost -
      plan.total_cost;
  return plan;
}

}  // namespace eval
}  // namespace piperisk
