#include "eval/tuning.h"

#include "common/strings.h"
#include "core/model.h"
#include "eval/ranking_metrics.h"

namespace piperisk {
namespace eval {

Result<TuningResult> TuneHierarchy(const data::RegionDataset& dataset,
                                   const data::TemporalSplit& split,
                                   net::PipeCategory category,
                                   const net::FeatureConfig& features,
                                   const TuningConfig& config) {
  if (config.c_grid.empty() || config.c0_grid.empty()) {
    return Status::InvalidArgument("empty tuning grid");
  }
  if (split.train_last - split.train_first < 2) {
    return Status::FailedPrecondition(
        "training window too short to spare a validation year");
  }
  for (double c : config.c_grid) {
    if (!(c > 0.0)) return Status::InvalidArgument("c must be > 0");
  }
  for (double c0 : config.c0_grid) {
    if (!(c0 > 0.0)) return Status::InvalidArgument("c0 must be > 0");
  }

  // Internal split: last training year becomes the validation year.
  data::TemporalSplit inner = split;
  inner.train_last = split.train_last - 1;
  inner.test_year = split.train_last;

  auto input = core::ModelInput::Build(dataset, inner, category, features);
  if (!input.ok()) return input.status();

  std::vector<int> failures(input->num_pipes());
  std::vector<double> lengths(input->num_pipes());
  for (size_t i = 0; i < input->num_pipes(); ++i) {
    failures[i] = input->outcomes[i].test_failures;
    lengths[i] = input->outcomes[i].length_m;
  }

  TuningResult result;
  result.best = config.base;
  bool any = false;
  for (double c0 : config.c0_grid) {
    for (double c : config.c_grid) {
      core::DpmhbpConfig model_config;
      model_config.hierarchy = config.base;
      model_config.hierarchy.c = c;
      model_config.hierarchy.c0 = c0;
      // Each grid point gets its own checkpoint tag: the fingerprint
      // embeds (c, c0), so sharing one tag would make every later point
      // reject resume against the previous point's snapshot.
      if (!model_config.hierarchy.checkpoint.dir.empty() ||
          model_config.hierarchy.checkpoint.resume) {
        model_config.hierarchy.checkpoint.tag =
            StrFormat("dpmhbp_tune_c%g_c0%g", c, c0);
      }
      core::DpmhbpModel model(model_config);
      if (!model.Fit(*input).ok()) continue;
      core::ScoreOptions score_options;
      score_options.num_threads = model_config.hierarchy.num_threads;
      auto scores = model.ScorePipes(*input, score_options);
      if (!scores.ok()) continue;
      auto scored = ZipScores(*scores, failures, lengths);
      if (!scored.ok()) continue;
      // Truncated validation budgets only need the top of the ranking:
      // nth_element partial ranking instead of a full sort per grid point.
      auto auc = DetectionAucTopK(*scored, BudgetMode::kPipeCount,
                                  config.validation_budget);
      if (!auc.ok()) continue;
      result.grid.push_back({c, c0, auc->normalised});
      if (!any || auc->normalised > result.best_validation_auc) {
        any = true;
        result.best_validation_auc = auc->normalised;
        result.best = model_config.hierarchy;
      }
    }
  }
  if (!any) {
    return Status::FailedPrecondition(
        "no grid point produced a valid validation AUC (no failures in the "
        "validation year?)");
  }
  return result;
}

}  // namespace eval
}  // namespace piperisk
