#ifndef PIPERISK_STATS_HYPOTHESIS_H_
#define PIPERISK_STATS_HYPOTHESIS_H_

#include <vector>

#include "common/result.h"

namespace piperisk {
namespace stats {

/// Result of a t test: the statistic, degrees of freedom, and the p-value
/// for the requested alternative.
struct TTestResult {
  double t = 0.0;
  double dof = 0.0;
  double p_value = 1.0;
  double mean_difference = 0.0;
};

/// Alternative hypotheses for location tests.
enum class Alternative {
  kTwoSided,
  kGreater,  // H1: mean(a) > mean(b) (or mean(diff) > 0)
  kLess,
};

/// One-sided/two-sided paired t test on equal-length samples, as used by the
/// paper's Table 18.4 (one-sided, 5% level, DPMHBP vs each baseline).
/// Fails if sizes differ, fewer than 2 pairs, or zero variance of
/// differences (degenerate — the paper's protocol never hits this because
/// AUCs vary across repeated splits).
Result<TTestResult> PairedTTest(const std::vector<double>& a,
                                const std::vector<double>& b,
                                Alternative alternative);

/// One-sample t test of H0: mean(xs) == mu0.
Result<TTestResult> OneSampleTTest(const std::vector<double>& xs, double mu0,
                                   Alternative alternative);

/// Welch's two-sample t test (unequal variances).
Result<TTestResult> WelchTTest(const std::vector<double>& a,
                               const std::vector<double>& b,
                               Alternative alternative);

}  // namespace stats
}  // namespace piperisk

#endif  // PIPERISK_STATS_HYPOTHESIS_H_
