#ifndef PIPERISK_STATS_RNG_H_
#define PIPERISK_STATS_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace piperisk {
namespace stats {

/// Raw PCG state of an Rng, exposed so checkpointing can persist and
/// restore a generator mid-stream bit-for-bit (see core/checkpoint.h).
struct RngState {
  std::uint64_t state = 0;
  std::uint64_t inc = 0;

  bool operator==(const RngState& other) const {
    return state == other.state && inc == other.inc;
  }
};

/// Deterministic pseudo-random generator used everywhere in the library.
///
/// Implementation: PCG-XSH-RR 64/32 (O'Neill 2014) with two 32-bit draws
/// combined for 64-bit output. Hand-rolled (no <random> engines) so results
/// are bit-identical across standard libraries and platforms — experiment
/// outputs must be reproducible from a seed alone.
///
/// Satisfies the C++ UniformRandomBitGenerator concept so it can also feed
/// standard distributions when convenient, though the library's own samplers
/// in distributions.h are preferred for cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator. Two generators with equal (seed, stream) produce
  /// identical sequences; distinct streams are statistically independent.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next 64 random bits.
  std::uint64_t NextU64();
  std::uint64_t operator()() { return NextU64(); }

  /// Next 32 random bits.
  std::uint32_t NextU32();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform double in (0, 1) — never returns exactly 0; safe for log().
  double NextDoubleOpen();

  /// Uniform integer in [0, bound). Unbiased (Lemire rejection).
  /// Precondition: bound > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Forks a statistically independent generator; used to give each
  /// region/chain/worker its own stream while remaining reproducible.
  Rng Fork();

  /// The generator's raw state mid-stream. FromState(SaveState()) continues
  /// the exact same draw sequence — the checkpoint/resume contract.
  RngState SaveState() const { return RngState{state_, inc_}; }
  static Rng FromState(const RngState& state);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (std::size_t i = items->size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBounded(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace stats
}  // namespace piperisk

#endif  // PIPERISK_STATS_RNG_H_
