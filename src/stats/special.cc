#include "stats/special.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace piperisk {
namespace stats {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kEps = std::numeric_limits<double>::epsilon();
}  // namespace

double LogGamma(double x) {
  if (!(x > 0.0)) return kNan;
  // Lanczos, g = 7, 9 coefficients (Godfrey's values).
  static const double kCoef[9] = {
      0.99999999999980993,  676.5203681218851,    -1259.1392167224028,
      771.32342877765313,   -176.61502916214059,  12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection: Gamma(x) Gamma(1-x) = pi / sin(pi x).
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  double z = x - 1.0;
  double a = kCoef[0];
  double t = z + 7.5;
  for (int i = 1; i < 9; ++i) a += kCoef[i] / (z + i);
  return 0.5 * std::log(2.0 * M_PI) + (z + 0.5) * std::log(t) - t +
         std::log(a);
}

double Digamma(double x) {
  if (!(x > 0.0)) return kNan;
  double result = 0.0;
  // Recurrence psi(x) = psi(x+1) - 1/x until x >= 6.
  while (x < 6.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  // Asymptotic expansion.
  double inv = 1.0 / x;
  double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 -
                     inv2 * (1.0 / 240.0 - inv2 * (1.0 / 132.0)))));
  return result;
}

double Trigamma(double x) {
  if (!(x > 0.0)) return kNan;
  double result = 0.0;
  while (x < 6.0) {
    result += 1.0 / (x * x);
    x += 1.0;
  }
  double inv = 1.0 / x;
  double inv2 = inv * inv;
  result += inv * (1.0 + 0.5 * inv +
                   inv2 * (1.0 / 6.0 - inv2 * (1.0 / 30.0 - inv2 * (1.0 / 42.0 -
                            inv2 / 30.0))));
  return result;
}

double LogBeta(double a, double b) {
  return LogGamma(a) + LogGamma(b) - LogGamma(a + b);
}

namespace {

/// Lower incomplete gamma by series: P(a,x) = x^a e^-x / Gamma(a) * sum.
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

/// Upper incomplete gamma by Lentz continued fraction.
double GammaQContinuedFraction(double a, double x) {
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return std::exp(-x + a * std::log(x) - LogGamma(a)) * h;
}

}  // namespace

double GammaP(double a, double x) {
  if (!(a > 0.0) || x < 0.0) return kNan;
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double GammaQ(double a, double x) {
  if (!(a > 0.0) || x < 0.0) return kNan;
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

namespace {

/// Continued fraction for the incomplete beta (NR betacf).
double BetaContinuedFraction(double a, double b, double x) {
  const double tiny = 1e-300;
  double qab = a + b;
  double qap = a + 1.0;
  double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < tiny) d = tiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= 500; ++m) {
    int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < tiny) d = tiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < tiny) d = tiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double BetaInc(double a, double b, double x) {
  if (!(a > 0.0) || !(b > 0.0) || x < 0.0 || x > 1.0) return kNan;
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  double ln_front = a * std::log(x) + b * std::log1p(-x) - LogBeta(a, b);
  double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double Erf(double x) { return std::erf(x); }
double Erfc(double x) { return std::erfc(x); }

double NormalCdf(double x) { return 0.5 * std::erfc(-x * M_SQRT1_2); }

double NormalQuantile(double p) {
  if (!(p > 0.0) || !(p < 1.0)) {
    if (p == 0.0) return -kInf;
    if (p == 1.0) return kInf;
    return kNan;
  }
  // Acklam's rational approximation.
  static const double a[6] = {-3.969683028665376e+01, 2.209460984245205e+02,
                              -2.759285104469687e+02, 1.383577518672690e+02,
                              -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[5] = {-5.447609879822406e+01, 1.615858368580409e+02,
                              -1.556989798598866e+02, 6.680131188771972e+01,
                              -1.328068155288572e+01};
  static const double c[6] = {-7.784894002430293e-03, -3.223964580411365e-01,
                              -2.400758277161838e+00, -2.549732539343734e+00,
                              4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[4] = {7.784695709041462e-03, 3.224671290700398e-01,
                              2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double x;
  if (p < plow) {
    double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    double q = p - 0.5;
    double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step using the exact CDF.
  double e = NormalCdf(x) - p;
  double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

double StudentTCdf(double t, double nu) {
  if (!(nu > 0.0)) return kNan;
  if (std::isinf(t)) return t > 0 ? 1.0 : 0.0;
  double x = nu / (nu + t * t);
  double p = 0.5 * BetaInc(0.5 * nu, 0.5, x);
  return t >= 0.0 ? 1.0 - p : p;
}

double StudentTUpperTail(double t, double nu) {
  return 1.0 - StudentTCdf(t, nu);
}

double Log1mExp(double x) {
  if (std::isnan(x) || x > 0.0) return kNan;
  if (x == 0.0) return -kInf;  // log(1 - 1)
  // Mächler's cutoff.
  if (x > -M_LN2) return std::log(-std::expm1(x));
  return std::log1p(-std::exp(x));
}

double LogAddExp(double a, double b) {
  if (a == -kInf) return b;
  if (b == -kInf) return a;
  double m = a > b ? a : b;
  return m + std::log1p(std::exp(-(std::fabs(a - b))));
}

double Sigmoid(double x) {
  if (x >= 0.0) {
    double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(x);
  return e / (1.0 + e);
}

double Logit(double p) {
  PIPERISK_CHECK(p > 0.0 && p < 1.0) << "Logit requires p in (0,1), got " << p;
  return std::log(p) - std::log1p(-p);
}

}  // namespace stats
}  // namespace piperisk
