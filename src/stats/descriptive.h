#ifndef PIPERISK_STATS_DESCRIPTIVE_H_
#define PIPERISK_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <vector>

namespace piperisk {
namespace stats {

/// Streaming mean/variance accumulator (Welford). Numerically stable for
/// long MCMC traces; O(1) per observation.
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator (parallel-safe Chan et al. combination).
  void Merge(const RunningStats& other);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }

  /// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 points.
  double variance() const;
  double stddev() const;

  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

/// Unbiased sample variance; 0 for fewer than 2 points.
double Variance(const std::vector<double>& xs);

double StdDev(const std::vector<double>& xs);

/// Linearly interpolated quantile, q in [0,1]. Sorts a copy.
double Quantile(std::vector<double> xs, double q);

double Median(std::vector<double> xs);

/// Pearson correlation of paired samples; 0 when either side is constant.
/// Precondition: xs.size() == ys.size().
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// Spearman rank correlation (average ranks for ties).
double SpearmanCorrelation(const std::vector<double>& xs,
                           const std::vector<double>& ys);

/// Ranks with ties averaged (1-based ranks, as used by Spearman).
std::vector<double> AverageRanks(const std::vector<double>& xs);

}  // namespace stats
}  // namespace piperisk

#endif  // PIPERISK_STATS_DESCRIPTIVE_H_
