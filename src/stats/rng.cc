#include "stats/rng.h"

namespace piperisk {
namespace stats {

namespace {
constexpr std::uint64_t kMultiplier = 6364136223846793005ULL;

std::uint32_t PcgOutput(std::uint64_t state) {
  std::uint32_t xorshifted =
      static_cast<std::uint32_t>(((state >> 18u) ^ state) >> 27u);
  std::uint32_t rot = static_cast<std::uint32_t>(state >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}
}  // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream) {
  inc_ = (stream << 1u) | 1u;
  state_ = 0u;
  NextU32();
  state_ += seed;
  NextU32();
}

std::uint32_t Rng::NextU32() {
  std::uint64_t old = state_;
  state_ = old * kMultiplier + inc_;
  return PcgOutput(old);
}

std::uint64_t Rng::NextU64() {
  std::uint64_t hi = NextU32();
  std::uint64_t lo = NextU32();
  return (hi << 32) | lo;
}

double Rng::NextDouble() {
  // 53 top bits of a 64-bit draw scaled into [0,1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDoubleOpen() {
  // (x + 0.5) / 2^53 lies strictly inside (0,1).
  return (static_cast<double>(NextU64() >> 11) + 0.5) * 0x1.0p-53;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  // Lemire's multiply-shift with rejection for exact uniformity.
  std::uint64_t threshold = (-bound) % bound;
  while (true) {
    std::uint64_t x = NextU64();
    unsigned __int128 m =
        static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(bound);
    std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

Rng Rng::Fork() {
  std::uint64_t seed = NextU64();
  std::uint64_t stream = NextU64();
  return Rng(seed, stream);
}

Rng Rng::FromState(const RngState& state) {
  Rng rng;  // the seeding draws below are discarded
  rng.state_ = state.state;
  rng.inc_ = state.inc;
  return rng;
}

}  // namespace stats
}  // namespace piperisk
