#include "stats/distributions.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "stats/special.h"

namespace piperisk {
namespace stats {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

double SampleNormal(Rng* rng) {
  // Marsaglia polar method; both deviates are not cached to keep the
  // generator state a pure function of the call sequence.
  while (true) {
    double u = 2.0 * rng->NextDouble() - 1.0;
    double v = 2.0 * rng->NextDouble() - 1.0;
    double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double SampleNormal(Rng* rng, double mu, double sigma) {
  PIPERISK_CHECK(sigma > 0.0) << "sigma must be > 0";
  return mu + sigma * SampleNormal(rng);
}

double SampleGamma(Rng* rng, double shape) {
  PIPERISK_CHECK(shape > 0.0) << "gamma shape must be > 0";
  if (shape < 1.0) {
    // Boost: X ~ Gamma(a+1), U^{1/a} * X ~ Gamma(a).
    double x = SampleGamma(rng, shape + 1.0);
    double u = rng->NextDoubleOpen();
    return x * std::pow(u, 1.0 / shape);
  }
  // Marsaglia–Tsang (2000).
  double d = shape - 1.0 / 3.0;
  double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = SampleNormal(rng);
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = rng->NextDoubleOpen();
    double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return d * v;
    if (std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) return d * v;
  }
}

double SampleGamma(Rng* rng, double shape, double rate) {
  PIPERISK_CHECK(rate > 0.0) << "gamma rate must be > 0";
  return SampleGamma(rng, shape) / rate;
}

double SampleBeta(Rng* rng, double a, double b) {
  double x = SampleGamma(rng, a);
  double y = SampleGamma(rng, b);
  double s = x + y;
  if (s <= 0.0) {
    // Both gammas underflowed (tiny shapes): fall back on the fact that in
    // that regime the beta is essentially a Bernoulli(a/(a+b)) on {0,1}.
    return rng->NextDouble() < a / (a + b) ? 1.0 - 1e-12 : 1e-12;
  }
  return x / s;
}

bool SampleBernoulli(Rng* rng, double p) { return rng->NextDouble() < p; }

int SampleBinomial(Rng* rng, int n, double p) {
  PIPERISK_CHECK(n >= 0) << "binomial n must be >= 0";
  if (p <= 0.0) return 0;
  if (p >= 1.0) return n;
  int k = 0;
  for (int i = 0; i < n; ++i) k += SampleBernoulli(rng, p) ? 1 : 0;
  return k;
}

int SamplePoisson(Rng* rng, double lambda) {
  PIPERISK_CHECK(lambda >= 0.0) << "poisson rate must be >= 0";
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth multiplication method.
    double limit = std::exp(-lambda);
    double prod = rng->NextDoubleOpen();
    int k = 0;
    while (prod > limit) {
      prod *= rng->NextDoubleOpen();
      ++k;
    }
    return k;
  }
  // Exact splitting: a Poisson(lambda) is the sum of independent
  // Poisson(lambda/m) chunks. Each chunk stays below the Knuth cutoff, so
  // the composite draw is exact (no approximation), and lambdas in this
  // library are small enough that the O(lambda) cost is irrelevant.
  int chunks = static_cast<int>(lambda / 25.0) + 1;
  double per = lambda / chunks;
  int total = 0;
  for (int i = 0; i < chunks; ++i) total += SamplePoisson(rng, per);
  return total;
}

double SampleExponential(Rng* rng, double rate) {
  PIPERISK_CHECK(rate > 0.0) << "exponential rate must be > 0";
  return -std::log(rng->NextDoubleOpen()) / rate;
}

double SampleWeibull(Rng* rng, double shape, double scale) {
  PIPERISK_CHECK(shape > 0.0 && scale > 0.0) << "weibull params must be > 0";
  double e = -std::log(rng->NextDoubleOpen());
  return scale * std::pow(e, 1.0 / shape);
}

std::vector<double> SampleDirichlet(Rng* rng,
                                    const std::vector<double>& alpha) {
  std::vector<double> out(alpha.size());
  double sum = 0.0;
  for (size_t i = 0; i < alpha.size(); ++i) {
    out[i] = SampleGamma(rng, alpha[i]);
    sum += out[i];
  }
  if (sum <= 0.0) {
    // Degenerate underflow: uniform fallback.
    std::fill(out.begin(), out.end(), 1.0 / out.size());
    return out;
  }
  for (double& v : out) v /= sum;
  return out;
}

size_t SampleDiscrete(Rng* rng, const std::vector<double>& weights) {
  PIPERISK_CHECK(!weights.empty()) << "empty weight vector";
  double total = 0.0;
  for (double w : weights) {
    PIPERISK_CHECK(w >= 0.0) << "negative weight";
    total += w;
  }
  PIPERISK_CHECK(total > 0.0) << "all-zero weight vector";
  double u = rng->NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;  // guard against rounding at the top end
}

size_t SampleDiscreteLog(Rng* rng, const std::vector<double>& log_weights) {
  PIPERISK_CHECK(!log_weights.empty()) << "empty log-weight vector";
  double max_lw = kNegInf;
  for (double lw : log_weights) max_lw = std::max(max_lw, lw);
  PIPERISK_CHECK(max_lw > kNegInf) << "all log-weights are -inf";
  std::vector<double> w(log_weights.size());
  for (size_t i = 0; i < w.size(); ++i) w[i] = std::exp(log_weights[i] - max_lw);
  return SampleDiscrete(rng, w);
}

size_t SampleDiscreteLog(Rng* rng, std::span<const double> log_weights,
                         std::vector<double>* scratch) {
  PIPERISK_CHECK(!log_weights.empty()) << "empty log-weight vector";
  double max_lw = kNegInf;
  for (double lw : log_weights) max_lw = std::max(max_lw, lw);
  PIPERISK_CHECK(max_lw > kNegInf) << "all log-weights are -inf";
  scratch->resize(log_weights.size());
  double total = 0.0;
  for (size_t i = 0; i < log_weights.size(); ++i) {
    (*scratch)[i] = std::exp(log_weights[i] - max_lw);
    total += (*scratch)[i];
  }
  PIPERISK_CHECK(total > 0.0) << "all-zero weight vector";
  double u = rng->NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < scratch->size(); ++i) {
    acc += (*scratch)[i];
    if (u < acc) return i;
  }
  return scratch->size() - 1;  // guard against rounding at the top end
}

double LogPdfNormal(double x, double mu, double sigma) {
  double z = (x - mu) / sigma;
  return -0.5 * z * z - std::log(sigma) - 0.5 * std::log(2.0 * M_PI);
}

double LogPdfGamma(double x, double shape, double rate) {
  if (x <= 0.0) return kNegInf;
  return shape * std::log(rate) + (shape - 1.0) * std::log(x) - rate * x -
         LogGamma(shape);
}

double LogPdfBeta(double x, double a, double b) {
  if (x <= 0.0 || x >= 1.0) {
    // Allow boundary only when the exponent there is zero.
    if ((x == 0.0 && a == 1.0) || (x == 1.0 && b == 1.0)) return -LogBeta(a, b);
    return kNegInf;
  }
  return (a - 1.0) * std::log(x) + (b - 1.0) * std::log1p(-x) - LogBeta(a, b);
}

double LogPmfBernoulli(int x, double p) {
  if (x == 1) return p > 0.0 ? std::log(p) : kNegInf;
  if (x == 0) return p < 1.0 ? std::log1p(-p) : kNegInf;
  return kNegInf;
}

double LogPmfPoisson(int k, double lambda) {
  if (k < 0) return kNegInf;
  if (lambda == 0.0) return k == 0 ? 0.0 : kNegInf;
  return k * std::log(lambda) - lambda - LogGamma(k + 1.0);
}

double LogPmfBinomial(int k, int n, double p) {
  if (k < 0 || k > n) return kNegInf;
  double log_choose = LogGamma(n + 1.0) - LogGamma(k + 1.0) -
                      LogGamma(n - k + 1.0);
  double term = 0.0;
  if (k > 0) term += (p > 0.0 ? k * std::log(p) : kNegInf);
  if (k < n) term += (p < 1.0 ? (n - k) * std::log1p(-p) : kNegInf);
  return log_choose + term;
}

double LogPdfWeibull(double x, double shape, double scale) {
  if (x <= 0.0) return kNegInf;
  double z = x / scale;
  return std::log(shape / scale) + (shape - 1.0) * std::log(z) -
         std::pow(z, shape);
}

double LogBetaBinomial(int k, int n, double a, double b) {
  if (k < 0 || k > n) return kNegInf;
  double log_choose = LogGamma(n + 1.0) - LogGamma(k + 1.0) -
                      LogGamma(n - k + 1.0);
  return log_choose + LogBeta(a + k, b + n - k) - LogBeta(a, b);
}

}  // namespace stats
}  // namespace piperisk
