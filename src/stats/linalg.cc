#include "stats/linalg.h"

#include <cmath>

#include "common/logging.h"

namespace piperisk {
namespace stats {

void SymmetricMatrix::AddSymmetric(std::size_t r, std::size_t c, double value) {
  at(r, c) += value;
  if (r != c) at(c, r) += value;
}

void SymmetricMatrix::AddDiagonal(double value) {
  for (std::size_t i = 0; i < dim_; ++i) at(i, i) += value;
}

Result<std::vector<double>> CholeskySolve(const SymmetricMatrix& a,
                                          const std::vector<double>& b) {
  const std::size_t n = a.dim();
  if (b.size() != n) {
    return Status::InvalidArgument("rhs length does not match matrix dim");
  }
  // Lower-triangular factor L with A = L L'.
  std::vector<double> l(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a.at(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l[i * n + k] * l[j * n + k];
      if (i == j) {
        if (sum <= 1e-300) {
          return Status::NumericalError(
              "matrix not positive definite in Cholesky");
        }
        l[i * n + i] = std::sqrt(sum);
      } else {
        l[i * n + j] = sum / l[j * n + j];
      }
    }
  }
  // Forward solve L y = b.
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l[i * n + k] * y[k];
    y[i] = sum / l[i * n + i];
  }
  // Back solve L' x = y.
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= l[k * n + ii] * x[k];
    x[ii] = sum / l[ii * n + ii];
  }
  return x;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  PIPERISK_CHECK(a.size() == b.size()) << "dot length mismatch";
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Norm2(const std::vector<double>& a) { return std::sqrt(Dot(a, a)); }

void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y) {
  PIPERISK_CHECK(x.size() == y->size()) << "axpy length mismatch";
  for (std::size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

}  // namespace stats
}  // namespace piperisk
