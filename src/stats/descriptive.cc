#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace piperisk {
namespace stats {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  size_t n = count_ + other.count_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = n;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  RunningStats rs;
  for (double x : xs) rs.Add(x);
  return rs.variance();
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double Quantile(std::vector<double> xs, double q) {
  PIPERISK_CHECK(!xs.empty()) << "quantile of empty vector";
  PIPERISK_CHECK(q >= 0.0 && q <= 1.0) << "quantile level out of [0,1]";
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  double pos = q * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double Median(std::vector<double> xs) { return Quantile(std::move(xs), 0.5); }

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  PIPERISK_CHECK(xs.size() == ys.size()) << "paired samples differ in length";
  size_t n = xs.size();
  if (n < 2) return 0.0;
  double mx = Mean(xs);
  double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double dx = xs[i] - mx;
    double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> AverageRanks(const std::vector<double>& xs) {
  size_t n = xs.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&xs](size_t a, size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average 1-based rank across the tie block [i, j].
    double avg = 0.5 * static_cast<double>(i + j) + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& xs,
                           const std::vector<double>& ys) {
  PIPERISK_CHECK(xs.size() == ys.size()) << "paired samples differ in length";
  return PearsonCorrelation(AverageRanks(xs), AverageRanks(ys));
}

}  // namespace stats
}  // namespace piperisk
