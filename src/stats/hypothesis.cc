#include "stats/hypothesis.h"

#include <cmath>

#include "stats/descriptive.h"
#include "stats/special.h"

namespace piperisk {
namespace stats {

namespace {

double PValueFor(double t, double dof, Alternative alternative) {
  switch (alternative) {
    case Alternative::kTwoSided:
      return 2.0 * StudentTUpperTail(std::fabs(t), dof);
    case Alternative::kGreater:
      return StudentTUpperTail(t, dof);
    case Alternative::kLess:
      return StudentTCdf(t, dof);
  }
  return 1.0;
}

}  // namespace

Result<TTestResult> OneSampleTTest(const std::vector<double>& xs, double mu0,
                                   Alternative alternative) {
  if (xs.size() < 2) {
    return Status::InvalidArgument("t test needs at least 2 observations");
  }
  double n = static_cast<double>(xs.size());
  double m = Mean(xs);
  double sd = StdDev(xs);
  if (sd <= 0.0) {
    return Status::NumericalError("zero variance sample in t test");
  }
  TTestResult r;
  r.mean_difference = m - mu0;
  r.dof = n - 1.0;
  r.t = r.mean_difference / (sd / std::sqrt(n));
  r.p_value = PValueFor(r.t, r.dof, alternative);
  return r;
}

Result<TTestResult> PairedTTest(const std::vector<double>& a,
                                const std::vector<double>& b,
                                Alternative alternative) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("paired t test needs equal-length samples");
  }
  std::vector<double> diff(a.size());
  for (size_t i = 0; i < a.size(); ++i) diff[i] = a[i] - b[i];
  return OneSampleTTest(diff, 0.0, alternative);
}

Result<TTestResult> WelchTTest(const std::vector<double>& a,
                               const std::vector<double>& b,
                               Alternative alternative) {
  if (a.size() < 2 || b.size() < 2) {
    return Status::InvalidArgument("Welch test needs >= 2 per sample");
  }
  double na = static_cast<double>(a.size());
  double nb = static_cast<double>(b.size());
  double va = Variance(a);
  double vb = Variance(b);
  double se2 = va / na + vb / nb;
  if (se2 <= 0.0) {
    return Status::NumericalError("zero variance samples in Welch test");
  }
  TTestResult r;
  r.mean_difference = Mean(a) - Mean(b);
  r.t = r.mean_difference / std::sqrt(se2);
  // Welch–Satterthwaite degrees of freedom.
  double num = se2 * se2;
  double den = (va / na) * (va / na) / (na - 1.0) +
               (vb / nb) * (vb / nb) / (nb - 1.0);
  r.dof = num / den;
  r.p_value = PValueFor(r.t, r.dof, alternative);
  return r;
}

}  // namespace stats
}  // namespace piperisk
