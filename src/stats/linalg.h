#ifndef PIPERISK_STATS_LINALG_H_
#define PIPERISK_STATS_LINALG_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace piperisk {
namespace stats {

/// Minimal dense linear algebra for the Newton solvers (Cox partial
/// likelihood, Poisson/logistic regression, Weibull NHPP). Matrices are
/// row-major square and small (feature dimension ~ dozens), so simple
/// O(d^3) routines are the right tool.

/// Dense symmetric positive-definite matrix in packed row-major form.
class SymmetricMatrix {
 public:
  explicit SymmetricMatrix(std::size_t dim) : dim_(dim), data_(dim * dim, 0.0) {}

  double& at(std::size_t r, std::size_t c) { return data_[r * dim_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * dim_ + c]; }
  std::size_t dim() const { return dim_; }

  /// Adds `value` to both (r,c) and (c,r) halves (or the diagonal once).
  void AddSymmetric(std::size_t r, std::size_t c, double value);

  /// Adds `value` to every diagonal element (ridge).
  void AddDiagonal(double value);

 private:
  std::size_t dim_;
  std::vector<double> data_;
};

/// Solves A x = b for symmetric positive-definite A via Cholesky; fails when
/// A is not positive definite (within a tolerance).
Result<std::vector<double>> CholeskySolve(const SymmetricMatrix& a,
                                          const std::vector<double>& b);

/// Dot product; vectors must be the same length.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm.
double Norm2(const std::vector<double>& a);

/// y += alpha * x (in place).
void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y);

}  // namespace stats
}  // namespace piperisk

#endif  // PIPERISK_STATS_LINALG_H_
