#ifndef PIPERISK_STATS_BOOTSTRAP_H_
#define PIPERISK_STATS_BOOTSTRAP_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "stats/rng.h"

namespace piperisk {
namespace stats {

/// A two-sided percentile confidence interval from a bootstrap distribution.
struct BootstrapInterval {
  double point = 0.0;  ///< statistic on the original sample
  double lo = 0.0;     ///< lower percentile bound
  double hi = 0.0;     ///< upper percentile bound
  std::vector<double> replicates;  ///< the full bootstrap distribution
};

/// Nonparametric bootstrap of an arbitrary statistic over index resamples.
///
/// `statistic` receives a vector of indices into the caller's data (sampled
/// with replacement) and returns the statistic value on that resample. Used
/// by the evaluation harness to attach uncertainty to AUC values when only a
/// single train/test split is available.
Result<BootstrapInterval> BootstrapIndices(
    size_t n, int replicates, double confidence,
    const std::function<double(const std::vector<size_t>&)>& statistic,
    Rng* rng);

/// Convenience overload: bootstrap the mean of `xs`.
Result<BootstrapInterval> BootstrapMean(const std::vector<double>& xs,
                                        int replicates, double confidence,
                                        Rng* rng);

}  // namespace stats
}  // namespace piperisk

#endif  // PIPERISK_STATS_BOOTSTRAP_H_
