#ifndef PIPERISK_STATS_DISTRIBUTIONS_H_
#define PIPERISK_STATS_DISTRIBUTIONS_H_

#include <span>
#include <vector>

#include "stats/rng.h"

namespace piperisk {
namespace stats {

/// Hand-rolled samplers and densities for every distribution the inference
/// code touches. All samplers take the library Rng so experiment outputs are
/// reproducible bit-for-bit from a seed; all densities are returned on the
/// log scale (the natural scale for MCMC accept ratios).

// --- Sampling ---------------------------------------------------------------

/// Standard normal draw (Marsaglia polar method).
double SampleNormal(Rng* rng);

/// Normal(mu, sigma) draw; sigma > 0.
double SampleNormal(Rng* rng, double mu, double sigma);

/// Gamma(shape, 1) draw. Marsaglia–Tsang squeeze for shape >= 1, boosting
/// trick for shape < 1. shape > 0.
double SampleGamma(Rng* rng, double shape);

/// Gamma(shape, rate) draw (mean shape/rate).
double SampleGamma(Rng* rng, double shape, double rate);

/// Beta(a, b) draw via two gammas; a, b > 0.
double SampleBeta(Rng* rng, double a, double b);

/// Bernoulli(p) draw; p in [0, 1].
bool SampleBernoulli(Rng* rng, double p);

/// Binomial(n, p) draw by inversion for small n*p, otherwise by summing
/// Bernoullis (n is small everywhere we use this).
int SampleBinomial(Rng* rng, int n, double p);

/// Poisson(lambda) draw; Knuth for lambda < 30, PTRS-lite (normal
/// approximation with rejection) above.
int SamplePoisson(Rng* rng, double lambda);

/// Exponential(rate) draw; rate > 0.
double SampleExponential(Rng* rng, double rate);

/// Weibull(shape k, scale lambda) draw.
double SampleWeibull(Rng* rng, double shape, double scale);

/// Dirichlet draw over `alpha.size()` categories.
std::vector<double> SampleDirichlet(Rng* rng, const std::vector<double>& alpha);

/// Draws an index in [0, weights.size()) proportional to `weights`
/// (non-negative, not all zero).
size_t SampleDiscrete(Rng* rng, const std::vector<double>& weights);

/// Draws an index proportional to exp(log_weights - max) — stable for MCMC.
size_t SampleDiscreteLog(Rng* rng, const std::vector<double>& log_weights);

/// Allocation-free overload for hot loops: the exponentiated weights are
/// written into `*scratch` (resized on first use, reused afterwards).
/// Consumes the RNG identically to the allocating overload, so both draw
/// the same index from the same generator state.
size_t SampleDiscreteLog(Rng* rng, std::span<const double> log_weights,
                         std::vector<double>* scratch);

// --- Log densities ----------------------------------------------------------

/// log N(x | mu, sigma).
double LogPdfNormal(double x, double mu, double sigma);

/// log Gamma(x | shape, rate).
double LogPdfGamma(double x, double shape, double rate);

/// log Beta(x | a, b).
double LogPdfBeta(double x, double a, double b);

/// log Bernoulli(x | p) for x in {0,1}.
double LogPmfBernoulli(int x, double p);

/// log Poisson(k | lambda).
double LogPmfPoisson(int k, double lambda);

/// log Binomial(k | n, p).
double LogPmfBinomial(int k, int n, double p);

/// log Weibull(x | shape, scale).
double LogPdfWeibull(double x, double shape, double scale);

/// log Beta-Binomial marginal: probability of k successes in n Bernoulli
/// trials whose rate was integrated against Beta(a, b). This is the collapsed
/// likelihood at the heart of the HBP/DPMHBP samplers.
double LogBetaBinomial(int k, int n, double a, double b);

}  // namespace stats
}  // namespace piperisk

#endif  // PIPERISK_STATS_DISTRIBUTIONS_H_
