#include "stats/bootstrap.h"

#include <algorithm>
#include <numeric>

#include "stats/descriptive.h"

namespace piperisk {
namespace stats {

Result<BootstrapInterval> BootstrapIndices(
    size_t n, int replicates, double confidence,
    const std::function<double(const std::vector<size_t>&)>& statistic,
    Rng* rng) {
  if (n == 0) return Status::InvalidArgument("bootstrap of empty sample");
  if (replicates < 2) {
    return Status::InvalidArgument("bootstrap needs >= 2 replicates");
  }
  if (!(confidence > 0.0 && confidence < 1.0)) {
    return Status::InvalidArgument("confidence must be in (0,1)");
  }
  BootstrapInterval out;
  std::vector<size_t> identity(n);
  std::iota(identity.begin(), identity.end(), size_t{0});
  out.point = statistic(identity);

  std::vector<size_t> resample(n);
  out.replicates.reserve(static_cast<size_t>(replicates));
  for (int r = 0; r < replicates; ++r) {
    for (size_t i = 0; i < n; ++i) {
      resample[i] = static_cast<size_t>(rng->NextBounded(n));
    }
    out.replicates.push_back(statistic(resample));
  }
  double alpha = 1.0 - confidence;
  out.lo = Quantile(out.replicates, alpha / 2.0);
  out.hi = Quantile(out.replicates, 1.0 - alpha / 2.0);
  return out;
}

Result<BootstrapInterval> BootstrapMean(const std::vector<double>& xs,
                                        int replicates, double confidence,
                                        Rng* rng) {
  return BootstrapIndices(
      xs.size(), replicates, confidence,
      [&xs](const std::vector<size_t>& idx) {
        double s = 0.0;
        for (size_t i : idx) s += xs[i];
        return s / static_cast<double>(idx.size());
      },
      rng);
}

}  // namespace stats
}  // namespace piperisk
