#ifndef PIPERISK_STATS_SPECIAL_H_
#define PIPERISK_STATS_SPECIAL_H_

namespace piperisk {
namespace stats {

/// Special functions needed by the hand-rolled inference code. All are
/// double precision, accurate to ~1e-10 relative error over the parameter
/// ranges the models use (shape parameters in [1e-6, 1e6]).

/// log Gamma(x) for x > 0 (Lanczos approximation, g=7, n=9).
double LogGamma(double x);

/// Digamma (psi) function for x > 0 (recurrence to x>=6 + asymptotic series).
double Digamma(double x);

/// Trigamma (psi') function for x > 0.
double Trigamma(double x);

/// log Beta(a, b) = lgamma(a) + lgamma(b) - lgamma(a+b), a,b > 0.
double LogBeta(double a, double b);

/// Regularised lower incomplete gamma P(a, x), a > 0, x >= 0.
/// Series for x < a+1, continued fraction otherwise.
double GammaP(double a, double x);

/// Regularised upper incomplete gamma Q(a, x) = 1 - P(a, x).
double GammaQ(double a, double x);

/// Regularised incomplete beta I_x(a, b), a,b > 0, x in [0, 1]
/// (continued fraction, Numerical-Recipes style with symmetry switch).
double BetaInc(double a, double b, double x);

/// Error function and complement (wrap libm but kept here so all special
/// functions share one header).
double Erf(double x);
double Erfc(double x);

/// Standard normal CDF.
double NormalCdf(double x);

/// Inverse standard normal CDF (Acklam's rational approximation refined by
/// one Halley step); |error| < 1e-12 on (1e-300, 1-1e-16).
double NormalQuantile(double p);

/// CDF of Student's t distribution with `nu` degrees of freedom.
double StudentTCdf(double t, double nu);

/// Upper-tail p-value for a one-sided t test: P(T >= t) with nu dof.
double StudentTUpperTail(double t, double nu);

/// log(1 - exp(x)) for x < 0, numerically stable near 0 and -inf.
double Log1mExp(double x);

/// log(exp(a) + exp(b)) without overflow.
double LogAddExp(double a, double b);

/// Logistic sigmoid 1/(1+exp(-x)), stable for large |x|.
double Sigmoid(double x);

/// Logit log(p/(1-p)) for p in (0,1).
double Logit(double p);

}  // namespace stats
}  // namespace piperisk

#endif  // PIPERISK_STATS_SPECIAL_H_
