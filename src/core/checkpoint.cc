#include "core/checkpoint.h"

#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <utility>

#include "common/strings.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace piperisk {
namespace core {

namespace {

// Little-endian binary container: magic, format version, payload, FNV-1a
// checksum of the payload. All integers are fixed-width u64; doubles travel
// as their IEEE-754 bit pattern (std::bit_cast), never through text.
constexpr std::uint64_t kMagic = 0x70726b636b707431ULL;  // "prkckpt1"
constexpr std::uint64_t kFormatVersion = 1;

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t FnvHash(const char* data, size_t size,
                      std::uint64_t state = kFnvOffset) {
  for (size_t i = 0; i < size; ++i) {
    state ^= static_cast<unsigned char>(data[i]);
    state *= kFnvPrime;
  }
  return state;
}

class ByteWriter {
 public:
  void PutU64(std::uint64_t v) {
    char bytes[8];
    for (int i = 0; i < 8; ++i) {
      bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
    buffer_.append(bytes, 8);
  }
  void PutI64(long long v) { PutU64(static_cast<std::uint64_t>(v)); }
  void PutDouble(double v) { PutU64(std::bit_cast<std::uint64_t>(v)); }
  void PutIntVec(const std::vector<int>& v) {
    PutU64(v.size());
    for (int x : v) PutI64(x);
  }
  void PutI64Vec(const std::vector<long long>& v) {
    PutU64(v.size());
    for (long long x : v) PutI64(x);
  }
  void PutDoubleVec(const std::vector<double>& v) {
    PutU64(v.size());
    for (double x : v) PutDouble(x);
  }

  const std::string& buffer() const { return buffer_; }

 private:
  std::string buffer_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Result<std::uint64_t> U64() {
    if (pos_ + 8 > data_.size()) {
      return Status::ParseError("checkpoint truncated");
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + static_cast<size_t>(i)]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  Result<long long> I64() {
    PIPERISK_ASSIGN_OR_RETURN(std::uint64_t v, U64());
    return static_cast<long long>(v);
  }
  Result<double> Double() {
    PIPERISK_ASSIGN_OR_RETURN(std::uint64_t v, U64());
    return std::bit_cast<double>(v);
  }
  /// Bounded element count: a corrupt length must fail cleanly instead of
  /// attempting a multi-gigabyte allocation.
  Result<size_t> Count() {
    PIPERISK_ASSIGN_OR_RETURN(std::uint64_t v, U64());
    if (v * 8 > data_.size() - std::min(pos_, data_.size())) {
      return Status::ParseError("checkpoint vector length exceeds payload");
    }
    return static_cast<size_t>(v);
  }
  Result<std::vector<int>> IntVec() {
    PIPERISK_ASSIGN_OR_RETURN(size_t n, Count());
    std::vector<int> out(n);
    for (size_t i = 0; i < n; ++i) {
      PIPERISK_ASSIGN_OR_RETURN(long long v, I64());
      out[i] = static_cast<int>(v);
    }
    return out;
  }
  Result<std::vector<long long>> I64Vec() {
    PIPERISK_ASSIGN_OR_RETURN(size_t n, Count());
    std::vector<long long> out(n);
    for (size_t i = 0; i < n; ++i) {
      PIPERISK_ASSIGN_OR_RETURN(out[i], I64());
    }
    return out;
  }
  Result<std::vector<double>> DoubleVec() {
    PIPERISK_ASSIGN_OR_RETURN(size_t n, Count());
    std::vector<double> out(n);
    for (size_t i = 0; i < n; ++i) {
      PIPERISK_ASSIGN_OR_RETURN(out[i], Double());
    }
    return out;
  }

  size_t pos() const { return pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

struct CheckpointMetrics {
  telemetry::Counter* writes;
  telemetry::Counter* write_failures;
  telemetry::Counter* restores;
  telemetry::Histogram* write_us;
  telemetry::Histogram* restore_us;

  static const CheckpointMetrics& Get() {
    static const CheckpointMetrics metrics = [] {
      auto& registry = telemetry::Registry::Global();
      return CheckpointMetrics{
          registry.GetCounter("checkpoint.writes"),
          registry.GetCounter("checkpoint.write_failures"),
          registry.GetCounter("checkpoint.restores"),
          registry.GetHistogram("checkpoint.write_us",
                                telemetry::DefaultTimeBucketsUs()),
          registry.GetHistogram("checkpoint.restore_us",
                                telemetry::DefaultTimeBucketsUs())};
    }();
    return metrics;
  }
};

std::string EncodePayload(const ChainCheckpoint& c) {
  ByteWriter w;
  w.PutI64(c.chain);
  w.PutI64(c.next_sweep);
  w.PutI64(c.total_sweeps);
  w.PutU64(c.fingerprint);
  w.PutU64(c.rng.state);
  w.PutU64(c.rng.inc);
  w.PutDouble(c.alpha);
  w.PutIntVec(c.labels);
  w.PutDoubleVec(c.group_q);
  w.PutI64Vec(c.group_count);
  w.PutU64(c.adapters.size());
  for (const AdapterCheckpoint& a : c.adapters) {
    w.PutDouble(a.step);
    w.PutI64(a.proposals);
    w.PutI64(a.accepts);
  }
  w.PutDoubleVec(c.prob_sum);
  w.PutDoubleVec(c.rate_sum);
  w.PutIntVec(c.k_trace);
  w.PutDoubleVec(c.alpha_trace);
  w.PutDoubleVec(c.qmax_trace);
  w.PutU64(c.group_traces.size());
  for (const std::vector<double>& trace : c.group_traces) {
    w.PutDoubleVec(trace);
  }
  w.PutI64(c.collected);
  w.PutU64(c.proposals);
  w.PutU64(c.accepts);
  return w.buffer();
}

Result<ChainCheckpoint> DecodePayload(std::string_view payload) {
  ByteReader r(payload);
  ChainCheckpoint c;
  PIPERISK_ASSIGN_OR_RETURN(long long chain, r.I64());
  PIPERISK_ASSIGN_OR_RETURN(long long next_sweep, r.I64());
  PIPERISK_ASSIGN_OR_RETURN(long long total_sweeps, r.I64());
  c.chain = static_cast<int>(chain);
  c.next_sweep = static_cast<int>(next_sweep);
  c.total_sweeps = static_cast<int>(total_sweeps);
  PIPERISK_ASSIGN_OR_RETURN(c.fingerprint, r.U64());
  PIPERISK_ASSIGN_OR_RETURN(c.rng.state, r.U64());
  PIPERISK_ASSIGN_OR_RETURN(c.rng.inc, r.U64());
  PIPERISK_ASSIGN_OR_RETURN(c.alpha, r.Double());
  PIPERISK_ASSIGN_OR_RETURN(c.labels, r.IntVec());
  PIPERISK_ASSIGN_OR_RETURN(c.group_q, r.DoubleVec());
  PIPERISK_ASSIGN_OR_RETURN(c.group_count, r.I64Vec());
  PIPERISK_ASSIGN_OR_RETURN(size_t num_adapters, r.Count());
  c.adapters.resize(num_adapters);
  for (AdapterCheckpoint& a : c.adapters) {
    PIPERISK_ASSIGN_OR_RETURN(a.step, r.Double());
    PIPERISK_ASSIGN_OR_RETURN(a.proposals, r.I64());
    PIPERISK_ASSIGN_OR_RETURN(a.accepts, r.I64());
  }
  PIPERISK_ASSIGN_OR_RETURN(c.prob_sum, r.DoubleVec());
  PIPERISK_ASSIGN_OR_RETURN(c.rate_sum, r.DoubleVec());
  PIPERISK_ASSIGN_OR_RETURN(c.k_trace, r.IntVec());
  PIPERISK_ASSIGN_OR_RETURN(c.alpha_trace, r.DoubleVec());
  PIPERISK_ASSIGN_OR_RETURN(c.qmax_trace, r.DoubleVec());
  PIPERISK_ASSIGN_OR_RETURN(size_t num_traces, r.Count());
  c.group_traces.resize(num_traces);
  for (std::vector<double>& trace : c.group_traces) {
    PIPERISK_ASSIGN_OR_RETURN(trace, r.DoubleVec());
  }
  PIPERISK_ASSIGN_OR_RETURN(c.collected, r.I64());
  PIPERISK_ASSIGN_OR_RETURN(c.proposals, r.U64());
  PIPERISK_ASSIGN_OR_RETURN(c.accepts, r.U64());
  if (r.pos() != payload.size()) {
    return Status::ParseError("checkpoint has trailing bytes");
  }
  if (c.next_sweep < 0 || c.total_sweeps < 0 ||
      c.next_sweep > c.total_sweeps || c.chain < 0) {
    return Status::ParseError("checkpoint sweep bookkeeping out of range");
  }
  return c;
}

}  // namespace

Fingerprint& Fingerprint::Add(std::string_view text) {
  state_ = FnvHash(text.data(), text.size(), state_);
  // Separator so Add("ab") + Add("c") != Add("a") + Add("bc").
  state_ ^= 0xff;
  state_ *= kFnvPrime;
  return *this;
}

Fingerprint& Fingerprint::Add(std::uint64_t value) {
  char bytes[8];
  std::memcpy(bytes, &value, 8);
  state_ = FnvHash(bytes, 8, state_);
  return *this;
}

Fingerprint& Fingerprint::Add(double value) {
  return Add(std::bit_cast<std::uint64_t>(value));
}

std::string ChainCheckpointPath(const std::string& dir, const std::string& tag,
                                int chain) {
  return StrFormat("%s/%s.chain%d.ckpt", dir.c_str(), tag.c_str(), chain);
}

Status SaveChainCheckpoint(const ChainCheckpoint& checkpoint,
                           const std::string& path) {
  const CheckpointMetrics& metrics = CheckpointMetrics::Get();
  telemetry::ScopedTimer timer(metrics.write_us, "checkpoint.write");

  ByteWriter header;
  const std::string payload = EncodePayload(checkpoint);
  header.PutU64(kMagic);
  header.PutU64(kFormatVersion);
  header.PutU64(payload.size());
  header.PutU64(FnvHash(payload.data(), payload.size()));

  // Atomic-rename protocol: a crash can abandon a stale .tmp (overwritten by
  // the next write), but `path` only ever holds a complete snapshot.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      metrics.write_failures->Increment();
      return Status::IoError("cannot open checkpoint for writing: " + tmp);
    }
    out.write(header.buffer().data(),
              static_cast<std::streamsize>(header.buffer().size()));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out) {
      metrics.write_failures->Increment();
      return Status::IoError("checkpoint write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    metrics.write_failures->Increment();
    return Status::IoError("cannot rename checkpoint into place: " + path);
  }
  metrics.writes->Increment();
  return Status::OK();
}

Result<ChainCheckpoint> LoadChainCheckpoint(const std::string& path) {
  const CheckpointMetrics& metrics = CheckpointMetrics::Get();
  telemetry::ScopedTimer timer(metrics.restore_us, "checkpoint.restore");

  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open checkpoint: " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());

  ByteReader header(bytes);
  auto fail = [&path](const std::string& what) {
    return Status::ParseError("checkpoint " + path + ": " + what);
  };
  PIPERISK_ASSIGN_OR_RETURN(std::uint64_t magic, header.U64());
  if (magic != kMagic) return fail("not a piperisk checkpoint (bad magic)");
  PIPERISK_ASSIGN_OR_RETURN(std::uint64_t version, header.U64());
  if (version != kFormatVersion) {
    return fail(StrFormat("unsupported format version %llu (expected %llu)",
                          static_cast<unsigned long long>(version),
                          static_cast<unsigned long long>(kFormatVersion)));
  }
  PIPERISK_ASSIGN_OR_RETURN(std::uint64_t payload_size, header.U64());
  PIPERISK_ASSIGN_OR_RETURN(std::uint64_t checksum, header.U64());
  if (bytes.size() - header.pos() != payload_size) {
    return fail("payload size mismatch (truncated or corrupt)");
  }
  std::string_view payload(bytes.data() + header.pos(),
                           static_cast<size_t>(payload_size));
  if (FnvHash(payload.data(), payload.size()) != checksum) {
    return fail("checksum mismatch (corrupt)");
  }
  auto decoded = DecodePayload(payload);
  if (!decoded.ok()) {
    return fail(decoded.status().message());
  }
  metrics.restores->Increment();
  return decoded;
}

}  // namespace core
}  // namespace piperisk
