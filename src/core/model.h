#ifndef PIPERISK_CORE_MODEL_H_
#define PIPERISK_CORE_MODEL_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/scoring.h"
#include "data/dataset.h"
#include "data/split.h"
#include "net/feature.h"

namespace piperisk {
namespace core {

/// Everything a failure-prediction model needs, prebuilt once per
/// (dataset, split, category) so all compared models train and score on the
/// *identical* view of the data — the paper's "same setting for fair
/// comparison" requirement.
struct ModelInput {
  const data::RegionDataset* dataset = nullptr;
  data::TemporalSplit split;
  net::PipeCategory category = net::PipeCategory::kCriticalMain;

  /// Segment-level training rows, all segments of the selected category.
  std::vector<data::SegmentCounts> segment_counts;
  /// Standardised feature vector per segment row (aligned with
  /// segment_counts).
  std::vector<std::vector<double>> segment_features;

  /// Pipes of the selected category, with standardised pipe-level features
  /// and test outcomes (aligned by index).
  std::vector<const net::Pipe*> pipes;
  std::vector<std::vector<double>> pipe_features;
  std::vector<data::PipeOutcome> outcomes;

  /// For each pipe (by index), the row indices of its segments in
  /// segment_counts.
  std::vector<std::vector<size_t>> pipe_segment_rows;

  /// Batch-scoring views, built once by Build(): the CSR flattening of
  /// pipe_segment_rows and the pipe feature table flattened row-major.
  /// Scorers stream these instead of the nested-vector layouts above.
  PipeSegmentIndex segment_index;
  FeatureMatrix pipe_feature_matrix;

  /// Pipe id -> index into `pipes`.
  std::unordered_map<net::PipeId, size_t> pipe_position;

  /// The fitted encoder (standardisation statistics are from this input's
  /// training features).
  net::FeatureConfig feature_config;
  std::vector<std::string> feature_names;

  size_t num_segments() const { return segment_counts.size(); }
  size_t num_pipes() const { return pipes.size(); }
  size_t feature_dim() const { return feature_names.size(); }

  /// Builds the input. Encodes features, fits standardisation on the
  /// selected segments/pipes, assembles count and outcome tables.
  static Result<ModelInput> Build(const data::RegionDataset& dataset,
                                  const data::TemporalSplit& split,
                                  net::PipeCategory category,
                                  const net::FeatureConfig& features);
};

/// Common interface for every compared approach (DPMHBP, HBP, Cox, Weibull,
/// rankers, ...). Models are fit once and then asked for a risk score per
/// pipe; only the *ordering* of scores matters for the paper's metrics.
class FailureModel {
 public:
  virtual ~FailureModel() = default;

  /// Short stable name used in experiment tables ("DPMHBP", "Cox", ...).
  virtual std::string name() const = 0;

  /// Trains on the input's training window.
  virtual Status Fit(const ModelInput& input) = 0;

  /// Risk scores aligned with input.pipes (higher = riskier). Must be called
  /// after a successful Fit with the same input.
  virtual Result<std::vector<double>> ScorePipes(const ModelInput& input) = 0;

  /// Batch scoring entry point: like ScorePipes(input) but runs the blocked
  /// parallel path where the model provides one (DPMHBP and the linear
  /// baselines do). Scores are bit-identical to the serial overload for
  /// every options.num_threads. The base implementation ignores `options`
  /// and forwards to the serial overload.
  virtual Result<std::vector<double>> ScorePipes(const ModelInput& input,
                                                 const ScoreOptions& options);
};

using ModelPtr = std::unique_ptr<FailureModel>;

}  // namespace core
}  // namespace piperisk

#endif  // PIPERISK_CORE_MODEL_H_
