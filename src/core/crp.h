#ifndef PIPERISK_CORE_CRP_H_
#define PIPERISK_CORE_CRP_H_

#include <cstddef>
#include <vector>

#include "stats/rng.h"

namespace piperisk {
namespace core {

/// Chinese restaurant process utilities (Sect. 18.3.2, Eq. 18.6): the
/// constructive representation of the Dirichlet process the DPMHBP uses for
/// adaptive segment grouping.

/// Samples a full table assignment for `n` customers from the CRP prior
/// with concentration `alpha`. Returned labels are dense in [0, K).
std::vector<int> SampleCrpAssignment(std::size_t n, double alpha,
                                     stats::Rng* rng);

/// Log prior predictive weights for seating one customer given current
/// table occupancies: log n_r for existing tables, log alpha for a new one
/// (the shared normaliser n - 1 + alpha is dropped). `occupancy` must
/// exclude the customer being seated.
std::vector<double> CrpLogSeatingWeights(const std::vector<int>& occupancy,
                                         double alpha);

/// Expected number of occupied tables after n customers:
/// sum_{i=0}^{n-1} alpha / (alpha + i).
double CrpExpectedTables(std::size_t n, double alpha);

/// Log joint probability of a table assignment under the CRP (the
/// exchangeable partition probability function). `labels` need not be
/// dense. Useful for tests of exchangeability.
double CrpLogProbability(const std::vector<int>& labels, double alpha);

/// One Escobar–West auxiliary-variable resampling step for the DP
/// concentration alpha, under a Gamma(shape, rate) hyperprior, given the
/// current number of occupied tables k and the number of customers n.
/// Returns the new alpha.
double ResampleCrpConcentration(double alpha, std::size_t k, std::size_t n,
                                double prior_shape, double prior_rate,
                                stats::Rng* rng);

}  // namespace core
}  // namespace piperisk

#endif  // PIPERISK_CORE_CRP_H_
