#include "core/diagnostics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/strings.h"
#include "common/telemetry.h"
#include "core/mcmc.h"
#include "stats/descriptive.h"

namespace piperisk {
namespace core {

double SplitRhat(const std::vector<std::vector<double>>& chains) {
  // Split every chain into its first and second half; each half becomes an
  // independent pseudo-chain of the classic Gelman–Rubin statistic, which
  // makes R̂ sensitive to within-chain trends even for a single chain.
  size_t half = std::numeric_limits<size_t>::max();
  for (const auto& c : chains) half = std::min(half, c.size() / 2);
  if (chains.empty() || half < 2) return 1.0;

  std::vector<std::vector<double>> halves;
  halves.reserve(2 * chains.size());
  for (const auto& c : chains) {
    // Truncate to the common half length so every pseudo-chain is equal-n.
    halves.emplace_back(c.begin(), c.begin() + static_cast<long>(half));
    halves.emplace_back(c.end() - static_cast<long>(half), c.end());
  }

  const double n = static_cast<double>(half);
  std::vector<double> means(halves.size());
  double w = 0.0;  // mean within-half sample variance
  for (size_t j = 0; j < halves.size(); ++j) {
    means[j] = stats::Mean(halves[j]);
    w += stats::Variance(halves[j]);
  }
  w /= static_cast<double>(halves.size());
  const double b = n * stats::Variance(means);  // between-half variance * n
  if (w <= 0.0) {
    return b <= 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  const double var_plus = (n - 1.0) / n * w + b / n;
  return std::sqrt(var_plus / w);
}

double PooledEss(const std::vector<std::vector<double>>& chains) {
  double ess = 0.0;
  for (const auto& c : chains) ess += EffectiveSampleSize(c);
  return ess;
}

TraceDiagnostic DiagnoseTrace(const std::string& name,
                              const std::vector<double>& trace) {
  return DiagnoseChains(name, {trace});
}

TraceDiagnostic DiagnoseChains(const std::string& name,
                               const std::vector<std::vector<double>>& chains) {
  TraceDiagnostic d;
  d.name = name;
  d.chains = std::max<size_t>(chains.size(), 1);
  std::vector<double> pooled;
  for (const auto& c : chains) pooled.insert(pooled.end(), c.begin(), c.end());
  d.samples = pooled.size();
  if (pooled.empty()) return d;
  d.mean = stats::Mean(pooled);
  d.stddev = stats::StdDev(pooled);
  d.ess = PooledEss(chains);
  // Geweke compares early vs. late draws, which only makes sense within one
  // chain; report it for the first chain and leave trend detection across
  // chains to R̂.
  d.geweke_z = GewekeZ(chains.front());
  d.rhat = SplitRhat(chains);
  // Every diagnosed trace also lands in the metrics registry, so a
  // --metrics-out snapshot carries the final R̂/ESS alongside the sampler
  // counters (the rendered table reads from the same numbers).
  auto& registry = telemetry::Registry::Global();
  registry.GetGauge(StrFormat("diag.rhat.%s", name.c_str()))->Set(d.rhat);
  registry.GetGauge(StrFormat("diag.ess.%s", name.c_str()))->Set(d.ess);
  return d;
}

std::vector<TraceDiagnostic> DiagnoseHbp(const HbpModel& model) {
  std::vector<TraceDiagnostic> out;
  const auto& by_chain = model.group_rate_chain_traces();  // [chain][group]
  if (by_chain.empty()) return out;
  const size_t num_groups = by_chain.front().size();
  for (size_t g = 0; g < num_groups; ++g) {
    std::vector<std::vector<double>> chains;
    chains.reserve(by_chain.size());
    for (const auto& chain : by_chain) chains.push_back(chain[g]);
    out.push_back(DiagnoseChains(StrFormat("q[%zu]", g), chains));
  }
  return out;
}

DpmhbpDiagnostics DiagnoseDpmhbp(const DpmhbpModel& model) {
  DpmhbpDiagnostics out;
  std::vector<std::vector<double>> group_chains;
  for (const auto& chain : model.num_groups_chain_traces()) {
    std::vector<double> trace;
    trace.reserve(chain.size());
    for (int k : chain) trace.push_back(static_cast<double>(k));
    group_chains.push_back(std::move(trace));
  }
  out.num_groups = DiagnoseChains("K (groups)", group_chains);
  out.alpha = DiagnoseChains("alpha", model.alpha_chain_traces());
  out.q_max = DiagnoseChains("q_max", model.qmax_chain_traces());
  out.mean_groups = out.num_groups.mean;
  const bool multi = out.alpha.chains > 1;
  auto ok = [multi](const TraceDiagnostic& d) {
    return std::fabs(d.geweke_z) < 2.0 && d.ess > 10.0 &&
           (!multi || d.rhat < 1.1);
  };
  out.converged = ok(out.num_groups) && ok(out.alpha);
  return out;
}

std::string RenderDiagnostics(
    const std::vector<TraceDiagnostic>& diagnostics) {
  std::string out =
      StrFormat("%-12s %10s %10s %8s %8s %8s %7s %8s\n", "trace", "mean", "sd",
                "ESS", "geweke", "Rhat", "chains", "n");
  for (const auto& d : diagnostics) {
    out += StrFormat("%-12s %10.5f %10.5f %8.1f %8.2f %8.4f %7zu %8zu\n",
                     d.name.c_str(), d.mean, d.stddev, d.ess, d.geweke_z,
                     d.rhat, d.chains, d.samples);
  }
  return out;
}

}  // namespace core
}  // namespace piperisk
