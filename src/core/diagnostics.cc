#include "core/diagnostics.h"

#include <cmath>

#include "common/strings.h"
#include "core/mcmc.h"
#include "stats/descriptive.h"

namespace piperisk {
namespace core {

namespace {

TraceDiagnostic Diagnose(const std::string& name,
                         const std::vector<double>& trace) {
  TraceDiagnostic d;
  d.name = name;
  d.samples = trace.size();
  if (trace.empty()) return d;
  d.mean = stats::Mean(trace);
  d.stddev = stats::StdDev(trace);
  d.ess = EffectiveSampleSize(trace);
  d.geweke_z = GewekeZ(trace);
  return d;
}

}  // namespace

std::vector<TraceDiagnostic> DiagnoseHbp(const HbpModel& model) {
  std::vector<TraceDiagnostic> out;
  const auto& traces = model.group_rate_traces();
  for (size_t g = 0; g < traces.size(); ++g) {
    out.push_back(Diagnose(StrFormat("q[%zu]", g), traces[g]));
  }
  return out;
}

DpmhbpDiagnostics DiagnoseDpmhbp(const DpmhbpModel& model) {
  DpmhbpDiagnostics out;
  std::vector<double> groups;
  groups.reserve(model.num_groups_trace().size());
  for (int k : model.num_groups_trace()) {
    groups.push_back(static_cast<double>(k));
  }
  out.num_groups = Diagnose("K (groups)", groups);
  out.alpha = Diagnose("alpha", model.alpha_trace());
  out.mean_groups = out.num_groups.mean;
  out.converged = std::fabs(out.num_groups.geweke_z) < 2.0 &&
                  std::fabs(out.alpha.geweke_z) < 2.0 &&
                  out.num_groups.ess > 10.0 && out.alpha.ess > 10.0;
  return out;
}

std::string RenderDiagnostics(
    const std::vector<TraceDiagnostic>& diagnostics) {
  std::string out = StrFormat("%-12s %10s %10s %8s %8s %8s\n", "trace", "mean",
                              "sd", "ESS", "geweke", "n");
  for (const auto& d : diagnostics) {
    out += StrFormat("%-12s %10.5f %10.5f %8.1f %8.2f %8zu\n", d.name.c_str(),
                     d.mean, d.stddev, d.ess, d.geweke_z, d.samples);
  }
  return out;
}

}  // namespace core
}  // namespace piperisk
