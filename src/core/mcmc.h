#ifndef PIPERISK_CORE_MCMC_H_
#define PIPERISK_CORE_MCMC_H_

#include <functional>
#include <vector>

#include "stats/rng.h"

namespace piperisk {
namespace core {

/// Metropolis-within-Gibbs building blocks (Sect. 18.3.3: "we choose to
/// utilise a Metropolis-within-Gibbs sampling method for inference" because
/// the extra HBP hierarchy breaks conjugacy for the group means q_k).

/// One random-walk Metropolis step for a parameter living in (0, 1),
/// proposed on the logit scale (symmetric in logit space; the Jacobian
/// log|dx/dlogit| = log(x(1-x)) is accounted for).
///
/// `log_target` evaluates the unnormalised log posterior density of the
/// constrained value. Returns the (possibly unchanged) value and reports
/// acceptance through `accepted`.
double MetropolisLogitStep(double current,
                           const std::function<double(double)>& log_target,
                           double step_size, stats::Rng* rng, bool* accepted);

/// As above, but the log target at `current` is already known (typically
/// from a per-sweep likelihood cache), so `log_target` is evaluated only at
/// the proposal — halving the dominant cost of a sweep. On acceptance
/// `*current_log_target` is replaced by the proposal's value. Consumes the
/// RNG identically to the two-evaluation overload.
double MetropolisLogitStep(double current, double* current_log_target,
                           const std::function<double(double)>& log_target,
                           double step_size, stats::Rng* rng, bool* accepted);

/// One random-walk Metropolis step for a positive parameter, proposed on
/// the log scale (Jacobian handled analogously).
double MetropolisLogStep(double current,
                         const std::function<double(double)>& log_target,
                         double step_size, stats::Rng* rng, bool* accepted);

/// Split form of the cached-target MetropolisLogitStep, for within-chain
/// parallel sweeps: a serial coordinator pre-draws every group's proposal in
/// canonical group order (consuming the RNG exactly as the fused step
/// would: one normal, then one uniform IFF the proposal stayed inside
/// (0, 1)), workers evaluate the pure log targets in parallel, and the
/// coordinator merges accept/reject decisions back in group order. The
/// fused overload is bit-equivalent to Draw + Accept on one thread.
struct LogitProposal {
  double proposal = 0.0;
  double log_u = 0.0;        ///< log of the pre-drawn acceptance uniform
  bool in_support = false;   ///< false → auto-reject, no uniform consumed
};

/// Draws the proposal (and, when in support, the acceptance uniform) for one
/// logit-scale step. RNG stream position afterwards matches the fused step.
LogitProposal DrawLogitProposal(double current, double step_size,
                                stats::Rng* rng);

/// Applies the accept/reject decision given the proposal's log target.
/// Pass proposal_ll only for in-support proposals (out-of-support ones are
/// rejected without evaluating the target, mirroring the fused step). On
/// acceptance *current_log_target is replaced and true is returned. Also
/// records the proposal in the Metropolis telemetry counters.
bool AcceptLogitProposal(const LogitProposal& prop, double current,
                         double proposal_ll, double* current_log_target);

/// Robbins–Monro adaptation of a random-walk step size toward a target
/// acceptance rate (0.44 is optimal for one-dimensional walks). Call Update
/// after every proposal during burn-in, then freeze.
class StepSizeAdapter {
 public:
  explicit StepSizeAdapter(double initial_step = 0.5,
                           double target_acceptance = 0.44)
      : step_(initial_step), target_(target_acceptance) {}

  void Update(bool accepted);
  double step() const { return step_; }
  double acceptance_rate() const {
    return proposals_ > 0 ? static_cast<double>(accepts_) / proposals_ : 0.0;
  }

  /// Serialisable adaptation state (the target is config-derived, not
  /// state). RestoreState(SaveState()) continues adaptation bit-for-bit,
  /// which checkpoint/resume relies on.
  struct State {
    double step = 0.0;
    long long proposals = 0;
    long long accepts = 0;
  };
  State SaveState() const { return State{step_, proposals_, accepts_}; }
  void RestoreState(const State& state) {
    step_ = state.step;
    proposals_ = state.proposals;
    accepts_ = state.accepts;
  }

 private:
  double step_;
  double target_;
  long long proposals_ = 0;
  long long accepts_ = 0;
};

/// Effective sample size of a trace via the initial-positive-sequence
/// autocorrelation estimator (Geyer 1992). Returns trace.size() when
/// autocorrelation is negligible.
double EffectiveSampleSize(const std::vector<double>& trace);

/// Geweke convergence z-score comparing the first `first_frac` and last
/// `last_frac` of the trace (|z| >~ 2 suggests non-convergence).
double GewekeZ(const std::vector<double>& trace, double first_frac = 0.1,
               double last_frac = 0.5);

}  // namespace core
}  // namespace piperisk

#endif  // PIPERISK_CORE_MCMC_H_
