#ifndef PIPERISK_CORE_HEARTBEAT_H_
#define PIPERISK_CORE_HEARTBEAT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace piperisk {
namespace core {

/// Where and how often a fit writes live progress. Empty path: disabled
/// (every monitor call is a cheap no-op). Heartbeats are observational only:
/// the config is not fingerprinted, the monitor thread never touches chain
/// RNG streams, and fits produce bit-identical artefacts with heartbeats on
/// or off.
struct HeartbeatConfig {
  std::string path;
  double every_s = 5.0;
  /// Free-form run label stamped into the file ("fit dpmhbp", ...).
  std::string label;
};

/// Background progress reporter for long fits: a dedicated thread writes an
/// atomic (`.tmp` + rename) JSON file every `every_s` seconds with per-chain
/// sweep progress, sweeps/s, Metropolis acceptance trend, a live split-R̂
/// over the monitored draws so far, shard progress (streaming fits), peak
/// RSS, and an ETA — so a stalled or kill -9'd fit is diagnosable from the
/// artefact alone.
///
/// Recording calls are wait-free (relaxed atomics) except ReportDraw, which
/// takes a mutex at sweep granularity (never per row). The writer thread is
/// the only reader. See DESIGN.md "Observability" for the file schema.
class HeartbeatMonitor {
 public:
  /// `total_sweeps` and `num_chains` size the progress model; streaming fits
  /// with serial chains pass their values the same way.
  HeartbeatMonitor(HeartbeatConfig config, int num_chains, int total_sweeps);
  ~HeartbeatMonitor();

  HeartbeatMonitor(const HeartbeatMonitor&) = delete;
  HeartbeatMonitor& operator=(const HeartbeatMonitor&) = delete;

  bool enabled() const { return !config_.path.empty(); }

  /// Starts the writer thread (no-op when disabled). Idempotent.
  void Start();

  /// Final write + joins the writer thread. Idempotent; also run by the
  /// destructor.
  void Stop();

  /// Coarse run phase shown in the file ("init", "sweep", "stream-shards",
  /// "score", "done", ...).
  void SetPhase(const std::string& phase);

  /// Chain `chain` has completed `sweeps_done` of total_sweeps sweeps.
  void ReportSweep(int chain, int sweeps_done);

  /// Cumulative Metropolis proposal/accept totals for one chain; the writer
  /// derives the recent acceptance trend by differencing ticks.
  void ReportAcceptance(int chain, std::int64_t proposals,
                        std::int64_t accepted);

  /// Appends one post-burn-in draw of the monitored scalar (a
  /// label-switching-invariant quantity like q_max) for the live split-R̂.
  void ReportDraw(int chain, double value);

  /// Drops chain draws past `sweeps_done` kept draws and rewinds the sweep
  /// counter — called when a chain restarts or resumes from a checkpoint so
  /// retried sweeps are not double-counted.
  void ResetChain(int chain, int sweeps_done, int draws_kept);

  /// Marks a chain failed (retries exhausted); shown in the file.
  void ReportChainFailed(int chain);

  /// Shard progress of streaming passes (done of total).
  void ReportShards(int done, int total);

  /// Forces one write now (also what the writer thread calls every tick).
  /// Exposed for tests and for the final write in Stop.
  Status WriteNow();

 private:
  struct alignas(64) ChainCell {
    std::atomic<int> sweeps{0};
    std::atomic<std::int64_t> proposals{0};
    std::atomic<std::int64_t> accepted{0};
    std::atomic<bool> failed{false};
  };

  void WriterLoop();
  std::string Render();

  const HeartbeatConfig config_;
  const int num_chains_;
  const int total_sweeps_;
  const std::chrono::steady_clock::time_point started_;

  std::vector<std::unique_ptr<ChainCell>> chains_;
  std::atomic<int> shards_done_{0};
  std::atomic<int> shards_total_{0};

  std::mutex state_mu_;  ///< guards phase_ and draws_
  std::string phase_ = "init";
  std::vector<std::vector<double>> draws_;

  // Writer-thread-only tick state for recent-rate derivation.
  std::chrono::steady_clock::time_point last_tick_;
  std::int64_t last_sweeps_total_ = 0;
  std::int64_t last_proposals_ = 0;
  std::int64_t last_accepted_ = 0;
  double recent_sweeps_per_s_ = 0.0;
  double recent_acceptance_ = 0.0;

  std::mutex writer_mu_;
  std::condition_variable writer_cv_;
  std::atomic<bool> stopping_{false};
  bool started_thread_ = false;
  std::thread writer_;
};

/// Peak resident set size of this process in bytes (getrusage), 0 when
/// unavailable. Also recorded on the "process.peak_rss_bytes" max-gauge.
std::int64_t PeakRssBytes();

}  // namespace core
}  // namespace piperisk

#endif  // PIPERISK_CORE_HEARTBEAT_H_
