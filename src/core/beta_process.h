#ifndef PIPERISK_CORE_BETA_PROCESS_H_
#define PIPERISK_CORE_BETA_PROCESS_H_

#include <vector>

#include "common/result.h"
#include "stats/rng.h"

namespace piperisk {
namespace core {

/// A discrete beta process H = sum_i pi_i delta_{omega_i} on an atomic base
/// measure (Eq. 18.2): given H0 = sum_i p_i delta_{omega_i} and a
/// concentration c, each atom weight is pi_i ~ Beta(c p_i, c (1 - p_i)).
///
/// In the pipe application the atom space is the (conceptually infinite) set
/// of distinct pipes; concretely we only ever materialise the atoms observed
/// in a dataset, which is exactly what the conjugate posterior (Eq. 18.4)
/// needs. The class supports:
///   * sampling H from the prior,
///   * sampling Bernoulli-process draws X_j ~ BeP(H) (Eq. 18.3),
///   * the conjugate posterior update given a stack of such draws.
class BetaProcess {
 public:
  /// Constructs the prior BP(c, H0) with base weights `base_weights` in
  /// (0, 1). Fails if c <= 0 or any weight is outside (0, 1).
  static Result<BetaProcess> Create(double concentration,
                                    std::vector<double> base_weights);

  /// Draws the atom weights pi_i ~ Beta(c p_i, c(1 - p_i)).
  std::vector<double> SampleWeights(stats::Rng* rng) const;

  /// Draws one Bernoulli-process realisation X ~ BeP(H) for a given weight
  /// vector (one bit per atom).
  static std::vector<int> SampleBernoulliDraw(const std::vector<double>& weights,
                                              stats::Rng* rng);

  /// Conjugate posterior (Eq. 18.4): given m draws summarised as per-atom
  /// success counts `successes` (sum over draws of x_ij), returns the
  /// posterior beta process with
  ///   c'  = c + m,
  ///   H0' = c/(c+m) H0 + 1/(c+m) sum_j X_j.
  /// Fails if any count exceeds m.
  Result<BetaProcess> Posterior(const std::vector<int>& successes,
                                int num_draws) const;

  /// Expected atom weights under the current process (= base weights).
  const std::vector<double>& base_weights() const { return base_weights_; }
  double concentration() const { return concentration_; }
  size_t num_atoms() const { return base_weights_.size(); }

 private:
  BetaProcess(double concentration, std::vector<double> base_weights)
      : concentration_(concentration), base_weights_(std::move(base_weights)) {}

  double concentration_;
  std::vector<double> base_weights_;
};

}  // namespace core
}  // namespace piperisk

#endif  // PIPERISK_CORE_BETA_PROCESS_H_
