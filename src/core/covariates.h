#ifndef PIPERISK_CORE_COVARIATES_H_
#define PIPERISK_CORE_COVARIATES_H_

#include <vector>

#include "common/result.h"

namespace piperisk {
namespace core {

/// Multiplicative covariate effects for the Bayesian hierarchy.
///
/// The chapter's protocol applies features "multiplicatively similar to the
/// Cox proportional hazard model" to HBP and DPMHBP. We realise that as a
/// log-linear exposure model fitted by ridge-regularised Poisson regression:
///   k_i ~ Poisson(n_i * r0 * exp(w' z_i)),
/// whose normalised fitted multiplier m_i = exp(w' z_i) scales each
/// segment's prior failure rate inside the hierarchy. Keeping this fit
/// outside the MCMC preserves the Beta–Bernoulli collapsed updates.
struct PoissonRegressionConfig {
  double ridge = 1.0;        ///< L2 penalty on weights (not intercept)
  int max_iterations = 100;  ///< Newton iterations
  double tolerance = 1e-8;   ///< convergence on gradient norm
};

/// Fitted log-linear rate model.
class PoissonRegression {
 public:
  /// Fits on rows `features` with event counts `counts` and exposures
  /// `exposures` (> 0; e.g. observed years). Uses Newton's method with step
  /// halving; fails if dimensions are inconsistent or the fit diverges.
  static Result<PoissonRegression> Fit(
      const std::vector<std::vector<double>>& features,
      const std::vector<double>& counts, const std::vector<double>& exposures,
      const PoissonRegressionConfig& config);

  /// Linear predictor w' z (no intercept, no exposure).
  double LinearPredictor(const std::vector<double>& features) const;

  /// Expected event rate per unit exposure: exp(intercept + w' z).
  double Rate(const std::vector<double>& features) const;

  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }
  int iterations_used() const { return iterations_used_; }

 private:
  std::vector<double> weights_;
  double intercept_ = 0.0;
  int iterations_used_ = 0;
};

/// Computes per-row multipliers m_i = exp(w' z_i), normalised to mean 1 and
/// clamped to [min_mult, max_mult] — the form consumed by the HBP/DPMHBP
/// hierarchy.
std::vector<double> NormalisedMultipliers(
    const PoissonRegression& model,
    const std::vector<std::vector<double>>& features, double min_mult,
    double max_mult);

}  // namespace core
}  // namespace piperisk

#endif  // PIPERISK_CORE_COVARIATES_H_
