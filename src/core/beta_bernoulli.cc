#include "core/beta_bernoulli.h"

#include <limits>

#include "common/logging.h"
#include "stats/special.h"

namespace piperisk {
namespace core {

BetaParams Posterior(const BetaParams& prior, int k, int n) {
  PIPERISK_CHECK(k >= 0 && n >= k) << "invalid counts k=" << k << " n=" << n;
  double a = prior.a() + k;
  double b = prior.b() + (n - k);
  BetaParams post;
  post.c = a + b;
  post.q = a / post.c;
  return post;
}

double PosteriorMeanRate(const BetaParams& prior, int k, int n) {
  return (prior.a() + k) / (prior.c + n);
}

double PredictiveNext(const BetaParams& prior, int k, int n) {
  return PosteriorMeanRate(prior, k, n);
}

double LogMarginalNoBinom(double k, double n, double a, double b) {
  if (k < 0.0 || k > n || a <= 0.0 || b <= 0.0) {
    return -std::numeric_limits<double>::infinity();
  }
  return stats::LogBeta(a + k, b + (n - k)) - stats::LogBeta(a, b);
}

double LogMarginalNoBinomHoisted(double k, double n, double a, double b,
                                 double log_norm_const) {
  if (k < 0.0 || k > n || a <= 0.0 || b <= 0.0) {
    return -std::numeric_limits<double>::infinity();
  }
  return stats::LogGamma(a + k) + stats::LogGamma(b + (n - k)) -
         stats::LogGamma(a) - stats::LogGamma(b) + log_norm_const;
}

void LogMarginalNoBinomHoistedBatch(const double* k, const double* n, double a,
                                    double b, const double* log_norm_const,
                                    double* out, std::size_t count) {
  if (a <= 0.0 || b <= 0.0) {
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = -std::numeric_limits<double>::infinity();
    }
    return;
  }
  // Hoisted once for the whole batch; bit-identical to the scalar form
  // because the scalar form subtracts the same two values left-to-right.
  const double lgamma_a = stats::LogGamma(a);
  const double lgamma_b = stats::LogGamma(b);
  for (std::size_t i = 0; i < count; ++i) {
    if (k[i] < 0.0 || k[i] > n[i]) {
      out[i] = -std::numeric_limits<double>::infinity();
      continue;
    }
    out[i] = stats::LogGamma(a + k[i]) + stats::LogGamma(b + (n[i] - k[i])) -
             lgamma_a - lgamma_b + log_norm_const[i];
  }
}

double LogMarginal(double k, double n, double a, double b) {
  if (k < 0.0 || k > n || a <= 0.0 || b <= 0.0) {
    return -std::numeric_limits<double>::infinity();
  }
  double log_choose = stats::LogGamma(n + 1.0) - stats::LogGamma(k + 1.0) -
                      stats::LogGamma(n - k + 1.0);
  return log_choose + LogMarginalNoBinom(k, n, a, b);
}

}  // namespace core
}  // namespace piperisk
