#include "core/beta_bernoulli.h"

#include <limits>

#include "common/logging.h"
#include "stats/special.h"

namespace piperisk {
namespace core {

BetaParams Posterior(const BetaParams& prior, int k, int n) {
  PIPERISK_CHECK(k >= 0 && n >= k) << "invalid counts k=" << k << " n=" << n;
  double a = prior.a() + k;
  double b = prior.b() + (n - k);
  BetaParams post;
  post.c = a + b;
  post.q = a / post.c;
  return post;
}

double PosteriorMeanRate(const BetaParams& prior, int k, int n) {
  return (prior.a() + k) / (prior.c + n);
}

double PredictiveNext(const BetaParams& prior, int k, int n) {
  return PosteriorMeanRate(prior, k, n);
}

double LogMarginalNoBinom(double k, double n, double a, double b) {
  if (k < 0.0 || k > n || a <= 0.0 || b <= 0.0) {
    return -std::numeric_limits<double>::infinity();
  }
  return stats::LogBeta(a + k, b + (n - k)) - stats::LogBeta(a, b);
}

double LogMarginalNoBinomHoisted(double k, double n, double a, double b,
                                 double log_norm_const) {
  if (k < 0.0 || k > n || a <= 0.0 || b <= 0.0) {
    return -std::numeric_limits<double>::infinity();
  }
  return stats::LogGamma(a + k) + stats::LogGamma(b + (n - k)) -
         stats::LogGamma(a) - stats::LogGamma(b) + log_norm_const;
}

double LogMarginal(double k, double n, double a, double b) {
  if (k < 0.0 || k > n || a <= 0.0 || b <= 0.0) {
    return -std::numeric_limits<double>::infinity();
  }
  double log_choose = stats::LogGamma(n + 1.0) - stats::LogGamma(k + 1.0) -
                      stats::LogGamma(n - k + 1.0);
  return log_choose + LogMarginalNoBinom(k, n, a, b);
}

}  // namespace core
}  // namespace piperisk
