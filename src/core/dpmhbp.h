#ifndef PIPERISK_CORE_DPMHBP_H_
#define PIPERISK_CORE_DPMHBP_H_

#include <string>
#include <vector>

#include "core/hbp.h"
#include "core/model.h"

namespace piperisk {
namespace core {

/// Configuration of the DPMHBP sampler. Extends the shared hierarchy
/// hyper-parameters with the Dirichlet-process knobs.
struct DpmhbpConfig {
  HierarchyConfig hierarchy;

  double alpha = 1.0;            ///< initial CRP concentration
  bool resample_alpha = true;    ///< Escobar–West resampling of alpha
  double alpha_prior_shape = 2.0;
  double alpha_prior_rate = 0.5;
  int auxiliary_components = 3;  ///< Neal's algorithm-8 empty tables
  int initial_groups = 8;        ///< k-quantile initialisation of labels
};

/// The paper's primary contribution: the Dirichlet process mixture of
/// hierarchical beta processes (Sect. 18.3.3, Eq. 18.7), at pipe-segment
/// level with adaptive grouping:
///
///   q_k   ~ Beta(c0 q0, c0 (1 - q0))        group failure rates
///   z_l   ~ CRP(alpha)                       segment -> group
///   rho_l ~ Beta(c q~_l, c (1 - q~_l))       q~_l = clamp(q_{z_l} m_l)
///   y_lj  ~ Bernoulli(rho_l)
///   pi_i  = 1 - prod_{l in pipe i} (1 - rho_l)
///
/// Inference is Metropolis-within-Gibbs: rho_l is collapsed analytically
/// (Beta–Bernoulli conjugacy); z_l is resampled by collapsed Gibbs with
/// Neal's algorithm 8 (auxiliary empty tables carrying fresh prior draws of
/// q); q_k gets an adaptive random-walk Metropolis step on the logit scale
/// (the extra hierarchy breaks conjugacy, as the chapter notes); alpha is
/// resampled with the Escobar–West auxiliary-variable scheme.
class DpmhbpModel : public FailureModel {
 public:
  explicit DpmhbpModel(DpmhbpConfig config = DpmhbpConfig());

  std::string name() const override { return "DPMHBP"; }
  Status Fit(const ModelInput& input) override;
  Result<std::vector<double>> ScorePipes(const ModelInput& input) override;
  /// Blocked parallel segment-risk aggregation over the CSR index.
  Result<std::vector<double>> ScorePipes(const ModelInput& input,
                                         const ScoreOptions& options) override;

  /// Posterior-mean failure probability per segment row (after Fit; pooled
  /// over every chain's post-burn-in draws).
  const std::vector<double>& segment_probabilities() const {
    return segment_probs_;
  }
  /// Final-sweep group labels of chain 0 (after Fit; dense in [0, K)).
  const std::vector<int>& group_labels() const { return labels_; }
  /// Trace of the number of occupied groups per kept sweep (all chains
  /// concatenated in chain order).
  const std::vector<int>& num_groups_trace() const { return k_trace_; }
  /// Trace of alpha per kept sweep (all chains concatenated in chain order).
  const std::vector<double>& alpha_trace() const { return alpha_trace_; }
  /// Per-chain traces for cross-chain convergence diagnostics.
  const std::vector<std::vector<int>>& num_groups_chain_traces() const {
    return k_chain_traces_;
  }
  const std::vector<std::vector<double>>& alpha_chain_traces() const {
    return alpha_chain_traces_;
  }
  /// Largest occupied group rate max_k q_k per kept sweep — a
  /// label-switching-invariant group-level quantity that is comparable
  /// across chains.
  const std::vector<std::vector<double>>& qmax_chain_traces() const {
    return qmax_chain_traces_;
  }
  /// Posterior mean number of groups.
  double mean_num_groups() const;

  /// End-of-run sampler state per chain (labels, group rates/counts,
  /// adapters, alpha), captured when hierarchy.capture_warm_state is set.
  const std::vector<ChainCheckpoint>& warm_state() const { return warm_out_; }
  /// Arms the next Fit to start every chain from `state` (one checkpoint
  /// per chain) and burn in for only hierarchy.warm_burn_in sweeps. A state
  /// whose shape disagrees with the input is ignored (cold fit).
  void SetWarmStart(std::vector<ChainCheckpoint> state);

 private:
  DpmhbpConfig config_;
  bool fitted_ = false;
  std::vector<double> segment_probs_;
  std::vector<int> labels_;
  std::vector<int> k_trace_;
  std::vector<double> alpha_trace_;
  std::vector<std::vector<int>> k_chain_traces_;
  std::vector<std::vector<double>> alpha_chain_traces_;
  std::vector<std::vector<double>> qmax_chain_traces_;
  bool has_warm_ = false;
  std::vector<ChainCheckpoint> warm_in_;
  std::vector<ChainCheckpoint> warm_out_;
};

}  // namespace core
}  // namespace piperisk

#endif  // PIPERISK_CORE_DPMHBP_H_
