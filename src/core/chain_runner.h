#ifndef PIPERISK_CORE_CHAIN_RUNNER_H_
#define PIPERISK_CORE_CHAIN_RUNNER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/telemetry.h"
#include "stats/rng.h"

namespace piperisk {
namespace core {

/// Multi-chain execution engine for the Metropolis-within-Gibbs samplers.
///
/// Runs K independent chains on the process-wide common::ThreadPool (one
/// block per chain; see common/thread_pool.h). Reproducibility
/// contract: the per-chain RNG streams are derived *before* any thread starts
/// (chain 0 keeps the historical single-chain stream bit-for-bit; chains
/// 1..K-1 are forked from a deterministic spawner), and each chain writes
/// only to its own pre-allocated result slot. Pooled results therefore depend
/// only on (seed, stream, num_chains) — never on the thread count or on OS
/// scheduling.

/// Resolves a requested thread count: values <= 0 mean "use the hardware",
/// and the result is always clamped to [1, num_chains].
int ResolveThreadCount(int num_threads, int num_chains);

/// Builds one generator per chain. Chain 0 is exactly Rng(seed, stream) — so
/// a single-chain run reproduces the historical samplers bit-for-bit — and
/// later chains are Fork()ed sequentially from a spawner keyed on
/// (seed, ~stream), giving statistically independent streams that are fixed
/// before any parallel work begins.
std::vector<stats::Rng> MakeChainRngs(std::uint64_t seed, std::uint64_t stream,
                                      int num_chains);

/// Runs `body(chain_index, &rng)` once per chain on at most `num_threads`
/// worker threads (callers pass the user-facing setting; it is resolved via
/// ResolveThreadCount). Blocks until every chain finished. The body must
/// confine its writes to per-chain state — the runner provides no locking.
///
/// Precondition: num_chains >= 1.
void RunChains(int num_chains, int num_threads, std::uint64_t seed,
               std::uint64_t stream,
               const std::function<void(int chain, stats::Rng* rng)>& body);

/// The per-sweep progress counter of one chain ("mcmc.chain.<c>.sweeps").
/// Samplers resolve it once per chain and bump it every sweep, so a metrics
/// snapshot taken mid-fit shows how far each chain has progressed.
telemetry::Counter* ChainSweepCounter(int chain);

}  // namespace core
}  // namespace piperisk

#endif  // PIPERISK_CORE_CHAIN_RUNNER_H_
