#ifndef PIPERISK_CORE_CHAIN_RUNNER_H_
#define PIPERISK_CORE_CHAIN_RUNNER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "common/telemetry.h"
#include "core/checkpoint.h"
#include "core/heartbeat.h"
#include "stats/rng.h"

namespace piperisk {
namespace core {

/// Multi-chain execution engine for the Metropolis-within-Gibbs samplers.
///
/// Runs K independent chains on the process-wide common::ThreadPool (one
/// block per chain; see common/thread_pool.h). Reproducibility
/// contract: the per-chain RNG streams are derived *before* any thread starts
/// (chain 0 keeps the historical single-chain stream bit-for-bit; chains
/// 1..K-1 are forked from a deterministic spawner), and each chain writes
/// only to its own pre-allocated result slot. Pooled results therefore depend
/// only on (seed, stream, num_chains) — never on the thread count or on OS
/// scheduling.

/// Resolves a requested thread count: values <= 0 mean "use the hardware",
/// and the result is always clamped to [1, num_chains].
int ResolveThreadCount(int num_threads, int num_chains);

/// Builds one generator per chain. Chain 0 is exactly Rng(seed, stream) — so
/// a single-chain run reproduces the historical samplers bit-for-bit — and
/// later chains are Fork()ed sequentially from a spawner keyed on
/// (seed, ~stream), giving statistically independent streams that are fixed
/// before any parallel work begins.
std::vector<stats::Rng> MakeChainRngs(std::uint64_t seed, std::uint64_t stream,
                                      int num_chains);

/// Runs `body(chain_index, &rng)` once per chain on at most `num_threads`
/// worker threads (callers pass the user-facing setting; it is resolved via
/// ResolveThreadCount). Blocks until every chain finished. The body must
/// confine its writes to per-chain state — the runner provides no locking.
///
/// Precondition: num_chains >= 1.
void RunChains(int num_chains, int num_threads, std::uint64_t seed,
               std::uint64_t stream,
               const std::function<void(int chain, stats::Rng* rng)>& body);

/// The per-sweep progress counter of one chain ("mcmc.chain.<c>.sweeps").
/// Samplers resolve it once per chain and bump it every sweep, so a metrics
/// snapshot taken mid-fit shows how far each chain has progressed.
telemetry::Counter* ChainSweepCounter(int chain);

/// ---------------------------------------------------------------------------
/// Checkpointed execution
/// ---------------------------------------------------------------------------
///
/// RunCheckpointedChains drives chains at sweep granularity instead of
/// handing each chain a whole-run body. The model supplies four callbacks
/// (a ChainProgram); the runner owns the loop, the per-chain RNG, periodic
/// snapshots, resume, and failure isolation. Determinism carries over from
/// RunChains: the runner consumes no chain RNG draws itself, so a resumed
/// run replays the exact draw sequence of an uninterrupted one.

/// Everything RunCheckpointedChains needs to know about the run.
struct ChainRunnerOptions {
  int num_chains = 1;
  int num_threads = 0;           ///< <= 0: use the hardware
  std::uint64_t seed = 0;
  std::uint64_t stream = 0;      ///< chain-0 stream constant of the sampler
  int total_sweeps = 0;          ///< burn-in + retained sweeps
  /// Digest of every config field that can influence the draws. Stored in
  /// each snapshot and required to match on resume.
  std::uint64_t fingerprint = 0;
  CheckpointConfig checkpoint;
  /// Live progress file written by a runner-owned background thread (empty
  /// path: off). Observational only — never fingerprinted, never touches
  /// chain RNGs, so heartbeat-enabled runs stay draw-identical.
  HeartbeatConfig heartbeat;
};

/// Sweep-granular callbacks for one model. All four are invoked for a single
/// chain at a time and must confine writes to that chain's state; distinct
/// chains run concurrently.
struct ChainProgram {
  /// Builds fresh chain state (initial labels/rates/accumulators).
  std::function<void(int chain)> init;
  /// Advances chain state by exactly one sweep, drawing only from `rng`.
  std::function<void(int chain, int sweep, stats::Rng* rng)> sweep;
  /// Copies the chain's sampler state and accumulated draws into `out`
  /// (bookkeeping fields — chain/sweeps/fingerprint/rng — are the runner's).
  std::function<void(int chain, ChainCheckpoint* out)> capture;
  /// Overwrites the chain's state from a snapshot, replacing whatever the
  /// chain held before (after a failure that state may be mid-sweep
  /// garbage). Returns non-OK if the snapshot's shape does not fit the
  /// current data, which aborts the run.
  std::function<Status(int chain, const ChainCheckpoint& in)> restore;
  /// Optional: the monitored scalar draw of the sweep just finished (a
  /// label-switching-invariant quantity like q_max), feeding the heartbeat's
  /// live split-R̂. Return false when the sweep produced no draw (burn-in).
  std::function<bool(int chain, int sweep, double* value)> monitor;
  /// Optional: cumulative Metropolis proposal/accept totals of one chain,
  /// polled by the runner after each sweep for the heartbeat's acceptance
  /// trend.
  std::function<void(int chain, std::int64_t* proposals,
                     std::int64_t* accepted)>
      acceptance;
};

/// What happened during a checkpointed run. `failed_chains` lists chains
/// that exhausted their retries — their state is undefined and callers must
/// exclude them from pooling. The run only fails outright when every chain
/// failed (or resume/halt demanded it).
struct ChainRunReport {
  std::vector<int> failed_chains;
  int chains_resumed = 0;
  int checkpoints_written = 0;
  int chain_retries = 0;
};

/// Runs `total_sweeps` sweeps of every chain with periodic checkpointing,
/// resume, and per-chain failure isolation:
///
///   - Snapshots are taken every `checkpoint.every` sweeps and at chain
///     completion, persisted atomically under `checkpoint.dir` when set, and
///     always kept in memory for retries.
///   - With `checkpoint.resume`, chains restart from their on-disk snapshot;
///     a fingerprint/shape mismatch aborts with a descriptive error, a
///     missing file simply starts that chain fresh, and a fully-completed
///     snapshot fast-forwards the chain without re-running sweeps.
///   - A chain whose sweep throws is retried from its last snapshot (or from
///     scratch) up to `checkpoint.max_chain_retries` times, then the run
///     degrades to the surviving chains with a warning instead of aborting.
///
/// Preconditions: num_chains >= 1 and program.sweep/init/capture/restore set.
Result<ChainRunReport> RunCheckpointedChains(const ChainRunnerOptions& options,
                                             const ChainProgram& program);

}  // namespace core
}  // namespace piperisk

#endif  // PIPERISK_CORE_CHAIN_RUNNER_H_
