#include "core/mcmc.h"

#include <algorithm>
#include <cmath>

#include "common/telemetry.h"
#include "stats/descriptive.h"
#include "stats/distributions.h"
#include "stats/special.h"

namespace piperisk {
namespace core {

namespace {

/// Proposal/accept counters shared by every Metropolis kernel. Recording is
/// one striped relaxed add per *group* step (never per row), so the cost is
/// invisible next to the lgamma ladder each proposal evaluates. Telemetry
/// never draws from the RNG: instrumented samplers are draw-identical.
struct MetropolisMetrics {
  telemetry::Counter* proposals;
  telemetry::Counter* accepts;

  static const MetropolisMetrics& Get() {
    static const MetropolisMetrics metrics = [] {
      auto& registry = telemetry::Registry::Global();
      return MetropolisMetrics{
          registry.GetCounter("mcmc.metropolis.proposals"),
          registry.GetCounter("mcmc.metropolis.accepts")};
    }();
    return metrics;
  }
};

void RecordProposal(bool accepted) {
  const MetropolisMetrics& metrics = MetropolisMetrics::Get();
  metrics.proposals->Increment();
  if (accepted) metrics.accepts->Increment();
}

}  // namespace

double MetropolisLogitStep(double current,
                           const std::function<double(double)>& log_target,
                           double step_size, stats::Rng* rng, bool* accepted) {
  *accepted = false;
  double logit_cur = stats::Logit(current);
  double logit_prop = logit_cur + step_size * stats::SampleNormal(rng);
  double proposal = stats::Sigmoid(logit_prop);
  if (proposal <= 0.0 || proposal >= 1.0) {  // underflow guard
    RecordProposal(false);
    return current;
  }
  // Jacobian of x = sigmoid(l): dx/dl = x(1-x).
  double log_ratio = log_target(proposal) - log_target(current) +
                     std::log(proposal) + std::log1p(-proposal) -
                     std::log(current) - std::log1p(-current);
  if (std::log(rng->NextDoubleOpen()) < log_ratio) {
    *accepted = true;
    RecordProposal(true);
    return proposal;
  }
  RecordProposal(false);
  return current;
}

double MetropolisLogitStep(double current, double* current_log_target,
                           const std::function<double(double)>& log_target,
                           double step_size, stats::Rng* rng, bool* accepted) {
  *accepted = false;
  double logit_cur = stats::Logit(current);
  double logit_prop = logit_cur + step_size * stats::SampleNormal(rng);
  double proposal = stats::Sigmoid(logit_prop);
  if (proposal <= 0.0 || proposal >= 1.0) {  // underflow guard
    RecordProposal(false);
    return current;
  }
  double proposal_ll = log_target(proposal);
  double log_ratio = proposal_ll - *current_log_target + std::log(proposal) +
                     std::log1p(-proposal) - std::log(current) -
                     std::log1p(-current);
  if (std::log(rng->NextDoubleOpen()) < log_ratio) {
    *accepted = true;
    *current_log_target = proposal_ll;
    RecordProposal(true);
    return proposal;
  }
  RecordProposal(false);
  return current;
}

LogitProposal DrawLogitProposal(double current, double step_size,
                                stats::Rng* rng) {
  LogitProposal prop;
  double logit_cur = stats::Logit(current);
  double logit_prop = logit_cur + step_size * stats::SampleNormal(rng);
  prop.proposal = stats::Sigmoid(logit_prop);
  if (prop.proposal <= 0.0 || prop.proposal >= 1.0) {  // underflow guard
    // The fused step returns here before touching the uniform, so the
    // split form must not consume one either.
    prop.in_support = false;
    return prop;
  }
  prop.in_support = true;
  // The fused step draws this uniform after evaluating the log target, but
  // the target evaluation never touches the RNG, so drawing it here leaves
  // the stream in the identical position.
  prop.log_u = std::log(rng->NextDoubleOpen());
  return prop;
}

bool AcceptLogitProposal(const LogitProposal& prop, double current,
                         double proposal_ll, double* current_log_target) {
  if (!prop.in_support) {
    RecordProposal(false);
    return false;
  }
  double log_ratio = proposal_ll - *current_log_target +
                     std::log(prop.proposal) + std::log1p(-prop.proposal) -
                     std::log(current) - std::log1p(-current);
  if (prop.log_u < log_ratio) {
    *current_log_target = proposal_ll;
    RecordProposal(true);
    return true;
  }
  RecordProposal(false);
  return false;
}

double MetropolisLogStep(double current,
                         const std::function<double(double)>& log_target,
                         double step_size, stats::Rng* rng, bool* accepted) {
  *accepted = false;
  double log_cur = std::log(current);
  double log_prop = log_cur + step_size * stats::SampleNormal(rng);
  double proposal = std::exp(log_prop);
  if (!(proposal > 0.0) || !std::isfinite(proposal)) {
    RecordProposal(false);
    return current;
  }
  double log_ratio = log_target(proposal) - log_target(current) + log_prop -
                     log_cur;  // Jacobian dx/dl = x
  if (std::log(rng->NextDoubleOpen()) < log_ratio) {
    *accepted = true;
    RecordProposal(true);
    return proposal;
  }
  RecordProposal(false);
  return current;
}

void StepSizeAdapter::Update(bool accepted) {
  ++proposals_;
  if (accepted) ++accepts_;
  double gamma = 1.0 / std::pow(static_cast<double>(proposals_) + 10.0, 0.6);
  double direction = (accepted ? 1.0 : 0.0) - target_;
  step_ = std::clamp(step_ * std::exp(gamma * direction), 1e-3, 10.0);
}

double EffectiveSampleSize(const std::vector<double>& trace) {
  const std::size_t n = trace.size();
  if (n < 4) return static_cast<double>(n);
  double mean = stats::Mean(trace);
  double var = 0.0;
  for (double x : trace) var += (x - mean) * (x - mean);
  var /= static_cast<double>(n);
  if (var <= 0.0) return static_cast<double>(n);

  auto autocov = [&](std::size_t lag) {
    double s = 0.0;
    for (std::size_t i = 0; i + lag < n; ++i) {
      s += (trace[i] - mean) * (trace[i + lag] - mean);
    }
    return s / static_cast<double>(n);
  };

  // Geyer initial positive sequence: sum pairs of consecutive
  // autocovariances while the pair sum stays positive.
  double sum = 0.0;
  for (std::size_t lag = 1; lag + 1 < n; lag += 2) {
    double pair = autocov(lag) + autocov(lag + 1);
    if (pair <= 0.0) break;
    sum += pair;
  }
  double tau = 1.0 + 2.0 * sum / var;
  tau = std::max(tau, 1.0);
  return static_cast<double>(n) / tau;
}

double GewekeZ(const std::vector<double>& trace, double first_frac,
               double last_frac) {
  const std::size_t n = trace.size();
  if (n < 10) return 0.0;
  std::size_t n1 = std::max<std::size_t>(2, static_cast<std::size_t>(n * first_frac));
  std::size_t n2 = std::max<std::size_t>(2, static_cast<std::size_t>(n * last_frac));
  std::vector<double> head(trace.begin(), trace.begin() + n1);
  std::vector<double> tail(trace.end() - n2, trace.end());
  double v1 = stats::Variance(head) / static_cast<double>(n1);
  double v2 = stats::Variance(tail) / static_cast<double>(n2);
  double denom = std::sqrt(v1 + v2);
  if (denom <= 0.0) return 0.0;
  return (stats::Mean(head) - stats::Mean(tail)) / denom;
}

}  // namespace core
}  // namespace piperisk
