#include "core/ibp.h"

#include "stats/distributions.h"

namespace piperisk {
namespace core {

std::vector<std::vector<int>> FeatureAllocation::Dense() const {
  std::vector<std::vector<int>> out(num_rows,
                                    std::vector<int>(num_columns, 0));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t k = 0; k < rows[i].size(); ++k) {
      out[i][k] = rows[i][k];
    }
  }
  return out;
}

Result<FeatureAllocation> SampleIbp(std::size_t n, double alpha,
                                    stats::Rng* rng) {
  if (n == 0) return Status::InvalidArgument("IBP needs >= 1 customer");
  if (!(alpha > 0.0)) {
    return Status::InvalidArgument("IBP concentration must be > 0");
  }
  FeatureAllocation allocation;
  allocation.num_rows = n;
  allocation.rows.resize(n);
  std::vector<int> takers;  // m_k per dish
  for (std::size_t i = 0; i < n; ++i) {
    double denom = static_cast<double>(i + 1);
    allocation.rows[i].assign(takers.size(), 0);
    for (std::size_t k = 0; k < takers.size(); ++k) {
      if (stats::SampleBernoulli(rng, takers[k] / denom)) {
        allocation.rows[i][k] = 1;
        takers[k] += 1;
      }
    }
    int new_dishes = stats::SamplePoisson(rng, alpha / denom);
    for (int d = 0; d < new_dishes; ++d) {
      allocation.rows[i].push_back(1);
      takers.push_back(1);
    }
  }
  allocation.num_columns = takers.size();
  return allocation;
}

double IbpExpectedDishes(std::size_t n, double alpha) {
  double h = 0.0;
  for (std::size_t i = 1; i <= n; ++i) h += 1.0 / static_cast<double>(i);
  return alpha * h;
}

double IbpExpectedEntries(std::size_t n, double alpha) {
  return alpha * static_cast<double>(n);
}

}  // namespace core
}  // namespace piperisk
