#include "core/scoring.h"

#include <algorithm>
#include <cmath>

#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace piperisk {
namespace core {

namespace {

/// Pipes per scoring block. Fixed (never derived from the thread count) so
/// the block decomposition — and with it every per-block computation — is
/// the same whatever parallelism runs it.
constexpr std::size_t kScoreBlock = 4096;

constexpr double kRateCeil = 1.0 - 1e-7;  // mirrors the sampler's clamp

}  // namespace

PipeSegmentIndex PipeSegmentIndex::FromRows(
    const std::vector<std::vector<std::size_t>>& pipe_segment_rows) {
  PipeSegmentIndex index;
  index.offsets.reserve(pipe_segment_rows.size() + 1);
  index.offsets.push_back(0);
  std::size_t total = 0;
  for (const auto& rows : pipe_segment_rows) total += rows.size();
  index.rows.reserve(total);
  for (const auto& rows : pipe_segment_rows) {
    for (std::size_t row : rows) {
      index.rows.push_back(static_cast<std::uint32_t>(row));
    }
    index.offsets.push_back(static_cast<std::uint32_t>(index.rows.size()));
  }
  return index;
}

FeatureMatrix FeatureMatrix::FromRows(
    const std::vector<std::vector<double>>& feature_rows) {
  FeatureMatrix matrix;
  if (feature_rows.empty()) return matrix;
  matrix.dim = feature_rows.front().size();
  matrix.values.reserve(feature_rows.size() * matrix.dim);
  for (const auto& row : feature_rows) {
    matrix.values.insert(matrix.values.end(), row.begin(), row.end());
  }
  return matrix;
}

std::vector<double> ScoreBlocked(
    std::size_t num_pipes, const ScoreOptions& options,
    const std::function<void(std::size_t, std::size_t, double*)>& block_fn) {
  std::vector<double> scores(num_pipes, 0.0);
  if (num_pipes == 0) return scores;
  // Scoring telemetry is per *block* (4096 pipes), not per pipe: one striped
  // add plus one histogram observation per block keeps the overhead invisible
  // next to the block's own arithmetic.
  auto& registry = telemetry::Registry::Global();
  static telemetry::Counter* const pipes_scored =
      registry.GetCounter("scoring.pipes_scored");
  static telemetry::Histogram* const block_us = registry.GetHistogram(
      "scoring.block_us", telemetry::DefaultTimeBucketsUs());
  telemetry::ScopedSpan span("scoring.blocked");
  const int num_blocks =
      static_cast<int>((num_pipes + kScoreBlock - 1) / kScoreBlock);
  ThreadPool::Shared().ParallelFor(
      num_blocks, options.num_threads, [&](int block) {
        telemetry::ScopedTimer timer(block_us);
        const std::size_t begin = static_cast<std::size_t>(block) * kScoreBlock;
        const std::size_t end = std::min(begin + kScoreBlock, num_pipes);
        block_fn(begin, end, scores.data() + begin);
        pipes_scored->Add(static_cast<std::int64_t>(end - begin));
      });
  return scores;
}

std::vector<double> AggregateSegmentRisk(
    const PipeSegmentIndex& index, const std::vector<double>& segment_probs,
    const ScoreOptions& options) {
  telemetry::ScopedSpan span("scoring.aggregate");
  return ScoreBlocked(
      index.num_pipes(), options,
      [&](std::size_t begin, std::size_t end, double* out) {
        for (std::size_t i = begin; i < end; ++i) {
          double log_survive = 0.0;
          for (std::uint32_t r = index.offsets[i]; r < index.offsets[i + 1];
               ++r) {
            double p = std::clamp(segment_probs[index.rows[r]], 0.0, kRateCeil);
            log_survive += std::log1p(-p);
          }
          out[i - begin] = -std::expm1(log_survive);  // 1 - prod(1 - p_l)
        }
      });
}

}  // namespace core
}  // namespace piperisk
