#include "core/heartbeat.h"

#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "common/telemetry.h"
#include "core/diagnostics.h"

namespace piperisk {
namespace core {

namespace {

/// JSON has no Infinity/NaN; non-finite values become null.
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  return StrFormat("%.17g", v);
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          out += StrFormat("\\u%04x", ch);
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace

std::int64_t PeakRssBytes() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes.
  const std::int64_t bytes = usage.ru_maxrss * 1024;
  static telemetry::Gauge* const peak = telemetry::Registry::Global().GetGauge(
      "process.peak_rss_bytes", telemetry::GaugeMode::kMax);
  peak->Set(static_cast<double>(bytes));
  return bytes;
}

HeartbeatMonitor::HeartbeatMonitor(HeartbeatConfig config, int num_chains,
                                   int total_sweeps)
    : config_(std::move(config)),
      num_chains_(std::max(1, num_chains)),
      total_sweeps_(std::max(0, total_sweeps)),
      started_(std::chrono::steady_clock::now()),
      draws_(static_cast<std::size_t>(std::max(1, num_chains))) {
  chains_.reserve(static_cast<std::size_t>(num_chains_));
  for (int c = 0; c < num_chains_; ++c) {
    chains_.push_back(std::make_unique<ChainCell>());
  }
  last_tick_ = started_;
}

HeartbeatMonitor::~HeartbeatMonitor() { Stop(); }

void HeartbeatMonitor::Start() {
  if (!enabled() || started_thread_) return;
  started_thread_ = true;
  writer_ = std::thread([this] { WriterLoop(); });
}

void HeartbeatMonitor::Stop() {
  if (!enabled()) return;
  if (stopping_.exchange(true)) {
    if (writer_.joinable()) writer_.join();
    return;
  }
  writer_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  const Status s = WriteNow();
  if (!s.ok()) {
    PIPERISK_LOG(kWarning) << "heartbeat final write failed: " << s.message();
  }
}

void HeartbeatMonitor::SetPhase(const std::string& phase) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(state_mu_);
  phase_ = phase;
}

void HeartbeatMonitor::ReportSweep(int chain, int sweeps_done) {
  if (!enabled() || chain < 0 || chain >= num_chains_) return;
  chains_[static_cast<std::size_t>(chain)]->sweeps.store(
      sweeps_done, std::memory_order_relaxed);
}

void HeartbeatMonitor::ReportAcceptance(int chain, std::int64_t proposals,
                                        std::int64_t accepted) {
  if (!enabled() || chain < 0 || chain >= num_chains_) return;
  ChainCell& cell = *chains_[static_cast<std::size_t>(chain)];
  cell.proposals.store(proposals, std::memory_order_relaxed);
  cell.accepted.store(accepted, std::memory_order_relaxed);
}

void HeartbeatMonitor::ReportDraw(int chain, double value) {
  if (!enabled() || chain < 0 || chain >= num_chains_) return;
  std::lock_guard<std::mutex> lock(state_mu_);
  draws_[static_cast<std::size_t>(chain)].push_back(value);
}

void HeartbeatMonitor::ResetChain(int chain, int sweeps_done, int draws_kept) {
  if (!enabled() || chain < 0 || chain >= num_chains_) return;
  ChainCell& cell = *chains_[static_cast<std::size_t>(chain)];
  cell.sweeps.store(sweeps_done, std::memory_order_relaxed);
  cell.failed.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(state_mu_);
  std::vector<double>& trace = draws_[static_cast<std::size_t>(chain)];
  if (draws_kept >= 0 &&
      trace.size() > static_cast<std::size_t>(draws_kept)) {
    trace.resize(static_cast<std::size_t>(draws_kept));
  }
}

void HeartbeatMonitor::ReportChainFailed(int chain) {
  if (!enabled() || chain < 0 || chain >= num_chains_) return;
  chains_[static_cast<std::size_t>(chain)]->failed.store(
      true, std::memory_order_relaxed);
}

void HeartbeatMonitor::ReportShards(int done, int total) {
  if (!enabled()) return;
  shards_done_.store(done, std::memory_order_relaxed);
  shards_total_.store(total, std::memory_order_relaxed);
}

void HeartbeatMonitor::WriterLoop() {
  std::unique_lock<std::mutex> lock(writer_mu_);
  while (!stopping_.load(std::memory_order_relaxed)) {
    writer_cv_.wait_for(
        lock, std::chrono::duration<double>(std::max(0.05, config_.every_s)));
    if (stopping_.load(std::memory_order_relaxed)) break;
    lock.unlock();
    const Status s = WriteNow();
    if (!s.ok()) {
      PIPERISK_LOG(kWarning) << "heartbeat write failed: " << s.message();
    }
    lock.lock();
  }
}

std::string HeartbeatMonitor::Render() {
  const auto now = std::chrono::steady_clock::now();
  const double uptime_s =
      std::chrono::duration<double>(now - started_).count();

  std::string phase;
  std::vector<std::vector<double>> draws;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    phase = phase_;
    draws = draws_;
  }

  std::int64_t sweeps_total = 0, proposals = 0, accepted = 0;
  std::vector<int> sweeps(static_cast<std::size_t>(num_chains_), 0);
  std::vector<bool> failed(static_cast<std::size_t>(num_chains_), false);
  std::vector<double> acceptance(static_cast<std::size_t>(num_chains_), 0.0);
  for (int c = 0; c < num_chains_; ++c) {
    const ChainCell& cell = *chains_[static_cast<std::size_t>(c)];
    const int done = cell.sweeps.load(std::memory_order_relaxed);
    const std::int64_t p = cell.proposals.load(std::memory_order_relaxed);
    const std::int64_t a = cell.accepted.load(std::memory_order_relaxed);
    sweeps[static_cast<std::size_t>(c)] = done;
    failed[static_cast<std::size_t>(c)] =
        cell.failed.load(std::memory_order_relaxed);
    acceptance[static_cast<std::size_t>(c)] =
        p > 0 ? static_cast<double>(a) / static_cast<double>(p) : 0.0;
    sweeps_total += done;
    proposals += p;
    accepted += a;
  }

  // Recent rates from tick-to-tick deltas (writer thread is the only
  // caller, so the last_* fields need no locking).
  const double tick_s = std::chrono::duration<double>(now - last_tick_).count();
  if (tick_s > 1e-3) {
    recent_sweeps_per_s_ =
        static_cast<double>(sweeps_total - last_sweeps_total_) / tick_s;
    const std::int64_t dp = proposals - last_proposals_;
    recent_acceptance_ =
        dp > 0 ? static_cast<double>(accepted - last_accepted_) /
                     static_cast<double>(dp)
               : 0.0;
    last_tick_ = now;
    last_sweeps_total_ = sweeps_total;
    last_proposals_ = proposals;
    last_accepted_ = accepted;
  }
  const double overall_sweeps_per_s =
      uptime_s > 1e-3 ? static_cast<double>(sweeps_total) / uptime_s : 0.0;

  std::int64_t remaining = 0;
  for (int c = 0; c < num_chains_; ++c) {
    if (!failed[static_cast<std::size_t>(c)]) {
      remaining += std::max(0, total_sweeps_ - sweeps[static_cast<size_t>(c)]);
    }
  }
  const double rate = recent_sweeps_per_s_ > 0.0 ? recent_sweeps_per_s_
                                                 : overall_sweeps_per_s;
  const double eta_s =
      rate > 0.0 ? static_cast<double>(remaining) / rate : -1.0;

  // Live split-R̂ over the monitored draws so far; needs >= 4 draws per
  // chain to be meaningful (SplitRhat returns 1.0 below that).
  std::vector<std::vector<double>> usable;
  std::size_t total_draws = 0;
  for (const auto& trace : draws) {
    total_draws += trace.size();
    if (trace.size() >= 4) usable.push_back(trace);
  }
  const bool have_rhat = !usable.empty();
  const double rhat = have_rhat ? SplitRhat(usable) : 0.0;

  std::ostringstream out;
  out << "{\n";
  out << "  \"schema_version\": 1,\n";
  out << "  \"label\": \"" << EscapeJson(config_.label) << "\",\n";
  out << "  \"pid\": " << static_cast<long>(::getpid()) << ",\n";
  out << "  \"phase\": \"" << EscapeJson(phase) << "\",\n";
  out << "  \"uptime_s\": " << JsonNumber(uptime_s) << ",\n";
  out << "  \"num_chains\": " << num_chains_ << ",\n";
  out << "  \"total_sweeps\": " << total_sweeps_ << ",\n";
  out << "  \"chains\": [";
  for (int c = 0; c < num_chains_; ++c) {
    out << (c == 0 ? "\n" : ",\n");
    out << "    {\"chain\": " << c
        << ", \"sweeps\": " << sweeps[static_cast<std::size_t>(c)]
        << ", \"total\": " << total_sweeps_ << ", \"acceptance\": "
        << JsonNumber(acceptance[static_cast<std::size_t>(c)])
        << ", \"draws\": " << draws[static_cast<std::size_t>(c)].size()
        << ", \"failed\": "
        << (failed[static_cast<std::size_t>(c)] ? "true" : "false") << "}";
  }
  out << "\n  ],\n";
  out << "  \"sweeps_done\": " << sweeps_total << ",\n";
  out << "  \"sweeps_per_s\": " << JsonNumber(recent_sweeps_per_s_) << ",\n";
  out << "  \"sweeps_per_s_overall\": " << JsonNumber(overall_sweeps_per_s)
      << ",\n";
  out << "  \"acceptance_recent\": " << JsonNumber(recent_acceptance_)
      << ",\n";
  out << "  \"eta_s\": " << (eta_s < 0.0 ? "null" : JsonNumber(eta_s))
      << ",\n";
  out << "  \"rhat\": " << (have_rhat ? JsonNumber(rhat) : "null") << ",\n";
  out << "  \"monitored_draws\": " << total_draws << ",\n";
  const int shards_total = shards_total_.load(std::memory_order_relaxed);
  if (shards_total > 0) {
    out << "  \"shards\": {\"done\": "
        << shards_done_.load(std::memory_order_relaxed)
        << ", \"total\": " << shards_total << "},\n";
  }
  out << "  \"peak_rss_bytes\": " << PeakRssBytes() << "\n";
  out << "}\n";
  return out.str();
}

Status HeartbeatMonitor::WriteNow() {
  if (!enabled()) return Status::OK();
  const std::string body = Render();
  const std::string tmp = config_.path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot write " + tmp);
    out << body;
    if (!out.flush()) return Status::IoError("cannot flush " + tmp);
  }
  if (std::rename(tmp.c_str(), config_.path.c_str()) != 0) {
    return Status::IoError("cannot rename " + tmp + " -> " + config_.path);
  }
  return Status::OK();
}

}  // namespace core
}  // namespace piperisk
