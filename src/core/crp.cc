#include "core/crp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/logging.h"
#include "stats/distributions.h"
#include "stats/special.h"

namespace piperisk {
namespace core {

std::vector<int> SampleCrpAssignment(std::size_t n, double alpha,
                                     stats::Rng* rng) {
  PIPERISK_CHECK(alpha > 0.0) << "CRP concentration must be > 0";
  std::vector<int> labels(n, 0);
  std::vector<double> counts;  // occupancy per table
  for (std::size_t i = 0; i < n; ++i) {
    double total = static_cast<double>(i) + alpha;
    double u = rng->NextDouble() * total;
    double acc = 0.0;
    int chosen = static_cast<int>(counts.size());
    for (std::size_t t = 0; t < counts.size(); ++t) {
      acc += counts[t];
      if (u < acc) {
        chosen = static_cast<int>(t);
        break;
      }
    }
    if (chosen == static_cast<int>(counts.size())) {
      counts.push_back(1.0);
    } else {
      counts[static_cast<std::size_t>(chosen)] += 1.0;
    }
    labels[i] = chosen;
  }
  return labels;
}

std::vector<double> CrpLogSeatingWeights(const std::vector<int>& occupancy,
                                         double alpha) {
  std::vector<double> out;
  out.reserve(occupancy.size() + 1);
  for (int n_r : occupancy) {
    out.push_back(n_r > 0 ? std::log(static_cast<double>(n_r))
                          : -std::numeric_limits<double>::infinity());
  }
  out.push_back(std::log(alpha));
  return out;
}

double CrpExpectedTables(std::size_t n, double alpha) {
  double e = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    e += alpha / (alpha + static_cast<double>(i));
  }
  return e;
}

double CrpLogProbability(const std::vector<int>& labels, double alpha) {
  // EPPF: alpha^K * prod_k (n_k - 1)! / prod_{i=0}^{n-1} (alpha + i).
  std::unordered_map<int, int> counts;
  for (int l : labels) counts[l]++;
  double logp = static_cast<double>(counts.size()) * std::log(alpha);
  for (const auto& [label, n_k] : counts) {
    (void)label;
    logp += stats::LogGamma(static_cast<double>(n_k));
  }
  for (std::size_t i = 0; i < labels.size(); ++i) {
    logp -= std::log(alpha + static_cast<double>(i));
  }
  return logp;
}

double ResampleCrpConcentration(double alpha, std::size_t k, std::size_t n,
                                double prior_shape, double prior_rate,
                                stats::Rng* rng) {
  PIPERISK_CHECK(n > 0) << "CRP concentration resample needs n > 0";
  // Escobar & West (1995): eta ~ Beta(alpha + 1, n); then alpha is a
  // two-component gamma mixture.
  double eta = stats::SampleBeta(rng, alpha + 1.0, static_cast<double>(n));
  double shape = prior_shape + static_cast<double>(k);
  double rate = prior_rate - std::log(eta);
  // Mixture weight for the (shape) vs (shape - 1) component.
  double odds = (prior_shape + static_cast<double>(k) - 1.0) /
                (static_cast<double>(n) * rate);
  double pi = odds / (1.0 + odds);
  if (rng->NextDouble() < pi) {
    return stats::SampleGamma(rng, shape, rate);
  }
  return stats::SampleGamma(rng, shape - 1.0, rate);
}

}  // namespace core
}  // namespace piperisk
