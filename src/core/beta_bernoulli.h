#ifndef PIPERISK_CORE_BETA_BERNOULLI_H_
#define PIPERISK_CORE_BETA_BERNOULLI_H_

#include <cstddef>

namespace piperisk {
namespace core {

/// Beta–Bernoulli conjugacy helpers (Sect. 18.3.1 of the chapter; Eq. 18.4).
/// A Beta(a, b) prior on a Bernoulli rate observed through k successes in n
/// trials yields a Beta(a + k, b + n - k) posterior; the marginal of the
/// data is the beta-binomial. These closed forms are the inner loop of the
/// HBP and DPMHBP samplers, so they live in a tiny dedicated unit.

/// A Beta distribution in (mean, concentration) parameterisation:
/// a = c * q, b = c * (1 - q). This is the parameterisation the hierarchy
/// uses — the upper level places a prior on the mean q.
struct BetaParams {
  double q = 0.5;  ///< mean, in (0, 1)
  double c = 1.0;  ///< concentration, > 0

  double a() const { return c * q; }
  double b() const { return c * (1.0 - q); }
  double mean() const { return q; }
  double variance() const { return q * (1.0 - q) / (c + 1.0); }
};

/// Posterior after observing k successes in n trials.
BetaParams Posterior(const BetaParams& prior, int k, int n);

/// Posterior mean of the rate: (a + k) / (c + n). This is the per-segment
/// failure-probability estimate the models emit.
double PosteriorMeanRate(const BetaParams& prior, int k, int n);

/// Posterior predictive probability that the *next* trial succeeds
/// (identical to the posterior mean rate for a Bernoulli).
double PredictiveNext(const BetaParams& prior, int k, int n);

/// Collapsed log-marginal of k successes in n trials with the rate
/// integrated out, WITHOUT the binomial coefficient (which is constant in
/// the group comparisons the samplers make):
///   log B(a + k, b + n - k) - log B(a, b).
/// Accepts non-integer k/n so covariate-scaled "effective exposure" works.
double LogMarginalNoBinom(double k, double n, double a, double b);

/// LogMarginalNoBinom with the rate-independent normaliser hoisted out:
/// `log_norm_const` must equal lgamma(a + b) - lgamma(a + b + n). In the
/// samplers a + b is the shared concentration c, so the constant depends
/// only on n and is precomputed once per sufficient-statistic class,
/// leaving four lgamma evaluations per call instead of six.
double LogMarginalNoBinomHoisted(double k, double n, double a, double b,
                                 double log_norm_const);

/// Full collapsed log-marginal including the (generalised) binomial
/// coefficient — the exact beta-binomial pmf for integer k, n.
double LogMarginal(double k, double n, double a, double b);

/// SoA batch form of LogMarginalNoBinomHoisted over `count` contiguous
/// classes sharing the same (a, b) — the layout the samplers produce after
/// grouping sufficient-statistic classes by covariate multiplier. Hoists
/// lgamma(a) and lgamma(b) out of the loop; each element is bit-identical
/// to the scalar call (same operands, same left-to-right association).
/// `out[i]` gets the value for (k[i], n[i], log_norm_const[i]).
void LogMarginalNoBinomHoistedBatch(const double* k, const double* n, double a,
                                    double b, const double* log_norm_const,
                                    double* out, std::size_t count);

}  // namespace core
}  // namespace piperisk

#endif  // PIPERISK_CORE_BETA_BERNOULLI_H_
