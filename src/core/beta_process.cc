#include "core/beta_process.h"

#include <algorithm>
#include <string>

#include "stats/distributions.h"

namespace piperisk {
namespace core {

Result<BetaProcess> BetaProcess::Create(double concentration,
                                        std::vector<double> base_weights) {
  if (concentration <= 0.0) {
    return Status::InvalidArgument("beta process concentration must be > 0");
  }
  for (size_t i = 0; i < base_weights.size(); ++i) {
    if (!(base_weights[i] > 0.0 && base_weights[i] < 1.0)) {
      return Status::InvalidArgument(
          "base weight " + std::to_string(i) + " outside (0,1): " +
          std::to_string(base_weights[i]));
    }
  }
  return BetaProcess(concentration, std::move(base_weights));
}

std::vector<double> BetaProcess::SampleWeights(stats::Rng* rng) const {
  std::vector<double> weights(base_weights_.size());
  for (size_t i = 0; i < base_weights_.size(); ++i) {
    weights[i] = stats::SampleBeta(rng, concentration_ * base_weights_[i],
                                   concentration_ * (1.0 - base_weights_[i]));
  }
  return weights;
}

std::vector<int> BetaProcess::SampleBernoulliDraw(
    const std::vector<double>& weights, stats::Rng* rng) {
  std::vector<int> draw(weights.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    draw[i] = stats::SampleBernoulli(rng, weights[i]) ? 1 : 0;
  }
  return draw;
}

Result<BetaProcess> BetaProcess::Posterior(const std::vector<int>& successes,
                                           int num_draws) const {
  if (successes.size() != base_weights_.size()) {
    return Status::InvalidArgument("success counts do not match atom count");
  }
  if (num_draws < 0) {
    return Status::InvalidArgument("negative draw count");
  }
  double c = concentration_;
  double m = static_cast<double>(num_draws);
  std::vector<double> post(base_weights_.size());
  for (size_t i = 0; i < base_weights_.size(); ++i) {
    if (successes[i] < 0 || successes[i] > num_draws) {
      return Status::InvalidArgument(
          "success count " + std::to_string(successes[i]) +
          " outside [0, m] at atom " + std::to_string(i));
    }
    post[i] = (c * base_weights_[i] + successes[i]) / (c + m);
    // Keep strictly inside (0,1) so the posterior is a valid prior again.
    post[i] = std::min(std::max(post[i], 1e-12), 1.0 - 1e-12);
  }
  return BetaProcess(c + m, std::move(post));
}

}  // namespace core
}  // namespace piperisk
