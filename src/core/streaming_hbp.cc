#include "core/streaming_hbp.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <map>
#include <tuple>
#include <utility>

#include "common/strings.h"
#include "core/beta_bernoulli.h"
#include "core/mcmc.h"
#include "data/split.h"
#include "stats/distributions.h"
#include "stats/rng.h"

namespace piperisk {
namespace core {

namespace {

// Same clamp as the in-memory samplers (hbp.cc).
constexpr double kRateFloor = 1e-7;
constexpr double kRateCeil = 1.0 - 1e-7;

// PCG stream of the streaming sampler's chain c (stream base + c). A
// dedicated base keeps these chains independent of HbpModel's kHbpStream
// draws without any coordination.
constexpr std::uint64_t kStreamingHbpStream = 0x53484250ULL;  // "SHBP"

double Clamp01(double q) { return std::clamp(q, kRateFloor, kRateCeil); }

net::FeatureConfig FeaturesFor(net::PipeCategory category) {
  return category == net::PipeCategory::kWasteWater
             ? net::FeatureConfig::WasteWater()
             : net::FeatureConfig::DrinkingWater();
}

/// One merged sufficient-statistic class: weight pipes sharing (k, n)
/// within one raw group.
struct SuffClass {
  int k = 0;
  int n = 0;
  long long weight = 0;
};

/// (raw group, k, n) -> weight. std::map so iteration (and therefore every
/// downstream float summation) follows a canonical order, independent of
/// shard processing interleaving.
using SuffHistogram = std::map<std::tuple<int, int, int>, long long>;

Result<ModelInput> BuildShardInput(const data::RegionDataset& dataset,
                                   const StreamingHbpOptions& options) {
  return ModelInput::Build(dataset, data::TemporalSplit::Paper(),
                           options.category, FeaturesFor(options.category));
}

}  // namespace

Result<StreamingHbpFit> FitStreamingHbp(const data::ShardedDataset& shards,
                                        const StreamingHbpOptions& options) {
  const HierarchyConfig& h = options.hierarchy;
  if (h.samples <= 0) return Status::InvalidArgument("samples must be > 0");
  if (h.num_chains < 1) {
    return Status::InvalidArgument("num_chains must be >= 1");
  }

  // Live progress (observational only; the writer thread never touches the
  // chain RNG streams, so heartbeat-enabled fits stay bit-reproducible).
  HeartbeatConfig hb_config = h.heartbeat;
  if (hb_config.label.empty()) hb_config.label = "fit streaming-hbp";
  HeartbeatMonitor heartbeat(hb_config, h.num_chains,
                             h.burn_in + h.samples);
  heartbeat.SetPhase("stream-shards");
  heartbeat.Start();

  // --- pass 1: stream shards into per-shard histograms ----------------------
  const size_t num_shards = shards.shards().size();
  std::vector<SuffHistogram> partials(num_shards);
  std::vector<std::uint64_t> shard_pipes(num_shards, 0);
  std::atomic<int> shards_done{0};
  heartbeat.ReportShards(0, static_cast<int>(num_shards));
  PIPERISK_RETURN_IF_ERROR(shards.ForEachShard(
      options.shard_window,
      [&](size_t shard, const data::RegionDataset& dataset) -> Status {
        PIPERISK_ASSIGN_OR_RETURN(ModelInput input,
                                  BuildShardInput(dataset, options));
        const std::vector<PipeCounts> counts = BuildPipeCounts(input);
        SuffHistogram& local = partials[shard];
        for (size_t i = 0; i < input.num_pipes(); ++i) {
          const int raw = RawFixedPipeGroupKey(input, i, options.scheme);
          local[{raw, counts[i].k, counts[i].n}] += 1;
        }
        shard_pipes[shard] = input.num_pipes();
        heartbeat.ReportShards(
            shards_done.fetch_add(1, std::memory_order_relaxed) + 1,
            static_cast<int>(num_shards));
        return Status::OK();
      }));

  // Merge in shard order. Weights are integers, so the merged histogram is
  // exactly what a single-pass in-memory build would produce.
  SuffHistogram merged;
  for (const SuffHistogram& partial : partials) {
    for (const auto& [key, weight] : partial) merged[key] += weight;
  }
  partials.clear();
  if (merged.empty()) {
    return Status::InvalidArgument(
        "no pipes of the requested category in any shard");
  }

  StreamingHbpFit fit;
  fit.c = h.c;
  for (std::uint64_t p : shard_pipes) fit.total_pipes += p;

  // Dense group space: sorted raw keys (canonical, shard-order-free).
  for (const auto& [key, weight] : merged) {
    const int raw = std::get<0>(key);
    if (fit.raw_keys.empty() || fit.raw_keys.back() != raw) {
      fit.raw_keys.push_back(raw);
    }
    fit.total_k +=
        static_cast<std::uint64_t>(std::get<1>(key)) *
        static_cast<std::uint64_t>(weight);
    fit.total_n +=
        static_cast<std::uint64_t>(std::get<2>(key)) *
        static_cast<std::uint64_t>(weight);
  }
  const int num_groups = static_cast<int>(fit.raw_keys.size());
  std::vector<std::vector<SuffClass>> classes(
      static_cast<size_t>(num_groups));
  for (const auto& [key, weight] : merged) {
    const auto it = std::lower_bound(fit.raw_keys.begin(), fit.raw_keys.end(),
                                     std::get<0>(key));
    const size_t g = static_cast<size_t>(it - fit.raw_keys.begin());
    classes[g].push_back(
        SuffClass{std::get<1>(key), std::get<2>(key), weight});
  }

  // Prior mean: the empirical pipe-year failure rate, exactly HbpModel's
  // formula over the pooled totals.
  double q0 = h.q0;
  if (q0 <= 0.0) {
    q0 = std::clamp(
        (static_cast<double>(fit.total_k) + 0.5) /
            std::max(static_cast<double>(fit.total_n), 1.0),
        1e-6, 0.5);
  }
  fit.q0 = q0;
  const double a0 = h.c0 * q0;
  const double b0 = h.c0 * (1.0 - q0);

  std::vector<double> init_q(static_cast<size_t>(num_groups), q0);
  for (int g = 0; g < num_groups; ++g) {
    double k_sum = 0.0, n_sum = 0.0;
    for (const SuffClass& cls : classes[static_cast<size_t>(g)]) {
      k_sum += static_cast<double>(cls.weight) * cls.k;
      n_sum += static_cast<double>(cls.weight) * cls.n;
    }
    init_q[static_cast<size_t>(g)] =
        std::clamp((k_sum + h.c0 * q0) / (n_sum + h.c0), 1e-6, 0.5);
  }

  auto group_loglik = [&](int g, double qg) {
    double ll = stats::LogPdfBeta(qg, a0, b0);
    const double mean = Clamp01(qg);
    const double a = h.c * mean;
    const double b = h.c * (1.0 - mean);
    for (const SuffClass& cls : classes[static_cast<size_t>(g)]) {
      ll += static_cast<double>(cls.weight) *
            LogMarginalNoBinom(cls.k, cls.n, a, b);
    }
    return ll;
  };

  // --- sampler: num_chains independent Metropolis-within-Gibbs chains ------
  // over the merged table. The table is tiny (groups x distinct (k, n)
  // pairs), so chains run serially; determinism needs only the fixed
  // per-chain streams.
  std::vector<double> rate_sum(static_cast<size_t>(num_groups), 0.0);
  std::vector<double> tilted_sum(static_cast<size_t>(num_groups), 0.0);
  long long collected = 0;
  const int total_sweeps = h.burn_in + h.samples;
  heartbeat.SetPhase("sweep");
  for (int chain = 0; chain < h.num_chains; ++chain) {
    stats::Rng rng(h.seed,
                   kStreamingHbpStream + static_cast<std::uint64_t>(chain));
    std::vector<double> q = init_q;
    std::vector<double> current_ll(static_cast<size_t>(num_groups));
    std::vector<StepSizeAdapter> adapters(static_cast<size_t>(num_groups));
    std::int64_t proposals = 0, accepts = 0;
    for (int g = 0; g < num_groups; ++g) {
      current_ll[static_cast<size_t>(g)] = group_loglik(g, q[static_cast<size_t>(g)]);
    }
    for (int iter = 0; iter < total_sweeps; ++iter) {
      for (int g = 0; g < num_groups; ++g) {
        const size_t gi = static_cast<size_t>(g);
        bool accepted = false;
        q[gi] = MetropolisLogitStep(
            q[gi], &current_ll[gi],
            [&](double v) { return group_loglik(g, v); }, adapters[gi].step(),
            &rng, &accepted);
        if (iter < h.burn_in) adapters[gi].Update(accepted);
        ++proposals;
        accepts += accepted ? 1 : 0;
      }
      if (iter >= h.burn_in) {
        ++collected;
        double q_max = 0.0;
        for (int g = 0; g < num_groups; ++g) {
          const size_t gi = static_cast<size_t>(g);
          rate_sum[gi] += q[gi];
          tilted_sum[gi] += Clamp01(q[gi]);
          q_max = std::max(q_max, q[gi]);
        }
        heartbeat.ReportDraw(chain, q_max);
      }
      heartbeat.ReportSweep(chain, iter + 1);
      heartbeat.ReportAcceptance(chain, proposals, accepts);
    }
  }
  heartbeat.SetPhase("done");
  heartbeat.Stop();

  fit.group_rate_means.resize(static_cast<size_t>(num_groups));
  fit.group_tilted_means.resize(static_cast<size_t>(num_groups));
  for (int g = 0; g < num_groups; ++g) {
    const size_t gi = static_cast<size_t>(g);
    fit.group_rate_means[gi] = rate_sum[gi] / static_cast<double>(collected);
    fit.group_tilted_means[gi] =
        tilted_sum[gi] / static_cast<double>(collected);
  }
  return fit;
}

Status ScoreStreamingHbp(const data::ShardedDataset& shards,
                         const StreamingHbpFit& fit,
                         const StreamingHbpOptions& options,
                         const std::string& out_path) {
  // Score-pass heartbeat: shard progress only (no chains, no sweeps).
  HeartbeatConfig hb_config = options.hierarchy.heartbeat;
  if (hb_config.label.empty()) hb_config.label = "score streaming-hbp";
  HeartbeatMonitor heartbeat(hb_config, /*num_chains=*/1, /*total_sweeps=*/0);
  heartbeat.SetPhase("score");
  heartbeat.Start();

  const size_t num_shards = shards.shards().size();
  std::vector<std::vector<std::pair<net::PipeId, double>>> rows(num_shards);
  std::atomic<int> shards_done{0};
  heartbeat.ReportShards(0, static_cast<int>(num_shards));
  PIPERISK_RETURN_IF_ERROR(shards.ForEachShard(
      options.shard_window,
      [&](size_t shard, const data::RegionDataset& dataset) -> Status {
        PIPERISK_ASSIGN_OR_RETURN(ModelInput input,
                                  BuildShardInput(dataset, options));
        const std::vector<PipeCounts> counts = BuildPipeCounts(input);
        auto& out = rows[shard];
        out.reserve(input.num_pipes());
        for (size_t i = 0; i < input.num_pipes(); ++i) {
          const int raw = RawFixedPipeGroupKey(input, i, options.scheme);
          const auto it = std::lower_bound(fit.raw_keys.begin(),
                                           fit.raw_keys.end(), raw);
          // Groups unseen at fit time (possible when scoring a different
          // dataset) fall back to the prior mean.
          const double q_mean =
              (it != fit.raw_keys.end() && *it == raw)
                  ? fit.group_tilted_means[static_cast<size_t>(
                        it - fit.raw_keys.begin())]
                  : Clamp01(fit.q0);
          const double score = PosteriorMeanRate(
              BetaParams{q_mean, fit.c}, counts[i].k, counts[i].n);
          out.emplace_back(input.pipes[i]->id, score);
        }
        heartbeat.ReportShards(
            shards_done.fetch_add(1, std::memory_order_relaxed) + 1,
            static_cast<int>(num_shards));
        return Status::OK();
      }));
  heartbeat.SetPhase("done");
  heartbeat.Stop();

  // Serial write in shard order: the scores artefact lists pipes exactly as
  // a streaming reader walks them. Row-at-a-time fprintf, never a whole
  // CSV document in memory.
  const std::string tmp = out_path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open scores file for writing: " + tmp);
  }
  std::fputs("pipe_id,score\n", f);
  for (const auto& shard_rows : rows) {
    for (const auto& [id, score] : shard_rows) {
      std::fprintf(f, "%lld,%.10g\n", static_cast<long long>(id), score);
    }
  }
  const bool ok = std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) return Status::IoError("scores write failed: " + tmp);
  if (std::rename(tmp.c_str(), out_path.c_str()) != 0) {
    return Status::IoError("cannot rename scores into place: " + out_path);
  }
  return Status::OK();
}

}  // namespace core
}  // namespace piperisk
