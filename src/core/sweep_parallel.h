#ifndef PIPERISK_CORE_SWEEP_PARALLEL_H_
#define PIPERISK_CORE_SWEEP_PARALLEL_H_

#include <cstdint>
#include <vector>

#include "common/telemetry.h"
#include "stats/rng.h"

namespace piperisk {
namespace core {

/// Within-chain sweep partitioning support (see DESIGN.md "Within-chain
/// parallelism & SIMD").
///
/// Deterministic mode: the sweep's RNG draws all happen on a serial
/// coordinator in canonical order; only pure (RNG-free) work — likelihood
/// column refreshes and Metropolis log-target evaluations — fans out over
/// the shared thread pool, and results are merged back in canonical group
/// order with the exact serial arithmetic. Output is bit-identical at every
/// sweep_threads setting.
///
/// Fast mode: CRP reassignment is sharded over contiguous row blocks, each
/// shard sampling against start-of-sweep state with its own pre-forked RNG
/// sub-stream; assignments are applied in shard order afterwards. Output is
/// deterministic for a fixed (seed, sweep_threads) but not bit-identical to
/// the serial sweep.

/// Resolves a HierarchyConfig::sweep_threads setting to a concrete thread
/// count: <= 0 means "whole machine" (shared pool workers + the caller),
/// otherwise the setting itself.
int ResolveSweepThreads(int sweep_threads);

/// Pre-forks one RNG sub-stream per shard from the chain RNG. Consumes
/// exactly `shards` Fork() calls from `chain_rng`, in shard order, so the
/// fork layout is fixed up front and independent of execution order.
std::vector<stats::Rng> ForkShardRngs(stats::Rng* chain_rng, int shards);

/// core.sweep.* telemetry, eagerly registered (like the thread pool's) so
/// fully serial runs still export a stable metrics schema.
struct SweepMetrics {
  telemetry::Counter* parallel_sweeps;    ///< sweeps that used partitioning
  telemetry::Counter* serial_sweeps;      ///< sweeps on the serial path
  telemetry::Counter* column_refreshes;   ///< stale columns refreshed in the
                                          ///< parallel prefetch
  telemetry::Counter* predrawn_proposals; ///< Metropolis proposals pre-drawn
                                          ///< by the serial coordinator
  telemetry::Counter* fast_shards;        ///< CRP shards run in fast mode

  static const SweepMetrics& Get();
};

}  // namespace core
}  // namespace piperisk

#endif  // PIPERISK_CORE_SWEEP_PARALLEL_H_
