#ifndef PIPERISK_CORE_DIAGNOSTICS_H_
#define PIPERISK_CORE_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "core/dpmhbp.h"
#include "core/hbp.h"

namespace piperisk {
namespace core {

/// Convergence diagnostics for the Metropolis-within-Gibbs chains, so users
/// can audit a fit instead of trusting defaults: effective sample sizes and
/// Geweke z-scores per monitored trace, plus posterior summaries of the DP
/// state (group count, alpha).
struct TraceDiagnostic {
  std::string name;
  double mean = 0.0;
  double stddev = 0.0;
  double ess = 0.0;       ///< effective sample size
  double geweke_z = 0.0;  ///< |z| >~ 2 suggests non-convergence
  size_t samples = 0;
};

/// Diagnostics for a fitted HBP model (one entry per group-rate trace).
std::vector<TraceDiagnostic> DiagnoseHbp(const HbpModel& model);

/// Diagnostics for a fitted DPMHBP model: the group-count trace, the alpha
/// trace, and summary flags.
struct DpmhbpDiagnostics {
  TraceDiagnostic num_groups;
  TraceDiagnostic alpha;
  double mean_groups = 0.0;
  /// True when both monitored traces pass |geweke| < 2 and ESS > 10.
  bool converged = false;
};
DpmhbpDiagnostics DiagnoseDpmhbp(const DpmhbpModel& model);

/// Renders diagnostics as an aligned text block for logs / bench output.
std::string RenderDiagnostics(const std::vector<TraceDiagnostic>& diagnostics);

}  // namespace core
}  // namespace piperisk

#endif  // PIPERISK_CORE_DIAGNOSTICS_H_
