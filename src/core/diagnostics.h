#ifndef PIPERISK_CORE_DIAGNOSTICS_H_
#define PIPERISK_CORE_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "core/dpmhbp.h"
#include "core/hbp.h"

namespace piperisk {
namespace core {

/// Convergence diagnostics for the Metropolis-within-Gibbs chains, so users
/// can audit a fit instead of trusting defaults: effective sample sizes,
/// Geweke z-scores and cross-chain split-R̂ per monitored trace, plus
/// posterior summaries of the DP state (group count, alpha).

/// Split-R̂ (Gelman–Rubin potential scale reduction, split-chain variant of
/// Vehtari et al. 2021): each chain is halved, and R̂ compares the pooled
/// between-half variance to the mean within-half variance. Values near 1
/// indicate the chains agree; >~1.1 flags non-convergence. Works on a single
/// chain (its two halves) as well as across chains. Returns 1.0 when the
/// traces are too short (< 4 draws per chain) or degenerate (zero variance
/// everywhere), and +inf when the halves have distinct constant values.
double SplitRhat(const std::vector<std::vector<double>>& chains);

/// Pooled effective sample size across independent chains: the sum of the
/// per-chain Geyer ESS estimates, so PooledEss({t}) == EffectiveSampleSize(t)
/// exactly for a single chain.
double PooledEss(const std::vector<std::vector<double>>& chains);

struct TraceDiagnostic {
  std::string name;
  double mean = 0.0;
  double stddev = 0.0;
  double ess = 0.0;       ///< effective sample size (pooled across chains)
  double geweke_z = 0.0;  ///< |z| >~ 2 suggests non-convergence (chain 0)
  double rhat = 1.0;      ///< split-R̂; >~ 1.1 suggests non-convergence
  size_t chains = 1;      ///< number of chains behind the estimates
  size_t samples = 0;     ///< total draws pooled across chains
};

/// Diagnostics of a single trace (one chain).
TraceDiagnostic DiagnoseTrace(const std::string& name,
                              const std::vector<double>& trace);

/// Diagnostics of one monitored quantity observed by several independent
/// chains: pooled moments and ESS, chain-0 Geweke, cross-chain split-R̂.
TraceDiagnostic DiagnoseChains(const std::string& name,
                               const std::vector<std::vector<double>>& chains);

/// Diagnostics for a fitted HBP model (one entry per group-rate trace,
/// with cross-chain R̂ when the model ran more than one chain).
std::vector<TraceDiagnostic> DiagnoseHbp(const HbpModel& model);

/// Diagnostics for a fitted DPMHBP model: the group-count trace, the alpha
/// trace, the max-group-rate trace (a label-switching-invariant view of the
/// group-level rates q_k), and summary flags.
struct DpmhbpDiagnostics {
  TraceDiagnostic num_groups;
  TraceDiagnostic alpha;
  TraceDiagnostic q_max;
  double mean_groups = 0.0;
  /// True when the monitored traces pass |geweke| < 2, ESS > 10 and (for
  /// multi-chain fits) split-R̂ < 1.1.
  bool converged = false;
};
DpmhbpDiagnostics DiagnoseDpmhbp(const DpmhbpModel& model);

/// Renders diagnostics as an aligned text block for logs / bench output.
std::string RenderDiagnostics(const std::vector<TraceDiagnostic>& diagnostics);

}  // namespace core
}  // namespace piperisk

#endif  // PIPERISK_CORE_DIAGNOSTICS_H_
