#ifndef PIPERISK_CORE_SCORING_H_
#define PIPERISK_CORE_SCORING_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace piperisk {
namespace core {

/// Options for the batch scoring path. Scores are bit-identical for every
/// thread count: the blocked parallel-for partitions pipes into fixed-size
/// contiguous blocks (independent of the thread count), each block writes
/// only its own output slice, and every per-pipe computation reads only
/// immutable fitted state.
struct ScoreOptions {
  /// Worker threads for batch scoring (<= 0: use the hardware). Affects
  /// wall clock only, never the scores.
  int num_threads = 1;
};

/// CSR (offsets + flat indices) view of pipe -> segment-row membership: the
/// scoring-path replacement for the pointer-chasing
/// vector<vector<size_t>> layout. Built once per ModelInput and shared by
/// every segment-level scorer.
struct PipeSegmentIndex {
  std::vector<std::uint32_t> offsets;  ///< size num_pipes() + 1
  std::vector<std::uint32_t> rows;     ///< flattened segment rows, pipe-major

  std::size_t num_pipes() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }

  static PipeSegmentIndex FromRows(
      const std::vector<std::vector<std::size_t>>& pipe_segment_rows);
};

/// Row-major flattened feature table (SoA replacement for
/// vector<vector<double>>): one contiguous allocation, so blocked scoring
/// loops stream it instead of chasing per-pipe heap cells.
struct FeatureMatrix {
  std::vector<double> values;  ///< num_rows * dim
  std::size_t dim = 0;

  std::size_t num_rows() const { return dim == 0 ? 0 : values.size() / dim; }
  const double* row(std::size_t i) const { return values.data() + i * dim; }

  static FeatureMatrix FromRows(
      const std::vector<std::vector<double>>& feature_rows);
};

/// Runs `block_fn(begin, end, out)` over fixed-size contiguous pipe blocks
/// on the shared thread pool and returns the assembled score vector. `out`
/// points at scores[begin]; a block must write exactly [begin, end) of it.
/// The block size is a constant (not a function of the thread count), so the
/// decomposition — and therefore any per-block arithmetic — is identical for
/// every `options.num_threads`.
std::vector<double> ScoreBlocked(
    std::size_t num_pipes, const ScoreOptions& options,
    const std::function<void(std::size_t, std::size_t, double*)>& block_fn);

/// Blocked parallel pi_i = 1 - prod_{l in pipe i} (1 - p_l) over the CSR
/// index (Eq. 18.7 aggregation). Bit-identical to the historical serial
/// AggregatePipeRisk for every thread count.
std::vector<double> AggregateSegmentRisk(
    const PipeSegmentIndex& index, const std::vector<double>& segment_probs,
    const ScoreOptions& options);

}  // namespace core
}  // namespace piperisk

#endif  // PIPERISK_CORE_SCORING_H_
