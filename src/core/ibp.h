#ifndef PIPERISK_CORE_IBP_H_
#define PIPERISK_CORE_IBP_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "stats/rng.h"

namespace piperisk {
namespace core {

/// The Indian buffet process — the combinatorial face of the beta process
/// (Thibaux & Jordan 2007, the chapter's reference [17]): marginalising the
/// beta process out of a beta–Bernoulli feature model yields the IBP over
/// binary feature matrices, exactly as the CRP arises from the Dirichlet
/// process. Included because the chapter builds its whole hierarchy on the
/// BP; the IBP makes the "infinite binary matrix" view of Fig. 18.3
/// executable and testable.

/// A binary feature allocation: rows = customers (pipes), columns = dishes
/// (latent failure factors), entries in {0,1}. Columns appear in order of
/// first use.
struct FeatureAllocation {
  std::size_t num_rows = 0;
  std::vector<std::vector<int>> rows;  ///< ragged: row i has entries for all
                                       ///< columns existing when sampled
  std::size_t num_columns = 0;

  /// Dense matrix view (rows padded with zeros to num_columns).
  std::vector<std::vector<int>> Dense() const;
};

/// Samples one IBP(alpha) draw with `n` customers. Customer i samples each
/// existing dish k with probability m_k / (i+1) (m_k = prior takers), then
/// Poisson(alpha / (i+1)) new dishes. Fails for alpha <= 0 or n == 0.
Result<FeatureAllocation> SampleIbp(std::size_t n, double alpha,
                                    stats::Rng* rng);

/// Expected number of dishes after n customers: alpha * H_n.
double IbpExpectedDishes(std::size_t n, double alpha);

/// Expected total number of (customer, dish) entries: alpha * n.
double IbpExpectedEntries(std::size_t n, double alpha);

}  // namespace core
}  // namespace piperisk

#endif  // PIPERISK_CORE_IBP_H_
