#include "core/sweep_parallel.h"

#include "common/thread_pool.h"

namespace piperisk {
namespace core {

int ResolveSweepThreads(int sweep_threads) {
  if (sweep_threads > 0) return sweep_threads;
  return ThreadPool::Shared().num_workers() + 1;
}

std::vector<stats::Rng> ForkShardRngs(stats::Rng* chain_rng, int shards) {
  std::vector<stats::Rng> rngs;
  rngs.reserve(static_cast<size_t>(shards));
  for (int s = 0; s < shards; ++s) rngs.push_back(chain_rng->Fork());
  return rngs;
}

const SweepMetrics& SweepMetrics::Get() {
  static const SweepMetrics metrics = [] {
    auto& registry = telemetry::Registry::Global();
    SweepMetrics m;
    m.parallel_sweeps = registry.GetCounter("core.sweep.parallel_sweeps");
    m.serial_sweeps = registry.GetCounter("core.sweep.serial_sweeps");
    m.column_refreshes = registry.GetCounter("core.sweep.column_refreshes");
    m.predrawn_proposals = registry.GetCounter("core.sweep.predrawn_proposals");
    m.fast_shards = registry.GetCounter("core.sweep.fast_shards");
    return m;
  }();
  return metrics;
}

namespace {
/// Forces registration in any binary linking the core library, so snapshot
/// consumers can rely on the core.sweep.* keys existing even for runs that
/// never enter a sampler.
[[maybe_unused]] const SweepMetrics& g_eager_sweep_metrics =
    SweepMetrics::Get();
}  // namespace

}  // namespace core
}  // namespace piperisk
