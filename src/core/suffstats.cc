#include "core/suffstats.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <map>

#if defined(PIPERISK_HAVE_AVX2)
#include <immintrin.h>
#endif

#include "common/logging.h"
#include "common/telemetry.h"
#include "core/beta_bernoulli.h"
#include "stats/special.h"

namespace piperisk {
namespace core {

namespace {

std::atomic<int> g_simd_mode{static_cast<int>(SimdMode::kAuto)};

#if defined(PIPERISK_HAVE_AVX2)
/// AVX2 combine: four classes per iteration, gathering the precomputed
/// rising-factorial and memoised-lgamma entries and applying the same
/// ((rising + lgamma_off) - lgamma_b) + lnc association as the scalar loop.
/// Gathers, vaddpd, and vsubpd are IEEE-exact lane-wise, so every lane is
/// bit-identical to its scalar counterpart.
__attribute__((target("avx2"))) void CombineColumnAvx2(
    const double* rising, const double* lgamma_off, double lgamma_b,
    const std::int32_t* ki, const std::uint32_t* oidx, const double* lnc,
    const std::uint32_t* cls, double* out, std::size_t count) {
  const __m256d vb = _mm256_set1_pd(lgamma_b);
  // All-lanes-on masked gathers with an explicit zero source: identical to
  // the plain gather but avoids GCC's uninitialised pass-through operand.
  const __m256d gather_src = _mm256_setzero_pd();
  const __m256d gather_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m128i vki =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ki + i));
    const __m128i voi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(oidx + i));
    const __m256d vris =
        _mm256_mask_i32gather_pd(gather_src, rising, vki, gather_mask, 8);
    const __m256d vlgo =
        _mm256_mask_i32gather_pd(gather_src, lgamma_off, voi, gather_mask, 8);
    const __m256d vlnc = _mm256_loadu_pd(lnc + i);
    const __m256d v =
        _mm256_add_pd(_mm256_sub_pd(_mm256_add_pd(vris, vlgo), vb), vlnc);
    alignas(32) double lane[4];
    _mm256_store_pd(lane, v);
    out[cls[i]] = lane[0];
    out[cls[i + 1]] = lane[1];
    out[cls[i + 2]] = lane[2];
    out[cls[i + 3]] = lane[3];
  }
  for (; i < count; ++i) {
    out[cls[i]] = ((rising[ki[i]] + lgamma_off[oidx[i]]) - lgamma_b) + lnc[i];
  }
}
#endif  // PIPERISK_HAVE_AVX2

void CombineColumnScalar(const double* rising, const double* lgamma_off,
                         double lgamma_b, const std::int32_t* ki,
                         const std::uint32_t* oidx, const double* lnc,
                         const std::uint32_t* cls, double* out,
                         std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    out[cls[i]] = ((rising[ki[i]] + lgamma_off[oidx[i]]) - lgamma_b) + lnc[i];
  }
}

}  // namespace

void SetSimdMode(SimdMode mode) {
  g_simd_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

SimdMode GetSimdMode() {
  return static_cast<SimdMode>(g_simd_mode.load(std::memory_order_relaxed));
}

bool SimdKernelAvailable() {
#if defined(PIPERISK_HAVE_AVX2)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

SuffStatClasses SuffStatClasses::Build(const std::vector<double>& k,
                                       const std::vector<double>& n,
                                       const std::vector<double>& multiplier,
                                       double c, double mean_floor,
                                       double mean_ceil) {
  PIPERISK_CHECK(k.size() == n.size() && k.size() == multiplier.size())
      << "suffstat input size mismatch";
  PIPERISK_CHECK(c > 0.0) << "concentration must be positive";
  SuffStatClasses out;
  out.c_ = c;
  out.mean_floor_ = mean_floor;
  out.mean_ceil_ = mean_ceil;
  out.row_class_.resize(k.size());
  // Exact bit-level keying: two rows share a class only when their triples
  // are identical doubles, so a class's log marginal is exactly every
  // member's log marginal. Class ids follow first appearance in row order.
  std::map<std::array<double, 3>, size_t> ids;
  for (size_t row = 0; row < k.size(); ++row) {
    std::array<double, 3> key{k[row], n[row], multiplier[row]};
    auto [it, inserted] = ids.emplace(key, out.k_.size());
    if (inserted) {
      out.k_.push_back(k[row]);
      out.n_.push_back(n[row]);
      out.multiplier_.push_back(multiplier[row]);
      out.class_rows_.push_back(0);
    }
    out.row_class_[row] = it->second;
    out.class_rows_[it->second] += 1;
  }
  out.log_norm_const_.resize(out.k_.size());
  out.k_int_.resize(out.k_.size());
  const double lgamma_c = stats::LogGamma(c);
  for (size_t cls = 0; cls < out.k_.size(); ++cls) {
    out.log_norm_const_[cls] = lgamma_c - stats::LogGamma(c + out.n_[cls]);
    const double kd = out.k_[cls];
    const bool small_integer =
        kd >= 0.0 && kd <= 64.0 && kd == std::floor(kd) && kd <= out.n_[cls];
    out.k_int_[cls] = small_integer ? static_cast<int>(kd) : -1;
  }
  // Batch layout: group classes by exact multiplier bits so one tilted mean
  // (and hence one (a, b) pair, one lgamma(b), one rising ladder, one
  // memoised offset table) serves every class in the group. Group ids follow
  // first appearance in class order; output order is irrelevant because each
  // class writes its own slot.
  {
    std::map<double, size_t> gid;
    std::vector<std::vector<std::uint32_t>> members;
    for (size_t cls = 0; cls < out.k_.size(); ++cls) {
      auto [it, inserted] = gid.emplace(out.multiplier_[cls], members.size());
      if (inserted) members.emplace_back();
      members[it->second].push_back(static_cast<std::uint32_t>(cls));
    }
    for (const auto& group : members) {
      MultGroup mg;
      mg.multiplier = out.multiplier_[group.front()];
      mg.begin = out.grouped_cls_.size();
      mg.off_begin = out.offsets_.size();
      mg.slow_begin = out.slow_cls_.size();
      std::map<double, std::uint32_t> off_idx;
      for (std::uint32_t cls : group) {
        const int ki = out.k_int_[cls];
        if (ki < 0) {
          out.slow_cls_.push_back(cls);
          out.slow_k_.push_back(out.k_[cls]);
          out.slow_n_.push_back(out.n_[cls]);
          out.slow_lnc_.push_back(out.log_norm_const_[cls]);
          continue;
        }
        // The scalar path's lgamma argument is b + (n - ki) with n - ki
        // computed first; memoise on those exact offset bits.
        const double offset = out.n_[cls] - ki;
        auto [oit, oinserted] =
            off_idx.emplace(offset, static_cast<std::uint32_t>(off_idx.size()));
        if (oinserted) out.offsets_.push_back(offset);
        out.grouped_cls_.push_back(cls);
        out.grouped_ki_.push_back(ki);
        out.grouped_oidx_.push_back(oit->second);
        out.grouped_lnc_.push_back(out.log_norm_const_[cls]);
        mg.max_ki = std::max(mg.max_ki, ki);
      }
      mg.end = out.grouped_cls_.size();
      mg.off_end = out.offsets_.size();
      mg.slow_end = out.slow_cls_.size();
      out.mult_groups_.push_back(mg);
    }
  }
  {
    auto& registry = telemetry::Registry::Global();
    static telemetry::Counter* const builds =
        registry.GetCounter("suffstats.builds");
    static telemetry::Counter* const rows =
        registry.GetCounter("suffstats.rows");
    static telemetry::Counter* const classes =
        registry.GetCounter("suffstats.classes");
    builds->Increment();
    rows->Add(static_cast<std::int64_t>(out.num_rows()));
    classes->Add(static_cast<std::int64_t>(out.num_classes()));
  }
  return out;
}

double SuffStatClasses::ClassLogLik(size_t cls, double q) const {
  const double mean =
      std::clamp(q * multiplier_[cls], mean_floor_, mean_ceil_);
  const int ki = k_int_[cls];
  if (ki < 0) {
    return LogMarginalNoBinomHoisted(k_[cls], n_[cls], c_ * mean,
                                     c_ * (1.0 - mean), log_norm_const_[cls]);
  }
  // Rising-factorial fast path: exact for integer k, and k is a count of
  // failure years so it is almost always 0 and never large.
  const double a = c_ * mean;
  const double b = c_ * (1.0 - mean);
  double rising = 0.0;
  for (int j = 0; j < ki; ++j) rising += std::log(a + j);
  return rising + stats::LogGamma(b + (n_[cls] - ki)) - stats::LogGamma(b) +
         log_norm_const_[cls];
}

void SuffStatClasses::FillColumn(double q, std::vector<double>* out) const {
  out->resize(num_classes());
  for (size_t cls = 0; cls < num_classes(); ++cls) {
    (*out)[cls] = ClassLogLik(cls, q);
  }
}

void SuffStatClasses::FillColumnBatch(double q, std::vector<double>* out,
                                      ColumnScratch* scratch) const {
  out->resize(num_classes());
  double* const o = out->data();
#if defined(PIPERISK_HAVE_AVX2)
  const bool use_avx2 =
      GetSimdMode() == SimdMode::kAuto && SimdKernelAvailable();
#endif
  for (const MultGroup& mg : mult_groups_) {
    const double mean = std::clamp(q * mg.multiplier, mean_floor_, mean_ceil_);
    const double a = c_ * mean;
    const double b = c_ * (1.0 - mean);
    const double lgamma_b = stats::LogGamma(b);
    // Cumulative rising factorial: rising[j] is exactly the scalar ladder's
    // left-to-right partial sum after j terms, so rising[ki] is bit-equal to
    // the scalar loop's accumulator for class k = ki.
    scratch->rising.resize(static_cast<size_t>(mg.max_ki) + 1);
    scratch->rising[0] = 0.0;
    for (int j = 0; j < mg.max_ki; ++j) {
      scratch->rising[static_cast<size_t>(j) + 1] =
          scratch->rising[static_cast<size_t>(j)] + std::log(a + j);
    }
    // Memoised lgamma table: one entry per distinct n - k in the group —
    // the "integer arguments that dominate" (a handful of exposure totals),
    // so the whole group pays O(distinct offsets) lgammas, not O(classes).
    scratch->lgamma_off.resize(mg.off_end - mg.off_begin);
    for (size_t oi = mg.off_begin; oi < mg.off_end; ++oi) {
      scratch->lgamma_off[oi - mg.off_begin] = stats::LogGamma(b + offsets_[oi]);
    }
    const std::size_t count = mg.end - mg.begin;
#if defined(PIPERISK_HAVE_AVX2)
    if (use_avx2) {
      CombineColumnAvx2(scratch->rising.data(), scratch->lgamma_off.data(),
                        lgamma_b, grouped_ki_.data() + mg.begin,
                        grouped_oidx_.data() + mg.begin,
                        grouped_lnc_.data() + mg.begin,
                        grouped_cls_.data() + mg.begin, o, count);
    } else
#endif
    {
      CombineColumnScalar(scratch->rising.data(), scratch->lgamma_off.data(),
                          lgamma_b, grouped_ki_.data() + mg.begin,
                          grouped_oidx_.data() + mg.begin,
                          grouped_lnc_.data() + mg.begin,
                          grouped_cls_.data() + mg.begin, o, count);
    }
    // Fractional-k stragglers: the 4-lgamma hoisted form, batched with
    // lgamma(a)/lgamma(b) lifted out of the loop.
    const std::size_t slow_count = mg.slow_end - mg.slow_begin;
    if (slow_count > 0) {
      scratch->slow.resize(slow_count);
      LogMarginalNoBinomHoistedBatch(
          slow_k_.data() + mg.slow_begin, slow_n_.data() + mg.slow_begin, a, b,
          slow_lnc_.data() + mg.slow_begin, scratch->slow.data(), slow_count);
      for (std::size_t i = 0; i < slow_count; ++i) {
        o[slow_cls_[mg.slow_begin + i]] = scratch->slow[i];
      }
    }
  }
}

const std::vector<double>& GroupLikelihoodCache::Refresh(size_t g,
                                                         std::uint64_t version,
                                                         double q) {
  ++misses_;
  if (g >= slots_.size()) slots_.resize(g + 1);
  classes_->FillColumnBatch(q, &slots_[g].col, &serial_scratch_);
  slots_[g].version = version;
  return slots_[g].col;
}

}  // namespace core
}  // namespace piperisk
