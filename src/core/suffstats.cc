#include "core/suffstats.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>

#include "common/logging.h"
#include "common/telemetry.h"
#include "core/beta_bernoulli.h"
#include "stats/special.h"

namespace piperisk {
namespace core {

SuffStatClasses SuffStatClasses::Build(const std::vector<double>& k,
                                       const std::vector<double>& n,
                                       const std::vector<double>& multiplier,
                                       double c, double mean_floor,
                                       double mean_ceil) {
  PIPERISK_CHECK(k.size() == n.size() && k.size() == multiplier.size())
      << "suffstat input size mismatch";
  PIPERISK_CHECK(c > 0.0) << "concentration must be positive";
  SuffStatClasses out;
  out.c_ = c;
  out.mean_floor_ = mean_floor;
  out.mean_ceil_ = mean_ceil;
  out.row_class_.resize(k.size());
  // Exact bit-level keying: two rows share a class only when their triples
  // are identical doubles, so a class's log marginal is exactly every
  // member's log marginal. Class ids follow first appearance in row order.
  std::map<std::array<double, 3>, size_t> ids;
  for (size_t row = 0; row < k.size(); ++row) {
    std::array<double, 3> key{k[row], n[row], multiplier[row]};
    auto [it, inserted] = ids.emplace(key, out.k_.size());
    if (inserted) {
      out.k_.push_back(k[row]);
      out.n_.push_back(n[row]);
      out.multiplier_.push_back(multiplier[row]);
      out.class_rows_.push_back(0);
    }
    out.row_class_[row] = it->second;
    out.class_rows_[it->second] += 1;
  }
  out.log_norm_const_.resize(out.k_.size());
  out.k_int_.resize(out.k_.size());
  const double lgamma_c = stats::LogGamma(c);
  for (size_t cls = 0; cls < out.k_.size(); ++cls) {
    out.log_norm_const_[cls] = lgamma_c - stats::LogGamma(c + out.n_[cls]);
    const double kd = out.k_[cls];
    const bool small_integer =
        kd >= 0.0 && kd <= 64.0 && kd == std::floor(kd) && kd <= out.n_[cls];
    out.k_int_[cls] = small_integer ? static_cast<int>(kd) : -1;
  }
  {
    auto& registry = telemetry::Registry::Global();
    static telemetry::Counter* const builds =
        registry.GetCounter("suffstats.builds");
    static telemetry::Counter* const rows =
        registry.GetCounter("suffstats.rows");
    static telemetry::Counter* const classes =
        registry.GetCounter("suffstats.classes");
    builds->Increment();
    rows->Add(static_cast<std::int64_t>(out.num_rows()));
    classes->Add(static_cast<std::int64_t>(out.num_classes()));
  }
  return out;
}

double SuffStatClasses::ClassLogLik(size_t cls, double q) const {
  const double mean =
      std::clamp(q * multiplier_[cls], mean_floor_, mean_ceil_);
  const int ki = k_int_[cls];
  if (ki < 0) {
    return LogMarginalNoBinomHoisted(k_[cls], n_[cls], c_ * mean,
                                     c_ * (1.0 - mean), log_norm_const_[cls]);
  }
  // Rising-factorial fast path: exact for integer k, and k is a count of
  // failure years so it is almost always 0 and never large.
  const double a = c_ * mean;
  const double b = c_ * (1.0 - mean);
  double rising = 0.0;
  for (int j = 0; j < ki; ++j) rising += std::log(a + j);
  return rising + stats::LogGamma(b + (n_[cls] - ki)) - stats::LogGamma(b) +
         log_norm_const_[cls];
}

void SuffStatClasses::FillColumn(double q, std::vector<double>* out) const {
  out->resize(num_classes());
  for (size_t cls = 0; cls < num_classes(); ++cls) {
    (*out)[cls] = ClassLogLik(cls, q);
  }
}

const std::vector<double>& GroupLikelihoodCache::Refresh(size_t g,
                                                         std::uint64_t version,
                                                         double q) {
  ++misses_;
  if (g >= slots_.size()) slots_.resize(g + 1);
  classes_->FillColumn(q, &slots_[g].col);
  slots_[g].version = version;
  return slots_[g].col;
}

}  // namespace core
}  // namespace piperisk
