#include "core/covariates.h"

#include <algorithm>
#include <cmath>

#include "stats/linalg.h"

namespace piperisk {
namespace core {

Result<PoissonRegression> PoissonRegression::Fit(
    const std::vector<std::vector<double>>& features,
    const std::vector<double>& counts, const std::vector<double>& exposures,
    const PoissonRegressionConfig& config) {
  const std::size_t n = features.size();
  if (counts.size() != n || exposures.size() != n) {
    return Status::InvalidArgument("rows/counts/exposures length mismatch");
  }
  if (n == 0) return Status::InvalidArgument("empty training set");
  const std::size_t d = features[0].size();
  for (const auto& row : features) {
    if (row.size() != d) {
      return Status::InvalidArgument("ragged feature rows");
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!(exposures[i] > 0.0)) {
      return Status::InvalidArgument("non-positive exposure");
    }
    if (counts[i] < 0.0) {
      return Status::InvalidArgument("negative count");
    }
  }

  PoissonRegression model;
  model.weights_.assign(d, 0.0);
  // Start the intercept at the log of the aggregate rate.
  double total_k = 0.0, total_n = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total_k += counts[i];
    total_n += exposures[i];
  }
  model.intercept_ = std::log(std::max(total_k, 0.5) / total_n);

  // Newton iterations on the penalised log likelihood
  //   sum_i [k_i eta_i - n_i exp(eta_i)] - ridge/2 ||w||^2,
  //   eta_i = b0 + w' z_i.
  const std::size_t dim = d + 1;  // intercept last
  std::vector<double> eta(n, 0.0);
  auto compute_loglik = [&](double b0, const std::vector<double>& w) {
    double ll = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double e = b0;
      for (std::size_t c = 0; c < d; ++c) e += w[c] * features[i][c];
      // Clamp to avoid exp overflow in pathological steps.
      e = std::clamp(e, -30.0, 30.0);
      ll += counts[i] * e - exposures[i] * std::exp(e);
    }
    for (double wc : w) ll -= 0.5 * config.ridge * wc * wc;
    return ll;
  };

  double current_ll = compute_loglik(model.intercept_, model.weights_);
  int iter = 0;
  for (; iter < config.max_iterations; ++iter) {
    // Gradient and Hessian of the penalised log likelihood.
    std::vector<double> grad(dim, 0.0);
    stats::SymmetricMatrix hess(dim);
    for (std::size_t i = 0; i < n; ++i) {
      double e = model.intercept_;
      for (std::size_t c = 0; c < d; ++c) {
        e += model.weights_[c] * features[i][c];
      }
      e = std::clamp(e, -30.0, 30.0);
      double mu = exposures[i] * std::exp(e);
      double resid = counts[i] - mu;
      for (std::size_t c = 0; c < d; ++c) grad[c] += resid * features[i][c];
      grad[d] += resid;
      for (std::size_t r = 0; r < d; ++r) {
        for (std::size_t c = r; c < d; ++c) {
          hess.AddSymmetric(r, c, mu * features[i][r] * features[i][c]);
        }
        hess.AddSymmetric(r, d, mu * features[i][r]);
      }
      hess.at(d, d) += mu;
    }
    for (std::size_t c = 0; c < d; ++c) {
      grad[c] -= config.ridge * model.weights_[c];
      hess.at(c, c) += config.ridge;
    }
    hess.AddDiagonal(1e-9);  // numerical floor

    double grad_norm = stats::Norm2(grad);
    if (grad_norm < config.tolerance * (1.0 + std::fabs(current_ll))) break;

    auto step = stats::CholeskySolve(hess, grad);
    if (!step.ok()) return step.status();

    // Step halving to guarantee ascent.
    double scale = 1.0;
    bool improved = false;
    for (int half = 0; half < 30; ++half) {
      std::vector<double> w_try = model.weights_;
      for (std::size_t c = 0; c < d; ++c) w_try[c] += scale * (*step)[c];
      double b0_try = model.intercept_ + scale * (*step)[d];
      double ll_try = compute_loglik(b0_try, w_try);
      if (ll_try > current_ll - 1e-12) {
        model.weights_ = std::move(w_try);
        model.intercept_ = b0_try;
        current_ll = ll_try;
        improved = true;
        break;
      }
      scale *= 0.5;
    }
    if (!improved) break;  // converged to numerical precision
  }
  model.iterations_used_ = iter;
  (void)eta;
  return model;
}

double PoissonRegression::LinearPredictor(
    const std::vector<double>& features) const {
  double e = 0.0;
  for (std::size_t c = 0; c < weights_.size() && c < features.size(); ++c) {
    e += weights_[c] * features[c];
  }
  return e;
}

double PoissonRegression::Rate(const std::vector<double>& features) const {
  return std::exp(std::clamp(intercept_ + LinearPredictor(features), -30.0,
                             30.0));
}

std::vector<double> NormalisedMultipliers(
    const PoissonRegression& model,
    const std::vector<std::vector<double>>& features, double min_mult,
    double max_mult) {
  std::vector<double> mult(features.size(), 1.0);
  if (features.empty()) return mult;
  double mean = 0.0;
  for (std::size_t i = 0; i < features.size(); ++i) {
    mult[i] = std::exp(std::clamp(model.LinearPredictor(features[i]), -20.0,
                                  20.0));
    mean += mult[i];
  }
  mean /= static_cast<double>(features.size());
  if (mean <= 0.0) return std::vector<double>(features.size(), 1.0);
  for (double& m : mult) {
    m = std::clamp(m / mean, min_mult, max_mult);
  }
  return mult;
}

}  // namespace core
}  // namespace piperisk
