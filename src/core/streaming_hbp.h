#ifndef PIPERISK_CORE_STREAMING_HBP_H_
#define PIPERISK_CORE_STREAMING_HBP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/hbp.h"
#include "data/sharded_dataset.h"
#include "net/feature.h"

namespace piperisk {
namespace core {

/// Out-of-core HBP over a sharded dataset (see data/sharded_dataset.h).
///
/// The pipe-level HBP's collapsed likelihood depends on the data only
/// through the per-group histogram of (k, n) sufficient statistics — k
/// failing training years out of n observed ones — so the fit streams
/// shards through a bounded window, reduces each to that histogram via
/// `ModelInput::Build` + `BuildPipeCounts`, merges (integer weights: the
/// merged histogram is exactly the in-memory one, independent of shard or
/// thread order), and then runs the Metropolis-within-Gibbs group sampler
/// over the tiny merged table. Peak RSS is bounded by the shard window, not
/// the network.
///
/// Two deliberate deviations from the in-memory `HbpModel`:
///   - covariate multipliers are not fitted (the pooled histogram cannot
///     carry per-pipe feature rows); the streaming fit is the
///     covariate-free HBP, exactly the `use_covariates = false` model;
///   - draws come from this sampler's own chains, so fits are
///     statistically equivalent to, but not bit-identical with, HbpModel
///     (same caveat as fast_sweeps). Re-fitting the same shards with the
///     same options IS bit-reproducible.
struct StreamingHbpOptions {
  HierarchyConfig hierarchy;  ///< q0/c0/c/burn_in/samples/seed/num_chains
  GroupingScheme scheme = GroupingScheme::kMaterial;
  net::PipeCategory category = net::PipeCategory::kCriticalMain;
  /// Shards materialised concurrently during the streaming passes.
  int shard_window = 4;
};

struct StreamingHbpFit {
  /// Raw (un-densified) group keys seen across all shards, sorted
  /// ascending — the global label space. Dense group g is raw_keys[g].
  std::vector<int> raw_keys;
  /// Posterior mean of each group's rate q_g (pooled over chains).
  std::vector<double> group_rate_means;
  /// Posterior mean of the clamped rate actually used by the likelihood —
  /// what scoring plugs into the Beta prior mean.
  std::vector<double> group_tilted_means;
  double q0 = 0.0;  ///< resolved prior mean (empirical when unset)
  double c = 12.0;  ///< lower-level concentration used
  std::uint64_t total_pipes = 0;
  std::uint64_t total_k = 0;
  std::uint64_t total_n = 0;
};

/// Pass 1 + sampler. Streams every shard once.
Result<StreamingHbpFit> FitStreamingHbp(const data::ShardedDataset& shards,
                                        const StreamingHbpOptions& options);

/// Pass 2: streams every shard again, scoring each pipe as its posterior
/// mean yearly failure rate (linear in the group mean, so plugging the
/// pooled mean in is exactly the mean over draws), and writes one scores
/// CSV (`pipe_id,score`, %.10g — the `piperisk fit` artefact contract) in
/// shard order, matching the order a streaming reader walks pipes in.
Status ScoreStreamingHbp(const data::ShardedDataset& shards,
                         const StreamingHbpFit& fit,
                         const StreamingHbpOptions& options,
                         const std::string& out_path);

}  // namespace core
}  // namespace piperisk

#endif  // PIPERISK_CORE_STREAMING_HBP_H_
