#ifndef PIPERISK_CORE_HBP_H_
#define PIPERISK_CORE_HBP_H_

#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/heartbeat.h"
#include "core/model.h"
#include "core/suffstats.h"
#include "stats/rng.h"

namespace piperisk {
namespace core {

/// Fixed grouping schemes for the HBP baseline (Sect. 18.4.3: "pipes are
/// grouped based on material, diameter and laid year" per domain expert
/// suggestion). kSingle collapses the hierarchy to one group (a plain
/// beta–Bernoulli), which is a useful ablation.
enum class GroupingScheme : int {
  kMaterial = 0,
  kDiameterBand = 1,
  kLaidDecade = 2,
  kCoating = 3,
  kSoilCorrosiveness = 4,
  kSingle = 5,
};
std::string_view ToString(GroupingScheme scheme);

/// Computes the group label of each *pipe* (aligned with input.pipes) under
/// a fixed scheme. Labels are dense in [0, K). Soil grouping uses the
/// pipe's first segment (the HBP baseline is pipe-granular).
std::vector<int> AssignFixedPipeGroups(const ModelInput& input,
                                       GroupingScheme scheme);

/// The raw (un-densified) group key of pipe `i` under `scheme`. Unlike the
/// dense labels above (densified in first-seen order, so only meaningful
/// within one input), raw keys are stable across datasets — the streaming
/// fit uses them as the global label space so every shard agrees on group
/// identity.
int RawFixedPipeGroupKey(const ModelInput& input, size_t i,
                         GroupingScheme scheme);

/// Hyper-parameters shared by the HBP and DPMHBP samplers.
struct HierarchyConfig {
  double q0 = -1.0;  ///< prior mean of group rates; <= 0 -> empirical rate
  double c0 = 4.0;   ///< top-level concentration
  double c = 12.0;   ///< lower-level concentration c_k (shared)
  int burn_in = 60;
  int samples = 120;
  std::uint64_t seed = 42;
  /// Number of independent MCMC chains whose post-burn-in draws are pooled.
  /// Chain 0 reproduces the historical single-chain sampler bit-for-bit;
  /// extra chains get independent Rng::Fork() streams fixed up front, so
  /// results depend only on (seed, num_chains) — never on num_threads.
  int num_chains = 1;
  /// Worker threads for running chains (<= 0: use the hardware; always
  /// clamped to num_chains). Affects wall clock only, never the draws.
  int num_threads = 0;
  /// Sufficient-statistic deduplication + per-sweep likelihood caching in
  /// the samplers (see core/suffstats.h). The reference per-row sampler is
  /// kept behind `false` for A/B benchmarking and the bit-pinned legacy
  /// goldens; the deduplicated path differs from it only in floating-point
  /// summation order, so fits are statistically equivalent but not
  /// bit-identical.
  bool dedup_suffstats = true;
  bool use_covariates = true;  ///< multiplicative feature effects
  double ridge = 1.0;          ///< for the covariate Poisson regression
  double min_multiplier = 0.2;
  double max_multiplier = 5.0;
  /// Worker threads for partitioning work *inside* one sweep (parallel
  /// likelihood-column refreshes and Metropolis target evaluations; see
  /// core/sweep_parallel.h). <= 0 resolves to the hardware, 1 is the serial
  /// sweep. In the default deterministic mode draws are bit-identical at
  /// every setting — the RNG is consumed by a serial coordinator in
  /// canonical order and only pure target evaluations fan out.
  int sweep_threads = 1;
  /// Relaxed-ordering fast sweeps: CRP reassignment runs over row shards
  /// against start-of-sweep state with per-shard RNG sub-streams forked up
  /// front. Still deterministic for a fixed (seed, sweep_threads) pair, but
  /// NOT bit-identical to the serial sweep; gated by statistical-equivalence
  /// tests on ranking metrics. Requires dedup_suffstats.
  bool fast_sweeps = false;
  /// SIMD dispatch policy for the batched column kernels (bit-identical
  /// either way; exposed for benchmarking and triage).
  SimdMode simd = SimdMode::kAuto;
  /// Crash-safe snapshot/resume settings (see core/checkpoint.h). Ignored
  /// unless `checkpoint.every > 0`; persistence additionally needs a
  /// non-empty `checkpoint.dir`.
  CheckpointConfig checkpoint;
  /// Live progress file (see core/heartbeat.h). Observational only: never
  /// fingerprinted, never touches the chain RNG streams, so heartbeat-enabled
  /// fits stay bit-identical.
  HeartbeatConfig heartbeat;
  /// Warm-started sequential re-fits (eval/rolling --warm-start): when true,
  /// Fit snapshots the end-of-run sampler state of every chain so the next
  /// year's fit can start from it via SetWarmStart.
  bool capture_warm_state = false;
  /// Burn-in used when a warm state was injected (< 0: burn_in / 4, at
  /// least 1) — the chains start near the posterior, so most of the cold
  /// burn-in is unnecessary. Warm fits use a different effective burn-in and
  /// starting point, so they are statistically equivalent to cold fits, not
  /// bit-identical.
  int warm_burn_in = -1;
};

/// The hierarchical beta process baseline of Li et al. (2014) /
/// Sect. 18.3.1.3, exactly as the chapter positions it against the DPMHBP:
/// *pipe-level* failure modelling with a fixed expert grouping (Eq. 18.5):
///
///   q_k  ~ Beta(c0 q0, c0 (1 - q0))
///   pi_i ~ Beta(c q~_i, c (1 - q~_i)),  q~_i = clamp(q_{g(i)} m_i)
///   x_ij ~ Bernoulli(pi_i)              pipe i fails in year j
///
/// It "ignores the impact of the length attribute when estimating failure
/// probabilities" (Sect. 18.3.3), so the covariate multiplier m_i is fitted
/// WITHOUT the length feature; modelling length is the DPMHBP's segment-
/// level innovation. pi_i is collapsed analytically; q_k is sampled by
/// adaptive random-walk Metropolis on the logit scale.
class HbpModel : public FailureModel {
 public:
  explicit HbpModel(GroupingScheme scheme,
                    HierarchyConfig config = HierarchyConfig());

  std::string name() const override;
  Status Fit(const ModelInput& input) override;
  Result<std::vector<double>> ScorePipes(const ModelInput& input) override;

  /// Posterior-mean yearly failure probability per pipe (after Fit).
  const std::vector<double>& pipe_probabilities() const { return pipe_probs_; }
  /// Posterior mean of each group's rate q_k (after Fit).
  const std::vector<double>& group_rates() const { return group_rate_means_; }
  /// Group label per pipe (after Fit).
  const std::vector<int>& group_labels() const { return labels_; }
  /// Trace of q_k posterior draws for diagnostics (group major; draws of
  /// all chains concatenated in chain order).
  const std::vector<std::vector<double>>& group_rate_traces() const {
    return traces_;
  }
  /// Per-chain q_k traces ([chain][group][draw]) for cross-chain R̂.
  const std::vector<std::vector<std::vector<double>>>&
  group_rate_chain_traces() const {
    return chain_traces_;
  }

  /// End-of-run sampler state per chain, captured when
  /// config.capture_warm_state is set (empty otherwise).
  const std::vector<ChainCheckpoint>& warm_state() const { return warm_out_; }
  /// Arms the next Fit to start every chain from `state` (one checkpoint
  /// per chain) and burn in for only warm_burn_in sweeps. A state whose
  /// shape disagrees with the input's grouping is ignored (cold fit).
  void SetWarmStart(std::vector<ChainCheckpoint> state);

 private:
  GroupingScheme scheme_;
  HierarchyConfig config_;
  bool fitted_ = false;
  std::vector<int> labels_;
  std::vector<double> pipe_probs_;
  std::vector<double> group_rate_means_;
  std::vector<std::vector<double>> traces_;
  std::vector<std::vector<std::vector<double>>> chain_traces_;
  bool has_warm_ = false;
  std::vector<ChainCheckpoint> warm_in_;
  std::vector<ChainCheckpoint> warm_out_;
};

/// Scores pipes from per-segment failure probabilities:
/// pi_i = 1 - prod_{l in pipe i} (1 - p_l)   (Eq. 18.7, last line).
/// Used by the segment-level DPMHBP.
std::vector<double> AggregatePipeRisk(const ModelInput& input,
                                      const std::vector<double>& segment_probs);

/// Fits the segment-level covariate multipliers used by the DPMHBP (exp of
/// a ridge Poisson regression linear predictor, normalised to mean 1).
/// Returns all ones when disabled or when the regression fails to fit.
std::vector<double> FitSegmentMultipliers(const ModelInput& input,
                                          const HierarchyConfig& config);

/// Per-pipe training counts for the pipe-level HBP: k = distinct training
/// years with >= 1 failure, n = observed training years. Aligned with
/// input.pipes.
struct PipeCounts {
  int k = 0;
  int n = 0;
};
std::vector<PipeCounts> BuildPipeCounts(const ModelInput& input);

}  // namespace core
}  // namespace piperisk

#endif  // PIPERISK_CORE_HBP_H_
