#include "core/dpmhbp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>

#include <span>

#include "common/strings.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/beta_bernoulli.h"
#include "core/chain_runner.h"
#include "core/crp.h"
#include "core/mcmc.h"
#include "core/suffstats.h"
#include "core/sweep_parallel.h"
#include "stats/distributions.h"

namespace piperisk {
namespace core {

namespace {

constexpr double kRateFloor = 1e-7;
constexpr double kRateCeil = 1.0 - 1e-7;

/// Chain 0's PCG stream; kept from the single-chain era so `num_chains = 1`
/// reproduces historical fits bit-for-bit.
constexpr std::uint64_t kDpmhbpStream = 0xD1EC1;

double TiltedMean(double q, double multiplier) {
  return std::clamp(q * multiplier, kRateFloor, kRateCeil);
}

/// Mutable sampler state for one occupied group.
struct Group {
  double q = 0.01;
  int count = 0;
  StepSizeAdapter adapter;
  /// Bumped whenever q changes (Metropolis accept, new table seated); keys
  /// the per-sweep likelihood cache so unchanged groups pay zero lgammas.
  std::uint64_t q_version = 0;
};

/// Everything one chain produces; each chain owns exactly one slot so the
/// parallel runner needs no locking.
struct ChainDraws {
  std::vector<double> prob_sum;  ///< per-segment sum of posterior-mean draws
  std::vector<int> k_trace;
  std::vector<double> alpha_trace;
  std::vector<double> qmax_trace;
  std::vector<int> labels;  ///< final sweep
  int collected = 0;
  /// Chain-confined telemetry tallies (plain increments on the chain's own
  /// slot; flushed into the process-wide registry after pooling).
  std::uint64_t proposals = 0;
  std::uint64_t accepts = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

}  // namespace

DpmhbpModel::DpmhbpModel(DpmhbpConfig config) : config_(config) {}

void DpmhbpModel::SetWarmStart(std::vector<ChainCheckpoint> state) {
  warm_in_ = std::move(state);
  has_warm_ = true;
}

double DpmhbpModel::mean_num_groups() const {
  if (k_trace_.empty()) return 0.0;
  double s = std::accumulate(k_trace_.begin(), k_trace_.end(), 0.0);
  return s / static_cast<double>(k_trace_.size());
}

Status DpmhbpModel::Fit(const ModelInput& input) {
  const size_t n = input.num_segments();
  if (n == 0) return Status::InvalidArgument("no segments to fit");
  const HierarchyConfig& h = config_.hierarchy;
  if (h.samples <= 0) return Status::InvalidArgument("samples must be > 0");
  if (h.num_chains < 1) {
    return Status::InvalidArgument("num_chains must be >= 1");
  }
  if (config_.auxiliary_components < 1) {
    return Status::InvalidArgument("need >= 1 auxiliary component");
  }
  if (h.fast_sweeps && !h.dedup_suffstats) {
    return Status::InvalidArgument("fast_sweeps requires dedup_suffstats");
  }
  SetSimdMode(h.simd);
  // Within-chain partitioning plan: `sweep_threads` resolves once per fit.
  // Deterministic mode is bit-identical at every setting (the serial path is
  // taken verbatim at 1); fast mode's shard layout depends on the resolved
  // count, which the fingerprint then covers.
  const int sweep_threads = ResolveSweepThreads(h.sweep_threads);
  const bool use_fast = h.fast_sweeps;
  // Scheduling width is capped at the machine's real capacity: deterministic
  // output never depends on how the work is scheduled, so oversubscribing a
  // small machine would buy pure queue overhead. Fast mode's SHARD count
  // stays `sweep_threads` regardless (the shard layout is part of the
  // sampler's definition and must reproduce across machines); only its
  // execution width is capped.
  const int exec_threads = std::min(
      sweep_threads, ThreadPool::Shared().num_workers() + 1);
  const bool parallel_sweep = use_fast || exec_threads > 1;

  // Warm start: usable only when the injected state matches this input's
  // chain count and segment count, with internally consistent group
  // sections — otherwise fall back to a cold fit. One-shot: the armed state
  // is consumed whether or not it was usable.
  std::vector<ChainCheckpoint> warm = std::move(warm_in_);
  bool use_warm =
      has_warm_ && warm.size() == static_cast<size_t>(h.num_chains);
  for (const ChainCheckpoint& c : warm) {
    if (!use_warm) break;
    use_warm = c.labels.size() == n &&
               c.group_count.size() == c.group_q.size() &&
               c.adapters.size() == c.group_q.size();
    for (int label : c.labels) {
      if (label < 0 || static_cast<size_t>(label) >= c.group_q.size()) {
        use_warm = false;
        break;
      }
    }
  }
  has_warm_ = false;
  warm_in_.clear();
  const int burn_in =
      use_warm ? (h.warm_burn_in >= 0 ? h.warm_burn_in
                                      : std::max(1, h.burn_in / 4))
               : h.burn_in;

  // Shared read-only inputs, computed once: the covariate multipliers and
  // the empirical top-level prior mean. Every chain sees identical values.
  const std::vector<double> multipliers = FitSegmentMultipliers(input, h);
  double total_k = 0.0, total_n = 0.0;
  for (const auto& c : input.segment_counts) {
    total_k += c.k;
    total_n += c.n;
  }
  double q0 = h.q0;
  if (q0 <= 0.0) {
    q0 = std::clamp((total_k + 0.5) / std::max(total_n, 1.0), 1e-6, 0.5);
  }
  const double a0 = h.c0 * q0;
  const double b0 = h.c0 * (1.0 - q0);

  // Deterministic initial partition: quantile bins of a crude per-segment
  // risk score, so chains start from a reasonable shared partition rather
  // than one giant table.
  const int init_k = std::max(1, config_.initial_groups);
  std::vector<int> init_labels(n, 0);
  {
    std::vector<double> crude(n);
    for (size_t row = 0; row < n; ++row) {
      const auto& c = input.segment_counts[row];
      crude[row] = multipliers[row] * (c.k + 0.3) / std::max(1, c.n);
    }
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return crude[a] < crude[b]; });
    for (size_t pos = 0; pos < n; ++pos) {
      init_labels[order[pos]] =
          static_cast<int>(pos * static_cast<size_t>(init_k) / n);
    }
  }
  std::vector<double> init_q(static_cast<size_t>(init_k));
  {
    std::vector<double> k_sum(init_q.size(), 0.0), n_sum(init_q.size(), 0.0);
    for (size_t row = 0; row < n; ++row) {
      k_sum[static_cast<size_t>(init_labels[row])] +=
          input.segment_counts[row].k;
      n_sum[static_cast<size_t>(init_labels[row])] +=
          input.segment_counts[row].n;
    }
    for (size_t g = 0; g < init_q.size(); ++g) {
      init_q[g] = std::clamp((k_sum[g] + h.c0 * q0) / (n_sum[g] + h.c0), 1e-6,
                             0.5);
    }
  }

  // Collapsed-in-rho log likelihood of segment row under group rate qg.
  // Pure function of read-only state: safe to share across chains.
  auto seg_loglik = [&](size_t row, double qg) {
    const auto& c = input.segment_counts[row];
    double mean = TiltedMean(qg, multipliers[row]);
    return LogMarginalNoBinom(c.k, c.n, h.c * mean, h.c * (1.0 - mean));
  };

  // Sufficient-statistic equivalence classes: segments with identical
  // (k, n, multiplier) triples share every collapsed likelihood value, so
  // the deduplicated hot path evaluates per class instead of per row.
  std::vector<double> seg_k(n), seg_n(n);
  for (size_t row = 0; row < n; ++row) {
    seg_k[row] = input.segment_counts[row].k;
    seg_n[row] = input.segment_counts[row].n;
  }
  const SuffStatClasses classes = SuffStatClasses::Build(
      seg_k, seg_n, multipliers, h.c, kRateFloor, kRateCeil);
  const size_t num_classes = classes.num_classes();
  // log(count) lookup table (counts never exceed n), so the CRP weight loop
  // does no transcendental work per occupied group.
  std::vector<double> log_count(n + 1, 0.0);
  for (size_t cnt = 1; cnt <= n; ++cnt) {
    log_count[cnt] = std::log(static_cast<double>(cnt));
  }

  const int num_chains = h.num_chains;
  std::vector<ChainDraws> draws(static_cast<size_t>(num_chains));

  // Mutable sampler state of one chain, kept apart from the accumulated
  // draws so the checkpoint runner can re-initialise or restore a chain
  // wholesale (retry after failure, resume after crash). The scratch vectors
  // are part of the state only for allocation reuse — their contents never
  // survive a sweep and are not checkpointed.
  struct ChainState {
    std::vector<Group> groups;
    double alpha = 0.0;
    GroupLikelihoodCache cache;
    std::vector<double> log_weights, sample_scratch, aux_q, hist;
    telemetry::Counter* sweep_counter = nullptr;
    // Within-chain partitioning scratch (allocation reuse only; nothing here
    // survives a sweep or is checkpointed).
    std::vector<SuffStatClasses::ColumnScratch> column_scratch;
    std::vector<size_t> stale;
    std::vector<size_t> prop_groups;
    std::vector<LogitProposal> props;
    std::vector<double> prop_ll;
    std::vector<double> current_ll;
    struct ShardScratch {
      std::vector<double> log_weights, sample_scratch, aux_q;
    };
    std::vector<ShardScratch> fast_scratch;
    std::vector<size_t> fast_choice;
    std::vector<double> fast_new_q;
    explicit ChainState(const SuffStatClasses* cls) : cache(cls) {}
  };
  std::vector<std::unique_ptr<ChainState>> states;
  states.reserve(static_cast<size_t>(num_chains));
  for (int c = 0; c < num_chains; ++c) {
    states.push_back(std::make_unique<ChainState>(&classes));
    states.back()->sweep_counter = ChainSweepCounter(c);
  }

  // Concentration resampling + draw collection, identical for both sampler
  // paths (steps 3 and 4 of a sweep).
  auto finish_sweep = [&](int iter, std::vector<Group>& groups, double* alpha,
                          ChainDraws* out, stats::Rng* rng) {
    // --- (3) Resample the DP concentration ------------------------------
    size_t occupied = 0;
    for (const Group& g : groups) occupied += g.count > 0 ? 1 : 0;
    if (config_.resample_alpha) {
      *alpha = ResampleCrpConcentration(*alpha, occupied, n,
                                        config_.alpha_prior_shape,
                                        config_.alpha_prior_rate, rng);
      *alpha = std::clamp(*alpha, 1e-3, 1e3);
    }

    // --- (4) Collect -----------------------------------------------------
    if (iter >= burn_in) {
      ++out->collected;
      out->k_trace.push_back(static_cast<int>(occupied));
      out->alpha_trace.push_back(*alpha);
      double qmax = 0.0;
      for (const Group& g : groups) {
        if (g.count > 0) qmax = std::max(qmax, g.q);
      }
      out->qmax_trace.push_back(qmax);
      for (size_t row = 0; row < n; ++row) {
        const auto& c = input.segment_counts[row];
        double mean = TiltedMean(
            groups[static_cast<size_t>(out->labels[row])].q,
            multipliers[row]);
        BetaParams prior{mean, h.c};
        out->prob_sum[row] += PosteriorMeanRate(prior, c.k, c.n);
      }
    }
  };

  // Builds a fresh chain: shared deterministic initial partition, empty
  // accumulators. Also the retry-from-scratch path, so it must reset
  // everything a previous attempt may have touched.
  auto init_chain = [&](int chain) {
    ChainState& s = *states[static_cast<size_t>(chain)];
    ChainDraws& out = draws[static_cast<size_t>(chain)];
    out = ChainDraws();
    out.prob_sum.assign(n, 0.0);
    if (use_warm) {
      // Sampler state only (partition, group rates, adapters, alpha);
      // counts are recomputed from the labels, and accumulators, cache and
      // the chain RNG stream start fresh for the new data.
      const ChainCheckpoint& w = warm[static_cast<size_t>(chain)];
      out.labels = w.labels;
      s.groups.assign(w.group_q.size(), Group());
      for (size_t g = 0; g < w.group_q.size(); ++g) {
        s.groups[g].q = w.group_q[g];
        s.groups[g].adapter.RestoreState(StepSizeAdapter::State{
            w.adapters[g].step, w.adapters[g].proposals,
            w.adapters[g].accepts});
      }
      for (size_t row = 0; row < n; ++row) {
        s.groups[static_cast<size_t>(out.labels[row])].count += 1;
      }
      s.alpha = std::clamp(w.alpha, 1e-3, 1e3);
    } else {
      out.labels = init_labels;
      s.groups.assign(init_q.size(), Group());
      for (size_t g = 0; g < s.groups.size(); ++g) s.groups[g].q = init_q[g];
      for (size_t row = 0; row < n; ++row) {
        s.groups[static_cast<size_t>(out.labels[row])].count += 1;
      }
      s.alpha = config_.alpha;
    }
    s.cache = GroupLikelihoodCache(&classes);
    s.aux_q.assign(static_cast<size_t>(config_.auxiliary_components), 0.0);
  };

  // --- Within-chain partitioning helpers (see core/sweep_parallel.h) ----

  // Refreshes every column in s.stale over the shared pool. Distinct groups
  // write disjoint slots; each block owns its own scratch, so the section is
  // race-free and the columns are bit-identical to serial refreshes.
  auto refresh_stale_columns = [&](ChainState& s) {
    if (s.stale.empty()) return;
    const int blocks = static_cast<int>(
        std::min(s.stale.size(), static_cast<size_t>(exec_threads)));
    if (s.column_scratch.size() < static_cast<size_t>(blocks)) {
      s.column_scratch.resize(static_cast<size_t>(blocks));
    }
    ThreadPool::Shared().ParallelFor(blocks, exec_threads, [&](int b) {
      auto [lo, hi] = BlockRange(s.stale.size(), blocks, b);
      for (size_t i = lo; i < hi; ++i) {
        const size_t g = s.stale[i];
        s.cache.RefreshSlot(g, s.groups[g].q_version, s.groups[g].q,
                            &s.column_scratch[static_cast<size_t>(b)]);
      }
    });
    SweepMetrics::Get().column_refreshes->Add(
        static_cast<std::int64_t>(s.stale.size()));
  };

  // Collects the occupied groups whose cached column is stale, then
  // refreshes them in parallel. Returns the number of occupied groups.
  auto prefetch_columns = [&](ChainState& s) {
    s.cache.EnsureSlots(s.groups.size());
    s.stale.clear();
    size_t occupied = 0;
    for (size_t g = 0; g < s.groups.size(); ++g) {
      if (s.groups[g].count == 0) continue;
      ++occupied;
      if (s.cache.NeedsRefresh(g, s.groups[g].q_version)) s.stale.push_back(g);
    }
    refresh_stale_columns(s);
    return occupied;
  };

  // --- (1) CRP reassignment of every segment (Neal's algorithm 8) ---
  // Weight of an occupied group = log(count) + cached class loglik; the
  // cache column is refreshed only when the group's rate version moved.
  // Serial reference pass: also runs unchanged under deterministic
  // parallelism (only the column refreshes are hoisted out in front).
  auto crp_pass_serial = [&](ChainState& s, ChainDraws& out, stats::Rng* rng) {
    std::vector<Group>& groups = s.groups;
    for (size_t row = 0; row < n; ++row) {
      size_t old_g = static_cast<size_t>(out.labels[row]);
      groups[old_g].count -= 1;

      // Fresh prior draws for the auxiliary (empty) tables. If the segment
      // just vacated a table, reuse that table's rate as the first
      // auxiliary (Neal's trick keeps the chain valid and helps mixing).
      for (int m = 0; m < config_.auxiliary_components; ++m) {
        s.aux_q[static_cast<size_t>(m)] =
            std::clamp(stats::SampleBeta(rng, a0, b0), kRateFloor, 0.999);
      }
      if (groups[old_g].count == 0) s.aux_q[0] = groups[old_g].q;

      const size_t cls = classes.row_class(row);
      s.log_weights.clear();
      for (size_t g = 0; g < groups.size(); ++g) {
        if (groups[g].count == 0) {
          s.log_weights.push_back(-std::numeric_limits<double>::infinity());
          continue;
        }
        const std::vector<double>& col =
            s.cache.Column(g, groups[g].q_version, groups[g].q);
        s.log_weights.push_back(
            log_count[static_cast<size_t>(groups[g].count)] + col[cls]);
      }
      double log_alpha_share =
          std::log(s.alpha / config_.auxiliary_components);
      for (int m = 0; m < config_.auxiliary_components; ++m) {
        s.log_weights.push_back(
            log_alpha_share +
            classes.ClassLogLik(cls, s.aux_q[static_cast<size_t>(m)]));
      }

      size_t choice = stats::SampleDiscreteLog(
          rng, std::span<const double>(s.log_weights), &s.sample_scratch);
      if (choice < groups.size()) {
        out.labels[row] = static_cast<int>(choice);
        groups[choice].count += 1;
      } else {
        // Seat at a new table carrying the chosen auxiliary rate. Reuse
        // the vacated slot when available to limit growth.
        double new_q = s.aux_q[choice - groups.size()];
        size_t slot;
        if (groups[old_g].count == 0) {
          slot = old_g;
        } else {
          // Find any empty slot, else append.
          slot = groups.size();
          for (size_t g = 0; g < groups.size(); ++g) {
            if (groups[g].count == 0) {
              slot = g;
              break;
            }
          }
          if (slot == groups.size()) groups.emplace_back();
        }
        groups[slot].q = new_q;
        groups[slot].count = 1;
        groups[slot].adapter = StepSizeAdapter();
        ++groups[slot].q_version;
        out.labels[row] = static_cast<int>(slot);
      }
    }
  };

  // Fast-mode CRP: rows are sharded over contiguous blocks, every shard
  // samples against the frozen start-of-sweep groups (columns prefetched,
  // counts fixed, own-table count reduced by one) with its own pre-forked
  // RNG sub-stream, and the assignments are applied serially in row order
  // afterwards. Deterministic for a fixed (seed, sweep_threads) but not
  // bit-identical to the serial pass — the statistical-equivalence tests
  // gate it.
  auto crp_pass_fast = [&](ChainState& s, ChainDraws& out, stats::Rng* rng) {
    std::vector<Group>& groups = s.groups;
    prefetch_columns(s);
    s.cache.TallyLookups(0, s.stale.size());
    const size_t num_groups = groups.size();
    const int shards = static_cast<int>(
        std::min(static_cast<size_t>(sweep_threads), n));
    std::vector<stats::Rng> shard_rngs = ForkShardRngs(rng, shards);
    SweepMetrics::Get().fast_shards->Add(shards);
    if (s.fast_scratch.size() < static_cast<size_t>(shards)) {
      s.fast_scratch.resize(static_cast<size_t>(shards));
    }
    s.fast_choice.resize(n);
    s.fast_new_q.resize(n);
    const double log_alpha_share =
        std::log(s.alpha / config_.auxiliary_components);
    ThreadPool::Shared().ParallelFor(shards, exec_threads, [&](int b) {
      ChainState::ShardScratch& sc = s.fast_scratch[static_cast<size_t>(b)];
      stats::Rng& srng = shard_rngs[static_cast<size_t>(b)];
      sc.aux_q.assign(static_cast<size_t>(config_.auxiliary_components), 0.0);
      auto [lo, hi] = BlockRange(n, shards, b);
      for (size_t row = lo; row < hi; ++row) {
        const size_t old_g = static_cast<size_t>(out.labels[row]);
        for (int m = 0; m < config_.auxiliary_components; ++m) {
          sc.aux_q[static_cast<size_t>(m)] =
              std::clamp(stats::SampleBeta(&srng, a0, b0), kRateFloor, 0.999);
        }
        if (groups[old_g].count == 1) sc.aux_q[0] = groups[old_g].q;
        const size_t cls = classes.row_class(row);
        sc.log_weights.clear();
        for (size_t g = 0; g < num_groups; ++g) {
          const int cnt = groups[g].count - (g == old_g ? 1 : 0);
          if (cnt <= 0) {
            sc.log_weights.push_back(
                -std::numeric_limits<double>::infinity());
            continue;
          }
          sc.log_weights.push_back(log_count[static_cast<size_t>(cnt)] +
                                   s.cache.PeekColumn(g)[cls]);
        }
        for (int m = 0; m < config_.auxiliary_components; ++m) {
          sc.log_weights.push_back(
              log_alpha_share +
              classes.ClassLogLik(cls, sc.aux_q[static_cast<size_t>(m)]));
        }
        s.fast_choice[row] = stats::SampleDiscreteLog(
            &srng, std::span<const double>(sc.log_weights),
            &sc.sample_scratch);
        s.fast_new_q[row] = s.fast_choice[row] >= num_groups
                                ? sc.aux_q[s.fast_choice[row] - num_groups]
                                : 0.0;
      }
    });
    // Serial apply in row order against live counts. A chosen table may
    // have emptied (or been reseated with a new rate) by the time a row is
    // applied — that reordering noise is exactly what fast mode trades for
    // shard parallelism.
    for (size_t row = 0; row < n; ++row) {
      const size_t old_g = static_cast<size_t>(out.labels[row]);
      groups[old_g].count -= 1;
      const size_t choice = s.fast_choice[row];
      if (choice < num_groups) {
        out.labels[row] = static_cast<int>(choice);
        groups[choice].count += 1;
      } else {
        const double new_q = s.fast_new_q[row];
        size_t slot;
        if (groups[old_g].count == 0) {
          slot = old_g;
        } else {
          slot = groups.size();
          for (size_t g = 0; g < groups.size(); ++g) {
            if (groups[g].count == 0) {
              slot = g;
              break;
            }
          }
          if (slot == groups.size()) groups.emplace_back();
        }
        groups[slot].q = new_q;
        groups[slot].count = 1;
        groups[slot].adapter = StepSizeAdapter();
        ++groups[slot].q_version;
        out.labels[row] = static_cast<int>(slot);
      }
    }
  };

  // --- (2) Metropolis update of each occupied group's rate ----------
  // A group's member sum collapses to sum_cls hist[cls] * loglik(cls),
  // and the current log target is reassembled from the cache column, so
  // each step evaluates the lgamma ladder only at the proposal.
  auto build_hist = [&](ChainState& s, ChainDraws& out) {
    s.hist.assign(s.groups.size() * num_classes, 0.0);
    for (size_t row = 0; row < n; ++row) {
      s.hist[static_cast<size_t>(out.labels[row]) * num_classes +
             classes.row_class(row)] += 1.0;
    }
  };

  auto metropolis_serial = [&](ChainState& s, ChainDraws& out, int iter,
                               stats::Rng* rng) {
    std::vector<Group>& groups = s.groups;
    for (size_t g = 0; g < groups.size(); ++g) {
      if (groups[g].count == 0) continue;
      const double* hist_g = s.hist.data() + g * num_classes;
      const std::vector<double>& col =
          s.cache.Column(g, groups[g].q_version, groups[g].q);
      double current_ll = stats::LogPdfBeta(groups[g].q, a0, b0);
      for (size_t cls = 0; cls < num_classes; ++cls) {
        if (hist_g[cls] != 0.0) current_ll += hist_g[cls] * col[cls];
      }
      auto log_target = [&](double qg) {
        double ll = stats::LogPdfBeta(qg, a0, b0);
        for (size_t cls = 0; cls < num_classes; ++cls) {
          if (hist_g[cls] != 0.0) {
            ll += hist_g[cls] * classes.ClassLogLik(cls, qg);
          }
        }
        return ll;
      };
      bool accepted = false;
      groups[g].q = MetropolisLogitStep(groups[g].q, &current_ll, log_target,
                                        groups[g].adapter.step(), rng,
                                        &accepted);
      ++out.proposals;
      out.accepts += accepted ? 1 : 0;
      if (accepted) ++groups[g].q_version;
      if (iter < burn_in) groups[g].adapter.Update(accepted);
    }
  };

  // Parallel Metropolis, bit-identical to metropolis_serial: the serial
  // coordinator pre-draws every proposal in canonical group order (exactly
  // the fused kernel's RNG consumption), workers evaluate the pure log
  // targets over the pool, and the coordinator merges accept decisions back
  // in group order with the identical floating-point association.
  auto metropolis_parallel = [&](ChainState& s, ChainDraws& out, int iter,
                                 stats::Rng* rng) {
    std::vector<Group>& groups = s.groups;
    const size_t occupied = prefetch_columns(s);
    // Serial phase 2 does one cache lookup per occupied group: the stale
    // ones miss, the rest hit. Reproduce that tally exactly.
    s.cache.TallyLookups(occupied - s.stale.size(), s.stale.size());
    s.prop_groups.clear();
    s.props.clear();
    for (size_t g = 0; g < groups.size(); ++g) {
      if (groups[g].count == 0) continue;
      s.prop_groups.push_back(g);
      s.props.push_back(
          DrawLogitProposal(groups[g].q, groups[g].adapter.step(), rng));
    }
    SweepMetrics::Get().predrawn_proposals->Add(
        static_cast<std::int64_t>(s.props.size()));
    const size_t work = s.prop_groups.size();
    s.prop_ll.assign(work, 0.0);
    s.current_ll.assign(groups.size(), 0.0);
    const int blocks = static_cast<int>(
        std::min(work, static_cast<size_t>(exec_threads)));
    ThreadPool::Shared().ParallelFor(blocks, exec_threads, [&](int b) {
      auto [lo, hi] = BlockRange(work, blocks, b);
      for (size_t i = lo; i < hi; ++i) {
        const size_t g = s.prop_groups[i];
        const double* hist_g = s.hist.data() + g * num_classes;
        const std::vector<double>& col = s.cache.PeekColumn(g);
        double cur = stats::LogPdfBeta(groups[g].q, a0, b0);
        for (size_t cls = 0; cls < num_classes; ++cls) {
          if (hist_g[cls] != 0.0) cur += hist_g[cls] * col[cls];
        }
        s.current_ll[g] = cur;
        if (s.props[i].in_support) {
          const double qp = s.props[i].proposal;
          double ll = stats::LogPdfBeta(qp, a0, b0);
          for (size_t cls = 0; cls < num_classes; ++cls) {
            if (hist_g[cls] != 0.0) {
              ll += hist_g[cls] * classes.ClassLogLik(cls, qp);
            }
          }
          s.prop_ll[i] = ll;
        }
      }
    });
    for (size_t i = 0; i < work; ++i) {
      const size_t g = s.prop_groups[i];
      const bool accepted = AcceptLogitProposal(
          s.props[i], groups[g].q, s.prop_ll[i], &s.current_ll[g]);
      if (accepted) {
        groups[g].q = s.props[i].proposal;
        ++groups[g].q_version;
      }
      ++out.proposals;
      out.accepts += accepted ? 1 : 0;
      if (iter < burn_in) groups[g].adapter.Update(accepted);
    }
  };

  // One sweep over the deduplicated classes with versioned per-group
  // likelihood caching and allocation-free inner loops; writes only to its
  // chain's slots. Deterministic partitioning (sweep_threads > 1) hoists
  // column refreshes in front of the serial CRP pass and splits the
  // Metropolis targets; fast mode additionally shards the CRP pass itself.
  auto sweep_dedup = [&](int chain, int iter, stats::Rng* rng) {
    ChainState& s = *states[static_cast<size_t>(chain)];
    ChainDraws& out = draws[static_cast<size_t>(chain)];
    telemetry::ScopedSpan sweep_span("dpmhbp.sweep");
    if (use_fast) {
      SweepMetrics::Get().parallel_sweeps->Increment();
      crp_pass_fast(s, out, rng);
      build_hist(s, out);
      metropolis_parallel(s, out, iter, rng);
    } else if (parallel_sweep) {
      SweepMetrics::Get().parallel_sweeps->Increment();
      // Refresh the stale columns in parallel up front; the serial CRP pass
      // then runs unchanged against warm columns. Tallied as misses here
      // (the row loop's first lookups then count as hits).
      prefetch_columns(s);
      s.cache.TallyLookups(0, s.stale.size());
      crp_pass_serial(s, out, rng);
      build_hist(s, out);
      metropolis_parallel(s, out, iter, rng);
    } else {
      SweepMetrics::Get().serial_sweeps->Increment();
      crp_pass_serial(s, out, rng);
      build_hist(s, out);
      metropolis_serial(s, out, iter, rng);
    }
    finish_sweep(iter, s.groups, &s.alpha, &out, rng);
    s.sweep_counter->Increment();
  };

  // One sweep of the reference per-row sampler, kept bit-identical to the
  // pre-dedup implementation (legacy goldens pin it) and as the A/B
  // baseline for the dedup benchmarks.
  auto sweep_naive = [&](int chain, int iter, stats::Rng* rng) {
    ChainState& s = *states[static_cast<size_t>(chain)];
    ChainDraws& out = draws[static_cast<size_t>(chain)];
    std::vector<Group>& groups = s.groups;
    telemetry::ScopedSpan sweep_span("dpmhbp.sweep");
    // --- (1) CRP reassignment of every segment (Neal's algorithm 8) ---
    for (size_t row = 0; row < n; ++row) {
      size_t old_g = static_cast<size_t>(out.labels[row]);
      groups[old_g].count -= 1;

      // Fresh prior draws for the auxiliary (empty) tables. If the segment
      // just vacated a table, reuse that table's rate as the first
      // auxiliary (Neal's trick keeps the chain valid and helps mixing).
      for (int m = 0; m < config_.auxiliary_components; ++m) {
        s.aux_q[static_cast<size_t>(m)] =
            std::clamp(stats::SampleBeta(rng, a0, b0), kRateFloor, 0.999);
      }
      if (groups[old_g].count == 0) s.aux_q[0] = groups[old_g].q;

      s.log_weights.clear();
      for (size_t g = 0; g < groups.size(); ++g) {
        if (groups[g].count == 0) {
          s.log_weights.push_back(-std::numeric_limits<double>::infinity());
          continue;
        }
        s.log_weights.push_back(
            std::log(static_cast<double>(groups[g].count)) +
            seg_loglik(row, groups[g].q));
      }
      double log_alpha_share =
          std::log(s.alpha / config_.auxiliary_components);
      for (int m = 0; m < config_.auxiliary_components; ++m) {
        s.log_weights.push_back(
            log_alpha_share +
            seg_loglik(row, s.aux_q[static_cast<size_t>(m)]));
      }

      size_t choice = stats::SampleDiscreteLog(rng, s.log_weights);
      if (choice < groups.size()) {
        out.labels[row] = static_cast<int>(choice);
        groups[choice].count += 1;
      } else {
        // Seat at a new table carrying the chosen auxiliary rate. Reuse
        // the vacated slot when available to limit growth.
        double new_q = s.aux_q[choice - groups.size()];
        size_t slot;
        if (groups[old_g].count == 0) {
          slot = old_g;
        } else {
          // Find any empty slot, else append.
          slot = groups.size();
          for (size_t g = 0; g < groups.size(); ++g) {
            if (groups[g].count == 0) {
              slot = g;
              break;
            }
          }
          if (slot == groups.size()) groups.emplace_back();
        }
        groups[slot].q = new_q;
        groups[slot].count = 1;
        groups[slot].adapter = StepSizeAdapter();
        out.labels[row] = static_cast<int>(slot);
      }
    }

    // --- (2) Metropolis update of each occupied group's rate ----------
    // Precompute member lists once per sweep.
    std::vector<std::vector<size_t>> members(groups.size());
    for (size_t row = 0; row < n; ++row) {
      members[static_cast<size_t>(out.labels[row])].push_back(row);
    }
    for (size_t g = 0; g < groups.size(); ++g) {
      if (groups[g].count == 0) continue;
      auto log_target = [&](double qg) {
        double ll = stats::LogPdfBeta(qg, a0, b0);
        for (size_t row : members[g]) ll += seg_loglik(row, qg);
        return ll;
      };
      bool accepted = false;
      groups[g].q = MetropolisLogitStep(groups[g].q, log_target,
                                        groups[g].adapter.step(), rng,
                                        &accepted);
      ++out.proposals;
      out.accepts += accepted ? 1 : 0;
      if (iter < burn_in) groups[g].adapter.Update(accepted);
    }

    finish_sweep(iter, groups, &s.alpha, &out, rng);
    s.sweep_counter->Increment();
  };

  // Snapshot / restore of one chain for the checkpoint runner. The
  // likelihood cache is deliberately NOT captured: it is a pure performance
  // structure whose recomputed columns are bit-identical, so a restored
  // chain starts with a cold cache and still replays the exact draws.
  auto capture_chain = [&](int chain, ChainCheckpoint* ckpt) {
    const ChainState& s = *states[static_cast<size_t>(chain)];
    const ChainDraws& out = draws[static_cast<size_t>(chain)];
    ckpt->alpha = s.alpha;
    ckpt->labels = out.labels;
    ckpt->group_q.reserve(s.groups.size());
    ckpt->group_count.reserve(s.groups.size());
    ckpt->adapters.reserve(s.groups.size());
    for (const Group& g : s.groups) {
      ckpt->group_q.push_back(g.q);
      ckpt->group_count.push_back(g.count);
      const StepSizeAdapter::State a = g.adapter.SaveState();
      ckpt->adapters.push_back(
          AdapterCheckpoint{a.step, a.proposals, a.accepts});
    }
    ckpt->prob_sum = out.prob_sum;
    ckpt->k_trace = out.k_trace;
    ckpt->alpha_trace = out.alpha_trace;
    ckpt->qmax_trace = out.qmax_trace;
    ckpt->collected = out.collected;
    ckpt->proposals = out.proposals;
    ckpt->accepts = out.accepts;
  };

  auto restore_chain = [&](int chain, const ChainCheckpoint& ckpt) -> Status {
    if (ckpt.labels.size() != n || ckpt.prob_sum.size() != n) {
      return Status::FailedPrecondition(StrFormat(
          "checkpoint for chain %d covers %zu segments, current data has %zu",
          chain, ckpt.labels.size(), n));
    }
    const size_t num_slots = ckpt.group_q.size();
    if (ckpt.group_count.size() != num_slots ||
        ckpt.adapters.size() != num_slots) {
      return Status::FailedPrecondition(
          "checkpoint group sections disagree in length");
    }
    for (int label : ckpt.labels) {
      if (label < 0 || static_cast<size_t>(label) >= num_slots) {
        return Status::FailedPrecondition(
            "checkpoint label refers to a group slot it does not contain");
      }
    }
    ChainState& s = *states[static_cast<size_t>(chain)];
    ChainDraws& out = draws[static_cast<size_t>(chain)];
    out = ChainDraws();
    out.prob_sum = ckpt.prob_sum;
    out.labels = ckpt.labels;
    out.k_trace = ckpt.k_trace;
    out.alpha_trace = ckpt.alpha_trace;
    out.qmax_trace = ckpt.qmax_trace;
    out.collected = static_cast<int>(ckpt.collected);
    out.proposals = ckpt.proposals;
    out.accepts = ckpt.accepts;
    s.groups.assign(num_slots, Group());
    for (size_t g = 0; g < num_slots; ++g) {
      s.groups[g].q = ckpt.group_q[g];
      s.groups[g].count = static_cast<int>(ckpt.group_count[g]);
      s.groups[g].adapter.RestoreState(StepSizeAdapter::State{
          ckpt.adapters[g].step, ckpt.adapters[g].proposals,
          ckpt.adapters[g].accepts});
    }
    s.alpha = ckpt.alpha;
    s.cache = GroupLikelihoodCache(&classes);
    s.aux_q.assign(static_cast<size_t>(config_.auxiliary_components), 0.0);
    return Status::OK();
  };

  // Every config field (and data summary) that can influence the draw
  // sequence goes into the fingerprint; resuming against a snapshot from a
  // different configuration is rejected by the runner.
  Fingerprint fp;
  fp.Add("dpmhbp")
      .Add(static_cast<std::uint64_t>(n))
      .Add(h.seed)
      .Add(h.num_chains)
      .Add(burn_in)
      .Add(use_warm)
      .Add(h.samples)
      .Add(q0)
      .Add(h.c0)
      .Add(h.c)
      .Add(h.dedup_suffstats)
      .Add(h.use_covariates)
      .Add(h.ridge)
      .Add(h.min_multiplier)
      .Add(h.max_multiplier)
      .Add(config_.alpha)
      .Add(config_.resample_alpha)
      .Add(config_.alpha_prior_shape)
      .Add(config_.alpha_prior_rate)
      .Add(config_.auxiliary_components)
      .Add(config_.initial_groups)
      .Add(total_k)
      .Add(total_n)
      .Add(h.fast_sweeps);
  // Deterministic sweeps are bit-identical at every sweep_threads setting,
  // so the thread count must NOT poison resume compatibility; fast-mode
  // shard layouts DO depend on it, so there it is fingerprinted.
  if (h.fast_sweeps) fp.Add(sweep_threads);

  ChainRunnerOptions run_options;
  run_options.num_chains = num_chains;
  run_options.num_threads = h.num_threads;
  run_options.seed = h.seed;
  run_options.stream = kDpmhbpStream;
  run_options.total_sweeps = burn_in + h.samples;
  run_options.fingerprint = fp.digest();
  run_options.checkpoint = h.checkpoint;
  if (run_options.checkpoint.tag.empty()) {
    run_options.checkpoint.tag = "dpmhbp";
  }
  run_options.heartbeat = h.heartbeat;
  if (run_options.heartbeat.label.empty()) {
    run_options.heartbeat.label = "fit dpmhbp";
  }

  ChainProgram program;
  program.init = init_chain;
  program.sweep = [&](int chain, int iter, stats::Rng* rng) {
    if (h.dedup_suffstats) {
      sweep_dedup(chain, iter, rng);
    } else {
      sweep_naive(chain, iter, rng);
    }
  };
  program.capture = capture_chain;
  program.restore = restore_chain;
  // Heartbeat feeds (post-sweep observers; no RNG, no chain-state writes):
  // q_max is the label-switching-invariant live-R̂ trace, matching
  // DiagnoseDpmhbp's q_max diagnostic.
  program.monitor = [&](int chain, int iter, double* value) {
    if (iter < burn_in) return false;
    const std::vector<double>& trace =
        draws[static_cast<size_t>(chain)].qmax_trace;
    if (trace.empty()) return false;
    *value = trace.back();
    return true;
  };
  program.acceptance = [&](int chain, std::int64_t* proposals,
                           std::int64_t* accepted) {
    const ChainDraws& d = draws[static_cast<size_t>(chain)];
    *proposals = static_cast<std::int64_t>(d.proposals);
    *accepted = static_cast<std::int64_t>(d.accepts);
  };

  PIPERISK_ASSIGN_OR_RETURN(const ChainRunReport report,
                            RunCheckpointedChains(run_options, program));
  std::vector<char> chain_failed(static_cast<size_t>(num_chains), 0);
  for (int c : report.failed_chains) {
    chain_failed[static_cast<size_t>(c)] = 1;
  }
  for (int c = 0; c < num_chains; ++c) {
    if (chain_failed[static_cast<size_t>(c)]) continue;
    draws[static_cast<size_t>(c)].cache_hits =
        states[static_cast<size_t>(c)]->cache.hits();
    draws[static_cast<size_t>(c)].cache_misses =
        states[static_cast<size_t>(c)]->cache.misses();
  }

  // Snapshot the end-of-run sampler state for warm-started sequential
  // re-fits (next year's Fit consumes it via SetWarmStart).
  warm_out_.clear();
  if (h.capture_warm_state) {
    warm_out_.resize(static_cast<size_t>(num_chains));
    for (int c = 0; c < num_chains; ++c) {
      capture_chain(c, &warm_out_[static_cast<size_t>(c)]);
    }
  }

  // --- pool the surviving chains (deterministic chain order, so pooled
  // results are independent of the thread count; chains that exhausted their
  // retries are excluded wholesale) ----------------------------------------
  segment_probs_.assign(n, 0.0);
  k_trace_.clear();
  alpha_trace_.clear();
  k_chain_traces_.clear();
  alpha_chain_traces_.clear();
  qmax_chain_traces_.clear();
  long long collected = 0;
  for (int c = 0; c < num_chains; ++c) {
    if (chain_failed[static_cast<size_t>(c)]) continue;
    const ChainDraws& d = draws[static_cast<size_t>(c)];
    for (size_t row = 0; row < n; ++row) segment_probs_[row] += d.prob_sum[row];
    collected += d.collected;
    k_trace_.insert(k_trace_.end(), d.k_trace.begin(), d.k_trace.end());
    alpha_trace_.insert(alpha_trace_.end(), d.alpha_trace.begin(),
                        d.alpha_trace.end());
    k_chain_traces_.push_back(d.k_trace);
    alpha_chain_traces_.push_back(d.alpha_trace);
    qmax_chain_traces_.push_back(d.qmax_trace);
  }
  if (collected == 0) {
    return Status::Internal("no post-burn-in draws were collected");
  }
  for (double& p : segment_probs_) p /= static_cast<double>(collected);

  // Flush the chain-confined tallies into the process-wide registry and
  // derive the headline run-health gauges the metrics export reports.
  {
    std::uint64_t proposals = 0, accepts = 0, hits = 0, misses = 0;
    for (int c = 0; c < num_chains; ++c) {
      if (chain_failed[static_cast<size_t>(c)]) continue;
      const ChainDraws& d = draws[static_cast<size_t>(c)];
      proposals += d.proposals;
      accepts += d.accepts;
      hits += d.cache_hits;
      misses += d.cache_misses;
    }
    auto& registry = telemetry::Registry::Global();
    registry.GetCounter("mcmc.likelihood_cache.hits")
        ->Add(static_cast<std::int64_t>(hits));
    registry.GetCounter("mcmc.likelihood_cache.misses")
        ->Add(static_cast<std::int64_t>(misses));
    registry.GetCounter("mcmc.draws_collected")->Add(collected);
    registry.GetGauge("mcmc.acceptance_rate")
        ->Set(proposals > 0
                  ? static_cast<double>(accepts) / static_cast<double>(proposals)
                  : 0.0);
    registry.GetGauge("mcmc.cache_hit_ratio")
        ->Set(hits + misses > 0
                  ? static_cast<double>(hits) / static_cast<double>(hits + misses)
                  : 0.0);
    registry.GetGauge("mcmc.crp.mean_groups")->Set(mean_num_groups());
    registry.GetGauge("mcmc.crp.final_groups")
        ->Set(k_trace_.empty() ? 0.0
                               : static_cast<double>(k_trace_.back()));
  }

  // Densify the first surviving chain's final labels for external consumers.
  labels_.clear();
  for (int c = 0; c < num_chains; ++c) {
    if (!chain_failed[static_cast<size_t>(c)]) {
      labels_ = draws[static_cast<size_t>(c)].labels;
      break;
    }
  }
  {
    int max_label = 0;
    for (int g : labels_) max_label = std::max(max_label, g);
    std::vector<int> remap(static_cast<size_t>(max_label) + 1, -1);
    int next = 0;
    for (size_t row = 0; row < n; ++row) {
      int g = labels_[row];
      if (remap[static_cast<size_t>(g)] < 0) {
        remap[static_cast<size_t>(g)] = next++;
      }
      labels_[row] = remap[static_cast<size_t>(g)];
    }
  }
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> DpmhbpModel::ScorePipes(const ModelInput& input) {
  return ScorePipes(input, ScoreOptions());
}

Result<std::vector<double>> DpmhbpModel::ScorePipes(const ModelInput& input,
                                                    const ScoreOptions& options) {
  if (!fitted_) return Status::FailedPrecondition("DpmhbpModel not fitted");
  if (input.num_segments() != segment_probs_.size()) {
    return Status::InvalidArgument("input does not match fitted state");
  }
  if (input.segment_index.num_pipes() == input.num_pipes()) {
    return AggregateSegmentRisk(input.segment_index, segment_probs_, options);
  }
  return AggregatePipeRisk(input, segment_probs_);
}

}  // namespace core
}  // namespace piperisk
