#include "core/dpmhbp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include <span>

#include "common/strings.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "core/beta_bernoulli.h"
#include "core/chain_runner.h"
#include "core/crp.h"
#include "core/mcmc.h"
#include "core/suffstats.h"
#include "stats/distributions.h"

namespace piperisk {
namespace core {

namespace {

constexpr double kRateFloor = 1e-7;
constexpr double kRateCeil = 1.0 - 1e-7;

/// Chain 0's PCG stream; kept from the single-chain era so `num_chains = 1`
/// reproduces historical fits bit-for-bit.
constexpr std::uint64_t kDpmhbpStream = 0xD1EC1;

double TiltedMean(double q, double multiplier) {
  return std::clamp(q * multiplier, kRateFloor, kRateCeil);
}

/// Mutable sampler state for one occupied group.
struct Group {
  double q = 0.01;
  int count = 0;
  StepSizeAdapter adapter;
  /// Bumped whenever q changes (Metropolis accept, new table seated); keys
  /// the per-sweep likelihood cache so unchanged groups pay zero lgammas.
  std::uint64_t q_version = 0;
};

/// Everything one chain produces; each chain owns exactly one slot so the
/// parallel runner needs no locking.
struct ChainDraws {
  std::vector<double> prob_sum;  ///< per-segment sum of posterior-mean draws
  std::vector<int> k_trace;
  std::vector<double> alpha_trace;
  std::vector<double> qmax_trace;
  std::vector<int> labels;  ///< final sweep
  int collected = 0;
  /// Chain-confined telemetry tallies (plain increments on the chain's own
  /// slot; flushed into the process-wide registry after pooling).
  std::uint64_t proposals = 0;
  std::uint64_t accepts = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

}  // namespace

DpmhbpModel::DpmhbpModel(DpmhbpConfig config) : config_(config) {}

double DpmhbpModel::mean_num_groups() const {
  if (k_trace_.empty()) return 0.0;
  double s = std::accumulate(k_trace_.begin(), k_trace_.end(), 0.0);
  return s / static_cast<double>(k_trace_.size());
}

Status DpmhbpModel::Fit(const ModelInput& input) {
  const size_t n = input.num_segments();
  if (n == 0) return Status::InvalidArgument("no segments to fit");
  const HierarchyConfig& h = config_.hierarchy;
  if (h.samples <= 0) return Status::InvalidArgument("samples must be > 0");
  if (h.num_chains < 1) {
    return Status::InvalidArgument("num_chains must be >= 1");
  }
  if (config_.auxiliary_components < 1) {
    return Status::InvalidArgument("need >= 1 auxiliary component");
  }

  // Shared read-only inputs, computed once: the covariate multipliers and
  // the empirical top-level prior mean. Every chain sees identical values.
  const std::vector<double> multipliers = FitSegmentMultipliers(input, h);
  double total_k = 0.0, total_n = 0.0;
  for (const auto& c : input.segment_counts) {
    total_k += c.k;
    total_n += c.n;
  }
  double q0 = h.q0;
  if (q0 <= 0.0) {
    q0 = std::clamp((total_k + 0.5) / std::max(total_n, 1.0), 1e-6, 0.5);
  }
  const double a0 = h.c0 * q0;
  const double b0 = h.c0 * (1.0 - q0);

  // Deterministic initial partition: quantile bins of a crude per-segment
  // risk score, so chains start from a reasonable shared partition rather
  // than one giant table.
  const int init_k = std::max(1, config_.initial_groups);
  std::vector<int> init_labels(n, 0);
  {
    std::vector<double> crude(n);
    for (size_t row = 0; row < n; ++row) {
      const auto& c = input.segment_counts[row];
      crude[row] = multipliers[row] * (c.k + 0.3) / std::max(1, c.n);
    }
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return crude[a] < crude[b]; });
    for (size_t pos = 0; pos < n; ++pos) {
      init_labels[order[pos]] =
          static_cast<int>(pos * static_cast<size_t>(init_k) / n);
    }
  }
  std::vector<double> init_q(static_cast<size_t>(init_k));
  {
    std::vector<double> k_sum(init_q.size(), 0.0), n_sum(init_q.size(), 0.0);
    for (size_t row = 0; row < n; ++row) {
      k_sum[static_cast<size_t>(init_labels[row])] +=
          input.segment_counts[row].k;
      n_sum[static_cast<size_t>(init_labels[row])] +=
          input.segment_counts[row].n;
    }
    for (size_t g = 0; g < init_q.size(); ++g) {
      init_q[g] = std::clamp((k_sum[g] + h.c0 * q0) / (n_sum[g] + h.c0), 1e-6,
                             0.5);
    }
  }

  // Collapsed-in-rho log likelihood of segment row under group rate qg.
  // Pure function of read-only state: safe to share across chains.
  auto seg_loglik = [&](size_t row, double qg) {
    const auto& c = input.segment_counts[row];
    double mean = TiltedMean(qg, multipliers[row]);
    return LogMarginalNoBinom(c.k, c.n, h.c * mean, h.c * (1.0 - mean));
  };

  // Sufficient-statistic equivalence classes: segments with identical
  // (k, n, multiplier) triples share every collapsed likelihood value, so
  // the deduplicated hot path evaluates per class instead of per row.
  std::vector<double> seg_k(n), seg_n(n);
  for (size_t row = 0; row < n; ++row) {
    seg_k[row] = input.segment_counts[row].k;
    seg_n[row] = input.segment_counts[row].n;
  }
  const SuffStatClasses classes = SuffStatClasses::Build(
      seg_k, seg_n, multipliers, h.c, kRateFloor, kRateCeil);
  const size_t num_classes = classes.num_classes();
  // log(count) lookup table (counts never exceed n), so the CRP weight loop
  // does no transcendental work per occupied group.
  std::vector<double> log_count(n + 1, 0.0);
  for (size_t cnt = 1; cnt <= n; ++cnt) {
    log_count[cnt] = std::log(static_cast<double>(cnt));
  }

  std::vector<ChainDraws> draws(static_cast<size_t>(h.num_chains));

  // Concentration resampling + draw collection, identical for both sampler
  // paths (steps 3 and 4 of a sweep).
  auto finish_sweep = [&](int iter, std::vector<Group>& groups, double* alpha,
                          ChainDraws* out, stats::Rng* rng) {
    // --- (3) Resample the DP concentration ------------------------------
    size_t occupied = 0;
    for (const Group& g : groups) occupied += g.count > 0 ? 1 : 0;
    if (config_.resample_alpha) {
      *alpha = ResampleCrpConcentration(*alpha, occupied, n,
                                        config_.alpha_prior_shape,
                                        config_.alpha_prior_rate, rng);
      *alpha = std::clamp(*alpha, 1e-3, 1e3);
    }

    // --- (4) Collect -----------------------------------------------------
    if (iter >= h.burn_in) {
      ++out->collected;
      out->k_trace.push_back(static_cast<int>(occupied));
      out->alpha_trace.push_back(*alpha);
      double qmax = 0.0;
      for (const Group& g : groups) {
        if (g.count > 0) qmax = std::max(qmax, g.q);
      }
      out->qmax_trace.push_back(qmax);
      for (size_t row = 0; row < n; ++row) {
        const auto& c = input.segment_counts[row];
        double mean = TiltedMean(
            groups[static_cast<size_t>(out->labels[row])].q,
            multipliers[row]);
        BetaParams prior{mean, h.c};
        out->prob_sum[row] += PosteriorMeanRate(prior, c.k, c.n);
      }
    }
  };

  // One full Metropolis-within-Gibbs run over the deduplicated classes with
  // versioned per-group likelihood caching and allocation-free inner loops;
  // writes only to its own slot.
  auto run_chain_dedup = [&](int chain, stats::Rng* rng) {
    telemetry::Counter* const sweep_counter = ChainSweepCounter(chain);
    ChainDraws& out = draws[static_cast<size_t>(chain)];
    out.prob_sum.assign(n, 0.0);
    out.labels = init_labels;
    std::vector<Group> groups(init_q.size());
    for (size_t g = 0; g < groups.size(); ++g) groups[g].q = init_q[g];
    for (size_t row = 0; row < n; ++row) {
      groups[static_cast<size_t>(out.labels[row])].count += 1;
    }

    double alpha = config_.alpha;
    const int total_iters = h.burn_in + h.samples;
    // All scratch is hoisted out of the sweep loop: after the first few
    // sweeps grow the capacities, the inner loops do no heap allocation.
    GroupLikelihoodCache cache(&classes);
    std::vector<double> log_weights, sample_scratch;
    std::vector<double> aux_q(
        static_cast<size_t>(config_.auxiliary_components));
    std::vector<double> hist;  // flat [group * num_classes + class]

    for (int iter = 0; iter < total_iters; ++iter) {
      telemetry::ScopedSpan sweep_span("dpmhbp.sweep");
      // --- (1) CRP reassignment of every segment (Neal's algorithm 8) ---
      // Weight of an occupied group = log(count) + cached class loglik; the
      // cache column is refreshed only when the group's rate version moved.
      for (size_t row = 0; row < n; ++row) {
        size_t old_g = static_cast<size_t>(out.labels[row]);
        groups[old_g].count -= 1;

        // Fresh prior draws for the auxiliary (empty) tables. If the segment
        // just vacated a table, reuse that table's rate as the first
        // auxiliary (Neal's trick keeps the chain valid and helps mixing).
        for (int m = 0; m < config_.auxiliary_components; ++m) {
          aux_q[static_cast<size_t>(m)] =
              std::clamp(stats::SampleBeta(rng, a0, b0), kRateFloor, 0.999);
        }
        if (groups[old_g].count == 0) aux_q[0] = groups[old_g].q;

        const size_t cls = classes.row_class(row);
        log_weights.clear();
        for (size_t g = 0; g < groups.size(); ++g) {
          if (groups[g].count == 0) {
            log_weights.push_back(-std::numeric_limits<double>::infinity());
            continue;
          }
          const std::vector<double>& col =
              cache.Column(g, groups[g].q_version, groups[g].q);
          log_weights.push_back(
              log_count[static_cast<size_t>(groups[g].count)] + col[cls]);
        }
        double log_alpha_share =
            std::log(alpha / config_.auxiliary_components);
        for (int m = 0; m < config_.auxiliary_components; ++m) {
          log_weights.push_back(
              log_alpha_share +
              classes.ClassLogLik(cls, aux_q[static_cast<size_t>(m)]));
        }

        size_t choice = stats::SampleDiscreteLog(
            rng, std::span<const double>(log_weights), &sample_scratch);
        if (choice < groups.size()) {
          out.labels[row] = static_cast<int>(choice);
          groups[choice].count += 1;
        } else {
          // Seat at a new table carrying the chosen auxiliary rate. Reuse
          // the vacated slot when available to limit growth.
          double new_q = aux_q[choice - groups.size()];
          size_t slot;
          if (groups[old_g].count == 0) {
            slot = old_g;
          } else {
            // Find any empty slot, else append.
            slot = groups.size();
            for (size_t g = 0; g < groups.size(); ++g) {
              if (groups[g].count == 0) {
                slot = g;
                break;
              }
            }
            if (slot == groups.size()) groups.emplace_back();
          }
          groups[slot].q = new_q;
          groups[slot].count = 1;
          groups[slot].adapter = StepSizeAdapter();
          ++groups[slot].q_version;
          out.labels[row] = static_cast<int>(slot);
        }
      }

      // --- (2) Metropolis update of each occupied group's rate ----------
      // A group's member sum collapses to sum_cls hist[cls] * loglik(cls),
      // and the current log target is reassembled from the cache column, so
      // each step evaluates the lgamma ladder only at the proposal.
      hist.assign(groups.size() * num_classes, 0.0);
      for (size_t row = 0; row < n; ++row) {
        hist[static_cast<size_t>(out.labels[row]) * num_classes +
             classes.row_class(row)] += 1.0;
      }
      for (size_t g = 0; g < groups.size(); ++g) {
        if (groups[g].count == 0) continue;
        const double* hist_g = hist.data() + g * num_classes;
        const std::vector<double>& col =
            cache.Column(g, groups[g].q_version, groups[g].q);
        double current_ll = stats::LogPdfBeta(groups[g].q, a0, b0);
        for (size_t cls = 0; cls < num_classes; ++cls) {
          if (hist_g[cls] != 0.0) current_ll += hist_g[cls] * col[cls];
        }
        auto log_target = [&](double qg) {
          double ll = stats::LogPdfBeta(qg, a0, b0);
          for (size_t cls = 0; cls < num_classes; ++cls) {
            if (hist_g[cls] != 0.0) {
              ll += hist_g[cls] * classes.ClassLogLik(cls, qg);
            }
          }
          return ll;
        };
        bool accepted = false;
        groups[g].q = MetropolisLogitStep(groups[g].q, &current_ll, log_target,
                                          groups[g].adapter.step(), rng,
                                          &accepted);
        ++out.proposals;
        out.accepts += accepted ? 1 : 0;
        if (accepted) ++groups[g].q_version;
        if (iter < h.burn_in) groups[g].adapter.Update(accepted);
      }

      finish_sweep(iter, groups, &alpha, &out, rng);
      sweep_counter->Increment();
    }
    out.cache_hits = cache.hits();
    out.cache_misses = cache.misses();
  };

  // The reference per-row sampler, kept bit-identical to the pre-dedup
  // implementation (legacy goldens pin it) and as the A/B baseline for the
  // dedup benchmarks.
  auto run_chain_naive = [&](int chain, stats::Rng* rng) {
    telemetry::Counter* const sweep_counter = ChainSweepCounter(chain);
    ChainDraws& out = draws[static_cast<size_t>(chain)];
    out.prob_sum.assign(n, 0.0);
    out.labels = init_labels;
    std::vector<Group> groups(init_q.size());
    for (size_t g = 0; g < groups.size(); ++g) groups[g].q = init_q[g];
    for (size_t row = 0; row < n; ++row) {
      groups[static_cast<size_t>(out.labels[row])].count += 1;
    }

    double alpha = config_.alpha;
    const int total_iters = h.burn_in + h.samples;
    std::vector<double> log_weights;
    std::vector<double> aux_q(
        static_cast<size_t>(config_.auxiliary_components));

    for (int iter = 0; iter < total_iters; ++iter) {
      telemetry::ScopedSpan sweep_span("dpmhbp.sweep");
      // --- (1) CRP reassignment of every segment (Neal's algorithm 8) ---
      for (size_t row = 0; row < n; ++row) {
        size_t old_g = static_cast<size_t>(out.labels[row]);
        groups[old_g].count -= 1;

        // Fresh prior draws for the auxiliary (empty) tables. If the segment
        // just vacated a table, reuse that table's rate as the first
        // auxiliary (Neal's trick keeps the chain valid and helps mixing).
        for (int m = 0; m < config_.auxiliary_components; ++m) {
          aux_q[static_cast<size_t>(m)] =
              std::clamp(stats::SampleBeta(rng, a0, b0), kRateFloor, 0.999);
        }
        if (groups[old_g].count == 0) aux_q[0] = groups[old_g].q;

        log_weights.clear();
        for (size_t g = 0; g < groups.size(); ++g) {
          if (groups[g].count == 0) {
            log_weights.push_back(-std::numeric_limits<double>::infinity());
            continue;
          }
          log_weights.push_back(
              std::log(static_cast<double>(groups[g].count)) +
              seg_loglik(row, groups[g].q));
        }
        double log_alpha_share =
            std::log(alpha / config_.auxiliary_components);
        for (int m = 0; m < config_.auxiliary_components; ++m) {
          log_weights.push_back(
              log_alpha_share + seg_loglik(row, aux_q[static_cast<size_t>(m)]));
        }

        size_t choice = stats::SampleDiscreteLog(rng, log_weights);
        if (choice < groups.size()) {
          out.labels[row] = static_cast<int>(choice);
          groups[choice].count += 1;
        } else {
          // Seat at a new table carrying the chosen auxiliary rate. Reuse
          // the vacated slot when available to limit growth.
          double new_q = aux_q[choice - groups.size()];
          size_t slot;
          if (groups[old_g].count == 0) {
            slot = old_g;
          } else {
            // Find any empty slot, else append.
            slot = groups.size();
            for (size_t g = 0; g < groups.size(); ++g) {
              if (groups[g].count == 0) {
                slot = g;
                break;
              }
            }
            if (slot == groups.size()) groups.emplace_back();
          }
          groups[slot].q = new_q;
          groups[slot].count = 1;
          groups[slot].adapter = StepSizeAdapter();
          out.labels[row] = static_cast<int>(slot);
        }
      }

      // --- (2) Metropolis update of each occupied group's rate ----------
      // Precompute member lists once per sweep.
      std::vector<std::vector<size_t>> members(groups.size());
      for (size_t row = 0; row < n; ++row) {
        members[static_cast<size_t>(out.labels[row])].push_back(row);
      }
      for (size_t g = 0; g < groups.size(); ++g) {
        if (groups[g].count == 0) continue;
        auto log_target = [&](double qg) {
          double ll = stats::LogPdfBeta(qg, a0, b0);
          for (size_t row : members[g]) ll += seg_loglik(row, qg);
          return ll;
        };
        bool accepted = false;
        groups[g].q = MetropolisLogitStep(groups[g].q, log_target,
                                          groups[g].adapter.step(), rng,
                                          &accepted);
        ++out.proposals;
        out.accepts += accepted ? 1 : 0;
        if (iter < h.burn_in) groups[g].adapter.Update(accepted);
      }

      finish_sweep(iter, groups, &alpha, &out, rng);
      sweep_counter->Increment();
    }
  };

  auto run_chain = [&](int chain, stats::Rng* rng) {
    if (h.dedup_suffstats) {
      run_chain_dedup(chain, rng);
    } else {
      run_chain_naive(chain, rng);
    }
  };

  RunChains(h.num_chains, h.num_threads, h.seed, kDpmhbpStream, run_chain);

  // --- pool the chains (deterministic chain order, so pooled results are
  // independent of the thread count) --------------------------------------
  segment_probs_.assign(n, 0.0);
  k_trace_.clear();
  alpha_trace_.clear();
  k_chain_traces_.clear();
  alpha_chain_traces_.clear();
  qmax_chain_traces_.clear();
  long long collected = 0;
  for (const ChainDraws& d : draws) {
    for (size_t row = 0; row < n; ++row) segment_probs_[row] += d.prob_sum[row];
    collected += d.collected;
    k_trace_.insert(k_trace_.end(), d.k_trace.begin(), d.k_trace.end());
    alpha_trace_.insert(alpha_trace_.end(), d.alpha_trace.begin(),
                        d.alpha_trace.end());
    k_chain_traces_.push_back(d.k_trace);
    alpha_chain_traces_.push_back(d.alpha_trace);
    qmax_chain_traces_.push_back(d.qmax_trace);
  }
  for (double& p : segment_probs_) p /= static_cast<double>(collected);

  // Flush the chain-confined tallies into the process-wide registry and
  // derive the headline run-health gauges the metrics export reports.
  {
    std::uint64_t proposals = 0, accepts = 0, hits = 0, misses = 0;
    for (const ChainDraws& d : draws) {
      proposals += d.proposals;
      accepts += d.accepts;
      hits += d.cache_hits;
      misses += d.cache_misses;
    }
    auto& registry = telemetry::Registry::Global();
    registry.GetCounter("mcmc.likelihood_cache.hits")
        ->Add(static_cast<std::int64_t>(hits));
    registry.GetCounter("mcmc.likelihood_cache.misses")
        ->Add(static_cast<std::int64_t>(misses));
    registry.GetCounter("mcmc.draws_collected")->Add(collected);
    registry.GetGauge("mcmc.acceptance_rate")
        ->Set(proposals > 0
                  ? static_cast<double>(accepts) / static_cast<double>(proposals)
                  : 0.0);
    registry.GetGauge("mcmc.cache_hit_ratio")
        ->Set(hits + misses > 0
                  ? static_cast<double>(hits) / static_cast<double>(hits + misses)
                  : 0.0);
    registry.GetGauge("mcmc.crp.mean_groups")->Set(mean_num_groups());
    registry.GetGauge("mcmc.crp.final_groups")
        ->Set(k_trace_.empty() ? 0.0
                               : static_cast<double>(k_trace_.back()));
  }

  // Densify chain 0's final labels for external consumers.
  labels_ = draws.front().labels;
  {
    int max_label = 0;
    for (int g : labels_) max_label = std::max(max_label, g);
    std::vector<int> remap(static_cast<size_t>(max_label) + 1, -1);
    int next = 0;
    for (size_t row = 0; row < n; ++row) {
      int g = labels_[row];
      if (remap[static_cast<size_t>(g)] < 0) {
        remap[static_cast<size_t>(g)] = next++;
      }
      labels_[row] = remap[static_cast<size_t>(g)];
    }
  }
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> DpmhbpModel::ScorePipes(const ModelInput& input) {
  return ScorePipes(input, ScoreOptions());
}

Result<std::vector<double>> DpmhbpModel::ScorePipes(const ModelInput& input,
                                                    const ScoreOptions& options) {
  if (!fitted_) return Status::FailedPrecondition("DpmhbpModel not fitted");
  if (input.num_segments() != segment_probs_.size()) {
    return Status::InvalidArgument("input does not match fitted state");
  }
  if (input.segment_index.num_pipes() == input.num_pipes()) {
    return AggregateSegmentRisk(input.segment_index, segment_probs_, options);
  }
  return AggregatePipeRisk(input, segment_probs_);
}

}  // namespace core
}  // namespace piperisk
