#include "core/hbp.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/strings.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/beta_bernoulli.h"
#include "core/chain_runner.h"
#include "core/covariates.h"
#include "core/mcmc.h"
#include "core/suffstats.h"
#include "core/sweep_parallel.h"
#include "stats/distributions.h"

namespace piperisk {
namespace core {

namespace {

constexpr double kRateFloor = 1e-7;
constexpr double kRateCeil = 1.0 - 1e-7;

/// Chain 0's PCG stream; kept from the single-chain era so `num_chains = 1`
/// reproduces historical fits bit-for-bit.
constexpr std::uint64_t kHbpStream = 0xC0FFEE;

/// Clamped covariate-scaled prior mean.
double TiltedMean(double q, double multiplier) {
  return std::clamp(q * multiplier, kRateFloor, kRateCeil);
}

/// Densifies arbitrary integer labels to [0, K).
std::vector<int> Densify(const std::vector<int>& raw) {
  std::unordered_map<int, int> remap;
  std::vector<int> labels(raw.size(), 0);
  for (size_t i = 0; i < raw.size(); ++i) {
    auto [it, inserted] = remap.emplace(raw[i], static_cast<int>(remap.size()));
    (void)inserted;
    labels[i] = it->second;
  }
  return labels;
}

/// Index of the (single) length column in the encoder layout, or -1.
int LengthColumnIndex(const ModelInput& input) {
  for (size_t c = 0; c < input.feature_names.size(); ++c) {
    if (input.feature_names[c] == "log_length_m") return static_cast<int>(c);
  }
  return -1;
}

}  // namespace

std::string_view ToString(GroupingScheme scheme) {
  switch (scheme) {
    case GroupingScheme::kMaterial:
      return "material";
    case GroupingScheme::kDiameterBand:
      return "diameter";
    case GroupingScheme::kLaidDecade:
      return "laid_decade";
    case GroupingScheme::kCoating:
      return "coating";
    case GroupingScheme::kSoilCorrosiveness:
      return "soil_corrosiveness";
    case GroupingScheme::kSingle:
      return "single";
  }
  return "?";
}

int RawFixedPipeGroupKey(const ModelInput& input, size_t i,
                         GroupingScheme scheme) {
  const net::Pipe& p = *input.pipes[i];
  switch (scheme) {
    case GroupingScheme::kMaterial:
      return static_cast<int>(p.material);
    case GroupingScheme::kDiameterBand:
      return p.diameter_mm < 150    ? 0
             : p.diameter_mm < 250  ? 1
             : p.diameter_mm < 375  ? 2
             : p.diameter_mm < 500  ? 3
             : p.diameter_mm < 750  ? 4
                                    : 5;
    case GroupingScheme::kLaidDecade:
      return p.laid_year / 10;
    case GroupingScheme::kCoating:
      return static_cast<int>(p.coating);
    case GroupingScheme::kSoilCorrosiveness: {
      if (!p.segments.empty()) {
        auto segment = input.dataset->network.FindSegment(p.segments[0]);
        if (segment.ok()) {
          return static_cast<int>((*segment)->soil.corrosiveness);
        }
      }
      return 0;
    }
    case GroupingScheme::kSingle:
      return 0;
  }
  return 0;
}

std::vector<int> AssignFixedPipeGroups(const ModelInput& input,
                                       GroupingScheme scheme) {
  std::vector<int> raw(input.num_pipes(), 0);
  for (size_t i = 0; i < input.num_pipes(); ++i) {
    raw[i] = RawFixedPipeGroupKey(input, i, scheme);
  }
  return Densify(raw);
}

std::vector<double> FitSegmentMultipliers(const ModelInput& input,
                                          const HierarchyConfig& config) {
  std::vector<double> ones(input.num_segments(), 1.0);
  if (!config.use_covariates || input.num_segments() == 0 ||
      input.feature_dim() == 0) {
    return ones;
  }
  // The multiplicative covariate effect is estimated at *pipe* level —
  // counts pooled across a pipe's segments give a far better-conditioned
  // Poisson regression than the nearly-all-zero segment rows — with pipe
  // length as *exposure* (offset), not as a feature: the DPMHBP handles
  // length structurally through segment decomposition. The fitted weights
  // are then evaluated on each segment's own features (soil, traffic, ...
  // vary along the pipe).
  const int len_col = LengthColumnIndex(input);
  std::vector<std::vector<double>> rows;
  std::vector<double> counts, exposures;
  rows.reserve(input.num_pipes());
  for (size_t i = 0; i < input.num_pipes(); ++i) {
    std::vector<double> row = input.pipe_features[i];
    if (len_col >= 0) row[static_cast<size_t>(len_col)] = 0.0;
    rows.push_back(std::move(row));
    // Counts are segment failure-years, not raw failure records: repeat
    // failures are escalation/cohort noise with respect to the covariates
    // and would contaminate the regression toward history-heavy pipes.
    double failure_years = 0.0;
    double years = 1.0;
    for (size_t seg_row : input.pipe_segment_rows[i]) {
      failure_years += input.segment_counts[seg_row].k;
      years = std::max(years,
                       static_cast<double>(input.segment_counts[seg_row].n));
    }
    counts.push_back(failure_years);
    double len_km = std::max(input.outcomes[i].length_m / 1000.0, 0.01);
    exposures.push_back(years * len_km);
  }
  PoissonRegressionConfig prc;
  prc.ridge = config.ridge;
  auto fit = PoissonRegression::Fit(rows, counts, exposures, prc);
  if (!fit.ok()) return ones;

  // Evaluate the fitted weights on segment features (length zeroed there
  // too) and normalise to mean 1.
  std::vector<std::vector<double>> seg_rows;
  seg_rows.reserve(input.num_segments());
  for (size_t row = 0; row < input.num_segments(); ++row) {
    std::vector<double> r = input.segment_features[row];
    if (len_col >= 0) r[static_cast<size_t>(len_col)] = 0.0;
    seg_rows.push_back(std::move(r));
  }
  return NormalisedMultipliers(*fit, seg_rows, config.min_multiplier,
                               config.max_multiplier);
}

std::vector<double> AggregatePipeRisk(const ModelInput& input,
                                      const std::vector<double>& segment_probs) {
  // One aggregation kernel for serial and parallel callers: the blocked
  // engine at a single thread is the historical loop, bit for bit.
  if (input.segment_index.num_pipes() == input.num_pipes()) {
    return AggregateSegmentRisk(input.segment_index, segment_probs,
                                ScoreOptions());
  }
  return AggregateSegmentRisk(
      PipeSegmentIndex::FromRows(input.pipe_segment_rows), segment_probs,
      ScoreOptions());
}

std::vector<PipeCounts> BuildPipeCounts(const ModelInput& input) {
  std::vector<PipeCounts> counts(input.num_pipes());
  const auto& split = input.split;
  for (size_t i = 0; i < input.num_pipes(); ++i) {
    const net::Pipe& p = *input.pipes[i];
    for (net::Year y = split.train_first; y <= split.train_last; ++y) {
      if (p.laid_year > y) continue;
      counts[i].n += 1;
      if (input.dataset->failures.CountForPipe(p.id, y, y) > 0) {
        counts[i].k += 1;
      }
    }
  }
  return counts;
}

HbpModel::HbpModel(GroupingScheme scheme, HierarchyConfig config)
    : scheme_(scheme), config_(config) {}

void HbpModel::SetWarmStart(std::vector<ChainCheckpoint> state) {
  warm_in_ = std::move(state);
  has_warm_ = true;
}

std::string HbpModel::name() const {
  return "HBP(" + std::string(ToString(scheme_)) + ")";
}

Status HbpModel::Fit(const ModelInput& input) {
  const size_t n = input.num_pipes();
  if (n == 0) return Status::InvalidArgument("no pipes to fit");
  if (config_.samples <= 0) return Status::InvalidArgument("samples must be > 0");
  if (config_.num_chains < 1) {
    return Status::InvalidArgument("num_chains must be >= 1");
  }
  if (config_.fast_sweeps && !config_.dedup_suffstats) {
    return Status::InvalidArgument("fast_sweeps requires dedup_suffstats");
  }
  SetSimdMode(config_.simd);
  // Within-chain partitioning: HBP groups are fixed, so the whole sweep is
  // an independent per-group Metropolis scan — the deterministic pre-draw /
  // parallel-eval / ordered-merge split covers fast mode too (there is no
  // CRP pass whose ordering could be relaxed), so HBP draws never depend on
  // sweep_threads. Only the dedup path splits; the reference per-pipe
  // sampler stays serial.
  const int sweep_threads = ResolveSweepThreads(config_.sweep_threads);
  // Cap scheduling at real capacity: output is scheduling-independent, so a
  // 1-core machine takes the serial path with zero queue overhead.
  const int exec_threads = std::min(
      sweep_threads, ThreadPool::Shared().num_workers() + 1);
  const bool parallel_sweep =
      config_.dedup_suffstats && (exec_threads > 1 || config_.fast_sweeps);
  labels_ = AssignFixedPipeGroups(input, scheme_);
  const int num_groups = 1 + *std::max_element(labels_.begin(), labels_.end());
  std::vector<PipeCounts> counts = BuildPipeCounts(input);

  // Warm start: usable only when the injected state matches this input's
  // chain count and grouping shape — otherwise fall back to a cold fit.
  // One-shot: the armed state is consumed whether or not it was usable.
  std::vector<ChainCheckpoint> warm = std::move(warm_in_);
  bool use_warm = has_warm_ &&
                  warm.size() == static_cast<size_t>(config_.num_chains);
  for (const ChainCheckpoint& c : warm) {
    if (!use_warm) break;
    use_warm = c.group_q.size() == static_cast<size_t>(num_groups) &&
               c.adapters.size() == static_cast<size_t>(num_groups);
  }
  has_warm_ = false;
  warm_in_.clear();
  const int burn_in =
      use_warm ? (config_.warm_burn_in >= 0 ? config_.warm_burn_in
                                            : std::max(1, config_.burn_in / 4))
               : config_.burn_in;

  // Covariate multipliers from pipe features, with the length column
  // removed: the HBP baseline is length-blind by construction.
  std::vector<double> multipliers(n, 1.0);
  if (config_.use_covariates && input.feature_dim() > 0) {
    int len_col = LengthColumnIndex(input);
    std::vector<std::vector<double>> rows;
    rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      std::vector<double> row = input.pipe_features[i];
      if (len_col >= 0) row[static_cast<size_t>(len_col)] = 0.0;
      rows.push_back(std::move(row));
    }
    std::vector<double> ks(n), ns(n);
    for (size_t i = 0; i < n; ++i) {
      ks[i] = static_cast<double>(counts[i].k);
      ns[i] = std::max(1.0, static_cast<double>(counts[i].n));
    }
    PoissonRegressionConfig prc;
    prc.ridge = config_.ridge;
    auto fit = PoissonRegression::Fit(rows, ks, ns, prc);
    if (fit.ok()) {
      multipliers = NormalisedMultipliers(*fit, rows, config_.min_multiplier,
                                          config_.max_multiplier);
    }
  }

  // Empirical prior mean when unset (pipe-year failure rate).
  double total_k = 0.0, total_n = 0.0;
  for (const auto& c : counts) {
    total_k += c.k;
    total_n += c.n;
  }
  double q0 = config_.q0;
  if (q0 <= 0.0) {
    q0 = std::clamp((total_k + 0.5) / std::max(total_n, 1.0), 1e-6, 0.5);
  }
  const double a0 = config_.c0 * q0;
  const double b0 = config_.c0 * (1.0 - q0);

  std::vector<std::vector<size_t>> members(num_groups);
  for (size_t i = 0; i < n; ++i) {
    members[static_cast<size_t>(labels_[i])].push_back(i);
  }
  std::vector<double> init_q(num_groups, q0);
  for (int g = 0; g < num_groups; ++g) {
    double k_sum = 0.0, n_sum = 0.0;
    for (size_t i : members[g]) {
      k_sum += counts[i].k;
      n_sum += counts[i].n;
    }
    init_q[g] = std::clamp((k_sum + config_.c0 * q0) / (n_sum + config_.c0),
                           1e-6, 0.5);
  }

  // Pure function of read-only state: safe to share across chains. This is
  // the reference per-pipe evaluation, kept bit-identical to the pre-dedup
  // implementation (legacy goldens pin it).
  auto group_loglik = [&](int g, double qg) {
    double ll = stats::LogPdfBeta(qg, a0, b0);
    for (size_t i : members[g]) {
      double mean = TiltedMean(qg, multipliers[i]);
      ll += LogMarginalNoBinom(counts[i].k, counts[i].n, config_.c * mean,
                               config_.c * (1.0 - mean));
    }
    return ll;
  };

  // Sufficient-statistic deduplication: pipes with identical
  // (k, n, multiplier) triples contribute identical collapsed likelihoods,
  // so a group's member sum collapses to sum_cls hist[cls] * loglik(cls).
  // Groupings are fixed for the HBP, so the class histograms are built once.
  std::vector<double> pipe_k(n), pipe_n(n);
  for (size_t i = 0; i < n; ++i) {
    pipe_k[i] = counts[i].k;
    pipe_n[i] = counts[i].n;
  }
  const SuffStatClasses classes = SuffStatClasses::Build(
      pipe_k, pipe_n, multipliers, config_.c, kRateFloor, kRateCeil);
  const size_t num_classes = classes.num_classes();
  std::vector<double> hist(static_cast<size_t>(num_groups) * num_classes,
                           0.0);
  for (size_t i = 0; i < n; ++i) {
    hist[static_cast<size_t>(labels_[i]) * num_classes +
         classes.row_class(i)] += 1.0;
  }
  auto group_loglik_dedup = [&](int g, double qg) {
    double ll = stats::LogPdfBeta(qg, a0, b0);
    const double* hist_g = hist.data() + static_cast<size_t>(g) * num_classes;
    for (size_t cls = 0; cls < num_classes; ++cls) {
      if (hist_g[cls] != 0.0) ll += hist_g[cls] * classes.ClassLogLik(cls, qg);
    }
    return ll;
  };

  // Per-chain accumulators; each chain owns exactly one slot so the parallel
  // runner needs no locking.
  struct ChainDraws {
    std::vector<double> prob_sum;
    std::vector<double> rate_sum;
    std::vector<std::vector<double>> traces;  // [group][draw]
    int collected = 0;
    /// Chain-confined telemetry tallies (flushed after pooling).
    std::uint64_t proposals = 0;
    std::uint64_t accepts = 0;
  };
  const int num_chains = config_.num_chains;
  std::vector<ChainDraws> draws(static_cast<size_t>(num_chains));

  // Mutable sampler state of one chain, separated from the accumulated
  // draws so the checkpoint runner can re-initialise or restore a chain
  // wholesale. `current_ll` is the per-sweep likelihood cache of the dedup
  // path; it is recomputed (bit-identically — same deterministic function at
  // the same rates) rather than checkpointed.
  struct ChainState {
    std::vector<double> q;
    std::vector<StepSizeAdapter> adapters;
    std::vector<double> current_ll;
    telemetry::Counter* sweep_counter = nullptr;
    // Partitioned-sweep scratch (allocation reuse only; never checkpointed).
    std::vector<LogitProposal> props;
    std::vector<double> prop_ll;
  };
  std::vector<ChainState> states(static_cast<size_t>(num_chains));
  for (int c = 0; c < num_chains; ++c) {
    states[static_cast<size_t>(c)].sweep_counter = ChainSweepCounter(c);
  }

  auto refresh_current_ll = [&](ChainState& s) {
    s.current_ll.assign(static_cast<size_t>(num_groups), 0.0);
    if (config_.dedup_suffstats) {
      for (int g = 0; g < num_groups; ++g) {
        s.current_ll[static_cast<size_t>(g)] = group_loglik_dedup(g, s.q[g]);
      }
    }
  };

  auto init_chain = [&](int chain) {
    ChainState& s = states[static_cast<size_t>(chain)];
    ChainDraws& out = draws[static_cast<size_t>(chain)];
    out = ChainDraws();
    out.prob_sum.assign(n, 0.0);
    out.rate_sum.assign(static_cast<size_t>(num_groups), 0.0);
    out.traces.assign(static_cast<size_t>(num_groups), {});
    s.q = init_q;
    s.adapters.assign(static_cast<size_t>(num_groups), StepSizeAdapter());
    if (use_warm) {
      // Sampler state only (rates + step-size adapters); accumulators and
      // the chain RNG stream start fresh for the new data.
      const ChainCheckpoint& w = warm[static_cast<size_t>(chain)];
      s.q = w.group_q;
      for (size_t g = 0; g < w.adapters.size(); ++g) {
        s.adapters[g].RestoreState(StepSizeAdapter::State{
            w.adapters[g].step, w.adapters[g].proposals,
            w.adapters[g].accepts});
      }
    }
    refresh_current_ll(s);
  };

  auto sweep_chain = [&](int chain, int iter, stats::Rng* rng) {
    ChainState& s = states[static_cast<size_t>(chain)];
    ChainDraws& out = draws[static_cast<size_t>(chain)];
    telemetry::ScopedSpan sweep_span("hbp.sweep");
    if (parallel_sweep) {
      // Bit-identical split of the serial scan: proposals pre-drawn in
      // canonical group order (the fused kernel's exact RNG consumption),
      // pure log targets evaluated over the pool, decisions merged back in
      // group order with identical arithmetic.
      SweepMetrics::Get().parallel_sweeps->Increment();
      s.props.clear();
      for (int g = 0; g < num_groups; ++g) {
        s.props.push_back(DrawLogitProposal(
            s.q[static_cast<size_t>(g)],
            s.adapters[static_cast<size_t>(g)].step(), rng));
      }
      SweepMetrics::Get().predrawn_proposals->Add(num_groups);
      s.prop_ll.assign(static_cast<size_t>(num_groups), 0.0);
      const int blocks = std::min(num_groups, exec_threads);
      ThreadPool::Shared().ParallelFor(blocks, exec_threads, [&](int b) {
        auto [lo, hi] =
            BlockRange(static_cast<size_t>(num_groups), blocks, b);
        for (size_t g = lo; g < hi; ++g) {
          if (s.props[g].in_support) {
            s.prop_ll[g] =
                group_loglik_dedup(static_cast<int>(g), s.props[g].proposal);
          }
        }
      });
      for (int g = 0; g < num_groups; ++g) {
        const size_t gi = static_cast<size_t>(g);
        const bool accepted = AcceptLogitProposal(
            s.props[gi], s.q[gi], s.prop_ll[gi], &s.current_ll[gi]);
        if (accepted) s.q[gi] = s.props[gi].proposal;
        if (iter < burn_in) s.adapters[gi].Update(accepted);
        ++out.proposals;
        out.accepts += accepted ? 1 : 0;
      }
    } else {
      SweepMetrics::Get().serial_sweeps->Increment();
      for (int g = 0; g < num_groups; ++g) {
        bool accepted = false;
        if (config_.dedup_suffstats) {
          s.q[g] = MetropolisLogitStep(
              s.q[g], &s.current_ll[static_cast<size_t>(g)],
              [&](double v) { return group_loglik_dedup(g, v); },
              s.adapters[static_cast<size_t>(g)].step(), rng, &accepted);
        } else {
          s.q[g] = MetropolisLogitStep(
              s.q[g], [&](double v) { return group_loglik(g, v); },
              s.adapters[static_cast<size_t>(g)].step(), rng, &accepted);
        }
        if (iter < burn_in) {
          s.adapters[static_cast<size_t>(g)].Update(accepted);
        }
        ++out.proposals;
        out.accepts += accepted ? 1 : 0;
      }
    }
    if (iter >= burn_in) {
      ++out.collected;
      for (int g = 0; g < num_groups; ++g) {
        out.rate_sum[static_cast<size_t>(g)] += s.q[g];
        out.traces[static_cast<size_t>(g)].push_back(s.q[g]);
      }
      for (size_t i = 0; i < n; ++i) {
        double mean =
            TiltedMean(s.q[static_cast<size_t>(labels_[i])], multipliers[i]);
        BetaParams prior{mean, config_.c};
        out.prob_sum[i] += PosteriorMeanRate(prior, counts[i].k,
                                             counts[i].n);
      }
    }
    s.sweep_counter->Increment();
  };

  auto capture_chain = [&](int chain, ChainCheckpoint* ckpt) {
    const ChainState& s = states[static_cast<size_t>(chain)];
    const ChainDraws& out = draws[static_cast<size_t>(chain)];
    ckpt->group_q = s.q;
    ckpt->adapters.reserve(s.adapters.size());
    for (const StepSizeAdapter& a : s.adapters) {
      const StepSizeAdapter::State st = a.SaveState();
      ckpt->adapters.push_back(
          AdapterCheckpoint{st.step, st.proposals, st.accepts});
    }
    ckpt->prob_sum = out.prob_sum;
    ckpt->rate_sum = out.rate_sum;
    ckpt->group_traces = out.traces;
    ckpt->collected = out.collected;
    ckpt->proposals = out.proposals;
    ckpt->accepts = out.accepts;
  };

  auto restore_chain = [&](int chain, const ChainCheckpoint& ckpt) -> Status {
    if (ckpt.group_q.size() != static_cast<size_t>(num_groups) ||
        ckpt.adapters.size() != static_cast<size_t>(num_groups) ||
        ckpt.rate_sum.size() != static_cast<size_t>(num_groups) ||
        ckpt.group_traces.size() != static_cast<size_t>(num_groups) ||
        ckpt.prob_sum.size() != n) {
      return Status::FailedPrecondition(StrFormat(
          "checkpoint for chain %d does not match the current grouping "
          "(%zu groups over %zu pipes)",
          chain, static_cast<size_t>(num_groups), n));
    }
    ChainState& s = states[static_cast<size_t>(chain)];
    ChainDraws& out = draws[static_cast<size_t>(chain)];
    out = ChainDraws();
    out.prob_sum = ckpt.prob_sum;
    out.rate_sum = ckpt.rate_sum;
    out.traces = ckpt.group_traces;
    out.collected = static_cast<int>(ckpt.collected);
    out.proposals = ckpt.proposals;
    out.accepts = ckpt.accepts;
    s.q = ckpt.group_q;
    s.adapters.assign(static_cast<size_t>(num_groups), StepSizeAdapter());
    for (size_t g = 0; g < ckpt.adapters.size(); ++g) {
      s.adapters[g].RestoreState(StepSizeAdapter::State{
          ckpt.adapters[g].step, ckpt.adapters[g].proposals,
          ckpt.adapters[g].accepts});
    }
    refresh_current_ll(s);
    return Status::OK();
  };

  Fingerprint fp;
  fp.Add("hbp")
      .Add(ToString(scheme_))
      .Add(static_cast<std::uint64_t>(n))
      .Add(num_groups)
      .Add(config_.seed)
      .Add(config_.num_chains)
      .Add(burn_in)
      .Add(use_warm)
      .Add(config_.samples)
      .Add(q0)
      .Add(config_.c0)
      .Add(config_.c)
      .Add(config_.dedup_suffstats)
      .Add(config_.use_covariates)
      .Add(config_.ridge)
      .Add(config_.min_multiplier)
      .Add(config_.max_multiplier)
      .Add(total_k)
      .Add(total_n)
      .Add(config_.fast_sweeps);

  ChainRunnerOptions run_options;
  run_options.num_chains = num_chains;
  run_options.num_threads = config_.num_threads;
  run_options.seed = config_.seed;
  run_options.stream = kHbpStream;
  run_options.total_sweeps = burn_in + config_.samples;
  run_options.fingerprint = fp.digest();
  run_options.checkpoint = config_.checkpoint;
  if (run_options.checkpoint.tag.empty()) {
    run_options.checkpoint.tag = "hbp_" + std::string(ToString(scheme_));
  }
  run_options.heartbeat = config_.heartbeat;
  if (run_options.heartbeat.label.empty()) {
    run_options.heartbeat.label =
        "fit hbp_" + std::string(ToString(scheme_));
  }

  ChainProgram program;
  program.init = init_chain;
  program.sweep = sweep_chain;
  program.capture = capture_chain;
  program.restore = restore_chain;
  // Heartbeat feeds: the max group rate of the latest retained draw (the
  // grouping is fixed, so the max is stable and comparable across chains).
  program.monitor = [&](int chain, int iter, double* value) {
    if (iter < burn_in) return false;
    const ChainDraws& d = draws[static_cast<size_t>(chain)];
    double max_rate = 0.0;
    bool have = false;
    for (const std::vector<double>& trace : d.traces) {
      if (trace.empty()) return false;
      max_rate = have ? std::max(max_rate, trace.back()) : trace.back();
      have = true;
    }
    if (!have) return false;
    *value = max_rate;
    return true;
  };
  program.acceptance = [&](int chain, std::int64_t* proposals,
                           std::int64_t* accepted) {
    const ChainDraws& d = draws[static_cast<size_t>(chain)];
    *proposals = static_cast<std::int64_t>(d.proposals);
    *accepted = static_cast<std::int64_t>(d.accepts);
  };

  PIPERISK_ASSIGN_OR_RETURN(const ChainRunReport report,
                            RunCheckpointedChains(run_options, program));
  std::vector<char> chain_failed(static_cast<size_t>(num_chains), 0);
  for (int c : report.failed_chains) {
    chain_failed[static_cast<size_t>(c)] = 1;
  }

  // Snapshot the end-of-run sampler state for warm-started sequential
  // re-fits (next year's Fit consumes it via SetWarmStart).
  warm_out_.clear();
  if (config_.capture_warm_state) {
    warm_out_.resize(static_cast<size_t>(num_chains));
    for (int c = 0; c < num_chains; ++c) {
      capture_chain(c, &warm_out_[static_cast<size_t>(c)]);
    }
  }

  // Pool the surviving chains in deterministic chain order: posterior means
  // over every chain's draws, concatenated per-group traces, and the
  // per-chain traces for R̂.
  pipe_probs_.assign(n, 0.0);
  group_rate_means_.assign(static_cast<size_t>(num_groups), 0.0);
  traces_.assign(static_cast<size_t>(num_groups), {});
  chain_traces_.clear();
  long long collected = 0;
  for (int c = 0; c < num_chains; ++c) {
    if (chain_failed[static_cast<size_t>(c)]) continue;
    const ChainDraws& d = draws[static_cast<size_t>(c)];
    collected += d.collected;
    for (size_t i = 0; i < n; ++i) pipe_probs_[i] += d.prob_sum[i];
    for (int g = 0; g < num_groups; ++g) {
      group_rate_means_[static_cast<size_t>(g)] +=
          d.rate_sum[static_cast<size_t>(g)];
      traces_[static_cast<size_t>(g)].insert(
          traces_[static_cast<size_t>(g)].end(),
          d.traces[static_cast<size_t>(g)].begin(),
          d.traces[static_cast<size_t>(g)].end());
    }
    chain_traces_.push_back(d.traces);
  }
  if (collected == 0) {
    return Status::Internal("no post-burn-in draws were collected");
  }
  for (double& p : pipe_probs_) p /= static_cast<double>(collected);
  for (double& g : group_rate_means_) g /= static_cast<double>(collected);

  // Flush the chain-confined telemetry tallies now that pooling is done.
  {
    std::uint64_t proposals = 0;
    std::uint64_t accepts = 0;
    for (int c = 0; c < num_chains; ++c) {
      if (chain_failed[static_cast<size_t>(c)]) continue;
      const ChainDraws& d = draws[static_cast<size_t>(c)];
      proposals += d.proposals;
      accepts += d.accepts;
    }
    auto& registry = telemetry::Registry::Global();
    static telemetry::Counter* const draws_collected =
        registry.GetCounter("mcmc.draws_collected");
    draws_collected->Add(collected);
    registry.GetGauge("mcmc.acceptance_rate")
        ->Set(proposals > 0
                  ? static_cast<double>(accepts) / static_cast<double>(proposals)
                  : 0.0);
  }
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> HbpModel::ScorePipes(const ModelInput& input) {
  if (!fitted_) return Status::FailedPrecondition("HbpModel not fitted");
  if (input.num_pipes() != pipe_probs_.size()) {
    return Status::InvalidArgument("input does not match fitted state");
  }
  return pipe_probs_;
}

}  // namespace core
}  // namespace piperisk
