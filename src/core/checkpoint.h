#ifndef PIPERISK_CORE_CHECKPOINT_H_
#define PIPERISK_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "stats/rng.h"

namespace piperisk {
namespace core {

/// Crash-safe checkpoint/resume for the Metropolis-within-Gibbs samplers.
///
/// A checkpoint captures the complete state of ONE chain at a sweep
/// boundary: the sampler's mutable parameters, the accumulated post-burn-in
/// draws, the per-group step-size adapters, and the chain's raw PCG stream.
/// Because every sweep is a deterministic function of (state, rng), a fit
/// restored from a checkpoint and run to completion produces draws — and
/// therefore pooled scores — bit-identical to an uninterrupted run. Doubles
/// are serialised as their IEEE-754 bit patterns, never through decimal
/// round-trips, to keep that guarantee exact.
///
/// Snapshots are written atomically (write temp file in the same directory,
/// then rename), so a crash mid-write can never leave a truncated
/// checkpoint behind: the previous complete snapshot survives. Files carry
/// a format version, a config/seed fingerprint, and a checksum; loading
/// validates all three.

/// User-facing checkpoint settings, embedded in HierarchyConfig so they
/// flow to both MCMC samplers (and through compare/tune) unchanged.
struct CheckpointConfig {
  /// Directory for snapshot files; empty disables persistence. In-memory
  /// snapshots for chain-failure retry are still kept when `every > 0`.
  std::string dir;
  /// Sweeps between snapshots (a final snapshot is always written when a
  /// chain completes). <= 0 disables checkpointing entirely.
  int every = 25;
  /// Restore chains from existing snapshots in `dir` before running.
  /// Chains without a snapshot start fresh; snapshots whose fingerprint
  /// does not match the current config/seed are rejected with a
  /// descriptive Status.
  bool resume = false;
  /// File-name stem (files are `<tag>.chain<K>.ckpt`). Empty: the model
  /// derives a stable tag from its name, e.g. "dpmhbp" / "hbp_material".
  std::string tag;
  /// How many times a throwing chain is re-run from its last snapshot (or
  /// from scratch when none exists yet) before the run degrades to the
  /// surviving chains.
  int max_chain_retries = 2;
  /// Fault-injection test hook: chain `fail_chain` throws once after
  /// completing this many sweeps (< 0: disabled).
  int fail_chain_after_sweeps = -1;
  int fail_chain = 0;
  /// Crash-simulation test hook: every chain stops cleanly once it has
  /// completed this many sweeps and the run returns an error, leaving the
  /// snapshots on disk exactly as a kill -9 would (< 0: disabled).
  int halt_after_sweeps = -1;
};

/// Serialisable state of one StepSizeAdapter (the Robbins–Monro target is
/// config-derived and not part of the state).
struct AdapterCheckpoint {
  double step = 0.0;
  long long proposals = 0;
  long long accepts = 0;
};

/// Full state of one sampler chain at a sweep boundary. The runner fills
/// the bookkeeping fields (chain, sweeps, fingerprint, rng); the model's
/// capture callback fills whichever payload sections it uses — unused
/// sections stay empty and round-trip as such.
struct ChainCheckpoint {
  int chain = 0;
  int next_sweep = 0;    ///< sweeps completed; the first sweep still to run
  int total_sweeps = 0;
  std::uint64_t fingerprint = 0;
  stats::RngState rng;

  // --- sampler state -------------------------------------------------------
  double alpha = 0.0;                        ///< DPMHBP concentration
  std::vector<int> labels;                   ///< DPMHBP segment -> group slot
  std::vector<double> group_q;               ///< rate per group slot
  std::vector<long long> group_count;        ///< members per slot (DPMHBP)
  std::vector<AdapterCheckpoint> adapters;   ///< per group slot

  // --- accumulated post-burn-in draws --------------------------------------
  std::vector<double> prob_sum;
  std::vector<double> rate_sum;                   ///< HBP group-rate sums
  std::vector<int> k_trace;
  std::vector<double> alpha_trace;
  std::vector<double> qmax_trace;
  std::vector<std::vector<double>> group_traces;  ///< HBP [group][draw]
  long long collected = 0;
  std::uint64_t proposals = 0;
  std::uint64_t accepts = 0;
};

/// FNV-1a accumulator for config/seed fingerprints. Doubles are hashed by
/// bit pattern, so any change that could alter the draws changes the digest.
class Fingerprint {
 public:
  Fingerprint& Add(std::string_view text);
  /// String literals must hash as text: without this overload, a
  /// `const char*` argument would prefer the pointer->bool standard
  /// conversion over the user-defined conversion to string_view, and every
  /// literal would silently hash as `true`.
  Fingerprint& Add(const char* text) { return Add(std::string_view(text)); }
  Fingerprint& Add(std::uint64_t value);
  Fingerprint& Add(long long value) {
    return Add(static_cast<std::uint64_t>(value));
  }
  Fingerprint& Add(int value) { return Add(static_cast<std::uint64_t>(value)); }
  Fingerprint& Add(bool value) { return Add(std::uint64_t{value ? 1u : 0u}); }
  Fingerprint& Add(double value);

  std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
};

/// Snapshot path of one chain: `<dir>/<tag>.chain<K>.ckpt`.
std::string ChainCheckpointPath(const std::string& dir, const std::string& tag,
                                int chain);

/// Serialises the checkpoint to `path` atomically: the bytes are written to
/// `<path>.tmp` and renamed over `path` only when complete, so readers (and
/// crashes) only ever observe complete snapshots. Records write latency and
/// counters in the telemetry registry.
Status SaveChainCheckpoint(const ChainCheckpoint& checkpoint,
                           const std::string& path);

/// Loads and validates a snapshot (magic, format version, checksum,
/// structural sanity). Fingerprint/shape validation against the *current*
/// run is the caller's job — the loader only guarantees the bytes decode to
/// exactly what was saved.
Result<ChainCheckpoint> LoadChainCheckpoint(const std::string& path);

}  // namespace core
}  // namespace piperisk

#endif  // PIPERISK_CORE_CHECKPOINT_H_
