#include "core/model.h"

namespace piperisk {
namespace core {

Result<ModelInput> ModelInput::Build(const data::RegionDataset& dataset,
                                     const data::TemporalSplit& split,
                                     net::PipeCategory category,
                                     const net::FeatureConfig& features) {
  ModelInput input;
  input.dataset = &dataset;
  input.split = split;
  input.category = category;
  input.feature_config = features;

  input.segment_counts = data::BuildSegmentCounts(dataset, split, category);
  input.outcomes = data::BuildPipeOutcomes(dataset, split, category);

  // Age is anchored at the *end of training*: models must not peek at the
  // test year through the feature table.
  net::FeatureEncoder encoder(features, split.train_last);
  input.feature_names = encoder.names();

  // Pipes of the category, aligned with outcomes (BuildPipeOutcomes walks
  // pipes in network order; mirror that walk).
  for (const net::Pipe& p : dataset.network.pipes()) {
    if (p.category != category) continue;
    input.pipe_position[p.id] = input.pipes.size();
    input.pipes.push_back(&p);
  }
  if (input.pipes.size() != input.outcomes.size()) {
    return Status::Internal("pipe/outcome alignment drift");
  }

  // Raw segment features, then fit standardisation on them.
  std::vector<std::vector<double>> raw_segment_rows;
  raw_segment_rows.reserve(input.segment_counts.size());
  input.pipe_segment_rows.assign(input.pipes.size(), {});
  for (size_t row = 0; row < input.segment_counts.size(); ++row) {
    const data::SegmentCounts& c = input.segment_counts[row];
    auto segment = dataset.network.FindSegment(c.segment_id);
    if (!segment.ok()) return segment.status();
    auto encoded = encoder.EncodeSegment(dataset.network, **segment);
    if (!encoded.ok()) return encoded.status();
    raw_segment_rows.push_back(std::move(*encoded));
    auto pos = input.pipe_position.find(c.pipe_id);
    if (pos == input.pipe_position.end()) {
      return Status::Internal("segment row references pipe outside category");
    }
    input.pipe_segment_rows[pos->second].push_back(row);
  }
  input.segment_features = encoder.FitStandardise(raw_segment_rows);

  // Pipe-level features standardised with the same (segment-fitted)
  // statistics so segment and pipe models share a scale.
  input.pipe_features.reserve(input.pipes.size());
  for (const net::Pipe* p : input.pipes) {
    auto encoded = encoder.EncodePipe(dataset.network, *p);
    if (!encoded.ok()) return encoded.status();
    input.pipe_features.push_back(encoder.Standardise(*encoded));
  }

  // Flat scoring-path views (CSR segment membership + row-major features),
  // derived once so every scorer shares them.
  input.segment_index = PipeSegmentIndex::FromRows(input.pipe_segment_rows);
  input.pipe_feature_matrix = FeatureMatrix::FromRows(input.pipe_features);
  return input;
}

Result<std::vector<double>> FailureModel::ScorePipes(
    const ModelInput& input, const ScoreOptions& /*options*/) {
  return ScorePipes(input);
}

}  // namespace core
}  // namespace piperisk
