#include "core/chain_runner.h"

#include <algorithm>
#include <thread>

#include "common/strings.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace piperisk {
namespace core {

int ResolveThreadCount(int num_threads, int num_chains) {
  if (num_chains < 1) num_chains = 1;
  int threads = num_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  return std::clamp(threads, 1, num_chains);
}

std::vector<stats::Rng> MakeChainRngs(std::uint64_t seed, std::uint64_t stream,
                                      int num_chains) {
  std::vector<stats::Rng> rngs;
  rngs.reserve(static_cast<size_t>(std::max(num_chains, 1)));
  rngs.emplace_back(seed, stream);
  // The spawner lives on a stream distinct from every chain-0 stream (PCG
  // increments only use the low 63 bits of `stream`, so flipping them cannot
  // collide with `stream` itself).
  stats::Rng spawner(seed, ~stream);
  for (int c = 1; c < num_chains; ++c) rngs.push_back(spawner.Fork());
  return rngs;
}

void RunChains(int num_chains, int num_threads, std::uint64_t seed,
               std::uint64_t stream,
               const std::function<void(int chain, stats::Rng* rng)>& body) {
  if (num_chains < 1) return;
  std::vector<stats::Rng> rngs = MakeChainRngs(seed, stream, num_chains);
  const int threads = ResolveThreadCount(num_threads, num_chains);
  // Chain telemetry: wall time per chain plus run/chain counters. All of it
  // happens outside the RNG streams fixed above, so instrumented runs are
  // draw-identical.
  auto& registry = telemetry::Registry::Global();
  static telemetry::Counter* const runs =
      registry.GetCounter("mcmc.chain_runs");
  static telemetry::Counter* const chains_completed =
      registry.GetCounter("mcmc.chains_completed");
  static telemetry::Histogram* const chain_wall_us = registry.GetHistogram(
      "mcmc.chain_wall_us", telemetry::DefaultTimeBucketsUs());
  runs->Increment();
  telemetry::ScopedSpan run_span("mcmc.run_chains");
  // One block per chain on the shared pool: every chain owns its RNG and its
  // result slot, so the schedule never leaks into the draws.
  ThreadPool::Shared().ParallelFor(num_chains, threads, [&](int c) {
    telemetry::ScopedTimer timer(chain_wall_us, "mcmc.chain");
    body(c, &rngs[static_cast<size_t>(c)]);
    chains_completed->Increment();
  });
}

telemetry::Counter* ChainSweepCounter(int chain) {
  return telemetry::Registry::Global().GetCounter(
      StrFormat("mcmc.chain.%d.sweeps", chain));
}

}  // namespace core
}  // namespace piperisk
