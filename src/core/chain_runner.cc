#include "core/chain_runner.h"

#include <algorithm>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace piperisk {
namespace core {

int ResolveThreadCount(int num_threads, int num_chains) {
  if (num_chains < 1) num_chains = 1;
  int threads = num_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  return std::clamp(threads, 1, num_chains);
}

std::vector<stats::Rng> MakeChainRngs(std::uint64_t seed, std::uint64_t stream,
                                      int num_chains) {
  std::vector<stats::Rng> rngs;
  rngs.reserve(static_cast<size_t>(std::max(num_chains, 1)));
  rngs.emplace_back(seed, stream);
  // The spawner lives on a stream distinct from every chain-0 stream (PCG
  // increments only use the low 63 bits of `stream`, so flipping them cannot
  // collide with `stream` itself).
  stats::Rng spawner(seed, ~stream);
  for (int c = 1; c < num_chains; ++c) rngs.push_back(spawner.Fork());
  return rngs;
}

void RunChains(int num_chains, int num_threads, std::uint64_t seed,
               std::uint64_t stream,
               const std::function<void(int chain, stats::Rng* rng)>& body) {
  if (num_chains < 1) return;
  std::vector<stats::Rng> rngs = MakeChainRngs(seed, stream, num_chains);
  const int threads = ResolveThreadCount(num_threads, num_chains);
  // Chain telemetry: wall time per chain plus run/chain counters. All of it
  // happens outside the RNG streams fixed above, so instrumented runs are
  // draw-identical.
  auto& registry = telemetry::Registry::Global();
  static telemetry::Counter* const runs =
      registry.GetCounter("mcmc.chain_runs");
  static telemetry::Counter* const chains_completed =
      registry.GetCounter("mcmc.chains_completed");
  static telemetry::Histogram* const chain_wall_us = registry.GetHistogram(
      "mcmc.chain_wall_us", telemetry::DefaultTimeBucketsUs());
  runs->Increment();
  telemetry::ScopedSpan run_span("mcmc.run_chains");
  // One block per chain on the shared pool: every chain owns its RNG and its
  // result slot, so the schedule never leaks into the draws.
  ThreadPool::Shared().ParallelFor(num_chains, threads, [&](int c) {
    telemetry::ScopedTimer timer(chain_wall_us, "mcmc.chain");
    body(c, &rngs[static_cast<size_t>(c)]);
    chains_completed->Increment();
  });
}

telemetry::Counter* ChainSweepCounter(int chain) {
  return telemetry::Registry::Global().GetCounter(
      StrFormat("mcmc.chain.%d.sweeps", chain));
}

namespace {

/// Per-chain outcome slot: each worker writes only its own entry, so the
/// parallel section needs no locking (same contract as the draw slots).
struct ChainOutcome {
  bool failed = false;
  bool resumed = false;
  bool halted = false;
  int retries = 0;
  int checkpoints = 0;
  Status fatal = Status::OK();  ///< restore rejected the snapshot: abort run
};

}  // namespace

Result<ChainRunReport> RunCheckpointedChains(const ChainRunnerOptions& options,
                                             const ChainProgram& program) {
  if (options.num_chains < 1) {
    return Status::InvalidArgument("num_chains must be >= 1");
  }
  if (options.total_sweeps < 0) {
    return Status::InvalidArgument("total_sweeps must be >= 0");
  }
  if (!program.init || !program.sweep || !program.capture || !program.restore) {
    return Status::InvalidArgument(
        "ChainProgram requires init, sweep, capture and restore callbacks");
  }
  const CheckpointConfig& ck = options.checkpoint;
  if (ck.resume && ck.dir.empty()) {
    return Status::FailedPrecondition(
        "resume requested but no checkpoint directory is set");
  }

  const int num_chains = options.num_chains;
  std::vector<stats::Rng> rngs =
      MakeChainRngs(options.seed, options.stream, num_chains);

  // Resume points are loaded serially before any parallel work so that a
  // stale or foreign snapshot aborts the whole run with one clear error
  // instead of a per-chain race.
  std::vector<std::optional<ChainCheckpoint>> resume_points(
      static_cast<size_t>(num_chains));
  if (ck.resume) {
    for (int c = 0; c < num_chains; ++c) {
      const std::string path = ChainCheckpointPath(ck.dir, ck.tag, c);
      if (!std::ifstream(path).good()) continue;  // no snapshot: fresh start
      PIPERISK_ASSIGN_OR_RETURN(ChainCheckpoint loaded,
                                LoadChainCheckpoint(path));
      if (loaded.fingerprint != options.fingerprint) {
        return Status::FailedPrecondition(StrFormat(
            "cannot resume from %s: config/seed fingerprint mismatch "
            "(snapshot %016llx vs current run %016llx) — the checkpoint was "
            "written by a run with different settings; delete it or rerun "
            "with the original configuration",
            path.c_str(),
            static_cast<unsigned long long>(loaded.fingerprint),
            static_cast<unsigned long long>(options.fingerprint)));
      }
      if (loaded.chain != c || loaded.total_sweeps != options.total_sweeps) {
        return Status::FailedPrecondition(StrFormat(
            "cannot resume from %s: snapshot is for chain %d of %d sweeps, "
            "current run wants chain %d of %d sweeps",
            path.c_str(), loaded.chain, loaded.total_sweeps, c,
            options.total_sweeps));
      }
      resume_points[static_cast<size_t>(c)] = std::move(loaded);
    }
  }

  auto& registry = telemetry::Registry::Global();
  static telemetry::Counter* const runs =
      registry.GetCounter("mcmc.chain_runs");
  static telemetry::Counter* const chains_completed =
      registry.GetCounter("mcmc.chains_completed");
  static telemetry::Histogram* const chain_wall_us = registry.GetHistogram(
      "mcmc.chain_wall_us", telemetry::DefaultTimeBucketsUs());
  static telemetry::Counter* const retry_count =
      registry.GetCounter("checkpoint.chain_retries");
  static telemetry::Counter* const failed_count =
      registry.GetCounter("checkpoint.chains_failed");
  static telemetry::Counter* const resumed_count =
      registry.GetCounter("checkpoint.chains_resumed");
  runs->Increment();
  telemetry::ScopedSpan run_span("mcmc.run_chains");

  // Heartbeats are pure observers: recorded outside every RNG stream and
  // written by a dedicated thread, so enabling them cannot move a draw.
  HeartbeatMonitor heartbeat(options.heartbeat, num_chains,
                             options.total_sweeps);
  heartbeat.SetPhase("sweep");
  heartbeat.Start();

  std::vector<ChainOutcome> outcomes(static_cast<size_t>(num_chains));
  const int threads = ResolveThreadCount(options.num_threads, num_chains);
  ThreadPool::Shared().ParallelFor(num_chains, threads, [&](int c) {
    telemetry::ScopedTimer timer(chain_wall_us, "mcmc.chain");
    ChainOutcome& out = outcomes[static_cast<size_t>(c)];
    // The pristine stream is kept so a retry with no snapshot can restart
    // the chain from scratch and still land on the canonical draw sequence.
    const stats::Rng initial_rng = rngs[static_cast<size_t>(c)];
    std::optional<ChainCheckpoint> last =
        std::move(resume_points[static_cast<size_t>(c)]);
    out.resumed = last.has_value();
    // The injected fault fires at most once across all attempts — otherwise
    // every retry would re-fail and the hook could never prove recovery.
    bool fault_pending = ck.fail_chain_after_sweeps >= 0 && ck.fail_chain == c;
    const int max_attempts = std::max(0, ck.max_chain_retries) + 1;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      try {
        stats::Rng rng = initial_rng;
        int done = 0;
        if (last.has_value()) {
          Status restored = program.restore(c, *last);
          if (!restored.ok()) {
            out.fatal = restored;
            out.failed = true;
            return;
          }
          rng = stats::Rng::FromState(last->rng);
          done = last->next_sweep;
          // Draws recorded before the snapshot point were captured by the
          // model's restore; the heartbeat trace restarts from here (live
          // R̂ then covers post-resume draws only).
          heartbeat.ResetChain(c, done, 0);
        } else {
          program.init(c);
          heartbeat.ResetChain(c, 0, 0);
        }
        while (done < options.total_sweeps) {
          program.sweep(c, done, &rng);
          ++done;
          heartbeat.ReportSweep(c, done);
          if (program.monitor) {
            double value = 0.0;
            if (program.monitor(c, done - 1, &value)) {
              heartbeat.ReportDraw(c, value);
            }
          }
          if (program.acceptance) {
            std::int64_t proposals = 0, accepted = 0;
            program.acceptance(c, &proposals, &accepted);
            heartbeat.ReportAcceptance(c, proposals, accepted);
          }
          if (fault_pending && done >= ck.fail_chain_after_sweeps) {
            fault_pending = false;
            throw std::runtime_error(StrFormat(
                "injected fault in chain %d after %d sweeps", c, done));
          }
          if (ck.every > 0 &&
              (done % ck.every == 0 || done == options.total_sweeps)) {
            ChainCheckpoint snap;
            program.capture(c, &snap);
            snap.chain = c;
            snap.next_sweep = done;
            snap.total_sweeps = options.total_sweeps;
            snap.fingerprint = options.fingerprint;
            snap.rng = rng.SaveState();
            if (!ck.dir.empty()) {
              Status saved = SaveChainCheckpoint(
                  snap, ChainCheckpointPath(ck.dir, ck.tag, c));
              if (!saved.ok()) {
                // Persistence is best-effort mid-run: the in-memory snapshot
                // still covers retries, so keep sampling.
                PIPERISK_LOG(kWarning)
                    << "chain " << c
                    << ": checkpoint write failed: " << saved.message();
              }
            }
            last = std::move(snap);
            ++out.checkpoints;
          }
          if (ck.halt_after_sweeps >= 0 && done >= ck.halt_after_sweeps &&
              done < options.total_sweeps) {
            out.halted = true;
            return;
          }
        }
        return;  // chain completed
      } catch (const std::exception& e) {
        ++out.retries;
        retry_count->Increment();
        const bool will_retry = attempt + 1 < max_attempts;
        PIPERISK_LOG(kWarning)
            << "chain " << c << " failed: " << e.what() << "; "
            << (will_retry
                    ? (last.has_value()
                           ? StrFormat("retrying from sweep %d checkpoint",
                                       last->next_sweep)
                           : std::string("retrying from scratch"))
                    : std::string("retries exhausted"));
      }
    }
    out.failed = true;
    heartbeat.ReportChainFailed(c);
  });
  heartbeat.SetPhase("done");
  heartbeat.Stop();

  ChainRunReport report;
  bool halted = false;
  for (int c = 0; c < num_chains; ++c) {
    const ChainOutcome& out = outcomes[static_cast<size_t>(c)];
    if (!out.fatal.ok()) return out.fatal;
    report.checkpoints_written += out.checkpoints;
    report.chain_retries += out.retries;
    if (out.halted) halted = true;
    if (out.failed) {
      report.failed_chains.push_back(c);
      failed_count->Increment();
      continue;
    }
    if (out.resumed) {
      ++report.chains_resumed;
      resumed_count->Increment();
    }
    if (!out.halted) chains_completed->Increment();
  }
  if (halted) {
    return Status::Internal(StrFormat(
        "run halted by checkpoint halt hook after %d sweeps (simulated crash; "
        "snapshots for completed intervals remain on disk)",
        ck.halt_after_sweeps));
  }
  if (static_cast<int>(report.failed_chains.size()) == num_chains) {
    return Status::Internal(StrFormat(
        "all %d chains failed after %d retries each; last resort checkpoints "
        "(if any) remain in the checkpoint directory",
        num_chains, std::max(0, ck.max_chain_retries)));
  }
  if (!report.failed_chains.empty()) {
    PIPERISK_LOG(kWarning) << report.failed_chains.size() << " of "
                           << num_chains
                           << " chains failed permanently; pooling the "
                              "surviving chains only";
  }
  return report;
}

}  // namespace core
}  // namespace piperisk
