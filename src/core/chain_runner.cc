#include "core/chain_runner.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace piperisk {
namespace core {

int ResolveThreadCount(int num_threads, int num_chains) {
  if (num_chains < 1) num_chains = 1;
  int threads = num_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  return std::clamp(threads, 1, num_chains);
}

std::vector<stats::Rng> MakeChainRngs(std::uint64_t seed, std::uint64_t stream,
                                      int num_chains) {
  std::vector<stats::Rng> rngs;
  rngs.reserve(static_cast<size_t>(std::max(num_chains, 1)));
  rngs.emplace_back(seed, stream);
  // The spawner lives on a stream distinct from every chain-0 stream (PCG
  // increments only use the low 63 bits of `stream`, so flipping them cannot
  // collide with `stream` itself).
  stats::Rng spawner(seed, ~stream);
  for (int c = 1; c < num_chains; ++c) rngs.push_back(spawner.Fork());
  return rngs;
}

void RunChains(int num_chains, int num_threads, std::uint64_t seed,
               std::uint64_t stream,
               const std::function<void(int chain, stats::Rng* rng)>& body) {
  if (num_chains < 1) return;
  std::vector<stats::Rng> rngs = MakeChainRngs(seed, stream, num_chains);
  const int threads = ResolveThreadCount(num_threads, num_chains);
  if (threads == 1) {
    for (int c = 0; c < num_chains; ++c) body(c, &rngs[static_cast<size_t>(c)]);
    return;
  }
  std::atomic<int> next{0};
  auto worker = [&]() {
    while (true) {
      int c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chains) return;
      body(c, &rngs[static_cast<size_t>(c)]);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
}

}  // namespace core
}  // namespace piperisk
