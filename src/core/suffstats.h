#ifndef PIPERISK_CORE_SUFFSTATS_H_
#define PIPERISK_CORE_SUFFSTATS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace piperisk {
namespace core {

/// Dispatch policy for the explicitly vectorised column kernels. `kAuto`
/// uses the AVX2 combine loop when the binary carries it AND the CPU
/// supports it; `kOff` forces the portable scalar loop. Both produce
/// bit-identical output (the vector path only reorders independent lanes of
/// IEEE adds/subs, never the association within a lane), so the switch is a
/// debugging/benchmarking aid, not a correctness knob.
enum class SimdMode { kAuto, kOff };

/// Process-wide SIMD policy (relaxed atomic; set from the CLI before
/// fitting). Defaults to kAuto.
void SetSimdMode(SimdMode mode);
SimdMode GetSimdMode();

/// True when the AVX2 kernel was compiled in and the CPU reports AVX2.
bool SimdKernelAvailable();

/// Sufficient-statistic deduplication for the collapsed beta–Bernoulli
/// likelihood at the heart of the HBP/DPMHBP samplers.
///
/// A segment (or pipe) enters the collapsed likelihood only through its
/// triple (k, n, multiplier): rows with identical triples are exchangeable
/// and have bit-identical log marginals under ANY group rate q. Real
/// networks have far fewer distinct triples than rows (k is a small count,
/// n a handful of observation years, and the covariate multiplier is shared
/// by segments with identical features), so the samplers evaluate the
/// expensive `lgamma` ladder once per equivalence class instead of once per
/// row.
///
/// The class also pre-computes, per class, the rate-independent part of the
/// log marginal: with the (mean, concentration) parameterisation a + b is
/// always the shared concentration c, so
///   lgamma(a + b) - lgamma(a + b + n) = lgamma(c) - lgamma(c + n)
/// is constant in q and is hoisted out of the inner loop, cutting the
/// per-evaluation cost from six lgammas to four.
class SuffStatClasses {
 public:
  SuffStatClasses() = default;

  /// Builds the equivalence classes of the rows (k[i], n[i], multiplier[i])
  /// under shared lower-level concentration `c`. Class ids are assigned in
  /// order of first appearance, so the layout is deterministic. The tilted
  /// prior mean clamp(q * multiplier) uses [mean_floor, mean_ceil], matching
  /// the samplers' TiltedMean.
  static SuffStatClasses Build(const std::vector<double>& k,
                               const std::vector<double>& n,
                               const std::vector<double>& multiplier, double c,
                               double mean_floor = 1e-7,
                               double mean_ceil = 1.0 - 1e-7);

  size_t num_classes() const { return k_.size(); }
  size_t num_rows() const { return row_class_.size(); }

  /// Equivalence class of a row.
  size_t row_class(size_t row) const { return row_class_[row]; }
  /// Number of rows collapsed into a class.
  int class_rows(size_t cls) const { return class_rows_[cls]; }

  double class_k(size_t cls) const { return k_[cls]; }
  double class_n(size_t cls) const { return n_[cls]; }
  double class_multiplier(size_t cls) const { return multiplier_[cls]; }

  /// Collapsed log marginal of class `cls` under group rate q, equal (up to
  /// floating-point re-association) to
  ///   LogMarginalNoBinom(k, n, c * mean, c * (1 - mean)),
  ///   mean = clamp(q * multiplier)
  /// but using the hoisted per-class constant (4 lgammas, not 6). Classes
  /// whose k is a small integer — every real failure history — use the
  /// rising-factorial identity lgamma(a + k) - lgamma(a) = sum_j log(a + j),
  /// which costs k plain logs, leaving 2 lgammas (and none of them for the
  /// failure-free k = 0 majority).
  double ClassLogLik(size_t cls, double q) const;

  /// Fills out[cls] = ClassLogLik(cls, q) for every class. `out` is resized
  /// once and reused by callers (no per-call allocation after warm-up).
  /// Scalar reference implementation — FillColumnBatch is pinned against it
  /// bit-for-bit.
  void FillColumn(double q, std::vector<double>* out) const;

  /// Reusable per-thread scratch for FillColumnBatch: the cumulative
  /// rising-factorial ladder and the memoised per-offset lgamma table. One
  /// instance per calling thread; contents are call-local.
  struct ColumnScratch {
    std::vector<double> rising;
    std::vector<double> lgamma_off;
    std::vector<double> slow;
  };

  /// Batched FillColumn: walks classes grouped by exact multiplier bits, so
  /// each group shares one (a, b) pair, one lgamma(b), one cumulative
  /// rising-factorial ladder (exactly the scalar ladder's left-to-right
  /// partial sums), and one memoised lgamma(b + offset) entry per distinct
  /// offset = n - k. The final combine is a pure gather + three IEEE
  /// adds/subs per class — auto-vectorisable, with an explicit AVX2 path
  /// when available — and every element is bit-identical to FillColumn.
  void FillColumnBatch(double q, std::vector<double>* out,
                       ColumnScratch* scratch) const;

 private:
  /// Classes sharing one exact multiplier value: one tilted mean per group.
  struct MultGroup {
    double multiplier = 1.0;
    std::size_t begin = 0, end = 0;            // range in grouped_* arrays
    std::size_t off_begin = 0, off_end = 0;    // range in offsets_
    std::size_t slow_begin = 0, slow_end = 0;  // range in slow_* arrays
    int max_ki = 0;  // widest rising-factorial ladder in the group
  };

  std::vector<double> k_;
  std::vector<double> n_;
  std::vector<double> multiplier_;
  /// Hoisted lgamma(c) - lgamma(c + n) per class.
  std::vector<double> log_norm_const_;
  /// k as a small integer for the rising-factorial fast path, or -1 when k
  /// is fractional / too large and the 4-lgamma form must be used.
  std::vector<int> k_int_;
  std::vector<int> class_rows_;
  std::vector<size_t> row_class_;
  double c_ = 1.0;
  double mean_floor_ = 1e-7;
  double mean_ceil_ = 1.0 - 1e-7;

  /// Batch layout (built once in Build): SoA views of the integer-k classes
  /// grouped by multiplier, plus the fractional-k stragglers per group.
  std::vector<MultGroup> mult_groups_;
  std::vector<std::uint32_t> grouped_cls_;   // absolute class id
  std::vector<std::int32_t> grouped_ki_;     // integer k (ladder index)
  std::vector<std::uint32_t> grouped_oidx_;  // group-relative offset index
  std::vector<double> grouped_lnc_;          // hoisted log-norm constant
  std::vector<double> offsets_;              // distinct n - k per group
  std::vector<std::uint32_t> slow_cls_;      // classes with fractional k
  std::vector<double> slow_k_;
  std::vector<double> slow_n_;
  std::vector<double> slow_lnc_;
};

/// Versioned per-sweep likelihood cache: one column of class log-likelihoods
/// per sampler group, keyed by the group's rate version. A column is
/// recomputed only when the group's version differs from the cached one —
/// i.e. only when a Metropolis step actually moved the rate or a new table
/// was seated — so groups whose rate did not change pay zero lgammas on the
/// next CRP sweep.
class GroupLikelihoodCache {
 public:
  explicit GroupLikelihoodCache(const SuffStatClasses* classes)
      : classes_(classes) {}

  /// The column for group `g` whose current rate is `q`, identified by
  /// `version` (bump the version whenever the group's rate changes). Grows
  /// to accommodate new groups on demand.
  const std::vector<double>& Column(size_t g, std::uint64_t version, double q) {
    if (g < slots_.size() && slots_[g].version == version) {
      ++hits_;  // plain member: the cache is chain-confined, see hits()
      return slots_[g].col;
    }
    return Refresh(g, version, q);
  }

  /// Lookup statistics since construction. The cache is confined to one
  /// sampler chain, so these are plain (free) increments; chains flush them
  /// into the process-wide telemetry registry when the fit completes.
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

  // --- Parallel prefetch API (within-chain sweep partitioning) ---
  //
  // The serial coordinator calls EnsureSlots + NeedsRefresh, hands the stale
  // groups to ParallelFor where each block calls RefreshSlot for DISTINCT g
  // with its own scratch, then tallies the hit/miss split serially. Slots
  // never move during the parallel section, so concurrent RefreshSlot calls
  // touch disjoint memory.

  /// Grows the slot table to cover groups [0, count). Serial only.
  void EnsureSlots(size_t count) {
    if (count > slots_.size()) slots_.resize(count);
  }

  /// True when group g's cached column is not at `version`.
  bool NeedsRefresh(size_t g, std::uint64_t version) const {
    return g >= slots_.size() || slots_[g].version != version;
  }

  /// Recomputes group g's column at (version, q) via the batch kernel.
  /// Thread-safe for distinct g after EnsureSlots; does NOT touch the
  /// hit/miss tallies (use TallyLookups from the serial section).
  void RefreshSlot(size_t g, std::uint64_t version, double q,
                   SuffStatClasses::ColumnScratch* scratch) {
    classes_->FillColumnBatch(q, &slots_[g].col, scratch);
    slots_[g].version = version;
  }

  /// Read-only access to a column known to be fresh.
  const std::vector<double>& PeekColumn(size_t g) const {
    return slots_[g].col;
  }

  /// Serial accounting for lookups served by the parallel prefetch.
  void TallyLookups(std::uint64_t hits, std::uint64_t misses) {
    hits_ += hits;
    misses_ += misses;
  }

 private:
  static constexpr std::uint64_t kEmpty =
      std::numeric_limits<std::uint64_t>::max();

  const std::vector<double>& Refresh(size_t g, std::uint64_t version, double q);

  struct Slot {
    std::uint64_t version = kEmpty;
    std::vector<double> col;
  };
  const SuffStatClasses* classes_;
  std::vector<Slot> slots_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  /// Scratch for the serial Refresh path (the cache is chain-confined).
  SuffStatClasses::ColumnScratch serial_scratch_;
};

}  // namespace core
}  // namespace piperisk

#endif  // PIPERISK_CORE_SUFFSTATS_H_
