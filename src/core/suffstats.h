#ifndef PIPERISK_CORE_SUFFSTATS_H_
#define PIPERISK_CORE_SUFFSTATS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace piperisk {
namespace core {

/// Sufficient-statistic deduplication for the collapsed beta–Bernoulli
/// likelihood at the heart of the HBP/DPMHBP samplers.
///
/// A segment (or pipe) enters the collapsed likelihood only through its
/// triple (k, n, multiplier): rows with identical triples are exchangeable
/// and have bit-identical log marginals under ANY group rate q. Real
/// networks have far fewer distinct triples than rows (k is a small count,
/// n a handful of observation years, and the covariate multiplier is shared
/// by segments with identical features), so the samplers evaluate the
/// expensive `lgamma` ladder once per equivalence class instead of once per
/// row.
///
/// The class also pre-computes, per class, the rate-independent part of the
/// log marginal: with the (mean, concentration) parameterisation a + b is
/// always the shared concentration c, so
///   lgamma(a + b) - lgamma(a + b + n) = lgamma(c) - lgamma(c + n)
/// is constant in q and is hoisted out of the inner loop, cutting the
/// per-evaluation cost from six lgammas to four.
class SuffStatClasses {
 public:
  SuffStatClasses() = default;

  /// Builds the equivalence classes of the rows (k[i], n[i], multiplier[i])
  /// under shared lower-level concentration `c`. Class ids are assigned in
  /// order of first appearance, so the layout is deterministic. The tilted
  /// prior mean clamp(q * multiplier) uses [mean_floor, mean_ceil], matching
  /// the samplers' TiltedMean.
  static SuffStatClasses Build(const std::vector<double>& k,
                               const std::vector<double>& n,
                               const std::vector<double>& multiplier, double c,
                               double mean_floor = 1e-7,
                               double mean_ceil = 1.0 - 1e-7);

  size_t num_classes() const { return k_.size(); }
  size_t num_rows() const { return row_class_.size(); }

  /// Equivalence class of a row.
  size_t row_class(size_t row) const { return row_class_[row]; }
  /// Number of rows collapsed into a class.
  int class_rows(size_t cls) const { return class_rows_[cls]; }

  double class_k(size_t cls) const { return k_[cls]; }
  double class_n(size_t cls) const { return n_[cls]; }
  double class_multiplier(size_t cls) const { return multiplier_[cls]; }

  /// Collapsed log marginal of class `cls` under group rate q, equal (up to
  /// floating-point re-association) to
  ///   LogMarginalNoBinom(k, n, c * mean, c * (1 - mean)),
  ///   mean = clamp(q * multiplier)
  /// but using the hoisted per-class constant (4 lgammas, not 6). Classes
  /// whose k is a small integer — every real failure history — use the
  /// rising-factorial identity lgamma(a + k) - lgamma(a) = sum_j log(a + j),
  /// which costs k plain logs, leaving 2 lgammas (and none of them for the
  /// failure-free k = 0 majority).
  double ClassLogLik(size_t cls, double q) const;

  /// Fills out[cls] = ClassLogLik(cls, q) for every class. `out` is resized
  /// once and reused by callers (no per-call allocation after warm-up).
  void FillColumn(double q, std::vector<double>* out) const;

 private:
  std::vector<double> k_;
  std::vector<double> n_;
  std::vector<double> multiplier_;
  /// Hoisted lgamma(c) - lgamma(c + n) per class.
  std::vector<double> log_norm_const_;
  /// k as a small integer for the rising-factorial fast path, or -1 when k
  /// is fractional / too large and the 4-lgamma form must be used.
  std::vector<int> k_int_;
  std::vector<int> class_rows_;
  std::vector<size_t> row_class_;
  double c_ = 1.0;
  double mean_floor_ = 1e-7;
  double mean_ceil_ = 1.0 - 1e-7;
};

/// Versioned per-sweep likelihood cache: one column of class log-likelihoods
/// per sampler group, keyed by the group's rate version. A column is
/// recomputed only when the group's version differs from the cached one —
/// i.e. only when a Metropolis step actually moved the rate or a new table
/// was seated — so groups whose rate did not change pay zero lgammas on the
/// next CRP sweep.
class GroupLikelihoodCache {
 public:
  explicit GroupLikelihoodCache(const SuffStatClasses* classes)
      : classes_(classes) {}

  /// The column for group `g` whose current rate is `q`, identified by
  /// `version` (bump the version whenever the group's rate changes). Grows
  /// to accommodate new groups on demand.
  const std::vector<double>& Column(size_t g, std::uint64_t version, double q) {
    if (g < slots_.size() && slots_[g].version == version) {
      ++hits_;  // plain member: the cache is chain-confined, see hits()
      return slots_[g].col;
    }
    return Refresh(g, version, q);
  }

  /// Lookup statistics since construction. The cache is confined to one
  /// sampler chain, so these are plain (free) increments; chains flush them
  /// into the process-wide telemetry registry when the fit completes.
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  static constexpr std::uint64_t kEmpty =
      std::numeric_limits<std::uint64_t>::max();

  const std::vector<double>& Refresh(size_t g, std::uint64_t version, double q);

  struct Slot {
    std::uint64_t version = kEmpty;
    std::vector<double> col;
  };
  const SuffStatClasses* classes_;
  std::vector<Slot> slots_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace core
}  // namespace piperisk

#endif  // PIPERISK_CORE_SUFFSTATS_H_
