// Renewal planning: close the loop from the paper's introduction. The
// preventative strategy is (1) rank pipes by failure risk, (2) inspect /
// renew under a budget. This example tunes the DPMHBP's concentration on an
// internal validation year, fits the tuned model, and turns its failure
// probabilities into a costed multi-year renewal programme.
//
//   ./build/examples/renewal_planning

#include <cstdio>

#include "core/dpmhbp.h"
#include "data/failure_simulator.h"
#include "eval/planning.h"
#include "eval/tuning.h"

using namespace piperisk;

int main() {
  data::RegionConfig config = data::RegionConfig::Tiny(55);
  config.num_pipes = 2500;
  config.cwm_fraction = 0.3;
  config.target_failures_all = 1500.0;
  config.target_failures_cwm = 300.0;
  auto dataset = data::GenerateRegion(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  // 1. Tune the hierarchy concentration on the last training year.
  eval::TuningConfig tuning;
  tuning.base.burn_in = 30;
  tuning.base.samples = 60;
  auto tuned = eval::TuneHierarchy(*dataset, data::TemporalSplit::Paper(),
                                   net::PipeCategory::kCriticalMain,
                                   net::FeatureConfig::DrinkingWater(), tuning);
  if (!tuned.ok()) {
    std::fprintf(stderr, "%s\n", tuned.status().ToString().c_str());
    return 1;
  }
  std::printf("tuned concentration grid (validation AUC on the held-out "
              "training year):\n");
  for (const auto& point : tuned->grid) {
    std::printf("  c=%5.1f -> %.2f%%%s\n", point.c, point.auc * 100.0,
                point.c == tuned->best.c ? "  <- selected" : "");
  }

  // 2. Final fit on the full training window with the tuned config.
  auto input = core::ModelInput::Build(
      *dataset, data::TemporalSplit::Paper(), net::PipeCategory::kCriticalMain,
      net::FeatureConfig::DrinkingWater());
  if (!input.ok()) return 1;
  core::DpmhbpConfig model_config;
  model_config.hierarchy = tuned->best;
  core::DpmhbpModel model(model_config);
  if (Status st = model.Fit(*input); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto probabilities = model.ScorePipes(*input);
  if (!probabilities.ok()) return 1;

  // 3. Budget-constrained renewal programme.
  eval::PlanningConfig planning;
  planning.horizon_years = 6;
  planning.annual_budget = 120000.0;
  auto plan = eval::PlanRenewals(*input, *probabilities, planning);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }

  std::printf("\nrenewal programme (%d-year horizon, %.0f budget/yr):\n",
              planning.horizon_years, planning.annual_budget);
  for (int y = 0; y < planning.horizon_years; ++y) {
    std::printf("  year %d: %d pipes renewed\n", y + 1,
                plan->ActionsInYear(y));
  }
  std::printf(
      "\ntotal programme cost     : %10.0f\n"
      "expected failures avoided: %10.1f  (%.1f -> %.1f)\n"
      "net benefit              : %10.0f\n",
      plan->total_cost,
      plan->expected_failures_without - plan->expected_failures_with,
      plan->expected_failures_without, plan->expected_failures_with,
      plan->net_benefit);
  return 0;
}
