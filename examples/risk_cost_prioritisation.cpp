// Risk-cost prioritisation: the full preventative-maintenance decision from
// the paper's introduction. Failure *probability* comes from the DPMHBP;
// failure *consequence* comes from the network topology (bridge pipes with
// no supply redundancy isolate downstream demand). Pipes are ranked by
// expected cost = P(fail) x (repair + interruption), which can reorder the
// pure-probability ranking substantially.
//
//   ./build/examples/risk_cost_prioritisation

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/dpmhbp.h"
#include "data/failure_simulator.h"
#include "net/topology.h"

using namespace piperisk;

int main() {
  data::RegionConfig config = data::RegionConfig::Tiny(77);
  config.num_pipes = 1500;
  config.connect_fraction = 0.85;  // grow a connected tree-and-loop network
  config.cwm_fraction = 0.3;
  config.target_failures_all = 850.0;
  config.target_failures_cwm = 160.0;
  auto dataset = data::GenerateRegion(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  auto input = core::ModelInput::Build(
      *dataset, data::TemporalSplit::Paper(), net::PipeCategory::kCriticalMain,
      net::FeatureConfig::DrinkingWater());
  if (!input.ok()) return 1;

  // 1. Failure probabilities from the DPMHBP.
  core::DpmhbpConfig model_config;
  model_config.hierarchy.burn_in = 40;
  model_config.hierarchy.samples = 80;
  core::DpmhbpModel model(model_config);
  if (!model.Fit(*input).ok()) return 1;
  auto probabilities = model.ScorePipes(*input);
  if (!probabilities.ok()) return 1;

  // 2. Consequence from topology: bridges isolate demand.
  auto graph = net::NetworkGraph::Build(dataset->network, /*snap_radius_m=*/5.0);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "graph: %zu junctions, %zu pipes, %d components, %zu bridge pipes\n",
      graph->nodes().size(), graph->edges().size(), graph->num_components(),
      graph->BridgeEdges().size());

  net::CostModel cost;
  cost.repair_cost = 12000.0;
  cost.interruption_cost_per_m = 80.0;
  auto expected_cost =
      net::ExpectedFailureCost(*graph, input->pipes, *probabilities, cost);
  if (!expected_cost.ok()) return 1;

  // 3. Compare the two rankings.
  auto top10 = [&](const std::vector<double>& score) {
    std::vector<size_t> order(score.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return score[a] > score[b]; });
    order.resize(10);
    return order;
  };
  auto by_prob = top10(*probabilities);
  auto by_cost = top10(*expected_cost);

  std::printf("\n%4s | %-26s | %-34s\n", "rank", "by probability",
              "by expected cost");
  std::printf("%4s | %10s %12s | %10s %12s %9s\n", "", "pipe", "P(fail)",
              "pipe", "E[cost]", "P(fail)");
  for (size_t r = 0; r < 10; ++r) {
    std::printf("%4zu | %10lld %12.4f | %10lld %12.0f %9.4f\n", r + 1,
                static_cast<long long>(input->pipes[by_prob[r]]->id),
                (*probabilities)[by_prob[r]],
                static_cast<long long>(input->pipes[by_cost[r]]->id),
                (*expected_cost)[by_cost[r]],
                (*probabilities)[by_cost[r]]);
  }

  // How different are the two programmes?
  size_t overlap = 0;
  for (size_t a : by_prob) {
    for (size_t b : by_cost) {
      if (a == b) ++overlap;
    }
  }
  std::printf(
      "\noverlap of the two top-10 programmes: %zu/10 - consequence-aware\n"
      "prioritisation shifts budget toward non-redundant (bridge) mains.\n",
      overlap);
  return 0;
}
