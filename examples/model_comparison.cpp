// Full model zoo on one dataset: the paper's five compared approaches plus
// the extended suite (logistic regression, the three classic age-only
// curves, and the direct-AUC evolution strategy ranker), in one table.
//
//   ./build/examples/model_comparison

#include <cstdio>

#include "common/strings.h"
#include "common/table.h"
#include "data/failure_simulator.h"
#include "eval/experiment.h"

using namespace piperisk;

int main() {
  data::RegionConfig config = data::RegionConfig::Tiny(33);
  config.num_pipes = 2500;
  config.cwm_fraction = 0.3;
  config.target_failures_all = 1500.0;
  config.target_failures_cwm = 280.0;
  auto dataset = data::GenerateRegion(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  eval::ExperimentConfig experiment_config;
  experiment_config.include_extended = true;
  // Lighter MCMC for the demo; the exp_* binaries use the full defaults.
  experiment_config.hierarchy.burn_in = 40;
  experiment_config.hierarchy.samples = 80;
  auto experiment = eval::RunRegionExperiment(*dataset, experiment_config);
  if (!experiment.ok()) {
    std::fprintf(stderr, "%s\n", experiment.status().ToString().c_str());
    return 1;
  }

  std::printf("model comparison on a %zu-pipe synthetic region (CWM only)\n\n",
              dataset->network.num_pipes());
  TextTable table({"Model", "AUC(100%)", "AUC(1%)", "detect@1% length"});
  for (const auto& run : experiment->runs) {
    table.AddRow({run.name,
                  StrFormat("%6.2f%%", run.auc_full.normalised * 100.0),
                  StrFormat("%6.2f%%", run.auc_1pct.normalised * 100.0),
                  StrFormat("%6.2f%%", run.detected_at_1pct_length * 100.0)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "(HBP rows are the fixed expert groupings; the experiment harness\n"
      " reports the best of them as the paper's HBP entry)\n");
  return 0;
}
