// Quickstart: generate a small synthetic region, fit the DPMHBP model, and
// print the ten highest-risk critical mains with their test-year outcomes.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/dpmhbp.h"
#include "data/failure_simulator.h"
#include "eval/ranking_metrics.h"

using namespace piperisk;

int main() {
  // 1. Data: a miniature region (or load your own via data::LoadRegionDataset).
  data::RegionConfig config = data::RegionConfig::Tiny(/*seed=*/1);
  config.num_pipes = 1200;
  config.target_failures_all = 700.0;
  config.target_failures_cwm = 120.0;
  auto dataset = data::GenerateRegion(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "data generation failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  // 2. Build the shared model input: train on 1998-2008, test on 2009,
  //    critical water mains only, the paper's drinking-water feature set.
  auto input = core::ModelInput::Build(
      *dataset, data::TemporalSplit::Paper(),
      net::PipeCategory::kCriticalMain, net::FeatureConfig::DrinkingWater());
  if (!input.ok()) {
    std::fprintf(stderr, "input build failed: %s\n",
                 input.status().ToString().c_str());
    return 1;
  }
  std::printf("region %s: %zu critical mains, %zu segments\n",
              dataset->network.region().name.c_str(), input->num_pipes(),
              input->num_segments());

  // 3. Fit the Dirichlet process mixture of hierarchical beta processes.
  core::DpmhbpConfig model_config;
  model_config.hierarchy.burn_in = 40;
  model_config.hierarchy.samples = 80;
  core::DpmhbpModel model(model_config);
  if (Status st = model.Fit(*input); !st.ok()) {
    std::fprintf(stderr, "fit failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("posterior mean number of segment groups: %.1f\n",
              model.mean_num_groups());

  // 4. Rank pipes by predicted failure risk.
  auto scores = model.ScorePipes(*input);
  if (!scores.ok()) {
    std::fprintf(stderr, "scoring failed: %s\n",
                 scores.status().ToString().c_str());
    return 1;
  }

  std::vector<size_t> order(scores->size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return (*scores)[a] > (*scores)[b];
  });

  std::printf("\ntop 10 predicted high-risk pipes (test year %d):\n",
              input->split.test_year);
  std::printf("%6s %10s %8s %6s %12s %s\n", "rank", "pipe", "risk", "laid",
              "material", "failed-in-test?");
  for (size_t r = 0; r < 10 && r < order.size(); ++r) {
    size_t i = order[r];
    const net::Pipe& p = *input->pipes[i];
    std::printf("%6zu %10lld %8.4f %6d %12s %s\n", r + 1,
                static_cast<long long>(p.id), (*scores)[i], p.laid_year,
                std::string(ToString(p.material)).c_str(),
                input->outcomes[i].test_failures > 0 ? "YES" : "no");
  }

  // 5. Summarise ranking quality.
  std::vector<int> failures(input->num_pipes());
  std::vector<double> lengths(input->num_pipes());
  for (size_t i = 0; i < input->num_pipes(); ++i) {
    failures[i] = input->outcomes[i].test_failures;
    lengths[i] = input->outcomes[i].length_m;
  }
  auto scored = eval::ZipScores(*scores, failures, lengths);
  if (scored.ok()) {
    auto auc = eval::DetectionAuc(*scored, eval::BudgetMode::kPipeCount, 1.0);
    if (auc.ok()) {
      std::printf("\ndetection AUC over the full network: %.2f%%\n",
                  auc->normalised * 100.0);
    }
  }
  return 0;
}
