// The utility's annual workflow from the paper's introduction: rank all
// critical water mains by failure risk, select an inspection programme
// limited to 1% of network length, and report what the programme would have
// caught in the held-out year.
//
//   ./build/examples/critical_mains_prioritisation

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "core/dpmhbp.h"
#include "data/failure_simulator.h"
#include "eval/ranking_metrics.h"

using namespace piperisk;

int main() {
  // A mid-sized region so the example runs in seconds; swap in
  // data::RegionConfig::RegionA() for the full-scale study.
  data::RegionConfig config = data::RegionConfig::Tiny(11);
  config.num_pipes = 2500;
  config.cwm_fraction = 0.3;
  config.target_failures_all = 1400.0;
  config.target_failures_cwm = 260.0;
  auto dataset = data::GenerateRegion(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  auto input = core::ModelInput::Build(
      *dataset, data::TemporalSplit::Paper(), net::PipeCategory::kCriticalMain,
      net::FeatureConfig::DrinkingWater());
  if (!input.ok()) {
    std::fprintf(stderr, "%s\n", input.status().ToString().c_str());
    return 1;
  }

  core::DpmhbpModel model;
  if (Status st = model.Fit(*input); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto scores = model.ScorePipes(*input);
  if (!scores.ok()) {
    std::fprintf(stderr, "%s\n", scores.status().ToString().c_str());
    return 1;
  }

  // Select the inspection programme: greedy by risk until 1% of CWM length.
  double total_length = 0.0;
  for (const auto& o : input->outcomes) total_length += o.length_m;
  const double budget_m = 0.01 * total_length;

  std::vector<size_t> order(input->num_pipes());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return (*scores)[a] > (*scores)[b]; });

  std::printf(
      "inspection programme for %d (budget: %.1f km of %.1f km = 1%%)\n\n",
      input->split.test_year + 1, budget_m / 1000.0, total_length / 1000.0);
  std::printf("%5s %10s %9s %8s %7s %10s\n", "#", "pipe", "risk", "len(m)",
              "laid", "material");

  double spent = 0.0;
  int caught = 0, programme_size = 0;
  for (size_t idx : order) {
    if (spent + input->outcomes[idx].length_m > budget_m) break;
    spent += input->outcomes[idx].length_m;
    ++programme_size;
    caught += input->outcomes[idx].test_failures;
    const net::Pipe& p = *input->pipes[idx];
    if (programme_size <= 15) {
      std::printf("%5d %10lld %9.4f %8.0f %7d %10s\n", programme_size,
                  static_cast<long long>(p.id), (*scores)[idx],
                  input->outcomes[idx].length_m, p.laid_year,
                  std::string(ToString(p.material)).c_str());
    }
  }
  if (programme_size > 15) {
    std::printf("%5s ... %d more pipes ...\n", "", programme_size - 15);
  }

  int total_failures = 0;
  for (const auto& o : input->outcomes) total_failures += o.test_failures;
  std::printf(
      "\nprogramme: %d pipes, %.1f km; would have caught %d of %d (%.1f%%)\n"
      "of the held-out year's CWM failures - vs ~1%% for random inspection.\n",
      programme_size, spent / 1000.0, caught, total_failures,
      total_failures > 0 ? 100.0 * caught / total_failures : 0.0);
  return 0;
}
