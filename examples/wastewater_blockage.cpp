// Waste-water scenario: chokes (blockages) driven by tree-root intrusion.
// Demonstrates the domain-knowledge features of Sect. 18.4.2 - tree canopy
// and soil moisture - end to end: generate a sewer network, show the
// factor/choke correlations, then fit the DPMHBP with the waste-water
// feature set and evaluate choke detection.
//
//   ./build/examples/wastewater_blockage

#include <cstdio>
#include <vector>

#include "core/dpmhbp.h"
#include "data/wastewater.h"
#include "eval/ranking_metrics.h"
#include "stats/descriptive.h"

using namespace piperisk;

int main() {
  data::WastewaterConfig config;
  config.num_pipes = 2000;
  config.target_chokes = 1800.0;
  auto dataset = data::GenerateWastewaterRegion(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("sewer network: %zu pipes, %zu segments, %zu chokes (%d-%d)\n",
              dataset->network.num_pipes(), dataset->network.num_segments(),
              dataset->failures.size(), config.observe_first,
              config.observe_last);

  // Domain-knowledge check: canopy and moisture correlate with chokes.
  {
    std::vector<double> canopy, moisture, rate;
    int years = config.observe_last - config.observe_first + 1;
    for (const net::PipeSegment& s : dataset->network.segments()) {
      canopy.push_back(s.tree_canopy_fraction);
      moisture.push_back(s.soil_moisture);
      rate.push_back(dataset->failures.CountForSegment(
                         s.id, config.observe_first, config.observe_last) /
                     std::max(s.LengthM() / 1000.0 * years, 1e-6));
    }
    std::printf("Spearman(canopy, choke rate)   = %+.3f\n",
                stats::SpearmanCorrelation(canopy, rate));
    std::printf("Spearman(moisture, choke rate) = %+.3f\n",
                stats::SpearmanCorrelation(moisture, rate));
  }

  // Fit with the waste-water feature set (canopy + moisture included).
  auto input = core::ModelInput::Build(*dataset, data::TemporalSplit::Paper(),
                                       net::PipeCategory::kWasteWater,
                                       net::FeatureConfig::WasteWater());
  if (!input.ok()) {
    std::fprintf(stderr, "%s\n", input.status().ToString().c_str());
    return 1;
  }
  core::DpmhbpConfig model_config;
  model_config.hierarchy.burn_in = 40;
  model_config.hierarchy.samples = 80;
  core::DpmhbpModel model(model_config);
  if (Status st = model.Fit(*input); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto scores = model.ScorePipes(*input);
  if (!scores.ok()) {
    std::fprintf(stderr, "%s\n", scores.status().ToString().c_str());
    return 1;
  }

  std::vector<int> failures(input->num_pipes());
  std::vector<double> lengths(input->num_pipes());
  for (size_t i = 0; i < input->num_pipes(); ++i) {
    failures[i] = input->outcomes[i].test_failures;
    lengths[i] = input->outcomes[i].length_m;
  }
  auto scored = eval::ZipScores(*scores, failures, lengths);
  if (scored.ok()) {
    auto full = eval::DetectionAuc(*scored, eval::BudgetMode::kPipeCount, 1.0);
    auto at10 =
        eval::DetectionAtBudget(*scored, eval::BudgetMode::kPipeCount, 0.10);
    if (full.ok() && at10.ok()) {
      std::printf(
          "\nchoke detection: AUC %.2f%%; inspecting the top 10%% of sewers\n"
          "would catch %.1f%% of next year's blockages.\n",
          full->normalised * 100.0, *at10 * 100.0);
    }
  }
  return 0;
}
