// Risk-map export (the Fig. 18.9 artefact as a reusable workflow): fit the
// DPMHBP on a region, write the network + failure data as CSV and the risk
// map as GeoJSON that any GIS tool (QGIS, kepler.gl, geojson.io) renders
// with pipes coloured by risk decile and test-year failures as points.
//
//   ./build/examples/risk_map_export [output_prefix]

#include <cstdio>
#include <fstream>
#include <string>

#include "core/dpmhbp.h"
#include "data/csv_io.h"
#include "data/failure_simulator.h"
#include "eval/risk_map.h"

using namespace piperisk;

int main(int argc, char** argv) {
  const std::string prefix = argc > 1 ? argv[1] : "piperisk_demo";

  data::RegionConfig config = data::RegionConfig::Tiny(21);
  config.num_pipes = 1500;
  config.target_failures_all = 800.0;
  config.target_failures_cwm = 150.0;
  auto dataset = data::GenerateRegion(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  // Export the raw data (pipes/segments/failures CSVs).
  if (Status st = data::SaveRegionDataset(*dataset, prefix); !st.ok()) {
    std::fprintf(stderr, "csv export failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s_{meta,pipes,segments,failures}.csv\n", prefix.c_str());

  auto input = core::ModelInput::Build(
      *dataset, data::TemporalSplit::Paper(), net::PipeCategory::kCriticalMain,
      net::FeatureConfig::DrinkingWater());
  if (!input.ok()) {
    std::fprintf(stderr, "%s\n", input.status().ToString().c_str());
    return 1;
  }
  core::DpmhbpConfig model_config;
  model_config.hierarchy.burn_in = 40;
  model_config.hierarchy.samples = 80;
  core::DpmhbpModel model(model_config);
  if (Status st = model.Fit(*input); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto scores = model.ScorePipes(*input);
  if (!scores.ok()) {
    std::fprintf(stderr, "%s\n", scores.status().ToString().c_str());
    return 1;
  }

  auto geojson = eval::BuildRiskMapGeoJson(*input, *scores);
  if (!geojson.ok()) {
    std::fprintf(stderr, "%s\n", geojson.status().ToString().c_str());
    return 1;
  }
  const std::string map_path = prefix + "_risk_map.geojson";
  std::ofstream out(map_path, std::ios::trunc);
  out << *geojson;
  out.close();

  auto summary = eval::SummariseRiskMap(*input, *scores, 0.10);
  if (summary.ok()) {
    std::printf(
        "wrote %s (%zu bytes)\n"
        "top-decile pipes carry %d of %d test-year failures (%.1f%%)\n"
        "style hint: colour by feature property 'risk_decile' (1 = red)\n",
        map_path.c_str(), geojson->size(), summary->failures_on_top,
        summary->total_test_failures, summary->HitRate() * 100.0);
  }
  return 0;
}
