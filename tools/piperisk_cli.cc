// piperisk — command-line front end for the library.
//
// Commands:
//   generate  --region A|B|C|tiny [--seed N] [--pipes N] [--connect F]
//             --out PREFIX
//       Generate a synthetic region (network + failures) and write the CSV
//       bundle PREFIX_{meta,pipes,segments,failures}.csv.
//
//   generate  --regions N --out-dir DIR [--seed N] [--pipes N] [--connect F]
//             [--threads T]
//       Sharded form: generate N independently seeded regions and write
//       them as binary columnar shards DIR/shard-NNNNN.prk plus a
//       manifest.csv, one shard at a time (the whole network is never
//       resident). Deterministic: the same --seed yields byte-identical
//       shards at any --threads.
//
//   convert   --data PREFIX --out-dir DIR
//   convert   --data-dir DIR [--shard N] --out PREFIX
//       Convert a CSV bundle into a single-shard columnar dataset, or one
//       shard of a columnar dataset back into a CSV bundle. A CSV -> shard
//       -> CSV round trip is byte-identical to the input bundle.
//
//   fit       --data PREFIX --model dpmhbp|hbp|cox|weibull|svm|logistic|
//             rsf|gbt
//             [--category CWM|RWM|WW] [--burn N] [--samples N] [--seed N]
//             [--chains K] [--threads T] --out SCORES.csv
//             [--sweep-threads S] [--simd auto|off] [--fast-sweeps]
//             [--checkpoint-dir DIR] [--checkpoint-every N] [--resume]
//       Train a model on the 1998-2008 window and write per-pipe risk
//       scores (pipe_id,score). MCMC models pool K independent chains run
//       on T worker threads; results depend only on (--seed, --chains).
//       --sweep-threads S additionally partitions each sweep's likelihood
//       work within a chain across the pool (S<=0 means whole machine);
//       scores stay bit-identical for every S. --fast-sweeps also shards
//       the CRP reassignment pass over frozen start-of-sweep state: still
//       deterministic for a fixed (seed, sweep-threads) but no longer
//       bit-identical to the serial sweep. --simd off disables the AVX2
//       likelihood kernels (output is bit-identical either way).
//       With --checkpoint-dir, chain snapshots are written atomically every
//       N sweeps (default 25); --resume restarts an interrupted fit from
//       those snapshots and produces scores bit-identical to an
//       uninterrupted run. The same flags work for compare/diagnose/tune.
//       --heartbeat-file FILE [--heartbeat-every S] writes an atomically
//       replaced JSON progress file every S seconds (default 5) with
//       per-chain sweep progress, sweeps/s, acceptance trend, live split-Rhat
//       and ETA; purely observational, scores stay byte-identical.
//
//   fit       --data-dir DIR --out SCORES.csv [--model hbp]
//             [--shard-window W] [--category ...] [--burn N] [--samples N]
//             [--seed N] [--chains K]
//       Out-of-core form: stream a sharded dataset (see `generate
//       --regions` / `convert`) through a bounded window of W shards,
//       reduce it to per-group sufficient statistics, fit the covariate-
//       free HBP on the merged statistics, and stream the shards once more
//       to write scores in shard order. Peak RSS is bounded by the window,
//       not the dataset. Only --model hbp supports this path.
//
//   evaluate  --data PREFIX --scores SCORES.csv [--category ...]
//             [--threads T] [--per-pipe FILE] [--topk K --topk-out FILE]
//       Detection metrics of a score file against the 2009 test year.
//       With --data-dir DIR [--shard-window W] instead of --data, the
//       dataset is streamed shard by shard and the scores file is joined
//       sequentially (ordered fast path); metrics and artefacts are
//       identical to the in-memory path on the same data.
//       The ranking is computed once and shared by every metric; T worker
//       threads sort it (the metrics are identical for any T).
//       --per-pipe writes pipe_id,score,rank,percentile for every pipe;
//       --topk-out writes the K riskiest pipes as rank,pipe_id,score. Both
//       files are byte-identical to what `piperisk serve` answers for the
//       same artifact (the golden-equivalence contract).
//
//   serve     --data PREFIX --scores SCORES.csv [--host H] [--port P]
//             [--port-file FILE] [--category ...] [--unit-cost C] [--seed N]
//             [--metrics-port P [--metrics-port-file FILE]]
//       (--data-dir DIR [--shard-window W] streams a sharded dataset into
//       the score index instead of loading a CSV bundle; reload re-streams.)
//       Long-running risk-scoring server: loads the fit artifact into an
//       immutable in-memory score index and answers concurrent queries over
//       a length-prefixed binary protocol (score / topk / whatif / dump /
//       metrics / reload / shutdown). Port 0 picks an ephemeral port;
//       --port-file publishes the bound port for scripts. The `reload` verb
//       re-reads SCORES.csv off the serving path and atomically swaps the
//       snapshot — readers are never blocked. Runs until a client sends
//       `shutdown`.
//
//   query     --port P [--host H] --verb VERB [--pipe ID] [--k K]
//             [--budget C] [--mode absolute|scale] [--value V] [--out FILE]
//       One request against a running server. Verbs: ping, score (--pipe),
//       topk (--k, optional --budget), whatif (--pipe, --mode, --value),
//       dump (--out), metrics, reload, shutdown.
//
//   compare   --data PREFIX [--category ...] [--burn N] [--samples N]
//       Fit the full model suite (DPMHBP, HBP groupings, Cox, SVMrank,
//       Weibull, RSF, GBT) and print the comparison table.
//
//   rolling   --data PREFIX [--first-year Y] [--last-year Y] [--warm-start]
//             [--category ...] [--burn N] [--samples N] [--seed N]
//             [--chains K] [--threads T]
//       Rolling-origin evaluation: for each test year in [Y0, Y1] train
//       every headline model on the expanding window ending the year
//       before and score the test year; prints each model's per-year AUC
//       series and its mean. --warm-start re-fits year y initialised from
//       year y-1's end-of-fit state (MCMC chain snapshots for DPMHBP/HBP,
//       tree-ensemble carry-over for RSF/GBT) — much cheaper per year,
//       statistically equivalent rankings; the year loop runs serially.
//       Cold runs parallelise across years with --threads.
//
//   riskmap   --data PREFIX --scores SCORES.csv --out MAP.geojson
//       Export the Fig. 18.9-style risk map.
//
//   diagnose  --data PREFIX [--model dpmhbp|hbp] [--burn N] [--samples N]
//             [--chains K] [--threads T]
//       MCMC convergence audit: per-trace ESS, Geweke z and (with
//       --chains > 1 especially) cross-chain split-Rhat. dpmhbp monitors
//       K/alpha/q_max; hbp reports every group rate q_k.
//
//   tune      --data PREFIX [--category ...] [--burn N] [--samples N]
//       Grid-search the hierarchy concentration c on an internal
//       validation year (never touches the test year).
//
//   plan      --data PREFIX --scores SCORES.csv [--budget N] [--horizon N]
//             [--out PLAN.csv]
//       Budget-constrained multi-year renewal plan from risk scores.
//
//   top       --metrics-port P [--metrics-host H] | --heartbeat FILE
//             [--interval S] [--iterations N] [--plain]
//       Live terminal dashboard. With --metrics-port it polls a running
//       server's Prometheus endpoint (req/s, latency quantiles, generation);
//       with --heartbeat it tails a fit's heartbeat JSON (per-chain progress
//       bars, sweeps/s, acceptance, live split-Rhat, ETA). --plain prints
//       one block per sample instead of redrawing the screen; --iterations N
//       exits after N samples (0 = run until interrupted).
//
// Global flags (any command):
//   --log-level debug|info|warning|error|fatal
//       Minimum severity emitted to stderr (default info).
//   --metrics-out FILE
//       After the command finishes, write a metrics-JSON snapshot of every
//       telemetry counter/gauge/histogram plus run metadata (command, seed,
//       chains, threads, build). Purely observational: model draws and pipe
//       scores are bit-identical with or without it.
//   --trace-out FILE
//       Collect chrome://tracing spans for the whole command and write the
//       trace JSON (load via chrome://tracing or https://ui.perfetto.dev).

#include <sys/stat.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "baselines/cox.h"
#include "baselines/gbt.h"
#include "baselines/logistic.h"
#include "baselines/rank_model.h"
#include "baselines/rsf.h"
#include "baselines/weibull.h"
#include "common/csv.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "core/diagnostics.h"
#include "core/dpmhbp.h"
#include "core/hbp.h"
#include "core/streaming_hbp.h"
#include "data/columnar.h"
#include "data/csv_io.h"
#include "data/failure_simulator.h"
#include "data/sharded_dataset.h"
#include "eval/experiment.h"
#include "eval/ranking_metrics.h"
#include "eval/rolling.h"
#include "eval/streaming_eval.h"
#include "eval/planning.h"
#include "eval/risk_map.h"
#include "eval/tuning.h"
#include "serve/client.h"
#include "serve/http_metrics.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "tools/top.h"

#ifndef PIPERISK_GIT_DESCRIBE
#define PIPERISK_GIT_DESCRIBE "unknown"
#endif

namespace piperisk {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: piperisk <generate|convert|fit|evaluate|serve|query|"
               "compare|rolling|riskmap|diagnose|tune|plan|top> [flags]\n"
               "see the header of tools/piperisk_cli.cc for flag details\n");
  return 2;
}

Result<net::PipeCategory> CategoryFlag(const CommandLine& cl) {
  std::string c = cl.GetString("category", "CWM");
  return net::ParsePipeCategory(c);
}

Result<core::ModelInput> LoadInput(const CommandLine& cl,
                                   const data::RegionDataset& dataset) {
  auto category = CategoryFlag(cl);
  if (!category.ok()) return category.status();
  net::FeatureConfig features = *category == net::PipeCategory::kWasteWater
                                    ? net::FeatureConfig::WasteWater()
                                    : net::FeatureConfig::DrinkingWater();
  return core::ModelInput::Build(dataset, data::TemporalSplit::Paper(),
                                 *category, features);
}

Result<core::HierarchyConfig> HierarchyFlags(const CommandLine& cl) {
  core::HierarchyConfig h;
  PIPERISK_ASSIGN_OR_RETURN(long long burn, cl.GetInt("burn", h.burn_in));
  PIPERISK_ASSIGN_OR_RETURN(long long samples,
                            cl.GetInt("samples", h.samples));
  PIPERISK_ASSIGN_OR_RETURN(long long seed, cl.GetInt("seed", 42));
  PIPERISK_ASSIGN_OR_RETURN(long long chains,
                            cl.GetInt("chains", h.num_chains));
  PIPERISK_ASSIGN_OR_RETURN(long long threads,
                            cl.GetInt("threads", h.num_threads));
  h.burn_in = static_cast<int>(burn);
  h.samples = static_cast<int>(samples);
  h.seed = static_cast<std::uint64_t>(seed);
  h.num_chains = static_cast<int>(chains);
  h.num_threads = static_cast<int>(threads);
  if (h.num_chains < 1) {
    return Status::InvalidArgument("--chains must be >= 1");
  }
  PIPERISK_ASSIGN_OR_RETURN(long long sweep_threads,
                            cl.GetInt("sweep-threads", h.sweep_threads));
  h.sweep_threads = static_cast<int>(sweep_threads);
  h.fast_sweeps = cl.GetBool("fast-sweeps", h.fast_sweeps);
  std::string simd = ToLowerAscii(cl.GetString("simd", "auto"));
  if (simd == "auto") {
    h.simd = core::SimdMode::kAuto;
  } else if (simd == "off") {
    h.simd = core::SimdMode::kOff;
  } else {
    return Status::InvalidArgument("--simd must be auto or off");
  }
  h.checkpoint.dir = cl.GetString("checkpoint-dir", "");
  PIPERISK_ASSIGN_OR_RETURN(
      long long every, cl.GetInt("checkpoint-every", h.checkpoint.every));
  h.checkpoint.every = static_cast<int>(every);
  h.checkpoint.resume = cl.GetBool("resume", false);
  if (h.checkpoint.resume && h.checkpoint.dir.empty()) {
    return Status::InvalidArgument("--resume requires --checkpoint-dir");
  }
  // Hidden crash-simulation hook for the smoke test: stop every chain after
  // N sweeps and exit non-zero, leaving the snapshots a kill -9 would leave.
  PIPERISK_ASSIGN_OR_RETURN(
      long long halt,
      cl.GetInt("checkpoint-halt-after", h.checkpoint.halt_after_sweeps));
  h.checkpoint.halt_after_sweeps = static_cast<int>(halt);
  // Live progress file (observational only; never fingerprinted, fits stay
  // bit-identical with heartbeats on or off).
  h.heartbeat.path = cl.GetString("heartbeat-file", "");
  PIPERISK_ASSIGN_OR_RETURN(
      double hb_every, cl.GetDouble("heartbeat-every", h.heartbeat.every_s));
  h.heartbeat.every_s = hb_every;
  if (!h.heartbeat.path.empty() && h.heartbeat.every_s <= 0.0) {
    return Status::InvalidArgument("--heartbeat-every must be > 0");
  }
  return h;
}

// --- generate ---------------------------------------------------------------

Result<int> ShardWindowFlag(const CommandLine& cl) {
  PIPERISK_ASSIGN_OR_RETURN(long long window, cl.GetInt("shard-window", 4));
  if (window <= 0) {
    return Status::InvalidArgument("--shard-window must be >= 1");
  }
  return static_cast<int>(window);
}

int CmdGenerateSharded(const CommandLine& cl) {
  data::ShardedGenerateOptions options;
  auto regions = cl.GetInt("regions", options.regions);
  if (!regions.ok()) return Fail(regions.status());
  options.regions = static_cast<int>(*regions);
  options.out_dir = cl.GetString("out-dir", "");
  if (options.out_dir.empty()) {
    std::fprintf(stderr, "generate: --regions needs --out-dir DIR\n");
    return 2;
  }
  auto seed = cl.GetInt("seed", static_cast<long long>(options.seed));
  if (!seed.ok()) return Fail(seed.status());
  options.seed = static_cast<std::uint64_t>(*seed);
  auto pipes = cl.GetInt("pipes", options.pipes_per_region);
  if (!pipes.ok()) return Fail(pipes.status());
  options.pipes_per_region = static_cast<int>(*pipes);
  auto connect = cl.GetDouble("connect", options.connect_fraction);
  if (!connect.ok()) return Fail(connect.status());
  options.connect_fraction = *connect;
  auto threads = cl.GetInt("threads", options.threads);
  if (!threads.ok()) return Fail(threads.status());
  options.threads = static_cast<int>(*threads);

  auto summary = data::GenerateShardedDataset(options);
  if (!summary.ok()) return Fail(summary.status());
  std::printf("wrote %d shards to %s: %llu pipes, %llu segments, "
              "%llu failures\n",
              summary->regions, options.out_dir.c_str(),
              static_cast<unsigned long long>(summary->pipes),
              static_cast<unsigned long long>(summary->segments),
              static_cast<unsigned long long>(summary->failures));
  return 0;
}

int CmdGenerate(const CommandLine& cl) {
  if (cl.Has("regions") || cl.Has("out-dir")) return CmdGenerateSharded(cl);
  std::string region = ToLowerAscii(cl.GetString("region", "tiny"));
  std::string out = cl.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out PREFIX is required\n");
    return 2;
  }
  data::RegionConfig config;
  if (region == "a") {
    config = data::RegionConfig::RegionA();
  } else if (region == "b") {
    config = data::RegionConfig::RegionB();
  } else if (region == "c") {
    config = data::RegionConfig::RegionC();
  } else if (region == "tiny") {
    config = data::RegionConfig::Tiny(1);
  } else {
    std::fprintf(stderr, "generate: unknown region '%s'\n", region.c_str());
    return 2;
  }
  auto seed = cl.GetInt("seed", static_cast<long long>(config.seed));
  if (!seed.ok()) return Fail(seed.status());
  config.seed = static_cast<std::uint64_t>(*seed);
  auto pipes = cl.GetInt("pipes", config.num_pipes);
  if (!pipes.ok()) return Fail(pipes.status());
  config.num_pipes = static_cast<int>(*pipes);
  auto connect = cl.GetDouble("connect", config.connect_fraction);
  if (!connect.ok()) return Fail(connect.status());
  config.connect_fraction = *connect;

  auto dataset = data::GenerateRegion(config);
  if (!dataset.ok()) return Fail(dataset.status());
  if (Status st = data::SaveRegionDataset(*dataset, out); !st.ok()) {
    return Fail(st);
  }
  std::printf("wrote %s_{meta,pipes,segments,failures}.csv: %zu pipes, "
              "%zu segments, %zu failures\n",
              out.c_str(), dataset->network.num_pipes(),
              dataset->network.num_segments(), dataset->failures.size());
  return 0;
}

// --- convert ----------------------------------------------------------------

int CmdConvert(const CommandLine& cl) {
  const std::string prefix = cl.GetString("data", "");
  const std::string out_dir = cl.GetString("out-dir", "");
  const std::string data_dir = cl.GetString("data-dir", "");
  const std::string out = cl.GetString("out", "");

  if (!prefix.empty() && !out_dir.empty()) {
    // CSV bundle -> single-shard columnar dataset.
    auto dataset = data::LoadRegionDataset(prefix);
    if (!dataset.ok()) return Fail(dataset.status());
    if (::mkdir(out_dir.c_str(), 0777) != 0 && errno != EEXIST) {
      return Fail(Status::IoError("cannot create directory: " + out_dir));
    }
    const std::string file = data::ShardFileName(0);
    if (Status st = data::WriteShard(*dataset, out_dir + "/" + file);
        !st.ok()) {
      return Fail(st);
    }
    data::ShardInfo info;
    info.index = 0;
    info.file = file;
    info.region = dataset->config.name;
    info.pipes = dataset->network.num_pipes();
    info.segments = dataset->network.num_segments();
    info.failures = dataset->failures.size();
    if (Status st = data::WriteManifest(out_dir, {info}); !st.ok()) {
      return Fail(st);
    }
    std::printf("wrote %s/%s (+ manifest): %llu pipes, %llu segments, "
                "%llu failures\n",
                out_dir.c_str(), file.c_str(),
                static_cast<unsigned long long>(info.pipes),
                static_cast<unsigned long long>(info.segments),
                static_cast<unsigned long long>(info.failures));
    return 0;
  }

  if (!data_dir.empty() && !out.empty()) {
    // One shard -> CSV bundle.
    auto shards = data::ShardedDataset::Open(data_dir);
    if (!shards.ok()) return Fail(shards.status());
    auto shard = cl.GetInt("shard", 0);
    if (!shard.ok()) return Fail(shard.status());
    auto dataset =
        shards->LoadShardDataset(static_cast<size_t>(*shard));
    if (!dataset.ok()) return Fail(dataset.status());
    if (Status st = data::SaveRegionDataset(*dataset, out); !st.ok()) {
      return Fail(st);
    }
    std::printf("wrote %s_{meta,pipes,segments,failures}.csv: %zu pipes, "
                "%zu segments, %zu failures\n",
                out.c_str(), dataset->network.num_pipes(),
                dataset->network.num_segments(), dataset->failures.size());
    return 0;
  }

  std::fprintf(stderr,
               "convert: either --data PREFIX --out-dir DIR (CSV -> shard) "
               "or --data-dir DIR --out PREFIX (shard -> CSV)\n");
  return 2;
}

// --- fit ------------------------------------------------------------------------

// Out-of-core fit over a sharded dataset: sufficient-statistic streaming,
// bounded-window RSS. Only the covariate-free HBP factors through per-group
// (k, n) histograms, so only --model hbp is supported here.
int CmdFitStreaming(const CommandLine& cl) {
  const std::string dir = cl.GetString("data-dir", "");
  const std::string out = cl.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "fit: --out FILE is required\n");
    return 2;
  }
  const std::string model_name = ToLowerAscii(cl.GetString("model", "hbp"));
  if (model_name != "hbp") {
    std::fprintf(stderr,
                 "fit: --data-dir (out-of-core) supports --model hbp only\n");
    return 2;
  }
  auto shards = data::ShardedDataset::Open(dir);
  if (!shards.ok()) return Fail(shards.status());
  auto hierarchy = HierarchyFlags(cl);
  if (!hierarchy.ok()) return Fail(hierarchy.status());
  auto category = CategoryFlag(cl);
  if (!category.ok()) return Fail(category.status());
  auto window = ShardWindowFlag(cl);
  if (!window.ok()) return Fail(window.status());

  core::StreamingHbpOptions options;
  options.hierarchy = *hierarchy;
  options.category = *category;
  options.shard_window = *window;
  auto fit = core::FitStreamingHbp(*shards, options);
  if (!fit.ok()) return Fail(fit.status());
  if (Status st = core::ScoreStreamingHbp(*shards, *fit, options, out);
      !st.ok()) {
    return Fail(st);
  }
  std::printf("fit streaming-hbp on %llu pipes (%zu groups, %zu shards); "
              "wrote %s\n",
              static_cast<unsigned long long>(fit->total_pipes),
              fit->raw_keys.size(), shards->shards().size(), out.c_str());
  return 0;
}

int CmdFit(const CommandLine& cl) {
  if (cl.Has("data-dir")) return CmdFitStreaming(cl);
  std::string prefix = cl.GetString("data", "");
  std::string out = cl.GetString("out", "");
  std::string model_name = ToLowerAscii(cl.GetString("model", "dpmhbp"));
  if (prefix.empty() || out.empty()) {
    std::fprintf(stderr, "fit: --data PREFIX and --out FILE are required\n");
    return 2;
  }
  auto dataset = data::LoadRegionDataset(prefix);
  if (!dataset.ok()) return Fail(dataset.status());
  auto input = LoadInput(cl, *dataset);
  if (!input.ok()) return Fail(input.status());
  auto hierarchy = HierarchyFlags(cl);
  if (!hierarchy.ok()) return Fail(hierarchy.status());

  core::ModelPtr model;
  if (model_name == "dpmhbp") {
    core::DpmhbpConfig config;
    config.hierarchy = *hierarchy;
    model = std::make_unique<core::DpmhbpModel>(config);
  } else if (model_name == "hbp") {
    model = std::make_unique<core::HbpModel>(core::GroupingScheme::kMaterial,
                                             *hierarchy);
  } else if (model_name == "cox") {
    model = std::make_unique<baselines::CoxModel>();
  } else if (model_name == "weibull") {
    model = std::make_unique<baselines::WeibullModel>();
  } else if (model_name == "svm") {
    model = std::make_unique<baselines::RankModel>();
  } else if (model_name == "logistic") {
    model = std::make_unique<baselines::LogisticModel>();
  } else if (model_name == "rsf") {
    baselines::RsfConfig config;
    config.seed = hierarchy->seed;
    config.num_fit_threads = hierarchy->num_threads;
    model = std::make_unique<baselines::RsfModel>(config);
  } else if (model_name == "gbt") {
    baselines::GbtConfig config;
    config.seed = hierarchy->seed;
    config.num_fit_threads = hierarchy->num_threads;
    model = std::make_unique<baselines::GbtModel>(config);
  } else {
    std::fprintf(stderr, "fit: unknown model '%s'\n", model_name.c_str());
    return 2;
  }

  if (Status st = model->Fit(*input); !st.ok()) return Fail(st);
  core::ScoreOptions score_options;
  score_options.num_threads = hierarchy->num_threads;
  auto scores = model->ScorePipes(*input, score_options);
  if (!scores.ok()) return Fail(scores.status());

  CsvDocument doc({"pipe_id", "score"});
  for (size_t i = 0; i < input->num_pipes(); ++i) {
    Status st = doc.AppendRow({std::to_string(input->pipes[i]->id),
                               StrFormat("%.10g", (*scores)[i])});
    if (!st.ok()) return Fail(st);
  }
  if (Status st = doc.WriteFile(out); !st.ok()) return Fail(st);
  std::printf("fit %s on %zu pipes; wrote %s\n", model->name().c_str(),
              input->num_pipes(), out.c_str());
  return 0;
}

// --- score loading shared by evaluate/riskmap --------------------------------------

Result<std::vector<double>> LoadScores(const std::string& path,
                                       const core::ModelInput& input) {
  PIPERISK_ASSIGN_OR_RETURN(CsvDocument doc, CsvDocument::ReadFile(path));
  PIPERISK_ASSIGN_OR_RETURN(size_t c_id, doc.ColumnIndex("pipe_id"));
  PIPERISK_ASSIGN_OR_RETURN(size_t c_score, doc.ColumnIndex("score"));
  std::unordered_map<net::PipeId, double> by_id;
  for (size_t r = 0; r < doc.num_rows(); ++r) {
    PIPERISK_ASSIGN_OR_RETURN(long long id, ParseInt(doc.cell(r, c_id)));
    PIPERISK_ASSIGN_OR_RETURN(double score, ParseDouble(doc.cell(r, c_score)));
    by_id[id] = score;
  }
  std::vector<double> out(input.num_pipes(), 0.0);
  size_t missing = 0;
  for (size_t i = 0; i < input.num_pipes(); ++i) {
    auto it = by_id.find(input.pipes[i]->id);
    if (it == by_id.end()) {
      ++missing;
    } else {
      out[i] = it->second;
    }
  }
  if (missing == input.num_pipes()) {
    return Status::InvalidArgument("score file matches no pipes in the data");
  }
  return out;
}

// --- golden-equivalence CSV formatting ---------------------------------------
// Both the batch path (`evaluate --per-pipe/--topk-out`) and the serving path
// (`query --verb dump/topk --out`) write through these helpers, so the two
// artefacts are byte-identical whenever the underlying doubles agree. %.17g
// round-trips every IEEE-754 double exactly.

Status WritePerPipeCsv(const std::vector<serve::DumpEntry>& entries,
                       const std::string& path) {
  CsvDocument doc({"pipe_id", "score", "rank", "percentile"});
  for (const auto& e : entries) {
    Status st = doc.AppendRow(
        {std::to_string(e.pipe_id), StrFormat("%.17g", e.score),
         std::to_string(e.rank), StrFormat("%.17g", e.percentile)});
    if (!st.ok()) return st;
  }
  return doc.WriteFile(path);
}

Status WriteTopKCsv(const std::vector<serve::TopKEntry>& entries,
                    const std::string& path) {
  CsvDocument doc({"rank", "pipe_id", "score"});
  for (size_t rank = 0; rank < entries.size(); ++rank) {
    Status st = doc.AppendRow({std::to_string(rank),
                               std::to_string(entries[rank].pipe_id),
                               StrFormat("%.17g", entries[rank].score)});
    if (!st.ok()) return st;
  }
  return doc.WriteFile(path);
}

// The whole metric + artefact tail of `evaluate`, shared by the in-memory
// and streaming paths: same code, so the two paths print and write
// byte-identical output whenever the input arrays agree.
int EvaluateRanking(const CommandLine& cl,
                    const std::vector<std::uint64_t>& ids,
                    const std::vector<double>& scores,
                    const std::vector<int>& failures,
                    const std::vector<double>& lengths, int test_year) {
  auto scored = eval::ZipScores(scores, failures, lengths);
  if (!scored.ok()) return Fail(scored.status());
  auto threads = cl.GetInt("threads", 1);
  if (!threads.ok()) return Fail(threads.status());
  eval::RankOptions rank_options;
  rank_options.num_threads = static_cast<int>(*threads);
  // One rank index feeds all three metrics; no per-metric re-sort.
  const eval::RankedScores ranked =
      eval::RankedScores::Build(*scored, rank_options);
  auto full = ranked.Auc(eval::BudgetMode::kPipeCount, 1.0);
  auto one = ranked.Auc(eval::BudgetMode::kPipeCount, 0.01);
  auto at1len = ranked.DetectedAtBudget(eval::BudgetMode::kLength, 0.01);
  if (!full.ok()) return Fail(full.status());
  std::printf("test year %d, %zu pipes\n", test_year, ids.size());
  std::printf("AUC(100%%)          = %.2f%%\n", full->normalised * 100.0);
  if (one.ok()) {
    std::printf("AUC(1%%) normalised = %.2f%%  (raw %.2f x 1e-4)\n",
                one->normalised * 100.0, one->unnormalised * 1e4);
  }
  if (at1len.ok()) {
    std::printf("detect @1%% length  = %.2f%%\n", *at1len * 100.0);
  }

  std::string per_pipe_path = cl.GetString("per-pipe", "");
  if (!per_pipe_path.empty()) {
    std::vector<serve::DumpEntry> entries(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      auto rank = ranked.RankOf(static_cast<std::uint32_t>(i));
      if (!rank.ok()) return Fail(rank.status());
      auto pct = ranked.PercentileOf(static_cast<std::uint32_t>(i));
      if (!pct.ok()) return Fail(pct.status());
      entries[i].pipe_id = ids[i];
      entries[i].score = scores[i];
      entries[i].rank = *rank;
      entries[i].percentile = *pct;
    }
    if (Status st = WritePerPipeCsv(entries, per_pipe_path); !st.ok()) {
      return Fail(st);
    }
    std::printf("wrote %s (%zu pipes)\n", per_pipe_path.c_str(),
                entries.size());
  }

  auto topk_flag = cl.GetInt("topk", 0);
  if (!topk_flag.ok()) return Fail(topk_flag.status());
  if (*topk_flag > 0) {
    std::string topk_path = cl.GetString("topk-out", "");
    if (topk_path.empty()) {
      std::fprintf(stderr, "evaluate: --topk requires --topk-out FILE\n");
      return 2;
    }
    auto top = ranked.TopK(static_cast<size_t>(*topk_flag));
    if (!top.ok()) return Fail(top.status());
    std::vector<serve::TopKEntry> entries(top->size());
    for (size_t r = 0; r < top->size(); ++r) {
      entries[r].pipe_id = ids[(*top)[r]];
      entries[r].score = scores[(*top)[r]];
    }
    if (Status st = WriteTopKCsv(entries, topk_path); !st.ok()) {
      return Fail(st);
    }
    std::printf("wrote %s (top %zu)\n", topk_path.c_str(), entries.size());
  }
  return 0;
}

int CmdEvaluateStreaming(const CommandLine& cl) {
  const std::string dir = cl.GetString("data-dir", "");
  const std::string scores_path = cl.GetString("scores", "");
  if (scores_path.empty()) {
    std::fprintf(stderr, "evaluate: --scores is required\n");
    return 2;
  }
  auto shards = data::ShardedDataset::Open(dir);
  if (!shards.ok()) return Fail(shards.status());
  auto category = CategoryFlag(cl);
  if (!category.ok()) return Fail(category.status());
  auto window = ShardWindowFlag(cl);
  if (!window.ok()) return Fail(window.status());
  auto streamed = eval::BuildStreamedScoredPipes(*shards, *category,
                                                 scores_path, *window);
  if (!streamed.ok()) return Fail(streamed.status());
  if (streamed->fallback > 0 || streamed->missing > 0) {
    std::fprintf(stderr,
                 "note: scores joined out of order for %llu pipes, "
                 "missing for %llu\n",
                 static_cast<unsigned long long>(streamed->fallback),
                 static_cast<unsigned long long>(streamed->missing));
  }
  return EvaluateRanking(cl, streamed->ids, streamed->scores,
                         streamed->test_failures, streamed->lengths_m,
                         streamed->test_year);
}

int CmdEvaluate(const CommandLine& cl) {
  if (cl.Has("data-dir")) return CmdEvaluateStreaming(cl);
  std::string prefix = cl.GetString("data", "");
  std::string scores_path = cl.GetString("scores", "");
  if (prefix.empty() || scores_path.empty()) {
    std::fprintf(stderr, "evaluate: --data and --scores are required\n");
    return 2;
  }
  auto dataset = data::LoadRegionDataset(prefix);
  if (!dataset.ok()) return Fail(dataset.status());
  auto input = LoadInput(cl, *dataset);
  if (!input.ok()) return Fail(input.status());
  auto scores = LoadScores(scores_path, *input);
  if (!scores.ok()) return Fail(scores.status());

  std::vector<std::uint64_t> ids(input->num_pipes());
  std::vector<int> failures(input->num_pipes());
  std::vector<double> lengths(input->num_pipes());
  for (size_t i = 0; i < input->num_pipes(); ++i) {
    ids[i] = static_cast<std::uint64_t>(input->pipes[i]->id);
    failures[i] = input->outcomes[i].test_failures;
    lengths[i] = input->outcomes[i].length_m;
  }
  return EvaluateRanking(cl, ids, *scores, failures, lengths,
                         input->split.test_year);
}

int CmdCompare(const CommandLine& cl) {
  std::string prefix = cl.GetString("data", "");
  if (prefix.empty()) {
    std::fprintf(stderr, "compare: --data PREFIX is required\n");
    return 2;
  }
  auto dataset = data::LoadRegionDataset(prefix);
  if (!dataset.ok()) return Fail(dataset.status());
  auto hierarchy = HierarchyFlags(cl);
  if (!hierarchy.ok()) return Fail(hierarchy.status());
  eval::ExperimentConfig config;
  config.hierarchy = *hierarchy;
  config.include_extended = cl.GetBool("extended", false);
  auto category = CategoryFlag(cl);
  if (!category.ok()) return Fail(category.status());
  config.category = *category;
  auto experiment = eval::RunRegionExperiment(*dataset, config);
  if (!experiment.ok()) return Fail(experiment.status());

  TextTable table({"Model", "AUC(100%)", "AUC(1%)", "detect@1% len"});
  for (const auto& run : experiment->runs) {
    table.AddRow({run.name,
                  StrFormat("%6.2f%%", run.auc_full.normalised * 100.0),
                  StrFormat("%6.2f%%", run.auc_1pct.normalised * 100.0),
                  StrFormat("%6.2f%%", run.detected_at_1pct_length * 100.0)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}

int CmdRolling(const CommandLine& cl) {
  std::string prefix = cl.GetString("data", "");
  if (prefix.empty()) {
    std::fprintf(stderr, "rolling: --data PREFIX is required\n");
    return 2;
  }
  auto dataset = data::LoadRegionDataset(prefix);
  if (!dataset.ok()) return Fail(dataset.status());
  auto hierarchy = HierarchyFlags(cl);
  if (!hierarchy.ok()) return Fail(hierarchy.status());
  auto category = CategoryFlag(cl);
  if (!category.ok()) return Fail(category.status());

  eval::RollingConfig config;
  auto first = cl.GetInt("first-year", config.first_test_year);
  if (!first.ok()) return Fail(first.status());
  config.first_test_year = static_cast<net::Year>(*first);
  auto last = cl.GetInt("last-year", config.last_test_year);
  if (!last.ok()) return Fail(last.status());
  config.last_test_year = static_cast<net::Year>(*last);
  config.experiment.hierarchy = *hierarchy;
  config.experiment.seed = hierarchy->seed;
  config.experiment.category = *category;
  config.num_threads = hierarchy->num_threads;
  config.warm_start = cl.GetBool("warm-start", false);

  auto result = eval::RunRollingEvaluation(*dataset, config);
  if (!result.ok()) return Fail(result.status());

  std::vector<std::string> header{"Model"};
  for (net::Year y : result->test_years) header.push_back(std::to_string(y));
  header.push_back("mean AUC");
  TextTable table(header);
  for (const auto& series : result->series) {
    std::vector<std::string> row{series.model};
    double sum = 0.0;
    int n = 0;
    for (double auc : series.auc_full) {
      if (std::isnan(auc)) {
        row.push_back("-");
      } else {
        row.push_back(StrFormat("%5.2f%%", auc * 100.0));
        sum += auc;
        ++n;
      }
    }
    row.push_back(n > 0 ? StrFormat("%5.2f%%", sum / n * 100.0) : "-");
    table.AddRow(row);
  }
  std::printf("rolling %s over %d years (full AUC, pipe-count budget)\n",
              config.warm_start ? "warm-start" : "cold",
              static_cast<int>(result->test_years.size()));
  std::printf("%s", table.ToString().c_str());
  return 0;
}

int CmdRiskmap(const CommandLine& cl) {
  std::string prefix = cl.GetString("data", "");
  std::string scores_path = cl.GetString("scores", "");
  std::string out = cl.GetString("out", "risk_map.geojson");
  if (prefix.empty() || scores_path.empty()) {
    std::fprintf(stderr, "riskmap: --data and --scores are required\n");
    return 2;
  }
  auto dataset = data::LoadRegionDataset(prefix);
  if (!dataset.ok()) return Fail(dataset.status());
  auto input = LoadInput(cl, *dataset);
  if (!input.ok()) return Fail(input.status());
  auto scores = LoadScores(scores_path, *input);
  if (!scores.ok()) return Fail(scores.status());
  auto geojson = eval::BuildRiskMapGeoJson(*input, *scores);
  if (!geojson.ok()) return Fail(geojson.status());
  std::ofstream file(out, std::ios::trunc);
  if (!file) return Fail(Status::IoError("cannot write " + out));
  file << *geojson;
  auto summary = eval::SummariseRiskMap(*input, *scores, 0.10);
  std::printf("wrote %s (%zu bytes)\n", out.c_str(), geojson->size());
  if (summary.ok()) {
    std::printf("top-decile pipes carry %d of %d test-year failures\n",
                summary->failures_on_top, summary->total_test_failures);
  }
  return 0;
}

int CmdDiagnose(const CommandLine& cl) {
  std::string prefix = cl.GetString("data", "");
  if (prefix.empty()) {
    std::fprintf(stderr, "diagnose: --data PREFIX is required\n");
    return 2;
  }
  auto dataset = data::LoadRegionDataset(prefix);
  if (!dataset.ok()) return Fail(dataset.status());
  auto input = LoadInput(cl, *dataset);
  if (!input.ok()) return Fail(input.status());
  auto hierarchy = HierarchyFlags(cl);
  if (!hierarchy.ok()) return Fail(hierarchy.status());
  std::string model_name = ToLowerAscii(cl.GetString("model", "dpmhbp"));
  if (model_name == "hbp") {
    core::HbpModel model(core::GroupingScheme::kMaterial, *hierarchy);
    if (Status st = model.Fit(*input); !st.ok()) return Fail(st);
    auto diagnostics = core::DiagnoseHbp(model);
    std::printf("%s", core::RenderDiagnostics(diagnostics).c_str());
    return 0;
  }
  if (model_name != "dpmhbp") {
    std::fprintf(stderr, "diagnose: unknown model '%s' (dpmhbp|hbp)\n",
                 model_name.c_str());
    return 2;
  }
  core::DpmhbpConfig config;
  config.hierarchy = *hierarchy;
  core::DpmhbpModel model(config);
  if (Status st = model.Fit(*input); !st.ok()) return Fail(st);
  auto d = core::DiagnoseDpmhbp(model);
  std::printf("%s", core::RenderDiagnostics({d.num_groups, d.alpha, d.q_max})
                        .c_str());
  std::printf("posterior mean groups: %.2f; chains: %d; converged: %s\n",
              d.mean_groups, hierarchy->num_chains,
              d.converged ? "yes"
                          : "no (increase --burn/--samples or --chains)");
  return 0;
}

int CmdTune(const CommandLine& cl) {
  std::string prefix = cl.GetString("data", "");
  if (prefix.empty()) {
    std::fprintf(stderr, "tune: --data PREFIX is required\n");
    return 2;
  }
  auto dataset = data::LoadRegionDataset(prefix);
  if (!dataset.ok()) return Fail(dataset.status());
  auto category = CategoryFlag(cl);
  if (!category.ok()) return Fail(category.status());
  auto hierarchy = HierarchyFlags(cl);
  if (!hierarchy.ok()) return Fail(hierarchy.status());
  eval::TuningConfig config;
  config.base = *hierarchy;
  net::FeatureConfig features = *category == net::PipeCategory::kWasteWater
                                    ? net::FeatureConfig::WasteWater()
                                    : net::FeatureConfig::DrinkingWater();
  auto result = eval::TuneHierarchy(*dataset, data::TemporalSplit::Paper(),
                                    *category, features, config);
  if (!result.ok()) return Fail(result.status());
  std::printf("%8s %8s %12s\n", "c", "c0", "valid AUC");
  for (const auto& point : result->grid) {
    std::printf("%8.1f %8.1f %11.2f%%%s\n", point.c, point.c0,
                point.auc * 100.0,
                point.c == result->best.c && point.c0 == result->best.c0
                    ? "  <- best"
                    : "");
  }
  std::printf("use --burn/--samples with fit and c=%.1f for the final "
              "model\n", result->best.c);
  return 0;
}

int CmdPlan(const CommandLine& cl) {
  std::string prefix = cl.GetString("data", "");
  std::string scores_path = cl.GetString("scores", "");
  if (prefix.empty() || scores_path.empty()) {
    std::fprintf(stderr, "plan: --data and --scores are required\n");
    return 2;
  }
  auto dataset = data::LoadRegionDataset(prefix);
  if (!dataset.ok()) return Fail(dataset.status());
  auto input = LoadInput(cl, *dataset);
  if (!input.ok()) return Fail(input.status());
  auto scores = LoadScores(scores_path, *input);
  if (!scores.ok()) return Fail(scores.status());

  eval::PlanningConfig config;
  auto budget = cl.GetDouble("budget", config.annual_budget);
  if (!budget.ok()) return Fail(budget.status());
  config.annual_budget = *budget;
  auto horizon = cl.GetInt("horizon", config.horizon_years);
  if (!horizon.ok()) return Fail(horizon.status());
  config.horizon_years = static_cast<int>(*horizon);

  auto plan = eval::PlanRenewals(*input, *scores, config);
  if (!plan.ok()) return Fail(plan.status());
  std::printf("renewal plan: %zu actions over %d years, cost %.0f\n",
              plan->actions.size(), config.horizon_years, plan->total_cost);
  std::printf("expected failures: %.1f without -> %.1f with the plan\n",
              plan->expected_failures_without, plan->expected_failures_with);
  std::printf("net benefit: %.0f\n", plan->net_benefit);
  std::string out = cl.GetString("out", "");
  if (!out.empty()) {
    CsvDocument doc({"year_offset", "pipe_id", "cost",
                     "expected_failures_avoided"});
    for (const auto& a : plan->actions) {
      Status st = doc.AppendRow({std::to_string(a.year_offset),
                                 std::to_string(a.pipe_id),
                                 StrFormat("%.2f", a.cost),
                                 StrFormat("%.4f",
                                           a.expected_failures_avoided)});
      if (!st.ok()) return Fail(st);
    }
    if (Status st = doc.WriteFile(out); !st.ok()) return Fail(st);
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

// --- serve / query ----------------------------------------------------------

/// Builds a serving snapshot from the on-disk artifact: re-reads the score
/// CSV and pairs it with the dataset's pipe ids and lengths. Runs at startup
/// (generation 1) and again for every `reload` verb, entirely off the
/// serving path.
Result<std::shared_ptr<const serve::ScoreSnapshot>> BuildServeSnapshot(
    const core::ModelInput& input, const std::string& scores_path,
    std::uint64_t generation, double unit_cost) {
  PIPERISK_ASSIGN_OR_RETURN(std::vector<double> scores,
                            LoadScores(scores_path, input));
  std::vector<std::uint64_t> ids(input.num_pipes());
  std::vector<double> lengths(input.num_pipes());
  for (size_t i = 0; i < input.num_pipes(); ++i) {
    ids[i] = static_cast<std::uint64_t>(input.pipes[i]->id);
    lengths[i] = input.outcomes[i].length_m;
  }
  return serve::ScoreSnapshot::Build(std::move(ids), std::move(scores),
                                     std::move(lengths), generation,
                                     unit_cost);
}

// Publishes a bound port for scripts (write + rename so a poller never
// reads a half-written file).
Status PublishPort(const std::string& path, int port) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::trunc);
    if (!file) return Status::IoError("cannot write " + tmp);
    file << port << "\n";
    if (!file.good()) return Status::IoError("write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("cannot rename " + tmp);
  }
  return Status::OK();
}

// Everything after the snapshot is built: start, publish the port, wait.
// Shared by the in-memory and streaming serve paths.
int RunServeLoop(
    const CommandLine& cl,
    std::shared_ptr<const serve::ScoreSnapshot> initial,
    std::function<Result<std::shared_ptr<const serve::ScoreSnapshot>>(
        std::uint64_t)>
        reload_fn) {
  auto port = cl.GetInt("port", 0);
  if (!port.ok()) return Fail(port.status());
  auto seed = cl.GetInt("seed", 42);
  if (!seed.ok()) return Fail(seed.status());
  const size_t num_pipes = initial->num_pipes();

  serve::ServerOptions options;
  options.host = cl.GetString("host", "127.0.0.1");
  options.port = static_cast<int>(*port);
  options.seed = static_cast<std::uint64_t>(*seed);
  options.git_describe = PIPERISK_GIT_DESCRIBE;
  options.reload_fn = std::move(reload_fn);

  auto server = serve::Server::Start(options, std::move(initial));
  if (!server.ok()) return Fail(server.status());
  std::printf("serving %zu pipes on %s:%d (generation 1)\n", num_pipes,
              options.host.c_str(), (*server)->port());
  std::fflush(stdout);

  std::string port_file = cl.GetString("port-file", "");
  if (!port_file.empty()) {
    if (Status st = PublishPort(port_file, (*server)->port()); !st.ok()) {
      return Fail(st);
    }
  }

  // Optional Prometheus scrape endpoint next to the binary protocol:
  // GET /metrics + GET /healthz on its own port. Purely observational.
  std::unique_ptr<serve::MetricsHttpServer> metrics_http;
  if (cl.Has("metrics-port")) {
    auto metrics_port = cl.GetInt("metrics-port", 0);
    if (!metrics_port.ok()) return Fail(metrics_port.status());
    serve::MetricsHttpOptions metrics_options;
    metrics_options.host = options.host;
    metrics_options.port = static_cast<int>(*metrics_port);
    metrics_options.metadata.command = "serve";
    metrics_options.metadata.seed = options.seed;
    metrics_options.metadata.git_describe = PIPERISK_GIT_DESCRIBE;
    auto http = serve::MetricsHttpServer::Start(metrics_options);
    if (!http.ok()) return Fail(http.status());
    metrics_http = std::move(*http);
    std::printf("metrics on http://%s:%d/metrics\n", options.host.c_str(),
                metrics_http->port());
    std::fflush(stdout);
    std::string metrics_port_file = cl.GetString("metrics-port-file", "");
    if (!metrics_port_file.empty()) {
      if (Status st = PublishPort(metrics_port_file, metrics_http->port());
          !st.ok()) {
        return Fail(st);
      }
    }
  }

  (*server)->WaitUntilStopped();
  std::uint64_t last_generation = (*server)->generation();
  (*server)->Stop();
  std::printf("server stopped (last generation %llu)\n",
              static_cast<unsigned long long>(last_generation));
  return 0;
}

int CmdServeStreaming(const CommandLine& cl) {
  const std::string dir = cl.GetString("data-dir", "");
  const std::string scores_path = cl.GetString("scores", "");
  if (scores_path.empty()) {
    std::fprintf(stderr, "serve: --scores is required\n");
    return 2;
  }
  auto shards = data::ShardedDataset::Open(dir);
  if (!shards.ok()) return Fail(shards.status());
  auto category = CategoryFlag(cl);
  if (!category.ok()) return Fail(category.status());
  auto window = ShardWindowFlag(cl);
  if (!window.ok()) return Fail(window.status());
  auto unit_cost = cl.GetDouble(
      "unit-cost", eval::PlanningConfig().inspection_cost_per_m);
  if (!unit_cost.ok()) return Fail(unit_cost.status());

  // The builder owns its own copy of the (small) shard listing, so the
  // reload closure outlives this frame safely; every call re-streams the
  // shards and the scores file from disk.
  const auto build =
      [shards = std::move(*shards), category = *category, scores_path,
       window = *window, cost = *unit_cost](std::uint64_t generation)
      -> Result<std::shared_ptr<const serve::ScoreSnapshot>> {
    PIPERISK_ASSIGN_OR_RETURN(
        eval::StreamedScoredPipes streamed,
        eval::BuildStreamedScoredPipes(shards, category, scores_path,
                                       window));
    return serve::ScoreSnapshot::Build(
        std::move(streamed.ids), std::move(streamed.scores),
        std::move(streamed.lengths_m), generation, cost);
  };
  auto initial = build(1);
  if (!initial.ok()) return Fail(initial.status());
  return RunServeLoop(cl, std::move(*initial), build);
}

int CmdServe(const CommandLine& cl) {
  if (cl.Has("data-dir")) return CmdServeStreaming(cl);
  std::string prefix = cl.GetString("data", "");
  std::string scores_path = cl.GetString("scores", "");
  if (prefix.empty() || scores_path.empty()) {
    std::fprintf(stderr, "serve: --data and --scores are required\n");
    return 2;
  }
  auto dataset = data::LoadRegionDataset(prefix);
  if (!dataset.ok()) return Fail(dataset.status());
  auto input = LoadInput(cl, *dataset);
  if (!input.ok()) return Fail(input.status());
  auto unit_cost = cl.GetDouble(
      "unit-cost", eval::PlanningConfig().inspection_cost_per_m);
  if (!unit_cost.ok()) return Fail(unit_cost.status());

  auto initial = BuildServeSnapshot(*input, scores_path, 1, *unit_cost);
  if (!initial.ok()) return Fail(initial.status());

  // `input` is owned by a shared_ptr captured in the reload closure, so it
  // stays alive for as long as the server can call reload.
  auto input_owned =
      std::make_shared<core::ModelInput>(std::move(*input));
  const double cost = *unit_cost;
  auto reload_fn =
      [input_owned, scores_path,
       cost](std::uint64_t next_generation)
      -> Result<std::shared_ptr<const serve::ScoreSnapshot>> {
    return BuildServeSnapshot(*input_owned, scores_path, next_generation,
                              cost);
  };
  return RunServeLoop(cl, std::move(*initial), std::move(reload_fn));
}

int CmdQuery(const CommandLine& cl) {
  auto port = cl.GetInt("port", 0);
  if (!port.ok()) return Fail(port.status());
  if (*port <= 0) {
    std::fprintf(stderr, "query: --port PORT is required\n");
    return 2;
  }
  std::string host = cl.GetString("host", "127.0.0.1");
  std::string verb = ToLowerAscii(cl.GetString("verb", ""));
  auto client = serve::Client::Connect(host, static_cast<int>(*port));
  if (!client.ok()) return Fail(client.status());

  if (verb == "ping") {
    if (Status st = client->Ping(); !st.ok()) return Fail(st);
    std::printf("pong\n");
    return 0;
  }
  if (verb == "score") {
    if (!cl.Has("pipe")) {
      std::fprintf(stderr, "query: score needs --pipe ID\n");
      return 2;
    }
    auto pipe = cl.GetInt("pipe", 0);
    if (!pipe.ok()) return Fail(pipe.status());
    auto r = client->Score(static_cast<std::uint64_t>(*pipe));
    if (!r.ok()) return Fail(r.status());
    std::printf("pipe %llu: score %.17g, rank %llu of %llu, "
                "percentile %.17g (generation %llu)\n",
                static_cast<unsigned long long>(*pipe), r->score,
                static_cast<unsigned long long>(r->rank),
                static_cast<unsigned long long>(r->num_pipes), r->percentile,
                static_cast<unsigned long long>(r->generation));
    return 0;
  }
  if (verb == "topk") {
    auto k = cl.GetInt("k", 10);
    if (!k.ok()) return Fail(k.status());
    std::optional<double> budget;
    if (cl.Has("budget")) {
      auto b = cl.GetDouble("budget", 0.0);
      if (!b.ok()) return Fail(b.status());
      budget = *b;
    }
    auto r = client->TopK(static_cast<std::uint32_t>(*k), budget);
    if (!r.ok()) return Fail(r.status());
    std::string out = cl.GetString("out", "");
    if (!out.empty()) {
      if (Status st = WriteTopKCsv(r->entries, out); !st.ok()) {
        return Fail(st);
      }
      std::printf("wrote %s (top %zu, generation %llu)\n", out.c_str(),
                  r->entries.size(),
                  static_cast<unsigned long long>(r->generation));
      return 0;
    }
    std::printf("top %zu (generation %llu)\n", r->entries.size(),
                static_cast<unsigned long long>(r->generation));
    for (size_t rank = 0; rank < r->entries.size(); ++rank) {
      std::printf("%6zu  pipe %-10llu score %.10g\n", rank,
                  static_cast<unsigned long long>(r->entries[rank].pipe_id),
                  r->entries[rank].score);
    }
    return 0;
  }
  if (verb == "whatif") {
    if (!cl.Has("pipe") || !cl.Has("value")) {
      std::fprintf(stderr,
                   "query: whatif needs --pipe ID and --value V "
                   "[--mode absolute|scale]\n");
      return 2;
    }
    auto pipe = cl.GetInt("pipe", 0);
    if (!pipe.ok()) return Fail(pipe.status());
    auto value = cl.GetDouble("value", 0.0);
    if (!value.ok()) return Fail(value.status());
    std::string mode_name = ToLowerAscii(cl.GetString("mode", "absolute"));
    serve::WhatIfMode mode;
    if (mode_name == "absolute") {
      mode = serve::WhatIfMode::kAbsolute;
    } else if (mode_name == "scale") {
      mode = serve::WhatIfMode::kScale;
    } else {
      std::fprintf(stderr, "query: unknown --mode '%s' (absolute|scale)\n",
                   mode_name.c_str());
      return 2;
    }
    auto r = client->WhatIf(static_cast<std::uint64_t>(*pipe), mode, *value);
    if (!r.ok()) return Fail(r.status());
    std::printf("pipe %llu of %llu (generation %llu)\n",
                static_cast<unsigned long long>(*pipe),
                static_cast<unsigned long long>(r->num_pipes),
                static_cast<unsigned long long>(r->generation));
    std::printf("  now:     score %.10g, rank %llu, percentile %.4f\n",
                r->old_score, static_cast<unsigned long long>(r->old_rank),
                r->old_percentile);
    std::printf("  what-if: score %.10g, rank %llu, percentile %.4f\n",
                r->new_score, static_cast<unsigned long long>(r->new_rank),
                r->new_percentile);
    return 0;
  }
  if (verb == "dump") {
    std::string out = cl.GetString("out", "");
    if (out.empty()) {
      std::fprintf(stderr, "query: dump needs --out FILE\n");
      return 2;
    }
    auto r = client->Dump();
    if (!r.ok()) return Fail(r.status());
    if (Status st = WritePerPipeCsv(r->entries, out); !st.ok()) {
      return Fail(st);
    }
    std::printf("wrote %s (%zu pipes, generation %llu)\n", out.c_str(),
                r->entries.size(),
                static_cast<unsigned long long>(r->generation));
    return 0;
  }
  if (verb == "metrics") {
    auto r = client->Metrics();
    if (!r.ok()) return Fail(r.status());
    std::string out = cl.GetString("out", "");
    if (out.empty()) {
      std::printf("%s", r->c_str());
      return 0;
    }
    std::ofstream file(out, std::ios::trunc);
    if (!file) return Fail(Status::IoError("cannot write " + out));
    file << *r;
    if (!file.good()) return Fail(Status::IoError("write failed: " + out));
    std::printf("wrote %s (%zu bytes)\n", out.c_str(), r->size());
    return 0;
  }
  if (verb == "reload") {
    auto r = client->Reload();
    if (!r.ok()) return Fail(r.status());
    std::printf("reloaded: generation %llu, %llu pipes\n",
                static_cast<unsigned long long>(r->generation),
                static_cast<unsigned long long>(r->num_pipes));
    return 0;
  }
  if (verb == "shutdown") {
    if (Status st = client->Shutdown(); !st.ok()) return Fail(st);
    std::printf("server acknowledged shutdown\n");
    return 0;
  }
  std::fprintf(stderr,
               "query: unknown --verb '%s' (ping|score|topk|whatif|dump|"
               "metrics|reload|shutdown)\n",
               verb.c_str());
  return 2;
}

int Dispatch(const CommandLine& cl) {
  const std::string& command = cl.command();
  if (command == "generate") return CmdGenerate(cl);
  if (command == "convert") return CmdConvert(cl);
  if (command == "fit") return CmdFit(cl);
  if (command == "evaluate") return CmdEvaluate(cl);
  if (command == "serve") return CmdServe(cl);
  if (command == "query") return CmdQuery(cl);
  if (command == "compare") return CmdCompare(cl);
  if (command == "rolling") return CmdRolling(cl);
  if (command == "riskmap") return CmdRiskmap(cl);
  if (command == "diagnose") return CmdDiagnose(cl);
  if (command == "tune") return CmdTune(cl);
  if (command == "plan") return CmdPlan(cl);
  if (command == "top") return tools::CmdTop(cl);
  return Usage();
}

/// Writes the metrics-JSON snapshot after the command ran. Reproducibility
/// metadata comes from the same flags the samplers read, so the export can
/// be traced back to the exact run that produced it.
int WriteMetricsFile(const CommandLine& cl, const std::string& path) {
  telemetry::RunMetadata meta;
  meta.command = cl.command();
  auto seed = cl.GetInt("seed", 42);
  if (!seed.ok()) return Fail(seed.status());
  meta.seed = static_cast<std::uint64_t>(*seed);
  auto chains = cl.GetInt("chains", 1);
  if (!chains.ok()) return Fail(chains.status());
  meta.chains = static_cast<int>(*chains);
  auto threads = cl.GetInt("threads", 0);
  if (!threads.ok()) return Fail(threads.status());
  meta.threads = static_cast<int>(*threads);
  meta.git_describe = PIPERISK_GIT_DESCRIBE;
  std::ofstream file(path, std::ios::trunc);
  if (!file) return Fail(Status::IoError("cannot write " + path));
  telemetry::WriteMetricsJson(telemetry::Registry::Global().Snapshot(), meta,
                              file);
  return file.good() ? 0 : Fail(Status::IoError("write failed: " + path));
}

int WriteTraceFile(const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return Fail(Status::IoError("cannot write " + path));
  telemetry::WriteTraceJson(file);
  return file.good() ? 0 : Fail(Status::IoError("write failed: " + path));
}

/// Scope guard for the --metrics-out / --trace-out exports: constructed
/// before dispatch, flushed on every way out of it — normal return, error
/// return, or an exception unwinding past Run. A failed command still leaves
/// its telemetry snapshot behind, which is exactly when it is most wanted.
class ScopedExporters {
 public:
  explicit ScopedExporters(const CommandLine& cl)
      : cl_(cl),
        metrics_out_(cl.GetString("metrics-out", "")),
        trace_out_(cl.GetString("trace-out", "")) {
    if (!trace_out_.empty()) telemetry::StartTracing();
  }

  ScopedExporters(const ScopedExporters&) = delete;
  ScopedExporters& operator=(const ScopedExporters&) = delete;

  ~ScopedExporters() { Flush(); }

  /// Writes both files (once); returns 0 or the first failing writer's exit
  /// code. The destructor re-runs this only if nobody called it, so the
  /// export happens even when dispatch throws.
  int Flush() {
    if (flushed_) return 0;
    flushed_ = true;
    int rc = 0;
    if (!trace_out_.empty()) {
      telemetry::StopTracing();
      rc = WriteTraceFile(trace_out_);
    }
    if (!metrics_out_.empty()) {
      if (int mrc = WriteMetricsFile(cl_, metrics_out_); mrc != 0 && rc == 0) {
        rc = mrc;
      }
    }
    return rc;
  }

 private:
  const CommandLine& cl_;
  const std::string metrics_out_;
  const std::string trace_out_;
  bool flushed_ = false;
};

int Run(int argc, char** argv) {
  auto cl = CommandLine::Parse(argc - 1, argv + 1);
  if (!cl.ok()) return Fail(cl.status());
  if (cl->Has("log-level")) {
    const std::string name = cl->GetString("log-level", "info");
    LogLevel level;
    if (!ParseLogLevel(name, &level)) {
      std::fprintf(stderr,
                   "error: unknown --log-level '%s' "
                   "(debug|info|warning|error|fatal)\n",
                   name.c_str());
      return 2;
    }
    SetLogLevel(level);
  }
  ScopedExporters exporters(*cl);
  int exit_code;
  try {
    telemetry::ScopedSpan command_span("cli.command");
    exit_code = Dispatch(*cl);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: unhandled exception: %s\n", e.what());
    exit_code = 1;
  }
  if (int rc = exporters.Flush(); rc != 0 && exit_code == 0) {
    exit_code = rc;
  }
  return exit_code;
}

}  // namespace
}  // namespace piperisk

int main(int argc, char** argv) { return piperisk::Run(argc, argv); }
