#!/usr/bin/env bash
# End-to-end smoke test of the piperisk CLI: generate -> tune -> fit ->
# evaluate -> riskmap -> plan -> diagnose, all in a scratch directory.
# Registered with ctest by tools/CMakeLists.txt; $1 is the binary path.
set -euo pipefail

BIN="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

echo "== generate"
"$BIN" generate --region tiny --pipes 1200 --seed 9 --out smoke
test -f smoke_pipes.csv
test -f smoke_segments.csv
test -f smoke_failures.csv

echo "== fit"
"$BIN" fit --data smoke --model dpmhbp --burn 10 --samples 20 --out scores.csv
test -f scores.csv
head -1 scores.csv | grep -q "pipe_id,score"

echo "== evaluate"
"$BIN" evaluate --data smoke --scores scores.csv | grep -q "AUC(100%)"

echo "== riskmap"
"$BIN" riskmap --data smoke --scores scores.csv --out map.geojson
grep -q FeatureCollection map.geojson

echo "== plan"
"$BIN" plan --data smoke --scores scores.csv --budget 40000 --horizon 6 \
    --out plan.csv | grep -q "net benefit"

echo "== fit multi-chain"
"$BIN" fit --data smoke --model dpmhbp --burn 10 --samples 20 \
    --chains 2 --threads 2 --out scores_mc.csv
test -f scores_mc.csv
# Same seed and chain count on one thread must give byte-identical scores.
"$BIN" fit --data smoke --model dpmhbp --burn 10 --samples 20 \
    --chains 2 --threads 1 --out scores_mc_t1.csv
cmp scores_mc.csv scores_mc_t1.csv

echo "== fit with within-chain partitioning"
# Deterministic mode: partitioning a sweep across the pool must not change a
# single byte of the scores, at any --sweep-threads setting.
"$BIN" fit --data smoke --model dpmhbp --burn 10 --samples 20 \
    --sweep-threads 4 --out scores_st4.csv
cmp scores.csv scores_st4.csv
# Nor may the explicit-SIMD kernels: --simd off selects the portable scalar
# combine loop with bit-identical output.
"$BIN" fit --data smoke --model dpmhbp --burn 10 --samples 20 \
    --sweep-threads 4 --simd off --out scores_simd_off.csv
cmp scores.csv scores_simd_off.csv
# Fast mode relaxes bit-identity to the serial sweep but stays reproducible
# for a fixed (seed, sweep-threads).
"$BIN" fit --data smoke --model dpmhbp --burn 10 --samples 20 \
    --sweep-threads 4 --fast-sweeps --out scores_fast_a.csv
"$BIN" fit --data smoke --model dpmhbp --burn 10 --samples 20 \
    --sweep-threads 4 --fast-sweeps --out scores_fast_b.csv
cmp scores_fast_a.csv scores_fast_b.csv

echo "== telemetry exports"
# Attaching every exporter must not perturb the model: scores stay
# byte-identical to the uninstrumented run above.
"$BIN" fit --data smoke --model dpmhbp --burn 10 --samples 20 \
    --chains 2 --threads 2 --out scores_tel.csv \
    --metrics-out metrics.json --trace-out trace.json --log-level debug
cmp scores_mc.csv scores_tel.csv
test -s metrics.json
test -s trace.json
python3 - <<'EOF'
import json
with open("metrics.json") as f:
    m = json.load(f)
assert m["schema_version"] == 1, m
assert m["run"]["command"] == "fit", m["run"]
assert m["run"]["chains"] == 2, m["run"]
assert all(v >= 0 for v in m["counters"].values()), m["counters"]
assert m["counters"]["mcmc.chain.0.sweeps"] == 30, m["counters"]
assert 0.0 <= m["gauges"]["mcmc.acceptance_rate"] <= 1.0, m["gauges"]
assert "threadpool.queue_wait_us" in m["histograms"], sorted(m["histograms"])
# core.sweep.* is registered eagerly, so the keys exist (and this serial fit
# lands on the serial path) even though no partitioning was requested.
assert m["counters"]["core.sweep.serial_sweeps"] > 0, m["counters"]
assert "core.sweep.parallel_sweeps" in m["counters"], sorted(m["counters"])
with open("trace.json") as f:
    t = json.load(f)
names = {e["name"] for e in t["traceEvents"]}
assert "cli.command" in names and "mcmc.chain" in names, sorted(names)
print("telemetry exports valid:",
      len(m["counters"]), "counters,", len(t["traceEvents"]), "spans")
EOF

echo "== fit heartbeats"
# The heartbeat monitor observes the fit from the outside: enabling it must
# not change a single byte of the scores.
"$BIN" fit --data smoke --model dpmhbp --burn 10 --samples 20 \
    --heartbeat-file hb_cmp.json --heartbeat-every 0.2 --out scores_hb.csv
cmp scores.csv scores_hb.csv
test -s hb_cmp.json

# A background fit with a short cadence must surface the heartbeat file
# mid-run (not only at exit), and the file must always parse as a complete
# schema-v1 document because replacement is write-tmp-then-rename.
"$BIN" fit --data smoke --model dpmhbp --burn 300 --samples 600 --chains 2 \
    --heartbeat-file hb_live.json --heartbeat-every 0.1 \
    --out scores_hb_live.csv &
HB_PID=$!
MIDFIT_SEEN=0
for _ in $(seq 1 200); do
  if [ -f hb_live.json ] && kill -0 "$HB_PID" 2>/dev/null; then
    MIDFIT_SEEN=1
    break
  fi
  sleep 0.1
done
test "$MIDFIT_SEEN" = 1
# `piperisk top` is the canonical reader; one plain-mode frame must render.
"$BIN" top --heartbeat hb_live.json --plain --iterations 1 | grep -q "chain 0"
wait "$HB_PID"
python3 - <<'EOF'
import json
with open("hb_live.json") as f:
    hb = json.load(f)
assert hb["schema_version"] == 1, hb
assert hb["num_chains"] == 2, hb
assert len(hb["chains"]) == 2, hb["chains"]
for chain in hb["chains"]:
    assert 0 <= chain["sweeps"] <= chain["total"], chain
    assert not chain["failed"], chain
assert hb["sweeps_done"] == sum(c["sweeps"] for c in hb["chains"]), hb
assert hb["monitored_draws"] > 0, hb
assert hb["rhat"] is None or hb["rhat"] > 0, hb
assert hb["peak_rss_bytes"] > 0, hb
print("heartbeat schema valid:", hb["sweeps_done"], "sweeps,",
      hb["monitored_draws"], "monitored draws")
EOF

# Streaming (out-of-core) fits report shard progress through the same file.
"$BIN" convert --data smoke --out-dir hb_shards
"$BIN" fit --data-dir hb_shards --model hbp --burn 10 --samples 20 \
    --shard-window 1 --heartbeat-file hb_stream.json --heartbeat-every 0.1 \
    --out scores_hb_stream.csv
python3 - <<'EOF'
import json
with open("hb_stream.json") as f:
    hb = json.load(f)
assert hb["schema_version"] == 1, hb
assert "shards" in hb, sorted(hb)
assert hb["shards"]["total"] > 0, hb["shards"]
assert hb["shards"]["done"] == hb["shards"]["total"], hb["shards"]
print("streaming heartbeat valid:", hb["shards"]["done"], "shards")
EOF

echo "== evaluate with metrics"
"$BIN" evaluate --data smoke --scores scores.csv \
    --metrics-out eval_metrics.json | grep -q "AUC(100%)"
python3 - <<'EOF'
import json
with open("eval_metrics.json") as f:
    m = json.load(f)
assert m["run"]["command"] == "evaluate", m["run"]
assert m["counters"]["eval.pipes_ranked"] > 0, m["counters"]
assert "eval.rank_build_us" in m["histograms"], sorted(m["histograms"])
EOF

echo "== sharded data substrate"
# CSV -> shard -> CSV round-trips the whole bundle byte-identically.
"$BIN" convert --data smoke --out-dir shards
test -f shards/manifest.csv
test -f shards/shard-00000.prk
"$BIN" convert --data-dir shards --shard 0 --out smoke_rt
for part in meta pipes segments failures; do
  cmp "smoke_${part}.csv" "smoke_rt_${part}.csv"
done

# Streaming evaluate over the shard must reproduce the in-memory artefacts
# byte-for-byte: same metric lines, same per-pipe and top-K bytes.
"$BIN" evaluate --data smoke --scores scores.csv \
    --per-pipe pp_mem.csv --topk 25 --topk-out tk_mem.csv > eval_mem.txt
"$BIN" evaluate --data-dir shards --scores scores.csv --shard-window 2 \
    --per-pipe pp_str.csv --topk 25 --topk-out tk_str.csv > eval_str.txt
cmp pp_mem.csv pp_str.csv
cmp tk_mem.csv tk_str.csv
diff <(grep -E 'AUC|detect|test year' eval_mem.txt) \
     <(grep -E 'AUC|detect|test year' eval_str.txt)

# Out-of-core fit is shard-window invariant and exports data.shard.*
# telemetry with a hard zero on integrity-failure counters.
"$BIN" fit --data-dir shards --model hbp --burn 10 --samples 20 \
    --shard-window 1 --out scores_str_w1.csv
"$BIN" fit --data-dir shards --model hbp --burn 10 --samples 20 \
    --shard-window 4 --out scores_str_w4.csv --metrics-out shard_metrics.json
cmp scores_str_w1.csv scores_str_w4.csv
python3 - <<'EOF'
import json
with open("shard_metrics.json") as f:
    m = json.load(f)
c = m["counters"]
assert c["data.shard.loads"] > 0, c
assert c["data.shard.bytes_mapped"] > 0, c
assert c.get("data.shard.load_failures", 0) == 0, c
assert c.get("data.shard.checksum_failures", 0) == 0, c
assert "data.shard.load_us" in m["histograms"], sorted(m["histograms"])
print("shard telemetry valid:", c["data.shard.loads"], "loads,",
      c["data.shard.bytes_mapped"], "bytes mapped")
EOF

# Sharded generation is a pure function of the seed: the thread count must
# not change a byte of any shard or the manifest.
"$BIN" generate --regions 2 --pipes 400 --seed 5 --out-dir shards_gen
"$BIN" generate --regions 2 --pipes 400 --seed 5 --threads 1 \
    --out-dir shards_gen_t1
for f in manifest.csv shard-00000.prk shard-00001.prk; do
  cmp "shards_gen/$f" "shards_gen_t1/$f"
done

echo "== checkpoint / resume"
# Keystone guarantee: a fit killed mid-run and resumed produces scores
# byte-identical to an uninterrupted run.
"$BIN" fit --data smoke --model dpmhbp --burn 10 --samples 20 --chains 2 \
    --out scores_ck_base.csv
# Crash simulation: the hidden halt hook stops every chain after 15 of 30
# sweeps and exits non-zero, leaving the snapshots a kill -9 would leave.
mkdir -p ckpt
if "$BIN" fit --data smoke --model dpmhbp --burn 10 --samples 20 --chains 2 \
    --checkpoint-dir ckpt --checkpoint-every 5 --checkpoint-halt-after 15 \
    --out scores_ck_halt.csv 2>/dev/null; then
  echo "expected interrupted fit to exit non-zero" >&2
  exit 1
fi
test -f ckpt/dpmhbp.chain0.ckpt
test -f ckpt/dpmhbp.chain1.ckpt
"$BIN" fit --data smoke --model dpmhbp --burn 10 --samples 20 --chains 2 \
    --checkpoint-dir ckpt --checkpoint-every 5 --resume \
    --out scores_ck_resumed.csv --metrics-out ck_metrics.json
cmp scores_ck_base.csv scores_ck_resumed.csv
python3 - <<'EOF'
import json
with open("ck_metrics.json") as f:
    m = json.load(f)
assert m["counters"]["checkpoint.restores"] >= 2, m["counters"]
assert m["counters"]["checkpoint.writes"] >= 2, m["counters"]
assert "checkpoint.write_us" in m["histograms"], sorted(m["histograms"])
print("checkpoint telemetry valid:",
      m["counters"]["checkpoint.restores"], "restores,",
      m["counters"]["checkpoint.writes"], "writes")
EOF

# A real kill -9 mid-fit must leave resumable snapshots too.
rm -f ckpt/*.ckpt
"$BIN" fit --data smoke --model dpmhbp --burn 200 --samples 400 --chains 2 \
    --checkpoint-dir ckpt --checkpoint-every 5 --out scores_ck_killed.csv &
FIT_PID=$!
for _ in $(seq 1 200); do
  [ -f ckpt/dpmhbp.chain0.ckpt ] && break
  sleep 0.1
done
kill -9 "$FIT_PID" 2>/dev/null || true
wait "$FIT_PID" 2>/dev/null || true
test -f ckpt/dpmhbp.chain0.ckpt
# The long killed run has a different sweep count, so resuming it with the
# short config must be rejected with a fingerprint error, not mispooled.
if "$BIN" fit --data smoke --model dpmhbp --burn 10 --samples 20 --chains 2 \
    --checkpoint-dir ckpt --resume --out scores_ck_bad.csv 2>resume_err.txt; then
  echo "expected resume with mismatched config to fail" >&2
  exit 1
fi
grep -q fingerprint resume_err.txt
# Resuming with the original config finishes the killed run cleanly.
"$BIN" fit --data smoke --model dpmhbp --burn 200 --samples 400 --chains 2 \
    --checkpoint-dir ckpt --checkpoint-every 5 --resume --out scores_ck_killed.csv
test -f scores_ck_killed.csv
if "$BIN" fit --data smoke --model dpmhbp --resume --out x.csv 2>/dev/null; then
  echo "expected --resume without --checkpoint-dir to fail" >&2
  exit 1
fi

echo "== serve golden equivalence"
# The serving path must answer with the batch path's exact bytes: start a
# server on an ephemeral port, pull the full per-pipe table and the top-K
# list through the wire protocol, and cmp them against `evaluate` output.
"$BIN" evaluate --data smoke --scores scores.csv \
    --per-pipe batch_per_pipe.csv --topk 25 --topk-out batch_topk.csv \
    | grep -q "AUC(100%)"
"$BIN" serve --data smoke --scores scores.csv --port 0 --port-file port.txt &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -f port.txt ] && break
  sleep 0.1
done
test -f port.txt
PORT="$(cat port.txt)"

"$BIN" query --port "$PORT" --verb ping | grep -q pong
"$BIN" query --port "$PORT" --verb dump --out serve_per_pipe.csv
"$BIN" query --port "$PORT" --verb topk --k 25 --out serve_topk.csv
cmp batch_per_pipe.csv serve_per_pipe.csv
cmp batch_topk.csv serve_topk.csv

# Point queries and what-if answer without error.
FIRST_PIPE="$(sed -n 2p batch_per_pipe.csv | cut -d, -f1)"
"$BIN" query --port "$PORT" --verb score --pipe "$FIRST_PIPE" | grep -q "rank"
"$BIN" query --port "$PORT" --verb whatif --pipe "$FIRST_PIPE" \
    --mode scale --value 10 | grep -q "what-if"
"$BIN" query --port "$PORT" --verb topk --k 5 --budget 100000 \
    --out serve_topk_budget.csv
test -s serve_topk_budget.csv

# Reload re-reads the score file and swaps generations; the re-served table
# must still match the batch bytes (same artifact, new snapshot).
"$BIN" query --port "$PORT" --verb reload | grep -q "generation 2"
"$BIN" query --port "$PORT" --verb dump --out serve_per_pipe_g2.csv
cmp batch_per_pipe.csv serve_per_pipe_g2.csv

# Metrics verb exports valid JSON with zero protocol errors.
"$BIN" query --port "$PORT" --verb metrics --out serve_metrics.json
python3 - <<'EOF'
import json
with open("serve_metrics.json") as f:
    m = json.load(f)
assert m["schema_version"] == 1, m
assert m["run"]["command"] == "serve", m["run"]
assert m["counters"]["serve.requests"] > 0, m["counters"]
assert m["counters"]["serve.reloads"] == 1, m["counters"]
assert m["counters"].get("serve.protocol_errors", 0) == 0, m["counters"]
assert m["gauges"]["serve.snapshot_generation"] == 2, m["gauges"]
assert "serve.request_us" in m["histograms"], sorted(m["histograms"])
print("serve metrics valid:", int(m["counters"]["serve.requests"]),
      "requests, generation", int(m["gauges"]["serve.snapshot_generation"]))
EOF

# Unknown pipe id is a typed error (non-zero exit), not a dropped server.
if "$BIN" query --port "$PORT" --verb score --pipe 999999999 2>/dev/null; then
  echo "expected NOT_FOUND for unknown pipe id" >&2
  exit 1
fi
"$BIN" query --port "$PORT" --verb ping | grep -q pong

# Clean shutdown: the verb acknowledges, the server process exits 0.
"$BIN" query --port "$PORT" --verb shutdown | grep -q "acknowledged"
wait "$SERVE_PID"

echo "== log-level validation"
if "$BIN" generate --region tiny --out loglevel_bad --log-level frobnicate \
    2>/dev/null; then
  echo "expected failure on bad --log-level" >&2
  exit 1
fi

echo "== diagnose"
"$BIN" diagnose --data smoke --burn 10 --samples 30 | grep -q "alpha"
"$BIN" diagnose --data smoke --burn 10 --samples 30 --chains 2 | grep -q "Rhat"
"$BIN" diagnose --data smoke --model hbp --burn 10 --samples 30 --chains 2 \
    | grep -q "Rhat"

echo "== fit baseline models"
for model in cox weibull svm logistic hbp rsf gbt; do
  "$BIN" fit --data smoke --model "$model" --out "scores_$model.csv"
done
# Tree ensembles promise bit-identical scores for every fit thread count.
for model in rsf gbt; do
  "$BIN" fit --data smoke --model "$model" --threads 4 \
      --out "scores_${model}_t4.csv"
  cmp "scores_$model.csv" "scores_${model}_t4.csv"
done

echo "== rolling"
"$BIN" rolling --data smoke --first-year 2008 --last-year 2009 \
    --burn 10 --samples 20 > rolling_cold.txt
grep -q "rolling cold over 2 years" rolling_cold.txt
for model in DPMHBP Cox SVMrank Weibull RSF GBT; do
  grep -q "$model" rolling_cold.txt
done
# Warm-start keeps the per-year seeds, so the first test year (which has no
# predecessor state) must reproduce the cold run's numbers exactly.
"$BIN" rolling --data smoke --first-year 2008 --last-year 2009 \
    --burn 10 --samples 20 --warm-start > rolling_warm.txt
grep -q "rolling warm-start over 2 years" rolling_warm.txt
diff <(awk '{print $2, $4}' rolling_cold.txt | tail -n +2) \
     <(awk '{print $2, $4}' rolling_warm.txt | tail -n +2)

echo "== error handling"
if "$BIN" fit --data /nonexistent --model dpmhbp --out x.csv 2>/dev/null; then
  echo "expected failure on missing data" >&2
  exit 1
fi
if "$BIN" frobnicate 2>/dev/null; then
  echo "expected usage error on unknown command" >&2
  exit 1
fi

echo "CLI smoke test passed"
