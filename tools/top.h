#ifndef PIPERISK_TOOLS_TOP_H_
#define PIPERISK_TOOLS_TOP_H_

#include "common/flags.h"

namespace piperisk {
namespace tools {

/// `piperisk top`: live terminal monitor. Polls a running server's
/// /metrics endpoint (--metrics-port, optional --metrics-host) or tails a
/// fit's heartbeat JSON (--heartbeat FILE), redrawing a one-screen dashboard
/// every --interval seconds. --plain appends one block per sample instead of
/// redrawing (for logs and tests); --iterations N exits after N samples
/// (0 = run until interrupted). Exit code 0 when at least one sample
/// rendered, 1 when every poll failed.
int CmdTop(const CommandLine& cl);

}  // namespace tools
}  // namespace piperisk

#endif  // PIPERISK_TOOLS_TOP_H_
