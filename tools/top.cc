// `piperisk top`: terminal live monitor for the observability plane. Two
// sources, one dashboard loop:
//
//   --metrics-port P [--metrics-host H]   poll GET /metrics on a running
//       server (the Prometheus endpoint started by `serve --metrics-port`)
//       and show req/s, latency quantiles, error counters, and the snapshot
//       generation;
//   --heartbeat FILE                      tail the JSON progress file a fit
//       writes with --heartbeat-file and show per-chain progress bars,
//       sweeps/s, acceptance, live split-Rhat, and the ETA.
//
// The monitor is read-only: it never writes to the server or the fit, so
// watching a run cannot perturb it.

#include "tools/top.h"

#include <sys/socket.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "common/socket.h"
#include "common/status.h"
#include "common/strings.h"

namespace piperisk {
namespace tools {
namespace {

// --- tiny HTTP GET client ---------------------------------------------------

/// One blocking GET: connect, send, read to EOF (the metrics endpoint always
/// answers with Connection: close), return the body of a 200 response.
Result<std::string> HttpGet(const std::string& host, int port,
                            const std::string& path) {
  PIPERISK_ASSIGN_OR_RETURN(Socket conn, ConnectTcp(host, port));
  const std::string request =
      StrFormat("GET %s HTTP/1.1\r\nHost: %s:%d\r\nConnection: close\r\n\r\n",
                path.c_str(), host.c_str(), port);
  PIPERISK_RETURN_IF_ERROR(conn.WriteAll(request.data(), request.size()));
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(conn.fd(), buffer, sizeof(buffer), 0);
    if (n < 0) return Status::IoError("recv failed polling " + path);
    if (n == 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  const std::size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::ParseError("malformed HTTP response (no header end)");
  }
  const std::size_t status_end = response.find("\r\n");
  const std::string status_line = response.substr(0, status_end);
  if (status_line.find(" 200") == std::string::npos) {
    return Status::IoError("HTTP error polling " + path + ": " + status_line);
  }
  return response.substr(header_end + 4);
}

// --- Prometheus text parsing ------------------------------------------------

/// Flat map of series -> value from an exposition document. The key is the
/// series name including its label set exactly as rendered
/// ("piperisk_serve_request_p99_us{window=\"10s\"}"); comment lines are
/// skipped. Good enough for reading back our own formatter's output.
std::map<std::string, double> ParsePrometheusSamples(const std::string& body) {
  std::map<std::string, double> samples;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    const std::string line = body.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0) continue;
    const std::string key = line.substr(0, space);
    const std::string value_text = line.substr(space + 1);
    char* end = nullptr;
    const double value = std::strtod(value_text.c_str(), &end);
    if (end == value_text.c_str()) continue;
    samples[key] = value;
  }
  return samples;
}

double SampleOr(const std::map<std::string, double>& samples,
                const std::string& key, double fallback) {
  auto it = samples.find(key);
  return it == samples.end() ? fallback : it->second;
}

// --- shared rendering helpers -----------------------------------------------

std::string Bar(double fraction, int width) {
  if (!(fraction >= 0.0)) fraction = 0.0;
  if (fraction > 1.0) fraction = 1.0;
  const int filled = static_cast<int>(fraction * width + 0.5);
  std::string out(static_cast<std::size_t>(width), '.');
  for (int i = 0; i < filled; ++i) out[static_cast<std::size_t>(i)] = '#';
  return out;
}

std::string HumanBytes(double bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return StrFormat(u == 0 ? "%.0f %s" : "%.1f %s", bytes, units[u]);
}

std::string HumanDuration(double seconds) {
  if (!(seconds >= 0.0)) return "--";
  if (seconds < 60.0) return StrFormat("%.0fs", seconds);
  if (seconds < 3600.0) {
    return StrFormat("%dm%02ds", static_cast<int>(seconds) / 60,
                     static_cast<int>(seconds) % 60);
  }
  return StrFormat("%dh%02dm", static_cast<int>(seconds) / 3600,
                   (static_cast<int>(seconds) % 3600) / 60);
}

/// Clear + home; used between frames unless --plain.
void ResetScreen() { std::printf("\x1b[H\x1b[2J"); }

// --- metrics-endpoint dashboard ---------------------------------------------

struct MetricsPollState {
  bool have_previous = false;
  double previous_requests = 0.0;
  std::chrono::steady_clock::time_point previous_time;
};

void RenderMetricsFrame(const std::map<std::string, double>& samples,
                        MetricsPollState* state, const std::string& endpoint,
                        long long frame) {
  const auto now = std::chrono::steady_clock::now();
  const double requests = SampleOr(samples, "piperisk_serve_requests", 0.0);

  // Prefer the server-side 10 s windowed rate; fall back to a rate computed
  // from our own successive polls (first frame has neither).
  double rate = SampleOr(samples,
                         "piperisk_serve_requests_rate{window=\"10s\"}", -1.0);
  if (rate < 0.0 && state->have_previous) {
    const double dt =
        std::chrono::duration<double>(now - state->previous_time).count();
    if (dt > 1e-3) rate = (requests - state->previous_requests) / dt;
  }
  state->have_previous = true;
  state->previous_requests = requests;
  state->previous_time = now;

  const double p50 = SampleOr(
      samples, "piperisk_serve_request_p50_us{window=\"10s\"}", -1.0);
  const double p99 = SampleOr(
      samples, "piperisk_serve_request_p99_us{window=\"10s\"}", -1.0);

  std::printf("piperisk top — %s (sample %lld)\n", endpoint.c_str(), frame);
  std::printf("  requests      %.0f total", requests);
  if (rate >= 0.0) {
    std::printf("   %.1f req/s [10s]", rate);
  } else {
    std::printf("   -- req/s");
  }
  std::printf("\n");
  std::printf("  latency       p50 %s   p99 %s  [10s]\n",
              p50 >= 0.0 ? StrFormat("%.0f us", p50).c_str() : "--",
              p99 >= 0.0 ? StrFormat("%.0f us", p99).c_str() : "--");
  std::printf("  errors        %.0f request, %.0f protocol\n",
              SampleOr(samples, "piperisk_serve_request_errors", 0.0),
              SampleOr(samples, "piperisk_serve_protocol_errors", 0.0));
  std::printf("  connections   %.0f active, %.0f opened\n",
              SampleOr(samples, "piperisk_serve_active_connections", 0.0),
              SampleOr(samples, "piperisk_serve_connections_opened", 0.0));
  std::printf("  snapshot      generation %.0f, %.0f pipes, %.0f reloads\n",
              SampleOr(samples, "piperisk_serve_snapshot_generation", 0.0),
              SampleOr(samples, "piperisk_serve_snapshot_pipes", 0.0),
              SampleOr(samples, "piperisk_serve_reloads", 0.0));
  const double rss =
      SampleOr(samples, "piperisk_process_peak_rss_bytes", -1.0);
  if (rss >= 0.0) {
    std::printf("  peak rss      %s\n", HumanBytes(rss).c_str());
  }
}

// --- heartbeat dashboard ----------------------------------------------------

Status RenderHeartbeatFrame(const json::Value& doc, const std::string& path,
                            long long frame) {
  if (!doc.is_object()) {
    return Status::ParseError("heartbeat file is not a JSON object");
  }
  const std::string label = doc.StringOr("label", "fit");
  const std::string phase = doc.StringOr("phase", "?");
  std::printf("piperisk top — %s (%s, sample %lld)\n", path.c_str(),
              label.c_str(), frame);
  std::printf("  phase         %s   uptime %s   pid %.0f\n", phase.c_str(),
              HumanDuration(doc.NumberOr("uptime_s", -1.0)).c_str(),
              doc.NumberOr("pid", 0.0));

  const json::Value* chains = doc.Find("chains");
  if (chains != nullptr && chains->is_array()) {
    for (const json::Value& chain : chains->AsArray()) {
      const double done = chain.NumberOr("sweeps", 0.0);
      const double total = chain.NumberOr("total", 0.0);
      const bool failed =
          chain.Find("failed") != nullptr && chain.Find("failed")->is_bool() &&
          chain.Find("failed")->AsBool();
      const double fraction = total > 0.0 ? done / total : 0.0;
      std::printf("  chain %-2.0f  [%s] %5.0f/%-5.0f  acc %4.0f%%  %s\n",
                  chain.NumberOr("chain", 0.0), Bar(fraction, 24).c_str(),
                  done, total, chain.NumberOr("acceptance", 0.0) * 100.0,
                  failed ? "FAILED" : "");
    }
  }

  const json::Value* shards = doc.Find("shards");
  if (shards != nullptr && shards->is_object()) {
    const double done = shards->NumberOr("done", 0.0);
    const double total = shards->NumberOr("total", 0.0);
    std::printf("  shards     [%s] %5.0f/%-5.0f\n",
                Bar(total > 0.0 ? done / total : 0.0, 24).c_str(), done,
                total);
  }

  const double rhat = doc.NumberOr("rhat", -1.0);
  std::printf("  rate          %.1f sweeps/s   acceptance %.0f%%   ETA %s\n",
              doc.NumberOr("sweeps_per_s", 0.0),
              doc.NumberOr("acceptance_recent", 0.0) * 100.0,
              HumanDuration(doc.NumberOr("eta_s", -1.0)).c_str());
  std::printf("  split-Rhat    %s  (%.0f monitored draws)\n",
              rhat > 0.0 ? StrFormat("%.4f", rhat).c_str() : "--",
              doc.NumberOr("monitored_draws", 0.0));
  const double rss = doc.NumberOr("peak_rss_bytes", -1.0);
  if (rss >= 0.0) {
    std::printf("  peak rss      %s\n", HumanBytes(rss).c_str());
  }
  return Status::OK();
}

// --- the sampling loop ------------------------------------------------------

struct TopOptions {
  double interval_s = 2.0;
  long long iterations = 0;  // 0 = until interrupted
  bool plain = false;
};

/// Runs `sample(frame)` every interval; any frame that fails prints the
/// error and keeps polling (the target may simply not be up yet). Exit code
/// 0 when at least one frame rendered.
int RunTopLoop(const TopOptions& options,
               const std::function<Status(long long)>& sample) {
  long long rendered = 0;
  for (long long frame = 0;
       options.iterations == 0 || frame < options.iterations; ++frame) {
    if (!options.plain) ResetScreen();
    const Status st = sample(frame);
    if (st.ok()) {
      ++rendered;
    } else {
      std::printf("piperisk top: %s (retrying)\n", st.ToString().c_str());
    }
    if (options.plain) std::printf("\n");
    std::fflush(stdout);
    if (options.iterations != 0 && frame + 1 >= options.iterations) break;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options.interval_s));
  }
  return rendered > 0 ? 0 : 1;
}

int FailTop(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int CmdTop(const CommandLine& cl) {
  TopOptions options;
  auto interval = cl.GetDouble("interval", options.interval_s);
  if (!interval.ok()) return FailTop(interval.status());
  options.interval_s = *interval;
  if (options.interval_s <= 0.0) {
    std::fprintf(stderr, "top: --interval must be > 0\n");
    return 2;
  }
  auto iterations = cl.GetInt("iterations", options.iterations);
  if (!iterations.ok()) return FailTop(iterations.status());
  options.iterations = *iterations;
  options.plain = cl.GetBool("plain", false);

  const std::string heartbeat = cl.GetString("heartbeat", "");
  if (!heartbeat.empty()) {
    return RunTopLoop(options, [&heartbeat](long long frame) -> Status {
      PIPERISK_ASSIGN_OR_RETURN(json::Value doc, json::ParseFile(heartbeat));
      return RenderHeartbeatFrame(doc, heartbeat, frame);
    });
  }

  if (cl.Has("metrics-port")) {
    auto port = cl.GetInt("metrics-port", 0);
    if (!port.ok()) return FailTop(port.status());
    const std::string host = cl.GetString("metrics-host", "127.0.0.1");
    const std::string endpoint =
        StrFormat("http://%s:%lld/metrics", host.c_str(), *port);
    MetricsPollState state;
    return RunTopLoop(
        options,
        [&host, &port, &state, &endpoint](long long frame) -> Status {
          PIPERISK_ASSIGN_OR_RETURN(
              std::string body,
              HttpGet(host, static_cast<int>(*port), "/metrics"));
          RenderMetricsFrame(ParsePrometheusSamples(body), &state, endpoint,
                             frame);
          return Status::OK();
        });
  }

  std::fprintf(stderr,
               "top: needs --metrics-port P [--metrics-host H] or "
               "--heartbeat FILE\n");
  return 2;
}

}  // namespace tools
}  // namespace piperisk
