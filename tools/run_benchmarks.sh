#!/usr/bin/env bash
# Runs the microbenchmark suites and records the results as JSON at the repo
# root (BENCH_core.json, BENCH_eval.json), so performance changes land with
# numbers. micro_eval also runs its built-in equivalence gate first: the
# legacy and engine evaluation pipelines must agree bit-for-bit before any
# timing is recorded. Each suite additionally drops a telemetry snapshot
# (BENCH_<suite>_metrics.json) next to its timings via PIPERISK_METRICS_OUT.
#
#   tools/run_benchmarks.sh            # default: build/ tree, full filter
#   BUILD_DIR=out tools/run_benchmarks.sh
#   BENCH_SUITES=eval tools/run_benchmarks.sh
#   BENCH_SUITES=serve tools/run_benchmarks.sh   # serving-layer load test
#   BENCH_FILTER='BM_Dpmhbp.*' BENCH_MIN_TIME=0.05 tools/run_benchmarks.sh
#
# The "serve" suite is not a google-benchmark binary: it drives bench/
# bench_serve (client/server load generator) and records BENCH_serve.json.
# Its scale is tuned with SERVE_PIPES / SERVE_THREADS / SERVE_SECONDS.
#
# The "shards" suite likewise drives bench/bench_shards (sharded columnar
# generate/load/fit-score pipeline + peak-RSS curve) and records
# BENCH_shards.json. Scale is tuned with SHARDS_REGIONS / SHARDS_PIPES /
# SHARDS_WINDOW. The gate fails on any shard checksum failure or if peak
# RSS grew more than 1.5x between streaming a quarter of the regions and
# all of them (the out-of-core claim).
#
# The "models" suite drives bench/bench_models (cold vs warm-start rolling
# re-fits over the full model family plus the survival-table and RSF/GBT
# determinism gates) and records BENCH_models.json. Scale is tuned with
# MODELS_PIPES / MODELS_FIRST_YEAR / MODELS_BURN / MODELS_SAMPLES. The gate
# fails unless the survival sweep matched its quadratic reference, RSF/GBT
# were bit-identical across thread counts, and the warm rolling pass was
# not slower than the cold one.
#
# Environment:
#   BUILD_DIR       CMake build tree containing bench/micro_* (default: build)
#   BENCH_SUITES    space-separated subset of "core eval serve shards models"
#                   (default: "core eval")
#   BENCH_FILTER    --benchmark_filter regex (default: all benchmarks)
#   BENCH_MIN_TIME  --benchmark_min_time seconds per benchmark (default: 0.2)
#   SERVE_PIPES     serve suite index size (default: 1000000)
#   SERVE_THREADS   serve suite client threads (default: 2)
#   SERVE_SECONDS   serve suite duration (default: 5)
#   SERVE_OVERHEAD_SECONDS
#                   measured seconds per condition in the scrape-overhead
#                   phase, alternated in 1 s slices (default: 12; raise on
#                   noisy machines to tighten the measurement)
#   SHARDS_REGIONS  shards suite region count (default: 48)
#   SHARDS_PIPES    shards suite pipes per region (default: 25000)
#   SHARDS_WINDOW   shards suite shard window (default: 4)
#   MODELS_PIPES    models suite region size (default: 1200)
#   MODELS_FIRST_YEAR / MODELS_LAST_YEAR
#                   models suite rolling window (default: 2005..2009)
#   MODELS_BURN / MODELS_SAMPLES
#                   models suite MCMC scale (default: 30 / 60)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"
BENCH_SUITES="${BENCH_SUITES:-core eval}"
BENCH_FILTER="${BENCH_FILTER:-.*}"
BENCH_MIN_TIME="${BENCH_MIN_TIME:-0.2}"

# Committed BENCH_*.json files are performance claims; numbers from a Debug
# (or default, unoptimised) tree are meaningless and once burned us by
# landing in the repo. Refuse anything but an explicit Release tree.
# CI asserts the recorded context.library_build_type stays "release".
build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt" 2>/dev/null || true)"
if [[ "$build_type" != "Release" ]]; then
  echo "error: $BUILD_DIR is configured as '${build_type:-unknown}', not Release." >&2
  echo "Benchmarks must come from an optimised build:" >&2
  echo "  cmake -B \"$BUILD_DIR\" -S \"$REPO_ROOT\" -DCMAKE_BUILD_TYPE=Release" >&2
  exit 1
fi

run_suite() {
  local suite="$1"
  local bench_bin="$BUILD_DIR/bench/micro_$suite"
  local bench_out="$REPO_ROOT/BENCH_$suite.json"
  if [[ ! -x "$bench_bin" ]]; then
    echo "error: $bench_bin not found or not executable." >&2
    echo "Build it first: cmake --build \"$BUILD_DIR\" --target micro_$suite" >&2
    exit 1
  fi
  local metrics_out="$REPO_ROOT/BENCH_${suite}_metrics.json"
  echo "== micro_$suite -> $bench_out (filter='$BENCH_FILTER', min_time=${BENCH_MIN_TIME}s)"
  PIPERISK_METRICS_OUT="$metrics_out" "$bench_bin" \
    --benchmark_filter="$BENCH_FILTER" \
    --benchmark_min_time="$BENCH_MIN_TIME" \
    --benchmark_format=json \
    --benchmark_out="$bench_out" \
    --benchmark_out_format=json \
    >/dev/null

  # Sanity-check both JSON documents and print a compact summary.
  python3 - "$bench_out" "$metrics_out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
if doc.get("context", {}).get("piperisk_build_type") != "Release":
    sys.exit("error: recorded piperisk_build_type is not Release in " + sys.argv[1])
benchmarks = doc.get("benchmarks", [])
if not benchmarks:
    sys.exit("error: no benchmarks recorded")
for b in benchmarks:
    print(f"  {b['name']:<36} {b['real_time']:>12.1f} {b['time_unit']}")
print(f"{len(benchmarks)} benchmarks written to {sys.argv[1]}")
with open(sys.argv[2]) as f:
    metrics = json.load(f)
if metrics.get("schema_version") != 1:
    sys.exit("error: bad metrics schema in " + sys.argv[2])
print(f"{len(metrics['counters'])} counters, {len(metrics['gauges'])} gauges, "
      f"{len(metrics['histograms'])} histograms written to {sys.argv[2]}")
EOF
}

run_serve_suite() {
  local bench_bin="$BUILD_DIR/bench/bench_serve"
  local bench_out="$REPO_ROOT/BENCH_serve.json"
  if [[ ! -x "$bench_bin" ]]; then
    echo "error: $bench_bin not found or not executable." >&2
    echo "Build it first: cmake --build \"$BUILD_DIR\" --target bench_serve" >&2
    exit 1
  fi
  echo "== bench_serve -> $bench_out (pipes=${SERVE_PIPES:-1000000}," \
       "threads=${SERVE_THREADS:-2}, seconds=${SERVE_SECONDS:-5})"
  "$bench_bin" \
    --pipes "${SERVE_PIPES:-1000000}" \
    --threads "${SERVE_THREADS:-2}" \
    --seconds "${SERVE_SECONDS:-5}" \
    --overhead-seconds "${SERVE_OVERHEAD_SECONDS:-12}" \
    --out "$bench_out"
  python3 - "$bench_out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["errors"] == 0, doc
assert doc["requests"] > 0, doc
lat = doc["latency"]["all"]
print(f"  qps {doc['qps']:.0f}, p50 {lat['p50_us']:.0f}us, "
      f"p99 {lat['p99_us']:.0f}us over {doc['requests']} requests, "
      f"{doc['reloads']} reloads")
# Observability must be near-free: a 1 Hz /metrics scraper may not cost the
# request path more than 2% of its throughput.
so = doc["scrape_overhead"]
assert so["scrapes"] > 0, so
if so["overhead_pct"] >= 2.0:
    sys.exit(f"error: scrape endpoint overhead {so['overhead_pct']:.2f}% "
             f"(detached {so['qps_detached']:.0f} vs attached "
             f"{so['qps_attached']:.0f} req/s) exceeds the 2% budget")
print(f"  scrape overhead {so['overhead_pct']:+.2f}% "
      f"({so['scrapes']} scrapes at 1 Hz)")
EOF
}

run_shards_suite() {
  local bench_bin="$BUILD_DIR/bench/bench_shards"
  local bench_out="$REPO_ROOT/BENCH_shards.json"
  if [[ ! -x "$bench_bin" ]]; then
    echo "error: $bench_bin not found or not executable." >&2
    echo "Build it first: cmake --build \"$BUILD_DIR\" --target bench_shards" >&2
    exit 1
  fi
  local metrics_out="$REPO_ROOT/BENCH_shards_metrics.json"
  echo "== bench_shards -> $bench_out (regions=${SHARDS_REGIONS:-48}," \
       "pipes=${SHARDS_PIPES:-25000}, window=${SHARDS_WINDOW:-4})"
  PIPERISK_METRICS_OUT="$metrics_out" "$bench_bin" \
    --regions "${SHARDS_REGIONS:-48}" \
    --pipes "${SHARDS_PIPES:-25000}" \
    --window "${SHARDS_WINDOW:-4}" \
    --out "$bench_out"
  python3 - "$bench_out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
if doc.get("piperisk_build_type") != "Release":
    sys.exit("error: recorded piperisk_build_type is not Release in " + sys.argv[1])
if doc["checksum_failures"] != 0:
    sys.exit(f"error: {doc['checksum_failures']} shard checksum failures")
growth = doc["rss"]["full_over_quarter"]
if growth > 1.5:
    sys.exit(f"error: peak RSS grew {growth:.2f}x from quarter to full "
             "streaming pass -- the shard window is not bounding memory")
print(f"  gen {doc['generate']['pipes_per_s']:.0f} pipes/s, "
      f"load {doc['load']['mb_per_s']:.0f} MB/s, "
      f"score {doc['fit_score']['scored_pipes_per_s']:.0f} pipes/s, "
      f"peak RSS {doc['rss']['peak_rss_mb']:.0f} MB (x{growth:.2f})")
EOF
}

run_models_suite() {
  local bench_bin="$BUILD_DIR/bench/bench_models"
  local bench_out="$REPO_ROOT/BENCH_models.json"
  if [[ ! -x "$bench_bin" ]]; then
    echo "error: $bench_bin not found or not executable." >&2
    echo "Build it first: cmake --build \"$BUILD_DIR\" --target bench_models" >&2
    exit 1
  fi
  local metrics_out="$REPO_ROOT/BENCH_models_metrics.json"
  echo "== bench_models -> $bench_out (pipes=${MODELS_PIPES:-1200}," \
       "years=${MODELS_FIRST_YEAR:-2005}..${MODELS_LAST_YEAR:-2009}," \
       "burn=${MODELS_BURN:-30}, samples=${MODELS_SAMPLES:-60})"
  PIPERISK_METRICS_OUT="$metrics_out" "$bench_bin" \
    --pipes "${MODELS_PIPES:-1200}" \
    --first-year "${MODELS_FIRST_YEAR:-2005}" \
    --last-year "${MODELS_LAST_YEAR:-2009}" \
    --burn "${MODELS_BURN:-30}" \
    --samples "${MODELS_SAMPLES:-60}" \
    --out "$bench_out"
  python3 - "$bench_out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
if doc.get("piperisk_build_type") != "Release":
    sys.exit("error: recorded piperisk_build_type is not Release in " + sys.argv[1])
if not doc["survival"]["identical"]:
    sys.exit("error: survival sweep disagreed with the quadratic reference")
if not (doc["rsf_thread_invariant"] and doc["gbt_thread_invariant"]):
    sys.exit("error: RSF/GBT fits are not bit-identical across thread counts")
rolling = doc["rolling"]
names = {m["name"] for m in rolling["models"]}
for required in ("DPMHBP", "RSF", "GBT"):
    if required not in names:
        sys.exit(f"error: rolling comparison is missing {required}")
if rolling["speedup_x"] < 1.0:
    sys.exit(f"error: warm rolling was slower than cold "
             f"(x{rolling['speedup_x']:.2f})")
print(f"  survival sweep x{doc['survival']['speedup_x']:.1f}, "
      f"warm rolling x{rolling['speedup_x']:.2f} over {rolling['years']} years")
for m in rolling["models"]:
    print(f"  {m['name']:<10} cold {m['cold_mean_auc']:.4f} "
          f"warm {m['warm_mean_auc']:.4f} ({m['auc_delta']:+.4f})")
EOF
}

for suite in $BENCH_SUITES; do
  if [[ "$suite" == "serve" ]]; then
    run_serve_suite
  elif [[ "$suite" == "shards" ]]; then
    run_shards_suite
  elif [[ "$suite" == "models" ]]; then
    run_models_suite
  else
    run_suite "$suite"
  fi
done
