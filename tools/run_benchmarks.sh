#!/usr/bin/env bash
# Runs the core microbenchmarks and records the results as JSON at the repo
# root (BENCH_core.json), so sampler-performance changes land with numbers.
#
#   tools/run_benchmarks.sh            # default: build/ tree, full filter
#   BUILD_DIR=out tools/run_benchmarks.sh
#   BENCH_FILTER='BM_Dpmhbp.*' BENCH_MIN_TIME=0.05 tools/run_benchmarks.sh
#
# Environment:
#   BUILD_DIR       CMake build tree containing bench/micro_core (default: build)
#   BENCH_FILTER    --benchmark_filter regex (default: all benchmarks)
#   BENCH_MIN_TIME  --benchmark_min_time seconds per benchmark (default: 0.2)
#   BENCH_OUT       output JSON path (default: <repo>/BENCH_core.json)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"
BENCH_BIN="$BUILD_DIR/bench/micro_core"
BENCH_FILTER="${BENCH_FILTER:-.*}"
BENCH_MIN_TIME="${BENCH_MIN_TIME:-0.2}"
BENCH_OUT="${BENCH_OUT:-$REPO_ROOT/BENCH_core.json}"

if [[ ! -x "$BENCH_BIN" ]]; then
  echo "error: $BENCH_BIN not found or not executable." >&2
  echo "Build it first: cmake --build \"$BUILD_DIR\" --target micro_core" >&2
  exit 1
fi

echo "== micro_core -> $BENCH_OUT (filter='$BENCH_FILTER', min_time=${BENCH_MIN_TIME}s)"
"$BENCH_BIN" \
  --benchmark_filter="$BENCH_FILTER" \
  --benchmark_min_time="$BENCH_MIN_TIME" \
  --benchmark_format=json \
  --benchmark_out="$BENCH_OUT" \
  --benchmark_out_format=json \
  >/dev/null

# Sanity-check the JSON and print a compact summary.
python3 - "$BENCH_OUT" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
benchmarks = doc.get("benchmarks", [])
if not benchmarks:
    sys.exit("error: no benchmarks recorded")
for b in benchmarks:
    print(f"  {b['name']:<28} {b['real_time']:>12.1f} {b['time_unit']}")
print(f"{len(benchmarks)} benchmarks written to {sys.argv[1]}")
EOF
